// Filter/score hot-path gate: the SoA + SIMD scoring/ranking kernels
// (DESIGN.md §15) against a faithful replica of the pre-refactor AoS path
// (per-candidate ComputeScorePair + full std::sort ranking), swept over
// candidate batch sizes, plus end-to-end scalar-vs-SIMD Offering Table
// parity across every spatial backend.
//
// The binary asserts the tentpole's contract and exits 1 when it breaks:
//   1. the vector kernels are bit-identical to the scalar reference
//      kernels (scores, midpoints, total-order keys), and the keyed
//      partial select returns exactly the AoS full-sort prefix;
//   2. the SoA path is >= 1.5x faster than the AoS replica once the batch
//      holds >= 64 candidates;
//   3. with SIMD on and off, EcoChargeRanker produces bitwise-identical
//      Offering Tables on all five spatial backends.
// Timing uses interleaved min-of-rounds (see bench_micro_obs.cc for why).
// Results are emitted as BENCH_score.json.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/ecocharge.h"
#include "core/simd_score.h"
#include "spatial/index_factory.h"

namespace ecocharge {
namespace {

constexpr double kMinSpeedupAt64 = 1.5;
constexpr size_t kTopK = 8;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Bits(double v) { return std::bit_cast<uint64_t>(v); }

/// One synthetic candidate batch: well-formed EC intervals in SoA lanes
/// plus the identical AoS view the pre-refactor path consumed.
struct Batch {
  simd::ScoreLanes lanes;
  std::vector<EcIntervals> aos;

  static Batch Fuzzed(size_t n, uint64_t seed) {
    Batch b;
    Rng rng(seed);
    b.lanes.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      EcIntervals ecs;
      ecs.level = Interval::FromUnordered(rng.NextDouble(), rng.NextDouble());
      ecs.availability =
          Interval::FromUnordered(rng.NextDouble(), rng.NextDouble());
      ecs.derouting =
          Interval::FromUnordered(rng.NextDouble(), rng.NextDouble());
      b.aos.push_back(ecs);
      b.lanes.level_lo.push_back(ecs.level.lo);
      b.lanes.level_hi.push_back(ecs.level.hi);
      b.lanes.avail_lo.push_back(ecs.availability.lo);
      b.lanes.avail_hi.push_back(ecs.availability.hi);
      b.lanes.der_lo.push_back(ecs.derouting.lo);
      b.lanes.der_hi.push_back(ecs.derouting.hi);
      b.lanes.ids.push_back(static_cast<uint32_t>(i));
    }
    b.lanes.sc_min.resize(n);
    b.lanes.sc_max.resize(n);
    b.lanes.mid.resize(n);
    b.lanes.keys_mid.resize(n);
    return b;
  }
};

/// The pre-refactor shape: score each candidate from the AoS intervals,
/// then rank by a full std::sort on (midpoint desc, id asc) and truncate.
/// Returns the top-k ids; `scores` receives every candidate's pair.
void AosScoreAndRank(const std::vector<EcIntervals>& aos,
                     const ScoreWeights& w, size_t k,
                     std::vector<ScorePair>* scores,
                     std::vector<uint32_t>* top) {
  const size_t n = aos.size();
  scores->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*scores)[i] = ComputeScorePair(aos[i], w);
  }
  top->resize(n);
  std::iota(top->begin(), top->end(), 0u);
  std::sort(top->begin(), top->end(), [&](uint32_t a, uint32_t b) {
    const double ma = (*scores)[a].Mid();
    const double mb = (*scores)[b].Mid();
    if (ma != mb) return ma > mb;
    return a < b;
  });
  top->resize(std::min(k, n));
}

/// The new shape: SoA kernels + total-order keys + partial top-k select.
void SoaScoreAndRank(Batch* b, const ScoreWeights& w, size_t k, bool simd,
                     std::vector<uint32_t>* top) {
  simd::ScoreLanes& L = b->lanes;
  const size_t n = L.level_lo.size();
  if (simd) {
    simd::ScoreIntervals(L.level_lo.data(), L.level_hi.data(),
                         L.avail_lo.data(), L.avail_hi.data(),
                         L.der_lo.data(), L.der_hi.data(), n, w,
                         L.sc_min.data(), L.sc_max.data());
    simd::Midpoints(L.sc_min.data(), L.sc_max.data(), n, L.mid.data());
    simd::DescendingKeys(L.mid.data(), n, L.keys_mid.data());
  } else {
    simd::ScoreIntervalsScalar(L.level_lo.data(), L.level_hi.data(),
                               L.avail_lo.data(), L.avail_hi.data(),
                               L.der_lo.data(), L.der_hi.data(), n, w,
                               L.sc_min.data(), L.sc_max.data());
    simd::MidpointsScalar(L.sc_min.data(), L.sc_max.data(), n, L.mid.data());
    simd::DescendingKeysScalar(L.mid.data(), n, L.keys_mid.data());
  }
  top->resize(n);
  std::iota(top->begin(), top->end(), 0u);
  simd::PartialSelectDescending(L.keys_mid.data(), L.ids.data(), top->data(),
                                n, std::min(k, n));
  top->resize(std::min(k, n));
}

bool TablesBitwiseEqual(const OfferingTable& a, const OfferingTable& b,
                        size_t* compared) {
  if (a.entries.size() != b.entries.size()) return false;
  for (size_t i = 0; i < a.entries.size(); ++i) {
    const OfferingEntry& x = a.entries[i];
    const OfferingEntry& y = b.entries[i];
    if (x.charger_id != y.charger_id ||
        Bits(x.score.sc_min) != Bits(y.score.sc_min) ||
        Bits(x.score.sc_max) != Bits(y.score.sc_max) ||
        Bits(x.ecs.level.lo) != Bits(y.ecs.level.lo) ||
        Bits(x.ecs.level.hi) != Bits(y.ecs.level.hi) ||
        Bits(x.ecs.availability.lo) != Bits(y.ecs.availability.lo) ||
        Bits(x.ecs.availability.hi) != Bits(y.ecs.availability.hi) ||
        Bits(x.ecs.derouting.lo) != Bits(y.ecs.derouting.lo) ||
        Bits(x.ecs.derouting.hi) != Bits(y.ecs.derouting.hi) ||
        Bits(x.eta_s) != Bits(y.eta_s)) {
      return false;
    }
    ++(*compared);
  }
  return true;
}

int Main(int argc, char** argv) {
  bench::BenchConfig cfg = bench::BenchConfig::FromArgs(argc, argv);
  const ScoreWeights w = ScoreWeights::AWE();

  bench::BenchJsonWriter json;
  TableWriter tw({"candidates", "aos+sort us", "soa+simd us", "speedup"});
  bool ok = true;

  // --- Part 1: kernel parity + speedup over the AoS replica. -------------
  const size_t batch_sizes[] = {16, 64, 256, 1024};
  const int kRounds = cfg.repetitions > 1 ? 9 : 5;
  const int kPassesPerRound = 64;  // batches are microseconds; amortize clock
  for (size_t n : batch_sizes) {
    Batch batch = Batch::Fuzzed(n, cfg.seed ^ (n * 0x9E3779B97F4A7C15ull));
    std::vector<ScorePair> aos_scores;
    std::vector<uint32_t> aos_top, soa_top, scalar_top;

    // Parity first: SIMD kernels vs scalar reference, bit for bit, and the
    // keyed partial select vs the AoS full-sort prefix.
    AosScoreAndRank(batch.aos, w, kTopK, &aos_scores, &aos_top);
    SoaScoreAndRank(&batch, w, kTopK, /*simd=*/true, &soa_top);
    for (size_t i = 0; i < n; ++i) {
      if (Bits(batch.lanes.sc_min[i]) != Bits(aos_scores[i].sc_min) ||
          Bits(batch.lanes.sc_max[i]) != Bits(aos_scores[i].sc_max)) {
        std::cerr << "FAIL: SIMD score differs from ComputeScorePair at lane "
                  << i << " (n=" << n << ")\n";
        ok = false;
      }
    }
    if (soa_top != aos_top) {
      std::cerr << "FAIL: partial select prefix differs from full-sort "
                   "prefix (n="
                << n << ")\n";
      ok = false;
    }
    SoaScoreAndRank(&batch, w, kTopK, /*simd=*/false, &scalar_top);
    if (scalar_top != soa_top) {
      std::cerr << "FAIL: scalar-oracle ranking differs from SIMD ranking "
                   "(n="
                << n << ")\n";
      ok = false;
    }

    // Interleaved min-of-rounds.
    uint64_t aos_ns = UINT64_MAX;
    uint64_t soa_ns = UINT64_MAX;
    for (int round = 0; round < kRounds; ++round) {
      for (int side = 0; side < 2; ++side) {
        const bool run_soa = (round + side) % 2 == 1;
        const uint64_t start = NowNs();
        for (int pass = 0; pass < kPassesPerRound; ++pass) {
          if (run_soa) {
            SoaScoreAndRank(&batch, w, kTopK, /*simd=*/true, &soa_top);
          } else {
            AosScoreAndRank(batch.aos, w, kTopK, &aos_scores, &aos_top);
          }
        }
        const uint64_t elapsed = NowNs() - start;
        uint64_t& best = run_soa ? soa_ns : aos_ns;
        best = std::min(best, elapsed);
      }
    }
    const double speedup = static_cast<double>(aos_ns) /
                           static_cast<double>(std::max<uint64_t>(soa_ns, 1));
    tw.AddRow({std::to_string(n), TableWriter::Fmt(aos_ns / 1e3, 1),
               TableWriter::Fmt(soa_ns / 1e3, 1),
               TableWriter::Fmt(speedup, 2) + "x"});
    json.BeginRecord();
    json.Str("mode", "soa_vs_aos");
    json.Str("isa", simd::kIsaName);
    json.Num("lane_width", static_cast<double>(simd::kLaneWidth));
    json.Num("candidates", static_cast<double>(n));
    json.Num("top_k", static_cast<double>(kTopK));
    json.Num("passes", static_cast<double>(kPassesPerRound));
    json.Num("aos_ns", static_cast<double>(aos_ns));
    json.Num("soa_ns", static_cast<double>(soa_ns));
    json.Num("speedup", speedup);
    if (n >= 64 && speedup < kMinSpeedupAt64) {
      std::cerr << "FAIL: SoA path only " << speedup << "x faster at " << n
                << " candidates (floor " << kMinSpeedupAt64 << "x)\n";
      ok = false;
    }
  }

  std::cout << "bench_micro_score: isa " << simd::kIsaName << " (x"
            << simd::kLaneWidth << " lanes), top-" << kTopK << ", min of "
            << kRounds << " interleaved rounds x " << kPassesPerRound
            << " passes\n\n";
  tw.RenderText(std::cout);

  // --- Part 2: end-to-end table parity, SIMD on vs off, all backends. ----
  std::cout << "\nbackend parity (SIMD on vs off, bitwise tables):\n";
  for (SpatialIndexKind kind : kAllSpatialIndexKinds) {
    bench::BenchConfig backend_cfg = cfg;
    backend_cfg.index_kind = kind;
    bench::PreparedWorld world =
        bench::Prepare(DatasetKind::kOldenburg, backend_cfg);
    EcoChargeOptions opts;
    opts.radius_m = cfg.radius_m;
    opts.q_distance_m = 0.0;  // regenerate every query: exercise the path
    opts.refine_exact_derouting = true;
    EcoChargeOptions scalar_opts = opts;
    scalar_opts.use_simd = false;
    EcoChargeRanker simd_ranker(world.env->estimator.get(),
                                world.env->charger_index.get(), w, opts);
    EcoChargeRanker scalar_ranker(world.env->estimator.get(),
                                  world.env->charger_index.get(), w,
                                  scalar_opts);
    QueryContext simd_ctx, scalar_ctx;
    OfferingTable simd_table, scalar_table;
    size_t compared = 0;
    size_t mismatches = 0;
    for (const VehicleState& state : world.states) {
      simd_ranker.RankInto(state, cfg.k, simd_ctx, &simd_table);
      scalar_ranker.RankInto(state, cfg.k, scalar_ctx, &scalar_table);
      if (!TablesBitwiseEqual(simd_table, scalar_table, &compared)) {
        ++mismatches;
      }
    }
    std::cout << "  " << SpatialIndexKindName(kind) << ": "
              << world.states.size() << " states, " << compared
              << " entries compared, " << mismatches << " mismatches\n";
    json.BeginRecord();
    json.Str("mode", "backend_parity");
    json.Str("index", std::string(SpatialIndexKindName(kind)));
    json.Num("states", static_cast<double>(world.states.size()));
    json.Num("entries_compared", static_cast<double>(compared));
    json.Num("mismatched_tables", static_cast<double>(mismatches));
    if (mismatches > 0 || compared == 0) {
      std::cerr << "FAIL: " << SpatialIndexKindName(kind) << " backend: "
                << mismatches << " mismatched tables (" << compared
                << " entries compared)\n";
      ok = false;
    }
  }

  if (!json.WriteFile("BENCH_score.json")) {
    std::cerr << "failed to write BENCH_score.json\n";
    return 1;
  }
  std::cout << "\nwrote BENCH_score.json (" << json.num_records()
            << " records)\n";
  if (!ok) return 1;
  std::cout << "PASS: scalar/SIMD bit parity on all backends, SoA >= "
            << kMinSpeedupAt64 << "x at >= 64 candidates\n";
  return 0;
}

}  // namespace
}  // namespace ecocharge

int main(int argc, char** argv) { return ecocharge::Main(argc, argv); }
