// Micro-benchmarks of the spatial index family: build, kNN, and range
// queries on quadtree / kd-tree / grid / linear scan, over point-cloud
// sizes bracketing the paper's charger fleets.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "spatial/linear_scan.h"
#include "spatial/quadtree.h"
#include "spatial/aknn.h"
#include "spatial/rtree.h"

namespace ecocharge {
namespace {

std::vector<Point> MakeCloud(size_t n, uint64_t seed = 99) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.NextDouble(0.0, 50000.0),
                      rng.NextDouble(0.0, 40000.0)});
  }
  return points;
}

std::unique_ptr<SpatialIndex> MakeIndex(int kind) {
  switch (kind) {
    case 0:
      return std::make_unique<LinearScanIndex>();
    case 1:
      return std::make_unique<QuadTree>();
    case 2:
      return std::make_unique<KdTree>();
    case 3:
      return std::make_unique<GridIndex>();
    default:
      return std::make_unique<RTree>();
  }
}

const char* IndexName(int kind) {
  switch (kind) {
    case 0:
      return "linear";
    case 1:
      return "quadtree";
    case 2:
      return "kdtree";
    case 3:
      return "grid";
    default:
      return "rtree";
  }
}

void BM_IndexBuild(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(1));
  std::vector<Point> cloud = MakeCloud(n);
  for (auto _ : state) {
    auto index = MakeIndex(static_cast<int>(state.range(0)));
    index->Build(cloud);
    benchmark::DoNotOptimize(index->size());
  }
  state.SetLabel(IndexName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_IndexBuild)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1000, 10000}});

void BM_IndexKnn(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(1));
  auto index = MakeIndex(static_cast<int>(state.range(0)));
  index->Build(MakeCloud(n));
  Rng rng(7);
  for (auto _ : state) {
    Point q{rng.NextDouble(0.0, 50000.0), rng.NextDouble(0.0, 40000.0)};
    benchmark::DoNotOptimize(index->Knn(q, 8));
  }
  state.SetLabel(IndexName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_IndexKnn)->ArgsProduct({{0, 1, 2, 3, 4}, {1000, 10000}});

void BM_IndexRange(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(1));
  auto index = MakeIndex(static_cast<int>(state.range(0)));
  index->Build(MakeCloud(n));
  Rng rng(7);
  for (auto _ : state) {
    Point q{rng.NextDouble(0.0, 50000.0), rng.NextDouble(0.0, 40000.0)};
    benchmark::DoNotOptimize(index->RangeSearch(q, 5000.0));
  }
  state.SetLabel(IndexName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_IndexRange)->ArgsProduct({{0, 1, 2, 3, 4}, {1000, 10000}});

void BM_AllKnnJoin(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Point> cloud = MakeCloud(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeAllKnn(cloud, 8));
  }
}
BENCHMARK(BM_AllKnnJoin)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ecocharge

BENCHMARK_MAIN();
