// Batched-derouting speedup gate: the refinement phase's ExactBatch (one
// multi-target forward sweep + one shared backward sweep per query) against
// the per-candidate baseline (one point-to-point search pair per charger),
// swept over batch size x query states, plus the cross-recomputation-point
// warm-start of a continuous run.
//
// The binary asserts the tentpole's contract and exits 1 when it breaks:
//   1. bit-identical estimates between ExactBatch and N x Exact;
//   2. the batched path is >= 2x faster once the batch holds >= 16 targets;
//   3. a bucketed multi-segment continuous schedule reuses the backward
//      sweep (warm_start_hits > 0).
// Timing uses interleaved min-of-rounds (see bench_micro_obs.cc for why).
// Results are emitted as BENCH_derouting.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "traffic/derouting.h"

namespace ecocharge {
namespace {

constexpr double kMinSpeedupAt16 = 2.0;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool SameBits(const DeroutingEstimate& a, const DeroutingEstimate& b) {
  return std::memcmp(&a.extra_distance_min_m, &b.extra_distance_min_m,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.extra_distance_max_m, &b.extra_distance_max_m,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.eta_s, &b.eta_s, sizeof(double)) == 0;
}

/// `n` refinement candidates around `position`: every 4th of the 4n
/// nearest chargers (by Euclidean distance, the filtering phase's order).
/// The stride models the pipeline's selection — refinement candidates are
/// the score winners of the whole filter radius, not the n geometrically
/// nearest, so they spread across the candidate ball rather than packing
/// into its center.
std::vector<ChargerRef> RefinementCandidates(
    const std::vector<EvCharger>& fleet, const Point& position, size_t n) {
  std::vector<uint32_t> order(fleet.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t pool = std::min(4 * n, fleet.size());
  std::partial_sort(order.begin(), order.begin() + pool, order.end(),
                    [&](uint32_t a, uint32_t b) {
                      return Distance(position, fleet[a].position) <
                             Distance(position, fleet[b].position);
                    });
  const size_t stride = std::max<size_t>(pool / std::max<size_t>(n, 1), 1);
  std::vector<ChargerRef> refs;
  refs.reserve(n);
  for (size_t i = 0; i < pool && refs.size() < n; i += stride) {
    refs.push_back(&fleet[order[i]]);
  }
  return refs;
}

int Main(int argc, char** argv) {
  bench::BenchConfig cfg = bench::BenchConfig::FromArgs(argc, argv);
  bench::PreparedWorld world = bench::Prepare(DatasetKind::kOldenburg, cfg);
  const std::vector<EvCharger>& fleet = world.env->chargers;
  EcEstimator& estimator = *world.env->estimator;

  const size_t num_states = std::min<size_t>(4, world.states.size());
  std::vector<DeroutingQuery> queries;
  for (size_t s = 0; s < num_states; ++s) {
    queries.push_back(estimator.MakeDeroutingQuery(world.states[s]));
  }

  // Independent services for the two paths so neither benefits from the
  // other's warmed backward sweep; both share the network and traffic.
  DeroutingService per_candidate(world.env->dataset.network,
                                 world.env->congestion.get());
  DeroutingService batched(world.env->dataset.network,
                           world.env->congestion.get());
  DeroutingBatchScratch scratch;
  std::vector<DeroutingEstimate> batch_out;

  bench::BenchJsonWriter json;
  TableWriter tw({"targets", "per-candidate us", "batched us", "speedup"});
  bool ok = true;

  const size_t batch_sizes[] = {4, 16, 48};
  const int kRounds = cfg.repetitions > 1 ? 7 : 3;
  for (size_t n : batch_sizes) {
    if (n > fleet.size()) continue;
    std::vector<std::vector<ChargerRef>> candidates;
    for (size_t s = 0; s < num_states; ++s) {
      candidates.push_back(
          RefinementCandidates(fleet, world.states[s].position, n));
    }

    // Parity first: a batch must be exactly N per-candidate calls fused.
    size_t compared = 0;
    for (size_t s = 0; s < num_states; ++s) {
      scratch.Reserve(n);
      batched.ExactBatch(queries[s], candidates[s], &scratch, &batch_out);
      for (size_t i = 0; i < candidates[s].size(); ++i) {
        DeroutingEstimate exact =
            per_candidate.Exact(queries[s], *candidates[s][i]);
        if (!SameBits(exact, batch_out[i])) {
          std::cerr << "FAIL: estimate mismatch at state " << s
                    << " candidate " << i << " (batch size " << n << ")\n";
          ok = false;
        }
        ++compared;
      }
    }

    // Interleaved min-of-rounds over the full (states x candidates) pass.
    uint64_t per_candidate_ns = UINT64_MAX;
    uint64_t batched_ns = UINT64_MAX;
    for (int round = 0; round < kRounds; ++round) {
      for (int side = 0; side < 2; ++side) {
        const bool run_batch = (round + side) % 2 == 1;
        const uint64_t start = NowNs();
        for (size_t s = 0; s < num_states; ++s) {
          if (run_batch) {
            batched.ExactBatch(queries[s], candidates[s], &scratch,
                               &batch_out);
          } else {
            for (ChargerRef c : candidates[s]) {
              per_candidate.Exact(queries[s], *c);
            }
          }
        }
        const uint64_t elapsed = NowNs() - start;
        uint64_t& best = run_batch ? batched_ns : per_candidate_ns;
        best = std::min(best, elapsed);
      }
    }

    const double speedup = static_cast<double>(per_candidate_ns) /
                           static_cast<double>(std::max<uint64_t>(
                               batched_ns, 1));
    tw.AddRow({std::to_string(n),
               TableWriter::Fmt(per_candidate_ns / 1e3, 1),
               TableWriter::Fmt(batched_ns / 1e3, 1),
               TableWriter::Fmt(speedup, 2) + "x"});
    json.BeginRecord();
    json.Str("mode", "batch_vs_per_candidate");
    json.Num("targets", static_cast<double>(n));
    json.Num("states", static_cast<double>(num_states));
    json.Num("estimates_compared", static_cast<double>(compared));
    json.Num("per_candidate_ns", static_cast<double>(per_candidate_ns));
    json.Num("batched_ns", static_cast<double>(batched_ns));
    json.Num("speedup", speedup);
    if (n >= 16 && speedup < kMinSpeedupAt16) {
      std::cerr << "FAIL: batched refinement only " << speedup
                << "x faster at " << n << " targets (floor "
                << kMinSpeedupAt16 << "x)\n";
      ok = false;
    }
  }

  std::cout << "bench_micro_derouting: " << num_states << " query states, "
            << fleet.size() << " chargers, min of " << kRounds
            << " interleaved rounds\n\n";
  tw.RenderText(std::cout);

  // Continuous-run warm start: each segment's recomputation points share
  // the return pair; with costs bucketed to the congestion noise bucket
  // they also share the cost time, so every point after the segment's
  // first resumes the settled backward sweep instead of rebuilding it.
  const size_t warm_n = std::min<size_t>(16, fleet.size());
  const size_t warm_segments = std::min<size_t>(3, world.states.size());
  const int kPointsPerSegment = 4;
  const double kRecomputeWindowS = 4.0 * 60.0;
  uint64_t cold_ns = UINT64_MAX;
  uint64_t warm_ns = UINT64_MAX;
  uint64_t warm_hits = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int side = 0; side < 2; ++side) {
      const bool bucketed = (round + side) % 2 == 1;
      DeroutingService service(
          world.env->dataset.network, world.env->congestion.get(), 1.3,
          bucketed ? CongestionModel::kNoiseBucketSeconds : 0.0);
      const uint64_t start = NowNs();
      for (size_t s = 0; s < warm_segments; ++s) {
        DeroutingQuery q = estimator.MakeDeroutingQuery(world.states[s]);
        std::vector<ChargerRef> refs =
            RefinementCandidates(fleet, world.states[s].position, warm_n);
        for (int p = 0; p < kPointsPerSegment; ++p) {
          q.now = world.states[s].time + p * kRecomputeWindowS;
          service.ExactBatch(q, refs, &scratch, &batch_out);
        }
      }
      const uint64_t elapsed = NowNs() - start;
      uint64_t& best = bucketed ? warm_ns : cold_ns;
      best = std::min(best, elapsed);
      if (bucketed) warm_hits = std::max(warm_hits, service.warm_start_hits());
    }
  }
  const double warm_speedup = static_cast<double>(cold_ns) /
                              static_cast<double>(std::max<uint64_t>(
                                  warm_ns, 1));
  std::cout << "\ncontinuous schedule (" << warm_segments << " segments x "
            << kPointsPerSegment << " recompute points x " << warm_n
            << " targets): unbucketed "
            << TableWriter::Fmt(cold_ns / 1e3, 1) << " us, bucketed "
            << TableWriter::Fmt(warm_ns / 1e3, 1) << " us ("
            << TableWriter::Fmt(warm_speedup, 2) << "x), warm hits "
            << warm_hits << "\n";
  json.BeginRecord();
  json.Str("mode", "continuous_warm_start");
  json.Num("targets", static_cast<double>(warm_n));
  json.Num("segments", static_cast<double>(warm_segments));
  json.Num("points_per_segment", kPointsPerSegment);
  json.Num("unbucketed_ns", static_cast<double>(cold_ns));
  json.Num("bucketed_ns", static_cast<double>(warm_ns));
  json.Num("speedup", warm_speedup);
  json.Num("warm_start_hits", static_cast<double>(warm_hits));
  if (warm_hits == 0) {
    std::cerr << "FAIL: the bucketed continuous schedule never warm-started "
                 "the backward sweep\n";
    ok = false;
  }

  if (!json.WriteFile("BENCH_derouting.json")) {
    std::cerr << "failed to write BENCH_derouting.json\n";
    return 1;
  }
  std::cout << "\nwrote BENCH_derouting.json (" << json.num_records()
            << " records)\n";
  if (!ok) return 1;
  std::cout << "PASS: batched refinement bit-identical and >= "
            << kMinSpeedupAt16 << "x at >= 16 targets, warm start active\n";
  return 0;
}

}  // namespace
}  // namespace ecocharge

int main(int argc, char** argv) { return ecocharge::Main(argc, argv); }
