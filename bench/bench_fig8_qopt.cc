// Figure 8 — Q-opt Evaluation.
//
// Sweeps EcoCharge's Dynamic-Caching range distance Q over {5, 10, 15} km.
// Expected shape (paper): larger Q reuses cached Offering Tables more
// aggressively — faster, but the adapted solutions drift from the optimum
// as the vehicle moves away from the cache anchor, so SC drops.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "core/ecocharge.h"

using namespace ecocharge;
using bench::BenchConfig;
using bench::MeanStd;

int main(int argc, char** argv) {
  Logger::set_threshold(LogLevel::kWarning);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  ScoreWeights weights = ScoreWeights::AWE();
  const double q_km[] = {5.0, 10.0, 15.0};

  std::cout << "=== Figure 8: Q-opt Evaluation of EcoCharge ===\n"
            << "k=" << cfg.k << " R=" << cfg.radius_m / 1000.0
            << "km chargers=" << cfg.num_chargers
            << " states=" << cfg.max_states << " reps=" << cfg.repetitions
            << "\n\n";

  TableWriter table(
      {"Dataset", "Q [km]", "F_t [ms]", "SC [%]", "Cache hit rate"});
  for (DatasetKind kind : AllDatasetKinds()) {
    bench::PreparedWorld world = bench::Prepare(kind, cfg);
    Evaluator evaluator(world.env->estimator.get(), weights);
    evaluator.SetWorkload(world.states);

    for (double q : q_km) {
      EcoChargeOptions opts;
      opts.radius_m = cfg.radius_m;
      opts.q_distance_m = q * 1000.0;
      EcoChargeRanker eco(world.env->estimator.get(),
                          world.env->charger_index.get(), weights, opts);
      MethodEvaluation m = evaluator.Evaluate(eco, cfg.k, cfg.repetitions);
      ECOCHARGE_CHECK(
          table
              .AddRow({std::string(DatasetName(kind)), TableWriter::Fmt(q, 0),
                       MeanStd(m.ft_ms), MeanStd(m.sc_percent),
                       TableWriter::Fmt(100.0 * eco.cache().HitRate(), 1) +
                           " %"})
              .ok());
    }
  }
  table.RenderText(std::cout);
  std::cout << "\n(Hit rate: share of Offering Tables adapted from the "
               "previous solution instead of regenerated.)\n";
  return 0;
}
