// Micro-benchmarks of the CkNN-EC core: EC estimation, the iterative
// deepening intersection (eq. 6), and the EcoCharge hot paths (cache hit
// vs. full regeneration) — the ablation knobs DESIGN.md calls out.

#include <benchmark/benchmark.h>

#include "bench/bench_gbench_json.h"
#include "common/rng.h"
#include "core/cknn_ec.h"
#include "core/ecocharge.h"
#include "core/environment.h"
#include "core/workload.h"

namespace ecocharge {
namespace {

struct World {
  std::unique_ptr<Environment> env;
  std::vector<VehicleState> states;
};

World& SharedWorld() {
  static World world = [] {
    EnvironmentOptions eo;
    eo.kind = DatasetKind::kOldenburg;
    eo.dataset_scale = 0.01;
    eo.num_chargers = 1000;
    eo.seed = 42;
    World w;
    w.env = MakeEnvironment(eo).MoveValueUnsafe();
    WorkloadOptions wo;
    wo.max_trips = 10;
    wo.max_states = 32;
    w.states = BuildWorkload(w.env->dataset, wo);
    return w;
  }();
  return world;
}

void BM_EstimateIntervals(benchmark::State& state) {
  World& w = SharedWorld();
  Rng rng(3);
  for (auto _ : state) {
    const VehicleState& vs = w.states[rng.NextBounded(w.states.size())];
    const EvCharger& c =
        w.env->chargers[rng.NextBounded(w.env->chargers.size())];
    benchmark::DoNotOptimize(w.env->estimator->EstimateIntervals(vs, c));
  }
}
BENCHMARK(BM_EstimateIntervals);

void BM_ExactComponents(benchmark::State& state) {
  World& w = SharedWorld();
  Rng rng(3);
  for (auto _ : state) {
    const VehicleState& vs = w.states[rng.NextBounded(w.states.size())];
    const EvCharger& c =
        w.env->chargers[rng.NextBounded(w.env->chargers.size())];
    benchmark::DoNotOptimize(w.env->estimator->ReferenceComponents(vs, c));
  }
}
BENCHMARK(BM_ExactComponents);

void BM_IterativeDeepening(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(17);
  std::vector<ScoredCandidate> pool(n);
  for (size_t i = 0; i < n; ++i) {
    pool[i].charger_id = static_cast<ChargerId>(i);
    double a = rng.NextDouble();
    double b = rng.NextDouble();
    pool[i].score = ScorePair{a, b};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IterativeDeepeningIntersection(pool, 3));
  }
}
BENCHMARK(BM_IterativeDeepening)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EcoChargeFullQuery(benchmark::State& state) {
  World& w = SharedWorld();
  ScoreWeights weights = ScoreWeights::AWE();
  EcoChargeOptions opts;
  opts.q_distance_m = 0.0;  // force regeneration every query
  EcoChargeRanker eco(w.env->estimator.get(), w.env->charger_index.get(),
                      weights, opts);
  Rng rng(3);
  for (auto _ : state) {
    const VehicleState& vs = w.states[rng.NextBounded(w.states.size())];
    benchmark::DoNotOptimize(eco.Rank(vs, 3));
  }
}
BENCHMARK(BM_EcoChargeFullQuery);

void BM_EcoChargeCachedQuery(benchmark::State& state) {
  World& w = SharedWorld();
  ScoreWeights weights = ScoreWeights::AWE();
  EcoChargeOptions opts;
  opts.q_distance_m = 1e9;  // every repeat query is a cache hit
  opts.cache_ttl_s = 1e12;
  EcoChargeRanker eco(w.env->estimator.get(), w.env->charger_index.get(),
                      weights, opts);
  const VehicleState& vs = w.states.front();
  eco.Rank(vs, 3);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(eco.Rank(vs, 3));
  }
}
BENCHMARK(BM_EcoChargeCachedQuery);

void BM_BruteForceQuery(benchmark::State& state) {
  World& w = SharedWorld();
  ScoreWeights weights = ScoreWeights::AWE();
  // One state, whole fleet, exact components — the per-table cost the
  // paper's Brute-Force pays.
  const VehicleState& vs = w.states.front();
  for (auto _ : state) {
    double sum = 0.0;
    for (const EvCharger& c : w.env->chargers) {
      sum += w.env->estimator->ReferenceScore(vs, c, weights);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BruteForceQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ecocharge

int main(int argc, char** argv) {
  return ecocharge::bench::RunAndExportJson(argc, argv, "BENCH_core.json");
}
