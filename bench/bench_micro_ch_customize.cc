// CH customization gate: the cost of pricing the hierarchy for a
// congestion bucket, across the three sweep strategies and the shared
// plane cache.
//
// The binary asserts the tentpole's contract and exits 1 when it breaks:
//   1. serial (threads=0), level-parallel (threads=2 and 4), and
//      incremental sweeps produce bit-identical planes — costs AND via
//      assignments — for every weight vector tried (unconditional);
//   2. the 4-thread sweep is >= 2x faster than serial (asserted only when
//      the machine has >= 4 hardware threads; waived with a message
//      otherwise — parity above still ran);
//   3. an incremental re-customization after a 2-class weight delta is
//      >= 3x faster than a full sweep, and actually took the incremental
//      path (the dirty estimate stayed under the fallback threshold);
//   4. N workers hammering the shared ChCustomizationCache over the same
//      B buckets trigger exactly B builds — the cache eliminated
//      >= (N-1)/N of the per-worker customizations.
// Timing uses interleaved min-of-rounds (see bench_micro_obs.cc for why).
// Results are emitted as BENCH_ch_customize.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ch/ch_customize.h"
#include "ch/ch_index.h"
#include "ch/contraction.h"
#include "graph/road_network.h"
#include "traffic/congestion.h"

namespace ecocharge {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Bitwise plane equality: arc costs and via assignments. memcmp over the
/// doubles is deliberate — it distinguishes -0.0/0.0 and NaN payloads, the
/// contract the derouting parity gates rely on.
bool PlanesSameBits(const ChCustomization& a, const ChCustomization& b) {
  return a.cw_up.size() == b.cw_up.size() &&
         a.cw_down.size() == b.cw_down.size() &&
         a.via_up.size() == b.via_up.size() &&
         a.via_down.size() == b.via_down.size() &&
         std::memcmp(a.cw_up.data(), b.cw_up.data(),
                     a.cw_up.size() * sizeof(double)) == 0 &&
         std::memcmp(a.cw_down.data(), b.cw_down.data(),
                     a.cw_down.size() * sizeof(double)) == 0 &&
         std::memcmp(a.via_up.data(), b.via_up.data(),
                     a.via_up.size() * sizeof(NodeId)) == 0 &&
         std::memcmp(a.via_down.data(), b.via_down.data(),
                     a.via_down.size() * sizeof(NodeId)) == 0;
}

/// Local-road city grid with highway/arterial *feeder spurs*: dead-end
/// chains (on-ramps, service corridors) hanging off boundary nodes, each
/// attached to the grid at a single node. A single-attachment appendage can
/// carry no through-triangle — every triangle containing a spur arc has its
/// apex and both enclosing endpoints inside the spur — so the spur classes
/// never enter the grid core's shortcut closure, and a highway+arterial
/// weight delta dirties only the spur records themselves. That is the
/// sparse-closure regime the incremental sweep exists for: the rare upper
/// classes re-price between congestion buckets while the dominant local
/// class holds. (The geometric corridor of bench_micro_ch is the opposite
/// workload — its arterial anchor mesh threads every cell, so a 2-class
/// delta dirties nearly every row and incremental correctly falls back;
/// likewise a grid whose highway cross sits on the top nested-dissection
/// separators poisons every upper-hierarchy closure.)
Result<std::shared_ptr<RoadNetwork>> MakeSpurGrid(int n) {
  constexpr double kSpacingM = 500.0;
  constexpr double kSpurSpacingM = 300.0;
  constexpr int kSpurLen = 6;    // chain nodes per spur
  constexpr int kSpurEvery = 10; // boundary nodes between spur attachments
  GraphBuilder b;
  std::vector<NodeId> grid(static_cast<size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      grid[static_cast<size_t>(y) * n + x] =
          b.AddNode(Point{x * kSpacingM, y * kSpacingM});
    }
  }
  auto at = [&](int x, int y) { return grid[static_cast<size_t>(y) * n + x]; };
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x + 1 < n; ++x) {
      ECOCHARGE_RETURN_NOT_OK(
          b.AddBidirectional(at(x, y), at(x + 1, y), RoadClass::kLocal));
    }
  }
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y + 1 < n; ++y) {
      ECOCHARGE_RETURN_NOT_OK(
          b.AddBidirectional(at(x, y), at(x, y + 1), RoadClass::kLocal));
    }
  }
  // Spurs grow outward from the south and north boundaries, alternating
  // highway / arterial so the 2-class delta below is genuine.
  int spur_index = 0;
  auto add_spur = [&](NodeId attach, double ax, double ay,
                      double dy) -> Status {
    const RoadClass rc = (spur_index++ % 2 == 0) ? RoadClass::kHighway
                                                 : RoadClass::kArterial;
    NodeId prev = attach;
    for (int i = 1; i <= kSpurLen; ++i) {
      const NodeId next = b.AddNode(Point{ax, ay + dy * i * kSpurSpacingM});
      ECOCHARGE_RETURN_NOT_OK(b.AddBidirectional(prev, next, rc));
      prev = next;
    }
    return Status::OK();
  };
  for (int x = 0; x < n; x += kSpurEvery) {
    ECOCHARGE_RETURN_NOT_OK(add_spur(at(x, 0), x * kSpacingM, 0.0, -1.0));
    ECOCHARGE_RETURN_NOT_OK(
        add_spur(at(x, n - 1), x * kSpacingM, (n - 1) * kSpacingM, 1.0));
  }
  return b.Build();
}

ChClassWeights WeightsAt(const CongestionModel& congestion, SimTime tau) {
  ChClassWeights w;
  for (int c = 0; c < kChNumClasses; ++c) {
    w.w[c] =
        1.0 / congestion.ActualSpeedFactor(static_cast<RoadClass>(c), tau);
  }
  return w;
}

int Main(int argc, char** argv) {
  bool quick = false;
  uint64_t nodes = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (nodes == 0) nodes = quick ? 90000 : 360000;

  bench::BenchJsonWriter json;
  bool ok = true;

  uint64_t t0 = NowNs();
  auto net_result =
      MakeSpurGrid(static_cast<int>(std::sqrt(static_cast<double>(nodes))));
  if (!net_result.ok()) {
    std::cerr << "generator: " << net_result.status() << "\n";
    return 1;
  }
  std::shared_ptr<RoadNetwork> network = net_result.MoveValueUnsafe();
  std::cout << "graph: " << network->NumNodes() << " nodes, "
            << network->NumEdges() << " edges ("
            << TableWriter::Fmt((NowNs() - t0) / 1e9, 1) << " s)\n";

  t0 = NowNs();
  auto ch_result = BuildChIndex(*network);
  if (!ch_result.ok()) {
    std::cerr << "contraction: " << ch_result.status() << "\n";
    return 1;
  }
  std::shared_ptr<ChIndex> ch = ch_result.MoveValueUnsafe();
  std::cout << "contraction: " << TableWriter::Fmt((NowNs() - t0) / 1e9, 1)
            << " s\n";

  CongestionModel congestion(7);
  // Three congestion buckets: morning rush, midday, evening rush.
  std::vector<ChClassWeights> buckets;
  for (double hour : {8.5, 13.0, 17.5}) {
    buckets.push_back(WeightsAt(congestion, hour * 3600.0));
  }

  // -------------------------------------------------------------------
  // 1. Bit parity: serial vs 2-thread vs 4-thread vs incremental, every
  //    bucket. Unconditional — this is the contract everything else
  //    (planes cache, profile queries, Offering Table parity) rests on.
  // -------------------------------------------------------------------
  ChCustomizer serial(*ch, 0);
  ChCustomizer par2(*ch, 2);
  ChCustomizer par4(*ch, 4);
  ChCustomizer inc(*ch, 0);
  std::shared_ptr<const ChCustomization> prev;
  size_t parity_planes = 0;
  for (const ChClassWeights& w : buckets) {
    auto s = serial.Customize(w);
    auto p2 = par2.Customize(w);
    auto p4 = par4.Customize(w);
    auto in = inc.CustomizeFrom(prev, w);
    if (!PlanesSameBits(*s, *p2) || !PlanesSameBits(*s, *p4)) {
      std::cerr << "FAIL: parallel plane differs from serial at bucket "
                << parity_planes << "\n";
      ok = false;
    }
    if (!PlanesSameBits(*s, *in)) {
      std::cerr << "FAIL: incremental plane differs from serial at bucket "
                << parity_planes << "\n";
      ok = false;
    }
    prev = std::move(s);
    ++parity_planes;
  }
  std::cout << "parity: " << parity_planes
            << " buckets priced serial/2t/4t/incremental, planes "
            << (ok ? "bit-identical" : "MISMATCHED") << "\n";

  // -------------------------------------------------------------------
  // 2. Parallel speedup: 4 threads vs serial, interleaved min-of-rounds.
  // -------------------------------------------------------------------
  const unsigned hw = std::thread::hardware_concurrency();
  const int kRounds = quick ? 3 : 5;
  uint64_t serial_ns = UINT64_MAX, par_ns = UINT64_MAX;
  for (int round = 0; round < kRounds; ++round) {
    for (int side = 0; side < 2; ++side) {
      const bool run_par = (round + side) % 2 == 1;
      ChCustomizer& c = run_par ? par4 : serial;
      const uint64_t start = NowNs();
      c.Customize(buckets[round % buckets.size()]);
      const uint64_t elapsed = NowNs() - start;
      uint64_t& best = run_par ? par_ns : serial_ns;
      best = std::min(best, elapsed);
    }
  }
  const double par_speedup = static_cast<double>(serial_ns) /
                             static_cast<double>(std::max<uint64_t>(par_ns, 1));
  std::cout << "full sweep: serial " << TableWriter::Fmt(serial_ns / 1e6, 1)
            << " ms, 4 threads " << TableWriter::Fmt(par_ns / 1e6, 1)
            << " ms (" << TableWriter::Fmt(par_speedup, 2) << "x, "
            << serial.num_levels() << " levels)\n";
  const double par_floor = 2.0;
  if (hw >= 4 && par_speedup < par_floor) {
    std::cerr << "FAIL: 4-thread customization only " << par_speedup
              << "x over serial (floor " << par_floor << "x, "
              << hw << " hardware threads)\n";
    ok = false;
  } else if (hw < 4) {
    std::cout << "note: parallel speedup floor waived — only " << hw
              << " hardware thread(s); bit-parity above still asserted\n";
  }

  // -------------------------------------------------------------------
  // 3. Incremental speedup on a 2-class delta: highway + arterial move
  //    (an accident on the spine), locals stay — the dominant class is
  //    untouched, so most rows keep their base bits via one memcpy.
  // -------------------------------------------------------------------
  ChClassWeights base_w = buckets[0];
  ChClassWeights delta_w = base_w;
  delta_w.w[static_cast<int>(RoadClass::kHighway)] *= 1.35;
  delta_w.w[static_cast<int>(RoadClass::kArterial)] *= 1.2;
  const uint8_t delta_mask =
      static_cast<uint8_t>((1u << static_cast<int>(RoadClass::kHighway)) |
                           (1u << static_cast<int>(RoadClass::kArterial)));
  auto base_plane = inc.Customize(base_w);
  const size_t dirty = inc.DirtyArcEstimate(delta_mask);
  const size_t total = inc.total_arcs();
  {
    bool flag = false;
    auto inc_ref = inc.CustomizeFrom(base_plane, delta_w, &flag);
    if (!PlanesSameBits(*serial.Customize(delta_w), *inc_ref)) {
      std::cerr << "FAIL: incremental 2-class-delta plane differs from a "
                   "full sweep\n";
      ok = false;
    }
  }
  bool took_incremental = false;
  uint64_t full_ns = UINT64_MAX, inc_ns = UINT64_MAX;
  for (int round = 0; round < kRounds; ++round) {
    for (int side = 0; side < 2; ++side) {
      const bool run_inc = (round + side) % 2 == 1;
      const uint64_t start = NowNs();
      if (run_inc) {
        bool flag = false;
        inc.CustomizeFrom(base_plane, delta_w, &flag);
        took_incremental = flag;
      } else {
        inc.Customize(delta_w);
      }
      const uint64_t elapsed = NowNs() - start;
      uint64_t& best = run_inc ? inc_ns : full_ns;
      best = std::min(best, elapsed);
    }
  }
  const double inc_speedup = static_cast<double>(full_ns) /
                             static_cast<double>(std::max<uint64_t>(inc_ns, 1));
  std::cout << "2-class delta: full " << TableWriter::Fmt(full_ns / 1e6, 1)
            << " ms, incremental " << TableWriter::Fmt(inc_ns / 1e6, 1)
            << " ms (" << TableWriter::Fmt(inc_speedup, 2) << "x; dirty "
            << dirty << " / " << total << " arc records)\n";
  const double inc_floor = 3.0;
  if (!took_incremental) {
    std::cerr << "FAIL: 2-class delta fell back to a full sweep (dirty "
              << dirty << " of " << total << " arc records)\n";
    ok = false;
  }
  if (inc_speedup < inc_floor) {
    std::cerr << "FAIL: incremental re-customization only " << inc_speedup
              << "x over a full sweep (floor " << inc_floor << "x)\n";
    ok = false;
  }

  // -------------------------------------------------------------------
  // 4. Shared cache dedup: N workers x B buckets must cost B builds.
  // -------------------------------------------------------------------
  const size_t kWorkers = 4;
  ChCustomizationCache cache(*ch, /*threads=*/0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&cache, &buckets] {
        for (const ChClassWeights& weights : buckets) {
          if (cache.Get(weights) == nullptr) std::abort();
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  const uint64_t requested = kWorkers * buckets.size();
  const double eliminated =
      1.0 - static_cast<double>(cache.builds()) /
                static_cast<double>(std::max<uint64_t>(requested, 1));
  const double dedup_floor =
      static_cast<double>(kWorkers - 1) / static_cast<double>(kWorkers);
  std::cout << "shared cache: " << kWorkers << " workers x " << buckets.size()
            << " buckets -> " << cache.builds() << " builds, "
            << cache.hits() << " hits (" << TableWriter::Fmt(eliminated, 3)
            << " of per-worker customizations eliminated)\n";
  if (cache.builds() > buckets.size() || eliminated < dedup_floor) {
    std::cerr << "FAIL: shared cache built " << cache.builds() << " planes for "
              << buckets.size() << " buckets across " << kWorkers
              << " workers (must eliminate >= " << dedup_floor
              << " of requests)\n";
    ok = false;
  }

  json.BeginRecord();
  json.Str("mode", "ch_customize_gate");
  json.Num("nodes", static_cast<double>(network->NumNodes()));
  json.Num("edges", static_cast<double>(network->NumEdges()));
  json.Num("arc_records", static_cast<double>(total));
  json.Num("levels", static_cast<double>(serial.num_levels()));
  json.Num("hardware_threads", static_cast<double>(hw));
  json.Num("serial_ns", static_cast<double>(serial_ns));
  json.Num("parallel4_ns", static_cast<double>(par_ns));
  json.Num("parallel_speedup", par_speedup);
  json.Num("parallel_floor", par_floor);
  json.Num("full_ns", static_cast<double>(full_ns));
  json.Num("incremental_ns", static_cast<double>(inc_ns));
  json.Num("incremental_speedup", inc_speedup);
  json.Num("incremental_floor", inc_floor);
  json.Num("dirty_arcs", static_cast<double>(dirty));
  json.Num("cache_builds", static_cast<double>(cache.builds()));
  json.Num("cache_hits", static_cast<double>(cache.hits()));
  json.Num("cache_eliminated", eliminated);
  json.Num("cache_dedup_floor", dedup_floor);

  if (!json.WriteFile("BENCH_ch_customize.json")) {
    std::cerr << "failed to write BENCH_ch_customize.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_ch_customize.json (" << json.num_records()
            << " records)\n";
  if (!ok) return 1;
  std::cout << "PASS: customization bit-identical across strategies; "
            << "incremental " << TableWriter::Fmt(inc_speedup, 1)
            << "x, cache dedup " << TableWriter::Fmt(eliminated, 3) << "\n";
  return 0;
}

}  // namespace
}  // namespace ecocharge

int main(int argc, char** argv) { return ecocharge::Main(argc, argv); }
