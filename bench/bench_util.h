#ifndef ECOCHARGE_BENCH_BENCH_UTIL_H_
#define ECOCHARGE_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table_writer.h"
#include "core/environment.h"
#include "core/evaluation.h"
#include "core/workload.h"

namespace ecocharge {
namespace bench {

/// \brief Shared configuration of the figure-reproduction benches.
///
/// Defaults mirror the paper's setup (Section V-A/B): k = 3, R = 50 km,
/// Q = 5 km, equal weights, >1,000 chargers, ~10 repetitions. `--quick`
/// shrinks the workload for smoke runs.
struct BenchConfig {
  size_t k = 3;
  double radius_m = 50000.0;
  double q_distance_m = 5000.0;
  size_t num_chargers = 1000;
  double dataset_scale = 0.01;
  size_t max_trips = 12;
  size_t max_states = 24;
  int repetitions = 3;
  uint64_t seed = 42;
  SpatialIndexKind index_kind = SpatialIndexKind::kQuadTree;
  /// Non-empty: mmap the road network from this snapshot (graph/io.h)
  /// instead of synthesizing it. See EnvironmentOptions::graph_snapshot.
  std::string graph_snapshot;

  static BenchConfig FromArgs(int argc, char** argv) {
    BenchConfig cfg;
    for (int i = 1; i < argc; ++i) {
      auto next = [&](const char* flag) -> const char* {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
          return argv[++i];
        }
        return nullptr;
      };
      if (std::strcmp(argv[i], "--quick") == 0) {
        cfg.num_chargers = 300;
        cfg.max_trips = 4;
        cfg.max_states = 8;
        cfg.repetitions = 1;
      } else if (const char* v = next("--states")) {
        cfg.max_states = std::strtoull(v, nullptr, 10);
      } else if (const char* v = next("--reps")) {
        cfg.repetitions = std::atoi(v);
      } else if (const char* v = next("--chargers")) {
        cfg.num_chargers = std::strtoull(v, nullptr, 10);
      } else if (const char* v = next("--seed")) {
        cfg.seed = std::strtoull(v, nullptr, 10);
      } else if (const char* v = next("--graph-snapshot")) {
        cfg.graph_snapshot = v;
      } else if (const char* v = next("--index")) {
        auto kind = ParseSpatialIndexKind(v);
        if (!kind.ok()) {
          std::cerr << kind.status() << "\n";
          std::exit(2);
        }
        cfg.index_kind = kind.value();
      }
    }
    return cfg;
  }
};

/// One prepared dataset world: environment + workload + evaluator.
struct PreparedWorld {
  std::unique_ptr<Environment> env;
  std::vector<VehicleState> states;
};

/// Builds the environment and workload of `kind` under `cfg`. Exits the
/// process on failure (benches have no meaningful recovery).
inline PreparedWorld Prepare(DatasetKind kind, const BenchConfig& cfg) {
  EnvironmentOptions eo;
  eo.kind = kind;
  eo.dataset_scale = cfg.dataset_scale;
  eo.num_chargers = cfg.num_chargers;
  // The evaluation metric normalizes D by a fixed property of the map (the
  // maximum derouting the largest swept radius allows); each ranker's own
  // objective normalizes by its configured 2R.
  eo.max_derouting_m = 150000.0;
  eo.seed = cfg.seed;
  eo.index_kind = cfg.index_kind;
  eo.graph_snapshot = cfg.graph_snapshot;
  auto env_result = MakeEnvironment(eo);
  if (!env_result.ok()) {
    std::cerr << "environment(" << DatasetName(kind)
              << "): " << env_result.status() << "\n";
    std::exit(1);
  }
  PreparedWorld world;
  world.env = std::move(env_result).MoveValueUnsafe();

  WorkloadOptions wo;
  wo.max_trips = cfg.max_trips;
  wo.max_states = cfg.max_states;
  wo.seed = cfg.seed ^ 0xBEEFULL;
  world.states = BuildWorkload(world.env->dataset, wo);
  if (world.states.empty()) {
    std::cerr << "empty workload for " << DatasetName(kind) << "\n";
    std::exit(1);
  }
  return world;
}

/// "12.34 +- 0.56" formatting used by all result tables (ASCII so the
/// aligned table renders correctly in byte-width terminals).
inline std::string MeanStd(const RunningStats& s, int precision = 2) {
  return TableWriter::Fmt(s.mean(), precision) + " +- " +
         TableWriter::Fmt(s.stddev(), precision);
}

/// \brief Machine-readable bench output: accumulates flat records and
/// writes them as a JSON array (`BENCH_*.json`), so result files can be
/// diffed, plotted, and regression-checked without parsing the text
/// tables. Deliberately tiny — no external JSON dependency.
class BenchJsonWriter {
 public:
  /// Starts a new record; subsequent Num/Str calls add fields to it.
  void BeginRecord() { records_.emplace_back(); }

  void Num(const std::string& key, double value) {
    std::ostringstream os;
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
      os << static_cast<long long>(value);
    } else if (std::isfinite(value)) {
      os.precision(10);
      os << value;
    } else {
      os << "null";  // JSON has no NaN/Inf
    }
    records_.back().push_back("\"" + Escape(key) + "\": " + os.str());
  }

  void Str(const std::string& key, const std::string& value) {
    records_.back().push_back("\"" + Escape(key) + "\": \"" + Escape(value) +
                              "\"");
  }

  /// Writes `[ {..}, .. ]` to `path`; returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "[\n";
    for (size_t r = 0; r < records_.size(); ++r) {
      out << "  {";
      for (size_t f = 0; f < records_[r].size(); ++f) {
        out << (f ? ", " : "") << records_[r][f];
      }
      out << "}" << (r + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return static_cast<bool>(out);
  }

  size_t num_records() const { return records_.size(); }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<std::vector<std::string>> records_;
};

}  // namespace bench
}  // namespace ecocharge

#endif  // ECOCHARGE_BENCH_BENCH_UTIL_H_
