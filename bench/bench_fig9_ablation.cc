// Figure 9 — Ablation Study of Weight Parameters.
//
// Compares EcoCharge under the four distance functions of Section V-E:
//   AWE — all weights equal (the default),
//   OSC — only Sustainable Charging Level (w1),
//   OA  — only Availability (w2),
//   ODC — only Derouting Cost (w3).
// For each, the achieved SC is decomposed into the three objectives'
// contributions, all measured under equal weights against the AWE
// Brute-Force optimum — mirroring the paper's stacked bars.
//
// Expected shape (paper): AWE dominates; single-objective functions gain a
// little on their own objective but lose more on the neglected ones; OA is
// the most damaging (SC collapses), ODC loses ~15-18%.

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "core/ecocharge.h"
#include "core/evaluation.h"

using namespace ecocharge;
using bench::BenchConfig;

namespace {

struct DistanceFunction {
  std::string name;
  ScoreWeights weights;
};

}  // namespace

int main(int argc, char** argv) {
  Logger::set_threshold(LogLevel::kWarning);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  const ScoreWeights measurement = ScoreWeights::AWE();
  const std::vector<DistanceFunction> functions = {
      {"AWE", ScoreWeights::AWE()},
      {"OSC", ScoreWeights::OSC()},
      {"OA", ScoreWeights::OA()},
      {"ODC", ScoreWeights::ODC()},
  };

  std::cout << "=== Figure 9: Ablation of Weight Parameters ===\n"
            << "k=" << cfg.k << " R=" << cfg.radius_m / 1000.0
            << "km Q=" << cfg.q_distance_m / 1000.0
            << "km chargers=" << cfg.num_chargers
            << " states=" << cfg.max_states << "\n"
            << "Contributions w1 (L), w2 (A), w3 (D) are measured under "
               "equal weights,\nrelative to the AWE Brute-Force optimum.\n\n";

  TableWriter table(
      {"Dataset", "Function", "w1 (L) [%]", "w2 (A) [%]", "w3 (D) [%]",
       "SC [%]"});
  for (DatasetKind kind : AllDatasetKinds()) {
    bench::PreparedWorld world = bench::Prepare(kind, cfg);
    EcEstimator* estimator = world.env->estimator.get();
    Evaluator evaluator(estimator, measurement);
    evaluator.SetWorkload(world.states);
    const std::vector<double>& oracle = evaluator.OracleScores(cfg.k);

    for (const DistanceFunction& fn : functions) {
      EcoChargeOptions opts;
      opts.radius_m = cfg.radius_m;
      opts.q_distance_m = cfg.q_distance_m;
      EcoChargeRanker eco(estimator, world.env->charger_index.get(),
                          fn.weights, opts);
      RunningStats c_level, c_avail, c_derout, c_total;
      for (size_t i = 0; i < world.states.size(); ++i) {
        const VehicleState& state = world.states[i];
        OfferingTable t = eco.Rank(state, cfg.k);
        double sum_l = 0.0, sum_a = 0.0, sum_d = 0.0;
        for (ChargerId id : t.ChargerIds()) {
          EcTruth ref =
              estimator->ReferenceComponents(state, world.env->chargers[id]);
          sum_l += ref.level * measurement.w_level;
          sum_a += ref.availability * measurement.w_availability;
          sum_d += (1.0 - ref.derouting) * measurement.w_derouting;
        }
        double denom = oracle[i] > 0.0 ? oracle[i] : 1.0;
        c_level.Add(100.0 * sum_l / denom);
        c_avail.Add(100.0 * sum_a / denom);
        c_derout.Add(100.0 * sum_d / denom);
        c_total.Add(100.0 * (sum_l + sum_a + sum_d) / denom);
      }
      ECOCHARGE_CHECK(table
                          .AddRow({std::string(DatasetName(kind)), fn.name,
                                   TableWriter::Fmt(c_level.mean(), 1),
                                   TableWriter::Fmt(c_avail.mean(), 1),
                                   TableWriter::Fmt(c_derout.mean(), 1),
                                   TableWriter::Fmt(c_total.mean(), 1)})
                          .ok());
    }
  }
  table.RenderText(std::cout);
  std::cout << "\n(SC = w1 + w2 + w3 contributions; AWE rows show the "
               "balanced split the paper reports.)\n";
  return 0;
}
