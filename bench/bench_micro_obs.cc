// Observability overhead gate: attaching the full metrics registry to a
// ranker (phase-timer histograms + pipeline counters resolved, recording
// live) must cost less than 2% on the steady-state cached query path —
// the path a serving worker runs thousands of times per second.
//
// Two identically configured rankers serve the same cache-hit workload;
// one has a MetricsRegistry attached, the other runs bare. Rounds are
// interleaved (A, B, A, B, ...) so frequency scaling and cache pollution
// hit both sides equally, and each side keeps its minimum-of-rounds —
// the least-noisy estimate of the true cost. Exits 1 when the overhead
// bound is violated, so the check can run in CI as a plain binary.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>

#include "bench/bench_util.h"
#include "core/ecocharge.h"
#include "obs/metrics.h"
#include "obs/statsz.h"

namespace ecocharge {
namespace {

constexpr double kMaxOverheadFraction = 0.02;

uint64_t RunRound(EcoChargeRanker& ranker,
                  const std::vector<VehicleState>& states, int reps,
                  QueryContext& ctx, OfferingTable* table) {
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    for (const VehicleState& state : states) {
      ranker.RankInto(state, 3, ctx, table);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

int Main(int argc, char** argv) {
  bench::BenchConfig cfg = bench::BenchConfig::FromArgs(argc, argv);
  bench::PreparedWorld world = bench::Prepare(DatasetKind::kOldenburg, cfg);

  EcoChargeOptions opts;
  opts.radius_m = cfg.radius_m;
  opts.q_distance_m = 1e9;  // every repeat query adapts the cached table
  opts.cache_ttl_s = 1e12;
  opts.refine_exact_derouting = false;

  EcoChargeRanker bare(world.env->estimator.get(),
                       world.env->charger_index.get(), ScoreWeights::AWE(),
                       opts);
  EcoChargeRanker instrumented(world.env->estimator.get(),
                               world.env->charger_index.get(),
                               ScoreWeights::AWE(), opts);
  obs::MetricsRegistry registry;
  instrumented.AttachMetrics(&registry);

  QueryContext ctx;
  OfferingTable table;
  // Short rounds, many of them, alternating which side is measured first:
  // container noise (frequency scaling, a neighbour finishing a build)
  // arrives in bursts of seconds, so each side needs many independent
  // ~50 ms windows for its minimum to land in a quiet one, and the
  // alternation cancels any systematic first-runner advantage.
  constexpr int kWarmupReps = 3;
  constexpr int kRoundReps = 20;
  constexpr int kRounds = 40;
  const uint64_t queries_per_round =
      static_cast<uint64_t>(kRoundReps) * world.states.size();

  // Warm caches, contexts, and the registry's resolved handles.
  RunRound(bare, world.states, kWarmupReps, ctx, &table);
  RunRound(instrumented, world.states, kWarmupReps, ctx, &table);

  uint64_t bare_ns = UINT64_MAX;
  uint64_t instrumented_ns = UINT64_MAX;
  for (int round = 0; round < kRounds; ++round) {
    EcoChargeRanker* order[2] = {&bare, &instrumented};
    if (round % 2 == 1) std::swap(order[0], order[1]);
    for (EcoChargeRanker* ranker : order) {
      uint64_t ns = RunRound(*ranker, world.states, kRoundReps, ctx, &table);
      uint64_t& best = (ranker == &bare) ? bare_ns : instrumented_ns;
      best = std::min(best, ns);
    }
  }

  const double bare_per_query =
      static_cast<double>(bare_ns) / static_cast<double>(queries_per_round);
  const double instrumented_per_query =
      static_cast<double>(instrumented_ns) /
      static_cast<double>(queries_per_round);
  const double overhead = instrumented_per_query / bare_per_query - 1.0;

  TableWriter tw({"path", "ns/query", "overhead"});
  tw.AddRow({"cached, bare", TableWriter::Fmt(bare_per_query, 1), "-"});
  tw.AddRow({"cached, metrics attached",
             TableWriter::Fmt(instrumented_per_query, 1),
             TableWriter::Fmt(overhead * 100.0, 2) + "%"});
  std::cout << "bench_micro_obs: cached query path, min of " << kRounds
            << " interleaved rounds x " << queries_per_round
            << " queries\n\n";
  tw.RenderText(std::cout);

  // The instrumentation actually fired — a no-op would pass trivially.
  const obs::Histogram* refine = registry.FindHistogram("pipeline.refine_ns");
  if (refine == nullptr || refine->Snapshot().count == 0) {
    std::cerr << "FAIL: pipeline.refine_ns never recorded; the instrumented "
                 "ranker was not actually instrumented\n";
    return 1;
  }

  if (overhead >= kMaxOverheadFraction) {
    std::cerr << "FAIL: metrics overhead " << overhead * 100.0
              << "% exceeds the " << kMaxOverheadFraction * 100.0
              << "% budget\n";
    return 1;
  }
  std::cout << "\nPASS: overhead " << TableWriter::Fmt(overhead * 100.0, 2)
            << "% < " << kMaxOverheadFraction * 100.0 << "% budget\n";
  return 0;
}

}  // namespace
}  // namespace ecocharge

int main(int argc, char** argv) { return ecocharge::Main(argc, argv); }
