#ifndef ECOCHARGE_BENCH_BENCH_GBENCH_JSON_H_
#define ECOCHARGE_BENCH_BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace ecocharge {
namespace bench {

/// \brief Console reporter that also records every finished run into a
/// BenchJsonWriter, so the google-benchmark micro-suites emit the same
/// machine-readable `BENCH_*.json` artifacts as the figure benches
/// (one flat record per benchmark run, times always in nanoseconds
/// regardless of each benchmark's display unit).
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      // Aggregate rows (mean/median/stddev of --benchmark_repetitions)
      // would double-count the per-repetition rows in downstream stats.
      if (run.run_type != Run::RT_Iteration) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      writer_.BeginRecord();
      writer_.Str("name", run.benchmark_name());
      writer_.Num("iterations", static_cast<double>(run.iterations));
      writer_.Num("real_time_ns", run.real_accumulated_time / iters * 1e9);
      writer_.Num("cpu_time_ns", run.cpu_accumulated_time / iters * 1e9);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const BenchJsonWriter& writer() const { return writer_; }

  /// Mutable access, for suites that append custom (non-gbench) records —
  /// e.g. asserting gates timed with plain chrono — to the same JSON file.
  BenchJsonWriter& mutable_writer() { return writer_; }

 private:
  BenchJsonWriter writer_;
};

/// Standard main body of a google-benchmark suite with JSON export: runs
/// the registered (or --benchmark_filter'ed) benchmarks with console
/// output, then writes the collected records to `json_path`. Returns the
/// process exit code.
inline int RunAndExportJson(int argc, char** argv,
                            const std::string& json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonExportReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!reporter.writer().WriteFile(json_path)) {
    std::cerr << "failed to write " << json_path << "\n";
    return 1;
  }
  std::cout << "wrote " << json_path << " ("
            << reporter.writer().num_records() << " records)\n";
  return 0;
}

}  // namespace bench
}  // namespace ecocharge

#endif  // ECOCHARGE_BENCH_BENCH_GBENCH_JSON_H_
