// Serving-runtime bench: OfferingServer throughput and latency under a
// sweep of worker threads x EIS cache shards x queue depth.
//
// Each request carries a per-request simulated I/O stall (default 4 ms)
// emulating the upstream-fetch / response-write blocking of the real
// Mode-2 deployment (HTTP through Nginx to weather/traffic providers) —
// that is the component worker threads overlap. On a single-core
// container the pure-compute rows (stall = 0) cannot exceed 1x scaling;
// the stall rows show the I/O-bound scaling the runtime is built for.
// Override with --io-ms (0 disables the stall everywhere).
//
// Writes BENCH_server.json (flat records, one per configuration) next to
// the working directory for machine consumption.

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "obs/metrics.h"
#include "server/offering_server.h"

using namespace ecocharge;
using bench::BenchConfig;

namespace {

struct SweepPoint {
  int threads = 0;
  size_t shards = 16;
  size_t queue_depth = 0;  // 0 = large enough that nothing is shed
  double io_ms = -1.0;     // <0 = use the bench-wide default
};

struct SweepResult {
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  OfferingServerStats stats;
};

SweepResult RunPoint(bench::PreparedWorld& world, const SweepPoint& point,
                     size_t num_requests, size_t num_clients,
                     double default_io_ms) {
  OfferingServerOptions opts;
  opts.threads = point.threads;
  opts.eis_cache_shards = point.shards;
  opts.queue_depth =
      point.queue_depth == 0 ? num_requests : point.queue_depth;
  opts.simulated_io_ms = point.io_ms < 0.0 ? default_io_ms : point.io_ms;
  OfferingServer server(world.env.get(), ScoreWeights::AWE(),
                        EcoChargeOptions{}, opts);

  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  for (size_t i = 0; i < num_requests; ++i) {
    // Client c's s-th request uses workload state (c + s): every client
    // walks the trip states, so consecutive requests move the vehicle and
    // Dynamic Caching sees its realistic fresh/adapted mix.
    size_t state_index =
        (i % num_clients + i / num_clients) % world.states.size();
    Status st = server.Submit(i % num_clients, world.states[state_index], 3,
                              [](const OfferingTable&) {});
    // Shed requests (kUnavailable) are part of the admission-control
    // sweep; anything else is a bench bug.
    if (!st.ok() && st.code() != StatusCode::kUnavailable) {
      std::cerr << "submit: " << st << "\n";
      std::exit(1);
    }
  }
  server.Drain();
  SweepResult result;
  result.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.stats = server.Stats();
  result.qps = result.elapsed_s > 0.0
                   ? static_cast<double>(result.stats.served) /
                         result.elapsed_s
                   : 0.0;

  // Latency percentiles come from the server's own instrumentation — the
  // same `server.request_latency_ns` histogram statsz exports (submission
  // to completion, including queue wait).
  const obs::Histogram* latency =
      server.metrics().FindHistogram("server.request_latency_ns");
  ECOCHARGE_CHECK(latency != nullptr);
  obs::HistogramSnapshot snap = latency->Snapshot();
  result.p50_ms = static_cast<double>(snap.ValueAtQuantile(0.50)) / 1e6;
  result.p95_ms = static_cast<double>(snap.ValueAtQuantile(0.95)) / 1e6;
  result.p99_ms = static_cast<double>(snap.ValueAtQuantile(0.99)) / 1e6;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Logger::set_threshold(LogLevel::kWarning);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  double default_io_ms = 6.0;
  size_t num_requests = 480;
  size_t num_clients = 48;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--io-ms") == 0 && i + 1 < argc) {
      default_io_ms = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      num_requests = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      num_requests = 120;
    }
  }

  std::cout << "=== Serving runtime: threads x shards x queue depth ===\n"
            << num_requests << " requests from " << num_clients
            << " clients; per-request simulated I/O stall "
            << default_io_ms << " ms (rows marked io=0 are pure compute)\n\n";

  bench::PreparedWorld world = bench::Prepare(DatasetKind::kOldenburg, cfg);

  std::vector<SweepPoint> sweep = {
      // Thread scaling at the default shard count, nothing shed.
      {0, 16, 0, -1.0},
      {1, 16, 0, -1.0},
      {2, 16, 0, -1.0},
      {4, 16, 0, -1.0},
      // Shard sweep at 4 workers (contention on the EIS caches).
      {4, 1, 0, -1.0},
      {4, 4, 0, -1.0},
      // Queue-depth sweep: small queues shed load instead of buffering.
      {4, 16, 8, -1.0},
      {4, 16, 32, -1.0},
      // Pure-compute reference rows (single core: expect ~1x scaling).
      {0, 16, 0, 0.0},
      {4, 16, 0, 0.0},
  };

  TableWriter table({"Threads", "Shards", "Queue", "I/O [ms]", "QPS",
                     "p50 [ms]", "p95 [ms]", "p99 [ms]", "Served", "Shed"});
  bench::BenchJsonWriter json;
  double qps_inline = 0.0;
  double qps_4t = 0.0;
  for (const SweepPoint& point : sweep) {
    SweepResult r =
        RunPoint(world, point, num_requests, num_clients, default_io_ms);
    double io_ms = point.io_ms < 0.0 ? default_io_ms : point.io_ms;
    size_t depth = point.queue_depth == 0 ? num_requests : point.queue_depth;
    if (io_ms > 0.0 && depth >= num_requests) {
      if (point.threads == 0 && point.shards == 16) qps_inline = r.qps;
      if (point.threads == 4 && point.shards == 16) qps_4t = r.qps;
    }
    ECOCHARGE_CHECK(
        table
            .AddRow({std::to_string(point.threads),
                     std::to_string(point.shards), std::to_string(depth),
                     TableWriter::Fmt(io_ms, 1), TableWriter::Fmt(r.qps, 1),
                     TableWriter::Fmt(r.p50_ms, 2),
                     TableWriter::Fmt(r.p95_ms, 2),
                     TableWriter::Fmt(r.p99_ms, 2),
                     std::to_string(r.stats.served),
                     std::to_string(r.stats.rejected)})
            .ok());
    json.BeginRecord();
    json.Str("bench", "server_throughput");
    json.Str("dataset", "Oldenburg");
    json.Num("threads", point.threads);
    json.Num("eis_cache_shards", static_cast<double>(point.shards));
    json.Num("queue_depth", static_cast<double>(depth));
    json.Num("simulated_io_ms", io_ms);
    json.Num("requests", static_cast<double>(num_requests));
    json.Num("clients", static_cast<double>(num_clients));
    json.Num("elapsed_s", r.elapsed_s);
    json.Num("qps", r.qps);
    json.Num("p50_ms", r.p50_ms);
    json.Num("p95_ms", r.p95_ms);
    json.Num("p99_ms", r.p99_ms);
    json.Num("served", static_cast<double>(r.stats.served));
    json.Num("shed", static_cast<double>(r.stats.rejected));
    json.Num("cache_adaptations",
             static_cast<double>(r.stats.cache_adaptations));
  }
  table.RenderText(std::cout);
  if (qps_inline > 0.0) {
    std::cout << "\nI/O-inclusive speedup, 4 workers vs synchronous: "
              << TableWriter::Fmt(qps_4t / qps_inline, 2) << "x\n";
  }
  if (!json.WriteFile("BENCH_server.json")) {
    std::cerr << "failed to write BENCH_server.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_server.json (" << json.num_records()
            << " records)\n";
  return 0;
}
