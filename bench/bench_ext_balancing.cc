// Extension bench (not a paper figure): the future-work load balancer.
//
// The paper's conclusion proposes balancing "the produced traffic to
// chargers by the suggested Offering Tables". This bench quantifies the
// idea: a burst of vehicles in the same area asks for Offering Tables;
// without balancing, they pile onto the same top charger, and most arrive
// to find it occupied. The balanced ranker spreads the induced demand at a
// small SC cost.

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "core/load_balancer.h"

using namespace ecocharge;
using bench::BenchConfig;

int main(int argc, char** argv) {
  Logger::set_threshold(LogLevel::kWarning);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);

  std::cout << "=== Extension: Offering-Table load balancing ===\n"
            << "Burst of 12 vehicles per query point; top-pick diversity "
               "and collision rate\n\n";

  TableWriter table({"Dataset", "Ranker", "Distinct top picks",
                     "Overloaded arrivals [%]", "Mean top SC"});
  for (DatasetKind kind : AllDatasetKinds()) {
    bench::PreparedWorld world = bench::Prepare(kind, cfg);
    ScoreWeights weights = ScoreWeights::AWE();
    EcoChargeOptions eco_opts;
    eco_opts.radius_m = cfg.radius_m;
    eco_opts.q_distance_m = 0.0;  // every vehicle computes fresh

    const size_t kBurst = 12;
    auto run = [&](Ranker& ranker, bool reset_between) {
      double distinct_sum = 0.0;
      double overload_sum = 0.0;
      RunningStats top_sc;
      size_t query_points = std::min<size_t>(world.states.size(), 8);
      for (size_t q = 0; q < query_points; ++q) {
        const VehicleState& state = world.states[q];
        std::set<ChargerId> tops;
        std::unordered_map<ChargerId, int> arrivals;
        for (size_t v = 0; v < kBurst; ++v) {
          if (reset_between) ranker.Reset();
          OfferingTable t = ranker.Rank(state, cfg.k);
          if (t.empty()) continue;
          tops.insert(t.top().charger_id);
          ++arrivals[t.top().charger_id];
          top_sc.Add(world.env->estimator->ReferenceScore(
              state, world.env->chargers[t.top().charger_id], weights));
        }
        distinct_sum += static_cast<double>(tops.size());
        // Arrivals beyond the port count of a site are "overloaded".
        int overloaded = 0;
        for (const auto& [id, n] : arrivals) {
          overloaded +=
              std::max(0, n - world.env->chargers[id].num_ports);
        }
        overload_sum += 100.0 * overloaded / static_cast<double>(kBurst);
        ranker.Reset();
      }
      return std::tuple<double, double, double>(
          distinct_sum / 8.0, overload_sum / 8.0, top_sc.mean());
    };

    EcoChargeRanker plain(world.env->estimator.get(),
                          world.env->charger_index.get(), weights, eco_opts);
    BalancedEcoChargeRanker balanced(world.env->estimator.get(),
                                     world.env->charger_index.get(), weights,
                                     eco_opts);
    auto [pd, po, psc] = run(plain, /*reset_between=*/true);
    auto [bd, bo, bsc] = run(balanced, /*reset_between=*/false);
    ECOCHARGE_CHECK(table
                        .AddRow({std::string(DatasetName(kind)), "EcoCharge",
                                 TableWriter::Fmt(pd, 1),
                                 TableWriter::Fmt(po, 1),
                                 TableWriter::Fmt(psc, 3)})
                        .ok());
    ECOCHARGE_CHECK(table
                        .AddRow({std::string(DatasetName(kind)),
                                 "EcoCharge-Balanced", TableWriter::Fmt(bd, 1),
                                 TableWriter::Fmt(bo, 1),
                                 TableWriter::Fmt(bsc, 3)})
                        .ok());
  }
  table.RenderText(std::cout);
  std::cout << "\n(Overloaded arrivals: vehicles sent to a site beyond its "
               "port count, assuming all follow the top offer.)\n";
  return 0;
}
