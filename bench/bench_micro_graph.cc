// Micro-benchmarks of the road-network substrate: point-to-point searches
// (Dijkstra vs A*), bounded one-to-many expansion, and ALT lower bounds —
// the operations the derouting EC spends its time in.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/landmarks.h"
#include "graph/shortest_path.h"

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> SharedNetwork() {
  static std::shared_ptr<RoadNetwork> network = [] {
    GridNetworkOptions opts;
    opts.nx = 40;
    opts.ny = 30;
    opts.spacing_m = 800.0;
    opts.seed = 5;
    return MakeGridNetwork(opts).MoveValueUnsafe();
  }();
  return network;
}

void BM_Dijkstra(benchmark::State& state) {
  auto network = SharedNetwork();
  DijkstraSearch search(*network);
  Rng rng(11);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    benchmark::DoNotOptimize(search.ShortestPath(s, t));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_AStar(benchmark::State& state) {
  auto network = SharedNetwork();
  DijkstraSearch search(*network);
  Rng rng(11);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    benchmark::DoNotOptimize(search.AStar(s, t));
  }
}
BENCHMARK(BM_AStar);

void BM_OneToManyBounded(benchmark::State& state) {
  auto network = SharedNetwork();
  DijkstraSearch search(*network);
  Rng rng(11);
  double max_cost = static_cast<double>(state.range(0));
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    benchmark::DoNotOptimize(search.OneToMany(s, max_cost, LengthCost));
  }
  state.SetLabel("radius_m=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_OneToManyBounded)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_LandmarkLowerBound(benchmark::State& state) {
  auto network = SharedNetwork();
  static LandmarkIndex landmarks(*network, 8);
  Rng rng(11);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    benchmark::DoNotOptimize(landmarks.LowerBound(u, v));
  }
}
BENCHMARK(BM_LandmarkLowerBound);

}  // namespace
}  // namespace ecocharge

BENCHMARK_MAIN();
