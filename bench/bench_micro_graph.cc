// Micro-benchmarks and asserting gates of the road-network substrate.
//
// The google-benchmark section times the operations the derouting EC spends
// its time in: point-to-point searches (Dijkstra vs A*), bounded one-to-many
// expansion, and ALT lower bounds.
//
// Two asserting gates then pin the compact-graph-core contract (the binary
// exits 1 when either breaks):
//   1. the inlined CSR relax loop sweeps >= 1.3x faster than a faithful
//      replica of the sweep as it shipped pre-refactor (per-node EdgeId
//      lists indirecting into a 24-byte full-edge array, three parallel
//      label arrays, a per-call O(V) settled buffer), at identical settled
//      sets and cost sums;
//   2. mmap-loading a >= 1M-node snapshot is >= 10x faster than
//      regenerating the same graph.
// Timing uses interleaved min-of-rounds (see bench_micro_obs.cc for why).
// All records — gbench runs and gate results — land in BENCH_graph.json.
//
// Flags: --quick shrinks the gate graphs; everything else is forwarded to
// google-benchmark (--benchmark_filter etc.).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "bench/bench_gbench_json.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/landmarks.h"
#include "graph/shortest_path.h"

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> SharedNetwork() {
  static std::shared_ptr<RoadNetwork> network = [] {
    GridNetworkOptions opts;
    opts.nx = 40;
    opts.ny = 30;
    opts.spacing_m = 800.0;
    opts.seed = 5;
    return MakeGridNetwork(opts).MoveValueUnsafe();
  }();
  return network;
}

void BM_Dijkstra(benchmark::State& state) {
  auto network = SharedNetwork();
  DijkstraSearch search(*network);
  Rng rng(11);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    benchmark::DoNotOptimize(search.ShortestPath(s, t));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_AStar(benchmark::State& state) {
  auto network = SharedNetwork();
  DijkstraSearch search(*network);
  Rng rng(11);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    benchmark::DoNotOptimize(search.AStar(s, t));
  }
}
BENCHMARK(BM_AStar);

void BM_OneToManyBounded(benchmark::State& state) {
  auto network = SharedNetwork();
  DijkstraSearch search(*network);
  Rng rng(11);
  double max_cost = static_cast<double>(state.range(0));
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    benchmark::DoNotOptimize(search.OneToMany(s, max_cost, LengthCost));
  }
  state.SetLabel("radius_m=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_OneToManyBounded)->Arg(2000)->Arg(8000)->Arg(32000);

void BM_LandmarkLowerBound(benchmark::State& state) {
  auto network = SharedNetwork();
  static LandmarkIndex landmarks(*network, 8);
  Rng rng(11);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    benchmark::DoNotOptimize(landmarks.LowerBound(u, v));
  }
}
BENCHMARK(BM_LandmarkLowerBound);

void BM_SnapshotLoad(benchmark::State& state) {
  static const std::string path = [] {
    std::string p = "/tmp/bench_micro_graph_small." +
                    std::to_string(::getpid()) + ".ecgs";
    SaveSnapshot(*SharedNetwork(), p);
    return p;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoadSnapshot(path));
  }
}
BENCHMARK(BM_SnapshotLoad);

// ---------------------------------------------------------------------------
// Gate 1: inlined CSR vs pre-refactor layout.
// ---------------------------------------------------------------------------

constexpr double kMinSweepSpeedup = 1.3;
constexpr double kMinSnapshotSpeedup = 10.0;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The layout this refactor replaced: per-node adjacency as EdgeId lists
/// indirecting into a 24-byte full-edge array. Rebuilt faithfully from the
/// current network so both sides sweep the identical graph.
struct LegacyLayout {
  std::vector<Edge> edges;            // EdgeId -> {from, to, length, class}
  std::vector<uint32_t> out_offsets;  // CSR over EdgeIds
  std::vector<EdgeId> out_edge_ids;
};

LegacyLayout MakeLegacy(const RoadNetwork& network) {
  LegacyLayout legacy;
  const NodeId n = static_cast<NodeId>(network.NumNodes());
  // Rebuild the pre-refactor edge array in builder insertion order: the
  // generators added each undirected road once, from its lower-id endpoint,
  // via AddBidirectional — forward and reverse records appended adjacently,
  // so a node's id list points at slots scattered across the array. (Only
  // valid for symmetric networks like the one this gate sweeps.) Per-node
  // out-degrees are unchanged by the id permutation, so the current offsets
  // carry over and the ids scatter through cursors.
  legacy.out_offsets.assign(network.out_offsets().begin(),
                            network.out_offsets().end());
  legacy.out_edge_ids.resize(network.NumEdges());
  std::vector<uint32_t> cursor(legacy.out_offsets.begin(),
                               legacy.out_offsets.end() - 1);
  legacy.edges.reserve(network.NumEdges());
  for (NodeId v = 0; v < n; ++v) {
    for (const Arc& a : network.OutArcs(v)) {
      if (a.node < v) continue;  // appended with its lower-endpoint pair
      EdgeId fwd = static_cast<EdgeId>(legacy.edges.size());
      legacy.edges.push_back(Edge{v, a.node, a.length_m, a.road_class});
      legacy.edges.push_back(Edge{a.node, v, a.length_m, a.road_class});
      legacy.out_edge_ids[cursor[v]++] = fwd;
      legacy.out_edge_ids[cursor[a.node]++] = fwd + 1;
    }
  }
  return legacy;
}

/// The bounded one-to-many sweep exactly as it shipped before the refactor
/// (see src/graph/shortest_path.cc at the previous release): EdgeId
/// indirection into the full-edge array, three parallel label arrays, a
/// per-call O(V) settled buffer, a per-edge dist_[v] reload, and a
/// std::function cost over the 24-byte Edge record.
class LegacySweeper {
 public:
  explicit LegacySweeper(const LegacyLayout& layout)
      : layout_(layout),
        num_nodes_(layout.out_offsets.size() - 1),
        dist_(num_nodes_, kInfiniteCost),
        parent_(num_nodes_, kInvalidNode),
        version_(num_nodes_, 0) {}

  size_t OneToMany(NodeId source, double max_cost,
                   const std::function<double(const Edge&)>& cost) {
    ++epoch_;
    struct Entry {
      double d;
      NodeId v;
    };
    auto later = [](const Entry& a, const Entry& b) { return a.d > b.d; };
    std::priority_queue<Entry, std::vector<Entry>, decltype(later)> heap(
        later);
    dist_[source] = 0.0;
    parent_[source] = kInvalidNode;
    version_[source] = epoch_;
    heap.push({0.0, source});
    std::vector<char> settled(num_nodes_, 0);
    size_t settled_count = 0;
    cost_sum_ = 0.0;
    while (!heap.empty()) {
      auto [d, v] = heap.top();
      heap.pop();
      if (settled[v]) continue;
      if (d > max_cost) break;
      settled[v] = 1;
      ++settled_count;
      cost_sum_ += d;
      for (uint32_t i = layout_.out_offsets[v];
           i < layout_.out_offsets[v + 1]; ++i) {
        const Edge& e = layout_.edges[layout_.out_edge_ids[i]];
        double nd = dist_[v] + cost(e);
        if (nd > max_cost) continue;
        if (version_[e.to] != epoch_ || nd < dist_[e.to]) {
          version_[e.to] = epoch_;
          dist_[e.to] = nd;
          parent_[e.to] = v;
          heap.push({nd, e.to});
        }
      }
    }
    return settled_count;
  }

  double cost_sum() const { return cost_sum_; }

 private:
  const LegacyLayout& layout_;
  size_t num_nodes_;
  std::vector<double> dist_;
  std::vector<NodeId> parent_;
  std::vector<uint32_t> version_;
  uint32_t epoch_ = 0;
  double cost_sum_ = 0.0;
};

bool SweepLayoutGate(bench::BenchJsonWriter& json, bool quick) {
  // Random-geometric at continental scale: degree ~8 (the dense-urban end
  // of road networks) and enough nodes that one round of sweeps overflows
  // even a server-class L3 — the regime the inlined layout exists for.
  // Small graphs stay cache-resident in either layout and show ~1x.
  StreamingGeometricOptions opts;
  opts.num_nodes = quick ? 2500000 : 4000000;
  opts.width_m = quick ? 480000.0 : 600000.0;
  opts.height_m = quick ? 480000.0 : 600000.0;
  opts.target_degree = 8.0;
  opts.seed = 31;
  opts.num_chunks = 64;
  auto network = MakeStreamingGeometric(opts).MoveValueUnsafe();
  const double radius_m = quick ? 100000.0 : 120000.0;
  const size_t num_sources = quick ? 6 : 8;
  const int rounds = quick ? 3 : 5;

  LegacyLayout legacy = MakeLegacy(*network);
  LegacySweeper legacy_sweep(legacy);
  DijkstraSearch inlined_sweep(*network);

  Rng rng(77);
  auto draw_sources = [&] {
    std::vector<NodeId> sources;
    for (size_t i = 0; i < num_sources; ++i) {
      sources.push_back(
          static_cast<NodeId>(rng.NextBounded(network->NumNodes())));
    }
    return sources;
  };
  std::function<double(const Edge&)> legacy_cost = [](const Edge& e) {
    return e.length_m;
  };

  // Parity: both layouts must settle the same nodes at the same costs.
  bool ok = true;
  size_t settled_total = 0;
  for (NodeId s : draw_sources()) {
    std::vector<NodeId> settled;
    size_t n_inlined = inlined_sweep.OneToMany(s, radius_m, LengthCost,
                                               &settled);
    double inlined_sum = 0.0;
    for (NodeId v : settled) inlined_sum += inlined_sweep.CostTo(v);
    settled_total += n_inlined;
    size_t n_legacy = legacy_sweep.OneToMany(s, radius_m, legacy_cost);
    if (n_inlined != n_legacy || inlined_sum != legacy_sweep.cost_sum()) {
      std::cerr << "FAIL: layout sweep mismatch from node " << s << " ("
                << n_inlined << "/" << inlined_sum << " vs " << n_legacy
                << "/" << legacy_sweep.cost_sum() << ")\n";
      ok = false;
    }
  }

  // Each round draws fresh sources (so no layout inherits a warm cache from
  // the previous round) and times both sides over the same source set in
  // alternating order; the per-round ratio is therefore noise-paired, and
  // the median ratio is the verdict.
  uint64_t legacy_best_ns = UINT64_MAX;
  uint64_t inlined_best_ns = UINT64_MAX;
  std::vector<double> ratios;
  for (int round = 0; round < rounds; ++round) {
    std::vector<NodeId> sources = draw_sources();
    uint64_t side_ns[2] = {0, 0};  // [0] legacy, [1] inlined
    for (int slot = 0; slot < 2; ++slot) {
      const int side = (round + slot) % 2;
      const uint64_t start = NowNs();
      for (NodeId s : sources) {
        if (side == 1) {
          benchmark::DoNotOptimize(
              inlined_sweep.OneToMany(s, radius_m, LengthCost));
        } else {
          benchmark::DoNotOptimize(
              legacy_sweep.OneToMany(s, radius_m, legacy_cost));
        }
      }
      side_ns[side] = NowNs() - start;
    }
    legacy_best_ns = std::min(legacy_best_ns, side_ns[0]);
    inlined_best_ns = std::min(inlined_best_ns, side_ns[1]);
    ratios.push_back(static_cast<double>(side_ns[0]) /
                     static_cast<double>(std::max<uint64_t>(side_ns[1], 1)));
  }
  std::sort(ratios.begin(), ratios.end());
  const double speedup = ratios[ratios.size() / 2];

  std::cout << "sweep layout gate: " << network->NumNodes() << " nodes, "
            << network->NumEdges() << " edges, radius " << radius_m / 1000.0
            << " km, ~" << settled_total / num_sources
            << " settled/sweep: legacy " << legacy_best_ns / 1e6
            << " ms, inlined " << inlined_best_ns / 1e6
            << " ms/round, median speedup " << speedup << "x\n";
  json.BeginRecord();
  json.Str("mode", "sweep_layout");
  json.Num("nodes", static_cast<double>(network->NumNodes()));
  json.Num("edges", static_cast<double>(network->NumEdges()));
  json.Num("radius_m", radius_m);
  json.Num("settled_per_sweep",
           static_cast<double>(settled_total / num_sources));
  json.Num("legacy_ns", static_cast<double>(legacy_best_ns));
  json.Num("inlined_ns", static_cast<double>(inlined_best_ns));
  json.Num("speedup", speedup);
  if (speedup < kMinSweepSpeedup) {
    std::cerr << "FAIL: inlined CSR only " << speedup
              << "x faster than the legacy layout (floor " << kMinSweepSpeedup
              << "x)\n";
    ok = false;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Gate 2: snapshot load vs regeneration at >= 1M nodes.
// ---------------------------------------------------------------------------

bool SnapshotLoadGate(bench::BenchJsonWriter& json, bool quick) {
  StreamingGridOptions opts;
  opts.nx = quick ? 500 : 1024;
  opts.ny = quick ? 500 : 1024;
  opts.seed = 13;
  opts.num_chunks = 64;

  uint64_t regen_ns = UINT64_MAX;
  std::shared_ptr<RoadNetwork> generated;
  const int regen_rounds = quick ? 1 : 2;
  for (int round = 0; round < regen_rounds; ++round) {
    const uint64_t start = NowNs();
    generated = MakeStreamingGrid(opts).MoveValueUnsafe();
    regen_ns = std::min(regen_ns, NowNs() - start);
  }

  const std::string path = "/tmp/bench_micro_graph_gate." +
                           std::to_string(::getpid()) + ".ecgs";
  const uint64_t save_start = NowNs();
  Status st = SaveSnapshot(*generated, path);
  const uint64_t save_ns = NowNs() - save_start;
  if (!st.ok()) {
    std::cerr << "FAIL: " << st << "\n";
    return false;
  }

  bool ok = true;
  uint64_t load_ns = UINT64_MAX;
  std::shared_ptr<RoadNetwork> loaded;
  for (int round = 0; round < 5; ++round) {
    loaded.reset();  // unmap before timing the next load
    const uint64_t start = NowNs();
    auto result = LoadSnapshot(path);
    if (!result.ok()) {
      std::cerr << "FAIL: " << result.status() << "\n";
      std::remove(path.c_str());
      return false;
    }
    loaded = result.MoveValueUnsafe();
    load_ns = std::min(load_ns, NowNs() - start);
  }

  // Sanity: the mapped graph answers queries identically.
  DijkstraSearch a(*generated), b(*loaded);
  NodeId far_node = static_cast<NodeId>(generated->NumNodes() - 1);
  if (a.ShortestPath(0, far_node).cost != b.ShortestPath(0, far_node).cost) {
    std::cerr << "FAIL: snapshot-loaded graph disagrees with generator\n";
    ok = false;
  }

  const double speedup = static_cast<double>(regen_ns) /
                         static_cast<double>(std::max<uint64_t>(load_ns, 1));
  std::cout << "snapshot load gate: " << generated->NumNodes()
            << " nodes: regenerate " << regen_ns / 1e6 << " ms, save "
            << save_ns / 1e6 << " ms, mmap load " << load_ns / 1e6 << " ms ("
            << speedup << "x)\n";
  json.BeginRecord();
  json.Str("mode", "snapshot_load");
  json.Num("nodes", static_cast<double>(generated->NumNodes()));
  json.Num("edges", static_cast<double>(generated->NumEdges()));
  json.Num("regen_ns", static_cast<double>(regen_ns));
  json.Num("save_ns", static_cast<double>(save_ns));
  json.Num("load_ns", static_cast<double>(load_ns));
  json.Num("speedup", speedup);
  if (speedup < kMinSnapshotSpeedup) {
    std::cerr << "FAIL: snapshot load only " << speedup
              << "x faster than regeneration (floor " << kMinSnapshotSpeedup
              << "x)\n";
    ok = false;
  }
  std::remove(path.c_str());
  return ok;
}

int Main(int argc, char** argv) {
  // Peel off our flags; everything else goes to google-benchmark.
  bool quick = false;
  std::vector<char*> gb_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      gb_args.push_back(argv[i]);
    }
  }
  int gb_argc = static_cast<int>(gb_args.size());
  benchmark::Initialize(&gb_argc, gb_args.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_args.data())) {
    return 1;
  }
  bench::JsonExportReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  bool ok = SweepLayoutGate(reporter.mutable_writer(), quick);
  ok = SnapshotLoadGate(reporter.mutable_writer(), quick) && ok;

  if (!reporter.writer().WriteFile("BENCH_graph.json")) {
    std::cerr << "failed to write BENCH_graph.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_graph.json (" << reporter.writer().num_records()
            << " records)\n";
  if (!ok) return 1;
  std::cout << "PASS: inlined CSR >= " << kMinSweepSpeedup
            << "x legacy sweep throughput, snapshot load >= "
            << kMinSnapshotSpeedup << "x faster than regeneration\n";
  return 0;
}

}  // namespace
}  // namespace ecocharge

int main(int argc, char** argv) { return ecocharge::Main(argc, argv); }
