// Extension bench: ablation of EcoCharge's own design choices (the list in
// DESIGN.md §8) — what each mechanism contributes to the headline result.
//
// Variants:
//   full          the shipped configuration
//   no-intersect  rank by score midpoint instead of eq. 6's intersection
//   no-refine     skip the network-exact derouting refinement
//   no-cache      regenerate every Offering Table (Q = 0)

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "core/ecocharge.h"
#include "core/evaluation.h"

using namespace ecocharge;
using bench::BenchConfig;
using bench::MeanStd;

namespace {

struct Variant {
  std::string name;
  EcoChargeOptions options;
};

std::vector<Variant> MakeVariants(const BenchConfig& cfg) {
  EcoChargeOptions base;
  base.radius_m = cfg.radius_m;
  base.q_distance_m = cfg.q_distance_m;

  Variant full{"full", base};
  Variant no_intersect{"no-intersect", base};
  no_intersect.options.use_intersection = false;
  Variant no_refine{"no-refine", base};
  no_refine.options.refine_exact_derouting = false;
  Variant no_cache{"no-cache", base};
  no_cache.options.q_distance_m = 0.0;
  return {full, no_intersect, no_refine, no_cache};
}

}  // namespace

int main(int argc, char** argv) {
  Logger::set_threshold(LogLevel::kWarning);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);

  std::cout << "=== Extension: design-choice ablation of EcoCharge ===\n"
            << "k=" << cfg.k << " R=" << cfg.radius_m / 1000.0
            << "km Q=" << cfg.q_distance_m / 1000.0
            << "km chargers=" << cfg.num_chargers
            << " states=" << cfg.max_states << "\n\n";

  TableWriter table({"Dataset", "Variant", "F_t [ms]", "SC [%]"});
  for (DatasetKind kind : AllDatasetKinds()) {
    bench::PreparedWorld world = bench::Prepare(kind, cfg);
    ScoreWeights weights = ScoreWeights::AWE();
    Evaluator evaluator(world.env->estimator.get(), weights);
    evaluator.SetWorkload(world.states);
    for (const Variant& variant : MakeVariants(cfg)) {
      EcoChargeRanker eco(world.env->estimator.get(),
                          world.env->charger_index.get(), weights,
                          variant.options);
      MethodEvaluation m = evaluator.Evaluate(eco, cfg.k, cfg.repetitions);
      ECOCHARGE_CHECK(table
                          .AddRow({std::string(DatasetName(kind)),
                                   variant.name, MeanStd(m.ft_ms),
                                   MeanStd(m.sc_percent)})
                          .ok());
    }
  }
  table.RenderText(std::cout);
  std::cout << "\n(no-refine shows what the exact-derouting refinement buys;"
               " no-cache the Dynamic Caching speedup;\n no-intersect the "
               "robustness value of ranking under both estimate sets.)\n";
  return 0;
}
