// Resilience bench: OfferingServer serving under injected upstream faults,
// sweeping fault probability x retry policy.
//
// Faults are deterministic (seeded per-upstream RNG streams) and latency
// is virtual (charged to the per-request deadline budget, never slept), so
// the rows measure the real CPU cost of the resilience machinery — retry
// bookkeeping, breaker admission, degradation-ladder fallbacks — plus its
// quality effect: the fraction of tables served degraded. Wall-clock QPS
// and percentile latency come from the server's own
// `server.request_latency_ns` histogram, same as the throughput bench.
//
// Writes BENCH_fault_resilience.json (one record per configuration).

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "obs/metrics.h"
#include "server/offering_server.h"

using namespace ecocharge;
using bench::BenchConfig;

namespace {

struct SweepPoint {
  double fault_p = 0.0;   // per-call transient-error probability
  int max_attempts = 4;   // retry budget (1 = no retries)
  const char* label = "";
};

struct SweepResult {
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double degraded_frac = 0.0;
  uint64_t retries = 0;
  uint64_t ladder_serves = 0;  // stale + climatological responses
  uint64_t breaker_opens = 0;
  OfferingServerStats stats;
};

SweepResult RunPoint(bench::PreparedWorld& world, const SweepPoint& point,
                     size_t num_requests, size_t num_clients) {
  resilience::FaultProfile profile;
  profile.error_probability = point.fault_p;
  profile.base_latency_ms = 2.0;
  profile.spike_probability = point.fault_p > 0.0 ? 0.05 : 0.0;

  OfferingServerOptions opts;
  opts.threads = 2;
  opts.queue_depth = num_requests;  // nothing shed: measure service, not
                                    // admission control
  opts.resilient_eis = true;
  opts.resilience.faults =
      resilience::FaultInjectorOptions::Uniform(profile, /*seed=*/0x0FA117);
  opts.resilience.retry.max_attempts = point.max_attempts;
  OfferingServer server(world.env.get(), ScoreWeights::AWE(),
                        EcoChargeOptions{}, opts);

  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  for (size_t i = 0; i < num_requests; ++i) {
    size_t state_index =
        (i % num_clients + i / num_clients) % world.states.size();
    Status st = server.Submit(i % num_clients, world.states[state_index], 3,
                              [](const OfferingTable&) {});
    if (!st.ok()) {
      std::cerr << "submit: " << st << "\n";
      std::exit(1);
    }
  }
  server.Drain();

  SweepResult result;
  result.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.stats = server.Stats();
  result.qps = result.elapsed_s > 0.0
                   ? static_cast<double>(result.stats.served) /
                         result.elapsed_s
                   : 0.0;
  result.degraded_frac =
      result.stats.served > 0
          ? static_cast<double>(result.stats.degraded_tables) /
                static_cast<double>(result.stats.served)
          : 0.0;
  for (resilience::UpstreamKind kind : resilience::kAllUpstreamKinds) {
    resilience::UpstreamResilienceStats rs =
        server.resilient_eis()->ResilienceSnapshot(kind, 0.0);
    result.retries += rs.retries;
    result.ladder_serves += rs.stale_serves + rs.climatological_serves;
    result.breaker_opens += rs.breaker_opens;
  }
  const obs::Histogram* latency =
      server.metrics().FindHistogram("server.request_latency_ns");
  ECOCHARGE_CHECK(latency != nullptr);
  obs::HistogramSnapshot snap = latency->Snapshot();
  result.p50_ms = static_cast<double>(snap.ValueAtQuantile(0.50)) / 1e6;
  result.p99_ms = static_cast<double>(snap.ValueAtQuantile(0.99)) / 1e6;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Logger::set_threshold(LogLevel::kWarning);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  size_t num_requests = 480;
  size_t num_clients = 48;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      num_requests = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      num_requests = 120;
    }
  }

  std::cout << "=== Serving under injected faults: fault-p x retry policy "
               "===\n"
            << num_requests << " requests from " << num_clients
            << " clients, 2 workers; deterministic faults, virtual "
               "latency\n\n";

  bench::PreparedWorld world = bench::Prepare(DatasetKind::kOldenburg, cfg);

  std::vector<SweepPoint> sweep = {
      // Baseline: the decorator at p=0 measures pure resilience overhead.
      {0.0, 4, "fault-free"},
      // Fault-probability sweep at the default retry policy.
      {0.05, 4, "light"},
      {0.2, 4, "acceptance floor"},
      {0.5, 4, "heavy"},
      // Retry-policy sweep at the acceptance-criterion fault rate: no
      // retries leans on the ladder; extra attempts trade upstream quota
      // for freshness.
      {0.2, 1, "no retries"},
      {0.2, 8, "persistent"},
  };

  TableWriter table({"Fault p", "Attempts", "QPS", "p50 [ms]", "p99 [ms]",
                     "Degraded", "Retries", "Ladder", "Opens"});
  bench::BenchJsonWriter json;
  for (const SweepPoint& point : sweep) {
    SweepResult r = RunPoint(world, point, num_requests, num_clients);
    ECOCHARGE_CHECK(
        table
            .AddRow({TableWriter::Fmt(point.fault_p, 2),
                     std::to_string(point.max_attempts),
                     TableWriter::Fmt(r.qps, 1), TableWriter::Fmt(r.p50_ms, 2),
                     TableWriter::Fmt(r.p99_ms, 2),
                     TableWriter::Fmt(100.0 * r.degraded_frac, 1) + "%",
                     std::to_string(r.retries),
                     std::to_string(r.ladder_serves),
                     std::to_string(r.breaker_opens)})
            .ok());
    json.BeginRecord();
    json.Str("bench", "fault_resilience");
    json.Str("dataset", "Oldenburg");
    json.Str("label", point.label);
    json.Num("fault_p", point.fault_p);
    json.Num("max_attempts", point.max_attempts);
    json.Num("requests", static_cast<double>(num_requests));
    json.Num("clients", static_cast<double>(num_clients));
    json.Num("elapsed_s", r.elapsed_s);
    json.Num("qps", r.qps);
    json.Num("p50_ms", r.p50_ms);
    json.Num("p99_ms", r.p99_ms);
    json.Num("served", static_cast<double>(r.stats.served));
    json.Num("degraded_frac", r.degraded_frac);
    json.Num("retries", static_cast<double>(r.retries));
    json.Num("ladder_serves", static_cast<double>(r.ladder_serves));
    json.Num("breaker_opens", static_cast<double>(r.breaker_opens));
  }
  table.RenderText(std::cout);
  std::cout << "\nEvery row served all " << num_requests
            << " requests: faults degrade tables, never drop them.\n";
  if (!json.WriteFile("BENCH_fault_resilience.json")) {
    std::cerr << "failed to write BENCH_fault_resilience.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_fault_resilience.json (" << json.num_records()
            << " records)\n";
  return 0;
}
