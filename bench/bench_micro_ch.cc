// Contraction-hierarchy derouting gate: preprocessing, snapshot round-trip,
// and the speedup the hierarchy buys over the PR 5 Dijkstra batch on a
// large generated graph.
//
// The binary asserts the tentpole's contract and exits 1 when it breaks:
//   1. the CH snapshot section mmap-loads without re-contraction (load is
//      orders of magnitude cheaper than the build) and the loaded hierarchy
//      answers bit-identically to the freshly built one;
//   2. CH batch derouting estimates are bit-identical to ExactBatch on the
//      Dijkstra backend, across traffic buckets;
//   3. on the full graph (>= 1M nodes) the CH backend is >= 10x faster than
//      ExactBatch (>= 2x on the --quick 200k-node smoke graph — the sweeps'
//      advantage shrinks when the whole graph fits in cache);
//   4. end-to-end Offering Tables from a --derouting=ch environment are
//      bit-identical to the exact-backend environment's.
// Timing uses interleaved min-of-rounds (see bench_micro_obs.cc for why).
// Results are emitted as BENCH_ch.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ch/ch_customize.h"
#include "ch/ch_index.h"
#include "ch/ch_query.h"
#include "ch/contraction.h"
#include "common/rng.h"
#include "core/ecocharge.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/landmarks.h"
#include "spatial/index_factory.h"
#include "traffic/derouting.h"

namespace ecocharge {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool SameBits(const DeroutingEstimate& a, const DeroutingEstimate& b) {
  return std::memcmp(&a.extra_distance_min_m, &b.extra_distance_min_m,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.extra_distance_max_m, &b.extra_distance_max_m,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.eta_s, &b.eta_s, sizeof(double)) == 0;
}

/// Bit-exact Offering Table equality (the tests/test_util.h contract,
/// restated without gtest).
bool TablesSameBits(const OfferingTable& a, const OfferingTable& b) {
  if (a.generated_at != b.generated_at || a.segment_index != b.segment_index ||
      a.location.x != b.location.x || a.location.y != b.location.y ||
      a.adapted_from_cache != b.adapted_from_cache ||
      a.degraded != b.degraded || a.entries.size() != b.entries.size()) {
    return false;
  }
  for (size_t i = 0; i < a.entries.size(); ++i) {
    const OfferingEntry& x = a.entries[i];
    const OfferingEntry& y = b.entries[i];
    if (x.charger_id != y.charger_id || x.score.sc_min != y.score.sc_min ||
        x.score.sc_max != y.score.sc_max || !(x.ecs.level == y.ecs.level) ||
        !(x.ecs.availability == y.ecs.availability) ||
        !(x.ecs.derouting == y.ecs.derouting) || x.ecs.eta_s != y.ecs.eta_s ||
        x.ecs.degraded != y.ecs.degraded || x.eta_s != y.eta_s) {
      return false;
    }
  }
  return true;
}

/// One synthetic refinement workload: a vehicle, a return pair, and `n`
/// candidate charger sites drawn uniformly over the WHOLE corridor. This is
/// the long-haul regime the hierarchy exists for — candidates anywhere
/// within the service's max derouting distance force the exact backend's
/// one-to-many sweeps to settle essentially the entire graph, while CH
/// query cost is bounded by the corridor's (fixed-size) separators.
struct BigQuery {
  DeroutingQuery query;
  std::vector<EvCharger> chargers;
  std::vector<ChargerRef> refs;
};

BigQuery MakeBigQuery(const RoadNetwork& net, Rng* rng, size_t n,
                      SimTime now) {
  BigQuery bq;
  const auto random_node = [&] {
    return static_cast<NodeId>(
        rng->NextBounded(static_cast<uint64_t>(net.NumNodes())));
  };
  const NodeId m = random_node();
  bq.query.vehicle_node = m;
  bq.query.vehicle_position = net.NodePosition(m);
  bq.query.return_node_a = random_node();
  bq.query.return_point_a = net.NodePosition(bq.query.return_node_a);
  bq.query.return_node_b = random_node();
  bq.query.return_point_b = net.NodePosition(bq.query.return_node_b);
  bq.query.now = now;
  bq.chargers.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EvCharger c;
    c.node = random_node();
    c.position = net.NodePosition(c.node);
    bq.chargers.push_back(c);
  }
  for (const EvCharger& c : bq.chargers) bq.refs.push_back(&c);
  return bq;
}

int Main(int argc, char** argv) {
  bool quick = false;
  uint64_t nodes = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (nodes == 0) nodes = quick ? 200000 : 1100000;
  // Exact sweep cost scales with the node count while CH query cost is
  // pinned by the corridor's separator width, so the quick (~1/5-size)
  // graph cannot show the full-size speedup; its floor is a smoke check.
  const double min_speedup = quick ? 1.5 : 10.0;

  bench::BenchJsonWriter json;
  bool ok = true;

  // -------------------------------------------------------------------
  // Build the graph and contract it.
  // -------------------------------------------------------------------
  // A long, thin highway corridor at constant density: nested dissection
  // keeps cutting across the 30 km short axis, so separator sizes — and with
  // them CH query cost — stay flat as the corridor (and the graph) grows.
  StreamingGeometricOptions go;
  go.num_nodes = nodes;
  go.width_m = static_cast<double>(nodes) * (2400000.0 / 1100000.0);
  go.height_m = 30000.0;
  go.target_degree = 4.0;
  go.seed = 9;
  go.num_chunks = 64;
  uint64_t t0 = NowNs();
  auto net_result = MakeStreamingGeometric(go);
  if (!net_result.ok()) {
    std::cerr << "generator: " << net_result.status() << "\n";
    return 1;
  }
  std::shared_ptr<RoadNetwork> network = net_result.MoveValueUnsafe();
  const double gen_s = (NowNs() - t0) / 1e9;
  std::cout << "graph: " << network->NumNodes() << " nodes, "
            << network->NumEdges() << " edges ("
            << TableWriter::Fmt(gen_s, 1) << " s)\n";

  ChBuildStats stats;
  t0 = NowNs();
  auto ch_result = BuildChIndex(*network, &stats);
  if (!ch_result.ok()) {
    std::cerr << "contraction: " << ch_result.status() << "\n";
    return 1;
  }
  std::shared_ptr<ChIndex> built = ch_result.MoveValueUnsafe();
  const double build_s = (NowNs() - t0) / 1e9;
  std::cout << "contraction: " << stats.shortcuts << " shortcuts, "
            << stats.ordering_pops << " queue pops, max live degree "
            << stats.max_live_degree << " (" << TableWriter::Fmt(build_s, 1)
            << " s)\n";

  // -------------------------------------------------------------------
  // Snapshot round trip: the CH section must mmap back without
  // re-contraction — the load is validation-only, orders of magnitude
  // cheaper than the build.
  // -------------------------------------------------------------------
  const std::string snap_path = "bench_ch_snapshot.ecgs";
  const ChSnapshotViews views = ToSnapshotViews(built);
  t0 = NowNs();
  if (Status s = SaveSnapshot(*network, snap_path, nullptr, &views); !s.ok()) {
    std::cerr << "snapshot save: " << s << "\n";
    return 1;
  }
  const double save_s = (NowNs() - t0) / 1e9;
  t0 = NowNs();
  auto loaded_result = LoadSnapshotWithAux(snap_path);
  if (!loaded_result.ok() || !loaded_result->ch.has_value()) {
    std::cerr << "snapshot load: CH section missing or unreadable\n";
    return 1;
  }
  LoadedSnapshot snap = loaded_result.MoveValueUnsafe();
  auto reload_result = ChIndexFromSnapshot(*snap.ch, snap.network->NumEdges());
  if (!reload_result.ok()) {
    std::cerr << "snapshot rehydrate: " << reload_result.status() << "\n";
    return 1;
  }
  std::shared_ptr<ChIndex> loaded = reload_result.MoveValueUnsafe();
  const double load_s = (NowNs() - t0) / 1e9;
  std::cout << "snapshot: save " << TableWriter::Fmt(save_s, 2) << " s, "
            << "mmap load+validate " << TableWriter::Fmt(load_s, 2)
            << " s\n";
  if (load_s > build_s / 10.0) {
    std::cerr << "FAIL: snapshot load took " << load_s
              << " s — that smells like a re-contraction (build was "
              << build_s << " s)\n";
    ok = false;
  }

  // Loaded-vs-built parity: a handful of point-to-point queries must agree
  // bit for bit (both run over identical record arrays).
  {
    ChQuery fresh(*built), reloaded(*loaded);
    CongestionModel congestion(7);
    ChClassWeights w;
    for (int c = 0; c < kChNumClasses; ++c) {
      w.w[c] = 1.0 / congestion.ActualSpeedFactor(static_cast<RoadClass>(c),
                                                  8.5 * 3600);
    }
    Rng rng(17);
    for (int i = 0; i < 24; ++i) {
      const NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
      const NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
      const double da = fresh.Search(s, t, w);
      const double db = reloaded.Search(s, t, w);
      if (std::memcmp(&da, &db, sizeof(double)) != 0) {
        std::cerr << "FAIL: loaded hierarchy disagrees at " << s << " -> "
                  << t << "\n";
        ok = false;
      }
    }
  }

  // -------------------------------------------------------------------
  // Derouting backend parity + speedup. Both services bucket exact costs
  // to the congestion noise bucket (the serving configuration), so the
  // Dijkstra side gets its warm-start memo and the CH side amortizes
  // customization the same way — an honest comparison of warmed paths.
  // -------------------------------------------------------------------
  CongestionModel congestion(7);
  DeroutingService exact(snap.network, &congestion, 1.3,
                         CongestionModel::kNoiseBucketSeconds);
  DeroutingService hierarchy(snap.network, &congestion, 1.3,
                             CongestionModel::kNoiseBucketSeconds);
  // Serve planes through a customization cache so the timed query loop
  // below measures steady-state query cost: every bucket the workload
  // touches is priced once during the parity pass and hits thereafter.
  // Customization cost is timed on its own further down.
  ChCustomizationCache plane_cache(*loaded);
  hierarchy.set_ch(loaded.get(), &plane_cache);

  Rng rng(23);
  // The pipeline refines EcoChargeOptions::refine_limit (8) candidates per
  // query — that is the batch size the backend actually serves.
  const size_t kTargets = 8;
  const size_t kStates = 4;
  std::vector<BigQuery> workload;
  for (size_t s = 0; s < kStates; ++s) {
    workload.push_back(MakeBigQuery(*snap.network, &rng, kTargets,
                                    /*now=*/8.0 * 3600 + s * 300.0));
  }

  DeroutingBatchScratch exact_scratch, ch_scratch;
  std::vector<DeroutingEstimate> exact_out, ch_out;
  size_t compared = 0;
  for (SimTime tau_shift : {0.0, 2.0 * 3600}) {  // two traffic buckets
    for (BigQuery& bq : workload) {
      DeroutingQuery q = bq.query;
      q.now += tau_shift;
      exact.ExactBatch(q, bq.refs, &exact_scratch, &exact_out);
      hierarchy.ExactBatch(q, bq.refs, &ch_scratch, &ch_out);
      for (size_t i = 0; i < bq.refs.size(); ++i) {
        if (!SameBits(exact_out[i], ch_out[i])) {
          std::cerr << "FAIL: estimate mismatch, charger " << i << " shift "
                    << tau_shift << "\n";
          ok = false;
        }
        ++compared;
      }
    }
  }
  std::cout << "parity: " << compared
            << " estimates compared across 2 traffic buckets\n";

  // Interleaved min-of-rounds over the full warmed workload.
  const int kRounds = 3;
  uint64_t exact_ns = UINT64_MAX, ch_ns = UINT64_MAX;
  for (int round = 0; round < kRounds; ++round) {
    for (int side = 0; side < 2; ++side) {
      const bool run_ch = (round + side) % 2 == 1;
      const uint64_t start = NowNs();
      for (BigQuery& bq : workload) {
        if (run_ch) {
          hierarchy.ExactBatch(bq.query, bq.refs, &ch_scratch, &ch_out);
        } else {
          exact.ExactBatch(bq.query, bq.refs, &exact_scratch, &exact_out);
        }
      }
      const uint64_t elapsed = NowNs() - start;
      uint64_t& best = run_ch ? ch_ns : exact_ns;
      best = std::min(best, elapsed);
    }
  }
  const double speedup = static_cast<double>(exact_ns) /
                         static_cast<double>(std::max<uint64_t>(ch_ns, 1));
  std::cout << "derouting batch (" << kStates << " states x " << kTargets
            << " targets): dijkstra "
            << TableWriter::Fmt(exact_ns / 1e6, 1) << " ms, ch "
            << TableWriter::Fmt(ch_ns / 1e6, 1) << " ms ("
            << TableWriter::Fmt(speedup, 2) << "x)\n";

  // -------------------------------------------------------------------
  // Customization cost, timed on its own: the cache above kept sweeps out
  // of the query loop, so BENCH_ch.json reports per-bucket plane pricing
  // (customize_ns) separately from steady-state query cost (ch_batch_ns).
  // -------------------------------------------------------------------
  uint64_t customize_ns = UINT64_MAX;
  {
    ChCustomizer customizer(*loaded);
    ChClassWeights w;
    for (int c = 0; c < kChNumClasses; ++c) {
      w.w[c] = 1.0 / congestion.ActualSpeedFactor(static_cast<RoadClass>(c),
                                                  8.5 * 3600);
    }
    for (int round = 0; round < kRounds; ++round) {
      const uint64_t start = NowNs();
      customizer.Customize(w);
      customize_ns = std::min(customize_ns, NowNs() - start);
    }
  }
  std::cout << "customization: " << TableWriter::Fmt(customize_ns / 1e6, 1)
            << " ms per full sweep (serial; plane cache served "
            << plane_cache.hits() << " hits / " << plane_cache.misses()
            << " misses during the query phases)\n";
  if (speedup < min_speedup) {
    std::cerr << "FAIL: CH backend only " << speedup << "x over ExactBatch ("
              << "floor " << min_speedup << "x at " << network->NumNodes()
              << " nodes)\n";
    ok = false;
  }

  json.BeginRecord();
  json.Str("mode", "ch_gate");
  json.Num("nodes", static_cast<double>(network->NumNodes()));
  json.Num("edges", static_cast<double>(network->NumEdges()));
  json.Num("shortcuts", static_cast<double>(stats.shortcuts));
  json.Num("max_live_degree", static_cast<double>(stats.max_live_degree));
  json.Num("contraction_s", build_s);
  json.Num("snapshot_save_s", save_s);
  json.Num("snapshot_load_s", load_s);
  json.Num("targets", static_cast<double>(kTargets));
  json.Num("states", static_cast<double>(kStates));
  json.Num("estimates_compared", static_cast<double>(compared));
  json.Num("exact_batch_ns", static_cast<double>(exact_ns));
  json.Num("ch_batch_ns", static_cast<double>(ch_ns));
  json.Num("customize_ns", static_cast<double>(customize_ns));
  json.Num("plane_cache_hits", static_cast<double>(plane_cache.hits()));
  json.Num("plane_cache_misses", static_cast<double>(plane_cache.misses()));
  json.Num("speedup", speedup);
  json.Num("speedup_floor", min_speedup);

  // -------------------------------------------------------------------
  // End-to-end Offering Table parity: two deterministic environments over
  // the same snapshot, differing only in derouting_backend.
  // -------------------------------------------------------------------
  {
    bench::BenchConfig cfg;
    cfg.num_chargers = 400;
    cfg.max_trips = 4;
    cfg.max_states = 8;
    cfg.graph_snapshot = snap_path;
    bench::PreparedWorld exact_world =
        bench::Prepare(DatasetKind::kOldenburg, cfg);
    EnvironmentOptions co;
    co.kind = DatasetKind::kOldenburg;
    co.dataset_scale = cfg.dataset_scale;
    co.num_chargers = cfg.num_chargers;
    co.max_derouting_m = 150000.0;
    co.seed = cfg.seed;
    co.index_kind = cfg.index_kind;
    co.graph_snapshot = snap_path;
    co.derouting_backend = DeroutingBackend::kCh;
    auto ch_env_result = MakeEnvironment(co);
    if (!ch_env_result.ok()) {
      std::cerr << "ch environment: " << ch_env_result.status() << "\n";
      return 1;
    }
    std::unique_ptr<Environment> ch_env = ch_env_result.MoveValueUnsafe();

    std::vector<Point> points;
    for (const EvCharger& c : exact_world.env->chargers) {
      points.push_back(c.position);
    }
    std::unique_ptr<SpatialIndex> exact_index =
        MakeSpatialIndex(cfg.index_kind);
    exact_index->Build(std::vector<Point>(points));
    std::unique_ptr<SpatialIndex> ch_index = MakeSpatialIndex(cfg.index_kind);
    ch_index->Build(std::move(points));

    EcoChargeOptions ro;
    ro.radius_m = 50000.0;
    EcoChargeRanker exact_ranker(exact_world.env->estimator.get(),
                                 exact_index.get(), ScoreWeights::AWE(), ro);
    EcoChargeRanker ch_ranker(ch_env->estimator.get(), ch_index.get(),
                              ScoreWeights::AWE(), ro);
    size_t tables = 0, mismatches = 0;
    for (const VehicleState& state : exact_world.states) {
      if (!TablesSameBits(ch_ranker.Rank(state, 3),
                          exact_ranker.Rank(state, 3))) {
        ++mismatches;
      }
      ++tables;
    }
    std::cout << "offering tables: " << tables << " compared, " << mismatches
              << " mismatches\n";
    if (tables == 0 || mismatches != 0) {
      std::cerr << "FAIL: --derouting=ch Offering Tables are not "
                   "bit-identical to the exact backend\n";
      ok = false;
    }
    json.Num("tables_compared", static_cast<double>(tables));
    json.Num("table_mismatches", static_cast<double>(mismatches));
  }

  std::remove(snap_path.c_str());
  if (!json.WriteFile("BENCH_ch.json")) {
    std::cerr << "failed to write BENCH_ch.json\n";
    return 1;
  }
  std::cout << "wrote BENCH_ch.json (" << json.num_records()
            << " records)\n";
  if (!ok) return 1;
  std::cout << "PASS: CH backend bit-identical and >= " << min_speedup
            << "x over ExactBatch at " << network->NumNodes() << " nodes\n";
  return 0;
}

}  // namespace
}  // namespace ecocharge

int main(int argc, char** argv) { return ecocharge::Main(argc, argv); }
