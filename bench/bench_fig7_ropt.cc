// Figure 7 — R-opt Evaluation.
//
// Sweeps EcoCharge's user-configured radius R over {25, 50, 75} km on all
// four datasets. Expected shape (paper): smaller R is faster but scores
// lower; larger R costs more time and approaches the exhaustive optimum.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "core/ecocharge.h"

using namespace ecocharge;
using bench::BenchConfig;
using bench::MeanStd;

int main(int argc, char** argv) {
  Logger::set_threshold(LogLevel::kWarning);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  ScoreWeights weights = ScoreWeights::AWE();
  const double radii_km[] = {25.0, 50.0, 75.0};

  std::cout << "=== Figure 7: R-opt Evaluation of EcoCharge ===\n"
            << "k=" << cfg.k << " Q=" << cfg.q_distance_m / 1000.0
            << "km chargers=" << cfg.num_chargers
            << " states=" << cfg.max_states << " reps=" << cfg.repetitions
            << "\n\n";

  TableWriter table({"Dataset", "R [km]", "F_t [ms]", "SC [%]"});
  for (DatasetKind kind : AllDatasetKinds()) {
    bench::PreparedWorld world = bench::Prepare(kind, cfg);
    Evaluator evaluator(world.env->estimator.get(), weights);
    evaluator.SetWorkload(world.states);

    for (double r_km : radii_km) {
      EcoChargeOptions opts;
      opts.radius_m = r_km * 1000.0;
      opts.q_distance_m = cfg.q_distance_m;
      EcoChargeRanker eco(world.env->estimator.get(),
                          world.env->charger_index.get(), weights, opts);
      MethodEvaluation m = evaluator.Evaluate(eco, cfg.k, cfg.repetitions);
      ECOCHARGE_CHECK(table
                          .AddRow({std::string(DatasetName(kind)),
                                   TableWriter::Fmt(r_km, 0),
                                   MeanStd(m.ft_ms), MeanStd(m.sc_percent)})
                          .ok());
    }
  }
  table.RenderText(std::cout);
  std::cout << "\n(SC is relative to the Brute-Force optimum; the oracle is "
               "independent of R.)\n";
  return 0;
}
