// Figure 6 — Performance Evaluation.
//
// Reproduces the paper's headline comparison: CPU execution time F_t and
// Sustainability Score SC (% of Brute-Force) for {Brute-Force,
// Index-Quadtree, Random, EcoCharge} over the four datasets, at k = 3,
// R = 50 km, Q = 5 km, equal weights.
//
// Expected shape (paper): Brute-Force SC = 100% but slowest by far;
// Index-Quadtree fast with a visible SC gap; Random fastest with the worst
// SC; EcoCharge near-optimal SC at a small fraction of Brute-Force time.

#include <iostream>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "core/baselines.h"
#include "core/ecocharge.h"

using namespace ecocharge;
using bench::BenchConfig;
using bench::MeanStd;

int main(int argc, char** argv) {
  Logger::set_threshold(LogLevel::kWarning);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  ScoreWeights weights = ScoreWeights::AWE();

  std::cout << "=== Figure 6: Performance Evaluation ===\n"
            << "k=" << cfg.k << " R=" << cfg.radius_m / 1000.0
            << "km Q=" << cfg.q_distance_m / 1000.0
            << "km chargers=" << cfg.num_chargers
            << " states=" << cfg.max_states << " reps=" << cfg.repetitions
            << " weights=AWE index="
            << SpatialIndexKindName(cfg.index_kind) << "\n\n";

  TableWriter table({"Dataset", "Method", "F_t [ms]", "SC [%]"});
  for (DatasetKind kind : AllDatasetKinds()) {
    bench::PreparedWorld world = bench::Prepare(kind, cfg);
    Evaluator evaluator(world.env->estimator.get(), weights);
    evaluator.SetWorkload(world.states);

    BruteForceRanker brute(world.env->estimator.get(), weights);
    QuadtreeRanker quadtree(world.env->estimator.get(),
                            world.env->charger_index.get(), weights);
    RandomRanker random(world.env->estimator.get(),
                        world.env->charger_index.get(), cfg.radius_m,
                        cfg.seed ^ 0xF00DULL);
    EcoChargeOptions eco_opts;
    eco_opts.radius_m = cfg.radius_m;
    eco_opts.q_distance_m = cfg.q_distance_m;
    EcoChargeRanker eco(world.env->estimator.get(),
                        world.env->charger_index.get(), weights, eco_opts);

    for (Ranker* ranker :
         std::initializer_list<Ranker*>{&brute, &quadtree, &random, &eco}) {
      // Brute-Force repetitions are expensive and its SC is 100% by
      // construction; one pass suffices for it.
      int reps = ranker == &brute ? 1 : cfg.repetitions;
      MethodEvaluation m = evaluator.Evaluate(*ranker, cfg.k, reps);
      ECOCHARGE_CHECK(table
                          .AddRow({std::string(DatasetName(kind)), m.method,
                                   MeanStd(m.ft_ms), MeanStd(m.sc_percent)})
                          .ok());
    }
  }
  table.RenderText(std::cout);
  std::cout << "\n(Per-query mean ± stddev across " << cfg.max_states
            << " vehicle states x repetitions.)\n";
  return 0;
}
