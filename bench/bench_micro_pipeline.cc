// Micro-benchmarks of the index-agnostic query pipeline: the EcoCharge
// full-regeneration and cache-hit paths swept over every spatial-index
// backend, each with a reused QueryContext (the steady-state serving
// configuration) and with a fresh context per query (what a caller pays
// without buffer reuse). Every backend returns bit-identical tables, so
// the spread across rows is pure index/allocation cost.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_gbench_json.h"
#include "common/rng.h"
#include "core/ecocharge.h"
#include "core/environment.h"
#include "core/workload.h"
#include "spatial/index_factory.h"

namespace ecocharge {
namespace {

struct World {
  std::unique_ptr<Environment> env;
  std::vector<VehicleState> states;
  // One instance of every backend over the same charger points.
  std::unique_ptr<SpatialIndex> indexes[kAllSpatialIndexKinds.size()];
};

World& SharedWorld() {
  static World world = [] {
    EnvironmentOptions eo;
    eo.kind = DatasetKind::kOldenburg;
    eo.dataset_scale = 0.01;
    eo.num_chargers = 1000;
    eo.seed = 42;
    World w;
    w.env = MakeEnvironment(eo).MoveValueUnsafe();
    WorkloadOptions wo;
    wo.max_trips = 10;
    wo.max_states = 32;
    w.states = BuildWorkload(w.env->dataset, wo);

    std::vector<Point> points;
    points.reserve(w.env->chargers.size());
    for (const EvCharger& c : w.env->chargers) points.push_back(c.position);
    for (size_t i = 0; i < kAllSpatialIndexKinds.size(); ++i) {
      w.indexes[i] = MakeSpatialIndex(kAllSpatialIndexKinds[i]);
      w.indexes[i]->Build(points);
    }
    return w;
  }();
  return world;
}

const SpatialIndex* IndexFor(SpatialIndexKind kind) {
  World& w = SharedWorld();
  for (size_t i = 0; i < kAllSpatialIndexKinds.size(); ++i) {
    if (kAllSpatialIndexKinds[i] == kind) return w.indexes[i].get();
  }
  return nullptr;
}

void FullQuery(benchmark::State& state, SpatialIndexKind kind,
               bool reuse_context) {
  World& w = SharedWorld();
  EcoChargeOptions opts;
  opts.q_distance_m = 0.0;  // force regeneration every query
  EcoChargeRanker eco(w.env->estimator.get(), IndexFor(kind),
                      ScoreWeights::AWE(), opts);
  QueryContext ctx;
  OfferingTable table;
  eco.RankInto(w.states.front(), 3, ctx, &table);  // warm EIS caches
  Rng rng(3);
  for (auto _ : state) {
    const VehicleState& vs = w.states[rng.NextBounded(w.states.size())];
    if (reuse_context) {
      eco.RankInto(vs, 3, ctx, &table);
      benchmark::DoNotOptimize(table);
    } else {
      QueryContext fresh;
      OfferingTable t;
      eco.RankInto(vs, 3, fresh, &t);
      benchmark::DoNotOptimize(t);
    }
  }
}

void CachedQuery(benchmark::State& state, SpatialIndexKind kind,
                 bool reuse_context) {
  World& w = SharedWorld();
  EcoChargeOptions opts;
  opts.q_distance_m = 1e9;  // every repeat query is a cache hit
  opts.cache_ttl_s = 1e12;
  EcoChargeRanker eco(w.env->estimator.get(), IndexFor(kind),
                      ScoreWeights::AWE(), opts);
  QueryContext ctx;
  OfferingTable table;
  const VehicleState& vs = w.states.front();
  eco.RankInto(vs, 3, ctx, &table);  // warm the solution cache
  for (auto _ : state) {
    if (reuse_context) {
      eco.RankInto(vs, 3, ctx, &table);
      benchmark::DoNotOptimize(table);
    } else {
      QueryContext fresh;
      OfferingTable t;
      eco.RankInto(vs, 3, fresh, &t);
      benchmark::DoNotOptimize(t);
    }
  }
}

void FilterOnly(benchmark::State& state, SpatialIndexKind kind) {
  World& w = SharedWorld();
  CknnEcOptions opts;
  CknnEcProcessor processor(w.env->estimator.get(), IndexFor(kind), opts);
  QueryContext ctx;
  Rng rng(3);
  for (auto _ : state) {
    const VehicleState& vs = w.states[rng.NextBounded(w.states.size())];
    benchmark::DoNotOptimize(processor.FilterCandidates(vs.position, &ctx));
  }
}

void RegisterAll() {
  for (SpatialIndexKind kind : kAllSpatialIndexKinds) {
    std::string name(SpatialIndexKindName(kind));
    benchmark::RegisterBenchmark(("BM_FullQuery/" + name + "/reused").c_str(),
                                 FullQuery, kind, true);
    benchmark::RegisterBenchmark(("BM_FullQuery/" + name + "/fresh").c_str(),
                                 FullQuery, kind, false);
    benchmark::RegisterBenchmark(("BM_FilterOnly/" + name).c_str(),
                                 FilterOnly, kind);
  }
  // The cache-hit path never touches the index, so one backend suffices.
  benchmark::RegisterBenchmark("BM_CachedQuery/reused", CachedQuery,
                               SpatialIndexKind::kQuadTree, true);
  benchmark::RegisterBenchmark("BM_CachedQuery/fresh", CachedQuery,
                               SpatialIndexKind::kQuadTree, false);
}

}  // namespace
}  // namespace ecocharge

int main(int argc, char** argv) {
  ecocharge::RegisterAll();
  return ecocharge::bench::RunAndExportJson(argc, argv,
                                            "BENCH_pipeline.json");
}
