// Fleet-scale serving bench and gate: QPS + latency percentiles vs shard
// count, corridor-cache sharing, and the parity discipline under load.
//
// Three asserting gates (exit 1 on violation):
//   1. Bit-parity: shards x threads must not change a single served bit —
//      every (client, sequence) slot's table digest must match the
//      single-shard synchronous run, with and without the corridor cache.
//   2. Corridor sharing: on a fleet trace (many vehicles over the same
//      trips), the corridor hit rate must be substantial — the cache is
//      the mechanism that makes the 1M-request row feasible at all.
//   3. I/O-bound scaling: with a per-request simulated upstream stall,
//      QPS at 4 shards must be >= 1.5x the single-shard QPS (each shard
//      owns its own worker pool; stalls overlap across shards even on a
//      single core).
//
// Full mode routes ~1M requests through the sharded runtime (feasible
// because the corridor cache turns the steady state into hits); --quick
// shrinks every phase for CI. Writes BENCH_fleet.json.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_writer.h"
#include "core/protocol.h"
#include "fleet/fleet_server.h"
#include "obs/metrics.h"

using namespace ecocharge;
using bench::BenchConfig;

namespace {

struct RunResult {
  double elapsed_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  fleet::FleetStats stats;
  double corridor_hit_rate = 0.0;
};

std::unique_ptr<fleet::FleetServer> MakeFleet(bench::PreparedWorld& world,
                                              size_t shards, int threads,
                                              bool corridor,
                                              size_t queue_depth,
                                              double io_ms) {
  fleet::FleetServerOptions options;
  options.partition.num_shards = shards;
  options.threads_per_shard = threads;
  options.corridor_cache = corridor;
  options.server.queue_depth = queue_depth;
  options.server.simulated_io_ms = io_ms;
  auto result = fleet::FleetServer::Create(world.env.get(),
                                           ScoreWeights::AWE(),
                                           EcoChargeOptions{}, options);
  if (!result.ok()) {
    std::cerr << "fleet: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).MoveValueUnsafe();
}

/// Runs `num_requests` over `num_clients` walking vehicles. When
/// `digests` is non-null it receives one per-(client, sequence) table
/// digest — each slot written exactly once, by whichever worker serves
/// that request — so threaded runs compare against the synchronous
/// reference slot by slot.
RunResult RunPoint(bench::PreparedWorld& world, size_t shards, int threads,
                   bool corridor, size_t num_requests, size_t num_clients,
                   double io_ms, uint64_t refresh_every,
                   std::vector<uint64_t>* digests) {
  auto fleet = MakeFleet(world, shards, threads, corridor, num_requests,
                         io_ms);
  if (digests) digests->assign(num_requests, 0);

  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  for (size_t i = 0; i < num_requests; ++i) {
    if (refresh_every > 0 && i > 0 && i % refresh_every == 0) {
      size_t state_index =
          (i % num_clients + i / num_clients) % world.states.size();
      fleet->PublishRefresh(
          static_cast<fleet::RefreshKind>((i / refresh_every) % 3),
          world.states[state_index].time);
    }
    size_t state_index =
        (i % num_clients + i / num_clients) % world.states.size();
    std::function<void(const OfferingTable&)> on_table;
    if (digests) {
      uint64_t* slot = &(*digests)[i];
      on_table = [slot](const OfferingTable& table) {
        *slot = std::hash<std::string>{}(EncodeOfferingTable(table));
      };
    } else {
      on_table = [](const OfferingTable&) {};
    }
    Status st = fleet->Submit(i % num_clients, world.states[state_index], 3,
                              std::move(on_table));
    if (!st.ok()) {
      std::cerr << "submit: " << st << "\n";
      std::exit(1);
    }
  }
  fleet->Drain();
  RunResult result;
  result.elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.stats = fleet->Stats();
  result.qps = result.elapsed_s > 0.0
                   ? static_cast<double>(result.stats.totals.served) /
                         result.elapsed_s
                   : 0.0;
  uint64_t lookups =
      result.stats.corridor.hits + result.stats.corridor.misses;
  result.corridor_hit_rate =
      lookups > 0 ? static_cast<double>(result.stats.corridor.hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  const obs::Histogram* latency =
      fleet->metrics().FindHistogram("fleet.request_latency_ns");
  ECOCHARGE_CHECK(latency != nullptr);
  obs::HistogramSnapshot snap = latency->Snapshot();
  result.p50_ms = static_cast<double>(snap.ValueAtQuantile(0.50)) / 1e6;
  result.p95_ms = static_cast<double>(snap.ValueAtQuantile(0.95)) / 1e6;
  result.p99_ms = static_cast<double>(snap.ValueAtQuantile(0.99)) / 1e6;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Logger::set_threshold(LogLevel::kWarning);
  BenchConfig cfg = BenchConfig::FromArgs(argc, argv);
  bool quick = false;
  double io_ms = 4.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--io-ms") == 0 && i + 1 < argc) {
      io_ms = std::atof(argv[i + 1]);
    }
  }
  size_t parity_requests = quick ? 600 : 4000;
  size_t sweep_requests = quick ? 160 : 480;
  size_t bulk_requests = quick ? 20000 : 1000000;
  size_t num_clients = 48;

  bench::PreparedWorld world = bench::Prepare(DatasetKind::kOldenburg, cfg);
  bench::BenchJsonWriter json;

  // --- Gate 1: bit-parity across shard and thread counts. -----------------
  std::cout << "=== Gate 1: sharded serving is bit-identical ===\n";
  bool parity_ok = true;
  for (bool corridor : {false, true}) {
    std::vector<uint64_t> reference;
    RunPoint(world, 1, 0, corridor, parity_requests, num_clients, 0.0,
             /*refresh_every=*/0, &reference);
    for (size_t shards : {2u, 4u}) {
      for (int threads : {0, 2}) {
        std::vector<uint64_t> digests;
        RunPoint(world, shards, threads, corridor, parity_requests,
                 num_clients, 0.0, /*refresh_every=*/0, &digests);
        bool same = digests == reference;
        parity_ok = parity_ok && same;
        std::cout << "  " << (corridor ? "corridor" : "handoff ")
                  << " shards=" << shards << " threads=" << threads << ": "
                  << (same ? "bit-identical" : "MISMATCH") << "\n";
      }
    }
  }
  ECOCHARGE_CHECK(parity_ok);

  // --- Gate 2 + 3: QPS/latency vs shard count, corridor sharing. ----------
  std::cout << "\n=== Shard sweep (" << sweep_requests << " requests, "
            << io_ms << " ms simulated upstream stall) ===\n";
  TableWriter table({"Shards", "Threads/shard", "Corridor", "QPS",
                     "p50 [ms]", "p95 [ms]", "p99 [ms]", "Handoffs",
                     "Hit rate", "Epoch"});
  double qps_one_shard = 0.0;
  double qps_four_shards = 0.0;
  double corridor_hit_rate = 0.0;
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    for (bool corridor : {false, true}) {
      RunResult r = RunPoint(world, shards, 2, corridor, sweep_requests,
                             num_clients, io_ms, /*refresh_every=*/64,
                             nullptr);
      if (!corridor && shards == 1) qps_one_shard = r.qps;
      if (!corridor && shards == 4) qps_four_shards = r.qps;
      if (corridor && shards == 4) corridor_hit_rate = r.corridor_hit_rate;
      ECOCHARGE_CHECK(
          table
              .AddRow({std::to_string(shards), "2",
                       corridor ? "yes" : "no", TableWriter::Fmt(r.qps, 1),
                       TableWriter::Fmt(r.p50_ms, 2),
                       TableWriter::Fmt(r.p95_ms, 2),
                       TableWriter::Fmt(r.p99_ms, 2),
                       std::to_string(r.stats.clients.handoffs),
                       TableWriter::Fmt(r.corridor_hit_rate, 2),
                       std::to_string(r.stats.epoch)})
              .ok());
      json.BeginRecord();
      json.Str("bench", "fleet");
      json.Str("phase", "shard_sweep");
      json.Str("dataset", "Oldenburg");
      json.Num("shards", static_cast<double>(shards));
      json.Num("threads_per_shard", 2);
      json.Num("corridor", corridor ? 1 : 0);
      json.Num("requests", static_cast<double>(sweep_requests));
      json.Num("clients", static_cast<double>(num_clients));
      json.Num("simulated_io_ms", io_ms);
      json.Num("elapsed_s", r.elapsed_s);
      json.Num("qps", r.qps);
      json.Num("p50_ms", r.p50_ms);
      json.Num("p95_ms", r.p95_ms);
      json.Num("p99_ms", r.p99_ms);
      json.Num("served", static_cast<double>(r.stats.totals.served));
      json.Num("handoffs", static_cast<double>(r.stats.clients.handoffs));
      json.Num("handoff_waits", static_cast<double>(r.stats.clients.waits));
      json.Num("corridor_hit_rate", r.corridor_hit_rate);
      json.Num("corridor_inserts",
               static_cast<double>(r.stats.corridor_inserts));
      json.Num("epoch", static_cast<double>(r.stats.epoch));
    }
  }
  table.RenderText(std::cout);

  double scaling = qps_one_shard > 0.0 ? qps_four_shards / qps_one_shard
                                       : 0.0;
  std::cout << "\nI/O-inclusive scaling, 4 shards vs 1: "
            << TableWriter::Fmt(scaling, 2) << "x (floor 1.5x)\n"
            << "corridor hit rate at 4 shards: "
            << TableWriter::Fmt(corridor_hit_rate, 2) << " (floor 0.20)\n";
  ECOCHARGE_CHECK(scaling >= 1.5);
  ECOCHARGE_CHECK(corridor_hit_rate > 0.20);

  // --- Bulk row: the fleet-trace headline (~1M requests in full mode). ----
  std::cout << "\n=== Bulk corridor trace (" << bulk_requests
            << " requests, no stall) ===\n";
  RunResult bulk = RunPoint(world, 8, 2, /*corridor=*/true, bulk_requests,
                            num_clients, 0.0, /*refresh_every=*/8192,
                            nullptr);
  std::cout << "  " << bulk.stats.totals.served << " served in "
            << TableWriter::Fmt(bulk.elapsed_s, 2) << " s ("
            << TableWriter::Fmt(bulk.qps, 0) << " QPS), corridor hit rate "
            << TableWriter::Fmt(bulk.corridor_hit_rate, 3) << ", p99 "
            << TableWriter::Fmt(bulk.p99_ms, 3) << " ms, epoch "
            << bulk.stats.epoch << "\n";
  ECOCHARGE_CHECK(bulk.stats.totals.served == bulk_requests);
  ECOCHARGE_CHECK(bulk.corridor_hit_rate > 0.5);
  json.BeginRecord();
  json.Str("bench", "fleet");
  json.Str("phase", "bulk_corridor");
  json.Str("dataset", "Oldenburg");
  json.Num("shards", 8);
  json.Num("threads_per_shard", 2);
  json.Num("requests", static_cast<double>(bulk_requests));
  json.Num("elapsed_s", bulk.elapsed_s);
  json.Num("qps", bulk.qps);
  json.Num("p50_ms", bulk.p50_ms);
  json.Num("p99_ms", bulk.p99_ms);
  json.Num("corridor_hit_rate", bulk.corridor_hit_rate);
  json.Num("handoffs", static_cast<double>(bulk.stats.clients.handoffs));
  json.Num("epoch", static_cast<double>(bulk.stats.epoch));

  if (!json.WriteFile("BENCH_fleet.json")) {
    std::cerr << "failed to write BENCH_fleet.json\n";
    return 1;
  }
  std::cout << "\nall gates passed; wrote BENCH_fleet.json ("
            << json.num_records() << " records)\n";
  return 0;
}
