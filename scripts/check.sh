#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
# Usage:
#   scripts/check.sh                 # plain Release build in build/
#   scripts/check.sh address         # ASan build in build-asan/
#   scripts/check.sh undefined       # UBSan build in build-ubsan/
#   scripts/check.sh thread          # TSan build in build-tsan/
#   scripts/check.sh obs             # observability gate: instrumented
#                                    # suite under TSan + overhead bench
#
# Extra arguments after the sanitizer are forwarded to ctest, e.g.
#   scripts/check.sh address -R QueryContext

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitize="${1:-}"
obs_gate=""
case "${sanitize}" in
  address|undefined|thread) shift ;;
  obs)
    # The metrics hot path is relaxed atomics shared across worker
    # threads; run every test that exercises it under TSan, then hold the
    # instrumentation to its overhead budget with the asserting bench.
    shift
    sanitize="thread"
    obs_gate=1
    set -- -R 'Metrics|Statsz|TtlCache|BoundedQueue|OfferingServer|InformationServer|QueryContext|Continuous' "$@"
    ;;
  "") ;;
  *) sanitize="" ;;  # first arg is a ctest flag, not a sanitizer
esac

if [[ -n "${sanitize}" ]]; then
  build_dir="${repo_root}/build-${sanitize/undefined/ubsan}"
  build_dir="${build_dir/address/asan}"
  build_dir="${build_dir/thread/tsan}"
else
  build_dir="${repo_root}/build"
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DECOCHARGE_SANITIZE="${sanitize}"
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"

if [[ -n "${obs_gate}" ]]; then
  # Overhead numbers only mean anything without a sanitizer, so the bench
  # runs from the plain Release tree.
  plain_dir="${repo_root}/build"
  cmake -B "${plain_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE=
  cmake --build "${plain_dir}" -j "$(nproc)" --target bench_micro_obs
  "${plain_dir}/bench/bench_micro_obs"
fi
