#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
# Usage:
#   scripts/check.sh                 # plain Release build in build/
#   scripts/check.sh address         # ASan build in build-asan/
#   scripts/check.sh undefined       # UBSan build in build-ubsan/
#   scripts/check.sh thread          # TSan build in build-tsan/
#   scripts/check.sh obs             # observability gate: instrumented
#                                    # suite under TSan + overhead bench
#   scripts/check.sh fault           # resilience gate: fault/degradation
#                                    # suite under TSan + quick fault bench
#   scripts/check.sh perf            # batched-derouting speedup gate:
#                                    # Release build + quick-scale
#                                    # bench_micro_derouting (fails when
#                                    # the batched path misses its floor)
#   scripts/check.sh ch              # contraction-hierarchy gate: CH /
#                                    # derouting / snapshot suites under
#                                    # ASan and UBSan, then the asserting
#                                    # bench_micro_ch (bitwise backend
#                                    # parity + speedup floor; emits
#                                    # BENCH_ch.json)
#   scripts/check.sh graph           # compact graph core gate: graph /
#                                    # snapshot / generator suites under
#                                    # ASan and UBSan, then the asserting
#                                    # bench_micro_graph (layout >= 1.3x,
#                                    # snapshot load >= 10x; emits
#                                    # BENCH_graph.json)
#   scripts/check.sh simd            # filter/score hot-path gate: the
#                                    # SIMD kernel / ranking / parity
#                                    # suites under ASan and UBSan, then
#                                    # the asserting bench_micro_score
#                                    # (scalar-vs-SIMD bit parity on all
#                                    # spatial backends + SoA speedup
#                                    # floor; emits BENCH_score.json)
#   scripts/check.sh fleet           # fleet-serving gate: partition /
#                                    # epoch / corridor / handoff suites
#                                    # under TSan (the RCU pin/publish
#                                    # protocol and cross-shard ticket
#                                    # waits are the racy surface), then
#                                    # the asserting bench_fleet (bit
#                                    # parity across shard counts +
#                                    # corridor hit-rate and QPS scaling
#                                    # floors; emits BENCH_fleet.json)
#   scripts/check.sh chpar           # customization gate: the CH
#                                    # customization / plane-cache /
#                                    # parity suites (plus the CLI smoke)
#                                    # under TSan — the shared
#                                    # ChCustomizationCache's RCU publish
#                                    # and the level-parallel sweep are
#                                    # the racy surface — then the
#                                    # asserting bench_micro_ch_customize
#                                    # (bitwise sweep parity, parallel /
#                                    # incremental speedup floors, cache
#                                    # dedup floor; emits
#                                    # BENCH_ch_customize.json)
#   scripts/check.sh lint            # clang-tidy over src/, tools/, and
#                                    # the asserting bench gates (skips
#                                    # with exit 0 when clang-tidy absent)
#
# Extra arguments after the sanitizer are forwarded to ctest, e.g.
#   scripts/check.sh address -R QueryContext

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitize="${1:-}"
obs_gate=""
fault_gate=""
fleet_gate=""
chpar_gate=""
case "${sanitize}" in
  address|undefined|thread) shift ;;
  fleet)
    # The fleet runtime's concurrency surface: the WorldEpochs Dekker
    # pin/publish protocol, cross-shard ticket waits in the ClientStore,
    # the sharded corridor cache, and every shard's worker pool sharing
    # them. Run those suites under TSan, then hold the parity / hit-rate /
    # scaling floors with the asserting bench from a plain Release tree
    # (sanitized timings are meaningless).
    shift
    sanitize="thread"
    fleet_gate=1
    set -- -R 'Fleet|GeoPartition|WorldEpochs|ClientStore|Corridor|OfferingServer|TtlCache|QueryContext' "$@"
    ;;
  chpar)
    # The customization subsystem's concurrency surface: the level-parallel
    # pull sweep's barrier rounds, the shared ChCustomizationCache's
    # RCU-style copy/append/publish (hammered from workers crossing bucket
    # boundaries while eviction churns), and the serving paths that pull
    # planes out of it. Run those suites under TSan, then hold the bitwise
    # sweep parity and the parallel / incremental / dedup floors with the
    # asserting bench from a plain Release tree (sanitized timings are
    # meaningless).
    shift
    sanitize="thread"
    chpar_gate=1
    set -- -R 'ChCustomiz|ChQuery|ChDerouting|ChProfile|EtaWindow|CliSmoke' "$@"
    ;;
  obs)
    # The metrics hot path is relaxed atomics shared across worker
    # threads; run every test that exercises it under TSan, then hold the
    # instrumentation to its overhead budget with the asserting bench.
    shift
    sanitize="thread"
    obs_gate=1
    set -- -R 'Metrics|Statsz|TtlCache|BoundedQueue|OfferingServer|InformationServer|QueryContext|Continuous' "$@"
    ;;
  fault)
    # The resilience stack (fault injector, retry state, breakers, stale
    # cache reads) is exactly the code that runs concurrently on every
    # worker during an upstream outage; run its tests under TSan, then a
    # quick deterministic fault sweep from the plain tree.
    shift
    sanitize="thread"
    fault_gate=1
    set -- -R 'Resilien|FaultInjector|CircuitBreaker|RetryPolicy|ScopedRequestDeadline|Degrad|TtlCache|OfferingServer|InformationServer' "$@"
    ;;
  perf)
    # Performance regressions in the refinement phase are contract breaks,
    # not noise: the gate binary exits 1 when ExactBatch is no longer
    # bit-identical to per-candidate search, when the batched path drops
    # below its 2x floor at >= 16 targets, or when the bucketed continuous
    # schedule never warm-starts. Timing wants a plain Release tree.
    shift
    build_dir="${repo_root}/build"
    cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE=
    cmake --build "${build_dir}" -j "$(nproc)" --target bench_micro_derouting
    (cd "${build_dir}/bench" && ./bench_micro_derouting --quick "$@")
    echo "check.sh perf: BENCH_*.json artifacts land in build/bench/ and" \
         "are untracked; copy numbers into EXPERIMENTS.md when they move."
    exit 0
    ;;
  ch)
    # The contraction hierarchy is the second exact-derouting engine: raw
    # mmap-ed CSR sections, a triangle-closure customization, and unpacking
    # that must reproduce the Dijkstra oracle bit for bit. Run the CH,
    # derouting, snapshot, and pipeline-parity suites under ASan and UBSan,
    # then hold the backend-parity and speedup floors with the asserting
    # bench from a plain Release tree (sanitized timings are meaningless).
    shift
    ch_filter='Ch|Derouting|Snapshot|GraphIo|CrossIndexParity|Dijkstra'
    for san in address undefined; do
      san_dir="${repo_root}/build-${san/undefined/ubsan}"
      san_dir="${san_dir/address/asan}"
      cmake -B "${san_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE="${san}"
      cmake --build "${san_dir}" -j "$(nproc)"
      ctest --test-dir "${san_dir}" --output-on-failure -j "$(nproc)" \
        -R "${ch_filter}" "$@"
    done
    plain_dir="${repo_root}/build"
    cmake -B "${plain_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE=
    cmake --build "${plain_dir}" -j "$(nproc)" --target bench_micro_ch
    (cd "${plain_dir}/bench" && ./bench_micro_ch --quick)
    echo "check.sh ch: BENCH_ch.json lands in build/bench/ and is" \
         "untracked; copy numbers into EXPERIMENTS.md when they move."
    exit 0
    ;;
  graph)
    # The graph core is raw spans over mmap-ed bytes plus hand-rolled
    # streaming CSR construction — exactly where out-of-bounds reads and
    # misaligned loads would live. Run the graph, snapshot, generator, and
    # search suites under both ASan and UBSan, then hold the inlined-layout
    # and snapshot-load floors with the asserting bench from a plain
    # Release tree (sanitized timings are meaningless).
    shift
    graph_filter='RoadNetwork|GraphBuilder|GraphCounts|ChunkedBuild|GraphIo|Snapshot|Grid|Radial|Corridor|Geometric|Hyperbolic|GenerateNetwork|Dijkstra|AStar|OneToMany|Sweep|Bidirectional|Landmark|Route|Edge|RoadClass'
    for san in address undefined; do
      san_dir="${repo_root}/build-${san/undefined/ubsan}"
      san_dir="${san_dir/address/asan}"
      cmake -B "${san_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE="${san}"
      cmake --build "${san_dir}" -j "$(nproc)"
      ctest --test-dir "${san_dir}" --output-on-failure -j "$(nproc)" \
        -R "${graph_filter}" "$@"
    done
    plain_dir="${repo_root}/build"
    cmake -B "${plain_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE=
    cmake --build "${plain_dir}" -j "$(nproc)" --target bench_micro_graph
    (cd "${plain_dir}/bench" && ./bench_micro_graph --quick)
    exit 0
    ;;
  simd)
    # The SoA score lanes are raw-pointer kernels over unaligned batches —
    # exactly where an off-by-one tail loop or misaligned load would live —
    # and the parity contract (scalar oracle bit-identical to the vector
    # kernels, DESIGN.md §15) is checked by the test suites themselves. Run
    # them under ASan and UBSan, then hold the bit-parity and speedup
    # floors with the asserting bench from a plain Release tree (sanitized
    # timings are meaningless).
    shift
    simd_filter='SimdKernel|SimdIsa|ScoreLanes|DescendingKey|AscendingCostKey|Score|IterativeDeepening|CknnProcessor|OfferingTable|QueryContext|CrossIndexParity|QueryPipeline|SimdOnOff|SimdParity'
    for san in address undefined; do
      san_dir="${repo_root}/build-${san/undefined/ubsan}"
      san_dir="${san_dir/address/asan}"
      cmake -B "${san_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE="${san}"
      cmake --build "${san_dir}" -j "$(nproc)"
      ctest --test-dir "${san_dir}" --output-on-failure -j "$(nproc)" \
        -R "${simd_filter}" "$@"
    done
    plain_dir="${repo_root}/build"
    cmake -B "${plain_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE=
    cmake --build "${plain_dir}" -j "$(nproc)" --target bench_micro_score
    (cd "${plain_dir}/bench" && ./bench_micro_score --quick)
    echo "check.sh simd: BENCH_score.json lands in build/bench/ and is" \
         "untracked; copy numbers into EXPERIMENTS.md when they move."
    exit 0
    ;;
  lint)
    shift
    if ! command -v clang-tidy >/dev/null 2>&1; then
      echo "check.sh lint: clang-tidy not installed; skipping (ok)."
      exit 0
    fi
    build_dir="${repo_root}/build"
    cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    # Checks come from the repo-root .clang-tidy; first-party code plus
    # the asserting bench gates (plain binaries that run in CI).
    mapfile -t sources < <({ find "${repo_root}/src" "${repo_root}/tools" \
      -name '*.cc'; echo "${repo_root}/bench/bench_micro_obs.cc"; \
      echo "${repo_root}/bench/bench_micro_derouting.cc"; \
      echo "${repo_root}/bench/bench_micro_ch.cc"; \
      echo "${repo_root}/bench/bench_micro_ch_customize.cc"; \
      echo "${repo_root}/bench/bench_micro_score.cc"; \
      echo "${repo_root}/bench/bench_fleet.cc"; } | sort)
    clang-tidy -p "${build_dir}" --quiet "${sources[@]}" "$@"
    exit 0
    ;;
  "") ;;
  *) sanitize="" ;;  # first arg is a ctest flag, not a sanitizer
esac

if [[ -n "${sanitize}" ]]; then
  build_dir="${repo_root}/build-${sanitize/undefined/ubsan}"
  build_dir="${build_dir/address/asan}"
  build_dir="${build_dir/thread/tsan}"
else
  build_dir="${repo_root}/build"
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release \
  -DECOCHARGE_SANITIZE="${sanitize}"
cmake --build "${build_dir}" -j "$(nproc)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"

if [[ -n "${obs_gate}" ]]; then
  # Overhead numbers only mean anything without a sanitizer, so the bench
  # runs from the plain Release tree.
  plain_dir="${repo_root}/build"
  cmake -B "${plain_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE=
  cmake --build "${plain_dir}" -j "$(nproc)" --target bench_micro_obs
  "${plain_dir}/bench/bench_micro_obs"
fi

if [[ -n "${fault_gate}" ]]; then
  # Deterministic fault sweep (seeded faults, virtual latency): asserts
  # every request is answered under injected upstream failures. Timing
  # under TSan is meaningless, so it runs from the plain Release tree.
  plain_dir="${repo_root}/build"
  cmake -B "${plain_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE=
  cmake --build "${plain_dir}" -j "$(nproc)" --target bench_fault_resilience
  (cd "${plain_dir}/bench" && ./bench_fault_resilience --quick)
fi

if [[ -n "${chpar_gate}" ]]; then
  # Bitwise parity across sweep strategies plus the parallel, incremental,
  # and cache-dedup floors; timing wants a plain Release tree.
  plain_dir="${repo_root}/build"
  cmake -B "${plain_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE=
  cmake --build "${plain_dir}" -j "$(nproc)" --target bench_micro_ch_customize
  (cd "${plain_dir}/bench" && ./bench_micro_ch_customize --quick)
  echo "check.sh chpar: BENCH_ch_customize.json lands in build/bench/ and" \
       "is untracked; copy numbers into EXPERIMENTS.md when they move."
fi

if [[ -n "${fleet_gate}" ]]; then
  # Bit parity across shard counts, the corridor hit-rate floor, and the
  # I/O-bound QPS scaling floor; timing wants a plain Release tree.
  plain_dir="${repo_root}/build"
  cmake -B "${plain_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Release -DECOCHARGE_SANITIZE=
  cmake --build "${plain_dir}" -j "$(nproc)" --target bench_fleet
  (cd "${plain_dir}/bench" && ./bench_fleet --quick)
  echo "check.sh fleet: BENCH_fleet.json lands in build/bench/ and is" \
       "untracked; copy numbers into EXPERIMENTS.md when they move."
fi
