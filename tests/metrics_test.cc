#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ecocharge {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::ScopedTimer;

TEST(CounterTest, AddsAndSums) {
  Counter counter(4);
  counter.Add();
  counter.Add(10);
  EXPECT_EQ(counter.Value(), 11u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  // Sharding spreads contention but must never lose an increment.
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  Counter counter(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddSub) {
  Gauge gauge;
  gauge.Set(5);
  gauge.Add(3);
  gauge.Sub(10);
  EXPECT_EQ(gauge.Value(), -2);
}

// --- Histogram bucket geometry ----------------------------------------

TEST(HistogramTest, SmallValuesGetExactBuckets) {
  // Values 0..15 are their own buckets: lower bound == value.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<size_t>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v);
  }
}

TEST(HistogramTest, BucketBoundaries) {
  // A bucket's lower bound maps back to the same bucket, and the value
  // one below it maps to the previous bucket — the boundary is exact.
  for (size_t index = 1; index < Histogram::kNumBuckets; ++index) {
    uint64_t lower = Histogram::BucketLowerBound(index);
    EXPECT_EQ(Histogram::BucketIndex(lower), index) << "index " << index;
    EXPECT_EQ(Histogram::BucketIndex(lower - 1), index - 1)
        << "index " << index;
  }
}

TEST(HistogramTest, RelativeBucketWidthIsBounded) {
  // Log-linear design guarantee: above 16, a bucket spans less than 1/16
  // of its lower bound (the 6.25% worst-case quantile error).
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = static_cast<uint64_t>(
        std::pow(2.0, rng.NextDouble(4.0, 63.0)));
    size_t index = Histogram::BucketIndex(v);
    uint64_t lower = Histogram::BucketLowerBound(index);
    uint64_t next = Histogram::BucketLowerBound(index + 1);
    EXPECT_GE(v, lower);
    EXPECT_LT(v, next);
    EXPECT_LE(next - lower, lower / Histogram::kSubBuckets);
  }
}

TEST(HistogramTest, ExtremeValuesStayInRange) {
  uint64_t max = std::numeric_limits<uint64_t>::max();
  EXPECT_LT(Histogram::BucketIndex(max), Histogram::kNumBuckets);
  Histogram h(1);
  h.Record(0);
  h.Record(max);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, max);
}

TEST(HistogramTest, SnapshotTracksCountSumMinMax) {
  Histogram h(2);
  for (uint64_t v : {5u, 100u, 17u, 2000u}) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 5u + 100u + 17u + 2000u);
  EXPECT_EQ(snap.min, 5u);
  EXPECT_EQ(snap.max, 2000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), (5.0 + 100.0 + 17.0 + 2000.0) / 4.0);
}

TEST(HistogramTest, ShardedRecordingEqualsSingleShard) {
  // Recording the same samples across many shards (forced by many
  // threads) must snapshot identically to a single-shard histogram —
  // merge is pure bucket addition, so shard routing cannot matter.
  Rng rng(42);
  std::vector<uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(
        static_cast<uint64_t>(std::pow(10.0, rng.NextDouble(0.0, 9.0))));
  }
  Histogram single(1);
  for (uint64_t v : samples) single.Record(v);

  Histogram sharded(8);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded, &samples, t] {
      for (size_t i = t; i < samples.size(); i += kThreads) {
        sharded.Record(samples[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  HistogramSnapshot a = single.Snapshot();
  HistogramSnapshot b = sharded.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(HistogramTest, MergeIsOrderIndependent) {
  Rng rng(43);
  Histogram h1(1), h2(1), h3(1), all(1);
  Histogram* parts[] = {&h1, &h2, &h3};
  for (int i = 0; i < 3000; ++i) {
    uint64_t v = static_cast<uint64_t>(rng.NextDouble(0.0, 1e6));
    parts[i % 3]->Record(v);
    all.Record(v);
  }
  HistogramSnapshot forward = h1.Snapshot();
  forward.Merge(h2.Snapshot());
  forward.Merge(h3.Snapshot());
  HistogramSnapshot backward = h3.Snapshot();
  backward.Merge(h2.Snapshot());
  backward.Merge(h1.Snapshot());
  HistogramSnapshot reference = all.Snapshot();
  for (const HistogramSnapshot* snap : {&forward, &backward}) {
    EXPECT_EQ(snap->count, reference.count);
    EXPECT_EQ(snap->sum, reference.sum);
    EXPECT_EQ(snap->min, reference.min);
    EXPECT_EQ(snap->max, reference.max);
    EXPECT_EQ(snap->buckets, reference.buckets);
  }
}

TEST(HistogramTest, QuantilesMatchSortedVectorOracle) {
  // The histogram quantile must land in the same bucket as the exact
  // rank-ceil(q*n) sample of a sorted vector — the strongest statement a
  // bucketed histogram can make, and it pins the rank convention.
  Rng rng(7);
  std::vector<uint64_t> samples;
  Histogram h(4);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = static_cast<uint64_t>(
        std::pow(10.0, rng.NextDouble(1.0, 8.0)));
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  HistogramSnapshot snap = h.Snapshot();
  for (double q : {0.0, 0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0}) {
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    rank = std::max<size_t>(1, std::min(rank, samples.size()));
    uint64_t oracle = samples[rank - 1];
    uint64_t estimate = snap.ValueAtQuantile(q);
    EXPECT_EQ(Histogram::BucketIndex(estimate),
              Histogram::BucketIndex(oracle))
        << "q=" << q << " oracle=" << oracle << " estimate=" << estimate;
    EXPECT_EQ(estimate,
              Histogram::BucketLowerBound(Histogram::BucketIndex(oracle)));
  }
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(1);
  EXPECT_EQ(h.Snapshot().ValueAtQuantile(0.5), 0u);
}

// --- Registry ----------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry(2);
  Counter* a = registry.GetCounter("requests", "requests");
  Counter* b = registry.GetCounter("requests");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.GetHistogram("lat", "ns"), registry.GetHistogram("lat"));
  EXPECT_EQ(registry.GetGauge("depth"), registry.GetGauge("depth"));
}

TEST(MetricsRegistryTest, FindReturnsNullForUnknown) {
  MetricsRegistry registry(2);
  EXPECT_EQ(registry.FindCounter("nope"), nullptr);
  EXPECT_EQ(registry.FindGauge("nope"), nullptr);
  EXPECT_EQ(registry.FindHistogram("nope"), nullptr);
  registry.GetCounter("yes");
  EXPECT_NE(registry.FindCounter("yes"), nullptr);
}

TEST(MetricsRegistryTest, ValuesInRegistrationOrder) {
  MetricsRegistry registry(1);
  registry.GetCounter("b")->Add(2);
  registry.GetCounter("a")->Add(1);
  registry.GetGauge("g")->Set(-7);
  registry.GetHistogram("h", "ns")->Record(123);
  auto counters = registry.CounterValues();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "b");
  EXPECT_EQ(counters[0].second, 2u);
  EXPECT_EQ(counters[1].first, "a");
  auto gauges = registry.GaugeValues();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].second, -7);
  auto histograms = registry.HistogramValues();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].name, "h");
  EXPECT_EQ(histograms[0].unit, "ns");
  EXPECT_EQ(histograms[0].snapshot.count, 1u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry(4);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> handles(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &handles, t] {
      Counter* c = registry.GetCounter("shared");
      c->Add();
      handles[t] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->Value(), static_cast<uint64_t>(kThreads));
}

// --- ScopedTimer -------------------------------------------------------

TEST(ScopedTimerTest, RecordsElapsedNanoseconds) {
  Histogram h(1);
  { ScopedTimer timer(&h); }
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  // An empty scope on any machine finishes well under a second.
  EXPECT_LT(snap.max, 1000000000u);
}

TEST(ScopedTimerTest, NullHistogramIsNoOp) {
  ScopedTimer timer(nullptr);  // must not crash or read the clock
}

}  // namespace
}  // namespace ecocharge
