#include "traffic/derouting.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace ecocharge {
namespace {

class DeroutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GridNetworkOptions opts;
    opts.nx = 12;
    opts.ny = 12;
    opts.spacing_m = 500.0;
    opts.jitter_fraction = 0.05;
    opts.seed = 4;
    network_ = MakeGridNetwork(opts).MoveValueUnsafe();
    congestion_ = std::make_unique<CongestionModel>(9);
    service_ = std::make_unique<DeroutingService>(network_, congestion_.get());
  }

  DeroutingQuery QueryAt(NodeId m, NodeId ra, NodeId rb,
                         SimTime now = 10.0 * kSecondsPerHour) {
    DeroutingQuery q;
    q.vehicle_node = m;
    q.vehicle_position = network_->NodePosition(m);
    q.return_node_a = ra;
    q.return_point_a = network_->NodePosition(ra);
    q.return_node_b = rb;
    q.return_point_b = network_->NodePosition(rb);
    q.now = now;
    return q;
  }

  EvCharger ChargerAt(NodeId node) {
    EvCharger c;
    c.id = 3;
    c.node = node;
    c.position = network_->NodePosition(node);
    return c;
  }

  std::shared_ptr<RoadNetwork> network_;
  std::unique_ptr<CongestionModel> congestion_;
  std::unique_ptr<DeroutingService> service_;
};

TEST_F(DeroutingTest, ChargerOnRouteCostsNothingExtra) {
  // Vehicle at node 0, returning to node 2 (same row); charger at node 1
  // lies between them: extra cost ~0 (paths are near-collinear).
  DeroutingQuery q = QueryAt(0, 2, 2);
  DeroutingEstimate exact = service_->Exact(q, ChargerAt(1));
  EXPECT_LT(exact.extra_distance_min_m, 400.0);
}

TEST_F(DeroutingTest, OffRouteChargerCostsExtra) {
  // Charger far off the direct route.
  DeroutingQuery q = QueryAt(0, 2, 2);
  NodeId far = 11 * 12 + 11;  // opposite corner
  DeroutingEstimate exact = service_->Exact(q, ChargerAt(far));
  EXPECT_GT(exact.extra_distance_min_m, 5000.0);
  EXPECT_GT(exact.eta_s, 0.0);
}

TEST_F(DeroutingTest, EstimateLowerBoundsNeverExceedExactByMuch) {
  // The optimistic estimate (Euclidean-based) must not exceed the exact
  // network cost: Euclidean is admissible, and the on-route subtraction
  // in the estimate uses a lower bound of the direct distance.
  Rng rng(6);
  for (int trial = 0; trial < 40; ++trial) {
    NodeId m = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    NodeId ra = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    NodeId b = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    DeroutingQuery q = QueryAt(m, ra, ra);
    EvCharger charger = ChargerAt(b);
    DeroutingEstimate est = service_->Estimate(q, charger);
    DeroutingEstimate exact = service_->Exact(q, charger);
    EXPECT_LE(est.extra_distance_min_m, exact.extra_distance_min_m * 1.05 +
                                            1500.0)
        << "m=" << m << " ra=" << ra << " b=" << b;
  }
}

TEST_F(DeroutingTest, EstimateIntervalIsOrdered) {
  Rng rng(8);
  for (int trial = 0; trial < 40; ++trial) {
    NodeId m = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    NodeId ra = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    NodeId b = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    DeroutingEstimate est =
        service_->Estimate(QueryAt(m, ra, ra), ChargerAt(b));
    EXPECT_LE(est.extra_distance_min_m, est.extra_distance_max_m);
    EXPECT_GE(est.extra_distance_min_m, 0.0);
    EXPECT_GE(est.eta_s, 0.0);
  }
}

TEST_F(DeroutingTest, ExactMatchesManualDecomposition) {
  // Exact derouting = d(m->b) + min(d(b->ra), d(b->rb)) - min(d(m->ra),
  // d(m->rb)) under the same congested edge costs.
  NodeId m = 0, ra = 11, rb = 12, b_node = 13;
  SimTime now = 10.0 * kSecondsPerHour;
  DeroutingEstimate exact =
      service_->Exact(QueryAt(m, ra, rb, now), ChargerAt(b_node));

  DijkstraSearch search(*network_);
  auto cost = [&](const Arc& e) {
    return e.length_m / congestion_->ActualSpeedFactor(e.road_class, now);
  };
  double to_b = search.AStar(m, b_node, cost).cost;
  double back = std::min(search.AStar(b_node, ra, cost).cost,
                         search.AStar(b_node, rb, cost).cost);
  double direct = std::min(search.AStar(m, ra, cost).cost,
                           search.AStar(m, rb, cost).cost);
  double expected = std::max(0.0, to_b + back - direct);
  EXPECT_NEAR(exact.extra_distance_min_m, expected, 1e-6);
}

TEST_F(DeroutingTest, ExtraCostNeverNegative) {
  Rng rng(14);
  for (int trial = 0; trial < 30; ++trial) {
    NodeId m = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    NodeId ra = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    NodeId rb = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    NodeId b = static_cast<NodeId>(rng.NextBounded(network_->NumNodes()));
    DeroutingEstimate exact =
        service_->Exact(QueryAt(m, ra, rb), ChargerAt(b));
    EXPECT_GE(exact.extra_distance_min_m, 0.0);
  }
}

TEST_F(DeroutingTest, RushHourRaisesExactCost) {
  DeroutingQuery rush = QueryAt(0, 143, 143, kSecondsPerDay +
                                                 8.0 * kSecondsPerHour);
  DeroutingQuery night = QueryAt(0, 143, 143, kSecondsPerDay +
                                                  3.0 * kSecondsPerHour);
  EvCharger c = ChargerAt(77);
  double rush_eta = service_->Exact(rush, c).eta_s;
  double night_eta = service_->Exact(night, c).eta_s;
  EXPECT_GT(rush_eta, night_eta);
}

TEST_F(DeroutingTest, SnapsPositionsWhenNodesMissing) {
  DeroutingQuery q;
  q.vehicle_position = network_->NodePosition(5) + Point{10.0, -15.0};
  q.return_point_a = network_->NodePosition(100) + Point{-5.0, 4.0};
  q.return_point_b = q.return_point_a;
  q.now = 10.0 * kSecondsPerHour;
  // Leave node ids invalid; the service must snap.
  DeroutingEstimate exact = service_->Exact(q, ChargerAt(50));
  EXPECT_TRUE(std::isfinite(exact.extra_distance_min_m));
}

}  // namespace
}  // namespace ecocharge
