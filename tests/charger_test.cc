#include "energy/charger.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> Network() {
  GridNetworkOptions opts;
  opts.nx = 15;
  opts.ny = 15;
  opts.seed = 8;
  return MakeGridNetwork(opts).MoveValueUnsafe();
}

TEST(ChargerTest, RatesMatchTypes) {
  EXPECT_EQ(ChargerRateKw(ChargerType::kAc11), 11.0);
  EXPECT_EQ(ChargerRateKw(ChargerType::kAc22), 22.0);
  EXPECT_EQ(ChargerRateKw(ChargerType::kDc50), 50.0);
  EXPECT_EQ(ChargerRateKw(ChargerType::kDc150), 150.0);
}

TEST(ChargerFleetTest, GeneratesRequestedCount) {
  auto network = Network();
  ChargerFleetOptions opts;
  opts.num_chargers = 100;
  auto fleet = GenerateChargerFleet(*network, opts).MoveValueUnsafe();
  ASSERT_EQ(fleet.size(), 100u);
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet[i].id, i);
    EXPECT_LT(fleet[i].node, network->NumNodes());
    EXPECT_EQ(fleet[i].position, network->NodePosition(fleet[i].node));
    EXPECT_GE(fleet[i].pv_capacity_kw, opts.min_pv_kw);
    EXPECT_LE(fleet[i].pv_capacity_kw, opts.max_pv_kw);
    EXPECT_GE(fleet[i].num_ports, 1);
  }
}

TEST(ChargerFleetTest, DistinctNodesWhilePossible) {
  auto network = Network();  // 225 nodes
  ChargerFleetOptions opts;
  opts.num_chargers = 200;
  auto fleet = GenerateChargerFleet(*network, opts).MoveValueUnsafe();
  std::set<NodeId> nodes;
  for (const EvCharger& c : fleet) nodes.insert(c.node);
  EXPECT_EQ(nodes.size(), 200u);
}

TEST(ChargerFleetTest, MoreChargersThanNodesShareSites) {
  auto network = Network();
  ChargerFleetOptions opts;
  opts.num_chargers = 400;  // > 225 nodes
  auto fleet = GenerateChargerFleet(*network, opts).MoveValueUnsafe();
  EXPECT_EQ(fleet.size(), 400u);
}

TEST(ChargerFleetTest, DcFractionApproximatelyRespected) {
  auto network = Network();
  ChargerFleetOptions opts;
  opts.num_chargers = 2000;
  opts.dc_fraction = 0.3;
  auto fleet = GenerateChargerFleet(*network, opts).MoveValueUnsafe();
  int dc = 0;
  for (const EvCharger& c : fleet) {
    if (c.type == ChargerType::kDc50 || c.type == ChargerType::kDc150) ++dc;
  }
  EXPECT_NEAR(static_cast<double>(dc) / fleet.size(), 0.3, 0.04);
}

TEST(ChargerFleetTest, TimetableIdsCoverArchetypes) {
  auto network = Network();
  ChargerFleetOptions opts;
  opts.num_chargers = 200;
  auto fleet = GenerateChargerFleet(*network, opts).MoveValueUnsafe();
  std::set<uint32_t> ids;
  for (const EvCharger& c : fleet) ids.insert(c.timetable_id);
  EXPECT_EQ(ids.size(), 4u);
}

TEST(ChargerFleetTest, DeterministicInSeed) {
  auto network = Network();
  ChargerFleetOptions opts;
  opts.num_chargers = 50;
  opts.seed = 123;
  auto a = GenerateChargerFleet(*network, opts).MoveValueUnsafe();
  auto b = GenerateChargerFleet(*network, opts).MoveValueUnsafe();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].pv_capacity_kw, b[i].pv_capacity_kw);
  }
}

TEST(ChargerFleetTest, RejectsBadOptions) {
  auto network = Network();
  ChargerFleetOptions opts;
  opts.num_chargers = 0;
  EXPECT_FALSE(GenerateChargerFleet(*network, opts).ok());
  opts.num_chargers = 10;
  opts.dc_fraction = 1.5;
  EXPECT_FALSE(GenerateChargerFleet(*network, opts).ok());
}

}  // namespace
}  // namespace ecocharge
