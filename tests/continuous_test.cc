#include "core/continuous.h"

#include <gtest/gtest.h>

#include "core/ec_estimator.h"
#include "core/ecocharge.h"
#include "tests/test_util.h"
#include "traffic/congestion.h"

namespace ecocharge {
namespace {

class ContinuousTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(60);
    ASSERT_NE(env_, nullptr);
    // Pick the longest trajectory for a meaningful trip.
    trip_ = &env_->dataset.trajectories.front();
    for (const Trajectory& t : env_->dataset.trajectories) {
      if (t.LengthMeters() > trip_->LengthMeters()) trip_ = &t;
    }
    weights_ = ScoreWeights::AWE();
    ranker_ = std::make_unique<EcoChargeRanker>(
        env_->estimator.get(), env_->charger_index.get(), weights_,
        EcoChargeOptions{});
  }

  std::unique_ptr<Environment> env_;
  const Trajectory* trip_ = nullptr;
  ScoreWeights weights_;
  std::unique_ptr<EcoChargeRanker> ranker_;
};

TEST_F(ContinuousTest, ProducesTablesAlongTheTrip) {
  ContinuousTripRunner runner(env_->dataset.network.get(), ranker_.get(),
                              ContinuousRunOptions{});
  TripRun run = runner.Run(*trip_);
  EXPECT_EQ(run.trip_id, trip_->object_id());
  EXPECT_FALSE(run.tables.empty());
  EXPECT_GT(run.total_compute_ms, 0.0);
  for (const OfferingTable& t : run.tables) {
    EXPECT_FALSE(t.empty());
  }
}

TEST_F(ContinuousTest, TablesAreTimeOrdered) {
  ContinuousTripRunner runner(env_->dataset.network.get(), ranker_.get(),
                              ContinuousRunOptions{});
  TripRun run = runner.Run(*trip_);
  for (size_t i = 1; i < run.tables.size(); ++i) {
    EXPECT_GE(run.tables[i].generated_at, run.tables[i - 1].generated_at);
  }
}

TEST_F(ContinuousTest, SmallerWindowMeansMoreTables) {
  ContinuousRunOptions coarse;
  coarse.recompute_window_s = 10.0 * 60.0;
  ContinuousRunOptions fine;
  fine.recompute_window_s = 60.0;
  ContinuousTripRunner coarse_runner(env_->dataset.network.get(),
                                     ranker_.get(), coarse);
  ContinuousTripRunner fine_runner(env_->dataset.network.get(), ranker_.get(),
                                   fine);
  size_t coarse_count = coarse_runner.Run(*trip_).tables.size();
  size_t fine_count = fine_runner.Run(*trip_).tables.size();
  EXPECT_GE(fine_count, coarse_count);
}

TEST_F(ContinuousTest, CacheAdaptationsHappen) {
  ContinuousRunOptions opts;
  opts.recompute_window_s = 60.0;  // dense recomputation inside segments
  ContinuousTripRunner runner(env_->dataset.network.get(), ranker_.get(),
                              opts);
  TripRun run = runner.Run(*trip_);
  EXPECT_GT(run.cache_adaptations, 0u);
  EXPECT_LT(run.cache_adaptations, run.tables.size());
}

TEST_F(ContinuousTest, CallbackSeesEveryTable) {
  ContinuousTripRunner runner(env_->dataset.network.get(), ranker_.get(),
                              ContinuousRunOptions{});
  size_t seen = 0;
  TripRun run = runner.Run(
      *trip_, [&](const VehicleState& state, const OfferingTable& table) {
        EXPECT_EQ(table.generated_at, state.time);
        ++seen;
      });
  EXPECT_EQ(seen, run.tables.size());
}

TEST_F(ContinuousTest, TopChangePositionsAreOnTheTrip) {
  ContinuousTripRunner runner(env_->dataset.network.get(), ranker_.get(),
                              ContinuousRunOptions{});
  TripRun run = runner.Run(*trip_);
  double length = trip_->AsPolyline().Length();
  for (double pos : run.top_change_positions_m) {
    EXPECT_GE(pos, 0.0);
    EXPECT_LE(pos, length + 1e-6);
  }
}

TEST_F(ContinuousTest, DeroutingBucketWarmStartsAcrossRecomputePoints) {
  // With the exact-cost bucket scoped onto the estimator for the trip,
  // recomputation points inside one segment share their backward sweep.
  // Dynamic Caching would absorb those points before refinement ever
  // runs, so force full regeneration to expose the sweep reuse itself.
  EcoChargeOptions eco_opts;
  eco_opts.q_distance_m = 0.0;
  EcoChargeRanker ranker(env_->estimator.get(), env_->charger_index.get(),
                         weights_, eco_opts);
  ContinuousRunOptions opts;
  opts.recompute_window_s = 60.0;  // several points per segment
  opts.derouting_bucket_s = CongestionModel::kNoiseBucketSeconds;
  ContinuousTripRunner runner(env_->dataset.network.get(), &ranker, opts,
                              env_->estimator.get());
  DeroutingService& derouting = env_->estimator->derouting_service();
  const double bucket_before = derouting.exact_time_bucket_s();
  const uint64_t hits_before = derouting.warm_start_hits();
  TripRun run = runner.Run(*trip_);
  EXPECT_FALSE(run.tables.empty());
  EXPECT_GT(derouting.warm_start_hits(), hits_before);
  // Run() restores the estimator's previous bucket configuration.
  EXPECT_EQ(derouting.exact_time_bucket_s(), bucket_before);
}

TEST_F(ContinuousTest, DegenerateTripYieldsNothing) {
  Trajectory stub(7, {{{0, 0}, 0.0}});
  ContinuousTripRunner runner(env_->dataset.network.get(), ranker_.get(),
                              ContinuousRunOptions{});
  TripRun run = runner.Run(stub);
  EXPECT_TRUE(run.tables.empty());
}

}  // namespace
}  // namespace ecocharge
