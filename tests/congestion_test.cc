#include "traffic/congestion.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(CongestionTest, RushHourSlowsTraffic) {
  CongestionModel model(5);
  SimTime tue = kSecondsPerDay;
  double rush = model.ExpectedSpeedFactor(RoadClass::kHighway,
                                          tue + 8.0 * kSecondsPerHour);
  double night = model.ExpectedSpeedFactor(RoadClass::kHighway,
                                           tue + 3.0 * kSecondsPerHour);
  EXPECT_LT(rush, night - 0.2);
}

TEST(CongestionTest, WeekendIsMilder) {
  CongestionModel model(5);
  SimTime tue = kSecondsPerDay + 8.0 * kSecondsPerHour;
  SimTime sun = 6 * kSecondsPerDay + 8.0 * kSecondsPerHour;
  EXPECT_GT(model.ExpectedSpeedFactor(RoadClass::kArterial, sun),
            model.ExpectedSpeedFactor(RoadClass::kArterial, tue));
}

TEST(CongestionTest, LocalRoadsLessSensitive) {
  CongestionModel model(5);
  SimTime rush = kSecondsPerDay + 8.0 * kSecondsPerHour;
  EXPECT_GT(model.ExpectedSpeedFactor(RoadClass::kLocal, rush),
            model.ExpectedSpeedFactor(RoadClass::kHighway, rush));
}

TEST(CongestionTest, FactorsBounded) {
  CongestionModel model(5);
  for (int h = 0; h < 24 * 14; ++h) {
    for (RoadClass rc : {RoadClass::kHighway, RoadClass::kArterial,
                         RoadClass::kLocal}) {
      double expected = model.ExpectedSpeedFactor(rc, h * kSecondsPerHour);
      double actual = model.ActualSpeedFactor(rc, h * kSecondsPerHour);
      EXPECT_GE(expected, 0.15);
      EXPECT_LE(expected, 1.0);
      EXPECT_GE(actual, 0.15);
      EXPECT_LE(actual, 1.0);
    }
  }
}

TEST(CongestionTest, ActualIsDeterministicPerHour) {
  CongestionModel model(5);
  SimTime t = 10.2 * kSecondsPerHour;
  double a = model.ActualSpeedFactor(RoadClass::kArterial, t);
  EXPECT_EQ(model.ActualSpeedFactor(RoadClass::kArterial, t), a);
}

TEST(CongestionTest, ForecastBandContainsCenterAndIsPure) {
  CongestionModel model(5);
  SimTime now = 9.0 * kSecondsPerHour;
  auto a = model.ForecastSpeedFactor(RoadClass::kHighway, now,
                                     now + kSecondsPerHour);
  auto b = model.ForecastSpeedFactor(RoadClass::kHighway, now,
                                     now + kSecondsPerHour);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_LE(a.min, a.max);
}

TEST(CongestionTest, ForecastWidensWithLead) {
  CongestionModel model(5);
  double near_total = 0.0, far_total = 0.0;
  for (int d = 0; d < 20; ++d) {
    SimTime now = d * kSecondsPerDay + 9.0 * kSecondsPerHour;
    auto near = model.ForecastSpeedFactor(RoadClass::kArterial, now,
                                          now + 0.1 * kSecondsPerHour);
    auto far = model.ForecastSpeedFactor(RoadClass::kArterial, now,
                                         now + 6.0 * kSecondsPerHour);
    near_total += near.max - near.min;
    far_total += far.max - far.min;
  }
  EXPECT_GT(far_total, near_total);
}

TEST(CongestionTest, ForecastUsuallyContainsRealized) {
  CongestionModel model(5);
  int contained = 0, total = 0;
  for (int h = 0; h < 500; ++h) {
    SimTime now = h * kSecondsPerHour;
    SimTime target = now + 2.0 * kSecondsPerHour;
    auto band = model.ForecastSpeedFactor(RoadClass::kArterial, now, target);
    double truth = model.ActualSpeedFactor(RoadClass::kArterial, target);
    if (truth >= band.min - 1e-9 && truth <= band.max + 1e-9) ++contained;
    ++total;
  }
  EXPECT_GT(static_cast<double>(contained) / total, 0.85);
}

}  // namespace
}  // namespace ecocharge
