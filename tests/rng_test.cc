#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble(-5.0, 11.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 11.0);
  }
}

TEST(RngTest, NextBoundedCoversRangeWithoutBias) {
  Rng rng(99);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (int c : counts) {
    // Each bucket expects 10000; allow 5 sigma (~sqrt(9000) * 5).
    EXPECT_NEAR(c, kDraws / 10, 500);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values reached
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextExponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(8);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(9);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(11);
  parent2.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace ecocharge
