// Contraction-hierarchy backend: structural invariants of the contraction,
// bitwise query parity against the Dijkstra oracle (distances, unpacked
// paths, and full derouting estimates), customization behavior, and
// snapshot round-trips. Parity here means memcmp-identical doubles — the
// CH backend's contract is "same bits as the exact sweeps", not "close".

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "ch/ch_index.h"
#include "ch/ch_query.h"
#include "ch/contraction.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/landmarks.h"
#include "graph/shortest_path.h"
#include "traffic/congestion.h"
#include "traffic/derouting.h"

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> SmallRgg(uint64_t seed, size_t nodes = 300) {
  RandomGeometricOptions opts;
  opts.num_nodes = nodes;
  opts.k_nearest = 3;
  opts.seed = seed;
  return MakeRandomGeometric(opts).MoveValueUnsafe();
}

/// The realized derouting metric at time `tau`, as the exact backend
/// prices it per edge.
EdgeCostFn CongestedCost(const CongestionModel& congestion, SimTime tau) {
  return [&congestion, tau](const Arc& a) {
    return a.length_m / congestion.ActualSpeedFactor(a.road_class, tau);
  };
}

/// The matching CH class-weight vector (multipliers, one per RoadClass).
ChClassWeights CongestedWeights(const CongestionModel& congestion,
                                SimTime tau) {
  ChClassWeights w;
  for (int c = 0; c < kChNumClasses; ++c) {
    w.w[c] = 1.0 / congestion.ActualSpeedFactor(static_cast<RoadClass>(c), tau);
  }
  return w;
}

/// Walks `edges` from `s`, checking consecutive endpoints line up; returns
/// the node sequence (s included).
std::vector<NodeId> NodePathOf(const RoadNetwork& network, NodeId s,
                               const std::vector<EdgeId>& edges) {
  std::vector<NodeId> nodes{s};
  NodeId at = s;
  for (EdgeId e : edges) {
    const Edge rec = network.edge(e);
    EXPECT_EQ(rec.from, at) << "unpacked path is not contiguous";
    at = rec.to;
    nodes.push_back(at);
  }
  return nodes;
}

TEST(ChContractionTest, RanksAreAPermutationAndClosureHolds) {
  auto network = SmallRgg(5);
  ChBuildStats stats;
  auto ch = BuildChIndex(*network, &stats).MoveValueUnsafe();
  ASSERT_EQ(ch->NumNodes(), network->NumNodes());

  std::vector<bool> seen(ch->NumNodes(), false);
  for (NodeId v = 0; v < ch->NumNodes(); ++v) {
    ASSERT_LT(ch->rank(v), ch->NumNodes());
    EXPECT_FALSE(seen[ch->rank(v)]) << "duplicate rank";
    seen[ch->rank(v)] = true;
  }

  // Every original (non-self-loop) arc appears in exactly one search graph,
  // plus the reported shortcut count.
  size_t originals = 0;
  for (NodeId v = 0; v < network->NumNodes(); ++v) {
    for (const Arc& a : network->OutArcs(v)) {
      if (a.node != v) ++originals;
    }
  }
  EXPECT_EQ(ch->NumUpArcs() + ch->NumDownArcs(), originals + stats.shortcuts);

  // Up arcs climb, down arcs descend, rows are sorted, and the arc set is
  // closed under lower triangles: for every down-arc (a -> x) and up-arc
  // (x -> b), a != b, the enclosing arc (a -> b) must exist — this closure
  // is the precondition of the customization sweep's exactness.
  for (NodeId x = 0; x < ch->NumNodes(); ++x) {
    const auto ups = ch->UpArcs(x);
    for (size_t i = 0; i < ups.size(); ++i) {
      EXPECT_GT(ch->rank(ups[i].node), ch->rank(x));
      if (i > 0) EXPECT_LE(ups[i - 1].node, ups[i].node);
    }
    const auto downs = ch->DownArcs(x);
    for (size_t i = 0; i < downs.size(); ++i) {
      EXPECT_GT(ch->rank(downs[i].node), ch->rank(x));
      if (i > 0) EXPECT_LE(downs[i - 1].node, downs[i].node);
    }
    for (const ChArc& da : downs) {
      for (const ChArc& ua : ups) {
        if (da.node == ua.node) continue;
        const bool closed =
            ch->rank(da.node) < ch->rank(ua.node)
                ? ch->FindUpArc(da.node, ua.node) != SIZE_MAX
                : ch->FindDownArc(ua.node, da.node) != SIZE_MAX;
        ASSERT_TRUE(closed) << "missing triangle arc " << da.node << " -> "
                            << ua.node << " below apex " << x;
      }
    }
  }
}

TEST(ChQueryTest, DistancesAndPathsMatchDijkstraBitwise) {
  for (uint64_t seed : {2u, 11u}) {
    auto network = SmallRgg(seed);
    auto ch = BuildChIndex(*network).MoveValueUnsafe();
    ChQuery query(*ch);
    DijkstraSearch dijkstra(*network);
    CongestionModel congestion(seed);
    std::vector<EdgeId> scratch;

    for (SimTime tau : {0.0, 8.0 * 3600, 17.5 * 3600}) {
      const EdgeCostFn cost = CongestedCost(congestion, tau);
      const ChClassWeights weights = CongestedWeights(congestion, tau);
      for (NodeId s = 1; s < network->NumNodes(); s += 37) {
        const NodeId t = (s * 131) % static_cast<NodeId>(network->NumNodes());
        const PathResult ref = dijkstra.ShortestPath(s, t, cost);
        const double got = ChExactPathCost(&query, *network, s, t, weights,
                                           cost, SweepDirection::kForward,
                                           &scratch);
        if (!ref.Reachable()) {
          EXPECT_EQ(got, kInfiniteCost) << "s=" << s << " t=" << t;
          continue;
        }
        // Same original edges folded in the same association order: the
        // doubles must be identical to the last bit, not merely close.
        EXPECT_EQ(std::memcmp(&got, &ref.cost, sizeof(double)), 0)
            << "s=" << s << " t=" << t << " tau=" << tau << " got=" << got
            << " want=" << ref.cost;
        EXPECT_EQ(NodePathOf(*network, s, scratch), ref.nodes);
      }
    }
  }
}

TEST(ChQueryTest, ElimTreeSpacesMatchSearchBitwise) {
  // The batched derouting path answers every leg from prebuilt
  // elimination-tree label spaces; their customized distances and unpacked
  // paths must be exactly what the bidirectional Search finds.
  for (uint64_t seed : {2u, 11u}) {
    auto network = SmallRgg(seed);
    auto ch = BuildChIndex(*network).MoveValueUnsafe();
    ChQuery query(*ch);
    CongestionModel congestion(seed);
    const ChClassWeights weights = CongestedWeights(congestion, 8.0 * 3600);
    query.EnsureCustomized(weights);
    ChSpace fwd, bwd;
    std::vector<EdgeId> search_edges, space_edges;
    size_t finite = 0;
    for (NodeId s = 1; s < network->NumNodes(); s += 29) {
      const NodeId t = (s * 173) % static_cast<NodeId>(network->NumNodes());
      ASSERT_TRUE(query.BuildSpace(s, SweepDirection::kForward, &fwd));
      ASSERT_TRUE(query.BuildSpace(t, SweepDirection::kBackward, &bwd));
      uint32_t fpos = 0;
      uint32_t bpos = 0;
      const double via_space = query.MeetSpaces(fwd, bwd, &fpos, &bpos);
      const double via_search = query.Search(s, t, weights);
      EXPECT_EQ(std::memcmp(&via_space, &via_search, sizeof(double)), 0)
          << "s=" << s << " t=" << t;
      if (!(via_search < kInfiniteCost)) continue;
      ++finite;
      query.UnpackPath(&search_edges);
      query.UnpackMeet(fwd, fpos, bwd, bpos, &space_edges);
      EXPECT_EQ(space_edges, search_edges) << "s=" << s << " t=" << t;
    }
    EXPECT_GT(finite, 0u);
  }
}

TEST(ChQueryTest, UnreachableAndCoincidentEndpoints) {
  // One-way pair: a -> b exists, b -> a does not.
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({100, 0});
  NodeId c = builder.AddNode({200, 0});
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal).ok());
  ASSERT_TRUE(builder.AddEdge(b, c, RoadClass::kLocal).ok());
  auto network = builder.Build().MoveValueUnsafe();
  auto ch = BuildChIndex(*network).MoveValueUnsafe();
  ChQuery query(*ch);

  EXPECT_EQ(query.Search(a, c, kChLengthWeights), 200.0);
  EXPECT_EQ(query.Search(c, a, kChLengthWeights), kInfiniteCost);
  EXPECT_EQ(query.Search(b, a, kChLengthWeights), kInfiniteCost);

  // Coincident endpoints: exactly 0.0 (the sentinel the derouting formulas
  // rely on), and an empty unpacked path.
  const double zero = query.Search(b, b, kChLengthWeights);
  EXPECT_EQ(zero, 0.0);
  std::vector<EdgeId> edges{123};
  query.UnpackPath(&edges);
  EXPECT_TRUE(edges.empty());

  // Out-of-range ids are unreachable, not UB.
  EXPECT_EQ(query.Search(a, 99, kChLengthWeights), kInfiniteCost);
}

TEST(ChQueryTest, StableWeightStreamCustomizesOnce) {
  auto network = SmallRgg(3, 150);
  auto ch = BuildChIndex(*network).MoveValueUnsafe();
  ChQuery query(*ch);
  CongestionModel congestion(3);

  const ChClassWeights rush = CongestedWeights(congestion, 8.0 * 3600);
  for (NodeId s = 0; s < 30; ++s) {
    query.Search(s, static_cast<NodeId>(149 - s), rush);
  }
  EXPECT_EQ(query.customizations(), 1u);

  // A different traffic bucket re-prices once; returning to it later does
  // not (EnsureCustomized keys on the weight values, not call order)...
  const ChClassWeights night = CongestedWeights(congestion, 2.0 * 3600);
  query.Search(5, 140, night);
  EXPECT_EQ(query.customizations(), 2u);
  query.Search(6, 141, night);
  EXPECT_EQ(query.customizations(), 2u);
  // ...so flipping back does re-price: the workspace keeps one metric.
  query.Search(7, 142, rush);
  EXPECT_EQ(query.customizations(), 3u);
}

TEST(ChDeroutingTest, ExactBatchMatchesDijkstraBackendBitwise) {
  for (uint64_t seed : {7u, 13u}) {
    auto network = SmallRgg(seed);
    auto ch = BuildChIndex(*network).MoveValueUnsafe();
    CongestionModel congestion(seed);
    DeroutingService oracle(network, &congestion);
    DeroutingService hierarchy(network, &congestion);
    hierarchy.set_ch(ch.get());
    ASSERT_EQ(hierarchy.backend(), DeroutingBackend::kCh);

    DeroutingBatchScratch oracle_scratch, ch_scratch;
    std::vector<EvCharger> chargers;
    for (NodeId v = 3; v < network->NumNodes(); v += 17) {
      EvCharger charger;
      charger.node = v;
      charger.position = network->NodePosition(v);
      chargers.push_back(charger);
    }
    std::vector<ChargerRef> refs;
    for (const EvCharger& charger : chargers) refs.push_back(&charger);

    for (SimTime tau : {6.5 * 3600, 18.0 * 3600}) {
      DeroutingQuery q;
      q.vehicle_node = 1;
      q.vehicle_position = network->NodePosition(1);
      q.return_node_a = 50;
      q.return_point_a = network->NodePosition(50);
      q.return_node_b = 120;
      q.return_point_b = network->NodePosition(120);
      q.now = tau;

      std::vector<DeroutingEstimate> want, got;
      oracle.ExactBatch(q, refs, &oracle_scratch, &want);
      hierarchy.ExactBatch(q, refs, &ch_scratch, &got);
      ASSERT_EQ(want.size(), got.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(std::memcmp(&want[i], &got[i], sizeof(DeroutingEstimate)), 0)
            << "charger " << i << " tau " << tau;
      }
    }
  }
}

TEST(ChSnapshotTest, RoundTripsThroughSnapshotWithQueryParity) {
  auto network = SmallRgg(19, 200);
  std::shared_ptr<ChIndex> built = BuildChIndex(*network).MoveValueUnsafe();

  const std::string path = ::testing::TempDir() + "/ch_roundtrip.ecgs";
  const ChSnapshotViews views = ToSnapshotViews(built);
  ASSERT_TRUE(SaveSnapshot(*network, path, nullptr, &views).ok());

  auto loaded = LoadSnapshotWithAux(path).MoveValueUnsafe();
  ASSERT_TRUE(loaded.ch.has_value());
  auto ch = ChIndexFromSnapshot(*loaded.ch, loaded.network->NumEdges())
                .MoveValueUnsafe();
  ASSERT_EQ(ch->NumNodes(), built->NumNodes());
  ASSERT_EQ(ch->NumUpArcs(), built->NumUpArcs());
  ASSERT_EQ(ch->NumDownArcs(), built->NumDownArcs());

  // The mmap-ed hierarchy must answer exactly like the built one.
  ChQuery fresh(*built), reloaded(*ch);
  CongestionModel congestion(19);
  const ChClassWeights weights = CongestedWeights(congestion, 9.0 * 3600);
  std::vector<EdgeId> scratch_a, scratch_b;
  const EdgeCostFn cost = CongestedCost(congestion, 9.0 * 3600);
  for (NodeId s = 0; s < 200; s += 23) {
    const NodeId t = (s * 71 + 5) % 200;
    const double a = ChExactPathCost(&fresh, *network, s, t, weights, cost,
                                     SweepDirection::kForward, &scratch_a);
    const double b = ChExactPathCost(&reloaded, *loaded.network, s, t, weights,
                                     cost, SweepDirection::kForward,
                                     &scratch_b);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0) << "s=" << s;
    EXPECT_EQ(scratch_a, scratch_b);
  }
}

}  // namespace
}  // namespace ecocharge
