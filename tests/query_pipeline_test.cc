// Cross-index parity of the query pipeline: every SpatialIndex backend
// must drive every ranker to bit-identical Offering Tables. The canonical
// result ordering (ascending distance, ties by id) is the contract that
// makes the pipeline index-agnostic; these tests pin it end to end.

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "ch/contraction.h"
#include "core/baselines.h"
#include "core/ecocharge.h"
#include "graph/io.h"
#include "graph/landmarks.h"
#include "spatial/index_factory.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

using testing_util::TablesBitIdentical;

/// One environment shared by every parameterization (expensive to build),
/// plus a per-backend index over the same charger points.
struct SharedWorld {
  std::unique_ptr<Environment> env;
  std::vector<VehicleState> states;
};

SharedWorld& World() {
  static SharedWorld world = [] {
    SharedWorld w;
    w.env = testing_util::TinyEnvironment(80);
    EXPECT_NE(w.env, nullptr);
    w.states = testing_util::TinyWorkload(*w.env, 8);
    EXPECT_FALSE(w.states.empty());
    return w;
  }();
  return world;
}

std::unique_ptr<SpatialIndex> BuildIndex(SpatialIndexKind kind) {
  std::vector<Point> points;
  for (const EvCharger& c : World().env->chargers) {
    points.push_back(c.position);
  }
  std::unique_ptr<SpatialIndex> index = MakeSpatialIndex(kind);
  index->Build(std::move(points));
  return index;
}

class CrossIndexParityTest
    : public ::testing::TestWithParam<SpatialIndexKind> {};

TEST_P(CrossIndexParityTest, SpatialResultsMatchQuadtree) {
  std::unique_ptr<SpatialIndex> reference =
      BuildIndex(SpatialIndexKind::kQuadTree);
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());
  ASSERT_EQ(index->size(), reference->size());
  for (const VehicleState& state : World().states) {
    EXPECT_EQ(index->Knn(state.position, 7),
              reference->Knn(state.position, 7));
    EXPECT_EQ(index->RangeSearch(state.position, 20000.0),
              reference->RangeSearch(state.position, 20000.0));
  }
}

TEST_P(CrossIndexParityTest, EcoChargeTablesBitIdentical) {
  SharedWorld& w = World();
  std::unique_ptr<SpatialIndex> reference =
      BuildIndex(SpatialIndexKind::kQuadTree);
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  // Dynamic Caching stays on, so the sequence exercises both the full
  // regeneration and the adaptation path; both must be index-invariant
  // (the hit path trivially so — it never touches the index).
  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  EcoChargeRanker expected(w.env->estimator.get(), reference.get(),
                           ScoreWeights::AWE(), opts);
  EcoChargeRanker actual(w.env->estimator.get(), index.get(),
                         ScoreWeights::AWE(), opts);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(TablesBitIdentical(actual.Rank(state, 3),
                                   expected.Rank(state, 3)));
  }
  EXPECT_EQ(actual.cache().hits(), expected.cache().hits());
}

TEST_P(CrossIndexParityTest, BatchedRefinementTablesBitIdentical) {
  SharedWorld& w = World();
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  // The batched one-to-many refinement must be a pure execution-strategy
  // change: per backend, flipping it cannot move a single bit of the table.
  EcoChargeOptions batched_opts;
  batched_opts.radius_m = 20000.0;
  batched_opts.batch_derouting = true;
  EcoChargeOptions per_candidate_opts = batched_opts;
  per_candidate_opts.batch_derouting = false;
  EcoChargeRanker batched(w.env->estimator.get(), index.get(),
                          ScoreWeights::AWE(), batched_opts);
  EcoChargeRanker per_candidate(w.env->estimator.get(), index.get(),
                                ScoreWeights::AWE(), per_candidate_opts);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(TablesBitIdentical(batched.Rank(state, 3),
                                   per_candidate.Rank(state, 3)));
  }
}

TEST_P(CrossIndexParityTest, LandmarkOrderingPreservesBatchParity) {
  SharedWorld& w = World();
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  // ALT ordering runs before the batch/per-candidate branch, so with the
  // same landmark index both execution strategies still agree bitwise.
  static const LandmarkIndex landmarks(*w.env->dataset.network, 4);
  EcoChargeOptions batched_opts;
  batched_opts.radius_m = 20000.0;
  batched_opts.landmarks = &landmarks;
  batched_opts.batch_derouting = true;
  EcoChargeOptions per_candidate_opts = batched_opts;
  per_candidate_opts.batch_derouting = false;
  EcoChargeRanker batched(w.env->estimator.get(), index.get(),
                          ScoreWeights::AWE(), batched_opts);
  EcoChargeRanker per_candidate(w.env->estimator.get(), index.get(),
                                ScoreWeights::AWE(), per_candidate_opts);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(TablesBitIdentical(batched.Rank(state, 3),
                                   per_candidate.Rank(state, 3)));
  }
}

TEST_P(CrossIndexParityTest, ChBackendTablesBitIdentical) {
  SharedWorld& w = World();
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  // Swapping the exact-derouting engine (Dijkstra sweeps -> contraction
  // hierarchy, the --derouting=ch serving configuration) must not move a
  // single bit of any backend's table. The CH world is a second
  // deterministic environment built from the same options except
  // derouting_backend — same network, fleet, and workload, different
  // engine inside the estimator. Candidate ordering is identical in both
  // arms (neither ranker gets ordering bounds), so the engine swap is the
  // only difference.
  static const std::unique_ptr<Environment> ch_env = [] {
    auto env = testing_util::TinyEnvironment(80, 42, DeroutingBackend::kCh);
    EXPECT_NE(env, nullptr);
    return env;
  }();
  ASSERT_NE(ch_env, nullptr);
  ASSERT_EQ(ch_env->estimator->derouting_service().backend(),
            DeroutingBackend::kCh);
  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  EcoChargeRanker exact(w.env->estimator.get(), index.get(),
                        ScoreWeights::AWE(), opts);
  EcoChargeRanker hierarchy(ch_env->estimator.get(), index.get(),
                            ScoreWeights::AWE(), opts);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(
        TablesBitIdentical(hierarchy.Rank(state, 3), exact.Rank(state, 3)));
  }
}

TEST_P(CrossIndexParityTest, ChOrderingPreservesBatchParity) {
  SharedWorld& w = World();
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  // With CH bounds ordering the refinement candidates (the --derouting=ch
  // serving configuration), batch vs per-candidate refinement is still a
  // pure execution-strategy change: the ordering runs before the branch.
  static const std::shared_ptr<ChIndex> ch =
      BuildChIndex(*w.env->dataset.network).MoveValueUnsafe();
  EcoChargeOptions batched_opts;
  batched_opts.radius_m = 20000.0;
  batched_opts.ch = ch.get();
  batched_opts.batch_derouting = true;
  EcoChargeOptions per_candidate_opts = batched_opts;
  per_candidate_opts.batch_derouting = false;
  EcoChargeRanker batched(w.env->estimator.get(), index.get(),
                          ScoreWeights::AWE(), batched_opts);
  EcoChargeRanker per_candidate(w.env->estimator.get(), index.get(),
                                ScoreWeights::AWE(), per_candidate_opts);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(TablesBitIdentical(batched.Rank(state, 3),
                                   per_candidate.Rank(state, 3)));
  }
}

TEST_P(CrossIndexParityTest, SimdOnOffTablesBitIdentical) {
  SharedWorld& w = World();
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  // The SIMD filter/score hot path vs the scalar reference kernels must be
  // a pure execution-strategy change: per backend, flipping --no-simd
  // cannot move a single bit of any table — the scalar path is the parity
  // oracle of DESIGN.md §15. Caching stays on so the sequence covers both
  // the full-regeneration and the adaptation ranking paths.
  EcoChargeOptions simd_opts;
  simd_opts.radius_m = 20000.0;
  simd_opts.use_simd = true;
  EcoChargeOptions scalar_opts = simd_opts;
  scalar_opts.use_simd = false;
  EcoChargeRanker vectorized(w.env->estimator.get(), index.get(),
                             ScoreWeights::AWE(), simd_opts);
  EcoChargeRanker scalar(w.env->estimator.get(), index.get(),
                         ScoreWeights::AWE(), scalar_opts);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(TablesBitIdentical(vectorized.Rank(state, 3),
                                   scalar.Rank(state, 3)));
  }
  EXPECT_EQ(vectorized.cache().hits(), scalar.cache().hits());
}

TEST_P(CrossIndexParityTest, SimdParityHoldsWithoutIntersection) {
  SharedWorld& w = World();
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  // The ablation ranking (midpoint-only, no eq. 6 intersection) goes
  // through its own partial-select path — hold it to the same oracle.
  EcoChargeOptions simd_opts;
  simd_opts.radius_m = 20000.0;
  simd_opts.use_intersection = false;
  simd_opts.use_simd = true;
  EcoChargeOptions scalar_opts = simd_opts;
  scalar_opts.use_simd = false;
  EcoChargeRanker vectorized(w.env->estimator.get(), index.get(),
                             ScoreWeights::AWE(), simd_opts);
  EcoChargeRanker scalar(w.env->estimator.get(), index.get(),
                         ScoreWeights::AWE(), scalar_opts);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(TablesBitIdentical(vectorized.Rank(state, 3),
                                   scalar.Rank(state, 3)));
  }
}

TEST_P(CrossIndexParityTest, SimdParityHoldsOnChBackend) {
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  // SIMD on/off over the contraction-hierarchy derouting engine: the
  // second exact backend completes the 5 spatial x 2 derouting parity
  // matrix the acceptance contract names.
  static const std::unique_ptr<Environment> ch_env = [] {
    auto env = testing_util::TinyEnvironment(80, 42, DeroutingBackend::kCh);
    EXPECT_NE(env, nullptr);
    return env;
  }();
  ASSERT_NE(ch_env, nullptr);
  EcoChargeOptions simd_opts;
  simd_opts.radius_m = 20000.0;
  simd_opts.use_simd = true;
  EcoChargeOptions scalar_opts = simd_opts;
  scalar_opts.use_simd = false;
  EcoChargeRanker vectorized(ch_env->estimator.get(), index.get(),
                             ScoreWeights::AWE(), simd_opts);
  EcoChargeRanker scalar(ch_env->estimator.get(), index.get(),
                         ScoreWeights::AWE(), scalar_opts);
  for (const VehicleState& state : World().states) {
    EXPECT_TRUE(TablesBitIdentical(vectorized.Rank(state, 3),
                                   scalar.Rank(state, 3)));
  }
}

TEST_P(CrossIndexParityTest, QuadtreeRankerTablesBitIdentical) {
  SharedWorld& w = World();
  std::unique_ptr<SpatialIndex> reference =
      BuildIndex(SpatialIndexKind::kQuadTree);
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  QuadtreeRanker expected(w.env->estimator.get(), reference.get(),
                          ScoreWeights::AWE(), /*candidate_budget=*/12);
  QuadtreeRanker actual(w.env->estimator.get(), index.get(),
                        ScoreWeights::AWE(), /*candidate_budget=*/12);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(TablesBitIdentical(actual.Rank(state, 3),
                                   expected.Rank(state, 3)));
  }
}

TEST_P(CrossIndexParityTest, RandomRankerTablesBitIdentical) {
  SharedWorld& w = World();
  std::unique_ptr<SpatialIndex> reference =
      BuildIndex(SpatialIndexKind::kQuadTree);
  std::unique_ptr<SpatialIndex> index = BuildIndex(GetParam());

  // Identical seeds shuffle identical candidate lists identically — which
  // requires the backends to agree on the range-search result order.
  RandomRanker expected(w.env->estimator.get(), reference.get(), 20000.0,
                        /*seed=*/99);
  RandomRanker actual(w.env->estimator.get(), index.get(), 20000.0,
                      /*seed=*/99);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(TablesBitIdentical(actual.Rank(state, 3),
                                   expected.Rank(state, 3)));
  }
}

TEST_P(CrossIndexParityTest, SnapshotLoadedGraphTablesBitIdentical) {
  SharedWorld& w = World();

  // Rebuild the whole world on top of an mmap-loaded snapshot of the same
  // network: the snapshot round-trips the graph exactly, so every backend
  // must still produce bit-identical Offering Tables.
  // The path carries the pid: ctest runs each parameterization as its own
  // process, and concurrent writers of one shared file would race.
  static const std::string path = [] {
    std::string p = ::testing::TempDir() + "/query_pipeline_graph." +
                    std::to_string(::getpid()) + ".ecgs";
    EXPECT_TRUE(SaveSnapshot(*World().env->dataset.network, p).ok());
    return p;
  }();
  static const SharedWorld snapshot_world = [] {
    SharedWorld sw;
    EnvironmentOptions opts;
    opts.kind = DatasetKind::kOldenburg;
    opts.dataset_scale = 0.003;
    opts.num_chargers = 80;
    opts.max_derouting_m = 60000.0;
    opts.seed = 42;  // mirror testing_util::TinyEnvironment
    opts.graph_snapshot = path;
    auto result = MakeEnvironment(opts);
    EXPECT_TRUE(result.ok()) << result.status();
    if (result.ok()) sw.env = std::move(result).MoveValueUnsafe();
    return sw;
  }();
  ASSERT_NE(snapshot_world.env, nullptr);

  std::unique_ptr<SpatialIndex> reference = BuildIndex(GetParam());
  std::vector<Point> points;
  for (const EvCharger& c : snapshot_world.env->chargers) {
    points.push_back(c.position);
  }
  std::unique_ptr<SpatialIndex> index = MakeSpatialIndex(GetParam());
  index->Build(std::move(points));

  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  EcoChargeRanker expected(w.env->estimator.get(), reference.get(),
                           ScoreWeights::AWE(), opts);
  EcoChargeRanker actual(snapshot_world.env->estimator.get(), index.get(),
                         ScoreWeights::AWE(), opts);
  for (const VehicleState& state : w.states) {
    EXPECT_TRUE(TablesBitIdentical(actual.Rank(state, 3),
                                   expected.Rank(state, 3)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, CrossIndexParityTest,
    ::testing::ValuesIn(kAllSpatialIndexKinds.begin(),
                        kAllSpatialIndexKinds.end()),
    [](const ::testing::TestParamInfo<SpatialIndexKind>& info) {
      return std::string(SpatialIndexKindName(info.param));
    });

TEST(IndexFactoryTest, ParseRoundTripsEveryKind) {
  for (SpatialIndexKind kind : kAllSpatialIndexKinds) {
    auto parsed = ParseSpatialIndexKind(SpatialIndexKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
}

TEST(IndexFactoryTest, ParseAcceptsSeparatorsAndCase) {
  EXPECT_EQ(ParseSpatialIndexKind("KD-Tree").value(),
            SpatialIndexKind::kKdTree);
  EXPECT_EQ(ParseSpatialIndexKind("r_tree").value(), SpatialIndexKind::kRTree);
  EXPECT_EQ(ParseSpatialIndexKind("QUADTREE").value(),
            SpatialIndexKind::kQuadTree);
  EXPECT_FALSE(ParseSpatialIndexKind("voronoi").ok());
}

TEST(IndexFactoryTest, MakeProducesWorkingIndex) {
  std::vector<Point> points = testing_util::RandomCloud(64);
  for (SpatialIndexKind kind : kAllSpatialIndexKinds) {
    std::unique_ptr<SpatialIndex> index = MakeSpatialIndex(kind);
    ASSERT_NE(index, nullptr);
    index->Build(points);
    EXPECT_EQ(index->size(), points.size());
    EXPECT_EQ(index->Knn({5000.0, 4000.0}, 3).size(), 3u);
  }
}

}  // namespace
}  // namespace ecocharge
