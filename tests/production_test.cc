#include "energy/production.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

EvCharger TestCharger(ChargerType type = ChargerType::kAc22,
                      double pv_kw = 40.0) {
  EvCharger c;
  c.id = 1;
  c.type = type;
  c.pv_capacity_kw = pv_kw;
  return c;
}

TEST(ProductionTraceTest, SlotsCoverRequestedSpan) {
  SolarModel solar;
  WeatherProcess weather(ClimateParams{}, 3);
  auto trace = ProductionTrace::Generate(30.0, solar, &weather, 0.0,
                                         kSecondsPerDay)
                   .MoveValueUnsafe();
  EXPECT_EQ(trace.num_slots(), 96u);  // 24h at 15-min
}

TEST(ProductionTraceTest, NightSlotsAreZero) {
  SolarModel solar;
  WeatherProcess weather(ClimateParams{}, 3);
  auto trace = ProductionTrace::Generate(30.0, solar, &weather, 0.0,
                                         kSecondsPerDay)
                   .MoveValueUnsafe();
  // Slots 0..3 are 00:00-01:00.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(trace.kwh_per_slot()[i], 0.0);
  }
  // Midday slot produces.
  EXPECT_GT(trace.kwh_per_slot()[48], 0.0);
}

TEST(ProductionTraceTest, EnergyBetweenProrates) {
  SolarModel solar;
  WeatherProcess weather(ClimateParams{1.0, 1.0}, 3);  // always sunny-ish
  auto trace = ProductionTrace::Generate(30.0, solar, &weather, 0.0,
                                         kSecondsPerDay)
                   .MoveValueUnsafe();
  double full = trace.EnergyBetween(0.0, kSecondsPerDay);
  double halves = trace.EnergyBetween(0.0, kSecondsPerDay / 2) +
                  trace.EnergyBetween(kSecondsPerDay / 2, kSecondsPerDay);
  EXPECT_NEAR(full, halves, 1e-9);
  // Partial slot: half of slot 48.
  double slot48 = trace.kwh_per_slot()[48];
  double t0 = 48 * ProductionTrace::kSlotSeconds;
  EXPECT_NEAR(
      trace.EnergyBetween(t0, t0 + ProductionTrace::kSlotSeconds / 2),
      slot48 / 2, 1e-9);
}

TEST(ProductionTraceTest, OutOfRangeContributesZero) {
  SolarModel solar;
  WeatherProcess weather(ClimateParams{}, 3);
  auto trace =
      ProductionTrace::Generate(30.0, solar, &weather, 0.0, kSecondsPerHour)
          .MoveValueUnsafe();
  EXPECT_EQ(trace.EnergyBetween(-100.0, 0.0), 0.0);
  EXPECT_EQ(trace.EnergyBetween(kSecondsPerDay, 2 * kSecondsPerDay), 0.0);
  EXPECT_EQ(trace.EnergyBetween(50.0, 50.0), 0.0);
}

TEST(ProductionTraceTest, RejectsBadArgs) {
  SolarModel solar;
  WeatherProcess weather(ClimateParams{}, 3);
  EXPECT_FALSE(
      ProductionTrace::Generate(-1.0, solar, &weather, 0.0, 100.0).ok());
  EXPECT_FALSE(
      ProductionTrace::Generate(10.0, solar, &weather, 100.0, 0.0).ok());
}

TEST(SolarEnergyServiceTest, ActualEnergyCappedByRate) {
  SolarModel solar;
  SolarEnergyService service(solar, ClimateParams{1.0, 1.0}, 5);
  // Tiny 11 kW AC charger with huge PV: one hour at noon delivers at most
  // 11 kWh.
  EvCharger small = TestCharger(ChargerType::kAc11, 500.0);
  SimTime noon = 12.0 * kSecondsPerHour;
  double kwh = service.ActualEnergyKwh(small, noon, kSecondsPerHour);
  EXPECT_LE(kwh, 11.0 + 1e-9);
  EXPECT_GT(kwh, 5.0);
}

TEST(SolarEnergyServiceTest, ActualEnergyZeroAtNight) {
  SolarModel solar;
  SolarEnergyService service(solar, ClimateParams{}, 5);
  double kwh = service.ActualEnergyKwh(TestCharger(), 0.0, kSecondsPerHour);
  EXPECT_EQ(kwh, 0.0);
}

TEST(SolarEnergyServiceTest, ForecastBracketsOrdered) {
  SolarModel solar;
  SolarEnergyService service(solar, ClimateParams{}, 5);
  EvCharger c = TestCharger();
  for (int h = 6; h < 20; ++h) {
    EnergyForecast f = service.ForecastEnergyKwh(
        c, h * kSecondsPerHour, (h + 1) * kSecondsPerHour, kSecondsPerHour);
    EXPECT_LE(f.min_kwh, f.max_kwh);
    EXPECT_GE(f.min_kwh, 0.0);
  }
}

TEST(SolarEnergyServiceTest, MaxDeliverableScalesWithWindow) {
  SolarModel solar;
  SolarEnergyService service(solar, ClimateParams{}, 5);
  std::vector<EvCharger> fleet = {TestCharger(ChargerType::kAc11, 100.0),
                                  TestCharger(ChargerType::kDc50, 30.0)};
  // Best deliverable per hour: min(50, 30) = 30 kWh beats min(11, 100).
  EXPECT_DOUBLE_EQ(service.MaxDeliverableKwh(fleet, kSecondsPerHour), 30.0);
  EXPECT_DOUBLE_EQ(service.MaxDeliverableKwh(fleet, kSecondsPerHour / 2),
                   15.0);
}

TEST(SolarEnergyServiceTest, BiggerPvProducesMore) {
  SolarModel solar;
  SolarEnergyService service(solar, ClimateParams{1.0, 1.0}, 5);
  SimTime noon = 12.0 * kSecondsPerHour;
  double small = service.ActualEnergyKwh(
      TestCharger(ChargerType::kDc150, 20.0), noon, kSecondsPerHour);
  double large = service.ActualEnergyKwh(
      TestCharger(ChargerType::kDc150, 80.0), noon, kSecondsPerHour);
  EXPECT_GT(large, small * 2);
}

}  // namespace
}  // namespace ecocharge
