#include "graph/shortest_path.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "common/rng.h"
#include "graph/generators.h"

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> SmallGrid(uint64_t seed = 3) {
  GridNetworkOptions opts;
  opts.nx = 8;
  opts.ny = 8;
  opts.spacing_m = 200.0;
  opts.seed = seed;
  return MakeGridNetwork(opts).MoveValueUnsafe();
}

TEST(DijkstraTest, TrivialSourceEqualsTarget) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  PathResult r = search.ShortestPath(5, 5);
  EXPECT_TRUE(r.Reachable());
  EXPECT_EQ(r.cost, 0.0);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_EQ(r.nodes[0], 5u);
}

TEST(DijkstraTest, InvalidNodesUnreachable) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  EXPECT_FALSE(search.ShortestPath(0, 100000).Reachable());
  EXPECT_FALSE(search.ShortestPath(100000, 0).Reachable());
}

TEST(DijkstraTest, PathEndpointsAndContinuity) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  PathResult r = search.ShortestPath(0, 63);
  ASSERT_TRUE(r.Reachable());
  EXPECT_EQ(r.nodes.front(), 0u);
  EXPECT_EQ(r.nodes.back(), 63u);
  // Consecutive nodes must be joined by an edge; costs must sum up.
  double total = 0.0;
  for (size_t i = 1; i < r.nodes.size(); ++i) {
    bool found = false;
    for (EdgeId e : network->OutEdges(r.nodes[i - 1])) {
      if (network->edge(e).to == r.nodes[i]) {
        total += network->edge(e).length_m;
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no edge " << r.nodes[i - 1] << "->" << r.nodes[i];
  }
  EXPECT_NEAR(total, r.cost, 1e-9);
}

TEST(DijkstraTest, MatchesBellmanFordOnRandomPairs) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    PathResult dij = search.ShortestPath(s, t);
    PathResult bf = BellmanFordShortestPath(*network, s, t);
    ASSERT_EQ(dij.Reachable(), bf.Reachable());
    if (dij.Reachable()) {
      EXPECT_NEAR(dij.cost, bf.cost, 1e-6) << s << "->" << t;
    }
  }
}

TEST(AStarTest, MatchesDijkstraOnLengthCost) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    double dij = search.ShortestPath(s, t).cost;
    double astar = search.AStar(s, t).cost;
    EXPECT_NEAR(dij, astar, 1e-6);
  }
}

TEST(AStarTest, SettlesNoMoreThanDijkstra) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  size_t dij_settled = 0, astar_settled = 0;
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    search.ShortestPath(s, t);
    dij_settled += search.last_settled_count();
    search.AStar(s, t);
    astar_settled += search.last_settled_count();
  }
  EXPECT_LE(astar_settled, dij_settled);
}

TEST(AStarTest, TimeCostWithScaledHeuristicIsExact) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  // For time costs the admissible heuristic divides by the max speed.
  double inv_max_speed = 1.0 / FreeFlowSpeed(RoadClass::kHighway);
  Rng rng(15);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    double dij = search.ShortestPath(s, t, FreeFlowTimeCost).cost;
    double astar = search.AStar(s, t, FreeFlowTimeCost, inv_max_speed).cost;
    EXPECT_NEAR(dij, astar, 1e-6);
  }
}

TEST(OneToManyTest, RespectsCostBound) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  std::vector<NodeId> settled;
  search.OneToMany(0, 500.0, LengthCost, &settled);
  ASSERT_FALSE(settled.empty());
  for (NodeId v : settled) {
    EXPECT_LE(search.CostTo(v), 500.0);
  }
  // Unsettled nodes report infinity.
  bool found_unreached = false;
  for (NodeId v = 0; v < network->NumNodes(); ++v) {
    if (search.CostTo(v) == kInfiniteCost) found_unreached = true;
  }
  EXPECT_TRUE(found_unreached);
}

TEST(OneToManyTest, UnboundedCoversWholeNetwork) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  size_t settled = search.OneToMany(0, kInfiniteCost, LengthCost);
  EXPECT_EQ(settled, network->NumNodes());
}

TEST(OneToManyTest, CostsMatchPointToPoint) {
  auto network = SmallGrid();
  DijkstraSearch one_to_many(*network);
  DijkstraSearch point(*network);
  one_to_many.OneToMany(7, kInfiniteCost, LengthCost);
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    double expected = point.ShortestPath(7, t).cost;
    EXPECT_NEAR(one_to_many.CostTo(t), expected, 1e-9);
  }
}

TEST(OneToManyTest, TargetSetMatchesPointToPointAndExitsEarly) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  DijkstraSearch point(*network);
  // Targets near the source: the sweep must stop well before settling the
  // whole 64-node grid.
  NodeId targets[] = {1, 8, 9, 2};
  size_t found = search.OneToMany(
      0, std::span<const NodeId>(targets), LengthCost);
  EXPECT_EQ(found, 4u);
  EXPECT_LT(search.last_settled_count(), network->NumNodes());
  for (NodeId t : targets) {
    EXPECT_TRUE(search.Settled(t));
    EXPECT_NEAR(search.CostTo(t), point.ShortestPath(0, t).cost, 1e-9);
  }
}

TEST(OneToManyTest, TargetSetSkipsInvalidAndDuplicateIds) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  NodeId targets[] = {5, 5, kInvalidNode, 12,
                      static_cast<NodeId>(network->NumNodes())};
  size_t found = search.OneToMany(
      0, std::span<const NodeId>(targets), LengthCost);
  // Settled entries: node 5 counts per occurrence, invalid ids never do.
  EXPECT_EQ(found, 3u);
  EXPECT_TRUE(search.Settled(5));
  EXPECT_TRUE(search.Settled(12));
}

TEST(SweepTest, ResumedSweepMatchesOneShotBitwise) {
  auto network = SmallGrid();
  DijkstraSearch resumed(*network);
  DijkstraSearch one_shot(*network);
  NodeId near_targets[] = {1, 9};
  NodeId far_targets[] = {63, 56};
  NodeId all_targets[] = {1, 9, 63, 56};

  NodeId source[] = {0};
  resumed.StartSweep(std::span<const NodeId>(source));
  resumed.ExtendSweep(std::span<const NodeId>(near_targets), LengthCost);
  resumed.ExtendSweep(std::span<const NodeId>(far_targets), LengthCost);
  one_shot.OneToMany(0, std::span<const NodeId>(all_targets), LengthCost);

  // Resuming only decides when relaxation stops, never what it computes:
  // the settled doubles are identical, not just close.
  for (NodeId t : all_targets) {
    EXPECT_EQ(resumed.CostTo(t), one_shot.CostTo(t)) << "target " << t;
  }
  // Re-requesting already-settled targets is a no-op extension.
  size_t found =
      resumed.ExtendSweep(std::span<const NodeId>(near_targets), LengthCost);
  EXPECT_EQ(found, 2u);
}

TEST(SweepTest, BackwardSweepSettlesCostsTowardTheSource) {
  auto network = SmallGrid();
  DijkstraSearch sweep(*network);
  DijkstraSearch point(*network);
  NodeId sources[] = {63};
  sweep.StartSweep(std::span<const NodeId>(sources),
                   SweepDirection::kBackward);
  Rng rng(27);
  for (int trial = 0; trial < 10; ++trial) {
    NodeId v = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId targets[] = {v};
    sweep.ExtendSweep(std::span<const NodeId>(targets), LengthCost);
    // A backward sweep over the in-adjacency settles d(v -> 63).
    EXPECT_NEAR(sweep.CostTo(v), point.ShortestPath(v, 63).cost, 1e-6)
        << "v=" << v;
  }
}

TEST(SweepTest, MultiSourceSweepIsMinOverSingleSources) {
  auto network = SmallGrid();
  DijkstraSearch multi(*network);
  DijkstraSearch single_a(*network);
  DijkstraSearch single_b(*network);
  NodeId both[] = {7, 56};
  NodeId only_a[] = {7};
  NodeId only_b[] = {56};
  multi.StartSweep(std::span<const NodeId>(both), SweepDirection::kBackward);
  single_a.StartSweep(std::span<const NodeId>(only_a),
                      SweepDirection::kBackward);
  single_b.StartSweep(std::span<const NodeId>(only_b),
                      SweepDirection::kBackward);
  for (NodeId v = 0; v < network->NumNodes(); ++v) {
    NodeId targets[] = {v};
    multi.ExtendSweep(std::span<const NodeId>(targets), LengthCost);
    single_a.ExtendSweep(std::span<const NodeId>(targets), LengthCost);
    single_b.ExtendSweep(std::span<const NodeId>(targets), LengthCost);
    EXPECT_DOUBLE_EQ(multi.CostTo(v),
                     std::min(single_a.CostTo(v), single_b.CostTo(v)))
        << "v=" << v;
  }
}

TEST(DijkstraTest, EpochReuseIsolatesQueries) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  search.OneToMany(0, kInfiniteCost, LengthCost);
  double d_before = search.CostTo(42);
  // A bounded search from elsewhere must not leak stale distances.
  search.OneToMany(63, 1.0, LengthCost);
  EXPECT_EQ(search.CostTo(42), kInfiniteCost);
  search.OneToMany(0, kInfiniteCost, LengthCost);
  EXPECT_NEAR(search.CostTo(42), d_before, 1e-12);
}

TEST(BidirectionalTest, MatchesDijkstraOnRandomPairs) {
  auto network = SmallGrid();
  DijkstraSearch search(*network);
  Rng rng(51);
  for (int trial = 0; trial < 40; ++trial) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    PathResult uni = search.ShortestPath(s, t);
    PathResult bi = BidirectionalShortestPath(*network, s, t);
    ASSERT_EQ(uni.Reachable(), bi.Reachable()) << s << "->" << t;
    if (uni.Reachable()) {
      EXPECT_NEAR(uni.cost, bi.cost, 1e-6) << s << "->" << t;
    }
  }
}

TEST(BidirectionalTest, PathIsValidAndCostConsistent) {
  auto network = SmallGrid();
  Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId s = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId t = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    PathResult bi = BidirectionalShortestPath(*network, s, t);
    if (!bi.Reachable()) continue;
    ASSERT_FALSE(bi.nodes.empty());
    EXPECT_EQ(bi.nodes.front(), s);
    EXPECT_EQ(bi.nodes.back(), t);
    double total = 0.0;
    for (size_t i = 1; i < bi.nodes.size(); ++i) {
      bool found = false;
      for (EdgeId e : network->OutEdges(bi.nodes[i - 1])) {
        if (network->edge(e).to == bi.nodes[i]) {
          total += network->edge(e).length_m;
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found);
    }
    EXPECT_NEAR(total, bi.cost, 1e-6);
  }
}

TEST(BidirectionalTest, TrivialAndInvalidCases) {
  auto network = SmallGrid();
  PathResult same = BidirectionalShortestPath(*network, 4, 4);
  EXPECT_EQ(same.cost, 0.0);
  ASSERT_EQ(same.nodes.size(), 1u);
  EXPECT_FALSE(
      BidirectionalShortestPath(*network, 0, 1000000).Reachable());
}

TEST(DijkstraTest, CustomCostChangesRoute) {
  // Two routes a->b: direct long local road vs detour over fast highway.
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({1000, 0});
  NodeId c = builder.AddNode({500, 400});
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal, 1000.0).ok());
  ASSERT_TRUE(builder.AddEdge(a, c, RoadClass::kHighway, 700.0).ok());
  ASSERT_TRUE(builder.AddEdge(c, b, RoadClass::kHighway, 700.0).ok());
  auto network = builder.Build().MoveValueUnsafe();
  DijkstraSearch search(*network);
  // By length the direct road wins.
  EXPECT_EQ(search.ShortestPath(a, b, LengthCost).nodes.size(), 2u);
  // By time the highway detour wins (1400m @ 120km/h < 1000m @ 30km/h).
  EXPECT_EQ(search.ShortestPath(a, b, FreeFlowTimeCost).nodes.size(), 3u);
}

}  // namespace
}  // namespace ecocharge
