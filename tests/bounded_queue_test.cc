#include "server/bounded_queue.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(BoundedQueueTest, PushPopFifo) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
}

TEST(BoundedQueueTest, RejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  queue.Pop();
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(BoundedQueueTest, LvaluePushCopiesAndLeavesOriginalIntact) {
  // Regression: TryPush only had an rvalue overload, so pushing an lvalue
  // silently moved from it via implicit conversion paths — a producer
  // could not retry a rejected submit with the same object.
  BoundedQueue<std::string> queue(1);
  const std::string original(64, 'x');  // beyond SSO so a move would gut it
  EXPECT_TRUE(queue.TryPush(original));
  EXPECT_EQ(original, std::string(64, 'x'));

  // A rejected lvalue push must leave the original reusable.
  std::string retry(64, 'y');
  EXPECT_FALSE(queue.TryPush(retry));
  EXPECT_EQ(retry, std::string(64, 'y'));
  queue.Pop();
  EXPECT_TRUE(queue.TryPush(retry));
  EXPECT_EQ(retry, std::string(64, 'y'));
  EXPECT_EQ(queue.Pop(), std::optional<std::string>(std::string(64, 'y')));
}

TEST(BoundedQueueTest, RvaluePushStillMoves) {
  // Move-only payloads must keep working through the rvalue overload.
  BoundedQueue<std::unique_ptr<int>> queue(1);
  EXPECT_TRUE(queue.TryPush(std::make_unique<int>(7)));
  std::optional<std::unique_ptr<int>> item = queue.Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 7);
}

TEST(BoundedQueueTest, CloseDrainsThenEndsStream) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(2));
  const int value = 3;
  EXPECT_FALSE(queue.TryPush(value));  // lvalue overload respects closed too
  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, ConcurrentLvalueProducersLoseNothing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  BoundedQueue<int> queue(kThreads * kPerThread);
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&queue, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int item = t * kPerThread + i;
        ASSERT_TRUE(queue.TryPush(item));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  std::vector<bool> seen(kThreads * kPerThread, false);
  while (std::optional<int> item = queue.Pop()) {
    ASSERT_GE(*item, 0);
    ASSERT_LT(*item, kThreads * kPerThread);
    EXPECT_FALSE(seen[*item]);
    seen[*item] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace ecocharge
