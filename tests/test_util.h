#ifndef ECOCHARGE_TESTS_TEST_UTIL_H_
#define ECOCHARGE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/environment.h"
#include "core/offering_table.h"
#include "core/workload.h"
#include "geo/point.h"

namespace ecocharge {
namespace testing_util {

/// Uniform random point cloud in [0, w] x [0, h].
inline std::vector<Point> RandomCloud(size_t n, double w = 10000.0,
                                      double h = 8000.0, uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.NextDouble(0.0, w), rng.NextDouble(0.0, h)});
  }
  return points;
}

/// A small but fully functional world for integration-style tests: the
/// Oldenburg dataset at minimum scale with `num_chargers` sites.
inline std::unique_ptr<Environment> TinyEnvironment(
    size_t num_chargers = 60, uint64_t seed = 42,
    DeroutingBackend backend = DeroutingBackend::kExact) {
  EnvironmentOptions opts;
  opts.kind = DatasetKind::kOldenburg;
  opts.dataset_scale = 0.003;  // minimum trajectory count
  opts.num_chargers = num_chargers;
  opts.max_derouting_m = 60000.0;
  opts.seed = seed;
  opts.derouting_backend = backend;
  auto result = MakeEnvironment(opts);
  if (!result.ok()) return nullptr;
  return std::move(result).MoveValueUnsafe();
}

/// A handful of vehicle states drawn from `env`'s trajectories.
inline std::vector<VehicleState> TinyWorkload(const Environment& env,
                                              size_t max_states = 6) {
  WorkloadOptions wo;
  wo.max_trips = 4;
  wo.max_states = max_states;
  return BuildWorkload(env.dataset, wo);
}

/// Bit-identical Offering Table comparison (no tolerance): every field of
/// every entry must match exactly. Used by the cross-index parity and
/// QueryContext-reuse tests, where "same result" means same bits.
inline ::testing::AssertionResult TablesBitIdentical(const OfferingTable& a,
                                                     const OfferingTable& b) {
  if (a.generated_at != b.generated_at || a.segment_index != b.segment_index ||
      a.location.x != b.location.x || a.location.y != b.location.y ||
      a.adapted_from_cache != b.adapted_from_cache ||
      a.degraded != b.degraded) {
    return ::testing::AssertionFailure() << "table headers differ";
  }
  if (a.entries.size() != b.entries.size()) {
    return ::testing::AssertionFailure()
           << "entry counts differ: " << a.entries.size() << " vs "
           << b.entries.size();
  }
  for (size_t i = 0; i < a.entries.size(); ++i) {
    const OfferingEntry& x = a.entries[i];
    const OfferingEntry& y = b.entries[i];
    if (x.charger_id != y.charger_id) {
      return ::testing::AssertionFailure()
             << "entry " << i << ": charger " << x.charger_id << " vs "
             << y.charger_id;
    }
    if (x.score.sc_min != y.score.sc_min || x.score.sc_max != y.score.sc_max ||
        !(x.ecs.level == y.ecs.level) ||
        !(x.ecs.availability == y.ecs.availability) ||
        !(x.ecs.derouting == y.ecs.derouting) || x.ecs.eta_s != y.ecs.eta_s ||
        x.ecs.degraded != y.ecs.degraded || x.eta_s != y.eta_s) {
      return ::testing::AssertionFailure()
             << "entry " << i << " (charger " << x.charger_id
             << "): score/EC fields differ";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing_util
}  // namespace ecocharge

#endif  // ECOCHARGE_TESTS_TEST_UTIL_H_
