#ifndef ECOCHARGE_TESTS_TEST_UTIL_H_
#define ECOCHARGE_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/environment.h"
#include "core/workload.h"
#include "geo/point.h"

namespace ecocharge {
namespace testing_util {

/// Uniform random point cloud in [0, w] x [0, h].
inline std::vector<Point> RandomCloud(size_t n, double w = 10000.0,
                                      double h = 8000.0, uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.NextDouble(0.0, w), rng.NextDouble(0.0, h)});
  }
  return points;
}

/// A small but fully functional world for integration-style tests: the
/// Oldenburg dataset at minimum scale with `num_chargers` sites.
inline std::unique_ptr<Environment> TinyEnvironment(size_t num_chargers = 60,
                                                    uint64_t seed = 42) {
  EnvironmentOptions opts;
  opts.kind = DatasetKind::kOldenburg;
  opts.dataset_scale = 0.003;  // minimum trajectory count
  opts.num_chargers = num_chargers;
  opts.max_derouting_m = 60000.0;
  opts.seed = seed;
  auto result = MakeEnvironment(opts);
  if (!result.ok()) return nullptr;
  return std::move(result).MoveValueUnsafe();
}

/// A handful of vehicle states drawn from `env`'s trajectories.
inline std::vector<VehicleState> TinyWorkload(const Environment& env,
                                              size_t max_states = 6) {
  WorkloadOptions wo;
  wo.max_trips = 4;
  wo.max_states = max_states;
  return BuildWorkload(env.dataset, wo);
}

}  // namespace testing_util
}  // namespace ecocharge

#endif  // ECOCHARGE_TESTS_TEST_UTIL_H_
