#include "obs/statsz.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "server/offering_server.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

using obs::MetricsRegistry;
using obs::StatszJson;
using obs::StatszText;
using testing_util::TinyEnvironment;
using testing_util::TinyWorkload;

/// Minimal extractor for the flat statsz JSON: returns the numeric token
/// following `"key": `, searching from `from`. Fails the test when absent.
double JsonNumber(const std::string& json, const std::string& key,
                  size_t from = 0) {
  std::string needle = "\"" + key + "\": ";
  size_t pos = json.find(needle, from);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  if (pos == std::string::npos) return -1.0;
  return std::stod(json.substr(pos + needle.size()));
}

/// Position of a histogram's object (after `"name": {`), for scoping
/// field lookups to that histogram.
size_t JsonObjectStart(const std::string& json, const std::string& name) {
  std::string needle = "\"" + name + "\": {";
  size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing histogram " << name;
  return pos == std::string::npos ? 0 : pos + needle.size();
}

TEST(StatszTest, TextListsAllKinds) {
  MetricsRegistry registry(1);
  registry.GetCounter("demo.hits")->Add(3);
  registry.GetCounter("demo.misses")->Add(1);
  registry.GetGauge("demo.depth")->Set(5);
  registry.GetHistogram("demo.lat", "ns")->Record(1000);
  std::string text = StatszText(registry);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("demo.hits"), std::string::npos);
  EXPECT_NE(text.find("rate"), std::string::npos);
  EXPECT_NE(text.find("demo.hit_rate"), std::string::npos);
  EXPECT_NE(text.find("0.75"), std::string::npos);
  EXPECT_NE(text.find("gauge"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
  EXPECT_NE(text.find("unit=ns"), std::string::npos);
}

TEST(StatszTest, JsonShapeAndValues) {
  MetricsRegistry registry(1);
  registry.GetCounter("c.hits")->Add(9);
  registry.GetCounter("c.misses")->Add(1);
  registry.GetGauge("g")->Set(-4);
  obs::Histogram* h = registry.GetHistogram("lat", "ns");
  for (int i = 1; i <= 100; ++i) h->Record(static_cast<uint64_t>(i));
  std::string json = StatszJson(registry);

  for (const char* section : {"counters", "gauges", "rates", "histograms"}) {
    EXPECT_NE(json.find("\"" + std::string(section) + "\": {"),
              std::string::npos);
  }
  EXPECT_EQ(JsonNumber(json, "c.hits"), 9.0);
  EXPECT_EQ(JsonNumber(json, "g"), -4.0);
  EXPECT_DOUBLE_EQ(JsonNumber(json, "c.hit_rate"), 0.9);
  size_t lat = JsonObjectStart(json, "lat");
  EXPECT_EQ(JsonNumber(json, "count", lat), 100.0);
  EXPECT_EQ(JsonNumber(json, "min", lat), 1.0);
  EXPECT_EQ(JsonNumber(json, "max", lat), 100.0);
  // Values 1..100: the p50 bucket holds the exact rank-50 sample's bucket
  // lower bound (48 in the log-linear geometry: bucket [48, 52)).
  double p50 = JsonNumber(json, "p50", lat);
  EXPECT_GE(p50, 47.0);
  EXPECT_LE(p50, 50.0);
}

TEST(StatszTest, EmptyRegistryIsValidJson) {
  MetricsRegistry registry(1);
  std::string json = StatszJson(registry);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
}

TEST(StatszTest, EscapesQuotesAndBackslashes) {
  MetricsRegistry registry(1);
  registry.GetCounter("weird\"name\\here")->Add(1);
  std::string json = StatszJson(registry);
  EXPECT_NE(json.find("weird\\\"name\\\\here"), std::string::npos);
}

// End-to-end: the statsz export of a served OfferingServer carries the
// acceptance-criteria metrics — request-latency percentiles, pipeline
// phase timers, and EIS cache hit rates — with values consistent with the
// served workload.
TEST(StatszTest, OfferingServerExportCarriesServingMetrics) {
  auto env = TinyEnvironment();
  ASSERT_NE(env, nullptr);
  auto states = TinyWorkload(*env, 6);
  ASSERT_GE(states.size(), 2u);

  OfferingServerOptions options;
  options.threads = 2;
  options.queue_depth = 1024;  // nothing shed: served == submitted
  OfferingServer server(env.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        options);
  uint64_t submitted = 0;
  for (uint64_t client = 0; client < 4; ++client) {
    for (const VehicleState& state : states) {
      ASSERT_TRUE(
          server.Submit(client, state, 3, [](const OfferingTable&) {}).ok());
      ++submitted;
    }
  }
  server.Drain();
  std::string json = StatszJson(server.metrics());

  EXPECT_EQ(JsonNumber(json, "server.requests.served"),
            static_cast<double>(submitted));
  EXPECT_EQ(JsonNumber(json, "server.requests.accepted"),
            static_cast<double>(submitted));
  EXPECT_EQ(JsonNumber(json, "server.requests.rejected"), 0.0);

  // Latency histogram: every served request recorded, percentiles ordered.
  size_t lat = JsonObjectStart(json, "server.request_latency_ns");
  EXPECT_EQ(JsonNumber(json, "count", lat), static_cast<double>(submitted));
  double p50 = JsonNumber(json, "p50", lat);
  double p95 = JsonNumber(json, "p95", lat);
  double p99 = JsonNumber(json, "p99", lat);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);

  // Pipeline phase timers saw every full regeneration; the cached path
  // records refine only, so refine >= filter > 0.
  size_t filter = JsonObjectStart(json, "pipeline.filter_ns");
  size_t refine = JsonObjectStart(json, "pipeline.refine_ns");
  double filter_count = JsonNumber(json, "count", filter);
  double refine_count = JsonNumber(json, "count", refine);
  EXPECT_GT(filter_count, 0.0);
  EXPECT_GE(refine_count, filter_count);
  EXPECT_GT(JsonNumber(json, "pipeline.candidates_scored"), 0.0);

  // EIS cache rates exist and are valid probabilities.
  for (const char* source : {"weather", "availability", "traffic"}) {
    double rate = JsonNumber(
        json, "eis." + std::string(source) + ".cache.hit_rate");
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }

  // The registry counters are the same ones Stats() reads.
  OfferingServerStats stats = server.Stats();
  EXPECT_EQ(stats.served, submitted);
  EXPECT_EQ(static_cast<double>(stats.cache_adaptations),
            JsonNumber(json, "server.requests.cache_adaptations"));
}

}  // namespace
}  // namespace ecocharge
