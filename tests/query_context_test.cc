// QueryContext semantics: a context carries capacity, never results — so
// reusing one across queries must be invisible in the output — and once
// warm, the ranking path (exact-derouting refinement included) performs
// zero heap allocations per offering-table generation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/baselines.h"
#include "core/ecocharge.h"
#include "core/offering_service.h"
#include "resilience/resilient_information_server.h"
#include "server/client_store.h"
#include "server/corridor_cache.h"
#include "tests/test_util.h"

// Sanitizers interpose on the allocator; counting through a user-defined
// operator new both double-counts and fights their bookkeeping, so the
// allocation-regression check only runs in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ECOCHARGE_COUNT_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ECOCHARGE_COUNT_ALLOCS 0
#else
#define ECOCHARGE_COUNT_ALLOCS 1
#endif
#else
#define ECOCHARGE_COUNT_ALLOCS 1
#endif

#if ECOCHARGE_COUNT_ALLOCS

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

#endif  // ECOCHARGE_COUNT_ALLOCS

namespace ecocharge {
namespace {

using testing_util::TablesBitIdentical;

struct SharedWorld {
  std::unique_ptr<Environment> env;
  std::vector<VehicleState> states;
};

SharedWorld& World() {
  static SharedWorld world = [] {
    SharedWorld w;
    w.env = testing_util::TinyEnvironment(80);
    EXPECT_NE(w.env, nullptr);
    w.states = testing_util::TinyWorkload(*w.env, 8);
    EXPECT_FALSE(w.states.empty());
    return w;
  }();
  return world;
}

TEST(QueryContextTest, ReusedContextMatchesFreshOver100Queries) {
  SharedWorld& w = World();
  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  // Two rankers with identical configuration so their Dynamic Caches see
  // the same query sequence; one gets a fresh context per query, the
  // other reuses a single context (and output table) for all 100.
  EcoChargeRanker fresh_ranker(w.env->estimator.get(),
                               w.env->charger_index.get(),
                               ScoreWeights::AWE(), opts);
  EcoChargeRanker reused_ranker(w.env->estimator.get(),
                                w.env->charger_index.get(),
                                ScoreWeights::AWE(), opts);
  QueryContext reused_ctx;
  OfferingTable reused_table;
  for (int i = 0; i < 100; ++i) {
    const VehicleState& state = w.states[i % w.states.size()];
    QueryContext fresh_ctx;
    OfferingTable fresh_table;
    fresh_ranker.RankInto(state, 3, fresh_ctx, &fresh_table);
    reused_ranker.RankInto(state, 3, reused_ctx, &reused_table);
    EXPECT_TRUE(TablesBitIdentical(reused_table, fresh_table))
        << "query " << i;
  }
  // Both hit/miss sequences must also agree, or the comparison above
  // silently compared two different code paths.
  EXPECT_EQ(fresh_ranker.cache().hits(), reused_ranker.cache().hits());
  EXPECT_GT(reused_ranker.cache().hits(), 0u);
}

TEST(QueryContextTest, ReuseIsInvisibleAcrossRankers) {
  // The same context threaded through different ranker types must not leak
  // state between them.
  SharedWorld& w = World();
  QuadtreeRanker nearest(w.env->estimator.get(), w.env->charger_index.get(),
                         ScoreWeights::AWE());
  RandomRanker random(w.env->estimator.get(), w.env->charger_index.get(),
                      20000.0, /*seed=*/7);
  RandomRanker random_fresh(w.env->estimator.get(),
                            w.env->charger_index.get(), 20000.0, /*seed=*/7);
  QueryContext shared_ctx;
  OfferingTable table;
  for (const VehicleState& state : w.states) {
    nearest.RankInto(state, 3, shared_ctx, &table);  // dirty the buffers
    random.RankInto(state, 3, shared_ctx, &table);
    EXPECT_TRUE(TablesBitIdentical(table, random_fresh.Rank(state, 3)));
  }
}

TEST(QueryContextTest, ConvenienceRankMatchesRankInto) {
  SharedWorld& w = World();
  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  EcoChargeRanker a(w.env->estimator.get(), w.env->charger_index.get(),
                    ScoreWeights::AWE(), opts);
  EcoChargeRanker b(w.env->estimator.get(), w.env->charger_index.get(),
                    ScoreWeights::AWE(), opts);
  QueryContext ctx;
  OfferingTable table;
  for (const VehicleState& state : w.states) {
    b.RankInto(state, 3, ctx, &table);
    EXPECT_TRUE(TablesBitIdentical(a.Rank(state, 3), table));
  }
}

#if ECOCHARGE_COUNT_ALLOCS

TEST(QueryContextTest, SteadyStateEstimatedPathDoesNotAllocate) {
  SharedWorld& w = World();
  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  opts.q_distance_m = 0.0;  // full regeneration every query
  // Estimated-only path: no network searches at all.
  opts.refine_exact_derouting = false;
  EcoChargeRanker eco(w.env->estimator.get(), w.env->charger_index.get(),
                      ScoreWeights::AWE(), opts);
  QueryContext ctx;
  OfferingTable table;
  // Warm every buffer (context, cache storage, EIS caches) to the
  // workload's high-water mark.
  for (int pass = 0; pass < 3; ++pass) {
    for (const VehicleState& state : w.states) {
      eco.RankInto(state, 3, ctx, &table);
    }
  }
  uint64_t before = g_allocations.load();
  for (const VehicleState& state : w.states) {
    eco.RankInto(state, 3, ctx, &table);
  }
  uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

TEST(QueryContextTest, SteadyStateExactRefinementDoesNotAllocate) {
  // The exact derouting refinement used to be the documented exception to
  // the zero-allocation claim (it ran per-candidate Dijkstra). The sweep
  // workspaces and the batch scratch are persistent now, so the claim
  // covers refinement too — on both execution strategies.
  SharedWorld& w = World();
  for (bool batch : {true, false}) {
    EcoChargeOptions opts;
    opts.radius_m = 20000.0;
    opts.q_distance_m = 0.0;  // full regeneration every query
    opts.refine_exact_derouting = true;
    opts.batch_derouting = batch;
    EcoChargeRanker eco(w.env->estimator.get(), w.env->charger_index.get(),
                        ScoreWeights::AWE(), opts);
    QueryContext ctx;
    OfferingTable table;
    for (int pass = 0; pass < 3; ++pass) {
      for (const VehicleState& state : w.states) {
        eco.RankInto(state, 3, ctx, &table);
      }
    }
    uint64_t before = g_allocations.load();
    for (const VehicleState& state : w.states) {
      eco.RankInto(state, 3, ctx, &table);
    }
    uint64_t after = g_allocations.load();
    EXPECT_EQ(after - before, 0u) << "batch_derouting=" << batch;
  }
}

TEST(QueryContextTest, SteadyStateHoldsInBothSimdModes) {
  // The SoA score lanes live inside the context (plain std::vector, so
  // this file's counting operator new sees them): after warm-up neither
  // the vector kernels nor the scalar oracle may allocate per query.
  SharedWorld& w = World();
  for (bool use_simd : {true, false}) {
    EcoChargeOptions opts;
    opts.radius_m = 20000.0;
    opts.q_distance_m = 0.0;  // full regeneration every query
    opts.use_simd = use_simd;
    EcoChargeRanker eco(w.env->estimator.get(), w.env->charger_index.get(),
                        ScoreWeights::AWE(), opts);
    QueryContext ctx;
    OfferingTable table;
    for (int pass = 0; pass < 3; ++pass) {
      for (const VehicleState& state : w.states) {
        eco.RankInto(state, 3, ctx, &table);
      }
    }
    uint64_t before = g_allocations.load();
    for (const VehicleState& state : w.states) {
      eco.RankInto(state, 3, ctx, &table);
    }
    uint64_t after = g_allocations.load();
    EXPECT_EQ(after - before, 0u) << "use_simd=" << use_simd;
  }
}

TEST(QueryContextTest, SteadyStateCacheHitPathDoesNotAllocate) {
  SharedWorld& w = World();
  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  opts.q_distance_m = 1e9;  // every repeat query is a cache hit
  opts.cache_ttl_s = 1e12;
  EcoChargeRanker eco(w.env->estimator.get(), w.env->charger_index.get(),
                      ScoreWeights::AWE(), opts);
  QueryContext ctx;
  OfferingTable table;
  const VehicleState& state = w.states.front();
  for (int i = 0; i < 3; ++i) eco.RankInto(state, 3, ctx, &table);
  uint64_t before = g_allocations.load();
  for (int i = 0; i < 10; ++i) eco.RankInto(state, 3, ctx, &table);
  uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

TEST(QueryContextTest, SteadyStatePathWithMetricsDoesNotAllocate) {
  // Observability must not break the zero-allocation property: with phase
  // timers, pipeline counters, and estimator counters all attached (the
  // batched-refinement instrumentation included), the warm path still
  // performs zero heap allocations — metric registration is the cold
  // path, recording is relaxed atomics.
  SharedWorld& w = World();
  // Static, because the shared estimator keeps the counter handles after
  // this test ends; registration happens once, before any measurement.
  static obs::MetricsRegistry registry;
  w.env->estimator->AttachMetrics(&registry);
  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  opts.q_distance_m = 0.0;  // full regeneration every query
  EcoChargeRanker eco(w.env->estimator.get(), w.env->charger_index.get(),
                      ScoreWeights::AWE(), opts);
  eco.AttachMetrics(&registry);
  QueryContext ctx;
  OfferingTable table;
  for (int pass = 0; pass < 3; ++pass) {
    for (const VehicleState& state : w.states) {
      eco.RankInto(state, 3, ctx, &table);
    }
  }
  uint64_t before = g_allocations.load();
  for (const VehicleState& state : w.states) {
    eco.RankInto(state, 3, ctx, &table);
  }
  uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
  // The instrumentation actually fired while not allocating.
  EXPECT_GT(registry.FindHistogram("pipeline.filter_ns")->Snapshot().count,
            0u);
  EXPECT_GT(registry.FindCounter("pipeline.candidates_scored")->Value(), 0u);
  EXPECT_GT(registry.FindCounter("pipeline.simd.batches")->Value(), 0u);
  EXPECT_GT(registry.FindCounter("pipeline.simd.lanes")->Value(), 0u);
  EXPECT_GT(registry.FindCounter("estimator.estimates.level")->Value(), 0u);
  EXPECT_GT(
      registry.FindHistogram("pipeline.batch_derouting_ns")->Snapshot().count,
      0u);
  EXPECT_GT(registry.FindCounter("pipeline.batch_targets")->Value(), 0u);
}

TEST(QueryContextTest, SteadyStateResilientEisPathDoesNotAllocate) {
  // The resilience decorator must not cost the warm path its
  // zero-allocation property: with a fault-free ResilientInformationServer
  // behind the estimator, warm queries are fresh cache hits that never
  // touch the retry/breaker machinery's failure paths.
  SharedWorld& w = World();
  resilience::ResilientInformationServer eis(w.env->energy.get(),
                                             w.env->availability.get(),
                                             w.env->congestion.get());
  EcEstimatorOptions est_opts;
  EcEstimator estimator(w.env->dataset.network, &w.env->chargers,
                        w.env->energy.get(), w.env->availability.get(),
                        w.env->congestion.get(), est_opts, &eis);
  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  opts.q_distance_m = 0.0;  // full regeneration every query
  opts.refine_exact_derouting = false;
  EcoChargeRanker eco(&estimator, w.env->charger_index.get(),
                      ScoreWeights::AWE(), opts);
  QueryContext ctx;
  OfferingTable table;
  for (int pass = 0; pass < 3; ++pass) {
    for (const VehicleState& state : w.states) {
      eco.RankInto(state, 3, ctx, &table);
    }
  }
  uint64_t before = g_allocations.load();
  for (const VehicleState& state : w.states) {
    eco.RankInto(state, 3, ctx, &table);
  }
  uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
  // The decorated path really served the queries.
  EXPECT_GT(eis.Stats().availability_api_calls, 0u);
}

TEST(QueryContextTest, SteadyStateCorridorHitPathDoesNotAllocate) {
  // Fleet corridor serving: once a corridor table is cached and the reply
  // buffer has reached capacity, a hit is a field copy plus an
  // assign-into-capacity of the entries — zero heap allocations. This is
  // the path every warm fleet request takes with --corridor-cache on.
  SharedWorld& w = World();
  CorridorCacheOptions options;
  CorridorCache cache(w.env->dataset.network.get(), options);
  OfferingService service(w.env->estimator.get(), w.env->charger_index.get(),
                          ScoreWeights::AWE(), EcoChargeOptions{});
  WorldRevisions revisions;
  const VehicleState& state = w.states.front();
  uint64_t key = cache.KeyFor(state, 3, revisions);
  OfferingTable table;
  service.RankFresh(cache.CanonicalState(state), 3, &table);
  cache.Put(key, table, state.time);
  OfferingTable out;
  ASSERT_TRUE(cache.GetInto(key, state.time, &out));  // warm the buffer
  uint64_t before = g_allocations.load();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache.GetInto(key, state.time, &out));
  }
  uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_TRUE(TablesBitIdentical(out, table));
}

TEST(QueryContextTest, SteadyStateClientStoreLeasePathDoesNotAllocate) {
  // Fleet handoff serving: enqueue ticket, check the client's Dynamic
  // Cache state out, rank with it, check it back in. The lease moves by
  // O(1) state swaps and the warm rank is a cache adaptation, so the
  // whole cycle allocates nothing once the client record and the cached
  // solution exist.
  SharedWorld& w = World();
  ClientStore store(4);
  EcoChargeOptions opts;
  opts.radius_m = 20000.0;
  opts.q_distance_m = 1e9;  // every repeat query is a cache hit
  opts.cache_ttl_s = 1e12;
  OfferingService service(w.env->estimator.get(), w.env->charger_index.get(),
                          ScoreWeights::AWE(), opts);
  const VehicleState& state = w.states.front();
  DynamicCacheState lease;
  OfferingTable table;
  auto serve_once = [&](uint32_t shard) {
    bool handoff = false;
    uint64_t ticket = store.Enqueue(11, shard, state.time, &handoff);
    store.CheckOut(11, ticket, &lease);
    service.RankWithCache(state, 3, &lease, &table);
    store.CheckIn(11, ticket, &lease, state.time);
  };
  for (int i = 0; i < 3; ++i) serve_once(0);
  uint64_t before = g_allocations.load();
  // Alternate shards so every cycle is also a handoff — the handoff
  // bookkeeping itself must stay allocation-free.
  for (int i = 0; i < 10; ++i) serve_once((i + 1) % 2);
  uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_TRUE(table.adapted_from_cache);
  EXPECT_EQ(store.Stats().handoffs, 10u);
}

#endif  // ECOCHARGE_COUNT_ALLOCS

}  // namespace
}  // namespace ecocharge
