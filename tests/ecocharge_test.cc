#include "core/ecocharge.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

class EcoChargeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(60);
    ASSERT_NE(env_, nullptr);
    states_ = testing_util::TinyWorkload(*env_, 6);
    ASSERT_GE(states_.size(), 2u);
    weights_ = ScoreWeights::AWE();
  }

  EcoChargeOptions DefaultOpts() {
    EcoChargeOptions opts;
    opts.radius_m = 50000.0;
    opts.q_distance_m = 5000.0;
    return opts;
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
  ScoreWeights weights_;
};

TEST_F(EcoChargeTest, ProducesRankedTables) {
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, DefaultOpts());
  for (const VehicleState& state : states_) {
    OfferingTable table = eco.Rank(state, 3);
    EXPECT_LE(table.size(), 3u);
    EXPECT_FALSE(table.empty());
    for (size_t i = 1; i < table.size(); ++i) {
      EXPECT_GE(table.entries[i - 1].SortKey(), table.entries[i].SortKey());
    }
    EXPECT_EQ(table.generated_at, state.time);
    EXPECT_EQ(table.segment_index, state.segment_index);
  }
}

TEST_F(EcoChargeTest, CacheAdaptsNearbyQueries) {
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, DefaultOpts());
  OfferingTable first = eco.Rank(states_[0], 3);
  EXPECT_FALSE(first.adapted_from_cache);
  // Same position a minute later: must be adapted.
  VehicleState nearby = states_[0];
  nearby.time += 60.0;
  OfferingTable second = eco.Rank(nearby, 3);
  EXPECT_TRUE(second.adapted_from_cache);
  EXPECT_EQ(eco.cache().hits(), 1u);
}

TEST_F(EcoChargeTest, FarQueryRegenerates) {
  EcoChargeOptions opts = DefaultOpts();
  opts.q_distance_m = 1000.0;
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, opts);
  eco.Rank(states_[0], 3);
  VehicleState far = states_[0];
  far.position = far.position + Point{5000.0, 0.0};
  OfferingTable table = eco.Rank(far, 3);
  EXPECT_FALSE(table.adapted_from_cache);
}

TEST_F(EcoChargeTest, ResetClearsCache) {
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, DefaultOpts());
  eco.Rank(states_[0], 3);
  eco.Reset();
  OfferingTable table = eco.Rank(states_[0], 3);
  EXPECT_FALSE(table.adapted_from_cache);
}

TEST_F(EcoChargeTest, CachedTableUsesCachedCandidateSet) {
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, DefaultOpts());
  OfferingTable first = eco.Rank(states_[0], 3);
  VehicleState nearby = states_[0];
  nearby.time += 30.0;
  OfferingTable second = eco.Rank(nearby, 3);
  ASSERT_TRUE(second.adapted_from_cache);
  // Same conditions seconds later: the adapted table must keep the same
  // leaders (forecasts are stable within a 15-minute bucket).
  EXPECT_EQ(first.ChargerIds()[0], second.ChargerIds()[0]);
}

TEST_F(EcoChargeTest, NearOptimalAgainstBruteForce) {
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, DefaultOpts());
  BruteForceRanker brute(env_->estimator.get(), weights_);
  double eco_total = 0.0, brute_total = 0.0;
  for (const VehicleState& state : states_) {
    for (ChargerId id : eco.Rank(state, 3).ChargerIds()) {
      eco_total +=
          env_->estimator->ReferenceScore(state, env_->chargers[id], weights_);
    }
    for (ChargerId id : brute.Rank(state, 3).ChargerIds()) {
      brute_total +=
          env_->estimator->ReferenceScore(state, env_->chargers[id], weights_);
    }
  }
  EXPECT_LE(eco_total, brute_total + 1e-9);
  EXPECT_GE(eco_total, 0.90 * brute_total);  // near-optimal (paper: 97.5-99%)
}

TEST_F(EcoChargeTest, SmallRadiusRestrictsChoices) {
  EcoChargeOptions opts = DefaultOpts();
  opts.radius_m = 6000.0;
  // Disable cache adaptation: cached candidate sets may legitimately
  // drift up to R + Q from the current position.
  opts.q_distance_m = 0.0;
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, opts);
  for (const VehicleState& state : states_) {
    OfferingTable table = eco.Rank(state, 3);
    for (ChargerId id : table.ChargerIds()) {
      EXPECT_LE(Distance(env_->chargers[id].position, state.position),
                opts.radius_m + 1e-9);
    }
  }
}

TEST_F(EcoChargeTest, DeterministicAcrossRuns) {
  EcoChargeRanker a(env_->estimator.get(), env_->charger_index.get(),
                    weights_, DefaultOpts());
  EcoChargeRanker b(env_->estimator.get(), env_->charger_index.get(),
                    weights_, DefaultOpts());
  for (const VehicleState& state : states_) {
    EXPECT_EQ(a.Rank(state, 3).ChargerIds(), b.Rank(state, 3).ChargerIds());
  }
}

TEST_F(EcoChargeTest, WeightsChangeTheRanking) {
  EcoChargeRanker level_only(env_->estimator.get(),
                             env_->charger_index.get(), ScoreWeights::OSC(),
                             DefaultOpts());
  EcoChargeRanker derouting_only(env_->estimator.get(),
                                 env_->charger_index.get(),
                                 ScoreWeights::ODC(), DefaultOpts());
  bool any_difference = false;
  for (const VehicleState& state : states_) {
    if (level_only.Rank(state, 3).ChargerIds() !=
        derouting_only.Rank(state, 3).ChargerIds()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ecocharge
