#include "energy/grid.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(GridCarbonTest, NoonDipEveningPeak) {
  GridCarbonModel model;
  double noon = model.IntensityAt(13.0 * kSecondsPerHour);
  double evening = model.IntensityAt(19.5 * kSecondsPerHour);
  double night = model.IntensityAt(3.0 * kSecondsPerHour);
  EXPECT_LT(noon, night);
  EXPECT_GT(evening, night);
  EXPECT_GT(evening, noon);
}

TEST(GridCarbonTest, FlatWhenSwingIsZero) {
  GridCarbonModel model;
  model.diurnal_swing = 0.0;
  for (int h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(model.IntensityAt(h * kSecondsPerHour),
                     model.average_kg_per_kwh);
  }
}

TEST(GridCarbonTest, IntensityNeverNegative) {
  GridCarbonModel model;
  model.diurnal_swing = 2.0;  // exaggerated swing
  for (double h = 0.0; h < 24.0; h += 0.25) {
    EXPECT_GE(model.IntensityAt(h * kSecondsPerHour), 0.0);
  }
}

TEST(GridCarbonTest, AvoidedScalesWithEnergy) {
  GridCarbonModel model;
  SimTime t = 12.0 * kSecondsPerHour;
  double one = model.AvoidedKg(1.0, t, 3600.0);
  double ten = model.AvoidedKg(10.0, t, 3600.0);
  EXPECT_NEAR(ten, 10.0 * one, 1e-9);
  EXPECT_EQ(model.AvoidedKg(0.0, t, 3600.0), 0.0);
  EXPECT_EQ(model.AvoidedKg(-1.0, t, 3600.0), 0.0);
}

TEST(GridCarbonTest, WindowAveragesTheCurve) {
  GridCarbonModel model;
  // Charging across the evening peak must credit more CO2 than the same
  // kWh at the midday dip.
  double evening = model.AvoidedKg(5.0, 18.5 * kSecondsPerHour,
                                   2.0 * kSecondsPerHour);
  double midday =
      model.AvoidedKg(5.0, 12.0 * kSecondsPerHour, 2.0 * kSecondsPerHour);
  EXPECT_GT(evening, midday);
}

TEST(GridCarbonTest, ZeroDurationUsesPointIntensity) {
  GridCarbonModel model;
  SimTime t = 10.0 * kSecondsPerHour;
  EXPECT_DOUBLE_EQ(model.AvoidedKg(2.0, t, 0.0),
                   2.0 * model.IntensityAt(t));
}

TEST(GridCarbonTest, WrapAroundMidnightContinuous) {
  GridCarbonModel model;
  double before = model.IntensityAt(23.95 * kSecondsPerHour);
  double after = model.IntensityAt(24.05 * kSecondsPerHour);
  EXPECT_NEAR(before, after, 0.01);
}

}  // namespace
}  // namespace ecocharge
