#include "common/statistics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ecocharge {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  // Sum of squared deviations from the mean (5.0) is 32 over n = 8
  // samples: sample variance 32/7, population variance 32/8 = 4.
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.population_variance(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, VarianceAndStddevAgree) {
  // The bug this pins against: variance() used the population convention
  // while stddev() used the sample convention, so stddev^2 != variance.
  RunningStats s;
  for (double v : {1.0, 2.0, 6.0}) s.Add(v);
  EXPECT_NEAR(s.stddev() * s.stddev(), s.variance(), 1e-12);
  EXPECT_LT(s.population_variance(), s.variance());
}

TEST(RunningStatsTest, MatchesNaiveComputation) {
  Rng rng(77);
  std::vector<double> values;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextGaussian(3.0, 2.0);
    values.push_back(v);
    s.Add(v);
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  double mean = sum / values.size();
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.stddev(), std::sqrt(sq / (values.size() - 1)), 1e-9);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(78);
  RunningStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble(-10.0, 10.0);
    all.Add(v);
    (i % 2 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), 2.0);
}

}  // namespace
}  // namespace ecocharge
