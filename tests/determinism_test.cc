// Reproducibility guarantees: the entire pipeline — dataset synthesis,
// forecasts, ranking, evaluation — is a pure function of its seeds.
// Parameterized over all four datasets.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/ecocharge.h"
#include "core/environment.h"
#include "core/workload.h"

namespace ecocharge {
namespace {

class DeterminismTest : public ::testing::TestWithParam<DatasetKind> {
 protected:
  static std::unique_ptr<Environment> Make(DatasetKind kind, uint64_t seed) {
    EnvironmentOptions opts;
    opts.kind = kind;
    opts.dataset_scale = 0.003;
    opts.num_chargers = 40;
    opts.seed = seed;
    auto result = MakeEnvironment(opts);
    EXPECT_TRUE(result.ok());
    return result.ok() ? std::move(result).MoveValueUnsafe() : nullptr;
  }
};

TEST_P(DeterminismTest, IdenticalWorldsFromIdenticalSeeds) {
  auto a = Make(GetParam(), 11);
  auto b = Make(GetParam(), 11);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->dataset.network->NumNodes(), b->dataset.network->NumNodes());
  ASSERT_EQ(a->chargers.size(), b->chargers.size());
  for (size_t i = 0; i < a->chargers.size(); ++i) {
    EXPECT_EQ(a->chargers[i].node, b->chargers[i].node);
    EXPECT_EQ(a->chargers[i].pv_capacity_kw, b->chargers[i].pv_capacity_kw);
  }
  ASSERT_EQ(a->dataset.trajectories.size(), b->dataset.trajectories.size());
}

TEST_P(DeterminismTest, RankingsReproduceAcrossProcWorlds) {
  auto a = Make(GetParam(), 11);
  auto b = Make(GetParam(), 11);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  WorkloadOptions wo;
  wo.max_trips = 2;
  wo.max_states = 3;
  auto states_a = BuildWorkload(a->dataset, wo);
  auto states_b = BuildWorkload(b->dataset, wo);
  ASSERT_EQ(states_a.size(), states_b.size());
  ASSERT_FALSE(states_a.empty());

  ScoreWeights w = ScoreWeights::AWE();
  BruteForceRanker brute_a(a->estimator.get(), w);
  BruteForceRanker brute_b(b->estimator.get(), w);
  EcoChargeRanker eco_a(a->estimator.get(), a->charger_index.get(), w,
                        EcoChargeOptions{});
  EcoChargeRanker eco_b(b->estimator.get(), b->charger_index.get(), w,
                        EcoChargeOptions{});
  for (size_t i = 0; i < states_a.size(); ++i) {
    EXPECT_EQ(brute_a.Rank(states_a[i], 3).ChargerIds(),
              brute_b.Rank(states_b[i], 3).ChargerIds());
    EXPECT_EQ(eco_a.Rank(states_a[i], 3).ChargerIds(),
              eco_b.Rank(states_b[i], 3).ChargerIds());
  }
}

TEST_P(DeterminismTest, DifferentSeedsDiffer) {
  auto a = Make(GetParam(), 11);
  auto b = Make(GetParam(), 12);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  bool any_difference =
      a->chargers.size() != b->chargers.size() ||
      a->dataset.trajectories.size() != b->dataset.trajectories.size();
  for (size_t i = 0; !any_difference && i < a->chargers.size(); ++i) {
    if (a->chargers[i].node != b->chargers[i].node ||
        a->chargers[i].pv_capacity_kw != b->chargers[i].pv_capacity_kw) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DeterminismTest,
                         ::testing::ValuesIn(AllDatasetKinds()),
                         [](const auto& info) {
                           std::string n(DatasetName(info.param));
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

}  // namespace
}  // namespace ecocharge
