#include "common/table_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(TableWriterTest, RejectsWrongArity) {
  TableWriter t({"a", "b"});
  EXPECT_FALSE(t.AddRow({"only-one"}).ok());
  EXPECT_TRUE(t.AddRow({"x", "y"}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableWriterTest, TextRenderingAlignsColumns) {
  TableWriter t({"name", "v"});
  ASSERT_TRUE(t.AddRow({"long-name-here", "1"}).ok());
  ASSERT_TRUE(t.AddRow({"x", "22"}).ok());
  std::ostringstream os;
  t.RenderText(os);
  std::istringstream is(os.str());
  std::string line;
  std::vector<size_t> lengths;
  while (std::getline(is, line)) lengths.push_back(line.size());
  ASSERT_EQ(lengths.size(), 4u);  // header + separator + 2 rows
  EXPECT_EQ(lengths[0], lengths[2]);
  EXPECT_EQ(lengths[0], lengths[3]);
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter t({"a"});
  ASSERT_TRUE(t.AddRow({"has,comma"}).ok());
  ASSERT_TRUE(t.AddRow({"has\"quote"}).ok());
  ASSERT_TRUE(t.AddRow({"plain"}).ok());
  std::ostringstream os;
  t.RenderCsv(os);
  EXPECT_EQ(os.str(), "a\n\"has,comma\"\n\"has\"\"quote\"\nplain\n");
}

TEST(TableWriterTest, FmtPrecision) {
  EXPECT_EQ(TableWriter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::Fmt(3.0, 0), "3");
  EXPECT_EQ(TableWriter::Fmt(-1.005, 1), "-1.0");
}

TEST(TableWriterTest, WriteCsvFileRoundTrips) {
  TableWriter t({"k", "v"});
  ASSERT_TRUE(t.AddRow({"a", "1"}).ok());
  std::string path = ::testing::TempDir() + "/table_writer_test.csv";
  ASSERT_TRUE(t.WriteCsvFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "k,v\na,1\n");
  std::remove(path.c_str());
}

TEST(TableWriterTest, WriteCsvFileFailsOnBadPath) {
  TableWriter t({"a"});
  EXPECT_FALSE(t.WriteCsvFile("/nonexistent-dir-xyz/file.csv").ok());
}

}  // namespace
}  // namespace ecocharge
