#include "core/dynamic_cache.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

std::vector<ScoredCandidate> Candidates(std::vector<ChargerId> ids) {
  std::vector<ScoredCandidate> out;
  for (ChargerId id : ids) {
    ScoredCandidate c;
    c.charger_id = id;
    out.push_back(c);
  }
  return out;
}

std::vector<ChargerId> Ids(const std::vector<ScoredCandidate>& candidates) {
  std::vector<ChargerId> out;
  for (const ScoredCandidate& c : candidates) out.push_back(c.charger_id);
  return out;
}

DynamicCacheOptions Opts(double q = 5000.0, double ttl = 900.0) {
  DynamicCacheOptions o;
  o.q_distance_m = q;
  o.ttl_s = ttl;
  return o;
}

TEST(DynamicCacheTest, ColdCacheMisses) {
  DynamicCache cache(Opts());
  EXPECT_EQ(cache.TryReuse({0, 0}, 0.0), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(DynamicCacheTest, HitWithinQAndTtl) {
  DynamicCache cache(Opts());
  cache.Store({0, 0}, 100.0, Candidates({1, 2, 3}));
  const std::vector<ScoredCandidate>* candidates =
      cache.TryReuse({3000.0, 0.0}, 200.0);
  ASSERT_NE(candidates, nullptr);
  EXPECT_EQ(Ids(*candidates), (std::vector<ChargerId>{1, 2, 3}));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(DynamicCacheTest, MissBeyondQ) {
  DynamicCache cache(Opts(5000.0));
  cache.Store({0, 0}, 100.0, Candidates({1}));
  EXPECT_EQ(cache.TryReuse({5001.0, 0.0}, 100.0), nullptr);
  // Exactly at Q still hits.
  EXPECT_NE(cache.TryReuse({5000.0, 0.0}, 100.0), nullptr);
}

TEST(DynamicCacheTest, MissAfterTtl) {
  DynamicCache cache(Opts(5000.0, 900.0));
  cache.Store({0, 0}, 100.0, Candidates({1}));
  EXPECT_NE(cache.TryReuse({0, 0}, 1000.0), nullptr);   // age 900 = ttl
  EXPECT_EQ(cache.TryReuse({0, 0}, 1000.1), nullptr);   // age > ttl
}

TEST(DynamicCacheTest, TimeTravelInvalidates) {
  // A query before the stored timestamp means the simulation restarted;
  // the cached solution belongs to a different epoch.
  DynamicCache cache(Opts());
  cache.Store({0, 0}, 1000.0, Candidates({1}));
  EXPECT_EQ(cache.TryReuse({0, 0}, 500.0), nullptr);
}

TEST(DynamicCacheTest, StoreReplacesSolution) {
  DynamicCache cache(Opts());
  cache.Store({0, 0}, 100.0, Candidates({1}));
  cache.Store({10000.0, 0.0}, 200.0, Candidates({9}));
  EXPECT_EQ(cache.TryReuse({0, 0}, 200.0), nullptr);  // old anchor gone
  const auto* candidates = cache.TryReuse({10000.0, 0.0}, 200.0);
  ASSERT_NE(candidates, nullptr);
  EXPECT_EQ(candidates->front().charger_id, 9u);
}

TEST(DynamicCacheTest, ClearDropsSolution) {
  DynamicCache cache(Opts());
  cache.Store({0, 0}, 100.0, Candidates({1}));
  cache.Clear();
  EXPECT_EQ(cache.TryReuse({0, 0}, 100.0), nullptr);
}

TEST(DynamicCacheTest, HitRateTracksCounters) {
  DynamicCache cache(Opts());
  cache.TryReuse({0, 0}, 0.0);  // miss
  cache.Store({0, 0}, 0.0, Candidates({1}));
  cache.TryReuse({0, 0}, 1.0);  // hit
  cache.TryReuse({0, 0}, 2.0);  // hit
  EXPECT_NEAR(cache.HitRate(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace ecocharge
