#include "common/simtime.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(SimTimeTest, EpochIsMondayMidnight) {
  EXPECT_EQ(DayOfWeek(0.0), 0);
  EXPECT_DOUBLE_EQ(HourOfDay(0.0), 0.0);
  EXPECT_EQ(DayOfYear(0.0), kEpochDayOfYear);
}

TEST(SimTimeTest, HourOfDayProgresses) {
  EXPECT_DOUBLE_EQ(HourOfDay(kSecondsPerHour * 7.5), 7.5);
  EXPECT_DOUBLE_EQ(HourOfDay(kSecondsPerDay + kSecondsPerHour * 3.0), 3.0);
}

TEST(SimTimeTest, DayOfWeekWraps) {
  EXPECT_EQ(DayOfWeek(kSecondsPerDay * 4.5), 4);      // Friday
  EXPECT_EQ(DayOfWeek(kSecondsPerDay * 6.99), 6);     // Sunday
  EXPECT_EQ(DayOfWeek(kSecondsPerWeek), 0);           // Monday again
  EXPECT_EQ(DayOfWeek(kSecondsPerWeek * 3 + kSecondsPerDay), 1);
}

TEST(SimTimeTest, DayOfYearAdvancesAndWraps) {
  EXPECT_EQ(DayOfYear(kSecondsPerDay), kEpochDayOfYear + 1);
  // 365 days later we are back at the epoch day.
  EXPECT_EQ(DayOfYear(kSecondsPerDay * 365), kEpochDayOfYear);
  // Enough days to wrap past December 31.
  int doy = DayOfYear(kSecondsPerDay * 250);
  EXPECT_GE(doy, 1);
  EXPECT_LE(doy, 365);
}

TEST(SimTimeTest, HourOfWeekBuckets) {
  EXPECT_EQ(HourOfWeek(0.0), 0);
  EXPECT_EQ(HourOfWeek(kSecondsPerHour * 25.0), 25);
  EXPECT_EQ(HourOfWeek(kSecondsPerWeek - 1.0), 167);
  EXPECT_EQ(HourOfWeek(kSecondsPerWeek), 0);
}

TEST(SimTimeTest, NegativeTimesAreNormalized) {
  EXPECT_GE(HourOfDay(-3600.0), 0.0);
  EXPECT_LT(HourOfDay(-3600.0), 24.0);
  EXPECT_GE(DayOfWeek(-1.0), 0);
  EXPECT_LE(DayOfWeek(-1.0), 6);
}

}  // namespace
}  // namespace ecocharge
