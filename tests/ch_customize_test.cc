// Customization subsystem: bitwise parity of the serial, level-parallel,
// and incremental sweeps; class-mask closure semantics on a graph where
// the closure is provably confined; shared-cache dedup under concurrent
// workers (the TSan hammer — scripts/check.sh chpar runs this suite under
// -fsanitize=thread); and end-to-end Offering Table / ETA-window parity
// across derouting backends and sweep strategies. Parity here means
// memcmp-identical doubles, the same contract ch_test.cc holds ChQuery to.

#include "ch/ch_customize.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "ch/ch_index.h"
#include "ch/contraction.h"
#include "core/offering_service.h"
#include "graph/generators.h"
#include "graph/road_network.h"
#include "tests/test_util.h"
#include "traffic/congestion.h"
#include "traffic/derouting.h"

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> SmallRgg(uint64_t seed, size_t nodes = 300) {
  RandomGeometricOptions opts;
  opts.num_nodes = nodes;
  opts.k_nearest = 3;
  opts.seed = seed;
  return MakeRandomGeometric(opts).MoveValueUnsafe();
}

ChClassWeights CongestedWeights(const CongestionModel& congestion,
                                SimTime tau) {
  ChClassWeights w;
  for (int c = 0; c < kChNumClasses; ++c) {
    w.w[c] = 1.0 / congestion.ActualSpeedFactor(static_cast<RoadClass>(c), tau);
  }
  return w;
}

::testing::AssertionResult PlanesSameBits(const ChCustomization& a,
                                          const ChCustomization& b) {
  if (a.cw_up.size() != b.cw_up.size() ||
      a.cw_down.size() != b.cw_down.size()) {
    return ::testing::AssertionFailure() << "plane sizes differ";
  }
  if (std::memcmp(a.cw_up.data(), b.cw_up.data(),
                  a.cw_up.size() * sizeof(double)) != 0 ||
      std::memcmp(a.cw_down.data(), b.cw_down.data(),
                  a.cw_down.size() * sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << "arc costs differ";
  }
  if (std::memcmp(a.via_up.data(), b.via_up.data(),
                  a.via_up.size() * sizeof(NodeId)) != 0 ||
      std::memcmp(a.via_down.data(), b.via_down.data(),
                  a.via_down.size() * sizeof(NodeId)) != 0) {
    return ::testing::AssertionFailure() << "via assignments differ";
  }
  return ::testing::AssertionSuccess();
}

TEST(ChCustomizerTest, SerialParallelIncrementalBitIdentical) {
  for (uint64_t seed : {3u, 17u}) {
    auto network = SmallRgg(seed);
    auto ch = BuildChIndex(*network).MoveValueUnsafe();
    CongestionModel congestion(seed);

    ChCustomizer serial(*ch, 0);
    ChCustomizer par2(*ch, 2);
    ChCustomizer par4(*ch, 4);
    ChCustomizer inc(*ch, 0);
    std::shared_ptr<const ChCustomization> prev;
    for (double hour : {2.0, 8.5, 13.0, 17.5}) {
      const ChClassWeights w = CongestedWeights(congestion, hour * 3600.0);
      auto s = serial.Customize(w);
      EXPECT_TRUE(PlanesSameBits(*s, *par2.Customize(w))) << "2 threads";
      EXPECT_TRUE(PlanesSameBits(*s, *par4.Customize(w))) << "4 threads";
      EXPECT_TRUE(PlanesSameBits(*s, *inc.CustomizeFrom(prev, w)))
          << "incremental from previous bucket";
      prev = std::move(s);
    }
  }
}

TEST(ChCustomizerTest, UnchangedWeightsReturnBaseUnbuilt) {
  auto network = SmallRgg(5, 150);
  auto ch = BuildChIndex(*network).MoveValueUnsafe();
  ChCustomizer customizer(*ch, 0);
  auto base = customizer.Customize(kChLengthWeights);
  bool incremental = true;
  auto again = customizer.CustomizeFrom(base, kChLengthWeights, &incremental);
  EXPECT_EQ(again.get(), base.get());
}

/// A local-road grid with one highway spur and one arterial spur, each
/// attached at a single node. No triangle can contain a spur arc without
/// both enclosing endpoints inside the spur, so the grid core's class-mask
/// closure must exclude the spur classes entirely — the invariant the
/// incremental sweep's dirty estimate rests on.
std::shared_ptr<RoadNetwork> SpurGrid(int n, int spur_len) {
  GraphBuilder b;
  std::vector<NodeId> grid(static_cast<size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      grid[static_cast<size_t>(y) * n + x] =
          b.AddNode(Point{x * 500.0, y * 500.0});
    }
  }
  auto at = [&](int x, int y) { return grid[static_cast<size_t>(y) * n + x]; };
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x + 1 < n; ++x) {
      EXPECT_TRUE(
          b.AddBidirectional(at(x, y), at(x + 1, y), RoadClass::kLocal).ok());
    }
  }
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y + 1 < n; ++y) {
      EXPECT_TRUE(
          b.AddBidirectional(at(x, y), at(x, y + 1), RoadClass::kLocal).ok());
    }
  }
  for (int s = 0; s < 2; ++s) {
    const RoadClass rc = s == 0 ? RoadClass::kHighway : RoadClass::kArterial;
    NodeId prev = at(s * (n - 1), 0);
    for (int i = 1; i <= spur_len; ++i) {
      const NodeId next =
          b.AddNode(Point{s * (n - 1) * 500.0, -i * 300.0});
      EXPECT_TRUE(b.AddBidirectional(prev, next, rc).ok());
      prev = next;
    }
  }
  return b.Build().MoveValueUnsafe();
}

TEST(ChCustomizerTest, MaskClosureConfinedToSpursAndIncrementalRuns) {
  constexpr int kN = 12;
  constexpr int kSpurLen = 4;
  auto network = SpurGrid(kN, kSpurLen);
  auto ch = BuildChIndex(*network).MoveValueUnsafe();
  ChCustomizer customizer(*ch, 0);

  const uint8_t delta_mask =
      static_cast<uint8_t>((1u << static_cast<int>(RoadClass::kHighway)) |
                           (1u << static_cast<int>(RoadClass::kArterial)));
  // The dirty estimate is the per-record mask intersection count...
  size_t dirty_by_mask = 0;
  for (size_t i = 0; i < ch->NumUpArcs(); ++i) {
    if (customizer.UpArcMask(i) & delta_mask) ++dirty_by_mask;
  }
  for (size_t i = 0; i < ch->NumDownArcs(); ++i) {
    if (customizer.DownArcMask(i) & delta_mask) ++dirty_by_mask;
  }
  EXPECT_EQ(customizer.DirtyArcEstimate(delta_mask), dirty_by_mask);

  // ...and the closure stays inside the two spur appendages: at most the
  // spur arcs themselves plus shortcuts among spur/attachment nodes —
  // a dead-end chain contracts with no shortcuts, so a generous bound is
  // a handful of records per spur hop out of ~thousands in the grid.
  EXPECT_GT(dirty_by_mask, 0u);
  EXPECT_LE(dirty_by_mask, static_cast<size_t>(8 * kSpurLen));
  EXPECT_LT(dirty_by_mask, customizer.total_arcs() / 10);

  // A highway+arterial re-price therefore takes the incremental path and
  // still matches a full sweep bit-for-bit.
  CongestionModel congestion(11);
  const ChClassWeights base_w = CongestedWeights(congestion, 9.0 * 3600.0);
  ChClassWeights delta_w = base_w;
  delta_w.w[static_cast<int>(RoadClass::kHighway)] *= 1.4;
  delta_w.w[static_cast<int>(RoadClass::kArterial)] *= 1.15;
  auto base = customizer.Customize(base_w);
  bool incremental = false;
  auto repriced = customizer.CustomizeFrom(base, delta_w, &incremental);
  EXPECT_TRUE(incremental);
  ChCustomizer fresh(*ch, 0);
  EXPECT_TRUE(PlanesSameBits(*fresh.Customize(delta_w), *repriced));

  // An all-class delta falls back to the full sweep (and still matches).
  ChClassWeights all_w = base_w;
  for (int c = 0; c < kChNumClasses; ++c) all_w.w[c] *= 1.0 + 0.05 * (c + 1);
  incremental = true;
  auto full = customizer.CustomizeFrom(base, all_w, &incremental);
  EXPECT_FALSE(incremental);
  EXPECT_TRUE(PlanesSameBits(*fresh.Customize(all_w), *full));
}

TEST(ChCustomizationCacheTest, ConcurrentWorkersDedupAcrossBucketBoundaries) {
  auto network = SmallRgg(23, 200);
  auto ch = BuildChIndex(*network).MoveValueUnsafe();
  CongestionModel congestion(23);

  // Planes for 6 buckets, hammered by 4 workers that cross bucket
  // boundaries in different orders, against a cache that can only hold 4 —
  // eviction churn while other workers still hold evicted planes is the
  // lifetime race TSan watches for.
  std::vector<ChClassWeights> buckets;
  for (int j = 0; j < 6; ++j) {
    buckets.push_back(CongestedWeights(congestion, (6.0 + j) * 3600.0));
  }
  ChCustomizationCache cache(*ch, /*threads=*/0, /*max_planes=*/4);
  ChCustomizer reference(*ch, 0);

  constexpr size_t kWorkers = 4;
  std::atomic<uint64_t> built_here{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  for (size_t wkr = 0; wkr < kWorkers; ++wkr) {
    workers.emplace_back([&, wkr] {
      for (size_t round = 0; round < 3; ++round) {
        for (size_t j = 0; j < buckets.size(); ++j) {
          // Different traversal order per worker: forward, backward, ...
          const size_t idx =
              wkr % 2 == 0 ? j : buckets.size() - 1 - j;
          bool built = false;
          auto plane = cache.Get(buckets[idx], &built);
          if (built) built_here.fetch_add(1);
          if (plane == nullptr ||
              plane->weights.w[0] != buckets[idx].w[0]) {
            failed.store(true);
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_FALSE(failed.load());

  // Eviction (capacity 4 < 6 buckets, opposed traversal orders) thrashes
  // by design — the accounting must still balance: per-call `built` flags
  // sum to exactly the sweeps run, every request is a hit or a miss, and
  // capacity holds.
  const uint64_t requests = kWorkers * 3 * buckets.size();
  EXPECT_EQ(cache.builds(), built_here.load());
  EXPECT_EQ(cache.hits() + cache.misses(), requests);
  EXPECT_LE(cache.size(), 4u);

  // Cached planes are real customizations, not stale table slots.
  for (const ChClassWeights& w : buckets) {
    EXPECT_TRUE(PlanesSameBits(*reference.Customize(w), *cache.Get(w)));
  }
}

TEST(ChCustomizationCacheTest, DedupCollapsesPerWorkerSweepsWithoutEviction) {
  auto network = SmallRgg(29, 200);
  auto ch = BuildChIndex(*network).MoveValueUnsafe();
  CongestionModel congestion(29);
  std::vector<ChClassWeights> buckets;
  for (int j = 0; j < 4; ++j) {
    buckets.push_back(CongestedWeights(congestion, (7.0 + 3 * j) * 3600.0));
  }
  // Default capacity (64) — no eviction, so however many workers race,
  // each bucket costs exactly one sweep: the (N-1)/N dedup contract the
  // bench gate (bench_micro_ch_customize) holds as a floor.
  ChCustomizationCache cache(*ch, /*threads=*/0);
  constexpr size_t kWorkers = 6;
  std::vector<std::thread> workers;
  for (size_t wkr = 0; wkr < kWorkers; ++wkr) {
    workers.emplace_back([&] {
      for (const ChClassWeights& w : buckets) {
        if (cache.Get(w) == nullptr) std::abort();
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(cache.builds(), buckets.size());
  EXPECT_EQ(cache.size(), buckets.size());
  EXPECT_EQ(cache.hits() + cache.misses(), kWorkers * buckets.size());
}

std::unique_ptr<Environment> BackendEnvironment(DeroutingBackend backend,
                                                int ch_threads,
                                                bool shared_cache,
                                                double bucket_s = 0.0) {
  EnvironmentOptions opts;
  opts.kind = DatasetKind::kOldenburg;
  opts.dataset_scale = 0.003;
  opts.num_chargers = 40;
  opts.max_derouting_m = 60000.0;
  opts.seed = 42;
  opts.derouting_backend = backend;
  opts.ch_threads = ch_threads;
  opts.ch_shared_cache = shared_cache;
  opts.exact_derouting_bucket_s = bucket_s;
  auto result = MakeEnvironment(opts);
  EXPECT_TRUE(result.ok());
  return result.ok() ? std::move(result).MoveValueUnsafe() : nullptr;
}

TEST(ChCustomizeParityTest, OfferingTablesBitIdenticalAcrossStrategies) {
  // Exact backend vs CH with: serial sweeps, 4-thread sweeps, a shared
  // plane cache, and no cache (per-worker incremental customizers). One
  // Offering Table contract: same bits everywhere.
  auto exact = BackendEnvironment(DeroutingBackend::kExact, 0, false);
  auto ch_serial = BackendEnvironment(DeroutingBackend::kCh, 0, false);
  auto ch_par = BackendEnvironment(DeroutingBackend::kCh, 4, false);
  auto ch_cached = BackendEnvironment(DeroutingBackend::kCh, 0, true);
  ASSERT_NE(exact, nullptr);
  ASSERT_NE(ch_serial, nullptr);
  ASSERT_NE(ch_par, nullptr);
  ASSERT_NE(ch_cached, nullptr);

  auto states = testing_util::TinyWorkload(*exact, 5);
  ASSERT_FALSE(states.empty());

  auto rank = [](Environment& env, const VehicleState& state) {
    OfferingService service(env.estimator.get(), env.charger_index.get(),
                            ScoreWeights::AWE(), EcoChargeOptions{});
    OfferingTable table;
    service.RankFresh(state, 5, &table);
    return table;
  };
  for (const VehicleState& state : states) {
    const OfferingTable want = rank(*exact, state);
    EXPECT_TRUE(testing_util::TablesBitIdentical(want, rank(*ch_serial, state)))
        << "ch serial";
    EXPECT_TRUE(testing_util::TablesBitIdentical(want, rank(*ch_par, state)))
        << "ch 4-thread";
    EXPECT_TRUE(testing_util::TablesBitIdentical(want, rank(*ch_cached, state)))
        << "ch shared cache";
  }
}

TEST(ChCustomizeParityTest, EtaWindowMatchesPerBucketExact) {
  // One profile pass over k bucket planes must refold each lane to exactly
  // the eta_s a point query at that bucket's cost time computes.
  constexpr double kBucketS = 900.0;
  auto env = BackendEnvironment(DeroutingBackend::kCh, 0, true, kBucketS);
  ASSERT_NE(env, nullptr);
  auto states = testing_util::TinyWorkload(*env, 4);
  ASSERT_FALSE(states.empty());

  DeroutingService& derouting = env->estimator->derouting_service();
  constexpr size_t kLanes = 3;
  std::vector<double> etas;
  size_t windows = 0;
  for (const VehicleState& state : states) {
    const DeroutingQuery query = env->estimator->MakeDeroutingQuery(state);
    for (size_t c = 0; c < env->chargers.size(); c += 7) {
      const EvCharger& charger = env->chargers[c];
      if (!derouting.EtaWindow(query, charger, kLanes, &etas)) continue;
      ASSERT_EQ(etas.size(), kLanes);
      ++windows;
      for (size_t j = 0; j < kLanes; ++j) {
        DeroutingQuery at_bucket = query;
        at_bucket.now =
            std::floor(query.now / kBucketS) * kBucketS + j * kBucketS;
        const DeroutingEstimate want = derouting.Exact(at_bucket, charger);
        EXPECT_EQ(std::memcmp(&etas[j], &want.eta_s, sizeof(double)), 0)
            << "state t=" << state.time << " charger " << c << " lane " << j;
      }
    }
  }
  // The space builder may conservatively reject some endpoints; the test
  // is vacuous only if it rejected everything.
  EXPECT_GT(windows, 0u);
}

}  // namespace
}  // namespace ecocharge
