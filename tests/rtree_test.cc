#include "spatial/rtree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ecocharge {
namespace {

TEST(RTreeTest, HeightIsLogarithmic) {
  RTree small(8), large(8);
  small.Build(testing_util::RandomCloud(64));
  large.Build(testing_util::RandomCloud(10000));
  EXPECT_LE(small.height(), 3);
  // 10000 points, fanout 8: height around ceil(log_8(10000/8)) + 1 = 4.
  EXPECT_LE(large.height(), 6);
  EXPECT_GT(large.height(), small.height());
}

TEST(RTreeTest, StrPackingFillsLeaves) {
  RTree tree(16);
  tree.Build(testing_util::RandomCloud(1600));
  // 1600 points at capacity 16: 100 leaves; STR packs near-full, so the
  // whole tree has few nodes (100 leaves + ~8 inner + root).
  EXPECT_LE(tree.num_tree_nodes(), 120u);
}

TEST(RTreeTest, SingleLeafTree) {
  RTree tree(16);
  tree.Build(testing_util::RandomCloud(10));
  EXPECT_EQ(tree.num_tree_nodes(), 1u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.Knn({0, 0}, 10).size(), 10u);
}

TEST(RTreeTest, MinimalCapacityClamped) {
  RTree tree(0);  // clamped to 2
  tree.Build(testing_util::RandomCloud(50));
  auto nn = tree.Knn({5000, 4000}, 5);
  EXPECT_EQ(nn.size(), 5u);
}

TEST(RTreeTest, KnnOrdered) {
  RTree tree;
  tree.Build(testing_util::RandomCloud(500));
  auto nn = tree.Knn({2000, 2000}, 30);
  ASSERT_EQ(nn.size(), 30u);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].distance, nn[i].distance);
  }
}

TEST(RTreeTest, RebuildReplaces) {
  RTree tree;
  tree.Build(testing_util::RandomCloud(100));
  tree.Build(testing_util::RandomCloud(3));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.Knn({0, 0}, 10).size(), 3u);
}

}  // namespace
}  // namespace ecocharge
