#include "geo/polyline.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ecocharge {
namespace {

Polyline LShape() {
  return Polyline({{0, 0}, {10, 0}, {10, 10}});
}

TEST(SegmentTest, ClosestPointClampsToEndpoints) {
  Point a{0, 0}, b{10, 0};
  EXPECT_EQ(ClosestPointOnSegment(a, b, {5, 3}), (Point{5, 0}));
  EXPECT_EQ(ClosestPointOnSegment(a, b, {-4, 2}), a);
  EXPECT_EQ(ClosestPointOnSegment(a, b, {15, -2}), b);
}

TEST(SegmentTest, DegenerateSegment) {
  Point a{2, 2};
  EXPECT_EQ(ClosestPointOnSegment(a, a, {5, 6}), a);
  EXPECT_DOUBLE_EQ(DistanceToSegment(a, a, {5, 6}), 5.0);
}

TEST(PolylineTest, LengthAccumulates) {
  Polyline line = LShape();
  EXPECT_DOUBLE_EQ(line.Length(), 20.0);
  EXPECT_DOUBLE_EQ(line.LengthUpTo(0), 0.0);
  EXPECT_DOUBLE_EQ(line.LengthUpTo(1), 10.0);
  EXPECT_DOUBLE_EQ(line.LengthUpTo(2), 20.0);
}

TEST(PolylineTest, AppendMatchesConstructor) {
  Polyline a = LShape();
  Polyline b;
  b.Append({0, 0});
  b.Append({10, 0});
  b.Append({10, 10});
  EXPECT_DOUBLE_EQ(a.Length(), b.Length());
  EXPECT_EQ(a.points(), b.points());
}

TEST(PolylineTest, AtInterpolatesAlongArcLength) {
  Polyline line = LShape();
  EXPECT_EQ(line.At(0.0), (Point{0, 0}));
  EXPECT_EQ(line.At(5.0), (Point{5, 0}));
  EXPECT_EQ(line.At(10.0), (Point{10, 0}));
  EXPECT_EQ(line.At(15.0), (Point{10, 5}));
  EXPECT_EQ(line.At(20.0), (Point{10, 10}));
  // Clamping.
  EXPECT_EQ(line.At(-3.0), (Point{0, 0}));
  EXPECT_EQ(line.At(99.0), (Point{10, 10}));
}

TEST(PolylineTest, DistanceToNearestSegment) {
  Polyline line = LShape();
  EXPECT_DOUBLE_EQ(line.DistanceTo({5, 2}), 2.0);
  EXPECT_DOUBLE_EQ(line.DistanceTo({12, 5}), 2.0);
  EXPECT_DOUBLE_EQ(line.DistanceTo({10, 10}), 0.0);
}

TEST(PolylineTest, ProjectReturnsArcLengthOfClosestPoint) {
  Polyline line = LShape();
  EXPECT_DOUBLE_EQ(line.Project({5, 3}), 5.0);
  EXPECT_DOUBLE_EQ(line.Project({13, 7}), 17.0);
  EXPECT_DOUBLE_EQ(line.Project({-5, -5}), 0.0);
}

TEST(PolylineTest, ProjectAtInverse) {
  // For points on the line, At(Project(p)) == p.
  Polyline line = LShape();
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    double s = rng.NextDouble(0.0, line.Length());
    Point p = line.At(s);
    EXPECT_NEAR(line.Project(p), s, 1e-9);
  }
}

TEST(PolylineTest, SliceCoversRequestedRange) {
  Polyline line = LShape();
  Polyline mid = line.Slice(5.0, 15.0);
  EXPECT_NEAR(mid.Length(), 10.0, 1e-9);
  EXPECT_EQ(mid.front(), (Point{5, 0}));
  EXPECT_EQ(mid.back(), (Point{10, 5}));
  // Interior vertex (10, 0) must be preserved.
  EXPECT_EQ(mid.size(), 3u);
}

TEST(PolylineTest, SliceClampsAndOrders) {
  Polyline line = LShape();
  Polyline all = line.Slice(-5.0, 100.0);
  EXPECT_NEAR(all.Length(), 20.0, 1e-9);
  Polyline empty_ish = line.Slice(7.0, 7.0);
  EXPECT_NEAR(empty_ish.Length(), 0.0, 1e-9);
  EXPECT_GE(empty_ish.size(), 1u);
}

TEST(PolylineTest, BoundsCoverAllVertices) {
  Polyline line = LShape();
  BoundingBox box = line.Bounds();
  EXPECT_EQ(box.min, (Point{0, 0}));
  EXPECT_EQ(box.max, (Point{10, 10}));
}

TEST(PolylineTest, EmptyAndSinglePoint) {
  Polyline empty;
  EXPECT_EQ(empty.Length(), 0.0);
  Polyline single({{3, 4}});
  EXPECT_EQ(single.Length(), 0.0);
  EXPECT_EQ(single.At(10.0), (Point{3, 4}));
  EXPECT_DOUBLE_EQ(single.DistanceTo({0, 0}), 5.0);
}

}  // namespace
}  // namespace ecocharge
