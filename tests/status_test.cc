#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented},
      {Status::IOError("g"), StatusCode::kIOError},
      {Status::Internal("h"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing charger 17");
  EXPECT_EQ(s.ToString(), "NotFound: missing charger 17");
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  Status s = Status::IOError("disk");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), s.ToString());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_NE(StatusCodeToString(StatusCode::kNotFound),
            StatusCodeToString(StatusCode::kIOError));
}

Status FailingStep() { return Status::InvalidArgument("boom"); }
Status OkStep() { return Status::OK(); }

Status UsesReturnNotOk(bool fail) {
  ECOCHARGE_RETURN_NOT_OK(OkStep());
  if (fail) {
    ECOCHARGE_RETURN_NOT_OK(FailingStep());
  }
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagatesErrors) {
  EXPECT_TRUE(UsesReturnNotOk(false).ok());
  Status s = UsesReturnNotOk(true);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "boom");
}

}  // namespace
}  // namespace ecocharge
