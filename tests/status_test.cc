#include "common/status.h"

#include <set>
#include <sstream>
#include <string_view>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented},
      {Status::IOError("g"), StatusCode::kIOError},
      {Status::Internal("h"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing charger 17");
  EXPECT_EQ(s.ToString(), "NotFound: missing charger 17");
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  Status s = Status::IOError("disk");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), s.ToString());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_NE(StatusCodeToString(StatusCode::kNotFound),
            StatusCodeToString(StatusCode::kIOError));
}

// Exhaustive: every enumerator must be listed in kAllStatusCodes, have a
// real name (not the "Unknown" fallback), and round-trip through
// StatusCodeFromString. Adding a StatusCode without updating the array
// or the switch fails here instead of silently falling through.
TEST(StatusTest, EveryCodeHasADistinctName) {
  std::set<std::string_view> names;
  for (StatusCode code : kAllStatusCodes) {
    std::string_view name = StatusCodeToString(code);
    EXPECT_NE(name, "Unknown")
        << "code " << static_cast<int>(code)
        << " is missing from the StatusCodeToString switch";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate status code name '" << name << "'";
  }
  EXPECT_EQ(names.size(), kNumStatusCodes);
}

TEST(StatusTest, EveryCodeRoundTripsThroughItsName) {
  for (StatusCode code : kAllStatusCodes) {
    StatusCode decoded = StatusCode::kInternal;
    ASSERT_TRUE(StatusCodeFromString(StatusCodeToString(code), &decoded));
    EXPECT_EQ(decoded, code);
  }
}

TEST(StatusTest, AllCodesArrayCoversTheWholeEnum) {
  // kAllStatusCodes is declaration-ordered and dense from 0; the value one
  // past the last listed code must be outside the enum (named "Unknown").
  // A new enumerator appended to StatusCode lands exactly there, so this
  // fails until kAllStatusCodes (and the name switch) are extended.
  for (size_t i = 0; i < kNumStatusCodes; ++i) {
    EXPECT_EQ(static_cast<size_t>(kAllStatusCodes[i]), i)
        << "kAllStatusCodes must stay in declaration order with no gaps";
  }
  StatusCode past_end = static_cast<StatusCode>(kNumStatusCodes);
  EXPECT_EQ(StatusCodeToString(past_end), "Unknown");
}

TEST(StatusTest, FromStringRejectsUnknownNames) {
  StatusCode code = StatusCode::kInternal;
  EXPECT_FALSE(StatusCodeFromString("Unknown", &code));
  EXPECT_FALSE(StatusCodeFromString("", &code));
  EXPECT_FALSE(StatusCodeFromString("NotAStatus", &code));
  EXPECT_EQ(code, StatusCode::kInternal);  // untouched on failure
}

Status FailingStep() { return Status::InvalidArgument("boom"); }
Status OkStep() { return Status::OK(); }

Status UsesReturnNotOk(bool fail) {
  ECOCHARGE_RETURN_NOT_OK(OkStep());
  if (fail) {
    ECOCHARGE_RETURN_NOT_OK(FailingStep());
  }
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagatesErrors) {
  EXPECT_TRUE(UsesReturnNotOk(false).ok());
  Status s = UsesReturnNotOk(true);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "boom");
}

}  // namespace
}  // namespace ecocharge
