#include "traj/brinkhoff.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> Network() {
  GridNetworkOptions opts;
  opts.nx = 12;
  opts.ny = 12;
  opts.spacing_m = 400.0;
  opts.seed = 2;
  return MakeGridNetwork(opts).MoveValueUnsafe();
}

TEST(BrinkhoffTest, GeneratesRequestedObjects) {
  auto network = Network();
  BrinkhoffOptions opts;
  opts.num_objects = 25;
  opts.seed = 10;
  auto trajs = GenerateBrinkhoffTrajectories(*network, opts).MoveValueUnsafe();
  EXPECT_EQ(trajs.size(), 25u);
  for (const Trajectory& t : trajs) {
    EXPECT_GE(t.size(), 2u);
    EXPECT_GE(t.LengthMeters(), opts.min_trip_length_m * 0.9);
  }
}

TEST(BrinkhoffTest, TimestampsAreMonotonic) {
  auto network = Network();
  BrinkhoffOptions opts;
  opts.num_objects = 10;
  auto trajs = GenerateBrinkhoffTrajectories(*network, opts).MoveValueUnsafe();
  for (const Trajectory& t : trajs) {
    for (size_t i = 1; i < t.size(); ++i) {
      EXPECT_GE(t[i].time, t[i - 1].time);
    }
  }
}

TEST(BrinkhoffTest, SamplesStayNearNetwork) {
  // Every sample lies on an edge between network nodes, so it must be
  // close to some node (within half the longest edge).
  auto network = Network();
  BrinkhoffOptions opts;
  opts.num_objects = 8;
  auto trajs = GenerateBrinkhoffTrajectories(*network, opts).MoveValueUnsafe();
  for (const Trajectory& t : trajs) {
    for (const TrajectoryPoint& p : t.points()) {
      NodeId nearest = network->NearestNode(p.position);
      double d = Distance(network->NodePosition(nearest), p.position);
      EXPECT_LT(d, 600.0);
    }
  }
}

TEST(BrinkhoffTest, SpeedsArePlausible) {
  auto network = Network();
  BrinkhoffOptions opts;
  opts.num_objects = 10;
  opts.sample_interval_s = 10.0;
  auto trajs = GenerateBrinkhoffTrajectories(*network, opts).MoveValueUnsafe();
  for (const Trajectory& t : trajs) {
    for (size_t i = 1; i < t.size(); ++i) {
      double dt = t[i].time - t[i - 1].time;
      if (dt <= 0.0) continue;
      double speed = Distance(t[i].position, t[i - 1].position) / dt;
      EXPECT_LE(speed, 40.0);  // < 144 km/h
    }
  }
}

TEST(BrinkhoffTest, StartTimesSpread) {
  auto network = Network();
  BrinkhoffOptions opts;
  opts.num_objects = 20;
  opts.start_time = 8.0 * kSecondsPerHour;
  opts.start_time_spread_s = 2.0 * kSecondsPerHour;
  auto trajs = GenerateBrinkhoffTrajectories(*network, opts).MoveValueUnsafe();
  double min_start = 1e18, max_start = -1e18;
  for (const Trajectory& t : trajs) {
    min_start = std::min(min_start, t.StartTime());
    max_start = std::max(max_start, t.StartTime());
    EXPECT_GE(t.StartTime(), opts.start_time);
    EXPECT_LE(t.StartTime(), opts.start_time + opts.start_time_spread_s);
  }
  EXPECT_GT(max_start - min_start, 0.0);
}

TEST(BrinkhoffTest, MultiTripProducesLongerTrajectories) {
  auto network = Network();
  BrinkhoffOptions one, three;
  one.num_objects = three.num_objects = 10;
  one.trip_count = 1;
  three.trip_count = 3;
  one.seed = three.seed = 4;
  auto t1 = GenerateBrinkhoffTrajectories(*network, one).MoveValueUnsafe();
  auto t3 = GenerateBrinkhoffTrajectories(*network, three).MoveValueUnsafe();
  double len1 = 0.0, len3 = 0.0;
  for (const auto& t : t1) len1 += t.LengthMeters();
  for (const auto& t : t3) len3 += t.LengthMeters();
  EXPECT_GT(len3, len1 * 1.5);
}

TEST(BrinkhoffTest, DeterministicInSeed) {
  auto network = Network();
  BrinkhoffOptions opts;
  opts.num_objects = 5;
  opts.seed = 33;
  auto a = GenerateBrinkhoffTrajectories(*network, opts).MoveValueUnsafe();
  auto b = GenerateBrinkhoffTrajectories(*network, opts).MoveValueUnsafe();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].position, b[i][j].position);
      EXPECT_EQ(a[i][j].time, b[i][j].time);
    }
  }
}

TEST(BrinkhoffTest, RejectsBadInput) {
  auto network = Network();
  BrinkhoffOptions opts;
  opts.num_objects = 0;
  EXPECT_FALSE(GenerateBrinkhoffTrajectories(*network, opts).ok());
}

}  // namespace
}  // namespace ecocharge
