// The resilience stack (DESIGN.md §11): deterministic fault injection,
// retry/backoff under a virtual deadline budget, per-upstream circuit
// breaking, and the fresh -> stale -> climatological degradation ladder.
// Everything here is sleep-free and bit-stable: faults and backoff come
// from seeded RNG streams, latency is charged to a virtual budget, and
// the breaker clock is simulation time.

#include "resilience/resilient_information_server.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/protocol.h"
#include "resilience/circuit_breaker.h"
#include "resilience/deadline.h"
#include "resilience/eis_source.h"
#include "resilience/fault_injector.h"
#include "resilience/retry_policy.h"
#include "server/offering_server.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace resilience {
namespace {

// ---------------------------------------------------------------------------
// ScopedRequestDeadline

TEST(ScopedRequestDeadlineTest, InactiveBudgetIsInfinite) {
  EXPECT_TRUE(std::isinf(ScopedRequestDeadline::RemainingMs()));
  ScopedRequestDeadline::Charge(1e9);  // no-op without an active scope
  EXPECT_TRUE(std::isinf(ScopedRequestDeadline::RemainingMs()));
}

TEST(ScopedRequestDeadlineTest, ChargesSaturateAtZero) {
  ScopedRequestDeadline deadline(100.0);
  EXPECT_DOUBLE_EQ(ScopedRequestDeadline::RemainingMs(), 100.0);
  ScopedRequestDeadline::Charge(30.0);
  EXPECT_DOUBLE_EQ(ScopedRequestDeadline::RemainingMs(), 70.0);
  ScopedRequestDeadline::Charge(-5.0);  // non-positive charges are no-ops
  EXPECT_DOUBLE_EQ(ScopedRequestDeadline::RemainingMs(), 70.0);
  ScopedRequestDeadline::Charge(500.0);
  EXPECT_DOUBLE_EQ(ScopedRequestDeadline::RemainingMs(), 0.0);
  EXPECT_DOUBLE_EQ(deadline.spent_ms(), 530.0);
}

TEST(ScopedRequestDeadlineTest, ScopesNestLikeRpcDeadlines) {
  ScopedRequestDeadline outer(100.0);
  ScopedRequestDeadline::Charge(10.0);
  {
    ScopedRequestDeadline inner(20.0);
    EXPECT_DOUBLE_EQ(ScopedRequestDeadline::RemainingMs(), 20.0);
    ScopedRequestDeadline::Charge(5.0);
    EXPECT_DOUBLE_EQ(ScopedRequestDeadline::RemainingMs(), 15.0);
  }
  // The inner scope's charges also count against the outer budget.
  EXPECT_DOUBLE_EQ(ScopedRequestDeadline::RemainingMs(), 85.0);
}

// ---------------------------------------------------------------------------
// RetryPolicy

TEST(RetryPolicyTest, FirstBackoffIsTheBaseThenJitters) {
  RetryPolicyOptions opts;
  opts.max_attempts = 10;
  opts.base_backoff_ms = 5.0;
  opts.max_backoff_ms = 100.0;
  RetryPolicy policy(opts);
  RetryPolicy::Attempt attempt;
  Rng rng(7);
  double first = policy.NextBackoffMs(&attempt, &rng, 1e9);
  EXPECT_DOUBLE_EQ(first, 5.0);  // degenerate [base, base] interval
  for (int i = 0; i < 8; ++i) {
    double b = policy.NextBackoffMs(&attempt, &rng, 1e9);
    EXPECT_GE(b, opts.base_backoff_ms);
    EXPECT_LE(b, opts.max_backoff_ms);
  }
}

TEST(RetryPolicyTest, SameSeedSameBackoffSequence) {
  RetryPolicy policy({/*max_attempts=*/16, 5.0, 100.0});
  RetryPolicy::Attempt a, b;
  Rng rng_a(99), rng_b(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(policy.NextBackoffMs(&a, &rng_a, 1e9),
                     policy.NextBackoffMs(&b, &rng_b, 1e9));
  }
}

TEST(RetryPolicyTest, GivesUpWhenAttemptsAreExhausted) {
  RetryPolicy policy({/*max_attempts=*/3, 5.0, 100.0});
  RetryPolicy::Attempt attempt;
  Rng rng(1);
  // 3 attempts total = 2 backoffs between them, then give up.
  EXPECT_GE(policy.NextBackoffMs(&attempt, &rng, 1e9), 0.0);
  EXPECT_GE(policy.NextBackoffMs(&attempt, &rng, 1e9), 0.0);
  EXPECT_LT(policy.NextBackoffMs(&attempt, &rng, 1e9), 0.0);
}

TEST(RetryPolicyTest, GivesUpWhenBackoffExceedsRemainingBudget) {
  RetryPolicy policy({/*max_attempts=*/10, 5.0, 100.0});
  RetryPolicy::Attempt attempt;
  Rng rng(1);
  // A 5 ms backoff does not fit in a 1 ms budget: retrying past the
  // deadline only burns upstream quota.
  EXPECT_LT(policy.NextBackoffMs(&attempt, &rng, 1.0), 0.0);
}

TEST(RetryPolicyTest, SingleAttemptMeansNoRetries) {
  RetryPolicy policy({/*max_attempts=*/1, 5.0, 100.0});
  RetryPolicy::Attempt attempt;
  Rng rng(1);
  EXPECT_LT(policy.NextBackoffMs(&attempt, &rng, 1e9), 0.0);
}

// ---------------------------------------------------------------------------
// CircuitBreaker

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndRecovers) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  opts.open_duration_s = 10.0;
  opts.half_open_probes = 1;
  CircuitBreaker breaker(opts);

  EXPECT_EQ(breaker.state(0.0), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(0.0));
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(0.0);
  EXPECT_EQ(breaker.state(0.0), BreakerState::kClosed);  // below threshold
  breaker.RecordFailure(0.0);
  EXPECT_EQ(breaker.state(0.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  // Open: short-circuit until the cooldown elapses.
  EXPECT_FALSE(breaker.Allow(5.0));
  EXPECT_EQ(breaker.state(9.9), BreakerState::kOpen);

  // Cooldown elapsed: one probe passes, the next is rejected.
  EXPECT_EQ(breaker.state(10.0), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.Allow(10.0));
  EXPECT_FALSE(breaker.Allow(10.0));

  // Probe success closes from any state.
  breaker.RecordSuccess(10.0);
  EXPECT_EQ(breaker.state(10.0), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(10.0));
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAnotherCooldown) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_duration_s = 10.0;
  CircuitBreaker breaker(opts);

  breaker.RecordFailure(0.0);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_TRUE(breaker.Allow(10.0));  // probe
  breaker.RecordFailure(10.0);       // probe fails -> re-open
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.Allow(15.0));
  EXPECT_EQ(breaker.state(15.0), BreakerState::kOpen);
  EXPECT_TRUE(breaker.Allow(20.0));  // next cooldown elapsed
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  CircuitBreaker breaker(opts);
  for (int round = 0; round < 5; ++round) {
    breaker.RecordFailure(0.0);
    breaker.RecordFailure(0.0);
    breaker.RecordSuccess(0.0);  // streak broken: never reaches 3
  }
  EXPECT_EQ(breaker.state(0.0), BreakerState::kClosed);
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreakerTest, StateNamesAreDistinct) {
  EXPECT_EQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_EQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
  EXPECT_EQ(BreakerStateName(BreakerState::kOpen), "open");
}

// ---------------------------------------------------------------------------
// FaultInjector

/// Infallible scripted upstream with fixed, recognizable responses.
class FixedSource : public EisSource {
 public:
  Result<EnergyForecast> FetchEnergyForecast(const EvCharger&, SimTime,
                                             SimTime, double) override {
    return EnergyForecast{1.0, 2.0};
  }
  Result<AvailabilityForecast> FetchAvailability(const EvCharger&, SimTime,
                                                 SimTime) override {
    return AvailabilityForecast{0.25, 0.75};
  }
  Result<CongestionModel::Band> FetchTraffic(RoadClass, SimTime,
                                             SimTime) override {
    return CongestionModel::Band{0.4, 0.9};
  }
};

EvCharger TestCharger(ChargerId id = 0) {
  EvCharger c;
  c.id = id;
  c.pv_capacity_kw = 40.0;
  c.type = ChargerType::kAc22;
  return c;
}

TEST(FaultInjectorTest, InactiveProfileForwardsEverything) {
  FixedSource source;
  FaultInjector injector(&source, FaultInjectorOptions{});
  for (int i = 0; i < 50; ++i) {
    auto r = injector.FetchAvailability(TestCharger(), 0.0, 0.0);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->min, 0.25);
  }
  FaultStats stats = injector.Snapshot(UpstreamKind::kAvailability);
  EXPECT_EQ(stats.calls, 50u);
  EXPECT_EQ(stats.Failures(), 0u);
}

TEST(FaultInjectorTest, SameSeedSameFaultSchedule) {
  FaultProfile profile;
  profile.error_probability = 0.3;
  profile.spike_probability = 0.1;
  auto run = [&](uint64_t seed) {
    FixedSource source;
    FaultInjector injector(&source, FaultInjectorOptions::Uniform(profile,
                                                                  seed));
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(
          injector.FetchTraffic(RoadClass::kLocal, 0.0, 0.0).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(5678));
}

TEST(FaultInjectorTest, UpstreamStreamsAreIndependent) {
  // Enabling faults on one upstream must not perturb another's schedule.
  FaultProfile noisy;
  noisy.error_probability = 0.5;
  FaultInjectorOptions only_weather;
  only_weather.weather = noisy;
  FaultInjectorOptions weather_and_traffic = only_weather;
  weather_and_traffic.traffic = noisy;

  auto weather_outcomes = [&](const FaultInjectorOptions& opts) {
    FixedSource source;
    FaultInjector injector(&source, opts);
    std::vector<bool> outcomes;
    for (int i = 0; i < 100; ++i) {
      // Interleave traffic calls; they draw from their own stream.
      injector.FetchTraffic(RoadClass::kLocal, 0.0, 0.0).ok();
      outcomes.push_back(
          injector.FetchEnergyForecast(TestCharger(), 0.0, 0.0, 3600.0).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(weather_outcomes(only_weather),
            weather_outcomes(weather_and_traffic));
}

TEST(FaultInjectorTest, CertainErrorAlwaysFailsWithUnavailable) {
  FaultProfile profile;
  profile.error_probability = 1.0;
  FixedSource source;
  FaultInjector injector(&source, FaultInjectorOptions::Uniform(profile));
  auto r = injector.FetchAvailability(TestCharger(), 0.0, 0.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(injector.Snapshot(UpstreamKind::kAvailability).errors, 1u);
}

TEST(FaultInjectorTest, RateLimitWindowRejectsExcessCalls) {
  FaultProfile profile;
  profile.rate_limit = 3;
  profile.rate_window_s = 60.0;
  FixedSource source;
  FaultInjector injector(&source, FaultInjectorOptions::Uniform(profile));
  int ok = 0;
  for (int i = 0; i < 5; ++i) {
    if (injector.FetchTraffic(RoadClass::kLocal, 10.0, 10.0).ok()) ++ok;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(injector.Snapshot(UpstreamKind::kTraffic).rate_limited, 2u);
  // A new window refills the quota.
  EXPECT_TRUE(injector.FetchTraffic(RoadClass::kLocal, 70.0, 70.0).ok());
}

TEST(FaultInjectorTest, LatencyIsChargedToTheDeadlineNotSlept) {
  FaultProfile profile;
  profile.base_latency_ms = 30.0;
  FixedSource source;
  FaultInjector injector(&source, FaultInjectorOptions::Uniform(profile));
  ScopedRequestDeadline deadline(100.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(injector.FetchAvailability(TestCharger(), 0.0, 0.0).ok());
  }
  EXPECT_DOUBLE_EQ(ScopedRequestDeadline::RemainingMs(), 10.0);
  EXPECT_DOUBLE_EQ(deadline.spent_ms(), 90.0);
}

TEST(FaultInjectorTest, StallBurstFailsConsecutiveCalls) {
  FaultProfile profile;
  profile.stall_probability = 1.0;  // first call enters the burst
  profile.stall_calls = 4;
  FixedSource source;
  FaultInjector injector(&source, FaultInjectorOptions::Uniform(profile));
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(injector.FetchTraffic(RoadClass::kLocal, 0.0, 0.0).ok())
        << "call " << i << " should be inside the stall burst";
  }
  EXPECT_EQ(injector.Snapshot(UpstreamKind::kTraffic).stall_failures, 4u);
}

// ---------------------------------------------------------------------------
// Degradation ladder (scripted upstream through the test seam)

/// Upstream whose availability can be toggled by the test.
class ToggleSource : public FixedSource {
 public:
  Result<AvailabilityForecast> FetchAvailability(const EvCharger& charger,
                                                 SimTime now,
                                                 SimTime target) override {
    if (fail) return Status::Unavailable("scripted outage");
    return FixedSource::FetchAvailability(charger, now, target);
  }
  Result<EnergyForecast> FetchEnergyForecast(const EvCharger& charger,
                                             SimTime now, SimTime target,
                                             double window_s) override {
    if (fail) return Status::Unavailable("scripted outage");
    return FixedSource::FetchEnergyForecast(charger, now, target, window_s);
  }
  bool fail = false;
};

class DegradationLadderTest : public ::testing::Test {
 protected:
  DegradationLadderTest()
      : energy_(SolarModel{}, ClimateParams{}, 11),
        availability_(12),
        congestion_(13) {}

  /// Short TTLs so a fetch can go stale within one 15-minute cache
  /// bucket; one retry attempt and a lenient breaker keep the ladder
  /// mechanics in the foreground.
  ResilientInformationServer MakeServer() {
    EisOptions eis;
    eis.weather_ttl_s = 1.0;
    eis.availability_ttl_s = 1.0;
    eis.traffic_ttl_s = 1.0;
    ResilienceOptions res;
    res.retry.max_attempts = 1;
    res.breaker.failure_threshold = 1000;
    return ResilientInformationServer(&source_, &energy_, &availability_,
                                      &congestion_, eis, res);
  }

  SolarEnergyService energy_;
  AvailabilityService availability_;
  CongestionModel congestion_;
  ToggleSource source_;
};

TEST_F(DegradationLadderTest, HealthyUpstreamServesFresh) {
  ResilientInformationServer server = MakeServer();
  EisFetch fetch = EisFetch::kClimatological;
  AvailabilityForecast f =
      server.GetAvailability(TestCharger(), 0.0, 0.0, &fetch);
  EXPECT_EQ(fetch, EisFetch::kFresh);
  EXPECT_DOUBLE_EQ(f.min, 0.25);
  EXPECT_DOUBLE_EQ(f.max, 0.75);
}

TEST_F(DegradationLadderTest, OutageServesStaleCacheEntry) {
  ResilientInformationServer server = MakeServer();
  EvCharger c = TestCharger(3);
  // Populate the cache, then let the entry expire (same 15-minute bucket,
  // past the 1 s TTL) while the upstream is down.
  server.GetAvailability(c, 0.0, 0.0);
  source_.fail = true;
  EisFetch fetch = EisFetch::kFresh;
  AvailabilityForecast f = server.GetAvailability(c, 30.0, 0.0, &fetch);
  EXPECT_EQ(fetch, EisFetch::kStale);
  EXPECT_DOUBLE_EQ(f.min, 0.25);  // the cached answer, served as-is
  EXPECT_DOUBLE_EQ(f.max, 0.75);
  EXPECT_EQ(server
                .ResilienceSnapshot(UpstreamKind::kAvailability, 30.0)
                .stale_serves,
            1u);
}

TEST_F(DegradationLadderTest, OutageWithoutCacheServesWidenedDefaults) {
  ResilientInformationServer server = MakeServer();
  source_.fail = true;
  EisFetch fetch = EisFetch::kFresh;
  AvailabilityForecast a =
      server.GetAvailability(TestCharger(4), 0.0, 0.0, &fetch);
  EXPECT_EQ(fetch, EisFetch::kClimatological);
  EXPECT_DOUBLE_EQ(a.min, 0.0);  // widened: certainly contains the truth
  EXPECT_DOUBLE_EQ(a.max, 1.0);

  EvCharger c = TestCharger(5);
  EnergyForecast e = server.GetEnergyForecast(c, 0.0, 0.0, 3600.0, &fetch);
  EXPECT_EQ(fetch, EisFetch::kClimatological);
  EXPECT_DOUBLE_EQ(e.min_kwh, 0.0);
  EXPECT_DOUBLE_EQ(e.max_kwh,
                   std::min(c.RateKw(), c.pv_capacity_kw) * 3600.0 /
                       kSecondsPerHour);
  EXPECT_EQ(server
                .ResilienceSnapshot(UpstreamKind::kAvailability, 0.0)
                .climatological_serves,
            1u);
}

TEST_F(DegradationLadderTest, RecoveryClimbsBackToFresh) {
  ResilientInformationServer server = MakeServer();
  EvCharger c = TestCharger(6);
  source_.fail = true;
  EisFetch fetch = EisFetch::kFresh;
  server.GetAvailability(c, 0.0, 0.0, &fetch);
  EXPECT_EQ(fetch, EisFetch::kClimatological);
  source_.fail = false;
  server.GetAvailability(c, 0.0, 0.0, &fetch);
  EXPECT_EQ(fetch, EisFetch::kFresh);
}

TEST_F(DegradationLadderTest, PersistentFailureTripsTheBreaker) {
  EisOptions eis;
  eis.availability_ttl_s = 1.0;
  ResilienceOptions res;
  res.retry.max_attempts = 2;
  res.breaker.failure_threshold = 4;
  res.breaker.open_duration_s = 300.0;
  ResilientInformationServer server(&source_, &energy_, &availability_,
                                    &congestion_, eis, res);
  source_.fail = true;
  // Each call issues up to 2 failing attempts; the 4-failure threshold
  // trips within two calls, after which requests short-circuit.
  for (uint32_t i = 0; i < 6; ++i) {
    server.GetAvailability(TestCharger(10 + i), 0.0, 0.0);
  }
  UpstreamResilienceStats stats =
      server.ResilienceSnapshot(UpstreamKind::kAvailability, 0.0);
  EXPECT_EQ(stats.breaker_state, BreakerState::kOpen);
  EXPECT_GE(stats.breaker_opens, 1u);
  EXPECT_GT(stats.breaker_rejections, 0u);
  EXPECT_GT(stats.retries, 0u);
  // Short-circuited calls spend no upstream quota: fewer attempts than
  // calls * max_attempts.
  EXPECT_LT(server.Stats().availability_api_calls, 12u);
}

TEST_F(DegradationLadderTest, DeadlineBudgetStopsRetries) {
  EisOptions eis;
  ResilienceOptions res;
  res.retry.max_attempts = 4;
  res.retry.base_backoff_ms = 5.0;
  ResilientInformationServer server(&source_, &energy_, &availability_,
                                    &congestion_, eis, res);
  source_.fail = true;
  // With no budget to back off into, the first failure gives up
  // immediately: exactly one upstream attempt.
  ScopedRequestDeadline deadline(0.0);
  server.GetAvailability(TestCharger(20), 0.0, 0.0);
  EXPECT_EQ(server.Stats().availability_api_calls, 1u);
  EXPECT_EQ(
      server.ResilienceSnapshot(UpstreamKind::kAvailability, 0.0).retries,
      0u);
}

// ---------------------------------------------------------------------------
// Fault-free parity: the decorator must be invisible

TEST(ResilientParityTest, FaultFreeDecoratorIsBitIdenticalToPlainServer) {
  SolarEnergyService energy(SolarModel{}, ClimateParams{}, 11);
  AvailabilityService availability(12);
  CongestionModel congestion(13);
  InformationServer plain(&energy, &availability, &congestion);
  ResilientInformationServer resilient(&energy, &availability, &congestion);

  for (uint32_t id = 0; id < 8; ++id) {
    EvCharger c = TestCharger(id);
    for (int step = 0; step < 4; ++step) {
      SimTime now = 9.0 * kSecondsPerHour + step * 400.0;
      SimTime target = now + 1800.0;
      EnergyForecast pe = plain.GetEnergyForecast(c, now, target, 3600.0);
      EnergyForecast re = resilient.GetEnergyForecast(c, now, target, 3600.0);
      EXPECT_EQ(pe.min_kwh, re.min_kwh);
      EXPECT_EQ(pe.max_kwh, re.max_kwh);
      AvailabilityForecast pa = plain.GetAvailability(c, now, target);
      EisFetch fetch = EisFetch::kStale;
      AvailabilityForecast ra = resilient.GetAvailability(c, now, target,
                                                          &fetch);
      EXPECT_EQ(fetch, EisFetch::kFresh);
      EXPECT_EQ(pa.min, ra.min);
      EXPECT_EQ(pa.max, ra.max);
      CongestionModel::Band pt = plain.GetTraffic(RoadClass::kLocal, now,
                                                  target);
      CongestionModel::Band rt = resilient.GetTraffic(RoadClass::kLocal, now,
                                                      target);
      EXPECT_EQ(pt.min, rt.min);
      EXPECT_EQ(pt.max, rt.max);
    }
  }

  // Same upstream call counts and same cache hit/miss accounting: the
  // decorator changes nothing about cost either.
  EisCallStats ps = plain.Stats();
  EisCallStats rs = resilient.Stats();
  EXPECT_EQ(ps.weather_api_calls, rs.weather_api_calls);
  EXPECT_EQ(ps.availability_api_calls, rs.availability_api_calls);
  EXPECT_EQ(ps.traffic_api_calls, rs.traffic_api_calls);
  EXPECT_EQ(ps.weather_cache.hits, rs.weather_cache.hits);
  EXPECT_EQ(ps.weather_cache.misses, rs.weather_cache.misses);
  EXPECT_EQ(ps.availability_cache.hits, rs.availability_cache.hits);
  EXPECT_EQ(ps.availability_cache.misses, rs.availability_cache.misses);
  EXPECT_EQ(ps.traffic_cache.hits, rs.traffic_cache.hits);
  EXPECT_EQ(ps.traffic_cache.misses, rs.traffic_cache.misses);

  for (UpstreamKind kind : kAllUpstreamKinds) {
    UpstreamResilienceStats stats = resilient.ResilienceSnapshot(kind, 0.0);
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.stale_serves, 0u);
    EXPECT_EQ(stats.climatological_serves, 0u);
    EXPECT_EQ(stats.breaker_state, BreakerState::kClosed);
  }
}

// ---------------------------------------------------------------------------
// Degraded flag end to end

TEST(DegradedFlagTest, SurvivesTheWireProtocol) {
  OfferingTable table;
  table.generated_at = 100.0;
  table.degraded = true;
  OfferingEntry entry;
  entry.charger_id = 7;
  entry.ecs.degraded = true;
  table.entries.push_back(entry);
  Result<OfferingTable> decoded =
      DecodeOfferingTable(EncodeOfferingTable(table));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->degraded);
  ASSERT_EQ(decoded->entries.size(), 1u);
  EXPECT_TRUE(decoded->entries[0].ecs.degraded);

  table.degraded = false;
  table.entries[0].ecs.degraded = false;
  decoded = DecodeOfferingTable(EncodeOfferingTable(table));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->degraded);
  EXPECT_FALSE(decoded->entries[0].ecs.degraded);
}

// ---------------------------------------------------------------------------
// OfferingServer under injected faults: degrade, never fail

class ResilientServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment();
    ASSERT_NE(env_, nullptr);
    states_ = testing_util::TinyWorkload(*env_, 6);
    ASSERT_GE(states_.size(), 4u);
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
};

TEST_F(ResilientServerTest, FaultFreeResilientServerMatchesPlainServer) {
  ScoreWeights weights = ScoreWeights::AWE();
  EcoChargeOptions eco;
  OfferingServer plain(env_.get(), weights, eco, {});
  OfferingServerOptions options;
  options.resilient_eis = true;
  OfferingServer resilient(env_.get(), weights, eco, options);

  for (uint64_t client = 0; client < 3; ++client) {
    for (const VehicleState& state : states_) {
      OfferingTable expected, actual;
      ASSERT_TRUE(plain
                      .Submit(client, state, 3,
                              [&](const OfferingTable& t) { expected = t; })
                      .ok());
      ASSERT_TRUE(resilient
                      .Submit(client, state, 3,
                              [&](const OfferingTable& t) { actual = t; })
                      .ok());
      EXPECT_FALSE(actual.degraded);
      EXPECT_TRUE(testing_util::TablesBitIdentical(actual, expected));
    }
  }
  EXPECT_EQ(resilient.Stats().degraded_tables, 0u);
}

TEST_F(ResilientServerTest, KeepsAnsweringUnderTwentyPercentFaults) {
  FaultProfile profile;
  profile.error_probability = 0.25;
  profile.base_latency_ms = 2.0;
  profile.spike_probability = 0.05;
  OfferingServerOptions options;
  options.threads = 2;
  options.queue_depth = 1024;
  options.resilient_eis = true;
  options.resilience.faults = FaultInjectorOptions::Uniform(profile, 77);
  OfferingServer server(env_.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        options);

  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> nonempty{0};
  for (uint64_t client = 0; client < 6; ++client) {
    for (const VehicleState& state : states_) {
      ASSERT_TRUE(server
                      .Submit(client, state, 3,
                              [&](const OfferingTable& t) {
                                ++answered;
                                if (!t.entries.empty()) ++nonempty;
                              })
                      .ok());
    }
  }
  server.Drain();

  // Every request answered — faults degrade results, never drop them.
  OfferingServerStats stats = server.Stats();
  EXPECT_EQ(answered.load(), 6 * states_.size());
  EXPECT_EQ(stats.served, 6 * states_.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(nonempty.load(), 0u);

  // The injector really fired.
  uint64_t failures = 0;
  for (UpstreamKind kind : kAllUpstreamKinds) {
    failures +=
        server.resilient_eis()->fault_injector()->Snapshot(kind).Failures();
  }
  EXPECT_GT(failures, 0u);
}

TEST_F(ResilientServerTest, TotalOutageDegradesEveryTable) {
  FaultProfile profile;
  profile.error_probability = 1.0;
  OfferingServerOptions options;
  options.resilient_eis = true;
  options.resilience.faults = FaultInjectorOptions::Uniform(profile);
  OfferingServer server(env_.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        options);

  uint64_t answered = 0, degraded = 0;
  for (const VehicleState& state : states_) {
    ASSERT_TRUE(server
                    .Submit(1, state, 3,
                            [&](const OfferingTable& t) {
                              ++answered;
                              if (t.degraded) ++degraded;
                            })
                    .ok());
  }
  EXPECT_EQ(answered, states_.size());
  // With every upstream hard-down, any table with entries was built from
  // degraded components and must say so.
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(server.Stats().degraded_tables, degraded);
  // Nothing ever succeeded upstream, so every response that reached a
  // table came off the bottom rungs of the ladder.
  uint64_t ladder_serves = 0;
  for (UpstreamKind kind : kAllUpstreamKinds) {
    UpstreamResilienceStats stats =
        server.resilient_eis()->ResilienceSnapshot(kind, 0.0);
    ladder_serves += stats.stale_serves + stats.climatological_serves;
  }
  EXPECT_GT(ladder_serves, 0u);
}

TEST_F(ResilientServerTest, ResilienceMetricsAppearInTheRegistry) {
  FaultProfile profile;
  profile.error_probability = 1.0;
  OfferingServerOptions options;
  options.resilient_eis = true;
  options.resilience.faults = FaultInjectorOptions::Uniform(profile);
  OfferingServer server(env_.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        options);
  for (const VehicleState& state : states_) {
    ASSERT_TRUE(server.Submit(1, state, 3, [](const OfferingTable&) {}).ok());
  }
  const obs::MetricsRegistry& registry = server.metrics();
  ASSERT_NE(registry.FindCounter("fault.weather.calls"), nullptr);
  EXPECT_GT(registry.FindCounter("fault.weather.errors")->Value(), 0u);
  ASSERT_NE(registry.FindCounter("resilience.weather.climatological_serves"),
            nullptr);
  ASSERT_NE(registry.FindCounter("server.requests.degraded"), nullptr);
  EXPECT_EQ(registry.FindCounter("server.requests.degraded")->Value(),
            server.Stats().degraded_tables);
}

}  // namespace
}  // namespace resilience
}  // namespace ecocharge
