// ExactBatch vs. per-candidate Exact: the batch must be exactly N
// point-to-point calls fused (bit-identical doubles, not just close), and
// the backward-sweep warm-start memo must invalidate exactly at return-pair
// changes and traffic time-bucket boundaries.

#include "traffic/derouting.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"

namespace ecocharge {
namespace {

bool SameBits(const DeroutingEstimate& a, const DeroutingEstimate& b) {
  return std::memcmp(&a.extra_distance_min_m, &b.extra_distance_min_m,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.extra_distance_max_m, &b.extra_distance_max_m,
                     sizeof(double)) == 0 &&
         std::memcmp(&a.eta_s, &b.eta_s, sizeof(double)) == 0;
}

EvCharger ChargerAt(const RoadNetwork& network, NodeId node) {
  EvCharger c;
  c.node = node;
  if (node < network.NumNodes()) c.position = network.NodePosition(node);
  return c;
}

DeroutingQuery QueryAt(const RoadNetwork& network, NodeId m, NodeId ra,
                       NodeId rb, SimTime now) {
  DeroutingQuery q;
  q.vehicle_node = m;
  q.vehicle_position = network.NodePosition(m);
  q.return_node_a = ra;
  q.return_point_a = network.NodePosition(ra);
  q.return_node_b = rb;
  q.return_point_b = network.NodePosition(rb);
  q.now = now;
  return q;
}

TEST(DeroutingBatchTest, MatchesPerCandidateBitwiseOnRandomGraphs) {
  // Sparse random geometric graphs can have disconnected pockets, so some
  // targets are genuinely unreachable — parity must cover those too.
  for (uint64_t seed : {3u, 7u, 21u}) {
    RandomGeometricOptions opts;
    opts.num_nodes = 300;
    opts.k_nearest = 3;
    opts.seed = seed;
    std::shared_ptr<RoadNetwork> network =
        MakeRandomGeometric(opts).MoveValueUnsafe();
    CongestionModel congestion(seed);
    DeroutingService batched(network, &congestion);
    DeroutingService per_candidate(network, &congestion);

    Rng rng(seed * 100 + 5);
    const size_t n = network->NumNodes();
    for (int trial = 0; trial < 6; ++trial) {
      NodeId m = static_cast<NodeId>(rng.NextBounded(n));
      NodeId ra = static_cast<NodeId>(rng.NextBounded(n));
      NodeId rb = static_cast<NodeId>(rng.NextBounded(n));
      DeroutingQuery q = QueryAt(*network, m, ra, rb,
                                 10.0 * kSecondsPerHour + trial * 600.0);

      std::vector<EvCharger> fleet;
      for (int i = 0; i < 12; ++i) {
        fleet.push_back(
            ChargerAt(*network, static_cast<NodeId>(rng.NextBounded(n))));
      }
      // Coincident-node edges: charger on the vehicle node, on a return
      // node, two chargers sharing a node, and an invalid node id.
      fleet.push_back(ChargerAt(*network, m));
      fleet.push_back(ChargerAt(*network, ra));
      fleet.push_back(fleet.front());
      fleet.push_back(ChargerAt(*network, kInvalidNode));
      std::vector<ChargerRef> refs;
      for (const EvCharger& c : fleet) refs.push_back(&c);

      DeroutingBatchScratch scratch;
      std::vector<DeroutingEstimate> out;
      batched.ExactBatch(q, refs, &scratch, &out);
      ASSERT_EQ(out.size(), fleet.size());
      for (size_t i = 0; i < fleet.size(); ++i) {
        DeroutingEstimate exact = per_candidate.Exact(q, fleet[i]);
        EXPECT_TRUE(SameBits(exact, out[i]))
            << "seed=" << seed << " trial=" << trial << " candidate=" << i
            << " node=" << fleet[i].node;
      }
    }
  }
}

TEST(DeroutingBatchTest, InvalidTargetsReadBackUnreachable) {
  GridNetworkOptions opts;
  opts.nx = 6;
  opts.ny = 6;
  opts.seed = 2;
  std::shared_ptr<RoadNetwork> network =
      MakeGridNetwork(opts).MoveValueUnsafe();
  CongestionModel congestion(2);
  DeroutingService service(network, &congestion);

  DeroutingQuery q = QueryAt(*network, 0, 35, 35, 10.0 * kSecondsPerHour);
  std::vector<EvCharger> fleet = {
      ChargerAt(*network, kInvalidNode),
      ChargerAt(*network, static_cast<NodeId>(network->NumNodes())),
      ChargerAt(*network, 7)};
  std::vector<ChargerRef> refs;
  for (const EvCharger& c : fleet) refs.push_back(&c);

  DeroutingBatchScratch scratch;
  std::vector<DeroutingEstimate> out;
  service.ExactBatch(q, refs, &scratch, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FALSE(std::isfinite(out[0].extra_distance_min_m));
  EXPECT_FALSE(std::isfinite(out[1].extra_distance_min_m));
  EXPECT_TRUE(std::isfinite(out[2].extra_distance_min_m));
}

TEST(DeroutingBatchTest, EmptyBatchProducesNoEstimates) {
  GridNetworkOptions opts;
  opts.nx = 4;
  opts.ny = 4;
  std::shared_ptr<RoadNetwork> network =
      MakeGridNetwork(opts).MoveValueUnsafe();
  CongestionModel congestion(1);
  DeroutingService service(network, &congestion);

  DeroutingQuery q = QueryAt(*network, 0, 15, 15, 0.0);
  DeroutingBatchScratch scratch;
  std::vector<DeroutingEstimate> out = {DeroutingEstimate{}};
  BatchSweepStats stats =
      service.ExactBatch(q, std::span<const ChargerRef>(), &scratch, &out);
  EXPECT_EQ(stats.targets, 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(service.backward_sweep_starts(), 0u);
}

TEST(DeroutingBatchTest, InterleavedExactAndBatchShareOneSweep) {
  // Mixing per-candidate and batched calls on one service must reuse the
  // same backward sweep (one start, then warm hits) and still match an
  // uninterleaved service bit for bit.
  GridNetworkOptions opts;
  opts.nx = 10;
  opts.ny = 10;
  opts.seed = 6;
  std::shared_ptr<RoadNetwork> network =
      MakeGridNetwork(opts).MoveValueUnsafe();
  CongestionModel congestion(6);
  DeroutingService mixed(network, &congestion);
  DeroutingService reference(network, &congestion);

  DeroutingQuery q = QueryAt(*network, 0, 99, 90, 9.0 * kSecondsPerHour);
  std::vector<EvCharger> fleet;
  for (NodeId b : {5u, 37u, 61u, 88u}) fleet.push_back(ChargerAt(*network, b));
  std::vector<ChargerRef> refs;
  for (const EvCharger& c : fleet) refs.push_back(&c);

  DeroutingBatchScratch scratch;
  std::vector<DeroutingEstimate> out;
  DeroutingEstimate first = mixed.Exact(q, fleet[0]);
  mixed.ExactBatch(q, refs, &scratch, &out);
  DeroutingEstimate last = mixed.Exact(q, fleet[3]);

  EXPECT_EQ(mixed.backward_sweep_starts(), 1u);
  EXPECT_EQ(mixed.warm_start_hits(), 2u);
  EXPECT_TRUE(SameBits(first, out[0]));
  EXPECT_TRUE(SameBits(last, out[3]));
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_TRUE(SameBits(reference.Exact(q, fleet[i]), out[i])) << i;
  }
}

class WarmStartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GridNetworkOptions opts;
    opts.nx = 10;
    opts.ny = 10;
    opts.seed = 11;
    network_ = MakeGridNetwork(opts).MoveValueUnsafe();
    congestion_ = std::make_unique<CongestionModel>(11);
    for (NodeId b : {12u, 44u, 77u}) {
      fleet_.push_back(ChargerAt(*network_, b));
    }
    for (const EvCharger& c : fleet_) refs_.push_back(&c);
  }

  BatchSweepStats RunBatch(DeroutingService& service, SimTime now,
                           NodeId ra = 99, NodeId rb = 90) {
    DeroutingQuery q = QueryAt(*network_, 0, ra, rb, now);
    return service.ExactBatch(q, refs_, &scratch_, &out_);
  }

  std::shared_ptr<RoadNetwork> network_;
  std::unique_ptr<CongestionModel> congestion_;
  std::vector<EvCharger> fleet_;
  std::vector<ChargerRef> refs_;
  DeroutingBatchScratch scratch_;
  std::vector<DeroutingEstimate> out_;
};

TEST_F(WarmStartTest, BucketedQueriesReuseTheBackwardSweep) {
  const double bucket = CongestionModel::kNoiseBucketSeconds;
  DeroutingService service(network_, congestion_.get(), 1.3, bucket);

  const SimTime t0 = 8.0 * kSecondsPerHour + 60.0;
  EXPECT_FALSE(RunBatch(service, t0).warm_start);
  std::vector<DeroutingEstimate> first = out_;

  // Later recomputation point inside the same bucket: warm hit, and the
  // bucketed cost time makes the estimates identical.
  EXPECT_TRUE(RunBatch(service, t0 + bucket * 0.5).warm_start);
  EXPECT_EQ(service.warm_start_hits(), 1u);
  EXPECT_EQ(service.backward_sweep_starts(), 1u);
  ASSERT_EQ(out_.size(), first.size());
  for (size_t i = 0; i < out_.size(); ++i) {
    EXPECT_TRUE(SameBits(first[i], out_[i])) << i;
  }
}

TEST_F(WarmStartTest, BucketBoundaryInvalidatesTheMemo) {
  const double bucket = CongestionModel::kNoiseBucketSeconds;
  DeroutingService service(network_, congestion_.get(), 1.3, bucket);

  const SimTime t0 = 8.0 * kSecondsPerHour + 60.0;
  RunBatch(service, t0);
  RunBatch(service, t0 + 120.0);
  EXPECT_EQ(service.backward_sweep_starts(), 1u);

  // Crossing into the next congestion bucket rebuilds the sweep...
  const SimTime t1 = 9.0 * kSecondsPerHour + 30.0;
  EXPECT_FALSE(RunBatch(service, t1).warm_start);
  EXPECT_EQ(service.backward_sweep_starts(), 2u);

  // ...and the rebuilt costs match a cold service queried at the same time.
  DeroutingService cold(network_, congestion_.get(), 1.3, bucket);
  std::vector<DeroutingEstimate> warm_path = out_;
  for (size_t i = 0; i < fleet_.size(); ++i) {
    DeroutingQuery q = QueryAt(*network_, 0, 99, 90, t1);
    EXPECT_TRUE(SameBits(cold.Exact(q, fleet_[i]), warm_path[i])) << i;
  }
}

TEST_F(WarmStartTest, ReturnPairChangeInvalidatesTheMemo) {
  const double bucket = CongestionModel::kNoiseBucketSeconds;
  DeroutingService service(network_, congestion_.get(), 1.3, bucket);

  const SimTime t0 = 8.0 * kSecondsPerHour;
  RunBatch(service, t0, 99, 90);
  EXPECT_FALSE(RunBatch(service, t0, 99, 80).warm_start);
  EXPECT_EQ(service.backward_sweep_starts(), 2u);
  EXPECT_EQ(service.warm_start_hits(), 0u);
}

TEST_F(WarmStartTest, ChangingTheBucketResetsTheMemo) {
  DeroutingService service(network_, congestion_.get(), 1.3,
                           CongestionModel::kNoiseBucketSeconds);
  const SimTime t0 = 8.0 * kSecondsPerHour;
  RunBatch(service, t0);
  service.set_exact_time_bucket_s(0.0);
  EXPECT_FALSE(RunBatch(service, t0).warm_start);
  EXPECT_EQ(service.backward_sweep_starts(), 2u);
}

TEST_F(WarmStartTest, BucketedCostEqualsExactCostAtBucketStart) {
  // Quantization semantics: a bucketed query at time t is the unbucketed
  // query evaluated at floor(t / B) * B, nothing more.
  const double bucket = CongestionModel::kNoiseBucketSeconds;
  DeroutingService bucketed(network_, congestion_.get(), 1.3, bucket);
  DeroutingService unbucketed(network_, congestion_.get(), 1.3, 0.0);

  const SimTime t = 8.0 * kSecondsPerHour + 1234.5;
  const SimTime t_floor = std::floor(t / bucket) * bucket;
  for (const EvCharger& c : fleet_) {
    DeroutingEstimate a =
        bucketed.Exact(QueryAt(*network_, 0, 99, 90, t), c);
    DeroutingEstimate b =
        unbucketed.Exact(QueryAt(*network_, 0, 99, 90, t_floor), c);
    EXPECT_TRUE(SameBits(a, b)) << "node=" << c.node;
  }
}

}  // namespace
}  // namespace ecocharge
