#include "availability/queueing.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ecocharge {
namespace {

using queueing::AvailabilityProbability;
using queueing::ErlangB;
using queueing::ErlangC;
using queueing::ExpectedWaitSeconds;
using queueing::OfferedLoad;

TEST(ErlangTest, KnownValues) {
  // Classic tabulated values: B(a=2, c=2) = 0.4, B(a=1, c=1) = 0.5.
  EXPECT_NEAR(ErlangB(2.0, 2), 0.4, 1e-12);
  EXPECT_NEAR(ErlangB(1.0, 1), 0.5, 1e-12);
  // C(a=2, c=4): textbook value ~0.1739.
  EXPECT_NEAR(ErlangC(2.0, 4), 0.1739, 5e-4);
}

TEST(ErlangTest, EdgeCases) {
  EXPECT_EQ(ErlangB(0.0, 3), 0.0);
  EXPECT_EQ(ErlangB(5.0, 0), 1.0);
  EXPECT_EQ(ErlangC(0.0, 3), 0.0);
  EXPECT_EQ(ErlangC(4.0, 4), 1.0);  // saturated
  EXPECT_EQ(ErlangC(9.0, 4), 1.0);
}

TEST(ErlangTest, BDecreasesWithServers) {
  for (int c = 1; c < 12; ++c) {
    EXPECT_GT(ErlangB(3.0, c), ErlangB(3.0, c + 1));
  }
}

TEST(ErlangTest, BIncreasesWithLoad) {
  for (double a = 0.5; a < 8.0; a += 0.5) {
    EXPECT_LT(ErlangB(a, 4), ErlangB(a + 0.5, 4));
  }
}

TEST(ErlangTest, CIsAtLeastB) {
  // Waiting (C) is more likely than loss (B) at the same load: the queue
  // holds arrivals that the loss system would drop.
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    int c = 1 + static_cast<int>(rng.NextBounded(10));
    double a = rng.NextDouble(0.05, c - 0.05);
    EXPECT_GE(ErlangC(a, c), ErlangB(a, c) - 1e-12) << a << " " << c;
  }
}

TEST(ErlangTest, ProbabilitiesInUnitRange) {
  Rng rng(10);
  for (int trial = 0; trial < 200; ++trial) {
    int c = 1 + static_cast<int>(rng.NextBounded(16));
    double a = rng.NextDouble(0.0, 20.0);
    double b = ErlangB(a, c);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    double pc = ErlangC(a, c);
    EXPECT_GE(pc, 0.0);
    EXPECT_LE(pc, 1.0);
  }
}

TEST(QueueingTest, OfferedLoadBasics) {
  EXPECT_DOUBLE_EQ(OfferedLoad(2.0, 4.0), 0.5);
  EXPECT_EQ(OfferedLoad(1.0, 0.0), HUGE_VAL);
}

TEST(QueueingTest, WaitTimeGrowsTowardSaturation) {
  // c = 2 ports, service rate 1/1800 s (30-minute charges).
  double mu = 1.0 / 1800.0;
  double light = ExpectedWaitSeconds(0.5 * mu, mu, 2);
  double heavy = ExpectedWaitSeconds(1.8 * mu, mu, 2);
  EXPECT_LT(light, heavy);
  EXPECT_EQ(ExpectedWaitSeconds(2.0 * mu, mu, 2), HUGE_VAL);
}

TEST(QueueingTest, AvailabilityComplementsBlocking) {
  EXPECT_NEAR(AvailabilityProbability(2.0, 2), 0.6, 1e-12);
  EXPECT_NEAR(AvailabilityProbability(0.0, 4), 1.0, 1e-12);
}

TEST(QueueingTest, MatchesMonteCarloLossSystem) {
  // Simulate an M/M/c loss system and compare the blocking fraction with
  // Erlang-B. a = 1.5 Erlangs, c = 3.
  const double lambda = 1.0, mu = 1.0 / 1.5;
  const int c = 3;
  Rng rng(123);
  double t = 0.0;
  std::vector<double> busy_until;
  int arrivals = 0, blocked = 0;
  while (arrivals < 200000) {
    t += rng.NextExponential(lambda);
    busy_until.erase(
        std::remove_if(busy_until.begin(), busy_until.end(),
                       [&](double end) { return end <= t; }),
        busy_until.end());
    ++arrivals;
    if (static_cast<int>(busy_until.size()) >= c) {
      ++blocked;
    } else {
      busy_until.push_back(t + rng.NextExponential(mu));
    }
  }
  double simulated = static_cast<double>(blocked) / arrivals;
  EXPECT_NEAR(simulated, ErlangB(lambda / mu, c), 0.01);
}

}  // namespace
}  // namespace ecocharge
