#include "core/protocol.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

OfferingRequest SampleRequest() {
  OfferingRequest r;
  r.k = 5;
  r.state.position = {1234.5, -99.25};
  r.state.node = 42;
  r.state.time = 36000.5;
  r.state.return_point_a = {2000.0, 0.0};
  r.state.return_node_a = 7;
  r.state.return_point_b = {3000.0, 50.0};
  r.state.return_node_b = 8;
  r.state.charge_window_s = 1800.0;
  r.state.segment_index = 3;
  r.state.trip_id = 77;
  return r;
}

OfferingTable SampleTable() {
  OfferingTable t;
  t.generated_at = 36000.5;
  t.location = {1234.5, -99.25};
  t.segment_index = 3;
  t.adapted_from_cache = true;
  OfferingEntry e;
  e.charger_id = 9;
  e.score = ScorePair{0.55, 0.71};
  e.ecs.level = Interval{0.2, 0.4};
  e.ecs.availability = Interval{0.6, 0.9};
  e.ecs.derouting = Interval{0.05, 0.15};
  e.eta_s = 321.0;
  e.ecs.eta_s = 321.0;
  t.entries.push_back(e);
  OfferingEntry e2 = e;
  e2.charger_id = 4;
  e2.score = ScorePair{0.5, 0.6};
  t.entries.push_back(e2);
  return t;
}

TEST(ProtocolTest, RequestRoundTrips) {
  OfferingRequest want = SampleRequest();
  auto got_result = DecodeOfferingRequest(EncodeOfferingRequest(want));
  ASSERT_TRUE(got_result.ok()) << got_result.status();
  const OfferingRequest& got = got_result.value();
  EXPECT_EQ(got.k, want.k);
  EXPECT_EQ(got.state.position, want.state.position);
  EXPECT_EQ(got.state.node, want.state.node);
  EXPECT_EQ(got.state.time, want.state.time);
  EXPECT_EQ(got.state.return_point_a, want.state.return_point_a);
  EXPECT_EQ(got.state.return_node_b, want.state.return_node_b);
  EXPECT_EQ(got.state.charge_window_s, want.state.charge_window_s);
  EXPECT_EQ(got.state.segment_index, want.state.segment_index);
  EXPECT_EQ(got.state.trip_id, want.state.trip_id);
}

TEST(ProtocolTest, TableRoundTrips) {
  OfferingTable want = SampleTable();
  auto got_result = DecodeOfferingTable(EncodeOfferingTable(want));
  ASSERT_TRUE(got_result.ok()) << got_result.status();
  const OfferingTable& got = got_result.value();
  EXPECT_EQ(got.generated_at, want.generated_at);
  EXPECT_EQ(got.location, want.location);
  EXPECT_EQ(got.segment_index, want.segment_index);
  EXPECT_EQ(got.adapted_from_cache, want.adapted_from_cache);
  ASSERT_EQ(got.entries.size(), want.entries.size());
  for (size_t i = 0; i < got.entries.size(); ++i) {
    EXPECT_EQ(got.entries[i].charger_id, want.entries[i].charger_id);
    EXPECT_EQ(got.entries[i].score.sc_min, want.entries[i].score.sc_min);
    EXPECT_EQ(got.entries[i].score.sc_max, want.entries[i].score.sc_max);
    EXPECT_EQ(got.entries[i].ecs.level, want.entries[i].ecs.level);
    EXPECT_EQ(got.entries[i].ecs.availability,
              want.entries[i].ecs.availability);
    EXPECT_EQ(got.entries[i].ecs.derouting, want.entries[i].ecs.derouting);
    EXPECT_EQ(got.entries[i].eta_s, want.entries[i].eta_s);
  }
}

TEST(ProtocolTest, EmptyTableRoundTrips) {
  OfferingTable want;
  auto got = DecodeOfferingTable(EncodeOfferingTable(want));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().empty());
}

TEST(ProtocolTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeOfferingRequest("hello world").ok());
  EXPECT_FALSE(DecodeOfferingTable("offering_request 1").ok());
  EXPECT_FALSE(DecodeOfferingRequest("").ok());
}

TEST(ProtocolTest, RejectsWrongVersion) {
  std::string wire = EncodeOfferingRequest(SampleRequest());
  wire.replace(wire.find(" 1\n"), 3, " 2\n");
  EXPECT_FALSE(DecodeOfferingRequest(wire).ok());
}

TEST(ProtocolTest, RejectsTruncatedRequest) {
  std::string wire = EncodeOfferingRequest(SampleRequest());
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(DecodeOfferingRequest(wire).ok());
}

TEST(ProtocolTest, RejectsUnorderedInterval) {
  OfferingTable t = SampleTable();
  std::string wire = EncodeOfferingTable(t);
  // Swap the level bounds of the first entry by hand.
  size_t pos = wire.find("entry 9");
  ASSERT_NE(pos, std::string::npos);
  // Rebuild a wire with lo > hi by text surgery on the known layout.
  std::string broken = wire;
  broken.replace(broken.find("0.2", pos), 3, "0.9");
  EXPECT_FALSE(DecodeOfferingTable(broken).ok());
}

TEST(ProtocolTest, RejectsTruncatedEntries) {
  OfferingTable t = SampleTable();
  std::string wire = EncodeOfferingTable(t);
  size_t second_entry = wire.rfind("entry ");
  wire.resize(second_entry);
  EXPECT_FALSE(DecodeOfferingTable(wire).ok());
}

}  // namespace
}  // namespace ecocharge
