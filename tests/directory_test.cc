#include "energy/directory.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ecocharge {
namespace {

class DirectoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GridNetworkOptions opts;
    opts.nx = 10;
    opts.ny = 10;
    opts.spacing_m = 500.0;
    opts.seed = 3;
    network_ = MakeGridNetwork(opts).MoveValueUnsafe();
    ChargerFleetOptions fleet_opts;
    fleet_opts.num_chargers = 30;
    fleet_opts.seed = 4;
    fleet_ = GenerateChargerFleet(*network_, fleet_opts).MoveValueUnsafe();
    projection_ = std::make_unique<Projection>(DatasetAnchor(0));
  }

  std::shared_ptr<RoadNetwork> network_;
  std::vector<EvCharger> fleet_;
  std::unique_ptr<Projection> projection_;
};

TEST_F(DirectoryTest, RoundTripPreservesSites) {
  std::stringstream buffer;
  ASSERT_TRUE(ExportChargerDirectoryCsv(fleet_, *projection_, buffer).ok());
  auto imported =
      ImportChargerDirectoryCsv(buffer, *projection_, *network_);
  ASSERT_TRUE(imported.ok()) << imported.status();
  const std::vector<EvCharger>& got = imported.value();
  ASSERT_EQ(got.size(), fleet_.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, fleet_[i].id);
    EXPECT_EQ(got[i].type, fleet_[i].type);
    EXPECT_EQ(got[i].num_ports, fleet_[i].num_ports);
    EXPECT_NEAR(got[i].pv_capacity_kw, fleet_[i].pv_capacity_kw, 1e-6);
    // Geographic round trip re-snaps to the original node.
    EXPECT_EQ(got[i].node, fleet_[i].node);
  }
}

TEST_F(DirectoryTest, CoordinatesAreNearAnchor) {
  std::stringstream buffer;
  ASSERT_TRUE(ExportChargerDirectoryCsv(fleet_, *projection_, buffer).ok());
  std::string header;
  std::getline(buffer, header);
  std::string line;
  std::getline(buffer, line);
  std::istringstream cells(line);
  std::string id, lat, lng;
  std::getline(cells, id, ',');
  std::getline(cells, lat, ',');
  std::getline(cells, lng, ',');
  // Oldenburg anchor (53.14, 8.21); a 5 km grid stays well within a degree.
  EXPECT_NEAR(std::stod(lat), 53.14, 0.2);
  EXPECT_NEAR(std::stod(lng), 8.21, 0.2);
}

TEST_F(DirectoryTest, RejectsMissingHeader) {
  std::stringstream buffer("1,53.1,8.2,0,2,20,0\n");
  EXPECT_FALSE(
      ImportChargerDirectoryCsv(buffer, *projection_, *network_).ok());
}

TEST_F(DirectoryTest, RejectsWrongFieldCount) {
  std::stringstream buffer("id,lat,lng,type,ports,pv_kw,timetable\n1,53.1\n");
  EXPECT_FALSE(
      ImportChargerDirectoryCsv(buffer, *projection_, *network_).ok());
}

TEST_F(DirectoryTest, RejectsInvalidValues) {
  std::stringstream bad_type(
      "id,lat,lng,type,ports,pv_kw,timetable\n1,53.1,8.2,9,2,20,0\n");
  EXPECT_FALSE(
      ImportChargerDirectoryCsv(bad_type, *projection_, *network_).ok());
  std::stringstream bad_ports(
      "id,lat,lng,type,ports,pv_kw,timetable\n1,53.1,8.2,0,0,20,0\n");
  EXPECT_FALSE(
      ImportChargerDirectoryCsv(bad_ports, *projection_, *network_).ok());
  std::stringstream not_numeric(
      "id,lat,lng,type,ports,pv_kw,timetable\n1,abc,8.2,0,2,20,0\n");
  EXPECT_FALSE(
      ImportChargerDirectoryCsv(not_numeric, *projection_, *network_).ok());
}

TEST_F(DirectoryTest, AnchorsDistinctPerDataset) {
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_FALSE(DatasetAnchor(a) == DatasetAnchor(b));
    }
  }
}

}  // namespace
}  // namespace ecocharge
