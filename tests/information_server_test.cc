#include "eis/information_server.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

class InformationServerTest : public ::testing::Test {
 protected:
  InformationServerTest()
      : energy_(SolarModel{}, ClimateParams{}, 11),
        availability_(12),
        congestion_(13),
        server_(&energy_, &availability_, &congestion_) {}

  EvCharger Charger(ChargerId id = 0) {
    EvCharger c;
    c.id = id;
    c.pv_capacity_kw = 40.0;
    c.type = ChargerType::kAc22;
    return c;
  }

  SolarEnergyService energy_;
  AvailabilityService availability_;
  CongestionModel congestion_;
  InformationServer server_;
};

TEST_F(InformationServerTest, CachesIdenticalRequests) {
  EvCharger c = Charger();
  SimTime now = 9.0 * kSecondsPerHour;
  SimTime target = now + 1800.0;
  EnergyForecast a = server_.GetEnergyForecast(c, now, target, 3600.0);
  EnergyForecast b = server_.GetEnergyForecast(c, now, target, 3600.0);
  EXPECT_EQ(a.min_kwh, b.min_kwh);
  EXPECT_EQ(a.max_kwh, b.max_kwh);
  EisCallStats stats = server_.Stats();
  EXPECT_EQ(stats.weather_api_calls, 1u);
  EXPECT_EQ(stats.weather_cache.hits, 1u);
}

TEST_F(InformationServerTest, SameBucketSharesResponse) {
  // Two targets inside the same 15-minute bucket produce one upstream call.
  EvCharger c = Charger();
  SimTime now = 9.0 * kSecondsPerHour;
  server_.GetEnergyForecast(c, now, now + 60.0, 3600.0);
  server_.GetEnergyForecast(c, now, now + 500.0, 3600.0);
  EXPECT_EQ(server_.Stats().weather_api_calls, 1u);
}

TEST_F(InformationServerTest, DifferentBucketsDifferentCalls) {
  EvCharger c = Charger();
  SimTime now = 9.0 * kSecondsPerHour;
  server_.GetEnergyForecast(c, now, now + 60.0, 3600.0);
  server_.GetEnergyForecast(c, now, now + 2000.0, 3600.0);  // next bucket
  EXPECT_EQ(server_.Stats().weather_api_calls, 2u);
}

TEST_F(InformationServerTest, DifferentChargersDifferentCalls) {
  SimTime now = 9.0 * kSecondsPerHour;
  server_.GetAvailability(Charger(1), now, now + 600.0);
  server_.GetAvailability(Charger(2), now, now + 600.0);
  EXPECT_EQ(server_.Stats().availability_api_calls, 2u);
}

TEST_F(InformationServerTest, ResponsesArePureFunctionsOfKey) {
  // The response for a key must not depend on cache warm-state: drop the
  // cache by letting the TTL expire and verify the recomputed value
  // matches the original.
  EisOptions opts;
  opts.availability_ttl_s = 1.0;
  InformationServer fresh(&energy_, &availability_, &congestion_, opts);
  EvCharger c = Charger(4);
  SimTime now = 14.0 * kSecondsPerHour;
  AvailabilityForecast first = fresh.GetAvailability(c, now, now + 600.0);
  // Expire (age > 1 s), then re-request at a slightly later time within
  // the same 15-minute bucket.
  AvailabilityForecast second =
      fresh.GetAvailability(c, now + 30.0, now + 630.0);
  EXPECT_EQ(first.min, second.min);
  EXPECT_EQ(first.max, second.max);
  EXPECT_EQ(fresh.Stats().availability_api_calls, 2u);
}

TEST_F(InformationServerTest, TrafficKeyedByRoadClass) {
  SimTime now = 8.0 * kSecondsPerHour;
  auto highway = server_.GetTraffic(RoadClass::kHighway, now, now);
  auto local = server_.GetTraffic(RoadClass::kLocal, now, now);
  EXPECT_EQ(server_.Stats().traffic_api_calls, 2u);
  // Rush hour: highways slower than locals.
  EXPECT_LT(highway.max, local.max + 1e-12);
}

TEST_F(InformationServerTest, ForecastMatchesUnderlyingService) {
  // The EIS must return what the upstream service would (for the snapped
  // bucket time) — caching changes cost, not answers.
  EvCharger c = Charger(9);
  SimTime now = 10.0 * kSecondsPerHour;     // exactly on a bucket boundary
  SimTime target = 10.5 * kSecondsPerHour;  // also on a boundary
  AvailabilityForecast via_eis = server_.GetAvailability(c, now, target);
  AvailabilityForecast direct = availability_.Forecast(c, now, target);
  EXPECT_EQ(via_eis.min, direct.min);
  EXPECT_EQ(via_eis.max, direct.max);
}

}  // namespace
}  // namespace ecocharge
