// End-to-end integration tests: the full EcoCharge pipeline on a small but
// complete world, checking the cross-module invariants the figure benches
// rely on.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/ecocharge.h"
#include "core/evaluation.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(80, /*seed=*/2024);
    ASSERT_NE(env_, nullptr);
    states_ = testing_util::TinyWorkload(*env_, 8);
    ASSERT_GE(states_.size(), 4u);
    weights_ = ScoreWeights::AWE();
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
  ScoreWeights weights_;
};

TEST_F(IntegrationTest, MethodHierarchyMatchesPaper) {
  // SC ordering of Figure 6: BruteForce >= EcoCharge > Random, with
  // EcoCharge near-optimal.
  Evaluator evaluator(env_->estimator.get(), weights_);
  evaluator.SetWorkload(states_);

  BruteForceRanker brute(env_->estimator.get(), weights_);
  EcoChargeOptions opts;
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, opts);
  RandomRanker random(env_->estimator.get(), env_->charger_index.get(),
                      50000.0, 5);

  MethodEvaluation bf = evaluator.Evaluate(brute, 3, 1);
  MethodEvaluation ec = evaluator.Evaluate(eco, 3, 1);
  MethodEvaluation rn = evaluator.Evaluate(random, 3, 1);

  EXPECT_NEAR(bf.sc_percent.mean(), 100.0, 1e-9);
  EXPECT_GE(ec.sc_percent.mean(), 90.0);
  EXPECT_LE(ec.sc_percent.mean(), 100.0 + 1e-9);
  EXPECT_LT(rn.sc_percent.mean(), ec.sc_percent.mean());
  // F_t ordering: Brute-Force is the slowest by a wide margin.
  EXPECT_GT(bf.ft_ms.mean(), 5.0 * ec.ft_ms.mean());
}

TEST_F(IntegrationTest, LargerRadiusNeverLowersScore) {
  // Fig. 7's monotone trend, on average over the workload.
  Evaluator evaluator(env_->estimator.get(), weights_);
  evaluator.SetWorkload(states_);
  double prev = -1.0;
  for (double r : {8000.0, 20000.0, 60000.0}) {
    EcoChargeOptions opts;
    opts.radius_m = r;
    opts.q_distance_m = 0.0;  // isolate the radius effect
    EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                        weights_, opts);
    MethodEvaluation m = evaluator.Evaluate(eco, 3, 1);
    EXPECT_GE(m.sc_percent.mean(), prev - 1.0);  // allow tiny noise
    prev = m.sc_percent.mean();
  }
  EXPECT_GT(prev, 90.0);
}

TEST_F(IntegrationTest, LargerQIncreasesCacheHits) {
  // Fig. 8's mechanism: the bigger the reuse distance, the more Offering
  // Tables are adapted instead of regenerated.
  uint64_t prev_hits = 0;
  bool first = true;
  for (double q : {0.0, 4000.0, 15000.0}) {
    EcoChargeOptions opts;
    opts.q_distance_m = q;
    EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                        weights_, opts);
    for (const VehicleState& s : states_) eco.Rank(s, 3);
    if (!first) {
      EXPECT_GE(eco.cache().hits(), prev_hits);
    }
    prev_hits = eco.cache().hits();
    first = false;
  }
  EXPECT_GT(prev_hits, 0u);
}

TEST_F(IntegrationTest, EisCachesCutUpstreamCalls) {
  // Re-ranking the same workload must be nearly free on upstream APIs.
  EcoChargeOptions opts;
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, opts);
  for (const VehicleState& s : states_) eco.Rank(s, 3);
  EisCallStats after_first = env_->estimator->information_server().Stats();
  eco.Reset();
  for (const VehicleState& s : states_) eco.Rank(s, 3);
  EisCallStats after_second = env_->estimator->information_server().Stats();
  uint64_t second_pass_calls =
      (after_second.weather_api_calls - after_first.weather_api_calls) +
      (after_second.availability_api_calls -
       after_first.availability_api_calls);
  EXPECT_LT(second_pass_calls,
            (after_first.weather_api_calls +
             after_first.availability_api_calls) /
                4);
}

TEST_F(IntegrationTest, AblationWeightsShiftObjectives) {
  // Fig. 9's mechanism: ranking only by derouting yields picks with lower
  // derouting cost than ranking only by charging level.
  EcoChargeOptions opts;
  EcoChargeRanker by_level(env_->estimator.get(), env_->charger_index.get(),
                           ScoreWeights::OSC(), opts);
  EcoChargeRanker by_derouting(env_->estimator.get(),
                               env_->charger_index.get(),
                               ScoreWeights::ODC(), opts);
  double level_derouting = 0.0, derouting_derouting = 0.0;
  double level_level = 0.0, derouting_level = 0.0;
  for (const VehicleState& s : states_) {
    for (ChargerId id : by_level.Rank(s, 3).ChargerIds()) {
      EcTruth ref = env_->estimator->ReferenceComponents(s, env_->chargers[id]);
      level_derouting += ref.derouting;
      level_level += ref.level;
    }
    for (ChargerId id : by_derouting.Rank(s, 3).ChargerIds()) {
      EcTruth ref = env_->estimator->ReferenceComponents(s, env_->chargers[id]);
      derouting_derouting += ref.derouting;
      derouting_level += ref.level;
    }
  }
  EXPECT_LT(derouting_derouting, level_derouting);
  EXPECT_GT(level_level, derouting_level);
}

TEST_F(IntegrationTest, TruthAndReferenceComponentsAreNormalized) {
  for (const VehicleState& s : states_) {
    for (size_t i = 0; i < env_->chargers.size(); i += 7) {
      EcTruth truth = env_->estimator->Truth(s, env_->chargers[i]);
      EcTruth ref =
          env_->estimator->ReferenceComponents(s, env_->chargers[i]);
      for (const EcTruth& t : {truth, ref}) {
        EXPECT_GE(t.level, 0.0);
        EXPECT_LE(t.level, 1.0);
        EXPECT_GE(t.availability, 0.0);
        EXPECT_LE(t.availability, 1.0);
        EXPECT_GE(t.derouting, 0.0);
        EXPECT_LE(t.derouting, 1.0);
      }
    }
  }
}

TEST_F(IntegrationTest, EstimateIntervalsBracketReferenceLevel) {
  // The interval the filtering phase uses must usually contain the
  // reference midpoint the oracle scores with.
  int contained = 0, total = 0;
  for (const VehicleState& s : states_) {
    for (size_t i = 0; i < env_->chargers.size(); i += 5) {
      EcIntervals est =
          env_->estimator->EstimateIntervals(s, env_->chargers[i]);
      EcTruth ref =
          env_->estimator->ReferenceComponents(s, env_->chargers[i]);
      // Derouting: the estimate interval must bracket the exact value in
      // the large majority of cases (the detour factor is a heuristic).
      if (ref.derouting >= est.derouting.lo - 1e-9 &&
          ref.derouting <= est.derouting.hi + 0.05) {
        ++contained;
      }
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(contained) / total, 0.8);
}

}  // namespace
}  // namespace ecocharge
