#include "server/offering_server.h"

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/offering_service.h"
#include "core/protocol.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

using testing_util::TablesBitIdentical;
using testing_util::TinyEnvironment;
using testing_util::TinyWorkload;

class OfferingServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = TinyEnvironment();
    ASSERT_NE(env_, nullptr);
    states_ = TinyWorkload(*env_, 6);
    ASSERT_GE(states_.size(), 4u);
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
};

// The server's per-worker stacks (own estimator, shared sharded EIS) must
// be invisible in the output: inline mode reproduces a plain
// OfferingService bit for bit, including Dynamic Caching behavior across
// a client's request sequence.
TEST_F(OfferingServerTest, InlineModeMatchesOfferingService) {
  ScoreWeights weights = ScoreWeights::AWE();
  EcoChargeOptions eco_options;
  OfferingServer server(env_.get(), weights, eco_options, {});
  OfferingService reference(env_->estimator.get(), env_->charger_index.get(),
                            weights, eco_options);

  for (uint64_t client = 0; client < 3; ++client) {
    for (const VehicleState& state : states_) {
      OfferingTable from_server;
      ASSERT_TRUE(server
                      .Submit(client, state, 3,
                              [&](const OfferingTable& t) { from_server = t; })
                      .ok());
      OfferingTable expected;
      reference.RankInto(client, state, 3, &expected);
      EXPECT_TRUE(TablesBitIdentical(from_server, expected));
    }
  }
  OfferingServerStats stats = server.Stats();
  EXPECT_EQ(stats.accepted, 3 * states_.size());
  EXPECT_EQ(stats.served, 3 * states_.size());
  EXPECT_EQ(stats.rejected, 0u);
}

// The concurrency determinism guarantee: N worker threads produce exactly
// the same table for every (client, request-sequence) position as the
// synchronous mode — hash routing pins a client to one worker (per-client
// FIFO), and everything shared between workers is pure.
TEST_F(OfferingServerTest, FourThreadsBitIdenticalToInline) {
  constexpr uint64_t kClients = 8;
  const size_t per_client = states_.size();
  ScoreWeights weights = ScoreWeights::AWE();
  EcoChargeOptions eco_options;

  auto run = [&](int threads) {
    OfferingServerOptions options;
    options.threads = threads;
    options.queue_depth = kClients * per_client;  // nothing shed
    OfferingServer server(env_.get(), weights, eco_options, options);
    // One slot per (client, sequence); each is written exactly once, by
    // the worker serving that client.
    std::vector<OfferingTable> tables(kClients * per_client);
    for (size_t seq = 0; seq < per_client; ++seq) {
      for (uint64_t client = 0; client < kClients; ++client) {
        OfferingTable* slot = &tables[client * per_client + seq];
        EXPECT_TRUE(server
                        .Submit(client, states_[seq], 3,
                                [slot](const OfferingTable& t) { *slot = t; })
                        .ok());
      }
    }
    server.Drain();
    return tables;
  };

  std::vector<OfferingTable> inline_tables = run(0);
  std::vector<OfferingTable> threaded_tables = run(4);
  ASSERT_EQ(inline_tables.size(), threaded_tables.size());
  for (size_t i = 0; i < inline_tables.size(); ++i) {
    EXPECT_TRUE(TablesBitIdentical(inline_tables[i], threaded_tables[i]))
        << "client " << i / per_client << " seq " << i % per_client;
  }
}

// A full queue must shed load with kUnavailable, never block or drop an
// accepted request: one slow worker (per-request stall), tiny queue,
// rapid-fire submissions.
TEST_F(OfferingServerTest, FullQueueShedsWithUnavailable) {
  OfferingServerOptions options;
  options.threads = 1;
  options.queue_depth = 2;
  options.simulated_io_ms = 25.0;
  OfferingServer server(env_.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        options);

  constexpr uint64_t kRequests = 10;
  std::atomic<uint64_t> callbacks{0};
  uint64_t ok = 0, unavailable = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    Status st = server.Submit(/*client_id=*/7, states_[0], 3,
                              [&](const OfferingTable&) { ++callbacks; });
    if (st.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(st.code(), StatusCode::kUnavailable) << st;
      ++unavailable;
    }
  }
  server.Drain();
  EXPECT_GE(unavailable, 1u);  // depth 2 cannot absorb 10 instant submits
  EXPECT_EQ(ok + unavailable, kRequests);

  OfferingServerStats stats = server.Stats();
  EXPECT_EQ(stats.accepted, ok);
  EXPECT_EQ(stats.rejected, unavailable);
  EXPECT_EQ(stats.served, ok);  // every accepted request was served
  EXPECT_EQ(callbacks.load(), ok);
}

TEST_F(OfferingServerTest, WirePathServesAndCountsMalformed) {
  OfferingServerOptions options;
  options.threads = 2;
  OfferingServer server(env_.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        options);

  OfferingRequest request;
  request.state = states_[0];
  request.k = 3;
  std::atomic<int> good{0};
  std::atomic<int> bad{0};
  ASSERT_TRUE(server
                  .SubmitWire(1, EncodeOfferingRequest(request),
                              [&](const Result<std::string>& reply) {
                                if (reply.ok() &&
                                    DecodeOfferingTable(reply.value()).ok()) {
                                  ++good;
                                }
                              })
                  .ok());
  ASSERT_TRUE(server
                  .SubmitWire(2, "definitely not a request\n",
                              [&](const Result<std::string>& reply) {
                                if (!reply.ok()) ++bad;
                              })
                  .ok());
  server.Drain();
  EXPECT_EQ(good.load(), 1);
  EXPECT_EQ(bad.load(), 1);
  OfferingServerStats stats = server.Stats();
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.malformed, 1u);
}

TEST_F(OfferingServerTest, SubmitAfterShutdownIsRejected) {
  OfferingServerOptions options;
  options.threads = 2;
  OfferingServer server(env_.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        options);
  server.Shutdown();
  Status st = server.Submit(1, states_[0], 3, [](const OfferingTable&) {});
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

// Shutdown with queued work: everything accepted before Shutdown is still
// served (Close drains, it does not drop).
TEST_F(OfferingServerTest, ShutdownServesAcceptedRequests) {
  OfferingServerOptions options;
  options.threads = 1;
  options.queue_depth = 64;
  options.simulated_io_ms = 2.0;
  OfferingServer server(env_.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        options);
  std::atomic<uint64_t> callbacks{0};
  uint64_t ok = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    if (server
            .Submit(i, states_[i % states_.size()], 3,
                    [&](const OfferingTable&) { ++callbacks; })
            .ok()) {
      ++ok;
    }
  }
  server.Shutdown();
  EXPECT_EQ(callbacks.load(), ok);
  EXPECT_EQ(server.Stats().served, ok);
}

// All workers account against one shared Information Server: after
// traffic, its counters reflect calls from every worker.
TEST_F(OfferingServerTest, WorkersShareOneInformationServer) {
  OfferingServerOptions options;
  options.threads = 4;
  options.eis_cache_shards = 8;
  OfferingServer server(env_.get(), ScoreWeights::AWE(), EcoChargeOptions{},
                        options);
  for (uint64_t client = 0; client < 8; ++client) {
    ASSERT_TRUE(
        server.Submit(client, states_[0], 3, [](const OfferingTable&) {})
            .ok());
  }
  server.Drain();
  EisCallStats eis = server.information_server().Snapshot();
  EXPECT_GT(eis.weather_api_calls + eis.availability_api_calls +
                eis.traffic_api_calls,
            0u);
}

}  // namespace
}  // namespace ecocharge
