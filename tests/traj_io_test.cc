#include "traj/io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

std::vector<Trajectory> Sample() {
  return {
      Trajectory(7, {{{0, 0}, 0.0}, {{10.5, -3.25}, 30.0}, {{20, 0}, 55.5}}),
      Trajectory(9, {{{100, 100}, 10.0}, {{110, 100}, 20.0}}),
  };
}

TEST(TrajIoTest, RoundTrip) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveTrajectories(Sample(), buffer).ok());
  auto loaded = LoadTrajectories(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const std::vector<Trajectory>& got = loaded.value();
  std::vector<Trajectory> want = Sample();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].object_id(), want[i].object_id());
    ASSERT_EQ(got[i].size(), want[i].size());
    for (size_t j = 0; j < got[i].size(); ++j) {
      EXPECT_EQ(got[i][j].position, want[i][j].position);
      EXPECT_EQ(got[i][j].time, want[i][j].time);
    }
  }
}

TEST(TrajIoTest, EmptySetRoundTrips) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveTrajectories({}, buffer).ok());
  auto loaded = LoadTrajectories(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(TrajIoTest, RejectsBadMagic) {
  std::stringstream buffer("nope 1\n0\n");
  EXPECT_FALSE(LoadTrajectories(buffer).ok());
}

TEST(TrajIoTest, RejectsTruncatedSamples) {
  std::stringstream buffer("ect 1\n1\n3 2\n0 0 0\n");
  EXPECT_FALSE(LoadTrajectories(buffer).ok());
}

TEST(TrajIoTest, RejectsNonMonotoneTimestamps) {
  std::stringstream buffer("ect 1\n1\n3 2\n0 0 10\n1 1 5\n");
  EXPECT_FALSE(LoadTrajectories(buffer).ok());
}

TEST(TrajIoTest, FileApiFailsOnMissingPath) {
  EXPECT_FALSE(LoadTrajectoriesFile("/no/such/file.ect").ok());
}

}  // namespace
}  // namespace ecocharge
