#include "fleet/fleet_server.h"

#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/protocol.h"
#include "server/client_store.h"
#include "server/corridor_cache.h"
#include "server/world_epochs.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

using fleet::FleetServer;
using fleet::FleetServerOptions;
using fleet::FleetStats;
using fleet::GeoPartition;
using fleet::PartitionSpec;
using fleet::PartitionStrategy;
using fleet::RefreshKind;
using testing_util::RandomCloud;
using testing_util::TablesBitIdentical;
using testing_util::TinyEnvironment;
using testing_util::TinyWorkload;

// ---------------------------------------------------------------------------
// GeoPartition

TEST(GeoPartitionTest, RejectsInvalidSpecs) {
  std::vector<EvCharger> none;
  PartitionSpec spec;
  spec.num_shards = 0;
  EXPECT_EQ(GeoPartition::Build(none, spec).status().code(),
            StatusCode::kInvalidArgument);
  spec.num_shards = 5000;
  EXPECT_EQ(GeoPartition::Build(none, spec).status().code(),
            StatusCode::kInvalidArgument);
}

// The partition is a pure function of (chargers, spec): two builds from
// the same inputs must route every point identically, and every point —
// including points far outside the charger bounding box — must map to
// exactly one valid shard (totality is what makes routing never fail).
TEST(GeoPartitionTest, DeterministicAndTotal) {
  auto env = TinyEnvironment();
  ASSERT_NE(env, nullptr);
  for (PartitionStrategy strategy :
       {PartitionStrategy::kGrid, PartitionStrategy::kBisection}) {
    for (size_t shards : {1u, 2u, 4u, 7u}) {
      PartitionSpec spec;
      spec.num_shards = shards;
      spec.strategy = strategy;
      auto a = GeoPartition::Build(env->chargers, spec);
      auto b = GeoPartition::Build(env->chargers, spec);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      for (const Point& p : RandomCloud(500, 30000.0, 30000.0, 11)) {
        uint32_t sa = a.value().ShardFor(p);
        EXPECT_EQ(sa, b.value().ShardFor(p));
        EXPECT_LT(sa, shards);
        // Way outside the region: still routed (clamped to a boundary
        // shard), never out of range.
        Point far{p.x * 100.0 - 500000.0, p.y * 100.0 - 500000.0};
        EXPECT_LT(a.value().ShardFor(far), shards);
      }
    }
  }
}

// Median bisection balances charger ownership: with shards <= chargers no
// shard may be starved beyond the rounding slack of the proportional
// split, and the ownership vector must agree with ShardFor.
TEST(GeoPartitionTest, BisectionBalancesChargerLoad) {
  auto env = TinyEnvironment();
  ASSERT_NE(env, nullptr);
  PartitionSpec spec;
  spec.num_shards = 4;
  spec.strategy = PartitionStrategy::kBisection;
  auto partition = GeoPartition::Build(env->chargers, spec);
  ASSERT_TRUE(partition.ok());
  const GeoPartition& p = partition.value();
  size_t total = 0;
  size_t expected = env->chargers.size() / spec.num_shards;
  for (uint32_t s = 0; s < spec.num_shards; ++s) {
    size_t count = p.chargers_in(s);
    total += count;
    EXPECT_GE(count, expected / 2);
    EXPECT_LE(count, expected * 2);
  }
  EXPECT_EQ(total, env->chargers.size());
  ASSERT_EQ(p.charger_shards().size(), env->chargers.size());
  for (size_t i = 0; i < env->chargers.size(); ++i) {
    EXPECT_EQ(p.charger_shards()[i], p.ShardFor(env->chargers[i].position));
  }
}

// More shards than chargers: some shards own zero sites but still own
// territory; routing stays total.
TEST(GeoPartitionTest, ZeroChargerShardStillRoutable) {
  auto env = TinyEnvironment(3);
  ASSERT_NE(env, nullptr);
  ASSERT_EQ(env->chargers.size(), 3u);
  PartitionSpec spec;
  spec.num_shards = 5;
  spec.strategy = PartitionStrategy::kBisection;
  auto partition = GeoPartition::Build(env->chargers, spec);
  ASSERT_TRUE(partition.ok());
  const GeoPartition& p = partition.value();
  size_t empty = 0;
  for (uint32_t s = 0; s < spec.num_shards; ++s) {
    if (p.chargers_in(s) == 0) ++empty;
  }
  EXPECT_GE(empty, 2u);
  for (const Point& point : RandomCloud(200, 25000.0, 25000.0, 3)) {
    EXPECT_LT(p.ShardFor(point), spec.num_shards);
  }
}

// ---------------------------------------------------------------------------
// WorldEpochs

TEST(WorldEpochsTest, PublishAdvancesRevisionsWithoutTouchingReaders) {
  WorldEpochs epochs(2);
  EXPECT_EQ(epochs.current_epoch(), 1u);
  {
    WorldEpochs::ReaderPin pin = epochs.Pin(0);
    uint64_t pinned = pin.snapshot().epoch;
    // Publishes land in other ring slots; the pinned snapshot's contents
    // must not move under the reader.
    epochs.Publish(10.0, [](WorldSnapshot* s) { ++s->revisions.weather; });
    epochs.Publish(20.0, [](WorldSnapshot* s) { ++s->revisions.traffic; });
    EXPECT_EQ(pin.snapshot().epoch, pinned);
    EXPECT_EQ(pin.snapshot().revisions.weather, 0u);
    EXPECT_EQ(epochs.current_epoch(), pinned + 2);
    EXPECT_EQ(epochs.MinPinnedEpoch(0, 2), pinned);
  }
  EXPECT_EQ(epochs.MinPinnedEpoch(0, 2), 0u);  // everyone unpinned
  // Fresh pin sees the accumulated revisions (each publish copies the
  // previous snapshot forward).
  WorldEpochs::ReaderPin pin = epochs.Pin(1);
  EXPECT_EQ(pin.snapshot().revisions.weather, 1u);
  EXPECT_EQ(pin.snapshot().revisions.traffic, 1u);
  EXPECT_EQ(pin.snapshot().revisions.availability, 0u);
}

// Hammer the Dekker pin/publish protocol: each publish bumps exactly one
// revision, so every snapshot a reader ever pins must satisfy
// weather + availability + traffic == epoch - 1. A torn read (reader
// observing a slot mid-overwrite) would break the invariant.
TEST(WorldEpochsTest, ConcurrentPinsNeverObserveTornSnapshots) {
  constexpr size_t kReaders = 4;
  constexpr int kPublishes = 2000;
  WorldEpochs epochs(kReaders);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        WorldEpochs::ReaderPin pin = epochs.Pin(r);
        const WorldSnapshot& s = pin.snapshot();
        uint64_t sum = s.revisions.weather + s.revisions.availability +
                       s.revisions.traffic;
        if (sum != s.epoch - 1) violations.fetch_add(1);
        if (s.epoch > epochs.current_epoch()) violations.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < kPublishes; ++i) {
    epochs.Publish(static_cast<SimTime>(i), [i](WorldSnapshot* s) {
      switch (i % 3) {
        case 0: ++s->revisions.weather; break;
        case 1: ++s->revisions.availability; break;
        default: ++s->revisions.traffic; break;
      }
    });
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(epochs.current_epoch(), 1u + kPublishes);
}

// ---------------------------------------------------------------------------
// ClientStore

TEST(ClientStoreTest, TicketsServeInFifoOrderAcrossThreads) {
  ClientStore store(4);
  bool handoff = false;
  uint64_t t0 = store.Enqueue(7, 0, 0.0, &handoff);
  EXPECT_FALSE(handoff);
  uint64_t t1 = store.Enqueue(7, 1, 1.0, &handoff);
  EXPECT_TRUE(handoff);  // shard 0 -> 1
  uint64_t t2 = store.Enqueue(7, 1, 2.0, &handoff);
  EXPECT_FALSE(handoff);
  ASSERT_EQ(t1, t0 + 1);
  ASSERT_EQ(t2, t1 + 1);

  // A later ticket blocks until every predecessor checked in or was
  // abandoned — even when the predecessors resolve out of band.
  std::atomic<int> order{0};
  std::thread late([&] {
    DynamicCacheState lease;
    store.CheckOut(7, t2, &lease);
    order.store(2);
    store.CheckIn(7, t2, &lease, 2.0);
  });
  DynamicCacheState lease;
  store.CheckOut(7, t0, &lease);
  lease.hits = 99;  // state mutated under lease travels to the successor
  EXPECT_EQ(order.load(), 0);
  store.CheckIn(7, t0, &lease, 0.0);
  store.Abandon(7, t1);  // shed mid-sequence: successors must not wait
  late.join();
  EXPECT_EQ(order.load(), 2);

  ClientStoreStats stats = store.Stats();
  EXPECT_EQ(stats.handoffs, 1u);
  EXPECT_EQ(stats.checkouts, 2u);
  EXPECT_EQ(stats.abandoned, 1u);

  // The mutated lease state round-tripped through the store.
  DynamicCacheState verify;
  bool unused = false;
  uint64_t t3 = store.Enqueue(7, 1, 3.0, &unused);
  store.CheckOut(7, t3, &verify);
  EXPECT_EQ(verify.hits, 99u);
  store.CheckIn(7, t3, &verify, 3.0);
}

TEST(ClientStoreTest, EvictIdleSkipsClientsWithOutstandingTickets) {
  ClientStore store(2);
  bool handoff = false;
  store.Enqueue(1, 0, 0.0, &handoff);          // never served: outstanding
  uint64_t t = store.Enqueue(2, 0, 0.0, &handoff);
  DynamicCacheState lease;
  store.CheckOut(2, t, &lease);
  store.CheckIn(2, t, &lease, 0.0);            // quiescent
  EXPECT_EQ(store.active_clients(), 2u);
  store.EvictIdle(10000.0, 1.0);
  EXPECT_EQ(store.active_clients(), 1u);       // client 1 survives
}

// ---------------------------------------------------------------------------
// CorridorCache

class CorridorCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = TinyEnvironment();
    ASSERT_NE(env_, nullptr);
    states_ = TinyWorkload(*env_, 6);
    ASSERT_GE(states_.size(), 2u);
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
};

// Two vehicles on the same corridor in the same ETA bucket share a key;
// trip identity must not leak into it, while position, k, bucket, and
// world revisions all must.
TEST_F(CorridorCacheTest, KeyCanonicalization) {
  CorridorCacheOptions options;
  options.eta_bucket_s = 300.0;
  CorridorCache cache(env_->dataset.network.get(), options);
  WorldRevisions revs;

  VehicleState a = states_[0];
  VehicleState b = a;
  b.trip_id = a.trip_id + 17;            // different vehicle
  b.segment_index = a.segment_index + 3;
  b.time = a.time + 120.0;               // same 5-minute bucket offset
  a.time = std::floor(a.time / 300.0) * 300.0 + 10.0;
  b.time = std::floor(a.time / 300.0) * 300.0 + 250.0;
  EXPECT_EQ(cache.KeyFor(a, 3, revs), cache.KeyFor(b, 3, revs));

  VehicleState later = a;
  later.time = a.time + 600.0;  // two buckets on
  EXPECT_NE(cache.KeyFor(a, 3, revs), cache.KeyFor(later, 3, revs));
  EXPECT_NE(cache.KeyFor(a, 3, revs), cache.KeyFor(a, 5, revs));

  WorldRevisions bumped = revs;
  ++bumped.weather;  // refresh publish re-keys the corridor
  EXPECT_NE(cache.KeyFor(a, 3, revs), cache.KeyFor(a, 3, bumped));

  // The canonical anchor zeroes trip identity and floors the bucket, so
  // both vehicles regenerate identical bytes on a miss.
  VehicleState ca = cache.CanonicalState(a);
  VehicleState cb = cache.CanonicalState(b);
  EXPECT_EQ(ca.trip_id, 0u);
  EXPECT_EQ(ca.segment_index, 0u);
  EXPECT_EQ(ca.time, cb.time);
  EXPECT_EQ(ca.position.x, cb.position.x);
  EXPECT_EQ(ca.position.y, cb.position.y);
}

TEST_F(CorridorCacheTest, HitReturnsBitIdenticalTableAndTtlExpires) {
  CorridorCacheOptions options;
  options.ttl_s = 100.0;
  CorridorCache cache(env_->dataset.network.get(), options);
  WorldRevisions revs;

  OfferingService service(env_->estimator.get(), env_->charger_index.get(),
                          ScoreWeights::AWE(), EcoChargeOptions{});
  const VehicleState& state = states_[0];
  uint64_t key = cache.KeyFor(state, 3, revs);
  OfferingTable table;
  EXPECT_FALSE(cache.GetInto(key, state.time, &table));
  service.RankFresh(cache.CanonicalState(state), 3, &table);
  cache.Put(key, table, state.time);
  EXPECT_EQ(cache.inserts(), 1u);

  OfferingTable hit;
  ASSERT_TRUE(cache.GetInto(key, state.time + 1.0, &hit));
  EXPECT_TRUE(TablesBitIdentical(hit, table));

  // Pinned expiry boundary (matches TtlCache): age > ttl or time moving
  // backwards is a miss.
  EXPECT_FALSE(cache.GetInto(key, state.time + 200.0, &hit));
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.expirations, 1u);
}

// ---------------------------------------------------------------------------
// FleetServer

class FleetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = TinyEnvironment();
    ASSERT_NE(env_, nullptr);
    states_ = TinyWorkload(*env_, 8);
    ASSERT_GE(states_.size(), 4u);
  }

  std::unique_ptr<FleetServer> MakeFleet(size_t shards, int threads,
                                         bool corridor,
                                         size_t queue_depth = 4096) {
    FleetServerOptions options;
    options.partition.num_shards = shards;
    options.threads_per_shard = threads;
    options.corridor_cache = corridor;
    options.server.queue_depth = queue_depth;
    auto result = FleetServer::Create(env_.get(), ScoreWeights::AWE(),
                                      EcoChargeOptions{}, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? std::move(result).MoveValueUnsafe() : nullptr;
  }

  // Runs the same multi-client workload and collects every table into a
  // fixed (client, sequence) slot — each written exactly once, so
  // threaded runs are comparable position by position.
  std::vector<OfferingTable> RunWorkload(FleetServer& fleet,
                                         uint64_t clients) {
    const size_t per_client = states_.size();
    std::vector<OfferingTable> tables(clients * per_client);
    for (size_t seq = 0; seq < per_client; ++seq) {
      for (uint64_t c = 0; c < clients; ++c) {
        OfferingTable* slot = &tables[c * per_client + seq];
        // Trips wander across the map, so consecutive requests of one
        // client land on different shards — constant handoff traffic.
        Status st = fleet.Submit(
            c, states_[(seq + c) % per_client], 3,
            [slot](const OfferingTable& t) { *slot = t; });
        EXPECT_TRUE(st.ok()) << st;
      }
    }
    fleet.Drain();
    return tables;
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
};

// The tentpole guarantee: sharded serving is bit-identical to
// single-shard serving — shard count and worker threads influence where a
// request runs, never what it computes. Handoffs (clients whose
// consecutive requests land on different shards) are exercised on every
// multi-shard run.
TEST_F(FleetServerTest, ShardingIsBitIdenticalToSingleShard) {
  constexpr uint64_t kClients = 6;
  auto reference_fleet = MakeFleet(1, 0, /*corridor=*/false);
  ASSERT_NE(reference_fleet, nullptr);
  std::vector<OfferingTable> reference =
      RunWorkload(*reference_fleet, kClients);

  for (size_t shards : {2u, 4u}) {
    for (int threads : {0, 2}) {
      auto fleet = MakeFleet(shards, threads, /*corridor=*/false);
      ASSERT_NE(fleet, nullptr);
      std::vector<OfferingTable> tables = RunWorkload(*fleet, kClients);
      ASSERT_EQ(tables.size(), reference.size());
      for (size_t i = 0; i < tables.size(); ++i) {
        EXPECT_TRUE(TablesBitIdentical(tables[i], reference[i]))
            << "shards=" << shards << " threads=" << threads << " slot=" << i;
      }
      FleetStats stats = fleet->Stats();
      EXPECT_EQ(stats.totals.served, reference.size());
      EXPECT_GT(stats.clients.handoffs, 0u)
          << "workload never crossed a shard boundary; weak test";
    }
  }
}

// Same discipline with the corridor cache on: the canonical corridor
// table is a pure function of (key, revisions), so shard count, thread
// count, and hit-vs-miss order cannot change a single bit.
TEST_F(FleetServerTest, CorridorModeBitIdenticalAcrossShardCounts) {
  constexpr uint64_t kClients = 6;
  auto reference_fleet = MakeFleet(1, 0, /*corridor=*/true);
  ASSERT_NE(reference_fleet, nullptr);
  std::vector<OfferingTable> reference =
      RunWorkload(*reference_fleet, kClients);
  {
    // kClients vehicles share corridors, so the single-shard run must
    // already serve most tables from the shared cache.
    FleetStats stats = reference_fleet->Stats();
    EXPECT_GT(stats.corridor.hits, 0u);
    EXPECT_GT(stats.corridor_inserts, 0u);
  }

  for (size_t shards : {2u, 4u}) {
    for (int threads : {0, 2}) {
      auto fleet = MakeFleet(shards, threads, /*corridor=*/true);
      ASSERT_NE(fleet, nullptr);
      std::vector<OfferingTable> tables = RunWorkload(*fleet, kClients);
      ASSERT_EQ(tables.size(), reference.size());
      for (size_t i = 0; i < tables.size(); ++i) {
        EXPECT_TRUE(TablesBitIdentical(tables[i], reference[i]))
            << "shards=" << shards << " threads=" << threads << " slot=" << i;
      }
    }
  }
}

// A trip oscillating across a partition boundary every request is the
// handoff worst case: every submission is a handoff, and the Dynamic
// Cache state must chase the vehicle back and forth without losing parity
// with the single-shard serve.
TEST_F(FleetServerTest, OscillatingBoundaryTripKeepsParity) {
  auto probe = MakeFleet(2, 0, /*corridor=*/false);
  ASSERT_NE(probe, nullptr);
  // Find two workload states on opposite shards.
  const VehicleState* left = nullptr;
  const VehicleState* right = nullptr;
  for (const VehicleState& s : states_) {
    uint32_t shard = probe->partition().ShardFor(s.position);
    if (shard == 0 && left == nullptr) left = &s;
    if (shard == 1 && right == nullptr) right = &s;
  }
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);

  constexpr int kRounds = 10;
  auto run = [&](size_t shards, int threads) {
    auto fleet = MakeFleet(shards, threads, /*corridor=*/false);
    std::vector<OfferingTable> tables(2 * kRounds);
    SimTime base = std::max(left->time, right->time);
    for (int i = 0; i < 2 * kRounds; ++i) {
      VehicleState state = (i % 2 == 0) ? *left : *right;
      state.time = base + 30.0 * i;  // monotone clock while oscillating
      OfferingTable* slot = &tables[i];
      EXPECT_TRUE(fleet
                      ->Submit(42, state, 3,
                               [slot](const OfferingTable& t) { *slot = t; })
                      .ok());
    }
    fleet->Drain();
    FleetStats stats = fleet->Stats();
    if (shards == 2) {
      // Every request after the first crosses the boundary.
      EXPECT_EQ(stats.clients.handoffs,
                static_cast<uint64_t>(2 * kRounds - 1));
    }
    return tables;
  };

  std::vector<OfferingTable> reference = run(1, 0);
  for (int threads : {0, 2}) {
    std::vector<OfferingTable> tables = run(2, threads);
    for (size_t i = 0; i < tables.size(); ++i) {
      EXPECT_TRUE(TablesBitIdentical(tables[i], reference[i]))
          << "threads=" << threads << " slot=" << i;
    }
  }
}

// Refresh publishes interleaved with handoff traffic: readers pin
// snapshots while the writer retires ring slots; everything submitted is
// served, the epoch advances, and (with threads) no reader ever blocks a
// publish into a deadlock. Run under TSan by scripts/check.sh fleet.
TEST_F(FleetServerTest, HandoffDuringSnapshotSwap) {
  auto fleet = MakeFleet(2, 2, /*corridor=*/false);
  ASSERT_NE(fleet, nullptr);
  constexpr int kRequests = 200;
  std::atomic<int> served{0};
  std::thread publisher([&] {
    for (int i = 0; i < 50; ++i) {
      fleet->PublishRefresh(static_cast<RefreshKind>(i % 3),
                            static_cast<SimTime>(i));
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < kRequests; ++i) {
    Status st = fleet->Submit(i % 4, states_[i % states_.size()], 3,
                              [&](const OfferingTable&) { ++served; });
    ASSERT_TRUE(st.ok()) << st;
  }
  publisher.join();
  fleet->Drain();
  EXPECT_EQ(served.load(), kRequests);
  FleetStats stats = fleet->Stats();
  EXPECT_EQ(stats.epoch, 51u);
  EXPECT_GT(stats.clients.handoffs, 0u);

  // Post-publish requests serve under the newest revisions and stay
  // consistent with a fresh fleet at the same epoch.
  EXPECT_EQ(fleet->epochs().current_epoch(), 51u);
}

// Shutdown with handoff tickets still in flight: accepted requests must
// drain (shutdown closes queues but serves what was admitted), waits on
// cross-shard predecessors must resolve, and post-shutdown submissions
// fail cleanly.
TEST_F(FleetServerTest, ShutdownDrainsInFlightHandoffs) {
  auto fleet = MakeFleet(2, 2, /*corridor=*/false);
  ASSERT_NE(fleet, nullptr);
  std::atomic<int> served{0};
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    Status st = fleet->Submit(i % 8, states_[i % states_.size()], 3,
                              [&](const OfferingTable&) { ++served; });
    if (st.ok()) ++accepted;
  }
  fleet->Shutdown();  // no Drain: shutdown itself must finish the backlog
  EXPECT_EQ(served.load(), accepted);
  Status st = fleet->Submit(0, states_[0], 3, [](const OfferingTable&) {});
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

// A shard that owns zero chargers still serves full-recall tables:
// shards split responsibility, never visibility.
TEST_F(FleetServerTest, ZeroChargerShardServesFullRecall) {
  auto small_env = TinyEnvironment(3);
  ASSERT_NE(small_env, nullptr);
  auto states = TinyWorkload(*small_env, 8);
  ASSERT_GE(states.size(), 2u);

  FleetServerOptions options;
  options.partition.num_shards = 5;
  auto result = FleetServer::Create(small_env.get(), ScoreWeights::AWE(),
                                    EcoChargeOptions{}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  auto fleet = std::move(result).MoveValueUnsafe();

  // Force the interesting case: relocate each probe into a shard that
  // owns zero chargers (routing is by position only, so moving the
  // position is all it takes to land there).
  uint32_t empty_shard = 0;
  bool found_empty = false;
  for (uint32_t s = 0; s < options.partition.num_shards; ++s) {
    if (fleet->partition().chargers_in(s) == 0) {
      empty_shard = s;
      found_empty = true;
      break;
    }
  }
  ASSERT_TRUE(found_empty);
  // Empty ranges bisect at the degenerate split 0.0, so starved shards
  // can own all-negative territory — sample a cloud centered on the
  // origin, not just the charger bounding box, and keep the empty-shard
  // point closest to the chargers so the probe stays inside the
  // derouting radius (an empty table would make the parity check
  // vacuous).
  Point centroid{0.0, 0.0};
  for (const EvCharger& c : small_env->chargers) {
    centroid.x += c.position.x / static_cast<double>(small_env->chargers.size());
    centroid.y += c.position.y / static_cast<double>(small_env->chargers.size());
  }
  Point inside{};
  bool found_point = false;
  double best = std::numeric_limits<double>::infinity();
  for (const Point& p : RandomCloud(20000, 120000.0, 120000.0, 9)) {
    Point candidate{p.x - 60000.0, p.y - 60000.0};
    if (fleet->partition().ShardFor(candidate) != empty_shard) continue;
    double dx = candidate.x - centroid.x;
    double dy = candidate.y - centroid.y;
    double d2 = dx * dx + dy * dy;
    if (d2 < best) {
      best = d2;
      inside = candidate;
      found_point = true;
    }
  }
  ASSERT_TRUE(found_point);

  OfferingService reference(small_env->estimator.get(),
                            small_env->charger_index.get(),
                            ScoreWeights::AWE(), EcoChargeOptions{});
  for (VehicleState state : states) {
    state.position = inside;
    ASSERT_EQ(fleet->partition().ShardFor(state.position), empty_shard);
    OfferingTable table;
    ASSERT_TRUE(fleet
                    ->Submit(1, state, 3,
                             [&](const OfferingTable& t) { table = t; })
                    .ok());
    OfferingTable expected;
    reference.RankInto(1, state, 3, &expected);
    EXPECT_TRUE(TablesBitIdentical(table, expected));
    EXPECT_EQ(table.entries.size(), 3u);  // all chargers visible
  }
}

// Wire-protocol routing: decode at the router, serve on the shard, reply
// with encoded bytes; malformed frames are counted and reported through
// the callback without crossing into a shard.
TEST_F(FleetServerTest, WireRoutingAndMalformedFrames) {
  auto fleet = MakeFleet(2, 0, /*corridor=*/false);
  ASSERT_NE(fleet, nullptr);

  OfferingRequest request;
  request.state = states_[0];
  request.k = 3;
  OfferingTable direct;
  ASSERT_TRUE(fleet
                  ->Submit(9, states_[0], 3,
                           [&](const OfferingTable& t) { direct = t; })
                  .ok());

  auto wire_fleet = MakeFleet(2, 0, /*corridor=*/false);
  std::string reply;
  ASSERT_TRUE(wire_fleet
                  ->SubmitWire(9, EncodeOfferingRequest(request),
                               [&](const Result<std::string>& r) {
                                 ASSERT_TRUE(r.ok());
                                 reply = r.value();
                               })
                  .ok());
  wire_fleet->Drain();
  auto decoded = DecodeOfferingTable(reply);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(TablesBitIdentical(decoded.value(), direct));

  bool got_error = false;
  EXPECT_TRUE(wire_fleet
                  ->SubmitWire(9, "not a frame",
                               [&](const Result<std::string>& r) {
                                 got_error = !r.ok();
                               })
                  .ok());
  EXPECT_TRUE(got_error);
}

// The statsz surfaces: one fleet section plus one section per shard, in
// both text and JSON.
TEST_F(FleetServerTest, StatszReportsPerShardSections) {
  auto fleet = MakeFleet(3, 0, /*corridor=*/true);
  ASSERT_NE(fleet, nullptr);
  RunWorkload(*fleet, 4);
  std::string text = fleet->StatszAllText();
  EXPECT_NE(text.find("--- fleet ---"), std::string::npos);
  EXPECT_NE(text.find("--- shard 0 ---"), std::string::npos);
  EXPECT_NE(text.find("--- shard 2 ---"), std::string::npos);
  EXPECT_NE(text.find("fleet.corridor.hits"), std::string::npos);
  std::string json = fleet->StatszAllJson();
  EXPECT_EQ(json.find("{\"fleet\":"), 0u);
  EXPECT_NE(json.find("\"shards\":["), std::string::npos);
}

}  // namespace
}  // namespace ecocharge
