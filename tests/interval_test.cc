#include "core/interval.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ecocharge {
namespace {

TEST(IntervalTest, ExactCollapses) {
  Interval iv = Interval::Exact(3.5);
  EXPECT_TRUE(iv.IsExact());
  EXPECT_EQ(iv.Mid(), 3.5);
  EXPECT_EQ(iv.Width(), 0.0);
}

TEST(IntervalTest, FromUnorderedSwaps) {
  Interval iv = Interval::FromUnordered(5.0, 2.0);
  EXPECT_EQ(iv.lo, 2.0);
  EXPECT_EQ(iv.hi, 5.0);
}

TEST(IntervalTest, ContainsAndIntersects) {
  Interval iv{1.0, 3.0};
  EXPECT_TRUE(iv.Contains(1.0));
  EXPECT_TRUE(iv.Contains(3.0));
  EXPECT_FALSE(iv.Contains(3.0001));
  EXPECT_TRUE(iv.Intersects({3.0, 5.0}));  // touching counts
  EXPECT_FALSE(iv.Intersects({3.1, 5.0}));
  EXPECT_TRUE(iv.Intersects({0.0, 10.0}));  // containment
}

TEST(IntervalTest, AdditionIsExactEnclosure) {
  Interval a{1.0, 2.0}, b{-1.0, 4.0};
  Interval sum = a + b;
  EXPECT_EQ(sum.lo, 0.0);
  EXPECT_EQ(sum.hi, 6.0);
}

TEST(IntervalTest, SubtractionFlipsOperand) {
  Interval a{1.0, 2.0}, b{0.5, 3.0};
  Interval diff = a - b;
  EXPECT_EQ(diff.lo, -2.0);
  EXPECT_EQ(diff.hi, 1.5);
}

TEST(IntervalTest, ScalarMultiplicationHandlesSign) {
  Interval iv{1.0, 2.0};
  Interval pos = iv * 3.0;
  EXPECT_EQ(pos.lo, 3.0);
  EXPECT_EQ(pos.hi, 6.0);
  Interval neg = iv * -1.0;
  EXPECT_EQ(neg.lo, -2.0);
  EXPECT_EQ(neg.hi, -1.0);
}

TEST(IntervalTest, ComplementFor1MinusX) {
  Interval d{0.2, 0.7};
  Interval c = d.Complement();
  EXPECT_NEAR(c.lo, 0.3, 1e-12);
  EXPECT_NEAR(c.hi, 0.8, 1e-12);
}

TEST(IntervalTest, ClampedStaysOrdered) {
  Interval iv{-0.5, 1.5};
  Interval c = iv.Clamped(0.0, 1.0);
  EXPECT_EQ(c.lo, 0.0);
  EXPECT_EQ(c.hi, 1.0);
}

TEST(IntervalTest, UnionIsHull) {
  Interval a{0.0, 1.0}, b{3.0, 4.0};
  Interval u = a.Union(b);
  EXPECT_EQ(u.lo, 0.0);
  EXPECT_EQ(u.hi, 4.0);
}

TEST(IntervalPropertyTest, ArithmeticEnclosesPointwiseSamples) {
  // Fundamental soundness of interval arithmetic: for random x in a and
  // y in b, x+y lies in a+b and x-y in a-b.
  Rng rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    Interval a = Interval::FromUnordered(rng.NextDouble(-10, 10),
                                         rng.NextDouble(-10, 10));
    Interval b = Interval::FromUnordered(rng.NextDouble(-10, 10),
                                         rng.NextDouble(-10, 10));
    double x = rng.NextDouble(a.lo, a.hi == a.lo ? a.lo + 1e-12 : a.hi);
    double y = rng.NextDouble(b.lo, b.hi == b.lo ? b.lo + 1e-12 : b.hi);
    EXPECT_TRUE((a + b).Contains(x + y));
    EXPECT_TRUE((a - b).Contains(x - y));
    double s = rng.NextDouble(-3.0, 3.0);
    Interval scaled = a * s;
    EXPECT_GE(x * s, scaled.lo - 1e-9);
    EXPECT_LE(x * s, scaled.hi + 1e-9);
  }
}

TEST(IntervalTest, MidLessOrderingIsDeterministic) {
  Interval a{0.0, 1.0};  // mid 0.5
  Interval b{0.25, 0.75};  // mid 0.5, higher lo
  EXPECT_TRUE(IntervalMidLess(a, b));
  EXPECT_FALSE(IntervalMidLess(b, a));
  Interval c{0.0, 2.0};  // mid 1.0
  EXPECT_TRUE(IntervalMidLess(a, c));
}

}  // namespace
}  // namespace ecocharge
