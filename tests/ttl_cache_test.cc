#include "eis/ttl_cache.h"

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(TtlCacheTest, MissThenHit) {
  TtlCache<int, std::string> cache(60.0);
  EXPECT_FALSE(cache.Get(1, 0.0).has_value());
  cache.Put(1, "a", 0.0);
  auto hit = cache.Get(1, 30.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "a");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TtlCacheTest, ExpiresAfterTtl) {
  TtlCache<int, int> cache(60.0);
  cache.Put(1, 42, 0.0);
  EXPECT_TRUE(cache.Get(1, 60.0).has_value());   // exactly at TTL: fresh
  EXPECT_FALSE(cache.Get(1, 60.1).has_value());  // past TTL: gone
  EXPECT_EQ(cache.stats().expirations, 1u);
  // The expired entry was erased.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TtlCacheTest, ExactDeadlineIsHitOnEveryShard) {
  // The pinned expiry boundary: `now == inserted_at + ttl` is a hit,
  // uniformly — which shard a key hashes to must never change whether a
  // boundary lookup hits. 64 keys over 8 shards cover every shard.
  constexpr double kTtl = 60.0;
  TtlCache<int, int> cache(kTtl, 1 << 10, /*num_shards=*/8);
  for (int key = 0; key < 64; ++key) cache.Put(key, key, 0.0);
  for (int key = 0; key < 64; ++key) {
    auto hit = cache.Get(key, kTtl);  // exactly at the deadline
    ASSERT_TRUE(hit.has_value()) << "key " << key << " expired at deadline";
    EXPECT_EQ(*hit, key);
  }
  EXPECT_EQ(cache.stats().hits, 64u);
  EXPECT_EQ(cache.stats().expirations, 0u);
  // One tick past the deadline, every key is gone.
  for (int key = 0; key < 64; ++key) {
    EXPECT_FALSE(cache.Get(key, std::nextafter(kTtl, 1e9)).has_value());
  }
  EXPECT_EQ(cache.stats().expirations, 64u);
}

TEST(TtlCacheTest, SweepAtExactDeadlineRemovesNothing) {
  // SweepExpired uses the same strict `age > ttl` comparison as Get: a
  // sweep at the deadline instant must leave the still-fresh entries.
  constexpr double kTtl = 60.0;
  TtlCache<int, int> cache(kTtl, 1 << 10, /*num_shards=*/4);
  for (int key = 0; key < 32; ++key) cache.Put(key, key, 0.0);
  cache.SweepExpired(kTtl);
  EXPECT_EQ(cache.size(), 32u);
  cache.SweepExpired(std::nextafter(kTtl, 1e9));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TtlCacheTest, CapacitySweepAtExactDeadlineKeepsFreshEntries) {
  // Put's over-capacity sweep is the third path with an age comparison:
  // at the deadline instant it must not treat resident entries as
  // expired — the insert falls back to clearing the full shard instead.
  constexpr double kTtl = 60.0;
  TtlCache<int, int> cache(kTtl, /*max_entries=*/4, /*num_shards=*/1);
  for (int key = 0; key < 4; ++key) cache.Put(key, key, 0.0);
  // At exactly the deadline nothing is sweepable, so inserting clears.
  cache.Put(100, 100, kTtl);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Get(100, kTtl).has_value());
}

TEST(TtlCacheTest, AttachedCountersMirrorStats) {
  obs::MetricsRegistry registry(1);
  obs::Counter* hits = registry.GetCounter("hits");
  obs::Counter* misses = registry.GetCounter("misses");
  obs::Counter* expirations = registry.GetCounter("expirations");
  TtlCache<int, int> cache(60.0);
  cache.AttachCounters(hits, misses, expirations);
  cache.Get(1, 0.0);        // miss
  cache.Put(1, 7, 0.0);
  cache.Get(1, 30.0);       // hit
  cache.Get(1, 100.0);      // expiration (+ miss)
  CacheStats stats = cache.stats();
  EXPECT_EQ(hits->Value(), stats.hits);
  EXPECT_EQ(misses->Value(), stats.misses);
  EXPECT_EQ(expirations->Value(), stats.expirations);
  EXPECT_EQ(hits->Value(), 1u);
  EXPECT_EQ(misses->Value(), 2u);
  EXPECT_EQ(expirations->Value(), 1u);
  // Detach: internal stats keep counting, mirrors freeze.
  cache.AttachCounters(nullptr, nullptr, nullptr);
  cache.Get(2, 0.0);
  EXPECT_EQ(misses->Value(), 2u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(TtlCacheTest, PutRefreshesTimestamp) {
  TtlCache<int, int> cache(60.0);
  cache.Put(1, 42, 0.0);
  cache.Put(1, 43, 50.0);
  auto hit = cache.Get(1, 100.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 43);
}

TEST(TtlCacheTest, NegativeAgeIsFresh) {
  // Simulation time can restart (new repetition); entries from the
  // "future" stay valid since values are pure functions of the key.
  TtlCache<int, int> cache(10.0);
  cache.Put(1, 7, 1000.0);
  EXPECT_TRUE(cache.Get(1, 0.0).has_value());
}

TEST(TtlCacheTest, SweepRemovesOnlyExpired) {
  TtlCache<int, int> cache(60.0);
  cache.Put(1, 1, 0.0);
  cache.Put(2, 2, 100.0);
  cache.SweepExpired(100.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Get(2, 100.0).has_value());
}

TEST(TtlCacheTest, SizeCapTriggersEviction) {
  TtlCache<int, int> cache(60.0, /*max_entries=*/4);
  for (int i = 0; i < 10; ++i) cache.Put(i, i, 0.0);
  EXPECT_LE(cache.size(), 4u);
}

TEST(TtlCacheTest, ClearEmptiesCache) {
  TtlCache<int, int> cache(60.0);
  cache.Put(1, 1, 0.0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1, 0.0).has_value());
}

TEST(TtlCacheTest, HitRateComputation) {
  CacheStats stats;
  EXPECT_EQ(stats.HitRate(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.75);
}

TEST(TtlCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  TtlCache<int, int> cache(60.0, 1 << 10, /*num_shards=*/5);
  EXPECT_EQ(cache.num_shards(), 8u);
  TtlCache<int, int> one(60.0, 1 << 10, 0);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(TtlCacheTest, ShardedCacheBehavesLikeUnsharded) {
  TtlCache<int, int> cache(60.0, 1 << 10, /*num_shards=*/8);
  for (int i = 0; i < 100; ++i) cache.Put(i, i * 2, 0.0);
  EXPECT_EQ(cache.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto hit = cache.Get(i, 30.0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, i * 2);
  }
  cache.SweepExpired(100.0);
  EXPECT_EQ(cache.size(), 0u);
}

// The fleet runtime sizes shard counts to contention (EIS caches, the
// corridor cache, the client store all take one), so the invariance must
// hold for *any* interleaving of operations, not just bulk put-then-get:
// a long deterministic op sequence — puts, gets, stale gets, sweeps, and
// time running near expiry boundaries — must produce identical answers
// and identical hit/miss/expiration accounting at every shard count.
TEST(TtlCacheTest, RandomizedOpSequenceInvariantAcrossShardCounts) {
  constexpr int kOps = 5000;
  auto run = [&](size_t num_shards) {
    // Capacity high enough that the per-shard split never evicts: the
    // invariance claim is about sharding, not about the capacity sweep.
    TtlCache<int, int> cache(10.0, 1 << 16, num_shards);
    uint64_t trace = 0;  // order-sensitive digest of every observation
    uint64_t rng = 0x9E3779B97F4A7C15ULL;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    double now = 0.0;
    for (int i = 0; i < kOps; ++i) {
      uint64_t r = next();
      int key = static_cast<int>(r % 64);
      // Drift time in sub-TTL steps, frequently landing exactly on an
      // entry's expiry deadline (the pinned-boundary case).
      now += static_cast<double>((r >> 8) % 21) * 0.5;
      switch ((r >> 16) % 5) {
        case 0:
          cache.Put(key, key * 1000 + i, now);
          break;
        case 1:
        case 2: {
          auto hit = cache.Get(key, now);
          trace = trace * 1099511628211ULL +
                  (hit ? static_cast<uint64_t>(*hit) + 1 : 0);
          break;
        }
        case 3: {
          bool fresh = false;
          auto hit = cache.GetAllowStale(key, now, &fresh);
          trace = trace * 1099511628211ULL +
                  (hit ? static_cast<uint64_t>(*hit) + 1 : 0) * 2 +
                  (fresh ? 1 : 0);
          break;
        }
        default:
          cache.SweepExpired(now);
          break;
      }
    }
    CacheStats stats = cache.stats();
    trace = trace * 31 + stats.hits;
    trace = trace * 31 + stats.misses;
    trace = trace * 31 + stats.expirations;
    trace = trace * 31 + cache.size();
    return trace;
  };

  uint64_t reference = run(1);
  for (size_t shards : {2u, 4u, 16u, 64u}) {
    EXPECT_EQ(run(shards), reference) << "num_shards=" << shards;
  }
}

TEST(AtomicCacheStatsTest, SnapshotReflectsCounts) {
  AtomicCacheStats stats;
  stats.AddHit();
  stats.AddHit();
  stats.AddMiss();
  stats.AddExpiration();
  CacheStats snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.hits, 2u);
  EXPECT_EQ(snapshot.misses, 1u);
  EXPECT_EQ(snapshot.expirations, 1u);
  EXPECT_DOUBLE_EQ(snapshot.HitRate(), 2.0 / 3.0);
}

// --- Concurrency: the sharded cache under racing Get/Put/expiry. -------
//
// Time is a shared atomic tick counter injected into every call — fully
// deterministic ordering constraints, no sleeps: a reader that sampled
// `now` can never observe a value older than now - ttl, no matter how
// Put/Get/SweepExpired interleave.

TEST(TtlCacheConcurrencyTest, NeverReturnsValueStaleBeyondTtl) {
  constexpr double kTtl = 64.0;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  constexpr int kKeys = 16;
  TtlCache<int, double> cache(kTtl, 1 << 10, /*num_shards=*/4);
  std::atomic<long> tick{0};
  std::atomic<int> stale{0};

  auto worker = [&](int tid) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      double now = static_cast<double>(tick.fetch_add(1));
      int key = (i * 7 + tid * 3) % kKeys;
      if ((i + tid) % 3 == 0) {
        // Value records its own insertion time, making staleness
        // self-evident to any later reader.
        cache.Put(key, now, now);
      } else {
        std::optional<double> hit = cache.Get(key, now);
        // `now - *hit` can be negative (a racing Put with a later
        // timestamp; fresh by definition) but never beyond the TTL.
        if (hit.has_value() && now - *hit > kTtl) stale.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(stale.load(), 0);
  // Relaxed atomic counters still sum exactly: every Get was either a hit
  // or a miss.
  CacheStats stats = cache.stats();
  uint64_t gets = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      if ((i + t) % 3 != 0) ++gets;
    }
  }
  EXPECT_EQ(stats.hits + stats.misses, gets);
}

TEST(TtlCacheConcurrencyTest, ConcurrentSweepNeverUnexpiresEntries) {
  constexpr double kTtl = 32.0;
  TtlCache<int, double> cache(kTtl, 1 << 10, /*num_shards=*/2);
  std::atomic<long> tick{0};
  std::atomic<int> stale{0};
  std::atomic<bool> done{false};

  std::thread sweeper([&] {
    while (!done.load(std::memory_order_acquire)) {
      cache.SweepExpired(static_cast<double>(tick.load()));
    }
  });
  std::thread mutator([&] {
    for (int i = 0; i < 20000; ++i) {
      double now = static_cast<double>(tick.fetch_add(1));
      int key = i % 8;
      if (i % 2 == 0) {
        cache.Put(key, now, now);
      } else {
        std::optional<double> hit = cache.Get(key, now);
        if (hit.has_value() && now - *hit > kTtl) stale.fetch_add(1);
      }
    }
    done.store(true, std::memory_order_release);
  });
  mutator.join();
  sweeper.join();
  EXPECT_EQ(stale.load(), 0);

  // Quiescent check: advance time past the TTL; everything must expire.
  double late = static_cast<double>(tick.load()) + kTtl + 1.0;
  cache.SweepExpired(late);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TtlCacheTest, GetAllowStaleServesExpiredEntriesWithoutErasing) {
  TtlCache<int, int> cache(10.0);
  cache.Put(1, 41, 0.0);

  bool fresh = false;
  // Within TTL: fresh, counted as a hit.
  EXPECT_EQ(cache.GetAllowStale(1, 10.0, &fresh), 41);
  EXPECT_TRUE(fresh);
  // Past TTL: still served, flagged stale, counted expiration + miss —
  // and NOT erased (unlike Get), so a later stale read still works.
  EXPECT_EQ(cache.GetAllowStale(1, 11.0, &fresh), 41);
  EXPECT_FALSE(fresh);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.GetAllowStale(1, 1000.0, &fresh), 41);
  EXPECT_FALSE(fresh);
  // Absent key: miss, fresh=false.
  fresh = true;
  EXPECT_FALSE(cache.GetAllowStale(2, 0.0, &fresh).has_value());
  EXPECT_FALSE(fresh);

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.expirations, 2u);
}

TEST(TtlCacheTest, GetAllowStaleCountersMatchGetOnFreshAndAbsent) {
  // On the paths the fault-free resilient server takes (fresh hit, absent
  // miss), GetAllowStale must account exactly like Get — that is what
  // keeps the decorated server's cache stats bit-identical at fault
  // probability zero.
  TtlCache<int, int> get_cache(10.0);
  TtlCache<int, int> stale_cache(10.0);
  get_cache.Put(1, 7, 0.0);
  stale_cache.Put(1, 7, 0.0);

  bool fresh = false;
  (void)get_cache.Get(1, 5.0);
  (void)stale_cache.GetAllowStale(1, 5.0, &fresh);
  (void)get_cache.Get(2, 5.0);
  (void)stale_cache.GetAllowStale(2, 5.0, &fresh);

  CacheStats a = get_cache.stats();
  CacheStats b = stale_cache.stats();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.expirations, b.expirations);
}

TEST(TtlCacheConcurrencyTest, StaleReadersSeeOnlyStaleOrRefreshedValue) {
  // The resilience fault-window scenario: one writer refreshes a key while
  // readers use GetAllowStale at a `now` past the original TTL. Every
  // reader must observe either the old value (stale serve) or the new one
  // (refreshed) — never a torn/default value, and never a miss. Driven by
  // an atomic tick clock; no sleeps; TSan-clean.
  constexpr double kTtl = 16.0;
  constexpr int kOldValue = 1111;
  constexpr int kNewValue = 2222;
  constexpr int kReaders = 4;
  TtlCache<int, int> cache(kTtl, 1 << 10, /*num_shards=*/4);
  cache.Put(0, kOldValue, 0.0);

  std::atomic<long> tick{static_cast<long>(kTtl) + 1};  // already stale
  std::atomic<bool> done{false};
  std::atomic<int> bad{0};
  std::atomic<int> misses{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        double now = static_cast<double>(tick.load(std::memory_order_relaxed));
        bool fresh = false;
        std::optional<int> got = cache.GetAllowStale(0, now, &fresh);
        if (!got.has_value()) {
          misses.fetch_add(1);
        } else if (*got != kOldValue && *got != kNewValue) {
          bad.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 5000; ++i) {
      double now = static_cast<double>(
          tick.fetch_add(1, std::memory_order_relaxed));
      if (i % 50 == 25) cache.Put(0, kNewValue, now);  // sporadic refresh
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(misses.load(), 0);  // GetAllowStale never erases the entry
}

TEST(TtlCacheConcurrencyTest, ConcurrentReadersAtExactDeadlineAllHit) {
  // The boundary under contention: every reader looks up at exactly the
  // deadline instant while others do the same; the strict comparison
  // means all of them hit and nothing is erased.
  constexpr double kTtl = 60.0;
  constexpr int kThreads = 4;
  constexpr int kKeys = 32;
  TtlCache<int, int> cache(kTtl, 1 << 10, /*num_shards=*/8);
  for (int key = 0; key < kKeys; ++key) cache.Put(key, key, 0.0);
  std::atomic<int> missed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 200; ++rep) {
        for (int key = 0; key < kKeys; ++key) {
          if (!cache.Get(key, kTtl).has_value()) missed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(missed.load(), 0);
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
}

}  // namespace
}  // namespace ecocharge
