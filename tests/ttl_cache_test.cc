#include "eis/ttl_cache.h"

#include <string>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(TtlCacheTest, MissThenHit) {
  TtlCache<int, std::string> cache(60.0);
  EXPECT_FALSE(cache.Get(1, 0.0).has_value());
  cache.Put(1, "a", 0.0);
  auto hit = cache.Get(1, 30.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "a");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(TtlCacheTest, ExpiresAfterTtl) {
  TtlCache<int, int> cache(60.0);
  cache.Put(1, 42, 0.0);
  EXPECT_TRUE(cache.Get(1, 60.0).has_value());   // exactly at TTL: fresh
  EXPECT_FALSE(cache.Get(1, 60.1).has_value());  // past TTL: gone
  EXPECT_EQ(cache.stats().expirations, 1u);
  // The expired entry was erased.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TtlCacheTest, PutRefreshesTimestamp) {
  TtlCache<int, int> cache(60.0);
  cache.Put(1, 42, 0.0);
  cache.Put(1, 43, 50.0);
  auto hit = cache.Get(1, 100.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 43);
}

TEST(TtlCacheTest, NegativeAgeIsFresh) {
  // Simulation time can restart (new repetition); entries from the
  // "future" stay valid since values are pure functions of the key.
  TtlCache<int, int> cache(10.0);
  cache.Put(1, 7, 1000.0);
  EXPECT_TRUE(cache.Get(1, 0.0).has_value());
}

TEST(TtlCacheTest, SweepRemovesOnlyExpired) {
  TtlCache<int, int> cache(60.0);
  cache.Put(1, 1, 0.0);
  cache.Put(2, 2, 100.0);
  cache.SweepExpired(100.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Get(2, 100.0).has_value());
}

TEST(TtlCacheTest, SizeCapTriggersEviction) {
  TtlCache<int, int> cache(60.0, /*max_entries=*/4);
  for (int i = 0; i < 10; ++i) cache.Put(i, i, 0.0);
  EXPECT_LE(cache.size(), 4u);
}

TEST(TtlCacheTest, ClearEmptiesCache) {
  TtlCache<int, int> cache(60.0);
  cache.Put(1, 1, 0.0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1, 0.0).has_value());
}

TEST(TtlCacheTest, HitRateComputation) {
  CacheStats stats;
  EXPECT_EQ(stats.HitRate(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.75);
}

}  // namespace
}  // namespace ecocharge
