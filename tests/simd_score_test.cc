// Scalar-vs-SIMD kernel parity (DESIGN.md §15): the vector kernels must
// reproduce the scalar reference bit for bit — scores, midpoints, pruning
// masks, and ranking keys — on fuzzed batches covering unaligned tails,
// all-pruned inputs, ties, and non-finite lanes from degraded estimates.
// The partial selects must match full-sort-then-truncate exactly, because
// the (key, tiebreak) order is total.

#include "core/simd_score.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"

namespace ecocharge {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bitwise equality. The keys and masks are deterministic functions of the
/// input *bits*, so even NaN inputs must produce exactly equal outputs;
/// score arithmetic on NaN inputs may legally differ in payload bits only,
/// which SameOrBothNan() accounts for where it applies.
bool SameBits(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

bool SameOrBothNan(double a, double b) {
  return SameBits(a, b) || (std::isnan(a) && std::isnan(b));
}

/// Batch sizes exercising every tail shape of the 2- and 4-lane ISAs.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64, 100, 257};

/// A fuzzed EC lane value: mostly in [0, 1], sometimes degenerate.
double FuzzComponent(Rng* rng) {
  const uint64_t shape = rng->NextBounded(16);
  if (shape == 0) return kNan;
  if (shape == 1) return kInf;
  if (shape == 2) return -kInf;
  if (shape == 3) return 0.0;
  if (shape == 4) return -0.0;
  if (shape == 5) return 1.0;
  return rng->NextDouble(-0.5, 1.5);
}

TEST(DescendingKeyTest, IsMonotoneOnOrderedDoubles) {
  // Every adjacent pair of this ascending sequence must map to strictly
  // ascending keys.
  const double ordered[] = {-kInf,  -1e300, -2.5, -1.0,
                            -1e-12, -0.0,   0.0,  5e-324,
                            0.25,   1.0,    42.0, 1e300,
                            kInf};
  for (size_t i = 0; i + 1 < std::size(ordered); ++i) {
    const uint64_t ka = simd::DescendingKey(ordered[i]);
    const uint64_t kb = simd::DescendingKey(ordered[i + 1]);
    if (SameBits(ordered[i], ordered[i + 1])) {
      EXPECT_EQ(ka, kb);
    } else {
      EXPECT_LT(ka, kb) << ordered[i] << " vs " << ordered[i + 1];
    }
  }
  // -0.0 and +0.0 differ in one bit: the total order puts -0.0 first.
  EXPECT_LT(simd::DescendingKey(-0.0), simd::DescendingKey(0.0));
}

TEST(DescendingKeyTest, NanRanksBelowEverything) {
  EXPECT_EQ(simd::DescendingKey(kNan), 0u);
  EXPECT_EQ(simd::DescendingKey(-kNan), 0u);
  // ... strictly below even -inf, so a NaN score sorts last descending.
  EXPECT_GT(simd::DescendingKey(-kInf), simd::DescendingKey(kNan));
}

TEST(AscendingCostKeyTest, NanRanksAboveEverything) {
  EXPECT_EQ(simd::AscendingCostKey(kNan), ~uint64_t{0});
  // ... strictly above +inf, so a NaN cost refines last ascending.
  EXPECT_LT(simd::AscendingCostKey(kInf), simd::AscendingCostKey(kNan));
  EXPECT_LT(simd::AscendingCostKey(0.0), simd::AscendingCostKey(1.0));
}

TEST(SimdKernelTest, ScoreIntervalsMatchesScalarOnFuzzedBatches) {
  Rng rng(0x51D5C0DEULL);
  const ScoreWeights presets[] = {ScoreWeights::AWE(), ScoreWeights::OSC(),
                                  ScoreWeights::OA(), ScoreWeights::ODC(),
                                  {0.2, 0.5, 0.3}};
  for (size_t n : kSizes) {
    for (const ScoreWeights& w : presets) {
      std::vector<double> llo(n), lhi(n), alo(n), ahi(n), dlo(n), dhi(n);
      for (size_t i = 0; i < n; ++i) {
        llo[i] = FuzzComponent(&rng);
        lhi[i] = FuzzComponent(&rng);
        alo[i] = FuzzComponent(&rng);
        ahi[i] = FuzzComponent(&rng);
        dlo[i] = FuzzComponent(&rng);
        dhi[i] = FuzzComponent(&rng);
      }
      std::vector<double> min_v(n), max_v(n), min_s(n), max_s(n);
      simd::ScoreIntervals(llo.data(), lhi.data(), alo.data(), ahi.data(),
                           dlo.data(), dhi.data(), n, w, min_v.data(),
                           max_v.data());
      simd::ScoreIntervalsScalar(llo.data(), lhi.data(), alo.data(),
                                 ahi.data(), dlo.data(), dhi.data(), n, w,
                                 min_s.data(), max_s.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(SameOrBothNan(min_v[i], min_s[i]))
            << "n=" << n << " lane " << i << ": " << min_v[i] << " vs "
            << min_s[i];
        EXPECT_TRUE(SameOrBothNan(max_v[i], max_s[i]))
            << "n=" << n << " lane " << i;
      }
    }
  }
}

TEST(SimdKernelTest, ScoreIntervalsMatchesComputeScorePair) {
  // The lane kernel vs the AoS production oracle, on well-formed inputs:
  // exact bit equality, no NaN escape hatch.
  Rng rng(0xB17AB17ULL);
  const ScoreWeights w = ScoreWeights::AWE();
  const size_t n = 129;  // unaligned on every ISA
  std::vector<double> llo(n), lhi(n), alo(n), ahi(n), dlo(n), dhi(n);
  std::vector<EcIntervals> ecs(n);
  for (size_t i = 0; i < n; ++i) {
    const double l = rng.NextDouble(), a = rng.NextDouble();
    const double d = rng.NextDouble();
    ecs[i].level = Interval(l * 0.5, l);
    ecs[i].availability = Interval(a * 0.5, a);
    ecs[i].derouting = Interval(d * 0.5, d);
    llo[i] = ecs[i].level.lo;
    lhi[i] = ecs[i].level.hi;
    alo[i] = ecs[i].availability.lo;
    ahi[i] = ecs[i].availability.hi;
    dlo[i] = ecs[i].derouting.lo;
    dhi[i] = ecs[i].derouting.hi;
  }
  std::vector<double> min_v(n), max_v(n);
  simd::ScoreIntervals(llo.data(), lhi.data(), alo.data(), ahi.data(),
                       dlo.data(), dhi.data(), n, w, min_v.data(),
                       max_v.data());
  for (size_t i = 0; i < n; ++i) {
    const ScorePair sc = ComputeScorePair(ecs[i], w);
    EXPECT_TRUE(SameBits(min_v[i], sc.sc_min)) << "lane " << i;
    EXPECT_TRUE(SameBits(max_v[i], sc.sc_max)) << "lane " << i;
  }
}

TEST(SimdKernelTest, MidpointsMatchScalarAndScorePairMid) {
  Rng rng(0x1D01ULL);
  for (size_t n : kSizes) {
    std::vector<double> lo(n), hi(n), mid_v(n), mid_s(n);
    for (size_t i = 0; i < n; ++i) {
      lo[i] = FuzzComponent(&rng);
      hi[i] = FuzzComponent(&rng);
    }
    simd::Midpoints(lo.data(), hi.data(), n, mid_v.data());
    simd::MidpointsScalar(lo.data(), hi.data(), n, mid_s.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(SameOrBothNan(mid_v[i], mid_s[i])) << "n=" << n;
      // (a+b)*0.5 must also equal ScorePair::Mid()'s (a+b)/2.0 exactly.
      const ScorePair sc{lo[i], hi[i]};
      EXPECT_TRUE(SameOrBothNan(mid_s[i], sc.Mid())) << "n=" << n;
    }
  }
}

TEST(SimdKernelTest, LeMaskMatchesScalarIncludingNanAndTies) {
  Rng rng(0x3A5CULL);
  for (size_t n : kSizes) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t shape = rng.NextBounded(8);
      if (shape == 0) values[i] = kNan;
      else if (shape == 1) values[i] = kInf;
      else if (shape == 2) values[i] = 10.0;  // exactly the bound: kept
      else values[i] = rng.NextDouble(0.0, 20.0);
    }
    std::vector<uint8_t> mask_v(n, 0xAA), mask_s(n, 0x55);
    simd::LeMask(values.data(), 10.0, n, mask_v.data());
    simd::LeMaskScalar(values.data(), 10.0, n, mask_s.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(mask_v[i], mask_s[i]) << "n=" << n << " lane " << i;
      if (std::isnan(values[i])) {
        EXPECT_EQ(mask_v[i], 0) << "NaN must prune";
      }
    }
  }
}

TEST(SimdKernelTest, LeMaskAllPrunedBatch) {
  for (size_t n : kSizes) {
    std::vector<double> values(n, 5.0);
    std::vector<uint8_t> mask(n, 1);
    simd::LeMask(values.data(), /*bound=*/1.0, n, mask.data());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(mask[i], 0);
  }
}

TEST(SimdKernelTest, DescendingKeysBulkMatchesScalar) {
  Rng rng(0x4E75ULL);
  for (size_t n : kSizes) {
    std::vector<double> values(n);
    for (size_t i = 0; i < n; ++i) values[i] = FuzzComponent(&rng);
    std::vector<uint64_t> keys_v(n, 1), keys_s(n, 2);
    simd::DescendingKeys(values.data(), n, keys_v.data());
    simd::DescendingKeysScalar(values.data(), n, keys_s.data());
    for (size_t i = 0; i < n; ++i) {
      // Keys are functions of the input bits: exact equality, NaN included.
      EXPECT_EQ(keys_v[i], keys_s[i]) << "n=" << n << " lane " << i;
      EXPECT_EQ(keys_s[i], simd::DescendingKey(values[i]));
    }
  }
}

TEST(SimdKernelTest, PartialSelectMatchesFullSortWithTies) {
  Rng rng(0x5E1EC7ULL);
  for (size_t n : kSizes) {
    if (n == 0) continue;
    // Heavy duplication: keys drawn from a tiny alphabet force the
    // tiebreak lane to decide most comparisons.
    std::vector<uint64_t> keys(n);
    std::vector<uint32_t> ids(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.NextBounded(4);
      ids[i] = static_cast<uint32_t>(n - 1 - i);  // distinct, reversed
    }
    for (size_t m : {size_t{0}, size_t{1}, n / 2, n - 1, n, n + 3}) {
      std::vector<uint32_t> partial(n), full(n);
      for (uint32_t i = 0; i < n; ++i) partial[i] = full[i] = i;
      simd::PartialSelectDescending(keys.data(), ids.data(), partial.data(),
                                    n, m);
      std::sort(full.begin(), full.end(), [&](uint32_t a, uint32_t b) {
        if (keys[a] != keys[b]) return keys[a] > keys[b];
        return ids[a] < ids[b];
      });
      const size_t prefix = std::min(m, n);
      for (size_t i = 0; i < prefix; ++i) {
        EXPECT_EQ(partial[i], full[i]) << "n=" << n << " m=" << m;
      }
    }
  }
}

TEST(SimdKernelTest, PartialSelectAscendingNullTiebreakUsesSlotIndex) {
  const size_t n = 9;
  std::vector<uint64_t> keys = {3, 1, 4, 1, 5, 1, 2, 1, 3};
  std::vector<uint32_t> idx(n);
  for (uint32_t i = 0; i < n; ++i) idx[i] = i;
  simd::PartialSelectAscending(keys.data(), /*tiebreak=*/nullptr, idx.data(),
                               n, 5);
  // Ascending by key, equal keys by slot: 1@1, 1@3, 1@5, 1@7, 2@6.
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 5u);
  EXPECT_EQ(idx[3], 7u);
  EXPECT_EQ(idx[4], 6u);
}

TEST(ScoreLanesTest, ReserveAndClearKeepCapacity) {
  simd::ScoreLanes lanes;
  lanes.Reserve(64);
  const size_t cap = lanes.level_lo.capacity();
  EXPECT_GE(cap, 64u);
  for (size_t i = 0; i < 64; ++i) {
    lanes.level_lo.push_back(0.5);
    lanes.ids.push_back(static_cast<uint32_t>(i));
  }
  lanes.Clear();
  EXPECT_TRUE(lanes.level_lo.empty());
  EXPECT_TRUE(lanes.ids.empty());
  EXPECT_EQ(lanes.level_lo.capacity(), cap);
}

TEST(SimdIsaTest, LaneWidthMatchesCompiledIsa) {
  // Sanity: the dispatch picked exactly one ISA and its lane width.
#if defined(ECOCHARGE_SIMD_AVX2)
  EXPECT_EQ(simd::kLaneWidth, 4u);
#elif defined(ECOCHARGE_SIMD_SSE2) || defined(ECOCHARGE_SIMD_NEON)
  EXPECT_EQ(simd::kLaneWidth, 2u);
#else
  EXPECT_EQ(simd::kLaneWidth, 1u);
#endif
  EXPECT_NE(simd::kIsaName, nullptr);
}

}  // namespace
}  // namespace ecocharge
