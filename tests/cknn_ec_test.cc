#include "core/cknn_ec.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

ScoredCandidate Candidate(ChargerId id, double sc_min, double sc_max) {
  ScoredCandidate c;
  c.charger_id = id;
  c.score = ScorePair{sc_min, sc_max};
  return c;
}

TEST(IterativeDeepeningTest, EmptyAndZeroK) {
  EXPECT_TRUE(IterativeDeepeningIntersection({}, 3).empty());
  EXPECT_TRUE(
      IterativeDeepeningIntersection({Candidate(0, 1, 1)}, 0).empty());
}

TEST(IterativeDeepeningTest, AgreementReturnsTopK) {
  // When min and max rankings agree, the result is simply the top-k.
  std::vector<ScoredCandidate> pool;
  for (int i = 0; i < 10; ++i) {
    double s = 1.0 - 0.1 * i;
    pool.push_back(Candidate(i, s, s));
  }
  auto result = IterativeDeepeningIntersection(pool, 3);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].charger_id, 0u);
  EXPECT_EQ(result[1].charger_id, 1u);
  EXPECT_EQ(result[2].charger_id, 2u);
}

TEST(IterativeDeepeningTest, DisagreementDeepensUntilKCommon) {
  // Candidate 0 tops the min ranking, candidate 1 tops the max ranking;
  // candidate 2 is second in both. Intersection at depth 2 = {2} plus the
  // deepening pulls in the rest.
  std::vector<ScoredCandidate> pool = {
      Candidate(0, 0.9, 0.1),
      Candidate(1, 0.1, 0.9),
      Candidate(2, 0.8, 0.8),
      Candidate(3, 0.2, 0.2),
  };
  auto result = IterativeDeepeningIntersection(pool, 2);
  ASSERT_EQ(result.size(), 2u);
  // Candidate 2 is in both top-2 rankings; its midpoint (0.8) dominates.
  EXPECT_EQ(result[0].charger_id, 2u);
}

TEST(IterativeDeepeningTest, RobustCandidateBeatsOneSidedOnes) {
  // A charger that is merely good under both estimate sets must beat ones
  // that are excellent under one set and terrible under the other when k
  // is small.
  std::vector<ScoredCandidate> pool = {
      Candidate(0, 1.0, 0.0),  // only great under min-estimates
      Candidate(1, 0.0, 1.0),  // only great under max-estimates
      Candidate(2, 0.7, 0.7),  // robust
  };
  auto result = IterativeDeepeningIntersection(pool, 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].charger_id, 2u);
}

TEST(IterativeDeepeningTest, KLargerThanPoolReturnsAll) {
  std::vector<ScoredCandidate> pool = {Candidate(0, 0.5, 0.5),
                                       Candidate(1, 0.4, 0.6)};
  auto result = IterativeDeepeningIntersection(pool, 10);
  EXPECT_EQ(result.size(), 2u);
}

TEST(IterativeDeepeningTest, ResultSortedByMidpointDescending) {
  Rng rng(71);
  std::vector<ScoredCandidate> pool;
  for (int i = 0; i < 50; ++i) {
    pool.push_back(Candidate(i, rng.NextDouble(), rng.NextDouble()));
  }
  auto result = IterativeDeepeningIntersection(pool, 10);
  ASSERT_EQ(result.size(), 10u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_GE(result[i - 1].score.Mid(), result[i].score.Mid());
  }
}

TEST(IterativeDeepeningTest, MembersAreInBothDeepRankings) {
  // Property: every returned candidate appears in the top-d of BOTH
  // rankings for the terminal depth d. Verify with d = pool size (the
  // weakest guarantee that must always hold).
  Rng rng(72);
  std::vector<ScoredCandidate> pool;
  for (int i = 0; i < 30; ++i) {
    pool.push_back(Candidate(i, rng.NextDouble(), rng.NextDouble()));
  }
  auto result = IterativeDeepeningIntersection(pool, 5);
  EXPECT_EQ(result.size(), 5u);
  std::set<ChargerId> ids;
  for (const auto& c : result) ids.insert(c.charger_id);
  EXPECT_EQ(ids.size(), result.size());  // no duplicates
}

TEST(IterativeDeepeningTest, DeterministicOnTies) {
  std::vector<ScoredCandidate> pool = {
      Candidate(5, 0.5, 0.5), Candidate(1, 0.5, 0.5), Candidate(3, 0.5, 0.5)};
  auto a = IterativeDeepeningIntersection(pool, 2);
  auto b = IterativeDeepeningIntersection(pool, 2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].charger_id, b[i].charger_id);
  }
  // Ties break toward smaller ids.
  EXPECT_EQ(a[0].charger_id, 1u);
}

TEST(IterativeDeepeningTest, DuplicateCostsMatchAcrossSimdModes) {
  // Regression for the cost-ordering call sites: with many duplicate
  // (SC_min, SC_max) pairs the old raw-double comparators left the order
  // to std::sort's whims; the keyed select pins ties to ascending charger
  // id, identically on the SIMD and scalar paths.
  Rng rng(911);
  std::vector<ScoredCandidate> pool;
  const double alphabet[] = {0.25, 0.5, 0.5, 0.75};  // heavy duplication
  for (ChargerId id = 0; id < 40; ++id) {
    pool.push_back(Candidate(id, alphabet[rng.NextBounded(4)],
                             alphabet[rng.NextBounded(4)]));
  }
  for (size_t k : {0u, 1u, 7u, 40u, 64u}) {
    QueryContext ctx_simd, ctx_scalar;
    std::vector<ScoredCandidate> simd_out, scalar_out;
    IterativeDeepeningIntersection(pool, k, &ctx_simd, &simd_out,
                                   /*use_simd=*/true);
    IterativeDeepeningIntersection(pool, k, &ctx_scalar, &scalar_out,
                                   /*use_simd=*/false);
    ASSERT_EQ(simd_out.size(), scalar_out.size()) << "k=" << k;
    for (size_t i = 0; i < simd_out.size(); ++i) {
      EXPECT_EQ(simd_out[i].charger_id, scalar_out[i].charger_id)
          << "k=" << k << " rank " << i;
    }
    // Within a run of equal midpoints, ids ascend.
    for (size_t i = 1; i < simd_out.size(); ++i) {
      if (simd_out[i - 1].score.Mid() == simd_out[i].score.Mid()) {
        EXPECT_LT(simd_out[i - 1].charger_id, simd_out[i].charger_id);
      }
    }
  }
}

TEST(IterativeDeepeningTest, NanScoresRankLastDeterministically) {
  // Degraded EIS estimates can surface NaN score pairs. The total-order
  // key ranks them strictly after every real score (ties by id), instead
  // of feeding NaN to a raw double comparator (strict-weak-ordering UB).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<ScoredCandidate> pool = {
      Candidate(7, nan, nan),  Candidate(2, 0.6, 0.6), Candidate(9, nan, nan),
      Candidate(4, 0.9, 0.9),  Candidate(1, nan, nan),
  };
  for (bool use_simd : {true, false}) {
    QueryContext ctx;
    std::vector<ScoredCandidate> out;
    IterativeDeepeningIntersection(pool, pool.size(), &ctx, &out, use_simd);
    ASSERT_EQ(out.size(), pool.size());
    EXPECT_EQ(out[0].charger_id, 4u);
    EXPECT_EQ(out[1].charger_id, 2u);
    // NaN block last, ascending id.
    EXPECT_EQ(out[2].charger_id, 1u);
    EXPECT_EQ(out[3].charger_id, 7u);
    EXPECT_EQ(out[4].charger_id, 9u);
  }
}

class CknnProcessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(80);
    ASSERT_NE(env_, nullptr);
    states_ = testing_util::TinyWorkload(*env_, 4);
    ASSERT_FALSE(states_.empty());
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
};

TEST_F(CknnProcessorTest, FilterRespectsRadius) {
  CknnEcOptions opts;
  opts.radius_m = 8000.0;
  CknnEcProcessor processor(env_->estimator.get(), env_->charger_index.get(),
                            opts);
  std::vector<ChargerId> ids =
      processor.FilterCandidates(states_[0].position);
  for (ChargerId id : ids) {
    EXPECT_LE(Distance(env_->chargers[id].position, states_[0].position),
              opts.radius_m + 1e-9);
  }
  // And nothing in range is missed.
  size_t expected = 0;
  for (const EvCharger& c : env_->chargers) {
    if (Distance(c.position, states_[0].position) <= opts.radius_m) {
      ++expected;
    }
  }
  EXPECT_EQ(ids.size(), expected);
}

TEST_F(CknnProcessorTest, QueryReturnsAtMostKSortedEntries) {
  CknnEcOptions opts;
  opts.radius_m = 50000.0;
  CknnEcProcessor processor(env_->estimator.get(), env_->charger_index.get(),
                            opts);
  ScoreWeights w = ScoreWeights::AWE();
  for (const VehicleState& state : states_) {
    auto entries = processor.Query(state, 3, w);
    EXPECT_LE(entries.size(), 3u);
    for (size_t i = 1; i < entries.size(); ++i) {
      EXPECT_GE(entries[i - 1].SortKey(), entries[i].SortKey());
    }
  }
}

TEST_F(CknnProcessorTest, RefinementCollapsesDeroutingInterval) {
  CknnEcOptions opts;
  opts.radius_m = 50000.0;
  opts.refine_limit = 8;
  opts.refine_exact_derouting = true;
  CknnEcProcessor processor(env_->estimator.get(), env_->charger_index.get(),
                            opts);
  auto entries = processor.Query(states_[0], 3, ScoreWeights::AWE());
  for (const OfferingEntry& e : entries) {
    EXPECT_TRUE(e.ecs.derouting.IsExact());
  }
}

TEST_F(CknnProcessorTest, NoRefinementKeepsInterval) {
  CknnEcOptions opts;
  opts.radius_m = 50000.0;
  opts.refine_exact_derouting = false;
  CknnEcProcessor processor(env_->estimator.get(), env_->charger_index.get(),
                            opts);
  auto entries = processor.Query(states_[0], 3, ScoreWeights::AWE());
  ASSERT_FALSE(entries.empty());
  bool any_interval = false;
  for (const OfferingEntry& e : entries) {
    if (!e.ecs.derouting.IsExact()) any_interval = true;
  }
  EXPECT_TRUE(any_interval);
}

TEST_F(CknnProcessorTest, EmptyRadiusYieldsEmptyTable) {
  CknnEcOptions opts;
  opts.radius_m = 1.0;  // nothing within one meter
  CknnEcProcessor processor(env_->estimator.get(), env_->charger_index.get(),
                            opts);
  Point faraway = states_[0].position + Point{1e6, 1e6};
  VehicleState s = states_[0];
  s.position = faraway;
  auto entries = processor.Query(s, 3, ScoreWeights::AWE());
  EXPECT_TRUE(entries.empty());
}

// Bitwise comparison of two offering entry lists (every double compared by
// bit pattern, not value — the parity contract of DESIGN.md §15).
void ExpectEntriesBitIdentical(const std::vector<OfferingEntry>& a,
                               const std::vector<OfferingEntry>& b) {
  auto bits = [](double v) { return std::bit_cast<uint64_t>(v); };
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].charger_id, b[i].charger_id) << "rank " << i;
    EXPECT_EQ(bits(a[i].score.sc_min), bits(b[i].score.sc_min)) << i;
    EXPECT_EQ(bits(a[i].score.sc_max), bits(b[i].score.sc_max)) << i;
    EXPECT_EQ(bits(a[i].ecs.level.lo), bits(b[i].ecs.level.lo)) << i;
    EXPECT_EQ(bits(a[i].ecs.level.hi), bits(b[i].ecs.level.hi)) << i;
    EXPECT_EQ(bits(a[i].ecs.availability.lo), bits(b[i].ecs.availability.lo))
        << i;
    EXPECT_EQ(bits(a[i].ecs.availability.hi), bits(b[i].ecs.availability.hi))
        << i;
    EXPECT_EQ(bits(a[i].ecs.derouting.lo), bits(b[i].ecs.derouting.lo)) << i;
    EXPECT_EQ(bits(a[i].ecs.derouting.hi), bits(b[i].ecs.derouting.hi)) << i;
    EXPECT_EQ(bits(a[i].eta_s), bits(b[i].eta_s)) << i;
  }
}

TEST_F(CknnProcessorTest, KZeroReturnsEmptyTableInBothSimdModes) {
  for (bool use_simd : {true, false}) {
    CknnEcOptions opts;
    opts.radius_m = 50000.0;
    opts.use_simd = use_simd;
    CknnEcProcessor processor(env_->estimator.get(),
                              env_->charger_index.get(), opts);
    EXPECT_TRUE(processor.Query(states_[0], 0, ScoreWeights::AWE()).empty());
  }
}

TEST_F(CknnProcessorTest, OversizedRefineLimitMatchesScalarBitwise) {
  // refine_limit far beyond the candidate pool: the partial select must
  // clamp to the pool and produce the same table as the scalar oracle.
  CknnEcOptions opts;
  opts.radius_m = 50000.0;
  opts.refine_limit = 100000;  // >> any candidate count in the tiny env
  opts.refine_exact_derouting = true;
  CknnEcOptions scalar_opts = opts;
  scalar_opts.use_simd = false;
  CknnEcProcessor simd_proc(env_->estimator.get(), env_->charger_index.get(),
                            opts);
  CknnEcProcessor scalar_proc(env_->estimator.get(),
                              env_->charger_index.get(), scalar_opts);
  for (const VehicleState& state : states_) {
    for (size_t k : {0u, 3u, 500u}) {
      auto simd_entries = simd_proc.Query(state, k, ScoreWeights::AWE());
      auto scalar_entries = scalar_proc.Query(state, k, ScoreWeights::AWE());
      ExpectEntriesBitIdentical(simd_entries, scalar_entries);
      EXPECT_LE(simd_entries.size(), k);
    }
  }
}

TEST_F(CknnProcessorTest, AblationPathMatchesScalarBitwise) {
  // use_intersection = false routes ranking through the plain midpoint
  // top-pool path — it shares the key/select machinery, so the parity
  // contract covers it too.
  CknnEcOptions opts;
  opts.radius_m = 50000.0;
  opts.use_intersection = false;
  CknnEcOptions scalar_opts = opts;
  scalar_opts.use_simd = false;
  CknnEcProcessor simd_proc(env_->estimator.get(), env_->charger_index.get(),
                            opts);
  CknnEcProcessor scalar_proc(env_->estimator.get(),
                              env_->charger_index.get(), scalar_opts);
  for (const VehicleState& state : states_) {
    ExpectEntriesBitIdentical(simd_proc.Query(state, 4, ScoreWeights::AWE()),
                              scalar_proc.Query(state, 4, ScoreWeights::AWE()));
  }
}

}  // namespace
}  // namespace ecocharge
