#include "core/score.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/rng.h"
#include "core/simd_score.h"

namespace ecocharge {
namespace {

EcIntervals SampleEcs() {
  EcIntervals ecs;
  ecs.level = Interval{0.2, 0.6};
  ecs.availability = Interval{0.5, 0.9};
  ecs.derouting = Interval{0.1, 0.3};
  return ecs;
}

TEST(ScoreWeightsTest, PresetsAreValid) {
  EXPECT_TRUE(ScoreWeights::AWE().Validate().ok());
  EXPECT_TRUE(ScoreWeights::OSC().Validate().ok());
  EXPECT_TRUE(ScoreWeights::OA().Validate().ok());
  EXPECT_TRUE(ScoreWeights::ODC().Validate().ok());
}

TEST(ScoreWeightsTest, RejectsBadWeights) {
  ScoreWeights w{0.5, 0.5, 0.5};
  EXPECT_FALSE(w.Validate().ok());
  ScoreWeights neg{-0.2, 0.6, 0.6};
  EXPECT_FALSE(neg.Validate().ok());
}

TEST(ScorePairTest, MatchesEquations4And5) {
  // SC_min = L_min w1 + A_min w2 + (1 - D_min) w3, and the max analogue.
  EcIntervals ecs = SampleEcs();
  ScoreWeights w{0.5, 0.3, 0.2};
  ScorePair sc = ComputeScorePair(ecs, w);
  EXPECT_NEAR(sc.sc_min, 0.2 * 0.5 + 0.5 * 0.3 + (1 - 0.1) * 0.2, 1e-12);
  EXPECT_NEAR(sc.sc_max, 0.6 * 0.5 + 0.9 * 0.3 + (1 - 0.3) * 0.2, 1e-12);
}

TEST(ScorePairTest, EqualWeightsExample) {
  // The paper's worked example logic: better level and lower derouting
  // must win under equal weights.
  ScoreWeights w = ScoreWeights::AWE();
  EcIntervals good;
  good.level = Interval::Exact(0.9);
  good.availability = Interval::Exact(0.8);
  good.derouting = Interval::Exact(0.1);
  EcIntervals bad;
  bad.level = Interval::Exact(0.3);
  bad.availability = Interval::Exact(0.8);
  bad.derouting = Interval::Exact(0.5);
  EXPECT_GT(ComputeScorePair(good, w).Mid(), ComputeScorePair(bad, w).Mid());
}

TEST(ExactScoreTest, BoundsForNormalizedInputs) {
  ScoreWeights w = ScoreWeights::AWE();
  EXPECT_NEAR(ComputeExactScore(1.0, 1.0, 0.0, w), 1.0, 1e-12);
  EXPECT_NEAR(ComputeExactScore(0.0, 0.0, 1.0, w), 0.0, 1e-12);
}

TEST(ExactScoreTest, SingleObjectivePresetsIsolateTerms) {
  EXPECT_DOUBLE_EQ(ComputeExactScore(0.7, 0.1, 0.9, ScoreWeights::OSC()),
                   0.7);
  EXPECT_DOUBLE_EQ(ComputeExactScore(0.7, 0.1, 0.9, ScoreWeights::OA()), 0.1);
  EXPECT_NEAR(ComputeExactScore(0.7, 0.1, 0.9, ScoreWeights::ODC()), 0.1,
              1e-12);
}

TEST(ScoreEnclosureTest, ContainsAllRealizations) {
  Rng rng(66);
  ScoreWeights w = ScoreWeights::AWE();
  for (int trial = 0; trial < 200; ++trial) {
    EcIntervals ecs;
    ecs.level = Interval::FromUnordered(rng.NextDouble(), rng.NextDouble());
    ecs.availability =
        Interval::FromUnordered(rng.NextDouble(), rng.NextDouble());
    ecs.derouting =
        Interval::FromUnordered(rng.NextDouble(), rng.NextDouble());
    Interval enclosure = ComputeScoreEnclosure(ecs, w);
    // Sample realizations inside the EC intervals.
    for (int s = 0; s < 5; ++s) {
      double l = rng.NextDouble(ecs.level.lo, ecs.level.hi + 1e-15);
      double a = rng.NextDouble(ecs.availability.lo,
                                ecs.availability.hi + 1e-15);
      double d = rng.NextDouble(ecs.derouting.lo, ecs.derouting.hi + 1e-15);
      double sc = ComputeExactScore(l, a, d, w);
      EXPECT_GE(sc, enclosure.lo - 1e-9);
      EXPECT_LE(sc, enclosure.hi + 1e-9);
    }
    // The paper's ScorePair lies within the rigorous enclosure too.
    ScorePair pair = ComputeScorePair(ecs, w);
    EXPECT_GE(pair.sc_min, enclosure.lo - 1e-9);
    EXPECT_LE(pair.sc_min, enclosure.hi + 1e-9);
    EXPECT_GE(pair.sc_max, enclosure.lo - 1e-9);
    EXPECT_LE(pair.sc_max, enclosure.hi + 1e-9);
  }
}

TEST(ScorePairTest, ExactIntervalsCollapsePair) {
  EcIntervals ecs;
  ecs.level = Interval::Exact(0.4);
  ecs.availability = Interval::Exact(0.6);
  ecs.derouting = Interval::Exact(0.2);
  ScoreWeights w = ScoreWeights::AWE();
  ScorePair sc = ComputeScorePair(ecs, w);
  EXPECT_DOUBLE_EQ(sc.sc_min, sc.sc_max);
  EXPECT_DOUBLE_EQ(sc.Mid(), ComputeExactScore(0.4, 0.6, 0.2, w));
}

// --- Degenerate-input semantics (pinned; DESIGN.md §15) ------------------
// The scoring arithmetic itself is IEEE-transparent: degraded EIS inputs
// (NaN from a failed estimate, inf from an unreachable charger) propagate
// into the score pair unchanged, and the *ranking* layer — not the scorer —
// pins their order via the total-order key: NaN strictly last, -inf below
// every finite score. The SIMD kernels must reproduce these mask-for-mask
// (asserted in simd_score_test.cc).

TEST(ScorePairDegenerateTest, ZeroWidthIntervalsGiveZeroWidthPair) {
  // SC_min == SC_max bitwise, and Mid() reproduces them bitwise too (no
  // rounding detour through (a + b) / 2 can move a bit when a == b).
  EcIntervals ecs;
  ecs.level = Interval::Exact(0.3);
  ecs.availability = Interval::Exact(0.7);
  ecs.derouting = Interval::Exact(0.4);
  ScorePair sc = ComputeScorePair(ecs, ScoreWeights::AWE());
  EXPECT_EQ(std::bit_cast<uint64_t>(sc.sc_min),
            std::bit_cast<uint64_t>(sc.sc_max));
  EXPECT_EQ(std::bit_cast<uint64_t>(sc.Mid()),
            std::bit_cast<uint64_t>(sc.sc_min));
}

TEST(ScorePairDegenerateTest, NanComponentPropagatesToNanScore) {
  EcIntervals ecs = SampleEcs();
  // Direct member assignment: the Interval constructor's lo <= hi
  // precondition is (correctly) unsatisfiable for NaN.
  ecs.availability.lo = std::numeric_limits<double>::quiet_NaN();
  ScorePair sc = ComputeScorePair(ecs, ScoreWeights::AWE());
  EXPECT_TRUE(std::isnan(sc.sc_min));
  EXPECT_FALSE(std::isnan(sc.sc_max));  // hi lane untouched
  EXPECT_TRUE(std::isnan(sc.Mid()));    // midpoint inherits the NaN
  // The ranking key pins NaN strictly below every real value.
  EXPECT_EQ(simd::DescendingKey(sc.Mid()), 0u);
  EXPECT_LT(simd::DescendingKey(sc.Mid()),
            simd::DescendingKey(-std::numeric_limits<double>::infinity()));
}

TEST(ScorePairDegenerateTest, InfiniteDeroutingYieldsMinusInfScore) {
  EcIntervals ecs = SampleEcs();
  ecs.derouting.lo = std::numeric_limits<double>::infinity();
  ScorePair sc = ComputeScorePair(ecs, ScoreWeights::AWE());
  // (1 - inf) * w3 = -inf: an unreachable charger scores -inf, which the
  // total order ranks below every finite score but above NaN.
  EXPECT_TRUE(std::isinf(sc.sc_min));
  EXPECT_LT(sc.sc_min, 0.0);
  EXPECT_LT(simd::DescendingKey(sc.sc_min), simd::DescendingKey(-1e300));
  EXPECT_GT(simd::DescendingKey(sc.sc_min),
            simd::DescendingKey(std::numeric_limits<double>::quiet_NaN()));
}

TEST(ScorePairDegenerateTest, ZeroWeightSilencesNanComponent) {
  // A degraded component with weight 0 contributes 0 * NaN = NaN under
  // IEEE — pin that the single-objective presets do NOT silence a NaN in
  // their zeroed components (0 * NaN is NaN, not 0). Consumers that need
  // isolation must sanitize inputs, not rely on the weights.
  EcIntervals ecs = SampleEcs();
  ecs.availability.lo = std::numeric_limits<double>::quiet_NaN();
  ScorePair sc = ComputeScorePair(ecs, ScoreWeights::OSC());
  EXPECT_TRUE(std::isnan(sc.sc_min));
}

}  // namespace
}  // namespace ecocharge
