#include "eis/modes.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(ModesTest, NamesDistinct) {
  EXPECT_NE(ExecutionModeName(ExecutionMode::kEmbedded),
            ExecutionModeName(ExecutionMode::kServer));
  EXPECT_NE(ExecutionModeName(ExecutionMode::kServer),
            ExecutionModeName(ExecutionMode::kEdge));
}

TEST(ModesTest, ServerModeIndependentOfApiBatches) {
  ModeLatencyModel model;
  double a = model.EndToEndMs(ExecutionMode::kServer, 10.0, 0);
  double b = model.EndToEndMs(ExecutionMode::kServer, 10.0, 5);
  EXPECT_EQ(a, b);  // server already holds the data
}

TEST(ModesTest, EmbeddedSlowerThanEdgeSlowerThanServerCpu) {
  ModeLatencyModel model;
  double embedded = model.EndToEndMs(ExecutionMode::kEmbedded, 100.0, 1);
  double edge = model.EndToEndMs(ExecutionMode::kEdge, 100.0, 1);
  double server = model.EndToEndMs(ExecutionMode::kServer, 100.0, 1);
  EXPECT_GT(embedded, edge);
  EXPECT_GT(edge, server);
}

TEST(ModesTest, TinyComputeFavorsLocalExecution) {
  // With negligible compute the local modes skip the round trip and win.
  ModeLatencyModel model;
  double embedded = model.EndToEndMs(ExecutionMode::kEmbedded, 0.1, 1);
  double server = model.EndToEndMs(ExecutionMode::kServer, 0.1, 1);
  EXPECT_LT(embedded, server);
}

TEST(ModesTest, CrossoverAtExpectedComputeTime) {
  // Mode 2 total: c + rtt. Mode 1 total: c*f + fetch. Mode 1 loses once
  // c (f - 1) > rtt - fetch.
  ModeLatencyModel model;
  double crossover = (model.server_rtt_ms - model.per_api_batch_ms) /
                     (model.embedded_cpu_factor - 1.0);
  double below = crossover * 0.5;
  double above = crossover * 2.0;
  EXPECT_LT(model.EndToEndMs(ExecutionMode::kEmbedded, below, 1),
            model.EndToEndMs(ExecutionMode::kServer, below, 1));
  EXPECT_GT(model.EndToEndMs(ExecutionMode::kEmbedded, above, 1),
            model.EndToEndMs(ExecutionMode::kServer, above, 1));
}

TEST(ModesTest, LatencyScalesWithCompute) {
  ModeLatencyModel model;
  for (ExecutionMode mode : {ExecutionMode::kEmbedded, ExecutionMode::kServer,
                             ExecutionMode::kEdge}) {
    EXPECT_LT(model.EndToEndMs(mode, 1.0, 1), model.EndToEndMs(mode, 50.0, 1));
  }
}

}  // namespace
}  // namespace ecocharge
