#include "graph/road_network.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> Triangle() {
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({100, 0});
  NodeId c = builder.AddNode({0, 100});
  EXPECT_TRUE(builder.AddBidirectional(a, b, RoadClass::kLocal).ok());
  EXPECT_TRUE(builder.AddBidirectional(b, c, RoadClass::kArterial).ok());
  EXPECT_TRUE(builder.AddBidirectional(c, a, RoadClass::kHighway).ok());
  return builder.Build().MoveValueUnsafe();
}

TEST(GraphBuilderTest, EmptyGraphFails) {
  GraphBuilder builder;
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, RejectsBadEndpoints) {
  GraphBuilder builder;
  builder.AddNode({0, 0});
  EXPECT_FALSE(builder.AddEdge(0, 5, RoadClass::kLocal).ok());
  EXPECT_FALSE(builder.AddEdge(0, 0, RoadClass::kLocal).ok());
}

TEST(GraphBuilderTest, DefaultLengthIsEuclidean) {
  auto network = Triangle();
  // Edge 0 is a -> b with length 100.
  EXPECT_DOUBLE_EQ(network->edge(0).length_m, 100.0);
}

TEST(GraphBuilderTest, ExplicitLengthOverrides) {
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({100, 0});
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal, 250.0).ok());
  auto network = builder.Build().MoveValueUnsafe();
  EXPECT_DOUBLE_EQ(network->edge(0).length_m, 250.0);
}

TEST(GraphBuilderTest, CoincidentNodesGetPositiveLength) {
  GraphBuilder builder;
  NodeId a = builder.AddNode({5, 5});
  NodeId b = builder.AddNode({5, 5});
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal).ok());
  auto network = builder.Build().MoveValueUnsafe();
  EXPECT_GT(network->edge(0).length_m, 0.0);
}

TEST(RoadNetworkTest, CsrAdjacencyIsConsistent) {
  auto network = Triangle();
  EXPECT_EQ(network->NumNodes(), 3u);
  EXPECT_EQ(network->NumEdges(), 6u);
  size_t out_total = 0, in_total = 0;
  for (NodeId v = 0; v < network->NumNodes(); ++v) {
    out_total += network->OutEdges(v).size();
    in_total += network->InEdges(v).size();
    for (EdgeId e : network->OutEdges(v)) {
      EXPECT_EQ(network->edge(e).from, v);
    }
    for (EdgeId e : network->InEdges(v)) {
      EXPECT_EQ(network->edge(e).to, v);
    }
  }
  EXPECT_EQ(out_total, network->NumEdges());
  EXPECT_EQ(in_total, network->NumEdges());
}

TEST(RoadNetworkTest, BoundsCoverNodes) {
  auto network = Triangle();
  EXPECT_TRUE(network->Bounds().Contains({0, 0}));
  EXPECT_TRUE(network->Bounds().Contains({100, 0}));
  EXPECT_FALSE(network->Bounds().Contains({101, 101}));
}

TEST(RoadNetworkTest, NearestNodeSnaps) {
  auto network = Triangle();
  EXPECT_EQ(network->NearestNode({2, 3}), 0u);
  EXPECT_EQ(network->NearestNode({98, 5}), 1u);
  EXPECT_EQ(network->NearestNode({-5, 120}), 2u);
}

TEST(RoadNetworkTest, StrongConnectivityDetection) {
  auto network = Triangle();
  EXPECT_TRUE(network->IsStronglyConnected());

  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({1, 0});
  builder.AddNode({2, 0});  // isolated node c
  ASSERT_TRUE(builder.AddBidirectional(a, b, RoadClass::kLocal).ok());
  auto broken = builder.Build().MoveValueUnsafe();
  EXPECT_FALSE(broken->IsStronglyConnected());
}

TEST(RoadNetworkTest, DirectedOnlyIsNotStronglyConnected) {
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({1, 0});
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal).ok());
  auto network = builder.Build().MoveValueUnsafe();
  EXPECT_FALSE(network->IsStronglyConnected());
}

TEST(RoadClassTest, SpeedsAreOrdered) {
  EXPECT_GT(FreeFlowSpeed(RoadClass::kHighway),
            FreeFlowSpeed(RoadClass::kArterial));
  EXPECT_GT(FreeFlowSpeed(RoadClass::kArterial),
            FreeFlowSpeed(RoadClass::kLocal));
}

TEST(EdgeTest, FreeFlowSecondsUsesClassSpeed) {
  Edge e;
  e.length_m = 1000.0;
  e.road_class = RoadClass::kHighway;
  EXPECT_NEAR(e.FreeFlowSeconds(), 1000.0 / (120.0 / 3.6), 1e-9);
}

TEST(GraphCountsTest, GuardsThe32BitIdSpace) {
  EXPECT_TRUE(ValidateGraphCounts(1, 0).ok());
  EXPECT_TRUE(ValidateGraphCounts(kMaxNodeCount, kMaxEdgeCount).ok());
  // One past the id space: the uint64 tallies must be rejected before they
  // would be narrowed into 32-bit NodeId/EdgeId offsets.
  auto too_many_nodes = ValidateGraphCounts(kMaxNodeCount + 1, 0);
  ASSERT_FALSE(too_many_nodes.ok());
  EXPECT_EQ(too_many_nodes.code(), StatusCode::kInvalidArgument);
  auto too_many_edges = ValidateGraphCounts(1, kMaxEdgeCount + 1);
  ASSERT_FALSE(too_many_edges.ok());
  EXPECT_EQ(too_many_edges.code(), StatusCode::kInvalidArgument);
}

TEST(RoadNetworkTest, ArcsAreSortedByTarget) {
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({10, 0});
  NodeId c = builder.AddNode({0, 10});
  NodeId d = builder.AddNode({10, 10});
  // Insert out-edges of `a` in scrambled order; the CSR must sort them.
  ASSERT_TRUE(builder.AddEdge(a, d, RoadClass::kLocal).ok());
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal).ok());
  ASSERT_TRUE(builder.AddEdge(a, c, RoadClass::kLocal).ok());
  ASSERT_TRUE(builder.AddEdge(a, c, RoadClass::kHighway, 5.0).ok());
  auto network = builder.Build().MoveValueUnsafe();
  auto arcs = network->OutArcs(a);
  ASSERT_EQ(arcs.size(), 4u);
  EXPECT_EQ(arcs[0].node, b);
  EXPECT_EQ(arcs[1].node, c);
  EXPECT_EQ(arcs[1].length_m, 5.0);  // parallel edges: shortest first
  EXPECT_EQ(arcs[2].node, c);
  EXPECT_EQ(arcs[3].node, d);
  // edge() reconstructs the source endpoint from the offset array.
  EXPECT_EQ(network->edge(network->FirstOutEdge(a) + 3).from, a);
  EXPECT_EQ(network->edge(network->FirstOutEdge(a) + 3).to, d);
}

// EdgeSource inverts the out-offset array with a binary search (the cold
// path behind edge(); hot loops never call it). The pivot cases are runs of
// single-arc nodes — where offsets[v] == e and upper_bound must still land
// on v, not v+1 — and empty-adjacency nodes, whose repeated offset values
// must be skipped over.
TEST(RoadNetworkTest, EdgeSourceSingleArcChain) {
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({1, 0});
  NodeId c = builder.AddNode({2, 0});
  NodeId d = builder.AddNode({3, 0});
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal).ok());
  ASSERT_TRUE(builder.AddEdge(b, c, RoadClass::kLocal).ok());
  ASSERT_TRUE(builder.AddEdge(c, d, RoadClass::kLocal).ok());
  ASSERT_TRUE(builder.AddEdge(d, a, RoadClass::kLocal).ok());
  auto network = builder.Build().MoveValueUnsafe();
  // Every node owns exactly one edge: offsets are [0,1,2,3,4] and every
  // edge id equals its owner's offset.
  EXPECT_EQ(network->EdgeSource(0), a);
  EXPECT_EQ(network->EdgeSource(1), b);
  EXPECT_EQ(network->EdgeSource(2), c);
  EXPECT_EQ(network->EdgeSource(3), d);
}

TEST(RoadNetworkTest, EdgeSourceSkipsEmptyAdjacencyRuns) {
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({1, 0});  // no out-edges
  NodeId c = builder.AddNode({2, 0});
  NodeId d = builder.AddNode({3, 0});  // no out-edges either
  ASSERT_TRUE(builder.AddEdge(a, c, RoadClass::kLocal).ok());
  ASSERT_TRUE(builder.AddEdge(c, b, RoadClass::kLocal).ok());
  ASSERT_TRUE(builder.AddEdge(c, d, RoadClass::kLocal).ok());
  auto network = builder.Build().MoveValueUnsafe();
  // Offsets are [0,1,1,3,3]: b and d contribute duplicate boundary values
  // that the search must step past.
  EXPECT_EQ(network->EdgeSource(0), a);
  EXPECT_EQ(network->EdgeSource(1), c);
  EXPECT_EQ(network->EdgeSource(2), c);
  EXPECT_EQ(network->edge(1).from, c);
  EXPECT_EQ(network->edge(2).from, c);
}

TEST(RoadNetworkTest, EdgeSourceMatchesOwnershipOnRandomGraph) {
  // Randomized cross-check: EdgeSource must agree with OutEdges ownership
  // for every edge, including the global first and last edge ids.
  GraphBuilder builder;
  constexpr NodeId kNodes = 64;
  for (NodeId v = 0; v < kNodes; ++v) {
    builder.AddNode({static_cast<double>(v % 8), static_cast<double>(v / 8)});
  }
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 300; ++i) {
    const NodeId from = static_cast<NodeId>(next() % kNodes);
    const NodeId to = static_cast<NodeId>(next() % kNodes);
    if (from == to) continue;
    ASSERT_TRUE(builder.AddEdge(from, to, RoadClass::kLocal).ok());
  }
  auto network = builder.Build().MoveValueUnsafe();
  ASSERT_GT(network->NumEdges(), 0u);
  for (NodeId v = 0; v < network->NumNodes(); ++v) {
    for (EdgeId e : network->OutEdges(v)) {
      EXPECT_EQ(network->EdgeSource(e), v) << "edge " << e;
    }
  }
  EXPECT_EQ(network->EdgeSource(0), network->edge(0).from);
  const EdgeId last = static_cast<EdgeId>(network->NumEdges() - 1);
  EXPECT_EQ(network->EdgeSource(last), network->edge(last).from);
}

namespace {

/// Minimal chunked source: a directed cycle over `n` nodes, one chunk per
/// id range.
class CycleSource : public ChunkedEdgeSource {
 public:
  CycleSource(uint64_t n, uint64_t chunks) : n_(n), chunks_(chunks) {}
  uint64_t NumNodes() const override { return n_; }
  uint64_t NumChunks() const override { return chunks_; }
  Point NodePosition(NodeId v) const override {
    return Point{static_cast<double>(v), 0.0};
  }
  void EmitEdges(uint64_t chunk, EdgeSink& sink) const override {
    uint64_t v0 = chunk * n_ / chunks_;
    uint64_t v1 = (chunk + 1) * n_ / chunks_;
    for (uint64_t v = v0; v < v1; ++v) {
      sink.Directed(static_cast<NodeId>(v),
                    static_cast<NodeId>((v + 1) % n_), RoadClass::kLocal);
    }
  }

 private:
  uint64_t n_;
  uint64_t chunks_;
};

}  // namespace

TEST(ChunkedBuildTest, BuildsCycleAcrossChunks) {
  CycleSource source(10, 4);
  auto result = BuildFromChunkedSource(source);
  ASSERT_TRUE(result.ok()) << result.status();
  auto network = result.MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 10u);
  EXPECT_EQ(network->NumEdges(), 10u);
  EXPECT_TRUE(network->IsStronglyConnected());
  for (NodeId v = 0; v < 10; ++v) {
    ASSERT_EQ(network->OutArcs(v).size(), 1u);
    EXPECT_EQ(network->OutArcs(v)[0].node, (v + 1) % 10);
    ASSERT_EQ(network->InArcs(v).size(), 1u);
  }
}

TEST(ChunkedBuildTest, RejectsOutOfRangeEndpointAndSelfLoop) {
  class BadSource : public CycleSource {
   public:
    explicit BadSource(bool self_loop)
        : CycleSource(3, 1), self_loop_(self_loop) {}
    void EmitEdges(uint64_t, EdgeSink& sink) const override {
      if (self_loop_) {
        sink.Directed(1, 1, RoadClass::kLocal);
      } else {
        sink.Directed(0, 7, RoadClass::kLocal);
      }
    }

   private:
    bool self_loop_;
  };
  BadSource oob(/*self_loop=*/false);
  EXPECT_FALSE(BuildFromChunkedSource(oob).ok());
  BadSource loop(/*self_loop=*/true);
  EXPECT_FALSE(BuildFromChunkedSource(loop).ok());
}

}  // namespace
}  // namespace ecocharge
