#include "graph/road_network.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> Triangle() {
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({100, 0});
  NodeId c = builder.AddNode({0, 100});
  EXPECT_TRUE(builder.AddBidirectional(a, b, RoadClass::kLocal).ok());
  EXPECT_TRUE(builder.AddBidirectional(b, c, RoadClass::kArterial).ok());
  EXPECT_TRUE(builder.AddBidirectional(c, a, RoadClass::kHighway).ok());
  return builder.Build().MoveValueUnsafe();
}

TEST(GraphBuilderTest, EmptyGraphFails) {
  GraphBuilder builder;
  EXPECT_FALSE(builder.Build().ok());
}

TEST(GraphBuilderTest, RejectsBadEndpoints) {
  GraphBuilder builder;
  builder.AddNode({0, 0});
  EXPECT_FALSE(builder.AddEdge(0, 5, RoadClass::kLocal).ok());
  EXPECT_FALSE(builder.AddEdge(0, 0, RoadClass::kLocal).ok());
}

TEST(GraphBuilderTest, DefaultLengthIsEuclidean) {
  auto network = Triangle();
  // Edge 0 is a -> b with length 100.
  EXPECT_DOUBLE_EQ(network->edge(0).length_m, 100.0);
}

TEST(GraphBuilderTest, ExplicitLengthOverrides) {
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({100, 0});
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal, 250.0).ok());
  auto network = builder.Build().MoveValueUnsafe();
  EXPECT_DOUBLE_EQ(network->edge(0).length_m, 250.0);
}

TEST(GraphBuilderTest, CoincidentNodesGetPositiveLength) {
  GraphBuilder builder;
  NodeId a = builder.AddNode({5, 5});
  NodeId b = builder.AddNode({5, 5});
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal).ok());
  auto network = builder.Build().MoveValueUnsafe();
  EXPECT_GT(network->edge(0).length_m, 0.0);
}

TEST(RoadNetworkTest, CsrAdjacencyIsConsistent) {
  auto network = Triangle();
  EXPECT_EQ(network->NumNodes(), 3u);
  EXPECT_EQ(network->NumEdges(), 6u);
  size_t out_total = 0, in_total = 0;
  for (NodeId v = 0; v < network->NumNodes(); ++v) {
    out_total += network->OutEdges(v).size();
    in_total += network->InEdges(v).size();
    for (EdgeId e : network->OutEdges(v)) {
      EXPECT_EQ(network->edge(e).from, v);
    }
    for (EdgeId e : network->InEdges(v)) {
      EXPECT_EQ(network->edge(e).to, v);
    }
  }
  EXPECT_EQ(out_total, network->NumEdges());
  EXPECT_EQ(in_total, network->NumEdges());
}

TEST(RoadNetworkTest, BoundsCoverNodes) {
  auto network = Triangle();
  EXPECT_TRUE(network->Bounds().Contains({0, 0}));
  EXPECT_TRUE(network->Bounds().Contains({100, 0}));
  EXPECT_FALSE(network->Bounds().Contains({101, 101}));
}

TEST(RoadNetworkTest, NearestNodeSnaps) {
  auto network = Triangle();
  EXPECT_EQ(network->NearestNode({2, 3}), 0u);
  EXPECT_EQ(network->NearestNode({98, 5}), 1u);
  EXPECT_EQ(network->NearestNode({-5, 120}), 2u);
}

TEST(RoadNetworkTest, StrongConnectivityDetection) {
  auto network = Triangle();
  EXPECT_TRUE(network->IsStronglyConnected());

  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({1, 0});
  builder.AddNode({2, 0});  // isolated node c
  ASSERT_TRUE(builder.AddBidirectional(a, b, RoadClass::kLocal).ok());
  auto broken = builder.Build().MoveValueUnsafe();
  EXPECT_FALSE(broken->IsStronglyConnected());
}

TEST(RoadNetworkTest, DirectedOnlyIsNotStronglyConnected) {
  GraphBuilder builder;
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({1, 0});
  ASSERT_TRUE(builder.AddEdge(a, b, RoadClass::kLocal).ok());
  auto network = builder.Build().MoveValueUnsafe();
  EXPECT_FALSE(network->IsStronglyConnected());
}

TEST(RoadClassTest, SpeedsAreOrdered) {
  EXPECT_GT(FreeFlowSpeed(RoadClass::kHighway),
            FreeFlowSpeed(RoadClass::kArterial));
  EXPECT_GT(FreeFlowSpeed(RoadClass::kArterial),
            FreeFlowSpeed(RoadClass::kLocal));
}

TEST(EdgeTest, FreeFlowSecondsUsesClassSpeed) {
  Edge e;
  e.length_m = 1000.0;
  e.road_class = RoadClass::kHighway;
  EXPECT_NEAR(e.FreeFlowSeconds(), 1000.0 / (120.0 / 3.6), 1e-9);
}

}  // namespace
}  // namespace ecocharge
