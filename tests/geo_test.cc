#include <cmath>

#include <gtest/gtest.h>

#include "geo/bbox.h"
#include "geo/latlng.h"
#include "geo/point.h"

namespace ecocharge {
namespace {

TEST(PointTest, Arithmetic) {
  Point a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Point{1.5, -0.5}));
}

TEST(PointTest, DotAndCross) {
  Point a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_EQ(a.Dot(b), 0.0);
  EXPECT_EQ(a.Cross(b), 1.0);
  EXPECT_EQ(b.Cross(a), -1.0);
}

TEST(PointTest, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
}

TEST(LatLngTest, HaversineKnownDistance) {
  // Berlin (52.52, 13.405) to Munich (48.1351, 11.582): ~504 km.
  double d = HaversineMeters({52.52, 13.405}, {48.1351, 11.582});
  EXPECT_NEAR(d, 504000.0, 5000.0);
}

TEST(LatLngTest, HaversineZeroAndSymmetry) {
  LatLng a{40.0, -75.0}, b{41.0, -73.0};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, a), 0.0);
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(ProjectionTest, RoundTripNearOrigin) {
  Projection proj(LatLng{53.14, 8.21});  // Oldenburg
  LatLng sample{53.20, 8.30};
  LatLng back = proj.Inverse(proj.Forward(sample));
  EXPECT_NEAR(back.lat, sample.lat, 1e-9);
  EXPECT_NEAR(back.lng, sample.lng, 1e-9);
}

TEST(ProjectionTest, DistancesMatchHaversineLocally) {
  Projection proj(LatLng{37.0, -120.0});
  LatLng a{37.05, -120.1}, b{36.95, -119.9};
  double planar = Distance(proj.Forward(a), proj.Forward(b));
  double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 0.01);
}

TEST(BoundingBoxTest, EmptyByDefault) {
  BoundingBox box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_EQ(box.Width(), 0.0);
}

TEST(BoundingBoxTest, ExtendAndContain) {
  BoundingBox box;
  box.Extend({1.0, 2.0});
  box.Extend({-1.0, 5.0});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains({0.0, 3.0}));
  EXPECT_TRUE(box.Contains({1.0, 2.0}));  // boundary counts
  EXPECT_FALSE(box.Contains({2.0, 3.0}));
  EXPECT_EQ(box.Width(), 2.0);
  EXPECT_EQ(box.Height(), 3.0);
  EXPECT_EQ(box.Center(), (Point{0.0, 3.5}));
}

TEST(BoundingBoxTest, Intersections) {
  BoundingBox a{{0, 0}, {2, 2}};
  BoundingBox b{{1, 1}, {3, 3}};
  BoundingBox c{{5, 5}, {6, 6}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching edges intersect.
  BoundingBox d{{2, 0}, {4, 2}};
  EXPECT_TRUE(a.Intersects(d));
}

TEST(BoundingBoxTest, DistanceToPoint) {
  BoundingBox box{{0, 0}, {2, 2}};
  EXPECT_EQ(box.DistanceTo({1, 1}), 0.0);  // inside
  EXPECT_EQ(box.DistanceTo({4, 1}), 2.0);  // right of box
  EXPECT_DOUBLE_EQ(box.DistanceTo({5, 6}), 5.0);  // corner 3-4-5
  EXPECT_DOUBLE_EQ(box.DistanceSquaredTo({5, 6}), 25.0);
}

TEST(BoundingBoxTest, ExpandedAddsMargin) {
  BoundingBox box{{0, 0}, {1, 1}};
  BoundingBox bigger = box.Expanded(0.5);
  EXPECT_TRUE(bigger.Contains({-0.4, -0.4}));
  EXPECT_TRUE(bigger.Contains({1.4, 1.4}));
}

TEST(BoundingBoxTest, ExtendWithBox) {
  BoundingBox a{{0, 0}, {1, 1}};
  BoundingBox b{{3, -2}, {4, 0.5}};
  a.Extend(b);
  EXPECT_TRUE(a.Contains({4, -2}));
  BoundingBox empty;
  a.Extend(empty);  // extending with empty is a no-op
  EXPECT_EQ(a.min, (Point{0, -2}));
}

}  // namespace
}  // namespace ecocharge
