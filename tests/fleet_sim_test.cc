#include "core/fleet_sim.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/ecocharge.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

class FleetSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(60);
    ASSERT_NE(env_, nullptr);
    weights_ = ScoreWeights::AWE();
    eco_ = std::make_unique<EcoChargeRanker>(
        env_->estimator.get(), env_->charger_index.get(), weights_,
        EcoChargeOptions{});
  }

  std::unique_ptr<Environment> env_;
  ScoreWeights weights_;
  std::unique_ptr<EcoChargeRanker> eco_;
};

TEST_F(FleetSimTest, FleetBuiltFromTrajectories) {
  FleetSimulator sim(env_.get(), FleetSimOptions{});
  std::vector<FleetVehicle> fleet = sim.MakeFleet(5);
  ASSERT_EQ(fleet.size(), 5u);
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet[i].id, i);
    ASSERT_NE(fleet[i].trajectory, nullptr);
    EXPECT_GE(fleet[i].initial_soc, 0.35);
    EXPECT_LE(fleet[i].initial_soc, 0.85);
  }
}

TEST_F(FleetSimTest, FleetCappedByTrajectoryCount) {
  FleetSimulator sim(env_.get(), FleetSimOptions{});
  std::vector<FleetVehicle> fleet = sim.MakeFleet(100000);
  EXPECT_EQ(fleet.size(), env_->dataset.trajectories.size());
}

TEST_F(FleetSimTest, RunProducesConsistentAggregates) {
  FleetSimOptions opts;
  opts.stop_probability = 1.0;  // charge at every opportunity
  opts.min_soc_to_skip = 2.0;   // never skip
  FleetSimulator sim(env_.get(), opts);
  std::vector<FleetVehicle> fleet = sim.MakeFleet(6);
  FleetOutcome outcome = sim.Run(fleet, *eco_);
  ASSERT_EQ(outcome.vehicles.size(), fleet.size());
  double clean = 0.0, deroute = 0.0;
  int stops = 0, failed = 0;
  for (const VehicleOutcome& v : outcome.vehicles) {
    clean += v.clean_energy_kwh;
    deroute += v.derouting_km;
    stops += v.charge_stops;
    failed += v.failed_stops;
    EXPECT_GE(v.end_soc, 0.0);
    EXPECT_LE(v.end_soc, 1.0);
    EXPECT_LE(v.failed_stops, v.charge_stops);
  }
  EXPECT_DOUBLE_EQ(outcome.total_clean_kwh, clean);
  EXPECT_DOUBLE_EQ(outcome.total_derouting_km, deroute);
  EXPECT_EQ(outcome.total_stops, stops);
  EXPECT_EQ(outcome.total_failed_stops, failed);
  EXPECT_GT(outcome.total_stops, 0);
  EXPECT_GE(outcome.Co2AvoidedKg(), 0.0);
  EXPECT_NEAR(outcome.Co2AvoidedKg(), outcome.total_clean_kwh * 0.25, 1e-9);
}

TEST_F(FleetSimTest, FullBatteriesSkipCharging) {
  FleetSimOptions opts;
  opts.min_soc_to_skip = 0.0;  // everyone is "full enough"
  FleetSimulator sim(env_.get(), opts);
  std::vector<FleetVehicle> fleet = sim.MakeFleet(4);
  FleetOutcome outcome = sim.Run(fleet, *eco_);
  EXPECT_EQ(outcome.total_stops, 0);
  EXPECT_EQ(outcome.total_clean_kwh, 0.0);
}

TEST_F(FleetSimTest, DeterministicForSameSeed) {
  FleetSimOptions opts;
  opts.seed = 5;
  FleetSimulator a(env_.get(), opts), b(env_.get(), opts);
  auto fleet_a = a.MakeFleet(4);
  auto fleet_b = b.MakeFleet(4);
  FleetOutcome ra = a.Run(fleet_a, *eco_);
  eco_->Reset();
  FleetOutcome rb = b.Run(fleet_b, *eco_);
  EXPECT_DOUBLE_EQ(ra.total_clean_kwh, rb.total_clean_kwh);
  EXPECT_EQ(ra.total_stops, rb.total_stops);
}

TEST_F(FleetSimTest, EcoChargeBeatsNearestOnCleanEnergy) {
  FleetSimOptions opts;
  opts.stop_probability = 1.0;
  opts.min_soc_to_skip = 2.0;
  FleetSimulator sim(env_.get(), opts);
  std::vector<FleetVehicle> fleet = sim.MakeFleet(8);

  FleetOutcome with_eco = sim.Run(fleet, *eco_);
  // Nearest-charger policy via the quadtree baseline with a 1-candidate
  // budget (pure spatial nearest).
  QuadtreeRanker nearest(env_->estimator.get(), env_->charger_index.get(),
                         weights_, 1);
  FleetSimulator sim2(env_.get(), opts);  // same seed -> same decisions
  FleetOutcome with_nearest = sim2.Run(fleet, nearest);
  EXPECT_GT(with_eco.total_clean_kwh, with_nearest.total_clean_kwh);
}

}  // namespace
}  // namespace ecocharge
