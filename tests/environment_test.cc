#include "core/environment.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(EnvironmentTest, BuildsAllPieces) {
  EnvironmentOptions opts;
  opts.kind = DatasetKind::kOldenburg;
  opts.dataset_scale = 0.003;
  opts.num_chargers = 25;
  opts.seed = 9;
  auto result = MakeEnvironment(opts);
  ASSERT_TRUE(result.ok()) << result.status();
  auto env = std::move(result).MoveValueUnsafe();
  EXPECT_EQ(env->chargers.size(), 25u);
  EXPECT_NE(env->dataset.network, nullptr);
  EXPECT_NE(env->energy, nullptr);
  EXPECT_NE(env->availability, nullptr);
  EXPECT_NE(env->congestion, nullptr);
  EXPECT_NE(env->estimator, nullptr);
  ASSERT_NE(env->charger_index, nullptr);
  EXPECT_EQ(env->charger_index->size(), 25u);
  // Estimator is wired against the same fleet.
  EXPECT_EQ(&env->estimator->fleet(), &env->chargers);
}

TEST(EnvironmentTest, ChargerIndexIdsMatchFleetPositions) {
  EnvironmentOptions opts;
  opts.dataset_scale = 0.003;
  opts.num_chargers = 30;
  auto env = MakeEnvironment(opts).MoveValueUnsafe();
  for (const EvCharger& c : env->chargers) {
    auto nn = env->charger_index->Knn(c.position, 1);
    ASSERT_FALSE(nn.empty());
    // The nearest indexed point to a charger is itself (or a co-located
    // twin at distance 0).
    EXPECT_EQ(nn[0].distance, 0.0);
  }
}

TEST(EnvironmentTest, ClimateAndLatitudeVaryByDataset) {
  EXPECT_GT(DefaultClimate(DatasetKind::kCalifornia).sunny_bias,
            DefaultClimate(DatasetKind::kOldenburg).sunny_bias);
  EXPECT_GT(DefaultLatitude(DatasetKind::kOldenburg),
            DefaultLatitude(DatasetKind::kCalifornia));
}

TEST(EnvironmentTest, PropagatesDatasetErrors) {
  EnvironmentOptions opts;
  opts.dataset_scale = -1.0;
  EXPECT_FALSE(MakeEnvironment(opts).ok());
}

TEST(EnvironmentTest, MaxDeroutingFlowsToEstimator) {
  EnvironmentOptions opts;
  opts.dataset_scale = 0.003;
  opts.num_chargers = 10;
  opts.max_derouting_m = 12345.0;
  auto env = MakeEnvironment(opts).MoveValueUnsafe();
  EXPECT_EQ(env->estimator->options().max_derouting_m, 12345.0);
  EXPECT_DOUBLE_EQ(env->estimator->NormalizeDerouting(12345.0), 1.0);
  EXPECT_DOUBLE_EQ(env->estimator->NormalizeDerouting(12345.0 / 2), 0.5);
}

}  // namespace
}  // namespace ecocharge
