// Parameterized property sweeps over the CkNN-EC pipeline: the guarantees
// that must hold for every (k, R) combination, not just the defaults.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cknn_ec.h"
#include "core/ecocharge.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

struct SweepParam {
  size_t k;
  double radius_m;
};

class CknnSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static void SetUpTestSuite() {
    env_ = testing_util::TinyEnvironment(70).release();
    states_ = new std::vector<VehicleState>(
        testing_util::TinyWorkload(*env_, 4));
  }
  static void TearDownTestSuite() {
    delete states_;
    delete env_;
    env_ = nullptr;
    states_ = nullptr;
  }

  static Environment* env_;
  static std::vector<VehicleState>* states_;
};

Environment* CknnSweepTest::env_ = nullptr;
std::vector<VehicleState>* CknnSweepTest::states_ = nullptr;

TEST_P(CknnSweepTest, TableSizeAndOrdering) {
  SweepParam p = GetParam();
  EcoChargeOptions opts;
  opts.radius_m = p.radius_m;
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      ScoreWeights::AWE(), opts);
  for (const VehicleState& state : *states_) {
    OfferingTable table = eco.Rank(state, p.k);
    EXPECT_LE(table.size(), p.k);
    for (size_t i = 1; i < table.size(); ++i) {
      EXPECT_GE(table.entries[i - 1].SortKey(), table.entries[i].SortKey());
    }
    // Entries are distinct chargers.
    for (size_t i = 0; i < table.size(); ++i) {
      for (size_t j = i + 1; j < table.size(); ++j) {
        EXPECT_NE(table.entries[i].charger_id, table.entries[j].charger_id);
      }
    }
  }
}

TEST_P(CknnSweepTest, MatchesExhaustiveEstimatedObjective) {
  // With refinement disabled and the full radius, the CkNN-EC pipeline is
  // an exact top-k under the estimated objective: verify against a direct
  // exhaustive ranking of the same scores. (Only when min/max rankings
  // agree on membership is the top-k unique; compare score *sums* to stay
  // robust to legitimate intersection reshuffling.)
  SweepParam p = GetParam();
  CknnEcOptions opts;
  opts.radius_m = p.radius_m;
  opts.refine_exact_derouting = false;
  CknnEcProcessor processor(env_->estimator.get(), env_->charger_index.get(),
                            opts);
  ScoreWeights w = ScoreWeights::AWE();
  for (const VehicleState& state : *states_) {
    auto entries = processor.Query(state, p.k, w);

    std::vector<ChargerId> in_range =
        processor.FilterCandidates(state.position);
    std::vector<ScoredCandidate> scored =
        processor.ScoreCandidates(state, in_range, w);
    std::sort(scored.begin(), scored.end(),
              [](const ScoredCandidate& a, const ScoredCandidate& b) {
                if (a.score.Mid() != b.score.Mid()) {
                  return a.score.Mid() > b.score.Mid();
                }
                return a.charger_id < b.charger_id;
              });
    double best_sum = 0.0;
    for (size_t i = 0; i < std::min(p.k, scored.size()); ++i) {
      best_sum += scored[i].score.Mid();
    }
    double got_sum = 0.0;
    for (const OfferingEntry& e : entries) got_sum += e.score.Mid();
    // The intersection is allowed to trade a sliver of midpoint score for
    // robustness, never more than the spread between rankings.
    EXPECT_GE(got_sum, 0.90 * best_sum);
    EXPECT_LE(got_sum, best_sum + 1e-9);
  }
}

TEST_P(CknnSweepTest, AllPicksWithinRadius) {
  SweepParam p = GetParam();
  CknnEcOptions opts;
  opts.radius_m = p.radius_m;
  CknnEcProcessor processor(env_->estimator.get(), env_->charger_index.get(),
                            opts);
  for (const VehicleState& state : *states_) {
    auto entries = processor.Query(state, p.k, ScoreWeights::AWE());
    for (const OfferingEntry& e : entries) {
      EXPECT_LE(
          Distance(env_->chargers[e.charger_id].position, state.position),
          p.radius_m + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAndRadius, CknnSweepTest,
    ::testing::Values(SweepParam{1, 8000.0}, SweepParam{1, 50000.0},
                      SweepParam{3, 8000.0}, SweepParam{3, 20000.0},
                      SweepParam{3, 50000.0}, SweepParam{5, 20000.0},
                      SweepParam{10, 50000.0}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) + "_R" +
             std::to_string(static_cast<int>(info.param.radius_m / 1000.0)) +
             "km";
    });

TEST(IntersectionFuzzTest, NeverCrashesAndAlwaysOrdered) {
  Rng rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = rng.NextBounded(40);
    size_t k = 1 + rng.NextBounded(8);
    std::vector<ScoredCandidate> pool(n);
    for (size_t i = 0; i < n; ++i) {
      pool[i].charger_id = static_cast<ChargerId>(rng.NextBounded(1000));
      pool[i].score =
          ScorePair{rng.NextDouble(-1.0, 2.0), rng.NextDouble(-1.0, 2.0)};
    }
    auto result = IterativeDeepeningIntersection(pool, k);
    EXPECT_LE(result.size(), std::min(k, n));
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_GE(result[i - 1].score.Mid(), result[i].score.Mid());
    }
  }
}

}  // namespace
}  // namespace ecocharge
