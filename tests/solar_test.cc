#include "energy/solar.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(SolarTest, NightHasZeroIrradiance) {
  SolarModel model;
  EXPECT_EQ(model.ClearSkyIrradiance(172, 0.0), 0.0);
  EXPECT_EQ(model.ClearSkyIrradiance(172, 23.5), 0.0);
  EXPECT_EQ(model.ClearSkyIrradiance(355, 22.0), 0.0);
}

TEST(SolarTest, NoonPeaks) {
  SolarModel model;
  double noon = model.ClearSkyIrradiance(172, 12.0);
  EXPECT_GT(noon, model.ClearSkyIrradiance(172, 9.0));
  EXPECT_GT(noon, model.ClearSkyIrradiance(172, 15.0));
  EXPECT_GT(noon, 500.0);
  EXPECT_LT(noon, kSolarConstant);
}

TEST(SolarTest, SummerBeatsWinter) {
  SolarModel model;
  model.latitude_deg = 50.0;
  EXPECT_GT(model.ClearSkyIrradiance(172, 12.0),   // ~June 21
            model.ClearSkyIrradiance(355, 12.0));  // ~Dec 21
}

TEST(SolarTest, LowerLatitudeStrongerSun) {
  SolarModel north, south;
  north.latitude_deg = 60.0;
  south.latitude_deg = 20.0;
  EXPECT_GT(south.ClearSkyIrradiance(80, 12.0),
            north.ClearSkyIrradiance(80, 12.0));
}

TEST(SolarTest, ElevationSymmetricAroundNoon) {
  SolarModel model;
  EXPECT_NEAR(model.ElevationDeg(100, 10.0), model.ElevationDeg(100, 14.0),
              1e-9);
}

TEST(SolarTest, ElevationNegativeAtMidnight) {
  SolarModel model;
  model.latitude_deg = 38.0;
  EXPECT_LT(model.ElevationDeg(172, 0.0), 0.0);
}

TEST(SolarTest, PolarSummerDayNeverSets) {
  SolarModel model;
  model.latitude_deg = 75.0;  // above the arctic circle
  // Around the June solstice the sun stays up all day.
  EXPECT_GT(model.ElevationDeg(172, 0.0), 0.0);
  EXPECT_GT(model.ClearSkyIrradiance(172, 0.0), 0.0);
}

TEST(SolarTest, SimTimeOverloadConsistent) {
  SolarModel model;
  // Epoch is day kEpochDayOfYear at hour 0.
  SimTime noon = 12.0 * kSecondsPerHour;
  EXPECT_DOUBLE_EQ(model.ClearSkyIrradiance(noon),
                   model.ClearSkyIrradiance(kEpochDayOfYear, 12.0));
}

TEST(SolarTest, IrradianceContinuousAcrossSunrise) {
  SolarModel model;
  // Scan the morning in 1-minute steps: no jumps greater than a few W/m^2
  // per step.
  double prev = model.ClearSkyIrradiance(172, 4.0);
  for (double h = 4.0; h <= 9.0; h += 1.0 / 60.0) {
    double cur = model.ClearSkyIrradiance(172, h);
    EXPECT_GE(cur, prev - 1e-9);  // monotone rising before noon
    EXPECT_LT(cur - prev, 5.0);
    prev = cur;
  }
}

}  // namespace
}  // namespace ecocharge
