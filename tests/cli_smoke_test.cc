// End-to-end smoke of the ecocharge_cli binary: `graph build` a small
// snapshot, `graph ch` it, and check the summary line reports BOTH
// preprocessing phases — contraction and customization — with their
// timing/stats. The CLI is the operational entry point; its summary format
// is what runbooks and the bench harness grep, so it gets a pinned test.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ecocharge {
namespace {

#ifndef ECOCHARGE_CLI_BIN
#define ECOCHARGE_CLI_BIN ""
#endif

/// Runs `cmd` (stderr folded into stdout), returning its output; exit
/// status lands in `*exit_code`.
std::string RunCommand(const std::string& cmd, int* exit_code) {
  std::string out;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return out;
  }
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  *exit_code = pclose(pipe);
  return out;
}

TEST(CliSmokeTest, GraphChSummaryReportsContractionAndCustomization) {
  const std::string bin = ECOCHARGE_CLI_BIN;
  if (bin.empty()) GTEST_SKIP() << "ecocharge_cli path not configured";

  const std::string dir = ::testing::TempDir();
  const std::string raw = dir + "/smoke_raw.ecgs";
  const std::string ch = dir + "/smoke_ch.ecgs";

  int code = 0;
  std::string out = RunCommand(bin +
                            " graph build --spec"
                            " \"type=grid;nx=20;ny=20;seed=3\" --out " +
                        raw, &code);
  ASSERT_EQ(code, 0) << out;
  ASSERT_NE(out.find("wrote"), std::string::npos) << out;

  out = RunCommand(bin + " graph ch --in " + raw + " --out " + ch +
            " --ch-threads 2", &code);
  ASSERT_EQ(code, 0) << out;
  // One line, both phases: "...; contracted in X s, ...; customized in
  // Y s (T threads, L levels, A arcs)".
  EXPECT_NE(out.find("contracted in"), std::string::npos) << out;
  EXPECT_NE(out.find("customized in"), std::string::npos) << out;
  EXPECT_NE(out.find("2 threads"), std::string::npos) << out;
  EXPECT_NE(out.find("levels"), std::string::npos) << out;
  EXPECT_NE(out.find("arcs"), std::string::npos) << out;
  EXPECT_NE(out.find("shortcuts"), std::string::npos) << out;
}

}  // namespace
}  // namespace ecocharge
