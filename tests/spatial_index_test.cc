// Property tests run against every SpatialIndex implementation via
// TEST_P: each index must agree exactly with the LinearScanIndex ground
// truth on kNN, range, and box queries over random clouds.

#include "spatial/spatial_index.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "spatial/linear_scan.h"
#include "spatial/quadtree.h"
#include "spatial/rtree.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

enum class IndexKind { kLinear, kQuadTree, kKdTree, kGrid, kRTree };

std::unique_ptr<SpatialIndex> MakeIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kLinear:
      return std::make_unique<LinearScanIndex>();
    case IndexKind::kQuadTree:
      return std::make_unique<QuadTree>();
    case IndexKind::kKdTree:
      return std::make_unique<KdTree>();
    case IndexKind::kGrid:
      return std::make_unique<GridIndex>();
    case IndexKind::kRTree:
      return std::make_unique<RTree>();
  }
  return nullptr;
}

std::string KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kLinear:
      return "Linear";
    case IndexKind::kQuadTree:
      return "QuadTree";
    case IndexKind::kKdTree:
      return "KdTree";
    case IndexKind::kGrid:
      return "Grid";
    case IndexKind::kRTree:
      return "RTree";
  }
  return "?";
}

class SpatialIndexTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SpatialIndexTest, EmptyIndexReturnsNothing) {
  auto index = MakeIndex(GetParam());
  index->Build({});
  EXPECT_EQ(index->size(), 0u);
  EXPECT_TRUE(index->Knn({0, 0}, 3).empty());
  EXPECT_TRUE(index->RangeSearch({0, 0}, 100.0).empty());
  EXPECT_TRUE(index->BoxSearch(BoundingBox{{0, 0}, {1, 1}}).empty());
}

TEST_P(SpatialIndexTest, SinglePoint) {
  auto index = MakeIndex(GetParam());
  index->Build({{5.0, 5.0}});
  auto nn = index->Knn({0, 0}, 3);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 0u);
  EXPECT_NEAR(nn[0].distance, std::hypot(5.0, 5.0), 1e-12);
}

TEST_P(SpatialIndexTest, KnnMatchesLinearScan) {
  auto truth = std::make_unique<LinearScanIndex>();
  auto index = MakeIndex(GetParam());
  std::vector<Point> cloud = testing_util::RandomCloud(500);
  truth->Build(cloud);
  index->Build(cloud);
  Rng rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    Point q{rng.NextDouble(-1000.0, 11000.0), rng.NextDouble(-1000.0, 9000.0)};
    size_t k = 1 + rng.NextBounded(12);
    auto expected = truth->Knn(q, k);
    auto actual = index->Knn(q, k);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id)
          << "trial " << trial << " rank " << i;
      EXPECT_NEAR(actual[i].distance, expected[i].distance, 1e-9);
    }
  }
}

TEST_P(SpatialIndexTest, KnnWithKLargerThanN) {
  auto index = MakeIndex(GetParam());
  std::vector<Point> cloud = testing_util::RandomCloud(7);
  index->Build(cloud);
  auto nn = index->Knn({100, 100}, 50);
  EXPECT_EQ(nn.size(), 7u);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].distance, nn[i].distance);
  }
}

TEST_P(SpatialIndexTest, RangeMatchesLinearScan) {
  auto truth = std::make_unique<LinearScanIndex>();
  auto index = MakeIndex(GetParam());
  std::vector<Point> cloud = testing_util::RandomCloud(400);
  truth->Build(cloud);
  index->Build(cloud);
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    Point q{rng.NextDouble(0.0, 10000.0), rng.NextDouble(0.0, 8000.0)};
    double radius = rng.NextDouble(100.0, 4000.0);
    auto expected = truth->RangeSearch(q, radius);
    auto actual = index->RangeSearch(q, radius);
    ASSERT_EQ(actual.size(), expected.size()) << "trial " << trial;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id);
    }
  }
}

TEST_P(SpatialIndexTest, BoxMatchesLinearScan) {
  auto truth = std::make_unique<LinearScanIndex>();
  auto index = MakeIndex(GetParam());
  std::vector<Point> cloud = testing_util::RandomCloud(400);
  truth->Build(cloud);
  index->Build(cloud);
  Rng rng(29);
  for (int trial = 0; trial < 40; ++trial) {
    Point lo{rng.NextDouble(0.0, 9000.0), rng.NextDouble(0.0, 7000.0)};
    BoundingBox box{lo, lo + Point{rng.NextDouble(100.0, 3000.0),
                                   rng.NextDouble(100.0, 3000.0)}};
    auto expected = truth->BoxSearch(box);
    auto actual = index->BoxSearch(box);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "trial " << trial;
  }
}

TEST_P(SpatialIndexTest, DuplicatePointsAllRetrievable) {
  auto index = MakeIndex(GetParam());
  std::vector<Point> cloud(20, Point{3.0, 3.0});
  index->Build(cloud);
  auto nn = index->Knn({3.0, 3.0}, 20);
  EXPECT_EQ(nn.size(), 20u);
  auto in_range = index->RangeSearch({3.0, 3.0}, 0.1);
  EXPECT_EQ(in_range.size(), 20u);
}

TEST_P(SpatialIndexTest, CollinearPoints) {
  auto index = MakeIndex(GetParam());
  std::vector<Point> cloud;
  for (int i = 0; i < 100; ++i) cloud.push_back({static_cast<double>(i), 0.0});
  index->Build(cloud);
  auto nn = index->Knn({49.6, 0.0}, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].id, 50u);
  EXPECT_EQ(nn[1].id, 49u);
  EXPECT_EQ(nn[2].id, 51u);
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, SpatialIndexTest,
                         ::testing::Values(IndexKind::kLinear,
                                           IndexKind::kQuadTree,
                                           IndexKind::kKdTree,
                                           IndexKind::kGrid,
                                           IndexKind::kRTree),
                         [](const auto& info) {
                           return KindName(info.param);
                         });

}  // namespace
}  // namespace ecocharge
