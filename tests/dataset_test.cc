#include "traj/dataset.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

class DatasetTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(DatasetTest, SynthesizesValidWorld) {
  DatasetOptions opts;
  opts.scale = 0.002;
  opts.seed = 7;
  auto result = MakeDataset(GetParam(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  const Dataset& ds = result.value();
  EXPECT_EQ(ds.kind, GetParam());
  EXPECT_EQ(ds.name, DatasetName(GetParam()));
  ASSERT_NE(ds.network, nullptr);
  EXPECT_TRUE(ds.network->IsStronglyConnected());
  EXPECT_GE(ds.trajectories.size(), 10u);
  for (const Trajectory& t : ds.trajectories) {
    EXPECT_GE(t.size(), 2u);
  }
}

TEST_P(DatasetTest, DeterministicInSeed) {
  DatasetOptions opts;
  opts.scale = 0.002;
  opts.seed = 21;
  auto a = MakeDataset(GetParam(), opts).MoveValueUnsafe();
  auto b = MakeDataset(GetParam(), opts).MoveValueUnsafe();
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  EXPECT_EQ(a.network->NumNodes(), b.network->NumNodes());
  EXPECT_EQ(a.trajectories[0].size(), b.trajectories[0].size());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DatasetTest,
                         ::testing::ValuesIn(AllDatasetKinds()),
                         [](const auto& info) {
                           std::string n(DatasetName(info.param));
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(DatasetScaleTest, ScaleControlsTrajectoryCount) {
  DatasetOptions small, large;
  small.scale = 0.002;
  large.scale = 0.01;
  auto a = MakeDataset(DatasetKind::kOldenburg, small).MoveValueUnsafe();
  auto b = MakeDataset(DatasetKind::kOldenburg, large).MoveValueUnsafe();
  EXPECT_GT(b.trajectories.size(), a.trajectories.size());
  // Paper counts at those scales: 4000 * 0.01 = 40.
  EXPECT_EQ(b.trajectories.size(), 40u);
}

TEST(DatasetScaleTest, RelativeSizesMatchPaperOrder) {
  DatasetOptions opts;
  opts.scale = 0.005;
  size_t counts[4];
  int i = 0;
  for (DatasetKind kind : AllDatasetKinds()) {
    counts[i++] = MakeDataset(kind, opts).MoveValueUnsafe().trajectories.size();
  }
  // Oldenburg(4000) < California(7000) < T-drive(10357) < Geolife(17621).
  EXPECT_LT(counts[0], counts[1]);
  EXPECT_LT(counts[1], counts[2]);
  EXPECT_LT(counts[2], counts[3]);
}

TEST(DatasetScaleTest, RejectsBadScale) {
  DatasetOptions opts;
  opts.scale = 0.0;
  EXPECT_FALSE(MakeDataset(DatasetKind::kOldenburg, opts).ok());
  opts.scale = 1.5;
  EXPECT_FALSE(MakeDataset(DatasetKind::kOldenburg, opts).ok());
}

TEST(DatasetNamesTest, AllDistinct) {
  auto kinds = AllDatasetKinds();
  EXPECT_EQ(kinds.size(), 4u);
  for (size_t i = 0; i < kinds.size(); ++i) {
    for (size_t j = i + 1; j < kinds.size(); ++j) {
      EXPECT_NE(DatasetName(kinds[i]), DatasetName(kinds[j]));
    }
  }
}

}  // namespace
}  // namespace ecocharge
