// Failure injection: the pipeline must degrade gracefully when the world
// is hostile — unreachable chargers, night-time zero production, saturated
// sites, an empty fleet region.

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/ecocharge.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

/// A world whose network has a disconnected island holding charger 0: an
/// on-road fleet can never reach it.
struct IslandWorld {
  std::shared_ptr<RoadNetwork> network;
  std::vector<EvCharger> chargers;
  std::unique_ptr<SolarEnergyService> energy;
  std::unique_ptr<AvailabilityService> availability;
  std::unique_ptr<CongestionModel> congestion;
  std::unique_ptr<EcEstimator> estimator;
  std::unique_ptr<SpatialIndex> index;
};

IslandWorld MakeIslandWorld() {
  IslandWorld world;
  GraphBuilder builder;
  // Mainland: a 4-node square ring at the origin.
  NodeId a = builder.AddNode({0, 0});
  NodeId b = builder.AddNode({1000, 0});
  NodeId c = builder.AddNode({1000, 1000});
  NodeId d = builder.AddNode({0, 1000});
  EXPECT_TRUE(builder.AddBidirectional(a, b, RoadClass::kLocal).ok());
  EXPECT_TRUE(builder.AddBidirectional(b, c, RoadClass::kLocal).ok());
  EXPECT_TRUE(builder.AddBidirectional(c, d, RoadClass::kLocal).ok());
  EXPECT_TRUE(builder.AddBidirectional(d, a, RoadClass::kLocal).ok());
  // Island: two nodes 2 km east, connected only to each other — and very
  // close to the vehicle as the crow flies.
  NodeId island1 = builder.AddNode({1500, 500});
  NodeId island2 = builder.AddNode({1600, 500});
  EXPECT_TRUE(
      builder.AddBidirectional(island1, island2, RoadClass::kLocal).ok());
  world.network = builder.Build().MoveValueUnsafe();

  // Charger 0 on the island (excellent on paper), charger 1 on the ring.
  EvCharger island_charger;
  island_charger.id = 0;
  island_charger.node = island1;
  island_charger.position = world.network->NodePosition(island1);
  island_charger.type = ChargerType::kDc150;
  island_charger.pv_capacity_kw = 150.0;
  EvCharger road_charger;
  road_charger.id = 1;
  road_charger.node = c;
  road_charger.position = world.network->NodePosition(c);
  road_charger.type = ChargerType::kAc11;
  road_charger.pv_capacity_kw = 10.0;
  world.chargers = {island_charger, road_charger};

  world.energy = std::make_unique<SolarEnergyService>(
      SolarModel{}, ClimateParams{0.9, 0.9}, 5);
  world.availability = std::make_unique<AvailabilityService>(6);
  world.congestion = std::make_unique<CongestionModel>(7);
  EcEstimatorOptions opts;
  opts.max_derouting_m = 10000.0;
  world.estimator = std::make_unique<EcEstimator>(
      world.network, &world.chargers, world.energy.get(),
      world.availability.get(), world.congestion.get(), opts);
  std::vector<Point> points;
  for (const EvCharger& ch : world.chargers) points.push_back(ch.position);
  world.index = MakeSpatialIndex(SpatialIndexKind::kQuadTree);
  world.index->Build(points);
  return world;
}

VehicleState MidMorningStateAt(const RoadNetwork& network, NodeId at,
                               NodeId to) {
  VehicleState s;
  s.node = at;
  s.position = network.NodePosition(at);
  s.return_node_a = s.return_node_b = to;
  s.return_point_a = s.return_point_b = network.NodePosition(to);
  s.time = 10.0 * kSecondsPerHour;
  return s;
}

TEST(FailureInjectionTest, UnreachableChargerGetsWorstDerouting) {
  IslandWorld world = MakeIslandWorld();
  VehicleState state = MidMorningStateAt(*world.network, 1, 2);
  EcTruth island = world.estimator->ReferenceComponents(
      state, world.chargers[0]);
  EXPECT_EQ(island.derouting, 1.0);  // infinite cost clamps to the maximum
  EcTruth road =
      world.estimator->ReferenceComponents(state, world.chargers[1]);
  EXPECT_LT(road.derouting, 1.0);
}

TEST(FailureInjectionTest, BruteForcePrefersReachableCharger) {
  IslandWorld world = MakeIslandWorld();
  BruteForceRanker brute(world.estimator.get(), ScoreWeights::AWE());
  VehicleState state = MidMorningStateAt(*world.network, 1, 2);
  OfferingTable table = brute.Rank(state, 1);
  ASSERT_EQ(table.size(), 1u);
  // The island DC-150 is spatially closest and sunniest, but unreachable;
  // the modest road charger must win.
  EXPECT_EQ(table.top().charger_id, 1u);
}

TEST(FailureInjectionTest, EcoChargeSurvivesUnreachableCandidates) {
  IslandWorld world = MakeIslandWorld();
  EcoChargeOptions opts;
  opts.radius_m = 50000.0;
  EcoChargeRanker eco(world.estimator.get(), world.index.get(),
                      ScoreWeights::AWE(), opts);
  VehicleState state = MidMorningStateAt(*world.network, 1, 2);
  OfferingTable table = eco.Rank(state, 2);
  ASSERT_FALSE(table.empty());
  // After exact refinement, the reachable charger ranks first.
  EXPECT_EQ(table.top().charger_id, 1u);
}

TEST(FailureInjectionTest, NightQueriesYieldZeroLevelNotCrash) {
  auto env = testing_util::TinyEnvironment(30);
  ASSERT_NE(env, nullptr);
  auto states = testing_util::TinyWorkload(*env, 2);
  ASSERT_FALSE(states.empty());
  VehicleState night = states[0];
  // 23:30 with a 30-minute window: even with the ETA offset, the whole
  // charge window stays in astronomical night (Oldenburg midsummer dawn
  // is ~03:30).
  night.time = 23.5 * kSecondsPerHour;
  night.charge_window_s = 30.0 * kSecondsPerMinute;
  for (const EvCharger& c : env->chargers) {
    EcTruth truth = env->estimator->Truth(night, c);
    EXPECT_EQ(truth.level, 0.0);
  }
  EcoChargeRanker eco(env->estimator.get(), env->charger_index.get(),
                      ScoreWeights::AWE(), EcoChargeOptions{});
  OfferingTable table = eco.Rank(night, 3);
  // Ranking still works — availability and derouting break the tie.
  EXPECT_FALSE(table.empty());
}

TEST(FailureInjectionTest, LevelOnlyWeightsAtNightStillRank) {
  auto env = testing_util::TinyEnvironment(30);
  ASSERT_NE(env, nullptr);
  auto states = testing_util::TinyWorkload(*env, 1);
  ASSERT_FALSE(states.empty());
  VehicleState night = states[0];
  night.time = 1.0 * kSecondsPerHour;
  EcoChargeRanker eco(env->estimator.get(), env->charger_index.get(),
                      ScoreWeights::OSC(), EcoChargeOptions{});
  OfferingTable table = eco.Rank(night, 3);
  EXPECT_FALSE(table.empty());  // all-zero scores, deterministic order
}

TEST(FailureInjectionTest, KZeroProducesEmptyTableEverywhere) {
  auto env = testing_util::TinyEnvironment(30);
  ASSERT_NE(env, nullptr);
  auto states = testing_util::TinyWorkload(*env, 1);
  ASSERT_FALSE(states.empty());
  EcoChargeRanker eco(env->estimator.get(), env->charger_index.get(),
                      ScoreWeights::AWE(), EcoChargeOptions{});
  BruteForceRanker brute(env->estimator.get(), ScoreWeights::AWE());
  EXPECT_TRUE(eco.Rank(states[0], 0).empty());
  EXPECT_TRUE(brute.Rank(states[0], 0).empty());
}

}  // namespace
}  // namespace ecocharge
