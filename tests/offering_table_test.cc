#include "core/offering_table.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

OfferingEntry Entry(ChargerId id, double sc) {
  OfferingEntry e;
  e.charger_id = id;
  e.score = ScorePair{sc, sc};
  return e;
}

TEST(OfferingTableTest, SortIsDescendingWithIdTies) {
  std::vector<OfferingEntry> entries = {Entry(3, 0.5), Entry(1, 0.9),
                                        Entry(7, 0.5), Entry(2, 0.7)};
  SortOfferingEntries(entries);
  EXPECT_EQ(entries[0].charger_id, 1u);
  EXPECT_EQ(entries[1].charger_id, 2u);
  EXPECT_EQ(entries[2].charger_id, 3u);  // tie with 7 -> lower id first
  EXPECT_EQ(entries[3].charger_id, 7u);
}

TEST(OfferingTableTest, ChargerIdsPreserveRankOrder) {
  OfferingTable table;
  table.entries = {Entry(4, 0.9), Entry(2, 0.8), Entry(9, 0.1)};
  std::vector<ChargerId> ids = table.ChargerIds();
  EXPECT_EQ(ids, (std::vector<ChargerId>{4, 2, 9}));
  EXPECT_EQ(table.top().charger_id, 4u);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_FALSE(table.empty());
}

TEST(OfferingTableTest, ToStringListsEntries) {
  OfferingTable table;
  table.generated_at = 9.0 * kSecondsPerHour;
  table.entries = {Entry(0, 0.8)};
  std::vector<EvCharger> fleet(1);
  fleet[0].id = 0;
  fleet[0].type = ChargerType::kDc50;
  std::string s = table.ToString(fleet);
  EXPECT_NE(s.find("charger b0"), std::string::npos);
  EXPECT_NE(s.find("DC-50kW"), std::string::npos);
}

TEST(OfferingTableTest, ToStringMarksCacheAdaptation) {
  OfferingTable table;
  table.adapted_from_cache = true;
  std::string s = table.ToString({});
  EXPECT_NE(s.find("adapted from cache"), std::string::npos);
}

TEST(OfferingTableTest, ToStringHandlesUnknownCharger) {
  OfferingTable table;
  table.entries = {Entry(42, 0.5)};
  // Fleet smaller than the id: no metadata, but no crash either.
  std::string s = table.ToString({});
  EXPECT_NE(s.find("b42"), std::string::npos);
}

}  // namespace
}  // namespace ecocharge
