#include "core/offering_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.h"

namespace ecocharge {
namespace {

OfferingEntry Entry(ChargerId id, double sc) {
  OfferingEntry e;
  e.charger_id = id;
  e.score = ScorePair{sc, sc};
  return e;
}

TEST(OfferingTableTest, SortIsDescendingWithIdTies) {
  std::vector<OfferingEntry> entries = {Entry(3, 0.5), Entry(1, 0.9),
                                        Entry(7, 0.5), Entry(2, 0.7)};
  SortOfferingEntries(entries);
  EXPECT_EQ(entries[0].charger_id, 1u);
  EXPECT_EQ(entries[1].charger_id, 2u);
  EXPECT_EQ(entries[2].charger_id, 3u);  // tie with 7 -> lower id first
  EXPECT_EQ(entries[3].charger_id, 7u);
}

TEST(OfferingTableTest, NanSortKeysRankStrictlyLast) {
  // Degraded estimates can leave a NaN midpoint; the total-order
  // comparator must rank it last instead of invoking strict-weak-ordering
  // UB in std::sort.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<OfferingEntry> entries = {Entry(5, nan), Entry(2, 0.4),
                                        Entry(9, nan), Entry(1, 0.8)};
  SortOfferingEntries(entries);
  EXPECT_EQ(entries[0].charger_id, 1u);
  EXPECT_EQ(entries[1].charger_id, 2u);
  EXPECT_EQ(entries[2].charger_id, 5u);  // NaN block last, ties by id
  EXPECT_EQ(entries[3].charger_id, 9u);
}

TEST(OfferingTableTest, TopKMatchesFullSortPrefix) {
  Rng rng(314);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<OfferingEntry> pool;
    size_t n = 1 + rng.NextBounded(40);
    for (size_t i = 0; i < n; ++i) {
      // Quantized scores force plenty of duplicate sort keys.
      pool.push_back(Entry(static_cast<ChargerId>(i),
                           0.1 * static_cast<double>(rng.NextBounded(5))));
    }
    for (size_t k : {size_t{0}, size_t{1}, n / 2, n, n + 7}) {
      std::vector<OfferingEntry> full = pool;
      SortOfferingEntries(full);
      full.resize(std::min(k, n));
      std::vector<OfferingEntry> partial = pool;
      SortOfferingEntriesTopK(partial, k);
      ASSERT_EQ(partial.size(), full.size()) << "k=" << k;
      for (size_t i = 0; i < partial.size(); ++i) {
        EXPECT_EQ(partial[i].charger_id, full[i].charger_id)
            << "k=" << k << " rank " << i;
      }
    }
  }
}

TEST(OfferingTableTest, ChargerIdsPreserveRankOrder) {
  OfferingTable table;
  table.entries = {Entry(4, 0.9), Entry(2, 0.8), Entry(9, 0.1)};
  std::vector<ChargerId> ids = table.ChargerIds();
  EXPECT_EQ(ids, (std::vector<ChargerId>{4, 2, 9}));
  EXPECT_EQ(table.top().charger_id, 4u);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_FALSE(table.empty());
}

TEST(OfferingTableTest, ToStringListsEntries) {
  OfferingTable table;
  table.generated_at = 9.0 * kSecondsPerHour;
  table.entries = {Entry(0, 0.8)};
  std::vector<EvCharger> fleet(1);
  fleet[0].id = 0;
  fleet[0].type = ChargerType::kDc50;
  std::string s = table.ToString(fleet);
  EXPECT_NE(s.find("charger b0"), std::string::npos);
  EXPECT_NE(s.find("DC-50kW"), std::string::npos);
}

TEST(OfferingTableTest, ToStringMarksCacheAdaptation) {
  OfferingTable table;
  table.adapted_from_cache = true;
  std::string s = table.ToString({});
  EXPECT_NE(s.find("adapted from cache"), std::string::npos);
}

TEST(OfferingTableTest, ToStringHandlesUnknownCharger) {
  OfferingTable table;
  table.entries = {Entry(42, 0.5)};
  // Fleet smaller than the id: no metadata, but no crash either.
  std::string s = table.ToString({});
  EXPECT_NE(s.find("b42"), std::string::npos);
}

}  // namespace
}  // namespace ecocharge
