#include "core/split_points.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

uint32_t NearestSiteAt(const Point& a, const Point& b, double t,
                       const std::vector<Point>& sites) {
  Point p = a + (b - a) * t;
  uint32_t best = 0;
  double best_d = DistanceSquared(sites[0], p);
  for (uint32_t i = 1; i < sites.size(); ++i) {
    double d = DistanceSquared(sites[i], p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

TEST(ContinuousNnTest, EmptySites) {
  EXPECT_TRUE(ContinuousNearestNeighbor({0, 0}, {1, 0}, {}).empty());
}

TEST(ContinuousNnTest, SingleSiteCoversWholeSegment) {
  auto splits = ContinuousNearestNeighbor({0, 0}, {10, 0}, {{5, 5}});
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].start_t, 0.0);
  EXPECT_EQ(splits[0].end_t, 1.0);
  EXPECT_EQ(splits[0].site, 0u);
}

TEST(ContinuousNnTest, TwoSitesSplitAtBisector) {
  // Sites above the segment at x=0 and x=10: the split is at t=0.5.
  auto splits =
      ContinuousNearestNeighbor({0, 0}, {10, 0}, {{0, 3}, {10, 3}});
  ASSERT_EQ(splits.size(), 2u);
  EXPECT_EQ(splits[0].site, 0u);
  EXPECT_NEAR(splits[0].end_t, 0.5, 1e-9);
  EXPECT_EQ(splits[1].site, 1u);
  EXPECT_NEAR(splits[1].start_t, 0.5, 1e-9);
  EXPECT_EQ(splits[1].end_t, 1.0);
}

TEST(ContinuousNnTest, IntervalsTileTheSegment) {
  auto sites = testing_util::RandomCloud(40, 100.0, 100.0, 3);
  auto splits = ContinuousNearestNeighbor({0, 50}, {100, 50}, sites);
  ASSERT_FALSE(splits.empty());
  EXPECT_EQ(splits.front().start_t, 0.0);
  EXPECT_EQ(splits.back().end_t, 1.0);
  for (size_t i = 1; i < splits.size(); ++i) {
    EXPECT_DOUBLE_EQ(splits[i].start_t, splits[i - 1].end_t);
    EXPECT_NE(splits[i].site, splits[i - 1].site);
  }
}

TEST(ContinuousNnTest, MatchesPointwiseBruteForce) {
  // Property: inside every reported interval, the brute-force nearest site
  // equals the interval's site (checked at interval midpoints and near
  // both ends).
  Rng rng(83);
  for (int trial = 0; trial < 20; ++trial) {
    auto sites = testing_util::RandomCloud(30, 100.0, 80.0, 100 + trial);
    Point a{rng.NextDouble(0, 100), rng.NextDouble(0, 80)};
    Point b{rng.NextDouble(0, 100), rng.NextDouble(0, 80)};
    auto splits = ContinuousNearestNeighbor(a, b, sites);
    for (const SplitInterval& si : splits) {
      double width = si.end_t - si.start_t;
      for (double frac : {0.5, 0.05, 0.95}) {
        double t = si.start_t + frac * width;
        EXPECT_EQ(NearestSiteAt(a, b, t, sites), si.site)
            << "trial " << trial << " t=" << t;
      }
    }
  }
}

TEST(ContinuousNnTest, DegenerateSegment) {
  // a == b: one interval with the nearest site to that point.
  auto splits =
      ContinuousNearestNeighbor({5, 5}, {5, 5}, {{0, 0}, {6, 6}, {9, 9}});
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].site, 1u);
}

TEST(SampledKnnTest, CoversSegmentWithSortedSets) {
  auto sites = testing_util::RandomCloud(25, 100.0, 100.0, 9);
  auto splits = SampledContinuousKnn({0, 0}, {100, 100}, sites, 3, 64);
  ASSERT_FALSE(splits.empty());
  EXPECT_EQ(splits.front().start_t, 0.0);
  EXPECT_EQ(splits.back().end_t, 1.0);
  for (const KnnSplitInterval& si : splits) {
    EXPECT_EQ(si.sites.size(), 3u);
    EXPECT_TRUE(std::is_sorted(si.sites.begin(), si.sites.end()));
  }
  for (size_t i = 1; i < splits.size(); ++i) {
    EXPECT_EQ(splits[i].start_t, splits[i - 1].end_t);
    EXPECT_NE(splits[i].sites, splits[i - 1].sites);
  }
}

TEST(SampledKnnTest, K1AgreesWithExactSweep) {
  // The sampled 1-NN intervals must agree with the exact sweep at the
  // sample points themselves.
  auto sites = testing_util::RandomCloud(20, 50.0, 50.0, 17);
  Point a{0, 25}, b{50, 25};
  auto exact = ContinuousNearestNeighbor(a, b, sites);
  auto sampled = SampledContinuousKnn(a, b, sites, 1, 256);
  // Each sampled interval's site must match the exact interval containing
  // its midpoint.
  for (const KnnSplitInterval& si : sampled) {
    double mid = (si.start_t + si.end_t) / 2;
    for (const SplitInterval& ei : exact) {
      if (mid >= ei.start_t && mid <= ei.end_t) {
        EXPECT_EQ(si.sites[0], ei.site);
        break;
      }
    }
  }
}

TEST(SampledKnnTest, KClampedToSiteCount) {
  auto splits = SampledContinuousKnn({0, 0}, {10, 0}, {{1, 1}, {2, 2}}, 5, 16);
  for (const auto& si : splits) {
    EXPECT_EQ(si.sites.size(), 2u);
  }
}

TEST(SampledKnnTest, EmptyInputs) {
  EXPECT_TRUE(SampledContinuousKnn({0, 0}, {1, 0}, {}, 3).empty());
  EXPECT_TRUE(
      SampledContinuousKnn({0, 0}, {1, 0}, {{1, 1}}, 0).empty());
}

}  // namespace
}  // namespace ecocharge
