#include "graph/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace ecocharge {
namespace {

TEST(GraphIoTest, RoundTripPreservesStructure) {
  GridNetworkOptions opts;
  opts.nx = 6;
  opts.ny = 5;
  opts.seed = 4;
  auto original = MakeGridNetwork(opts).MoveValueUnsafe();

  std::stringstream buffer;
  ASSERT_TRUE(SaveRoadNetwork(*original, buffer).ok());
  auto loaded_result = LoadRoadNetwork(buffer);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status();
  auto loaded = loaded_result.MoveValueUnsafe();

  ASSERT_EQ(loaded->NumNodes(), original->NumNodes());
  ASSERT_EQ(loaded->NumEdges(), original->NumEdges());
  for (NodeId v = 0; v < original->NumNodes(); ++v) {
    EXPECT_EQ(loaded->NodePosition(v), original->NodePosition(v));
  }
  for (EdgeId e = 0; e < original->NumEdges(); ++e) {
    EXPECT_EQ(loaded->edge(e).from, original->edge(e).from);
    EXPECT_EQ(loaded->edge(e).to, original->edge(e).to);
    EXPECT_EQ(loaded->edge(e).length_m, original->edge(e).length_m);
    EXPECT_EQ(loaded->edge(e).road_class, original->edge(e).road_class);
  }
}

TEST(GraphIoTest, RoundTripPreservesShortestPaths) {
  GridNetworkOptions opts;
  opts.nx = 7;
  opts.ny = 7;
  auto original = MakeGridNetwork(opts).MoveValueUnsafe();
  std::stringstream buffer;
  ASSERT_TRUE(SaveRoadNetwork(*original, buffer).ok());
  auto loaded = LoadRoadNetwork(buffer).MoveValueUnsafe();

  DijkstraSearch s1(*original), s2(*loaded);
  EXPECT_DOUBLE_EQ(s1.ShortestPath(0, 48).cost, s2.ShortestPath(0, 48).cost);
}

TEST(GraphIoTest, RejectsBadMagic) {
  std::stringstream buffer("xyz 1\n1 0\n0 0\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsWrongVersion) {
  std::stringstream buffer("ecg 99\n1 0\n0 0\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsTruncatedNodes) {
  std::stringstream buffer("ecg 1\n3 0\n0 0\n1 1\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsTruncatedEdges) {
  std::stringstream buffer("ecg 1\n2 2\n0 0\n1 1\n0 1 10.0 0\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsInvalidRoadClass) {
  std::stringstream buffer("ecg 1\n2 1\n0 0\n1 1\n0 1 10.0 7\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsOutOfRangeEdge) {
  std::stringstream buffer("ecg 1\n2 1\n0 0\n1 1\n0 9 10.0 0\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, FileApiFailsOnMissingPath) {
  EXPECT_FALSE(LoadRoadNetworkFile("/no/such/file.ecg").ok());
}

}  // namespace
}  // namespace ecocharge
