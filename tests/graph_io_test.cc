#include "graph/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ch/ch_index.h"
#include "ch/contraction.h"
#include "graph/generators.h"
#include "graph/landmarks.h"
#include "graph/shortest_path.h"

namespace ecocharge {
namespace {

TEST(GraphIoTest, RoundTripPreservesStructure) {
  GridNetworkOptions opts;
  opts.nx = 6;
  opts.ny = 5;
  opts.seed = 4;
  auto original = MakeGridNetwork(opts).MoveValueUnsafe();

  std::stringstream buffer;
  ASSERT_TRUE(SaveRoadNetwork(*original, buffer).ok());
  auto loaded_result = LoadRoadNetwork(buffer);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status();
  auto loaded = loaded_result.MoveValueUnsafe();

  ASSERT_EQ(loaded->NumNodes(), original->NumNodes());
  ASSERT_EQ(loaded->NumEdges(), original->NumEdges());
  for (NodeId v = 0; v < original->NumNodes(); ++v) {
    EXPECT_EQ(loaded->NodePosition(v), original->NodePosition(v));
  }
  for (EdgeId e = 0; e < original->NumEdges(); ++e) {
    EXPECT_EQ(loaded->edge(e).from, original->edge(e).from);
    EXPECT_EQ(loaded->edge(e).to, original->edge(e).to);
    EXPECT_EQ(loaded->edge(e).length_m, original->edge(e).length_m);
    EXPECT_EQ(loaded->edge(e).road_class, original->edge(e).road_class);
  }
}

TEST(GraphIoTest, RoundTripPreservesShortestPaths) {
  GridNetworkOptions opts;
  opts.nx = 7;
  opts.ny = 7;
  auto original = MakeGridNetwork(opts).MoveValueUnsafe();
  std::stringstream buffer;
  ASSERT_TRUE(SaveRoadNetwork(*original, buffer).ok());
  auto loaded = LoadRoadNetwork(buffer).MoveValueUnsafe();

  DijkstraSearch s1(*original), s2(*loaded);
  EXPECT_DOUBLE_EQ(s1.ShortestPath(0, 48).cost, s2.ShortestPath(0, 48).cost);
}

TEST(GraphIoTest, RejectsBadMagic) {
  std::stringstream buffer("xyz 1\n1 0\n0 0\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsWrongVersion) {
  std::stringstream buffer("ecg 99\n1 0\n0 0\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsTruncatedNodes) {
  std::stringstream buffer("ecg 1\n3 0\n0 0\n1 1\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsTruncatedEdges) {
  std::stringstream buffer("ecg 1\n2 2\n0 0\n1 1\n0 1 10.0 0\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsInvalidRoadClass) {
  std::stringstream buffer("ecg 1\n2 1\n0 0\n1 1\n0 1 10.0 7\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, RejectsOutOfRangeEdge) {
  std::stringstream buffer("ecg 1\n2 1\n0 0\n1 1\n0 9 10.0 0\n");
  EXPECT_FALSE(LoadRoadNetwork(buffer).ok());
}

TEST(GraphIoTest, FileApiFailsOnMissingPath) {
  EXPECT_FALSE(LoadRoadNetworkFile("/no/such/file.ecg").ok());
}

// ---------------------------------------------------------------------------
// Binary snapshots.
// ---------------------------------------------------------------------------

std::shared_ptr<RoadNetwork> SampleNetwork() {
  GridNetworkOptions opts;
  opts.nx = 8;
  opts.ny = 7;
  opts.seed = 11;
  return MakeGridNetwork(opts).MoveValueUnsafe();
}

std::string SnapshotPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotTest, RoundTripPreservesStructure) {
  auto original = SampleNetwork();
  std::string path = SnapshotPath("roundtrip.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());

  auto loaded_result = LoadSnapshot(path);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status();
  auto loaded = loaded_result.MoveValueUnsafe();

  ASSERT_EQ(loaded->NumNodes(), original->NumNodes());
  ASSERT_EQ(loaded->NumEdges(), original->NumEdges());
  for (NodeId v = 0; v < original->NumNodes(); ++v) {
    EXPECT_EQ(loaded->NodePosition(v), original->NodePosition(v));
  }
  for (EdgeId e = 0; e < original->NumEdges(); ++e) {
    EXPECT_EQ(loaded->edge(e).from, original->edge(e).from);
    EXPECT_EQ(loaded->edge(e).to, original->edge(e).to);
    EXPECT_EQ(loaded->edge(e).length_m, original->edge(e).length_m);
    EXPECT_EQ(loaded->edge(e).road_class, original->edge(e).road_class);
  }
  EXPECT_EQ(loaded->Bounds().min.x, original->Bounds().min.x);
  EXPECT_EQ(loaded->Bounds().max.y, original->Bounds().max.y);
}

TEST(SnapshotTest, RoundTripPreservesQueries) {
  auto original = SampleNetwork();
  std::string path = SnapshotPath("queries.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());
  auto loaded = LoadSnapshot(path).MoveValueUnsafe();

  // Bit-identical shortest paths (same arrays, same iteration order).
  DijkstraSearch s1(*original), s2(*loaded);
  for (NodeId target : {NodeId{5}, NodeId{23}, NodeId{55}}) {
    EXPECT_EQ(s1.ShortestPath(0, target).cost,
              s2.ShortestPath(0, target).cost);
  }
  // The mmap-backed locator answers NearestNode identically.
  for (NodeId v = 0; v < original->NumNodes(); v += 7) {
    Point probe = original->NodePosition(v) + Point{13.0, -9.0};
    EXPECT_EQ(original->NearestNode(probe), loaded->NearestNode(probe));
  }
}

TEST(SnapshotTest, RoundTripPreservesLandmarks) {
  auto original = SampleNetwork();
  LandmarkIndex landmarks(*original, 3);
  std::string path = SnapshotPath("landmarks.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path, &landmarks).ok());

  auto loaded_result = LoadSnapshotWithLandmarks(path);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status();
  auto loaded = loaded_result.MoveValueUnsafe();
  ASSERT_NE(loaded.landmarks, nullptr);
  ASSERT_EQ(loaded.landmarks->num_landmarks(), landmarks.num_landmarks());
  EXPECT_EQ(loaded.landmarks->landmarks(), landmarks.landmarks());
  for (size_t i = 0; i < landmarks.num_landmarks(); ++i) {
    for (NodeId v = 0; v < original->NumNodes(); ++v) {
      EXPECT_EQ(loaded.landmarks->FromLandmark(i, v),
                landmarks.FromLandmark(i, v));
      EXPECT_EQ(loaded.landmarks->ToLandmark(i, v),
                landmarks.ToLandmark(i, v));
    }
  }
  EXPECT_EQ(loaded.landmarks->LowerBound(3, 50), landmarks.LowerBound(3, 50));
}

TEST(SnapshotTest, LoadWithoutLandmarksYieldsNull) {
  auto original = SampleNetwork();
  std::string path = SnapshotPath("nolandmarks.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());
  auto loaded = LoadSnapshotWithLandmarks(path).MoveValueUnsafe();
  EXPECT_NE(loaded.network, nullptr);
  EXPECT_EQ(loaded.landmarks, nullptr);
}

TEST(SnapshotTest, InfoReportsCountsAndSections) {
  auto original = SampleNetwork();
  std::string path = SnapshotPath("info.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());

  auto info_result = ReadSnapshotInfo(path);
  ASSERT_TRUE(info_result.ok()) << info_result.status();
  const SnapshotInfo& info = *info_result;
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.num_nodes, original->NumNodes());
  EXPECT_EQ(info.num_edges, original->NumEdges());
  EXPECT_EQ(info.num_landmarks, 0u);
  EXPECT_GT(info.file_bytes, 0u);
  EXPECT_GE(info.sections.size(), 8u);  // positions, 2x CSR, locator, ids
  EXPECT_EQ(info.bounds.min.x, original->Bounds().min.x);
}

TEST(SnapshotTest, RejectsCorruptMagic) {
  auto original = SampleNetwork();
  std::string path = SnapshotPath("badmagic.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto result = LoadSnapshot(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(SnapshotTest, RejectsWrongVersion) {
  auto original = SampleNetwork();
  std::string path = SnapshotPath("badversion.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[8] = 99;  // version field follows the 8-byte magic
  WriteFileBytes(path, bytes);
  auto result = LoadSnapshot(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST(SnapshotTest, RejectsTruncatedFile) {
  auto original = SampleNetwork();
  std::string path = SnapshotPath("truncated.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());
  std::string bytes = ReadFileBytes(path);
  // Cut mid-section and mid-header: both must fail cleanly, not crash.
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(LoadSnapshot(path).ok());
  WriteFileBytes(path, bytes.substr(0, 16));
  EXPECT_FALSE(LoadSnapshot(path).ok());
}

TEST(SnapshotTest, RejectsMissingFile) {
  EXPECT_FALSE(LoadSnapshot("/no/such/snapshot.ecgs").ok());
  EXPECT_FALSE(ReadSnapshotInfo("/no/such/snapshot.ecgs").ok());
}

// ---------------------------------------------------------------------------
// Contraction-hierarchy sections.
// ---------------------------------------------------------------------------

TEST(SnapshotTest, InfoReportsChAndLandmarkPresence) {
  auto original = SampleNetwork();
  LandmarkIndex landmarks(*original, 3);
  std::shared_ptr<ChIndex> ch = BuildChIndex(*original).MoveValueUnsafe();
  const ChSnapshotViews views = ToSnapshotViews(ch);

  std::string plain = SnapshotPath("info_plain.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, plain).ok());
  auto plain_info = ReadSnapshotInfo(plain).MoveValueUnsafe();
  EXPECT_FALSE(plain_info.has_ch);
  EXPECT_EQ(plain_info.ch_up_arcs, 0u);
  EXPECT_EQ(plain_info.num_landmarks, 0u);

  std::string full = SnapshotPath("info_full.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, full, &landmarks, &views).ok());
  auto info = ReadSnapshotInfo(full).MoveValueUnsafe();
  EXPECT_TRUE(info.has_ch);
  EXPECT_EQ(info.ch_up_arcs, ch->NumUpArcs());
  EXPECT_EQ(info.ch_down_arcs, ch->NumDownArcs());
  EXPECT_EQ(info.num_landmarks, 3u);
  // Every CH section shows up in the table with a known name.
  size_t ch_sections = 0;
  for (const auto& [id, bytes] : info.sections) {
    const std::string name = SnapshotSectionName(id);
    EXPECT_NE(name, "unknown") << "section id " << id;
    if (name.rfind("ch_", 0) == 0) ++ch_sections;
  }
  EXPECT_EQ(ch_sections, 5u);  // rank + two offset arrays + two arc arrays
}

TEST(SnapshotTest, ResaveOverOwnBackingFileIsSafe) {
  // `graph ch --in X --out X` loads a snapshot (mmap-backed views) and
  // saves the contracted result over the same path: the save must not
  // truncate the file its own source arrays are still mapped from.
  auto original = SampleNetwork();
  std::string path = SnapshotPath("resave_in_place.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path).ok());

  auto loaded = LoadSnapshotWithAux(path).MoveValueUnsafe();
  std::shared_ptr<ChIndex> ch = BuildChIndex(*loaded.network).MoveValueUnsafe();
  const ChSnapshotViews views = ToSnapshotViews(ch);
  ASSERT_TRUE(SaveSnapshot(*loaded.network, path, nullptr, &views).ok());

  auto reloaded = LoadSnapshotWithAux(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->network->NumNodes(), original->NumNodes());
  EXPECT_EQ(reloaded->network->NumEdges(), original->NumEdges());
  ASSERT_TRUE(reloaded->ch.has_value());
  auto adopted =
      ChIndexFromSnapshot(*reloaded->ch, reloaded->network->NumEdges());
  ASSERT_TRUE(adopted.ok()) << adopted.status();
  EXPECT_EQ((*adopted)->NumUpArcs(), ch->NumUpArcs());
}

TEST(SnapshotTest, RejectsTruncatedChSection) {
  auto original = SampleNetwork();
  std::shared_ptr<ChIndex> ch = BuildChIndex(*original).MoveValueUnsafe();
  const ChSnapshotViews views = ToSnapshotViews(ch);
  std::string path = SnapshotPath("truncated_ch.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path, nullptr, &views).ok());
  ASSERT_TRUE(LoadSnapshotWithAux(path).ok());  // intact file loads

  // Cut into the trailing CH arc section: the load must fail cleanly
  // instead of handing out-of-file views to the query kernel.
  std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 100));
  EXPECT_FALSE(LoadSnapshotWithAux(path).ok());
}

TEST(SnapshotTest, RejectsChArcBytesThatAreNotWholeRecords) {
  auto original = SampleNetwork();
  std::shared_ptr<ChIndex> ch = BuildChIndex(*original).MoveValueUnsafe();
  const ChSnapshotViews views = ToSnapshotViews(ch);
  std::string path = SnapshotPath("oddsize_ch.ecgs");
  ASSERT_TRUE(SaveSnapshot(*original, path, nullptr, &views).ok());
  auto loaded = LoadSnapshotWithAux(path).MoveValueUnsafe();
  ASSERT_TRUE(loaded.ch.has_value());

  // A CH arc blob whose byte count is not a whole number of records must
  // be rejected by the rehydration validation, not reinterpreted.
  ChSnapshotViews corrupt = *loaded.ch;
  corrupt.up_arcs = corrupt.up_arcs.subspan(0, corrupt.up_arcs.size() - 1);
  EXPECT_FALSE(ChIndexFromSnapshot(corrupt, loaded.network->NumEdges()).ok());

  // Same for a rank array that no longer covers every node.
  ChSnapshotViews short_rank = *loaded.ch;
  short_rank.rank = short_rank.rank.subspan(0, short_rank.rank.size() - 1);
  EXPECT_FALSE(
      ChIndexFromSnapshot(short_rank, loaded.network->NumEdges()).ok());
}

}  // namespace
}  // namespace ecocharge
