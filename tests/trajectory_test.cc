#include "traj/trajectory.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

Trajectory Straight() {
  // 0..1000 m east over 100 s at 10 m/s.
  return Trajectory(1, {{{0, 0}, 0.0}, {{500, 0}, 50.0}, {{1000, 0}, 100.0}});
}

TEST(TrajectoryTest, BasicAccessors) {
  Trajectory t = Straight();
  EXPECT_EQ(t.object_id(), 1u);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.StartTime(), 0.0);
  EXPECT_DOUBLE_EQ(t.EndTime(), 100.0);
  EXPECT_DOUBLE_EQ(t.DurationSeconds(), 100.0);
  EXPECT_DOUBLE_EQ(t.LengthMeters(), 1000.0);
}

TEST(TrajectoryTest, PositionInterpolation) {
  Trajectory t = Straight();
  EXPECT_EQ(t.PositionAt(0.0), (Point{0, 0}));
  EXPECT_EQ(t.PositionAt(25.0), (Point{250, 0}));
  EXPECT_EQ(t.PositionAt(75.0), (Point{750, 0}));
  EXPECT_EQ(t.PositionAt(100.0), (Point{1000, 0}));
  // Clamped outside the time range.
  EXPECT_EQ(t.PositionAt(-5.0), (Point{0, 0}));
  EXPECT_EQ(t.PositionAt(500.0), (Point{1000, 0}));
}

TEST(TrajectoryTest, AsPolylineDropsTime) {
  Polyline line = Straight().AsPolyline();
  EXPECT_EQ(line.size(), 3u);
  EXPECT_DOUBLE_EQ(line.Length(), 1000.0);
}

TEST(TrajectoryTest, EmptyTrajectory) {
  Trajectory t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.PositionAt(10.0), Point{});
  EXPECT_EQ(t.LengthMeters(), 0.0);
}

TEST(SegmentTripTest, EvenPartition) {
  Polyline trip({{0, 0}, {12000, 0}});
  std::vector<TripSegment> segments = SegmentTrip(trip, 4000.0);
  ASSERT_EQ(segments.size(), 3u);
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].index, i);
    EXPECT_NEAR(segments[i].LengthMeters(), 4000.0, 1e-9);
  }
  EXPECT_EQ(segments.front().start_point, (Point{0, 0}));
  EXPECT_EQ(segments.back().end_point, (Point{12000, 0}));
}

TEST(SegmentTripTest, SegmentsAreContiguous) {
  Polyline trip({{0, 0}, {5000, 2000}, {9000, -1000}, {15000, 0}});
  std::vector<TripSegment> segments = SegmentTrip(trip, 3500.0);
  ASSERT_GE(segments.size(), 2u);
  for (size_t i = 1; i < segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(segments[i].start_s, segments[i - 1].end_s);
    EXPECT_EQ(segments[i].start_point, segments[i - 1].end_point);
  }
  EXPECT_NEAR(segments.back().end_s, trip.Length(), 1e-9);
}

TEST(SegmentTripTest, ShortTripYieldsOneSegment) {
  Polyline trip({{0, 0}, {1000, 0}});
  std::vector<TripSegment> segments = SegmentTrip(trip, 5000.0);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_NEAR(segments[0].LengthMeters(), 1000.0, 1e-9);
}

TEST(SegmentTripTest, RemainderGoesToLastSegment) {
  Polyline trip({{0, 0}, {10000, 0}});
  std::vector<TripSegment> segments = SegmentTrip(trip, 4000.0);
  // 10 km / 4 km -> 2 segments of 5 km each (count = floor(10/4) = 2).
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_NEAR(segments[0].LengthMeters() + segments[1].LengthMeters(),
              10000.0, 1e-9);
}

TEST(SegmentTripTest, DegenerateInputs) {
  Polyline single({{5, 5}});
  auto segs = SegmentTrip(single, 1000.0);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].LengthMeters(), 0.0);

  Polyline empty;
  EXPECT_TRUE(SegmentTrip(empty, 1000.0).empty());
}

}  // namespace
}  // namespace ecocharge
