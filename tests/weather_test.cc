#include "energy/weather.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(WeatherTest, TransmissionOrderedByCondition) {
  EXPECT_GT(CloudTransmission(WeatherCondition::kSunny),
            CloudTransmission(WeatherCondition::kPartlyCloudy));
  EXPECT_GT(CloudTransmission(WeatherCondition::kPartlyCloudy),
            CloudTransmission(WeatherCondition::kCloudy));
  EXPECT_GT(CloudTransmission(WeatherCondition::kCloudy),
            CloudTransmission(WeatherCondition::kRain));
}

TEST(WeatherProcessTest, StableWithinAnHour) {
  WeatherProcess process(ClimateParams{}, 5);
  SimTime base = 10.0 * kSecondsPerHour;
  WeatherCondition c = process.ConditionAt(base);
  EXPECT_EQ(process.ConditionAt(base + 600.0), c);
  EXPECT_EQ(process.ConditionAt(base + 3599.0), c);
}

TEST(WeatherProcessTest, DeterministicAndOrderIndependent) {
  WeatherProcess a(ClimateParams{}, 9);
  WeatherProcess b(ClimateParams{}, 9);
  // Query b out of order; the realized sequence must be identical.
  WeatherCondition b_late = b.ConditionAt(100.0 * kSecondsPerHour);
  for (int h = 0; h < 100; ++h) {
    EXPECT_EQ(a.ConditionAt(h * kSecondsPerHour),
              b.ConditionAt(h * kSecondsPerHour));
  }
  EXPECT_EQ(a.ConditionAt(100.0 * kSecondsPerHour), b_late);
}

TEST(WeatherProcessTest, SunnyClimateIsSunnier) {
  ClimateParams sunny{0.85, 0.85};
  ClimateParams grey{0.2, 0.85};
  WeatherProcess sp(sunny, 3), gp(grey, 3);
  int sunny_hours_sunny_climate = 0, sunny_hours_grey_climate = 0;
  for (int h = 0; h < 2000; ++h) {
    if (sp.ConditionAt(h * kSecondsPerHour) == WeatherCondition::kSunny) {
      ++sunny_hours_sunny_climate;
    }
    if (gp.ConditionAt(h * kSecondsPerHour) == WeatherCondition::kSunny) {
      ++sunny_hours_grey_climate;
    }
  }
  EXPECT_GT(sunny_hours_sunny_climate, sunny_hours_grey_climate * 2);
}

TEST(WeatherProcessTest, PersistenceControlsChanges) {
  ClimateParams sticky{0.5, 0.97};
  ClimateParams volatile_{0.5, 0.3};
  WeatherProcess sp(sticky, 7), vp(volatile_, 7);
  int sticky_changes = 0, volatile_changes = 0;
  for (int h = 1; h < 1000; ++h) {
    if (sp.ConditionAt(h * kSecondsPerHour) !=
        sp.ConditionAt((h - 1) * kSecondsPerHour)) {
      ++sticky_changes;
    }
    if (vp.ConditionAt(h * kSecondsPerHour) !=
        vp.ConditionAt((h - 1) * kSecondsPerHour)) {
      ++volatile_changes;
    }
  }
  EXPECT_LT(sticky_changes, volatile_changes / 2);
}

TEST(ForecasterTest, HalfWidthGrowsWithLead) {
  double nowcast = WeatherForecaster::HalfWidthAtLead(0.0);
  double half_day = WeatherForecaster::HalfWidthAtLead(12 * kSecondsPerHour);
  double three_days = WeatherForecaster::HalfWidthAtLead(72 * kSecondsPerHour);
  EXPECT_LT(nowcast, half_day);
  EXPECT_LT(half_day, three_days);
  EXPECT_LE(three_days, 0.40);
  // Saturation beyond three days: no further growth.
  EXPECT_DOUBLE_EQ(
      WeatherForecaster::HalfWidthAtLead(200 * kSecondsPerHour), three_days);
}

TEST(ForecasterTest, PureFunctionOfInputs) {
  WeatherProcess process(ClimateParams{}, 12);
  WeatherForecaster f(&process, 13);
  auto a = f.ForecastTransmission(1000.0, 5000.0);
  auto b = f.ForecastTransmission(1000.0, 5000.0);
  EXPECT_EQ(a.transmission_min, b.transmission_min);
  EXPECT_EQ(a.transmission_max, b.transmission_max);
}

TEST(ForecasterTest, IntervalIsOrderedAndBounded) {
  WeatherProcess process(ClimateParams{}, 12);
  WeatherForecaster f(&process, 13);
  for (int h = 0; h < 200; ++h) {
    auto fc = f.ForecastTransmission(0.0, h * kSecondsPerHour);
    EXPECT_LE(fc.transmission_min, fc.transmission_max);
    EXPECT_GE(fc.transmission_min, 0.0);
    EXPECT_LE(fc.transmission_max, 1.0);
  }
}

TEST(ForecasterTest, ContainmentMatchesAccuracyBands) {
  // The paper cites 95-96% accuracy <=12 h and 85-95% at 3 days; the
  // simulated forecaster must contain the realized transmission at
  // compatible rates.
  WeatherProcess process(ClimateParams{0.5, 0.85}, 21);
  WeatherForecaster f(&process, 22);
  auto containment = [&](double lead_hours) {
    int contained = 0, total = 0;
    for (int h = 0; h < 800; ++h) {
      SimTime now = h * kSecondsPerHour;
      SimTime target = now + lead_hours * kSecondsPerHour;
      auto fc = f.ForecastTransmission(now, target);
      double truth = process.TransmissionAt(target);
      if (truth >= fc.transmission_min - 1e-12 &&
          truth <= fc.transmission_max + 1e-12) {
        ++contained;
      }
      ++total;
    }
    return static_cast<double>(contained) / total;
  };
  EXPECT_GE(containment(1.0), 0.90);
  EXPECT_GE(containment(12.0), 0.85);
  EXPECT_GE(containment(72.0), 0.75);
}

TEST(WeatherTest, ConditionNamesDistinct) {
  EXPECT_NE(WeatherConditionName(WeatherCondition::kSunny),
            WeatherConditionName(WeatherCondition::kRain));
}

}  // namespace
}  // namespace ecocharge
