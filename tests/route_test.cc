#include "graph/route.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> Grid() {
  GridNetworkOptions opts;
  opts.nx = 6;
  opts.ny = 6;
  opts.spacing_m = 300.0;
  opts.seed = 12;
  return MakeGridNetwork(opts).MoveValueUnsafe();
}

TEST(RouteTest, ResolvesShortestPathMetrics) {
  auto network = Grid();
  DijkstraSearch search(*network);
  PathResult path = search.ShortestPath(0, 35);
  ASSERT_TRUE(path.Reachable());
  auto metrics = ResolveRoute(*network, path.nodes);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NEAR(metrics.value().length_m, path.cost, 1e-9);
  EXPECT_EQ(metrics.value().edges.size(), path.nodes.size() - 1);
  EXPECT_GT(metrics.value().free_flow_s, 0.0);
}

TEST(RouteTest, TrivialRoutes) {
  auto network = Grid();
  auto empty = ResolveRoute(*network, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().length_m, 0.0);
  auto single = ResolveRoute(*network, {3});
  ASSERT_TRUE(single.ok());
  EXPECT_TRUE(single.value().edges.empty());
}

TEST(RouteTest, RejectsNonAdjacentNodes) {
  auto network = Grid();
  // 0 and 2 are two hops apart in the grid.
  EXPECT_FALSE(ResolveRoute(*network, {0, 2}).ok());
  EXPECT_FALSE(ResolveRoute(*network, {0, 100000}).ok());
}

TEST(RouteTest, GeometryFollowsNodes) {
  auto network = Grid();
  DijkstraSearch search(*network);
  PathResult path = search.ShortestPath(0, 5);
  Polyline line = RouteGeometry(*network, path.nodes);
  ASSERT_EQ(line.size(), path.nodes.size());
  EXPECT_EQ(line.front(), network->NodePosition(path.nodes.front()));
  EXPECT_EQ(line.back(), network->NodePosition(path.nodes.back()));
  EXPECT_NEAR(line.Length(), path.cost, 1e-6);
}

TEST(RouteTest, CongestionSlowsTravel) {
  auto network = Grid();
  DijkstraSearch search(*network);
  PathResult path = search.ShortestPath(0, 35);
  auto metrics = ResolveRoute(*network, path.nodes).MoveValueUnsafe();
  double free = CongestedTravelSeconds(*network, metrics,
                                       [](const Arc&) { return 1.0; });
  EXPECT_NEAR(free, metrics.free_flow_s, 1e-9);
  double jammed = CongestedTravelSeconds(*network, metrics,
                                         [](const Arc&) { return 0.5; });
  EXPECT_NEAR(jammed, 2.0 * free, 1e-9);
  // Factor is clamped away from zero: no infinities.
  double gridlock = CongestedTravelSeconds(*network, metrics,
                                           [](const Arc&) { return 0.0; });
  EXPECT_TRUE(std::isfinite(gridlock));
}

}  // namespace
}  // namespace ecocharge
