#include "core/load_balancer.h"

#include <thread>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ecocharge {
namespace {

// The assignment ledger is global across serving workers; two threads
// recording and reading concurrently must never lose an assignment (the
// internal mutex makes every public method atomic).
TEST(LoadBalancerTest, ConcurrentRecordAndReadKeepsEveryAssignment) {
  ChargerLoadBalancer balancer;
  constexpr size_t kPerThread = 5000;
  auto work = [&](ChargerId charger) {
    for (size_t i = 0; i < kPerThread; ++i) {
      double start = static_cast<double>(i);
      balancer.RecordAssignment(charger, start, 10.0);
      balancer.PendingAt(charger, start + 5.0);
      balancer.Penalty(charger, start + 5.0, 2);
      if (i % 64 == 0) balancer.ExpireBefore(start - 100.0);
    }
  };
  std::thread a(work, ChargerId{1});
  std::thread b(work, ChargerId{2});
  a.join();
  b.join();
  EXPECT_EQ(balancer.total_assignments(), 2 * kPerThread);
}

TEST(LoadBalancerTest, PendingWindowsCounted) {
  ChargerLoadBalancer balancer;
  balancer.RecordAssignment(5, 100.0, 60.0);
  balancer.RecordAssignment(5, 120.0, 60.0);
  EXPECT_EQ(balancer.PendingAt(5, 130.0), 2u);
  EXPECT_EQ(balancer.PendingAt(5, 110.0), 1u);
  EXPECT_EQ(balancer.PendingAt(5, 200.0), 0u);
  EXPECT_EQ(balancer.PendingAt(6, 130.0), 0u);
  EXPECT_EQ(balancer.total_assignments(), 2u);
}

TEST(LoadBalancerTest, WindowBoundariesHalfOpen) {
  ChargerLoadBalancer balancer;
  balancer.RecordAssignment(1, 100.0, 50.0);
  EXPECT_EQ(balancer.PendingAt(1, 100.0), 1u);  // start inclusive
  EXPECT_EQ(balancer.PendingAt(1, 150.0), 0u);  // end exclusive
}

TEST(LoadBalancerTest, PenaltyScalesAndCaps) {
  LoadBalancerOptions opts;
  opts.penalty_per_pending = 0.1;
  opts.max_penalty = 0.25;
  ChargerLoadBalancer balancer(opts);
  EXPECT_EQ(balancer.Penalty(1, 100.0, 2), 0.0);
  balancer.RecordAssignment(1, 90.0, 60.0);
  double one = balancer.Penalty(1, 100.0, 2);
  EXPECT_GT(one, 0.0);
  balancer.RecordAssignment(1, 90.0, 60.0);
  balancer.RecordAssignment(1, 90.0, 60.0);
  balancer.RecordAssignment(1, 90.0, 60.0);
  balancer.RecordAssignment(1, 90.0, 60.0);
  balancer.RecordAssignment(1, 90.0, 60.0);
  EXPECT_LE(balancer.Penalty(1, 100.0, 2), opts.max_penalty + 1e-12);
}

TEST(LoadBalancerTest, MorePortsAbsorbDemand) {
  ChargerLoadBalancer balancer;
  balancer.RecordAssignment(1, 0.0, 100.0);
  balancer.RecordAssignment(2, 0.0, 100.0);
  EXPECT_GT(balancer.Penalty(1, 50.0, 1), balancer.Penalty(2, 50.0, 8));
}

TEST(LoadBalancerTest, ExpireDropsOldWindows) {
  ChargerLoadBalancer balancer;
  balancer.RecordAssignment(1, 0.0, 100.0);
  balancer.RecordAssignment(1, 500.0, 100.0);
  balancer.ExpireBefore(200.0);
  EXPECT_EQ(balancer.PendingAt(1, 50.0), 0u);
  EXPECT_EQ(balancer.PendingAt(1, 550.0), 1u);
}

TEST(LoadBalancerTest, ClearResetsEverything) {
  ChargerLoadBalancer balancer;
  balancer.RecordAssignment(1, 0.0, 100.0);
  balancer.Clear();
  EXPECT_EQ(balancer.PendingAt(1, 50.0), 0u);
  EXPECT_EQ(balancer.total_assignments(), 0u);
}

class BalancedRankerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(60);
    ASSERT_NE(env_, nullptr);
    states_ = testing_util::TinyWorkload(*env_, 4);
    ASSERT_FALSE(states_.empty());
  }
  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
};

TEST_F(BalancedRankerTest, RecordsOneAssignmentPerQuery) {
  BalancedEcoChargeRanker ranker(env_->estimator.get(),
                                 env_->charger_index.get(),
                                 ScoreWeights::AWE(), EcoChargeOptions{});
  for (const VehicleState& s : states_) ranker.Rank(s, 3);
  EXPECT_EQ(ranker.balancer().total_assignments(), states_.size());
}

TEST_F(BalancedRankerTest, SpreadsSimultaneousDemand) {
  // A fleet of vehicles at the same place and time: the unbalanced ranker
  // sends everyone to the same top charger; the balanced one diversifies.
  EcoChargeOptions opts;
  opts.q_distance_m = 0.0;  // isolate the balancing effect from caching
  LoadBalancerOptions strong;
  strong.penalty_per_pending = 0.3;
  BalancedEcoChargeRanker balanced(env_->estimator.get(),
                                   env_->charger_index.get(),
                                   ScoreWeights::AWE(), opts, strong);
  EcoChargeRanker plain(env_->estimator.get(), env_->charger_index.get(),
                        ScoreWeights::AWE(), opts);

  const VehicleState& base = states_[0];
  std::set<ChargerId> balanced_tops, plain_tops;
  for (int vehicle = 0; vehicle < 6; ++vehicle) {
    balanced_tops.insert(balanced.Rank(base, 3).top().charger_id);
    plain.Reset();
    plain_tops.insert(plain.Rank(base, 3).top().charger_id);
  }
  EXPECT_EQ(plain_tops.size(), 1u);
  EXPECT_GT(balanced_tops.size(), 1u);
}

TEST_F(BalancedRankerTest, ResetClearsAssignments) {
  BalancedEcoChargeRanker ranker(env_->estimator.get(),
                                 env_->charger_index.get(),
                                 ScoreWeights::AWE(), EcoChargeOptions{});
  ranker.Rank(states_[0], 3);
  ranker.Reset();
  EXPECT_EQ(ranker.balancer().total_assignments(), 0u);
}

TEST_F(BalancedRankerTest, StillReturnsKEntries) {
  BalancedEcoChargeRanker ranker(env_->estimator.get(),
                                 env_->charger_index.get(),
                                 ScoreWeights::AWE(), EcoChargeOptions{});
  OfferingTable t = ranker.Rank(states_[0], 3);
  EXPECT_EQ(t.size(), 3u);
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t.entries[i - 1].SortKey(), t.entries[i].SortKey());
  }
}

}  // namespace
}  // namespace ecocharge
