#include "graph/landmarks.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace ecocharge {
namespace {

std::shared_ptr<RoadNetwork> Network() {
  GridNetworkOptions opts;
  opts.nx = 10;
  opts.ny = 10;
  opts.spacing_m = 300.0;
  opts.seed = 6;
  return MakeGridNetwork(opts).MoveValueUnsafe();
}

TEST(LandmarkTest, RequestedCountOrNodeBound) {
  auto network = Network();
  LandmarkIndex small(*network, 4);
  EXPECT_EQ(small.num_landmarks(), 4u);
  LandmarkIndex over(*network, 1000);
  EXPECT_LE(over.num_landmarks(), network->NumNodes());
}

TEST(LandmarkTest, LowerBoundIsAdmissible) {
  // The core ALT property: LowerBound(u, v) <= true network distance, for
  // every random pair.
  auto network = Network();
  LandmarkIndex landmarks(*network, 6);
  DijkstraSearch search(*network);
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    double truth = search.ShortestPath(u, v).cost;
    double bound = landmarks.LowerBound(u, v);
    EXPECT_LE(bound, truth + 1e-6) << u << "->" << v;
    EXPECT_GE(bound, 0.0);
  }
}

TEST(LandmarkTest, BoundIsExactFromLandmark) {
  auto network = Network();
  LandmarkIndex landmarks(*network, 4);
  DijkstraSearch search(*network);
  // From a landmark itself the triangle inequality is tight.
  NodeId lm = landmarks.landmarks()[0];
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    NodeId v = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    double truth = search.ShortestPath(lm, v).cost;
    EXPECT_NEAR(landmarks.LowerBound(lm, v), truth, 1e-6);
  }
}

TEST(LandmarkTest, MoreLandmarksTightenBounds) {
  auto network = Network();
  LandmarkIndex few(*network, 2);
  LandmarkIndex many(*network, 8);
  Rng rng(41);
  double few_sum = 0.0, many_sum = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(network->NumNodes()));
    few_sum += few.LowerBound(u, v);
    many_sum += many.LowerBound(u, v);
    // Pointwise: the 8-landmark set contains the 2-landmark set (farthest
    // point selection is prefix-stable), so bounds can only improve.
    EXPECT_GE(many.LowerBound(u, v), few.LowerBound(u, v) - 1e-9);
  }
  EXPECT_GE(many_sum, few_sum);
}

TEST(LandmarkTest, LandmarksAreSpread) {
  auto network = Network();
  LandmarkIndex landmarks(*network, 4);
  // Farthest-point selection must not pick duplicates.
  const auto& lms = landmarks.landmarks();
  for (size_t i = 0; i < lms.size(); ++i) {
    for (size_t j = i + 1; j < lms.size(); ++j) {
      EXPECT_NE(lms[i], lms[j]);
    }
  }
}

}  // namespace
}  // namespace ecocharge
