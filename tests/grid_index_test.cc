#include "spatial/grid_index.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ecocharge {
namespace {

TEST(GridIndexTest, CellSizeTracksDensity) {
  GridIndex sparse(4.0), dense(4.0);
  sparse.Build(testing_util::RandomCloud(100, 10000, 10000));
  dense.Build(testing_util::RandomCloud(10000, 10000, 10000));
  EXPECT_GT(sparse.cell_size(), dense.cell_size());
}

TEST(GridIndexTest, QueriesOutsideBoundsStillCorrect) {
  GridIndex grid;
  auto cloud = testing_util::RandomCloud(200);
  grid.Build(cloud);
  // Query far outside the indexed extent; ring expansion must still find
  // the true nearest points.
  auto nn = grid.Knn({-50000.0, -50000.0}, 5);
  ASSERT_EQ(nn.size(), 5u);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].distance, nn[i].distance);
  }
}

TEST(GridIndexTest, HandlesExtremeAspectRatio) {
  GridIndex grid;
  std::vector<Point> line;
  for (int i = 0; i < 500; ++i) {
    line.push_back({static_cast<double>(i) * 100.0, 0.0});
  }
  grid.Build(line);
  auto nn = grid.Knn({25000.0, 10.0}, 3);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].id, 250u);
}

TEST(GridIndexTest, CellTableBounded) {
  // Pathological: 2 points spread over a huge extent must not allocate an
  // unbounded number of cells.
  GridIndex grid;
  grid.Build({{0.0, 0.0}, {1e9, 1e9}});
  EXPECT_LE(grid.num_cells(), static_cast<size_t>(1) << 22);
  auto nn = grid.Knn({1.0, 1.0}, 2);
  EXPECT_EQ(nn.size(), 2u);
}

TEST(GridIndexTest, RangeOnCellBoundary) {
  GridIndex grid(1.0);
  std::vector<Point> cloud;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      cloud.push_back({x * 10.0, y * 10.0});
    }
  }
  grid.Build(cloud);
  auto hits = grid.RangeSearch({50.0, 50.0}, 10.0);
  // Center + the four axis neighbors at exactly distance 10.
  EXPECT_EQ(hits.size(), 5u);
}

}  // namespace
}  // namespace ecocharge
