#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  // Constructing a Result from an OK status is a bug; it must surface as
  // an error, never as a valid value.
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, MoveValueUnsafe) {
  Result<std::string> r(std::string("hello"));
  std::string s = r.MoveValueUnsafe();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ECOCHARGE_ASSIGN_OR_RETURN(int h, Half(x));
  ECOCHARGE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
}

TEST(ResultTest, AssignOrReturnPropagatesFirstError) {
  Result<int> r = Quarter(5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagatesSecondError) {
  Result<int> r = Quarter(6);  // 6/2 = 3, odd -> second Half fails
  ASSERT_FALSE(r.ok());
}

TEST(ResultTest, CopyableWhenValueIs) {
  Result<int> a(1);
  Result<int> b = a;
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(b.value(), 1);
}

}  // namespace
}  // namespace ecocharge
