#include "graph/generators.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(GridNetworkTest, SizeAndConnectivity) {
  GridNetworkOptions opts;
  opts.nx = 10;
  opts.ny = 12;
  opts.seed = 1;
  auto network = MakeGridNetwork(opts).MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 120u);
  EXPECT_TRUE(network->IsStronglyConnected());
  // Grid edge count: 2 * (nx-1)*ny + 2 * nx*(ny-1) directed edges.
  EXPECT_GE(network->NumEdges(), 2u * (9 * 12 + 10 * 11));
}

TEST(GridNetworkTest, RejectsDegenerateOptions) {
  GridNetworkOptions opts;
  opts.nx = 1;
  EXPECT_FALSE(MakeGridNetwork(opts).ok());
  opts.nx = 5;
  opts.spacing_m = -1.0;
  EXPECT_FALSE(MakeGridNetwork(opts).ok());
}

TEST(GridNetworkTest, ContainsAllRoadClasses) {
  GridNetworkOptions opts;
  opts.nx = 11;
  opts.ny = 11;
  auto network = MakeGridNetwork(opts).MoveValueUnsafe();
  bool has[3] = {false, false, false};
  for (EdgeId e = 0; e < network->NumEdges(); ++e) {
    has[static_cast<int>(network->edge(e).road_class)] = true;
  }
  EXPECT_TRUE(has[0]);  // highway
  EXPECT_TRUE(has[1]);  // arterial
  EXPECT_TRUE(has[2]);  // local
}

TEST(GridNetworkTest, DeterministicInSeed) {
  GridNetworkOptions opts;
  opts.seed = 77;
  auto a = MakeGridNetwork(opts).MoveValueUnsafe();
  auto b = MakeGridNetwork(opts).MoveValueUnsafe();
  ASSERT_EQ(a->NumNodes(), b->NumNodes());
  for (NodeId v = 0; v < a->NumNodes(); ++v) {
    EXPECT_EQ(a->NodePosition(v), b->NodePosition(v));
  }
  opts.seed = 78;
  auto c = MakeGridNetwork(opts).MoveValueUnsafe();
  bool any_diff = false;
  for (NodeId v = 0; v < a->NumNodes(); ++v) {
    if (!(a->NodePosition(v) == c->NodePosition(v))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RadialCityTest, SizeAndConnectivity) {
  RadialCityOptions opts;
  opts.rings = 5;
  opts.spokes = 8;
  auto network = MakeRadialCity(opts).MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 1u + 5u * 8u);
  EXPECT_TRUE(network->IsStronglyConnected());
}

TEST(RadialCityTest, RejectsTooFewSpokes) {
  RadialCityOptions opts;
  opts.spokes = 2;
  EXPECT_FALSE(MakeRadialCity(opts).ok());
}

TEST(RandomGeometricTest, ConnectivityIsPatched) {
  RandomGeometricOptions opts;
  opts.num_nodes = 300;
  opts.k_nearest = 2;  // sparse: disconnected components are likely
  opts.seed = 5;
  auto network = MakeRandomGeometric(opts).MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 300u);
  EXPECT_TRUE(network->IsStronglyConnected());
}

TEST(RandomGeometricTest, RejectsBadOptions) {
  RandomGeometricOptions opts;
  opts.num_nodes = 1;
  EXPECT_FALSE(MakeRandomGeometric(opts).ok());
  opts.num_nodes = 10;
  opts.k_nearest = 0;
  EXPECT_FALSE(MakeRandomGeometric(opts).ok());
}

TEST(CorridorRegionTest, CitiesPlusCorridors) {
  CorridorRegionOptions opts;
  opts.num_cities = 4;
  opts.city_nx = 6;
  opts.city_ny = 6;
  opts.seed = 9;
  auto network = MakeCorridorRegion(opts).MoveValueUnsafe();
  EXPECT_GE(network->NumNodes(), 4u * 36u);
  EXPECT_TRUE(network->IsStronglyConnected());
  // Corridors must contribute highway edges.
  bool has_highway = false;
  for (EdgeId e = 0; e < network->NumEdges(); ++e) {
    if (network->edge(e).road_class == RoadClass::kHighway) {
      has_highway = true;
      break;
    }
  }
  EXPECT_TRUE(has_highway);
}

TEST(CorridorRegionTest, SpansRequestedExtent) {
  CorridorRegionOptions opts;
  opts.num_cities = 5;
  opts.region_width_m = 200000.0;
  opts.region_height_m = 80000.0;
  auto network = MakeCorridorRegion(opts).MoveValueUnsafe();
  // Cities are placed in [0.1, 0.9] of the region; the extent should be a
  // substantial fraction of it.
  EXPECT_GT(network->Bounds().Width(), 0.3 * opts.region_width_m);
}

}  // namespace
}  // namespace ecocharge
