#include "graph/generators.h"

#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(GridNetworkTest, SizeAndConnectivity) {
  GridNetworkOptions opts;
  opts.nx = 10;
  opts.ny = 12;
  opts.seed = 1;
  auto network = MakeGridNetwork(opts).MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 120u);
  EXPECT_TRUE(network->IsStronglyConnected());
  // Grid edge count: 2 * (nx-1)*ny + 2 * nx*(ny-1) directed edges.
  EXPECT_GE(network->NumEdges(), 2u * (9 * 12 + 10 * 11));
}

TEST(GridNetworkTest, RejectsDegenerateOptions) {
  GridNetworkOptions opts;
  opts.nx = 1;
  EXPECT_FALSE(MakeGridNetwork(opts).ok());
  opts.nx = 5;
  opts.spacing_m = -1.0;
  EXPECT_FALSE(MakeGridNetwork(opts).ok());
}

TEST(GridNetworkTest, ContainsAllRoadClasses) {
  GridNetworkOptions opts;
  opts.nx = 11;
  opts.ny = 11;
  auto network = MakeGridNetwork(opts).MoveValueUnsafe();
  bool has[3] = {false, false, false};
  for (EdgeId e = 0; e < network->NumEdges(); ++e) {
    has[static_cast<int>(network->edge(e).road_class)] = true;
  }
  EXPECT_TRUE(has[0]);  // highway
  EXPECT_TRUE(has[1]);  // arterial
  EXPECT_TRUE(has[2]);  // local
}

TEST(GridNetworkTest, DeterministicInSeed) {
  GridNetworkOptions opts;
  opts.seed = 77;
  auto a = MakeGridNetwork(opts).MoveValueUnsafe();
  auto b = MakeGridNetwork(opts).MoveValueUnsafe();
  ASSERT_EQ(a->NumNodes(), b->NumNodes());
  for (NodeId v = 0; v < a->NumNodes(); ++v) {
    EXPECT_EQ(a->NodePosition(v), b->NodePosition(v));
  }
  opts.seed = 78;
  auto c = MakeGridNetwork(opts).MoveValueUnsafe();
  bool any_diff = false;
  for (NodeId v = 0; v < a->NumNodes(); ++v) {
    if (!(a->NodePosition(v) == c->NodePosition(v))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RadialCityTest, SizeAndConnectivity) {
  RadialCityOptions opts;
  opts.rings = 5;
  opts.spokes = 8;
  auto network = MakeRadialCity(opts).MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 1u + 5u * 8u);
  EXPECT_TRUE(network->IsStronglyConnected());
}

TEST(RadialCityTest, RejectsTooFewSpokes) {
  RadialCityOptions opts;
  opts.spokes = 2;
  EXPECT_FALSE(MakeRadialCity(opts).ok());
}

TEST(RandomGeometricTest, ConnectivityIsPatched) {
  RandomGeometricOptions opts;
  opts.num_nodes = 300;
  opts.k_nearest = 2;  // sparse: disconnected components are likely
  opts.seed = 5;
  auto network = MakeRandomGeometric(opts).MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 300u);
  EXPECT_TRUE(network->IsStronglyConnected());
}

TEST(RandomGeometricTest, RejectsBadOptions) {
  RandomGeometricOptions opts;
  opts.num_nodes = 1;
  EXPECT_FALSE(MakeRandomGeometric(opts).ok());
  opts.num_nodes = 10;
  opts.k_nearest = 0;
  EXPECT_FALSE(MakeRandomGeometric(opts).ok());
}

TEST(CorridorRegionTest, CitiesPlusCorridors) {
  CorridorRegionOptions opts;
  opts.num_cities = 4;
  opts.city_nx = 6;
  opts.city_ny = 6;
  opts.seed = 9;
  auto network = MakeCorridorRegion(opts).MoveValueUnsafe();
  EXPECT_GE(network->NumNodes(), 4u * 36u);
  EXPECT_TRUE(network->IsStronglyConnected());
  // Corridors must contribute highway edges.
  bool has_highway = false;
  for (EdgeId e = 0; e < network->NumEdges(); ++e) {
    if (network->edge(e).road_class == RoadClass::kHighway) {
      has_highway = true;
      break;
    }
  }
  EXPECT_TRUE(has_highway);
}

// ---------------------------------------------------------------------------
// Streaming generators.
// ---------------------------------------------------------------------------

/// The CSR arrays are canonically ordered, so two identical graphs have
/// identical per-EdgeId tuples.
void ExpectSameNetwork(const RoadNetwork& a, const RoadNetwork& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    ASSERT_EQ(a.NodePosition(v), b.NodePosition(v)) << "node " << v;
  }
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    ASSERT_EQ(a.edge(e).from, b.edge(e).from) << "edge " << e;
    ASSERT_EQ(a.edge(e).to, b.edge(e).to) << "edge " << e;
    ASSERT_EQ(a.edge(e).length_m, b.edge(e).length_m) << "edge " << e;
    ASSERT_EQ(a.edge(e).road_class, b.edge(e).road_class) << "edge " << e;
  }
}

TEST(StreamingGridTest, MatchesSizeAndConnectivity) {
  StreamingGridOptions opts;
  opts.nx = 25;
  opts.ny = 18;
  opts.seed = 3;
  auto network = MakeStreamingGrid(opts).MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 25u * 18u);
  EXPECT_EQ(network->NumEdges(), 2u * (24u * 18u + 25u * 17u));
  EXPECT_TRUE(network->IsStronglyConnected());
}

TEST(StreamingGridTest, IdenticalForAnyChunkCount) {
  StreamingGridOptions opts;
  opts.nx = 13;
  opts.ny = 21;
  opts.seed = 42;
  opts.num_chunks = 1;
  auto mono = MakeStreamingGrid(opts).MoveValueUnsafe();
  for (uint64_t chunks : {2u, 7u, 64u}) {
    opts.num_chunks = chunks;
    auto chunked = MakeStreamingGrid(opts).MoveValueUnsafe();
    ExpectSameNetwork(*mono, *chunked);
  }
}

TEST(StreamingGridTest, RejectsDegenerateOptions) {
  StreamingGridOptions opts;
  opts.nx = 1;
  EXPECT_FALSE(MakeStreamingGrid(opts).ok());
  opts.nx = 5;
  opts.spacing_m = 0.0;
  EXPECT_FALSE(MakeStreamingGrid(opts).ok());
}

TEST(StreamingGeometricTest, ConnectedByConstruction) {
  StreamingGeometricOptions opts;
  opts.num_nodes = 2000;
  opts.width_m = 30000.0;
  opts.height_m = 20000.0;
  opts.target_degree = 4.0;
  opts.seed = 9;
  auto network = MakeStreamingGeometric(opts).MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 2000u);
  EXPECT_TRUE(network->IsStronglyConnected());
  // Backbone + proximity should land near the target degree, not wildly off.
  double avg_degree =
      static_cast<double>(network->NumEdges()) / network->NumNodes();
  EXPECT_GT(avg_degree, 2.0);
  EXPECT_LT(avg_degree, 4.0 * opts.target_degree);
}

TEST(StreamingGeometricTest, IdenticalForAnyChunkCount) {
  StreamingGeometricOptions opts;
  opts.num_nodes = 500;
  opts.width_m = 10000.0;
  opts.height_m = 10000.0;
  opts.seed = 17;
  opts.num_chunks = 1;
  auto mono = MakeStreamingGeometric(opts).MoveValueUnsafe();
  for (uint64_t chunks : {3u, 16u, 1000u}) {
    opts.num_chunks = chunks;  // clamped to the cell count internally
    auto chunked = MakeStreamingGeometric(opts).MoveValueUnsafe();
    ExpectSameNetwork(*mono, *chunked);
  }
}

TEST(StreamingGeometricTest, RejectsBadOptions) {
  StreamingGeometricOptions opts;
  opts.num_nodes = 1;
  EXPECT_FALSE(MakeStreamingGeometric(opts).ok());
  opts.num_nodes = 100;
  opts.width_m = -5.0;
  EXPECT_FALSE(MakeStreamingGeometric(opts).ok());
  opts.width_m = 1000.0;
  opts.radius_m = 0.0;
  opts.target_degree = 0.0;
  EXPECT_FALSE(MakeStreamingGeometric(opts).ok());
}

TEST(StreamingHyperbolicTest, ConnectedWithHubSkew) {
  StreamingHyperbolicOptions opts;
  opts.num_nodes = 3000;
  opts.out_links = 3;
  opts.skew = 3.0;
  opts.seed = 5;
  auto network = MakeStreamingHyperbolic(opts).MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 3000u);
  EXPECT_TRUE(network->IsStronglyConnected());

  // Heavy-tailed degrees: the busiest hub should dwarf the average.
  size_t max_degree = 0;
  for (NodeId v = 0; v < network->NumNodes(); ++v) {
    max_degree = std::max(max_degree, network->OutArcs(v).size());
  }
  double avg_degree =
      static_cast<double>(network->NumEdges()) / network->NumNodes();
  EXPECT_GT(static_cast<double>(max_degree), 10.0 * avg_degree);

  // Hub links carry highway/arterial classes.
  bool has[3] = {false, false, false};
  for (EdgeId e = 0; e < network->NumEdges(); ++e) {
    has[static_cast<int>(network->edge(e).road_class)] = true;
  }
  EXPECT_TRUE(has[0] && has[1] && has[2]);
}

TEST(StreamingHyperbolicTest, IdenticalForAnyChunkCount) {
  StreamingHyperbolicOptions opts;
  opts.num_nodes = 800;
  opts.seed = 23;
  opts.num_chunks = 1;
  auto mono = MakeStreamingHyperbolic(opts).MoveValueUnsafe();
  for (uint64_t chunks : {2u, 13u, 800u}) {
    opts.num_chunks = chunks;
    auto chunked = MakeStreamingHyperbolic(opts).MoveValueUnsafe();
    ExpectSameNetwork(*mono, *chunked);
  }
}

TEST(StreamingHyperbolicTest, RejectsBadOptions) {
  StreamingHyperbolicOptions opts;
  opts.num_nodes = 1;
  EXPECT_FALSE(MakeStreamingHyperbolic(opts).ok());
  opts.num_nodes = 100;
  opts.out_links = 0;
  EXPECT_FALSE(MakeStreamingHyperbolic(opts).ok());
  opts.out_links = 3;
  opts.skew = 0.5;
  EXPECT_FALSE(MakeStreamingHyperbolic(opts).ok());
}

// ---------------------------------------------------------------------------
// Option-string front end.
// ---------------------------------------------------------------------------

TEST(GenerateNetworkTest, BuildsGridFromSpec) {
  auto result = GenerateNetwork("type=grid;nx=10;ny=8;spacing=400;seed=7");
  ASSERT_TRUE(result.ok()) << result.status();
  auto network = result.MoveValueUnsafe();
  EXPECT_EQ(network->NumNodes(), 80u);
  EXPECT_TRUE(network->IsStronglyConnected());
}

TEST(GenerateNetworkTest, SpecMatchesDirectOptions) {
  StreamingGridOptions opts;
  opts.nx = 9;
  opts.ny = 9;
  opts.seed = 12;
  auto direct = MakeStreamingGrid(opts).MoveValueUnsafe();
  auto from_spec =
      GenerateNetwork("type=grid;nx=9;ny=9;seed=12").MoveValueUnsafe();
  ExpectSameNetwork(*direct, *from_spec);
}

TEST(GenerateNetworkTest, BuildsEveryType) {
  EXPECT_TRUE(GenerateNetwork("type=grid;nx=6;ny=6").ok());
  EXPECT_TRUE(GenerateNetwork("type=rgg;nodes=300;width=5000;height=5000").ok());
  EXPECT_TRUE(GenerateNetwork("type=hyperbolic;nodes=300").ok());
  EXPECT_TRUE(GenerateNetwork("type=radial;rings=4;spokes=8").ok());
  EXPECT_TRUE(GenerateNetwork("type=corridor;cities=3;city_nx=5;city_ny=5").ok());
}

TEST(GenerateNetworkTest, RejectsMalformedSpecs) {
  // Every rejection is kInvalidArgument with a clean message.
  for (const char* spec : {
           "",                               // no type
           "nx=5;ny=5",                      // no type
           "type=nosuch",                    // unknown type
           "type=grid;bogus_key=1",          // unknown key
           "type=grid;nx=banana",            // malformed number
           "type=grid;nx=-4",                // negative for unsigned
           "type=rgg;nodes=300;width=oops",  // malformed double
           "=5;type=grid",                   // empty key
       }) {
    auto result = GenerateNetwork(spec);
    ASSERT_FALSE(result.ok()) << "spec accepted: " << spec;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << "spec: " << spec;
  }
}

TEST(GenerateNetworkTest, ValidateFlagAndWhitespaceTolerated) {
  EXPECT_TRUE(GenerateNetwork("type=grid; nx=5; ny=5; validate=0").ok());
  EXPECT_TRUE(GenerateNetwork("type=grid;nx=5;ny=5;validate").ok());
}

TEST(CorridorRegionTest, SpansRequestedExtent) {
  CorridorRegionOptions opts;
  opts.num_cities = 5;
  opts.region_width_m = 200000.0;
  opts.region_height_m = 80000.0;
  auto network = MakeCorridorRegion(opts).MoveValueUnsafe();
  // Cities are placed in [0.1, 0.9] of the region; the extent should be a
  // substantial fraction of it.
  EXPECT_GT(network->Bounds().Width(), 0.3 * opts.region_width_m);
}

}  // namespace
}  // namespace ecocharge
