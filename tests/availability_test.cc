#include "availability/availability_service.h"

#include <gtest/gtest.h>

#include "availability/popular_times.h"

namespace ecocharge {
namespace {

EvCharger SiteWith(uint32_t timetable_id, int ports = 4) {
  EvCharger c;
  c.id = 17;
  c.timetable_id = timetable_id;
  c.num_ports = ports;
  return c;
}

TEST(PopularTimesTest, ValuesInUnitRange) {
  for (int a = 0; a < kNumArchetypes; ++a) {
    PopularTimes pt =
        PopularTimes::ForArchetype(static_cast<SiteArchetype>(a), 5);
    for (int h = 0; h < 168; ++h) {
      EXPECT_GE(pt.bucket(h), 0.0);
      EXPECT_LE(pt.bucket(h), 1.0);
    }
  }
}

TEST(PopularTimesTest, CommuterHubHasRushPeaks) {
  PopularTimes pt =
      PopularTimes::ForArchetype(SiteArchetype::kCommuterHub, 5);
  // Tuesday 08:00 and 17:30 busier than 03:00 and 13:00.
  SimTime tue = kSecondsPerDay;
  double morning = pt.BusynessAt(tue + 8.0 * kSecondsPerHour);
  double evening = pt.BusynessAt(tue + 17.5 * kSecondsPerHour);
  double night = pt.BusynessAt(tue + 3.0 * kSecondsPerHour);
  EXPECT_GT(morning, night + 0.2);
  EXPECT_GT(evening, night + 0.2);
}

TEST(PopularTimesTest, MallPeaksOnWeekendAfternoon) {
  PopularTimes pt =
      PopularTimes::ForArchetype(SiteArchetype::kShoppingMall, 5);
  SimTime sat = 5 * kSecondsPerDay;
  SimTime tue = 1 * kSecondsPerDay;
  EXPECT_GT(pt.BusynessAt(sat + 15.0 * kSecondsPerHour),
            pt.BusynessAt(tue + 15.0 * kSecondsPerHour));
}

TEST(PopularTimesTest, InterpolationIsContinuous) {
  PopularTimes pt = PopularTimes::ForArchetype(SiteArchetype::kDowntown, 5);
  for (double t = 0.0; t < kSecondsPerWeek; t += 977.0) {
    double a = pt.BusynessAt(t);
    double b = pt.BusynessAt(t + 10.0);
    EXPECT_LT(std::abs(a - b), 0.05);
  }
}

TEST(PopularTimesTest, SeedJittersSites) {
  PopularTimes a = PopularTimes::ForArchetype(SiteArchetype::kDowntown, 1);
  PopularTimes b = PopularTimes::ForArchetype(SiteArchetype::kDowntown, 2);
  bool any_diff = false;
  for (int h = 0; h < 168; ++h) {
    if (a.bucket(h) != b.bucket(h)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(AvailabilityServiceTest, ActualInUnitRangeAndQuantized) {
  AvailabilityService service(7);
  EvCharger c = SiteWith(0, 4);
  for (int h = 0; h < 100; ++h) {
    double a = service.ActualAvailability(c, h * kSecondsPerHour);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
    // Quantized to quarters with 4 ports.
    EXPECT_NEAR(a * 4, std::round(a * 4), 1e-9);
  }
}

TEST(AvailabilityServiceTest, ActualStableWithinHourAcrossCalls) {
  AvailabilityService service(7);
  EvCharger c = SiteWith(1);
  SimTime t = 9.5 * kSecondsPerHour;
  double a = service.ActualAvailability(c, t);
  EXPECT_EQ(service.ActualAvailability(c, t + 60.0), a);
  EXPECT_EQ(service.ActualAvailability(c, t), a);
}

TEST(AvailabilityServiceTest, BusySitesLessAvailableOnAverage) {
  AvailabilityService service(7);
  EvCharger commuter = SiteWith(1, 4);  // commuter hub
  double rush_sum = 0.0, night_sum = 0.0;
  int days = 30;
  for (int d = 0; d < days; ++d) {
    // Weekday rush vs weekday night.
    SimTime day = (d % 5) * kSecondsPerDay + (d / 5) * kSecondsPerWeek;
    rush_sum +=
        service.ActualAvailability(commuter, day + 8.0 * kSecondsPerHour);
    night_sum +=
        service.ActualAvailability(commuter, day + 3.0 * kSecondsPerHour);
  }
  EXPECT_GT(night_sum, rush_sum);
}

TEST(AvailabilityServiceTest, ForecastOrderedAndPure) {
  AvailabilityService service(7);
  EvCharger c = SiteWith(2);
  AvailabilityForecast a = service.Forecast(c, 1000.0, 5000.0);
  AvailabilityForecast b = service.Forecast(c, 1000.0, 5000.0);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_LE(a.min, a.max);
  EXPECT_GE(a.min, 0.0);
  EXPECT_LE(a.max, 1.0);
}

TEST(AvailabilityServiceTest, ForecastWidensWithLead) {
  AvailabilityService service(7);
  EvCharger c = SiteWith(0);
  SimTime now = 8.0 * kSecondsPerHour;
  double near_width = 0.0, far_width = 0.0;
  for (int d = 0; d < 20; ++d) {
    SimTime base = now + d * kSecondsPerDay;
    AvailabilityForecast near = service.Forecast(c, base, base + 600.0);
    AvailabilityForecast far =
        service.Forecast(c, base, base + 8.0 * kSecondsPerHour);
    near_width += near.max - near.min;
    far_width += far.max - far.min;
  }
  EXPECT_GT(far_width, near_width);
}

TEST(AvailabilityServiceTest, ForecastTracksExpectedBusyness) {
  AvailabilityService service(7);
  EvCharger c = SiteWith(1);  // commuter hub
  SimTime tue = kSecondsPerDay;
  AvailabilityForecast rush =
      service.Forecast(c, tue + 7.5 * kSecondsPerHour,
                       tue + 8.0 * kSecondsPerHour);
  AvailabilityForecast night =
      service.Forecast(c, tue + 2.5 * kSecondsPerHour,
                       tue + 3.0 * kSecondsPerHour);
  // Rush-hour forecast should promise less availability.
  EXPECT_LT((rush.min + rush.max) / 2, (night.min + night.max) / 2);
}

}  // namespace
}  // namespace ecocharge
