#include "core/offering_service.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ecocharge {
namespace {

class OfferingServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(50);
    ASSERT_NE(env_, nullptr);
    states_ = testing_util::TinyWorkload(*env_, 4);
    ASSERT_FALSE(states_.empty());
    service_ = std::make_unique<OfferingService>(
        env_->estimator.get(), env_->charger_index.get(),
        ScoreWeights::AWE(), EcoChargeOptions{});
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
  std::unique_ptr<OfferingService> service_;
};

TEST_F(OfferingServiceTest, WireRoundTripServesTable) {
  OfferingRequest request;
  request.state = states_[0];
  request.k = 3;
  auto reply = service_->Handle(7, EncodeOfferingRequest(request));
  ASSERT_TRUE(reply.ok()) << reply.status();
  auto table = DecodeOfferingTable(reply.value());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().size(), 3u);
  EXPECT_EQ(service_->stats().requests, 1u);
  EXPECT_EQ(service_->stats().tables_served, 1u);
}

TEST_F(OfferingServiceTest, WireMatchesInProcessRanking) {
  OfferingRequest request;
  request.state = states_[0];
  request.k = 3;
  auto reply = service_->Handle(1, EncodeOfferingRequest(request));
  ASSERT_TRUE(reply.ok());
  auto via_wire = DecodeOfferingTable(reply.value()).MoveValueUnsafe();
  // A different client gets its own ranker but the same deterministic
  // answer for the same state.
  OfferingTable direct = service_->Rank(2, states_[0], 3);
  EXPECT_EQ(via_wire.ChargerIds(), direct.ChargerIds());
}

TEST_F(OfferingServiceTest, MalformedRequestCounted) {
  auto reply = service_->Handle(7, "garbage");
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(service_->stats().malformed_requests, 1u);
  EXPECT_EQ(service_->stats().tables_served, 0u);
}

TEST_F(OfferingServiceTest, PerClientCachesAreIsolated) {
  // Client A queries twice from the same spot: second is adapted. Client
  // B's first query from that spot must NOT be adapted (it has no cache).
  VehicleState s0 = states_[0];
  service_->Rank(100, s0, 3);
  VehicleState s1 = s0;
  s1.time += 60.0;
  OfferingTable a2 = service_->Rank(100, s1, 3);
  EXPECT_TRUE(a2.adapted_from_cache);
  OfferingTable b1 = service_->Rank(200, s1, 3);
  EXPECT_FALSE(b1.adapted_from_cache);
  EXPECT_EQ(service_->active_clients(), 2u);
  EXPECT_EQ(service_->stats().cache_adaptations, 1u);
}

TEST_F(OfferingServiceTest, IdleClientsEvicted) {
  service_->Rank(1, states_[0], 3);
  VehicleState later = states_[0];
  later.time += 3.0 * kSecondsPerHour;
  service_->Rank(2, later, 3);
  EXPECT_EQ(service_->active_clients(), 2u);
  service_->EvictIdleClients(later.time);
  EXPECT_EQ(service_->active_clients(), 1u);
}

}  // namespace
}  // namespace ecocharge
