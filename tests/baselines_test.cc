#include "core/baselines.h"

#include <set>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ecocharge {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(50);
    ASSERT_NE(env_, nullptr);
    states_ = testing_util::TinyWorkload(*env_, 3);
    ASSERT_FALSE(states_.empty());
    weights_ = ScoreWeights::AWE();
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
  ScoreWeights weights_;
};

TEST_F(BaselinesTest, BruteForceFindsTheReferenceOptimum) {
  BruteForceRanker brute(env_->estimator.get(), weights_);
  const VehicleState& state = states_[0];
  OfferingTable table = brute.Rank(state, 3);
  ASSERT_EQ(table.size(), 3u);
  // No charger outside the table scores higher than the worst inside.
  double worst_inside = table.entries.back().score.Mid();
  std::vector<ChargerId> picked = table.ChargerIds();
  std::set<ChargerId> chosen(picked.begin(), picked.end());
  for (const EvCharger& c : env_->chargers) {
    if (chosen.count(c.id)) continue;
    double sc = env_->estimator->ReferenceScore(state, c, weights_);
    EXPECT_LE(sc, worst_inside + 1e-9) << "charger " << c.id;
  }
}

TEST_F(BaselinesTest, BruteForceEntriesAreExactIntervals) {
  BruteForceRanker brute(env_->estimator.get(), weights_);
  OfferingTable table = brute.Rank(states_[0], 3);
  for (const OfferingEntry& e : table.entries) {
    EXPECT_TRUE(e.ecs.level.IsExact());
    EXPECT_TRUE(e.ecs.availability.IsExact());
    EXPECT_TRUE(e.ecs.derouting.IsExact());
    EXPECT_DOUBLE_EQ(e.score.sc_min, e.score.sc_max);
  }
}

TEST_F(BaselinesTest, QuadtreePicksFromNearestCandidates) {
  const size_t budget = 10;
  QuadtreeRanker quadtree(env_->estimator.get(), env_->charger_index.get(),
                          weights_, budget);
  const VehicleState& state = states_[0];
  OfferingTable table = quadtree.Rank(state, 3);
  ASSERT_EQ(table.size(), 3u);
  // Every pick must be one of the `budget` spatially nearest chargers.
  auto nearest = env_->charger_index->Knn(state.position, budget);
  std::set<uint32_t> candidate_ids;
  for (const Neighbor& n : nearest) candidate_ids.insert(n.id);
  for (ChargerId id : table.ChargerIds()) {
    EXPECT_TRUE(candidate_ids.count(id)) << "charger " << id;
  }
}

TEST_F(BaselinesTest, QuadtreeNeverBeatsBruteForce) {
  BruteForceRanker brute(env_->estimator.get(), weights_);
  QuadtreeRanker quadtree(env_->estimator.get(), env_->charger_index.get(),
                          weights_, 8);
  for (const VehicleState& state : states_) {
    double bf_sum = 0.0, qt_sum = 0.0;
    for (ChargerId id : brute.Rank(state, 3).ChargerIds()) {
      bf_sum +=
          env_->estimator->ReferenceScore(state, env_->chargers[id], weights_);
    }
    for (ChargerId id : quadtree.Rank(state, 3).ChargerIds()) {
      qt_sum +=
          env_->estimator->ReferenceScore(state, env_->chargers[id], weights_);
    }
    EXPECT_LE(qt_sum, bf_sum + 1e-9);
  }
}

TEST_F(BaselinesTest, RandomStaysWithinRadius) {
  const double radius = 10000.0;
  RandomRanker random(env_->estimator.get(), env_->charger_index.get(),
                      radius, 3);
  for (const VehicleState& state : states_) {
    OfferingTable table = random.Rank(state, 3);
    for (ChargerId id : table.ChargerIds()) {
      EXPECT_LE(Distance(env_->chargers[id].position, state.position),
                radius + 1e-9);
    }
  }
}

TEST_F(BaselinesTest, RandomIsReproducibleAfterReset) {
  RandomRanker random(env_->estimator.get(), env_->charger_index.get(),
                      50000.0, 3);
  OfferingTable first = random.Rank(states_[0], 3);
  random.Rank(states_[0], 3);  // advance the stream
  random.Reset();
  OfferingTable again = random.Rank(states_[0], 3);
  EXPECT_EQ(first.ChargerIds(), again.ChargerIds());
}

TEST_F(BaselinesTest, RandomReturnsDistinctChargers) {
  RandomRanker random(env_->estimator.get(), env_->charger_index.get(),
                      50000.0, 7);
  OfferingTable table = random.Rank(states_[0], 5);
  std::vector<ChargerId> picked = table.ChargerIds();
  std::set<ChargerId> ids(picked.begin(), picked.end());
  EXPECT_EQ(ids.size(), table.size());
}

TEST_F(BaselinesTest, NamesMatchPaper) {
  BruteForceRanker brute(env_->estimator.get(), weights_);
  QuadtreeRanker quadtree(env_->estimator.get(), env_->charger_index.get(),
                          weights_);
  RandomRanker random(env_->estimator.get(), env_->charger_index.get(),
                      50000.0, 1);
  EXPECT_EQ(brute.name(), "Brute-Force");
  EXPECT_EQ(quadtree.name(), "Index-Quadtree");
  EXPECT_EQ(random.name(), "Random");
}

}  // namespace
}  // namespace ecocharge
