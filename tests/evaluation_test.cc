#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/ecocharge.h"
#include "tests/test_util.h"

namespace ecocharge {
namespace {

class EvaluationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(40);
    ASSERT_NE(env_, nullptr);
    states_ = testing_util::TinyWorkload(*env_, 4);
    ASSERT_FALSE(states_.empty());
    weights_ = ScoreWeights::AWE();
    evaluator_ = std::make_unique<Evaluator>(env_->estimator.get(), weights_);
    evaluator_->SetWorkload(states_);
  }

  std::unique_ptr<Environment> env_;
  std::vector<VehicleState> states_;
  ScoreWeights weights_;
  std::unique_ptr<Evaluator> evaluator_;
};

TEST_F(EvaluationTest, BruteForceScoresExactlyHundredPercent) {
  BruteForceRanker brute(env_->estimator.get(), weights_);
  MethodEvaluation m = evaluator_->Evaluate(brute, 3, 1);
  EXPECT_EQ(m.num_queries, states_.size());
  EXPECT_NEAR(m.sc_percent.mean(), 100.0, 1e-9);
  EXPECT_NEAR(m.sc_percent.stddev(), 0.0, 1e-9);
  EXPECT_GT(m.ft_ms.mean(), 0.0);
}

TEST_F(EvaluationTest, OracleScoresArePositiveAndCached) {
  const std::vector<double>& first = evaluator_->OracleScores(3);
  ASSERT_EQ(first.size(), states_.size());
  for (double v : first) EXPECT_GT(v, 0.0);
  // Second call returns the cached vector (same address).
  const std::vector<double>& second = evaluator_->OracleScores(3);
  EXPECT_EQ(&first, &second);
}

TEST_F(EvaluationTest, ChangingKRecomputesOracle) {
  double k3_first = evaluator_->OracleScores(3)[0];
  double k1_first = evaluator_->OracleScores(1)[0];
  EXPECT_GT(k3_first, k1_first);  // 3 chargers sum more than 1
}

TEST_F(EvaluationTest, MethodsNeverExceedHundredPercent) {
  QuadtreeRanker quadtree(env_->estimator.get(), env_->charger_index.get(),
                          weights_, 8);
  RandomRanker random(env_->estimator.get(), env_->charger_index.get(),
                      50000.0, 3);
  for (Ranker* r : std::initializer_list<Ranker*>{&quadtree, &random}) {
    MethodEvaluation m = evaluator_->Evaluate(*r, 3, 1);
    EXPECT_LE(m.sc_percent.max(), 100.0 + 1e-9);
    EXPECT_GE(m.sc_percent.min(), 0.0);
  }
}

TEST_F(EvaluationTest, RandomScoresWorseThanEcoCharge) {
  EcoChargeOptions opts;
  EcoChargeRanker eco(env_->estimator.get(), env_->charger_index.get(),
                      weights_, opts);
  RandomRanker random(env_->estimator.get(), env_->charger_index.get(),
                      50000.0, 3);
  MethodEvaluation eco_eval = evaluator_->Evaluate(eco, 3, 1);
  MethodEvaluation rnd_eval = evaluator_->Evaluate(random, 3, 1);
  EXPECT_GT(eco_eval.sc_percent.mean(), rnd_eval.sc_percent.mean());
}

TEST_F(EvaluationTest, RepetitionsMultiplyObservations) {
  RandomRanker random(env_->estimator.get(), env_->charger_index.get(),
                      50000.0, 3);
  MethodEvaluation one = evaluator_->Evaluate(random, 3, 1);
  MethodEvaluation three = evaluator_->Evaluate(random, 3, 3);
  EXPECT_EQ(one.sc_percent.count(), states_.size());
  EXPECT_EQ(three.sc_percent.count(), 3 * states_.size());
}

TEST_F(EvaluationTest, MethodNameIsReported) {
  BruteForceRanker brute(env_->estimator.get(), weights_);
  EXPECT_EQ(evaluator_->Evaluate(brute, 2, 1).method, "Brute-Force");
}

}  // namespace
}  // namespace ecocharge
