#include "core/workload.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ecocharge {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = testing_util::TinyEnvironment(30);
    ASSERT_NE(env_, nullptr);
  }
  std::unique_ptr<Environment> env_;
};

TEST_F(WorkloadTest, TripStatesFollowSegments) {
  const Trajectory& trip = env_->dataset.trajectories.front();
  std::vector<VehicleState> states =
      TripStates(*env_->dataset.network, trip, 3000.0, kSecondsPerHour);
  ASSERT_FALSE(states.empty());
  Polyline line = trip.AsPolyline();
  size_t expected =
      SegmentTrip(line, 3000.0).size();
  EXPECT_EQ(states.size(), expected);
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ(states[i].segment_index, i);
    EXPECT_EQ(states[i].trip_id, trip.object_id());
    EXPECT_NE(states[i].node, kInvalidNode);
    EXPECT_NE(states[i].return_node_a, kInvalidNode);
    EXPECT_EQ(states[i].charge_window_s, kSecondsPerHour);
  }
}

TEST_F(WorkloadTest, TimesAreMonotonicAlongTrip) {
  const Trajectory& trip = env_->dataset.trajectories.front();
  std::vector<VehicleState> states =
      TripStates(*env_->dataset.network, trip, 3000.0, kSecondsPerHour);
  for (size_t i = 1; i < states.size(); ++i) {
    EXPECT_GE(states[i].time, states[i - 1].time);
  }
  EXPECT_GE(states.front().time, trip.StartTime());
  EXPECT_LE(states.back().time, trip.EndTime());
}

TEST_F(WorkloadTest, ReturnPointsChainSegments) {
  const Trajectory& trip = env_->dataset.trajectories.front();
  std::vector<VehicleState> states =
      TripStates(*env_->dataset.network, trip, 2500.0, kSecondsPerHour);
  for (size_t i = 0; i + 1 < states.size(); ++i) {
    // This segment's end is the next segment's start position.
    EXPECT_EQ(states[i].return_point_a, states[i + 1].position);
  }
  // Last state's return points coincide (no next segment).
  EXPECT_EQ(states.back().return_point_a, states.back().return_point_b);
}

TEST_F(WorkloadTest, BuildWorkloadHonorsCaps) {
  WorkloadOptions wo;
  wo.max_trips = 2;
  wo.max_states = 5;
  std::vector<VehicleState> states = BuildWorkload(env_->dataset, wo);
  EXPECT_LE(states.size(), 5u);
  EXPECT_FALSE(states.empty());
}

TEST_F(WorkloadTest, BuildWorkloadDeterministicInSeed) {
  WorkloadOptions wo;
  wo.max_trips = 3;
  wo.max_states = 10;
  wo.seed = 5;
  auto a = BuildWorkload(env_->dataset, wo);
  auto b = BuildWorkload(env_->dataset, wo);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position, b[i].position);
    EXPECT_EQ(a[i].time, b[i].time);
  }
  wo.seed = 6;
  auto c = BuildWorkload(env_->dataset, wo);
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    if (!(a[i].position == c[i].position)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST_F(WorkloadTest, EmptyDatasetYieldsEmptyWorkload) {
  Dataset empty;
  WorkloadOptions wo;
  EXPECT_TRUE(BuildWorkload(empty, wo).empty());
}

TEST_F(WorkloadTest, ShortTrajectoryYieldsNoStates) {
  Trajectory stub(99, {{{0, 0}, 0.0}});
  EXPECT_TRUE(
      TripStates(*env_->dataset.network, stub, 3000.0, 3600.0).empty());
}

}  // namespace
}  // namespace ecocharge
