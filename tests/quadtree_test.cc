#include "spatial/quadtree.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ecocharge {
namespace {

TEST(QuadTreeTest, SplitsWhenBucketOverflows) {
  QuadTree tree(/*bucket_capacity=*/4);
  tree.Build(testing_util::RandomCloud(100));
  EXPECT_GT(tree.num_tree_nodes(), 1u);
  EXPECT_GT(tree.depth(), 0);
}

TEST(QuadTreeTest, NoSplitUnderCapacity) {
  QuadTree tree(/*bucket_capacity=*/64);
  tree.Build(testing_util::RandomCloud(10));
  EXPECT_EQ(tree.num_tree_nodes(), 1u);
  EXPECT_EQ(tree.depth(), 0);
}

TEST(QuadTreeTest, MaxDepthBoundsDegenerateInput) {
  // 100 identical points can never be separated; the depth cap must stop
  // the recursion.
  QuadTree tree(/*bucket_capacity=*/2, /*max_depth=*/6);
  std::vector<Point> same(100, Point{1.0, 1.0});
  tree.Build(same);
  EXPECT_LE(tree.depth(), 6);
  EXPECT_EQ(tree.Knn({1.0, 1.0}, 100).size(), 100u);
}

TEST(QuadTreeTest, DepthGrowsLogarithmically) {
  QuadTree small(8), large(8);
  small.Build(testing_util::RandomCloud(100, 10000, 10000, 1));
  large.Build(testing_util::RandomCloud(10000, 10000, 10000, 1));
  // 100x the points should add only a handful of levels.
  EXPECT_LE(large.depth(), small.depth() + 6);
}

TEST(QuadTreeTest, KnnOrderedByDistance) {
  QuadTree tree;
  tree.Build(testing_util::RandomCloud(300));
  auto nn = tree.Knn({5000, 4000}, 25);
  ASSERT_EQ(nn.size(), 25u);
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].distance, nn[i].distance);
  }
}

TEST(QuadTreeTest, RangeSearchHonorsExactBoundary) {
  QuadTree tree;
  tree.Build({{0, 0}, {3, 0}, {5, 0}});
  auto hits = tree.RangeSearch({0, 0}, 3.0);
  ASSERT_EQ(hits.size(), 2u);  // distance exactly 3 is included
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[1].id, 1u);
}

TEST(QuadTreeTest, BucketCapacityOneWorks) {
  QuadTree tree(/*bucket_capacity=*/1);
  auto cloud = testing_util::RandomCloud(64);
  tree.Build(cloud);
  auto nn = tree.Knn(cloud[10], 1);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 10u);
  EXPECT_EQ(nn[0].distance, 0.0);
}

TEST(QuadTreeTest, RebuildReplacesContents) {
  QuadTree tree;
  tree.Build(testing_util::RandomCloud(50));
  EXPECT_EQ(tree.size(), 50u);
  tree.Build(testing_util::RandomCloud(5));
  EXPECT_EQ(tree.size(), 5u);
  EXPECT_EQ(tree.Knn({0, 0}, 100).size(), 5u);
}

}  // namespace
}  // namespace ecocharge
