#include "spatial/aknn.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ecocharge {
namespace {

TEST(AknnTest, EmptyAndZeroK) {
  EXPECT_TRUE(ComputeAllKnn({}, 3).empty());
  auto rows = ComputeAllKnn(testing_util::RandomCloud(5), 0);
  for (const auto& row : rows) EXPECT_TRUE(row.empty());
}

TEST(AknnTest, ExcludesSelf) {
  auto rows = ComputeAllKnn(testing_util::RandomCloud(50), 5);
  for (uint32_t i = 0; i < rows.size(); ++i) {
    for (const Neighbor& n : rows[i]) {
      EXPECT_NE(n.id, i);
    }
  }
}

TEST(AknnTest, MatchesNaiveJoin) {
  auto cloud = testing_util::RandomCloud(300, 5000.0, 4000.0, 21);
  auto fast = ComputeAllKnn(cloud, 6);
  auto naive = ComputeAllKnnNaive(cloud, 6);
  ASSERT_EQ(fast.size(), naive.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast[i].size(), naive[i].size()) << "row " << i;
    for (size_t j = 0; j < fast[i].size(); ++j) {
      EXPECT_EQ(fast[i][j].id, naive[i][j].id) << "row " << i << " pos " << j;
      EXPECT_NEAR(fast[i][j].distance, naive[i][j].distance, 1e-9);
    }
  }
}

TEST(AknnTest, RowsSortedAscending) {
  auto rows = ComputeAllKnn(testing_util::RandomCloud(100), 8);
  for (const auto& row : rows) {
    for (size_t j = 1; j < row.size(); ++j) {
      EXPECT_LE(row[j - 1].distance, row[j].distance);
    }
  }
}

TEST(AknnTest, KLargerThanNMinusOne) {
  auto rows = ComputeAllKnn(testing_util::RandomCloud(4), 10);
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), 3u);  // n - 1 neighbors exist
  }
}

TEST(AknnTest, DuplicatePointsAreMutualZeroDistanceNeighbors) {
  std::vector<Point> cloud = {{1, 1}, {1, 1}, {5, 5}};
  auto rows = ComputeAllKnn(cloud, 1);
  EXPECT_EQ(rows[0][0].id, 1u);
  EXPECT_EQ(rows[0][0].distance, 0.0);
  EXPECT_EQ(rows[1][0].id, 0u);
  EXPECT_EQ(rows[2][0].distance, Distance({1, 1}, {5, 5}));
}

TEST(AknnTest, KnnGraphSymmetryStatistics) {
  // On uniform data a substantial share of 1-NN relations are mutual —
  // a sanity check that the join is geometrically meaningful.
  auto cloud = testing_util::RandomCloud(500, 10000, 10000, 33);
  auto rows = ComputeAllKnn(cloud, 1);
  int mutual = 0;
  for (uint32_t i = 0; i < rows.size(); ++i) {
    uint32_t nn = rows[i][0].id;
    if (rows[nn][0].id == i) ++mutual;
  }
  EXPECT_GT(mutual, static_cast<int>(rows.size() / 2));
}

}  // namespace
}  // namespace ecocharge
