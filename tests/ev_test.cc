#include "energy/ev.h"

#include <gtest/gtest.h>

namespace ecocharge {
namespace {

TEST(EvModelTest, ClassPresetsAreOrdered) {
  EvModel compact = EvModel::ForClass(EvClass::kCompact);
  EvModel sedan = EvModel::ForClass(EvClass::kSedan);
  EvModel suv = EvModel::ForClass(EvClass::kSuv);
  EXPECT_LT(compact.battery_kwh(), sedan.battery_kwh());
  EXPECT_LT(sedan.battery_kwh(), suv.battery_kwh());
  EXPECT_LT(compact.consumption_kwh_per_km(), suv.consumption_kwh_per_km());
}

TEST(EvModelTest, DriveEnergyScalesLinearly) {
  EvModel ev(50.0, 0.2, 100.0);
  EXPECT_DOUBLE_EQ(ev.DriveEnergyKwh(10000.0), 2.0);
  EXPECT_DOUBLE_EQ(ev.DriveEnergyKwh(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ev.DriveEnergyKwh(-5.0), 0.0);
}

TEST(EvModelTest, RangeMatchesConsumption) {
  EvModel ev(50.0, 0.2, 100.0);
  EXPECT_DOUBLE_EQ(ev.RangeMeters(1.0), 250000.0);
  EXPECT_DOUBLE_EQ(ev.RangeMeters(0.5), 125000.0);
  EXPECT_DOUBLE_EQ(ev.RangeMeters(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ev.RangeMeters(2.0), 250000.0);  // clamped
}

TEST(EvModelTest, AcceptedPowerRespectsBothLimits) {
  EvModel ev(50.0, 0.2, 50.0);
  EXPECT_DOUBLE_EQ(ev.AcceptedPowerKw(0.5, 150.0), 50.0);  // vehicle limit
  EXPECT_DOUBLE_EQ(ev.AcceptedPowerKw(0.5, 11.0), 11.0);   // charger limit
}

TEST(EvModelTest, TaperAbove80Percent) {
  EvModel ev(50.0, 0.2, 100.0);
  double at80 = ev.AcceptedPowerKw(0.80, 100.0);
  double at90 = ev.AcceptedPowerKw(0.90, 100.0);
  double at100 = ev.AcceptedPowerKw(1.0, 100.0);
  EXPECT_DOUBLE_EQ(at80, 100.0);
  EXPECT_LT(at90, at80);
  EXPECT_NEAR(at100, 15.0, 1e-9);
}

TEST(EvModelTest, ChargeSessionConservesEnergy) {
  EvModel ev(50.0, 0.2, 100.0);
  auto result = ev.SimulateCharge(0.2, 50.0, 3600.0);
  EXPECT_NEAR(result.energy_kwh, (result.end_soc - 0.2) * 50.0, 1e-6);
  EXPECT_GT(result.end_soc, 0.2);
  EXPECT_LE(result.end_soc, 1.0);
  EXPECT_LE(result.duration_s, 3600.0);
}

TEST(EvModelTest, BelowTaperChargeIsLinear) {
  // 0.2 -> within the flat region: one hour at 25 kW = 25 kWh.
  EvModel ev(100.0, 0.2, 100.0);
  auto result = ev.SimulateCharge(0.2, 25.0, 3600.0);
  EXPECT_NEAR(result.energy_kwh, 25.0, 0.1);
  EXPECT_NEAR(result.end_soc, 0.45, 0.01);
}

TEST(EvModelTest, StopsAtFull) {
  EvModel ev(10.0, 0.15, 50.0);
  auto result = ev.SimulateCharge(0.95, 50.0, 4.0 * 3600.0);
  EXPECT_DOUBLE_EQ(result.end_soc, 1.0);
  EXPECT_NEAR(result.energy_kwh, 0.5, 1e-6);
  EXPECT_LT(result.duration_s, 4.0 * 3600.0);
}

TEST(EvModelTest, TaperSlowsTopUp) {
  // Charging 0.6->0.8 is faster than 0.8->1.0 for the same energy.
  EvModel ev(50.0, 0.2, 50.0);
  auto low = ev.SimulateCharge(0.6, 50.0, 10.0 * 3600.0);
  // Find time to add 10 kWh from 0.6 (0.2 of soc).
  auto high = ev.SimulateCharge(0.8, 50.0, 10.0 * 3600.0);
  // Both sessions add 10 kWh (0.6->0.8 capped... low runs to full).
  // Compare instantaneous powers instead for robustness:
  EXPECT_GT(ev.AcceptedPowerKw(0.7, 50.0), ev.AcceptedPowerKw(0.9, 50.0));
  EXPECT_GE(high.duration_s, 0.0);
  EXPECT_GE(low.energy_kwh, high.energy_kwh);
}

TEST(EvModelTest, ZeroPowerChargesNothing) {
  EvModel ev(50.0, 0.2, 50.0);
  auto result = ev.SimulateCharge(0.5, 0.0, 3600.0);
  EXPECT_DOUBLE_EQ(result.end_soc, 0.5);
  EXPECT_DOUBLE_EQ(result.energy_kwh, 0.0);
}

TEST(EvModelTest, ClassNamesDistinct) {
  EXPECT_NE(EvClassName(EvClass::kCompact), EvClassName(EvClass::kSuv));
}

}  // namespace
}  // namespace ecocharge
