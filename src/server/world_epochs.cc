#include "server/world_epochs.h"

#include <thread>

namespace ecocharge {

WorldEpochs::WorldEpochs(size_t max_readers)
    : pins_(max_readers == 0 ? 1 : max_readers) {
  // Epoch 0 is the reserved "unpinned" sentinel; the initial snapshot is
  // epoch 1 so a pin value is never ambiguous.
  slots_[1 % kSlots].epoch = 1;
  current_.store(1, std::memory_order_seq_cst);
}

WorldEpochs::ReaderPin WorldEpochs::Pin(size_t reader) {
  std::atomic<uint64_t>& pin = pins_[reader].epoch;
  uint64_t epoch = current_.load(std::memory_order_seq_cst);
  for (;;) {
    pin.store(epoch, std::memory_order_seq_cst);
    uint64_t recheck = current_.load(std::memory_order_seq_cst);
    if (recheck == epoch) break;
    // A writer published between our load and our pin store; it may have
    // missed the pin when it swept the array, so the slot of `epoch` is
    // not guaranteed stable. Re-pin the newer epoch (the writer cannot
    // reuse ITS slot until it observes this pin move past it).
    epoch = recheck;
  }
  return ReaderPin(this, reader, &slots_[epoch % kSlots]);
}

void WorldEpochs::Unpin(size_t reader) {
  pins_[reader].epoch.store(kUnpinned, std::memory_order_release);
}

WorldEpochs::ReaderPin::~ReaderPin() {
  if (epochs_) epochs_->Unpin(reader_);
}

void WorldEpochs::Publish(SimTime now,
                          const std::function<void(WorldSnapshot*)>& mutate) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  uint64_t cur = current_.load(std::memory_order_seq_cst);
  uint64_t next = cur + 1;
  WorldSnapshot& slot = slots_[next % kSlots];
  // The slot we are about to overwrite last held epoch `next - kSlots`
  // (when next > kSlots). Readers can only be pinned to epochs in
  // (next - kSlots, next] once that epoch was superseded, so waiting for
  // pins <= next - kSlots is exactly "the last reader of this slot has
  // drained". With kSlots versions in flight this wait is almost never
  // taken: a reader must survive kSlots consecutive publishes.
  if (next > kSlots) {
    uint64_t retiring = next - kSlots;
    for (const PinSlot& p : pins_) {
      while (true) {
        uint64_t pinned = p.epoch.load(std::memory_order_seq_cst);
        if (pinned == kUnpinned || pinned > retiring) break;
        std::this_thread::yield();
      }
    }
  }
  slot = slots_[cur % kSlots];
  slot.epoch = next;
  slot.published_at = now;
  mutate(&slot);
  slot.epoch = next;  // epoch assignment is not the mutator's to change
  current_.store(next, std::memory_order_seq_cst);
}

uint64_t WorldEpochs::MinPinnedEpoch(size_t begin, size_t end) const {
  uint64_t min_epoch = 0;
  for (size_t i = begin; i < end && i < pins_.size(); ++i) {
    uint64_t pinned = pins_[i].epoch.load(std::memory_order_seq_cst);
    if (pinned == kUnpinned) continue;
    if (min_epoch == 0 || pinned < min_epoch) min_epoch = pinned;
  }
  return min_epoch;
}

}  // namespace ecocharge
