#ifndef ECOCHARGE_SERVER_CORRIDOR_CACHE_H_
#define ECOCHARGE_SERVER_CORRIDOR_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/offering_table.h"
#include "core/vehicle_state.h"
#include "eis/ttl_cache.h"
#include "eis/world_revisions.h"
#include "obs/metrics.h"

namespace ecocharge {

class RoadNetwork;

/// \brief Tuning of the cross-user corridor cache.
struct CorridorCacheOptions {
  /// Entry freshness horizon. Kept >= eta_bucket_s so every request in a
  /// bucket sees the entry its bucket-mates inserted.
  double ttl_s = 15.0 * kSecondsPerMinute;

  /// ETA quantization: requests whose time falls in the same bucket share
  /// one corridor entry (the paper's forecast granularity argument —
  /// vehicles minutes apart see the same L/A/D forecasts anyway).
  double eta_bucket_s = 5.0 * kSecondsPerMinute;

  /// Lock shards (rounded up to a power of two). Sized to contention:
  /// the fleet runtime raises it with the worker count, mirroring
  /// EisOptions::cache_shards.
  size_t num_shards = 16;

  /// Per-shard entry cap; at capacity a shard drops expired entries and,
  /// if still full, clears (the corridor working set is re-derivable).
  size_t max_entries_per_shard = 1 << 14;

  /// Future ETA buckets to speculatively fill after a corridor miss
  /// (Prewarm): a vehicle that missed bucket t seeds buckets t+1..t+N for
  /// everyone behind it on the same segment. 0 (default) = off.
  size_t prewarm_buckets = 0;
};

/// \brief Cross-user Offering Table cache keyed by corridor and ETA
/// bucket — the paper's Dynamic Caching generalized across vehicles.
///
/// Per-trip Dynamic Caching reuses solved sub-problems across *time* for
/// one vehicle; a fleet serving millions of concurrent trips sees many
/// vehicles on the same road segment with overlapping ETAs, whose
/// candidate sets and estimated components are near-identical. This cache
/// computes the Offering Table once per (corridor signature, ETA bucket,
/// world epoch) and copies it out to every bucket-mate.
///
/// Canonicality is the correctness keystone: a cached table is the table
/// of the *canonical anchor state* of its key — time snapped to the
/// bucket start, position snapped to the network node, trip identity
/// zeroed — ranked fresh with per-client caching disabled. The stored
/// value is therefore a pure function of (key, world revisions): any
/// worker on any shard that misses computes the identical bytes, so
/// first-writer-wins insertion is race-free by value and sharded serving
/// stays bit-identical to single-shard serving.
///
/// World revisions are folded into the key, so an epoch publish makes the
/// previous epoch's corridors unreachable (they age out by TTL) without
/// any sweep or reader stall.
class CorridorCache {
 public:
  /// \param network the road graph, for node -> position canonicalization
  ///   (borrowed, must outlive the cache).
  CorridorCache(const RoadNetwork* network,
                const CorridorCacheOptions& options);

  /// The corridor key of `state` under `revisions`: a 64-bit mix of the
  /// snapped node, the segment's return nodes, k, the charge-window bits,
  /// the ETA bucket, and the three upstream revisions.
  uint64_t KeyFor(const VehicleState& state, size_t k,
                  const WorldRevisions& revisions) const;

  /// The canonical anchor state every key-mate shares: time floored to
  /// the bucket start, position moved to the snapped node, trip identity
  /// (trip_id, segment_index) zeroed. Ranking this state fresh yields the
  /// exact bytes stored under KeyFor(state, ...).
  VehicleState CanonicalState(const VehicleState& state) const;

  /// On a fresh hit, copies the cached table into `*out` (reusing its
  /// entry capacity — allocation-free once `*out` reached its high-water
  /// size) and returns true. Counts a hit or miss either way.
  bool GetInto(uint64_t key, SimTime now, OfferingTable* out);

  /// Inserts/overwrites the canonical table for `key`. Concurrent
  /// duplicate inserts are benign: every writer computed the same bytes.
  void Put(uint64_t key, const OfferingTable& table, SimTime now);

  /// Ranks the canonical anchor of one future ETA bucket into `*out`;
  /// false aborts the prewarm pass (the remaining buckets are skipped).
  using PrewarmFill =
      std::function<bool(const VehicleState& anchor, size_t k,
                         OfferingTable* out)>;

  /// Speculatively fills the next `options().prewarm_buckets` ETA buckets
  /// of `state`'s corridor: for each future bucket whose entry is absent
  /// or expired, ranks the bucket's canonical anchor via `fill` and Puts
  /// the result — vehicles arriving in those buckets then hit instead of
  /// recomputing. Stored bytes are canonical (same anchor rule as the miss
  /// path shifted in time), so prewarmed and demand-filled entries are
  /// bit-identical. Existing fresh entries are left untouched and do not
  /// count hits/misses. Returns buckets actually filled. `scratch`, when
  /// non-null, is the table `fill` ranks into (callers with a long-lived
  /// buffer stay allocation-free); null uses a call-local table.
  size_t Prewarm(const VehicleState& state, size_t k,
                 const WorldRevisions& revisions, SimTime now,
                 const PrewarmFill& fill, OfferingTable* scratch = nullptr);

  CacheStats stats() const;
  uint64_t inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  uint64_t prewarmed() const {
    return prewarmed_.load(std::memory_order_relaxed);
  }
  size_t size() const;
  const CorridorCacheOptions& options() const { return options_; }

  /// Mirrors hit/miss/insert counts onto `registry` under
  /// `fleet.corridor.*`; null detaches. Wire before traffic starts.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    OfferingTable table;
    SimTime inserted_at = 0.0;
  };
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> entries;
  };

  Shard& ShardFor(uint64_t key) {
    return shards_[key & (shards_.size() - 1)];
  }

  const RoadNetwork* network_;
  CorridorCacheOptions options_;
  std::vector<Shard> shards_;

  /// Non-counting freshness probe (Prewarm must not skew hit/miss rates).
  bool HasFresh(uint64_t key, SimTime now);

  AtomicCacheStats stats_;
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> prewarmed_{0};
  obs::Counter* hits_mirror_ = nullptr;
  obs::Counter* misses_mirror_ = nullptr;
  obs::Counter* inserts_mirror_ = nullptr;
  obs::Counter* prewarmed_mirror_ = nullptr;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SERVER_CORRIDOR_CACHE_H_
