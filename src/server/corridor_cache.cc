#include "server/corridor_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "graph/road_network.h"

namespace ecocharge {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  h *= 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 31);
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// ~100 m grid, for the (unusual) case of a state with no snapped node:
// the key must still quantize so corridor-mates land on one entry.
uint64_t QuantizeCoord(double c) {
  return static_cast<uint64_t>(
      static_cast<int64_t>(std::floor(c / 100.0)));
}

}  // namespace

CorridorCache::CorridorCache(const RoadNetwork* network,
                             const CorridorCacheOptions& options)
    : network_(network),
      options_(options),
      shards_(RoundUpPow2(std::max<size_t>(1, options.num_shards))) {}

uint64_t CorridorCache::KeyFor(const VehicleState& state, size_t k,
                               const WorldRevisions& revisions) const {
  uint64_t eta_bucket = static_cast<uint64_t>(
      std::max(0.0, state.time) / options_.eta_bucket_s);
  uint64_t h = 0x8C9A1E7B5D3F2A41ULL;
  if (state.node != kInvalidNode) {
    h = Mix(h, state.node + 1);
  } else {
    h = Mix(h, QuantizeCoord(state.position.x));
    h = Mix(h, QuantizeCoord(state.position.y));
  }
  h = Mix(h, static_cast<uint64_t>(state.return_node_a) + 1);
  h = Mix(h, static_cast<uint64_t>(state.return_node_b) + 1);
  h = Mix(h, eta_bucket);
  h = Mix(h, k);
  h = Mix(h, DoubleBits(state.charge_window_s));
  h = Mix(h, revisions.weather + 1);
  h = Mix(h, revisions.availability + 1);
  h = Mix(h, revisions.traffic + 1);
  return h;
}

VehicleState CorridorCache::CanonicalState(const VehicleState& state) const {
  VehicleState anchor = state;
  anchor.time = std::floor(std::max(0.0, state.time) / options_.eta_bucket_s) *
                options_.eta_bucket_s;
  if (network_ != nullptr && state.node != kInvalidNode &&
      state.node < network_->NumNodes()) {
    anchor.position = network_->NodePosition(state.node);
  }
  // The trip identity must not leak into the shared table: every
  // bucket-mate receives the same canonical bytes no matter which vehicle
  // populated the entry.
  anchor.trip_id = 0;
  anchor.segment_index = 0;
  return anchor;
}

bool CorridorCache::GetInto(uint64_t key, SimTime now, OfferingTable* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    stats_.AddMiss();
    if (misses_mirror_) misses_mirror_->Add();
    return false;
  }
  // Same pinned boundary as TtlCache: age == ttl is still a hit. Negative
  // age (an entry from this key's future — only possible across replayed
  // sim clocks) is stale.
  double age = now - it->second.inserted_at;
  if (age > options_.ttl_s || age < 0.0) {
    stats_.AddExpiration();
    stats_.AddMiss();
    if (misses_mirror_) misses_mirror_->Add();
    shard.entries.erase(it);
    return false;
  }
  const OfferingTable& cached = it->second.table;
  out->generated_at = cached.generated_at;
  out->location = cached.location;
  out->segment_index = cached.segment_index;
  out->adapted_from_cache = cached.adapted_from_cache;
  out->degraded = cached.degraded;
  out->entries.assign(cached.entries.begin(), cached.entries.end());
  stats_.AddHit();
  if (hits_mirror_) hits_mirror_->Add();
  return true;
}

void CorridorCache::Put(uint64_t key, const OfferingTable& table,
                        SimTime now) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.size() >= options_.max_entries_per_shard &&
      shard.entries.find(key) == shard.entries.end()) {
    // Drop expired entries first; if the shard is still full the whole
    // working set is live — clear it (every entry is re-derivable).
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      double age = now - it->second.inserted_at;
      if (age > options_.ttl_s || age < 0.0) {
        it = shard.entries.erase(it);
      } else {
        ++it;
      }
    }
    if (shard.entries.size() >= options_.max_entries_per_shard) {
      shard.entries.clear();
    }
  }
  Entry& entry = shard.entries[key];
  entry.table.generated_at = table.generated_at;
  entry.table.location = table.location;
  entry.table.segment_index = table.segment_index;
  entry.table.adapted_from_cache = table.adapted_from_cache;
  entry.table.degraded = table.degraded;
  entry.table.entries.assign(table.entries.begin(), table.entries.end());
  entry.inserted_at = now;
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (inserts_mirror_) inserts_mirror_->Add();
}

bool CorridorCache::HasFresh(uint64_t key, SimTime now) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  const double age = now - it->second.inserted_at;
  return age <= options_.ttl_s && age >= 0.0;
}

size_t CorridorCache::Prewarm(const VehicleState& state, size_t k,
                              const WorldRevisions& revisions, SimTime now,
                              const PrewarmFill& fill,
                              OfferingTable* scratch) {
  if (options_.prewarm_buckets == 0) return 0;
  size_t filled = 0;
  OfferingTable local;
  OfferingTable& table = scratch != nullptr ? *scratch : local;
  for (size_t j = 1; j <= options_.prewarm_buckets; ++j) {
    // Shift the state one ETA bucket ahead; KeyFor/CanonicalState then
    // derive the future bucket's key and anchor exactly as the on-demand
    // miss path would when a vehicle arrives there, so the bytes stored
    // here are the bytes that vehicle would have computed.
    VehicleState future = state;
    future.time =
        state.time + static_cast<double>(j) * options_.eta_bucket_s;
    const uint64_t key = KeyFor(future, k, revisions);
    if (HasFresh(key, now)) continue;
    if (!fill(CanonicalState(future), k, &table)) break;
    Put(key, table, now);
    prewarmed_.fetch_add(1, std::memory_order_relaxed);
    if (prewarmed_mirror_) prewarmed_mirror_->Add();
    ++filled;
  }
  return filled;
}

CacheStats CorridorCache::stats() const { return stats_.Snapshot(); }

size_t CorridorCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

void CorridorCache::AttachMetrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    hits_mirror_ = nullptr;
    misses_mirror_ = nullptr;
    inserts_mirror_ = nullptr;
    prewarmed_mirror_ = nullptr;
    return;
  }
  hits_mirror_ = registry->GetCounter("fleet.corridor.hits", "lookups");
  misses_mirror_ = registry->GetCounter("fleet.corridor.misses", "lookups");
  inserts_mirror_ = registry->GetCounter("fleet.corridor.inserts", "tables");
  prewarmed_mirror_ =
      registry->GetCounter("fleet.corridor.prewarmed", "tables");
}

}  // namespace ecocharge
