#ifndef ECOCHARGE_SERVER_CLIENT_STORE_H_
#define ECOCHARGE_SERVER_CLIENT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/simtime.h"
#include "core/dynamic_cache.h"
#include "obs/metrics.h"

namespace ecocharge {

/// Shard sentinel for a client that has never been routed.
inline constexpr uint32_t kNoShard = 0xFFFFFFFFu;

/// \brief Counter snapshot of the fleet client store.
struct ClientStoreStats {
  uint64_t checkouts = 0;   ///< request leases granted
  uint64_t handoffs = 0;    ///< routed shard differed from the previous one
  uint64_t waits = 0;       ///< leases that had to wait for a predecessor
  uint64_t abandoned = 0;   ///< tickets released by shed submissions
};

/// \brief Fleet-central per-client serving state: the vehicle's Dynamic
/// Cache contents, its current shard, and a per-client ticket sequence.
///
/// In single-pool serving, client -> worker hashing pins each vehicle's
/// cache to one thread and guarantees FIFO processing of its requests. A
/// geographically sharded fleet breaks both: the vehicle's requests move
/// to another shard when it crosses a partition boundary, and a request
/// queued on the old shard may still be in flight when the new shard
/// picks up the next one. This store restores the two invariants:
///
///  - *State travels.* A worker checks the client's DynamicCacheState out
///    (an O(1) swap) before ranking and back in after, so the warm
///    solution follows the vehicle across shards — the "carrying
///    warm-start/cache state" half of a handoff.
///  - *FIFO survives the handoff.* The router assigns each accepted
///    request a per-client ticket at submit time; a checkout blocks until
///    every earlier ticket of that client has checked in (or was
///    abandoned by load shedding). Tickets are strictly increasing per
///    client, so waits form no cycles — the old shard's queue drains the
///    predecessor and the new shard proceeds. This is what makes sharded
///    serving bit-identical to single-shard serving even for boundary
///    oscillators.
///
/// The map is sharded by client-id hash with per-shard mutexes; only the
/// submit path and the per-request checkout/checkin touch it — the
/// ranking compute path itself stays lock-free.
class ClientStore {
 public:
  explicit ClientStore(size_t num_shards = 16);

  /// Router side: assigns the next ticket for `client_id`, records the
  /// routed `shard`, and reports whether this was a cross-shard handoff.
  uint64_t Enqueue(uint64_t client_id, uint32_t shard, SimTime now,
                   bool* handoff);

  /// Worker side: blocks until ticket `seq` is the client's turn, then
  /// swaps the client's cache state into `*into` and marks it leased.
  void CheckOut(uint64_t client_id, uint64_t seq, DynamicCacheState* into);

  /// Worker side: swaps the (updated) state back and releases the lease,
  /// unblocking the next ticket.
  void CheckIn(uint64_t client_id, uint64_t seq, DynamicCacheState* from,
               SimTime now);

  /// Router side: releases ticket `seq` after its submission was shed
  /// (queue full), so successors don't wait for a request that will never
  /// be served.
  void Abandon(uint64_t client_id, uint64_t seq);

  /// Drops clients idle since before `now - ttl_s`. Never drops a client
  /// with outstanding tickets.
  void EvictIdle(SimTime now, double ttl_s);

  ClientStoreStats Stats() const;
  size_t active_clients() const;

  /// Mirrors the counters onto `registry` under `fleet.clients.*`; null
  /// detaches. Wire before traffic starts.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct Record {
    DynamicCacheState cache;
    uint32_t shard = kNoShard;
    SimTime last_seen = 0.0;
    uint64_t next_ticket = 0;   ///< assigned to the next Enqueue
    uint64_t next_to_serve = 0; ///< smallest unserved ticket
    bool leased = false;
    /// Tickets abandoned before their turn (rare: shed submissions);
    /// sorted ascending, drained as next_to_serve reaches them.
    std::vector<uint64_t> abandoned;
  };
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<uint64_t, Record> records;
  };

  Shard& ShardFor(uint64_t client_id) {
    uint64_t h = client_id * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 32;
    return shards_[h & (shards_.size() - 1)];
  }

  static void AdvancePastAbandoned(Record* record);

  std::vector<Shard> shards_;

  std::atomic<uint64_t> checkouts_{0};
  std::atomic<uint64_t> handoffs_{0};
  std::atomic<uint64_t> waits_{0};
  std::atomic<uint64_t> abandoned_{0};
  obs::Counter* handoffs_mirror_ = nullptr;
  obs::Counter* waits_mirror_ = nullptr;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SERVER_CLIENT_STORE_H_
