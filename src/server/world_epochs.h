#ifndef ECOCHARGE_SERVER_WORLD_EPOCHS_H_
#define ECOCHARGE_SERVER_WORLD_EPOCHS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/simtime.h"
#include "eis/world_revisions.h"

namespace ecocharge {

/// \brief One published world version: the upstream revision counters a
/// request serves against, plus bookkeeping for observability.
struct WorldSnapshot {
  uint64_t epoch = 0;            ///< monotonically increasing version
  WorldRevisions revisions;      ///< per-upstream data-set generations
  SimTime published_at = 0.0;    ///< sim time of the publish
};

/// \brief Epoch-based (RCU-style) world-version publication.
///
/// Weather, availability, and traffic refreshes must become visible to
/// the serving fleet without stalling the read path: a worker pins the
/// current snapshot with two atomic stores (no mutex, no CAS loop, no
/// allocation), serves the whole request against that immutable version,
/// and unpins. A writer publishes the next version into a ring of
/// snapshot slots and only ever waits — writer-side — for readers still
/// pinned to the slot it is about to reuse, `kSlots` epochs behind.
///
/// Reclamation protocol (the classic epoch scheme):
///  - Each reader owns one cache-line-aligned pin slot. Pin: load
///    `current`, store it into the pin, re-check `current`; if it moved,
///    retry. The re-check closes the race with a writer that swept the
///    pin array between the reader's load and its pin store (all four
///    accesses are seq_cst, so one of the two sides must observe the
///    other — the Dekker store/load pattern).
///  - A writer (serialized by a mutex among writers only) computes the
///    next epoch, spins until no pin holds the epoch whose slot it must
///    overwrite, installs the new snapshot, then releases it with a
///    seq_cst store of `current`. Readers therefore never observe a slot
///    mid-overwrite: the slot of any pinnable epoch is immutable until
///    the last reader of that epoch drains.
///
/// The snapshot's revisions feed ScopedWorldRevisions, which re-keys the
/// EIS response caches — so "publish a refresh" is one counter bump and
/// one ring write, never a lock sweep over megabytes of cached forecasts.
class WorldEpochs {
 public:
  /// \param max_readers number of distinct pin slots; reader ids passed
  ///   to Pin() must be < max_readers and must not be shared by threads
  ///   that pin concurrently.
  explicit WorldEpochs(size_t max_readers);

  /// RAII epoch pin. Movable so Pin() can return it; not copyable.
  class ReaderPin {
   public:
    ReaderPin(ReaderPin&& o) noexcept
        : epochs_(o.epochs_), reader_(o.reader_), snapshot_(o.snapshot_) {
      o.epochs_ = nullptr;
    }
    ReaderPin(const ReaderPin&) = delete;
    ReaderPin& operator=(const ReaderPin&) = delete;
    ReaderPin& operator=(ReaderPin&&) = delete;
    ~ReaderPin();

    const WorldSnapshot& snapshot() const { return *snapshot_; }

   private:
    friend class WorldEpochs;
    ReaderPin(WorldEpochs* epochs, size_t reader,
              const WorldSnapshot* snapshot)
        : epochs_(epochs), reader_(reader), snapshot_(snapshot) {}

    WorldEpochs* epochs_;
    size_t reader_;
    const WorldSnapshot* snapshot_;
  };

  /// Pins the current world version for reader slot `reader`. Lock-free
  /// and allocation-free; never blocks on a writer.
  ReaderPin Pin(size_t reader);

  /// Publishes the next world version: copies the latest snapshot, lets
  /// `mutate` edit it (bump revisions, stamp `published_at`), and makes
  /// it the current epoch. Serializes with other writers; waits only for
  /// readers pinned `kSlots` epochs behind (i.e. almost never).
  void Publish(SimTime now, const std::function<void(WorldSnapshot*)>& mutate);

  /// The current epoch number (starts at 1 for the initial snapshot).
  uint64_t current_epoch() const {
    return current_.load(std::memory_order_seq_cst);
  }

  /// The oldest epoch any reader in [begin, end) is pinned to, or 0 when
  /// none of those slots is pinned — the "epoch lag" observability input.
  uint64_t MinPinnedEpoch(size_t begin, size_t end) const;

  size_t max_readers() const { return pins_.size(); }

 private:
  static constexpr size_t kSlots = 8;
  static constexpr uint64_t kUnpinned = 0;

  struct alignas(64) PinSlot {
    std::atomic<uint64_t> epoch{kUnpinned};
  };

  void Unpin(size_t reader);

  WorldSnapshot slots_[kSlots];
  std::atomic<uint64_t> current_;
  std::vector<PinSlot> pins_;
  std::mutex writer_mu_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SERVER_WORLD_EPOCHS_H_
