#ifndef ECOCHARGE_SERVER_BOUNDED_QUEUE_H_
#define ECOCHARGE_SERVER_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ecocharge {

/// \brief Bounded MPMC queue with non-blocking admission.
///
/// The serving runtime's backpressure primitive: producers (client
/// threads calling OfferingServer::Submit) TryPush and receive an
/// immediate reject when the queue is at capacity, so overload degrades
/// into fast, explicit rejections instead of unbounded memory growth;
/// consumers (worker threads) block in Pop until an item arrives or the
/// queue is closed. Any number of threads may push and pop concurrently.
///
/// Close() ends the stream: pending items are still drained (Pop keeps
/// returning them), and only then does Pop return nullopt — so shutdown
/// never drops an accepted request.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed; never blocks.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Lvalue form: copies `item` into the queue (the original is left
  /// untouched, so a producer can retry or re-route a rejected submit).
  bool TryPush(const T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(item);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returned) or the queue is closed
  /// and drained (nullopt).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes blocked consumers once drained.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SERVER_BOUNDED_QUEUE_H_
