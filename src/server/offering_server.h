#ifndef ECOCHARGE_SERVER_OFFERING_SERVER_H_
#define ECOCHARGE_SERVER_OFFERING_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/environment.h"
#include "core/offering_service.h"
#include "obs/metrics.h"
#include "eis/world_revisions.h"
#include "resilience/resilient_information_server.h"
#include "server/bounded_queue.h"
#include "server/client_store.h"
#include "server/corridor_cache.h"
#include "server/world_epochs.h"

namespace ecocharge {

/// \brief Concurrency knobs of the serving runtime.
struct OfferingServerOptions {
  /// Worker threads. 0 = synchronous deterministic mode: Submit executes
  /// inline on the caller with no threads, no queues, and no locks taken
  /// on the hot path — bit-identical to the single-threaded pipeline, so
  /// tests and figure benches can route through the server unchanged.
  int threads = 0;

  /// Per-worker pending-request cap; a full queue rejects new submissions
  /// with kUnavailable (admission control) instead of buffering unboundedly.
  size_t queue_depth = 256;

  /// Shards per EIS response cache (see EisOptions::cache_shards).
  size_t eis_cache_shards = 16;

  /// Per-client ranker state is dropped after this much idle sim time.
  double client_ttl_s = kSecondsPerHour;

  /// When > 0, each request handler blocks this long to emulate the
  /// upstream-fetch / response-write I/O of the real Mode-2 deployment
  /// (the Laravel/Nginx EIS talks to weather/traffic providers over HTTP).
  /// Lets the throughput bench exercise I/O overlap; 0 (the default)
  /// keeps request handling pure compute.
  double simulated_io_ms = 0.0;

  /// When true, the shared EIS is a ResilientInformationServer: upstream
  /// fetches go through the fault injector / retry / circuit-breaker /
  /// degradation stack configured by `resilience`. With the default
  /// (fault-free) resilience options the served tables are bit-identical
  /// to the undecorated server.
  bool resilient_eis = false;
  resilience::ResilienceOptions resilience;

  /// Virtual per-request deadline budget (milliseconds) that injected
  /// upstream latency and retry backoff are charged against when
  /// `resilient_eis` is on; <= 0 serves with an unbounded budget.
  double request_deadline_ms = 250.0;

  // --- Fleet-serving hooks (all borrowed; null = stand-alone server). ---

  /// RCU world-version source. When set, every request pins the current
  /// snapshot (two atomic stores, no mutex) and serves under its
  /// revisions via ScopedWorldRevisions, so refresh publishes never stall
  /// the read path. The owner must outlive the server.
  WorldEpochs* epochs = nullptr;

  /// This server's reader-slot range in `epochs`: worker i pins slot
  /// `epoch_reader_base + i`. The fleet runtime hands each shard a
  /// disjoint range.
  size_t epoch_reader_base = 0;

  /// Cross-user corridor cache. When set, the table path serves the
  /// canonical corridor table (hit: copy out; miss: rank the canonical
  /// anchor fresh and insert) instead of per-client Dynamic Caching.
  CorridorCache* corridor = nullptr;

  /// Fleet-central per-client cache state (ignored when `corridor` is
  /// set). When set, requests carry router-assigned tickets and each
  /// request checks its client's Dynamic Cache state out around the rank,
  /// so the warm solution follows the vehicle across shard handoffs.
  ClientStore* client_store = nullptr;

  /// Extra latency sink shared across shards (e.g. the fleet-level
  /// `fleet.request_latency_ns`); recorded alongside the server's own
  /// histogram when non-null.
  obs::Histogram* extra_latency = nullptr;
};

/// \brief Counter snapshot of one server instance (plain values).
struct OfferingServerStats {
  uint64_t accepted = 0;   ///< submissions admitted to a queue (or inline)
  uint64_t rejected = 0;   ///< submissions refused: queue full or shut down
  uint64_t served = 0;     ///< requests fully processed (incl. malformed)
  uint64_t malformed = 0;  ///< wire requests that failed to decode
  uint64_t cache_adaptations = 0;  ///< tables served via Dynamic Caching
  uint64_t degraded_tables = 0;  ///< tables carrying a degradation flag
};

/// \brief The concurrent Offering Table serving runtime (the paper's
/// Fig. 4 Information Server under load).
///
/// A fixed pool of worker threads serves ranking requests from many
/// vehicles. Each worker owns a full single-threaded serving stack — an
/// EcEstimator (Dijkstra scratch, derouting memo, fleet-energy cache), an
/// OfferingService (per-client EcoCharge rankers + Dynamic Caches), and
/// one long-lived QueryContext — so the steady-state zero-allocation
/// property of the query pipeline holds per worker with no locking on the
/// compute path. Workers share exactly three things, each engineered for
/// concurrent reads: the immutable environment (network, chargers,
/// spatial index), the pure-function forecast services, and one
/// InformationServer whose TTL caches are sharded with per-shard mutexes.
///
/// Requests are routed to workers by client id hash, which gives every
/// client a stable worker and therefore FIFO processing of its own
/// requests — that per-client ordering, plus the purity of all shared
/// state, is why `threads = N` produces exactly the same Offering Tables
/// as `threads = 0` (asserted by tests/offering_server_test.cc). Each
/// worker's queue is bounded: when it fills, Submit returns kUnavailable
/// immediately and the caller sheds load (reject-with-status beats OOM).
///
/// Callbacks run on the worker thread that served the request (or inline
/// when threads = 0); they must be fast and must synchronize any state
/// they share with other threads.
class OfferingServer {
 public:
  using TableCallback = std::function<void(const OfferingTable&)>;
  using ReplyCallback = std::function<void(const Result<std::string>&)>;

  /// \param env fully built world (not owned; must outlive the server)
  OfferingServer(Environment* env, const ScoreWeights& weights,
                 const EcoChargeOptions& eco_options,
                 const OfferingServerOptions& options = {});
  ~OfferingServer();

  OfferingServer(const OfferingServer&) = delete;
  OfferingServer& operator=(const OfferingServer&) = delete;

  /// Enqueues a ranking request for `client_id`; `on_table` receives the
  /// Offering Table on the serving worker. Returns kUnavailable when the
  /// client's worker queue is full, kFailedPrecondition after Shutdown().
  /// `client_seq` is the router-assigned per-client ticket, used only
  /// when `client_store` is configured (the fleet runtime supplies it;
  /// stand-alone callers leave it 0).
  Status Submit(uint64_t client_id, const VehicleState& state, size_t k,
                TableCallback on_table, uint64_t client_seq = 0);

  /// Wire-protocol form: decodes an OfferingRequest, serves it, and hands
  /// `on_reply` the encoded Offering Table (or the decode error).
  Status SubmitWire(uint64_t client_id, std::string wire,
                    ReplyCallback on_reply, uint64_t client_seq = 0);

  /// Blocks until every accepted request has been served.
  void Drain();

  /// Drains, closes the queues, and joins the workers. Idempotent;
  /// further submissions are rejected. Called by the destructor.
  void Shutdown();

  /// Worker count (0 = synchronous inline mode).
  int threads() const { return threads_; }

  /// Counter snapshot; safe to call concurrently with traffic.
  OfferingServerStats Stats() const;

  /// The shared, sharded Information Server all workers account against.
  const InformationServer& information_server() const { return *shared_eis_; }

  /// The resilient EIS decorator, or null when `resilient_eis` is off.
  resilience::ResilientInformationServer* resilient_eis() {
    return resilient_eis_;
  }
  const resilience::ResilientInformationServer* resilient_eis() const {
    return resilient_eis_;
  }

  /// The server-owned metrics registry: request counters, queue-depth
  /// gauges, the end-to-end `server.request_latency_ns` histogram, plus
  /// everything the EIS, the estimators, and the query pipeline record
  /// (wired in the constructor, before any worker thread starts). Safe to
  /// snapshot concurrently with traffic — feed it to obs::StatszJson for
  /// the serving dashboard.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct Request {
    uint64_t client_id = 0;
    bool is_wire = false;
    std::string wire;    // wire form
    VehicleState state;  // table form
    size_t k = 3;
    TableCallback on_table;
    ReplyCallback on_reply;
    uint64_t client_seq = 0;  ///< router ticket (client_store mode)
    /// Stamped at submission; the latency histogram spans queue wait +
    /// service time (what a vehicle actually experiences).
    std::chrono::steady_clock::time_point submitted_at{};
  };

  /// One worker's single-threaded serving stack. Only its owning thread
  /// (or the caller, in inline mode) ever touches estimator/service.
  struct Worker {
    size_t index = 0;  ///< position in workers_, = epoch reader offset
    std::unique_ptr<EcEstimator> estimator;
    std::unique_ptr<OfferingService> service;
    OfferingTable table;  ///< reusable reply buffer for the table path
    /// Scratch table for corridor prewarm ranks: the reply buffer above is
    /// live (it holds the table being returned) while future buckets are
    /// being speculatively filled, so prewarm ranks land here instead.
    OfferingTable prewarm_table;
    DynamicCacheState lease;  ///< scratch for client-store checkouts
    std::unique_ptr<BoundedQueue<Request>> queue;  // null in inline mode
    obs::Gauge* queue_depth = nullptr;  ///< server.queue.depth.w{i}
    std::thread thread;
  };

  size_t WorkerIndexFor(uint64_t client_id) const;
  Status SubmitRequest(Request request);
  void Serve(Worker& worker, Request& request);
  void ServeTable(Worker& worker, const VehicleState& state, size_t k,
                  uint64_t client_id, uint64_t client_seq,
                  const WorldRevisions* revisions);
  void WorkerLoop(Worker& worker);
  void FinishOne();

  Environment* env_;
  int threads_;
  OfferingServerOptions options_;

  // Declared before the EIS and the workers so it is destroyed after them:
  // everything below records into registry-owned instruments until the
  // worker threads have joined.
  obs::MetricsRegistry metrics_;

  std::unique_ptr<InformationServer> shared_eis_;
  /// Downcast view of shared_eis_ when resilient_eis is on; null otherwise.
  resilience::ResilientInformationServer* resilient_eis_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> shutdown_{false};

  // Request accounting lives on the registry (sharded counters); these are
  // resolved handles, set once in the constructor. Stats() reads them back.
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* served_ = nullptr;
  obs::Counter* malformed_ = nullptr;
  obs::Counter* cache_adaptations_ = nullptr;
  obs::Counter* degraded_tables_ = nullptr;    ///< server.requests.degraded
  obs::Gauge* queue_depth_total_ = nullptr;    ///< server.queue.depth
  obs::Histogram* request_latency_ = nullptr;  ///< server.request_latency_ns

  // Drain(): waits until in-flight (accepted - served) reaches zero.
  std::atomic<uint64_t> in_flight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SERVER_OFFERING_SERVER_H_
