#include "server/client_store.h"

#include <algorithm>
#include <utility>

namespace ecocharge {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ClientStore::ClientStore(size_t num_shards)
    : shards_(RoundUpPow2(std::max<size_t>(1, num_shards))) {}

void ClientStore::AdvancePastAbandoned(Record* record) {
  while (!record->abandoned.empty() &&
         record->abandoned.front() == record->next_to_serve) {
    record->abandoned.erase(record->abandoned.begin());
    ++record->next_to_serve;
  }
}

uint64_t ClientStore::Enqueue(uint64_t client_id, uint32_t shard_id,
                              SimTime now, bool* handoff) {
  Shard& shard = ShardFor(client_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  Record& record = shard.records[client_id];
  bool crossed = record.shard != kNoShard && record.shard != shard_id;
  if (crossed) {
    handoffs_.fetch_add(1, std::memory_order_relaxed);
    if (handoffs_mirror_) handoffs_mirror_->Add();
  }
  if (handoff) *handoff = crossed;
  record.shard = shard_id;
  record.last_seen = now;
  return record.next_ticket++;
}

void ClientStore::CheckOut(uint64_t client_id, uint64_t seq,
                           DynamicCacheState* into) {
  Shard& shard = ShardFor(client_id);
  std::unique_lock<std::mutex> lock(shard.mu);
  Record& record = shard.records[client_id];
  if (record.next_to_serve != seq || record.leased) {
    waits_.fetch_add(1, std::memory_order_relaxed);
    if (waits_mirror_) waits_mirror_->Add();
    shard.cv.wait(lock, [&] {
      return record.next_to_serve == seq && !record.leased;
    });
  }
  record.leased = true;
  std::swap(record.cache, *into);
  checkouts_.fetch_add(1, std::memory_order_relaxed);
}

void ClientStore::CheckIn(uint64_t client_id, uint64_t seq,
                          DynamicCacheState* from, SimTime now) {
  Shard& shard = ShardFor(client_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  Record& record = shard.records[client_id];
  std::swap(record.cache, *from);
  record.leased = false;
  record.last_seen = std::max(record.last_seen, now);
  record.next_to_serve = seq + 1;
  AdvancePastAbandoned(&record);
  shard.cv.notify_all();
}

void ClientStore::Abandon(uint64_t client_id, uint64_t seq) {
  Shard& shard = ShardFor(client_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  Record& record = shard.records[client_id];
  abandoned_.fetch_add(1, std::memory_order_relaxed);
  if (record.next_to_serve == seq && !record.leased) {
    ++record.next_to_serve;
    AdvancePastAbandoned(&record);
    shard.cv.notify_all();
    return;
  }
  record.abandoned.insert(
      std::upper_bound(record.abandoned.begin(), record.abandoned.end(), seq),
      seq);
}

void ClientStore::EvictIdle(SimTime now, double ttl_s) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.records.begin(); it != shard.records.end();) {
      const Record& r = it->second;
      bool idle = now - r.last_seen > ttl_s;
      bool quiescent = !r.leased && r.next_to_serve == r.next_ticket;
      if (idle && quiescent) {
        it = shard.records.erase(it);
      } else {
        ++it;
      }
    }
  }
}

ClientStoreStats ClientStore::Stats() const {
  ClientStoreStats stats;
  stats.checkouts = checkouts_.load(std::memory_order_relaxed);
  stats.handoffs = handoffs_.load(std::memory_order_relaxed);
  stats.waits = waits_.load(std::memory_order_relaxed);
  stats.abandoned = abandoned_.load(std::memory_order_relaxed);
  return stats;
}

size_t ClientStore::active_clients() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.records.size();
  }
  return total;
}

void ClientStore::AttachMetrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    handoffs_mirror_ = nullptr;
    waits_mirror_ = nullptr;
    return;
  }
  handoffs_mirror_ = registry->GetCounter("fleet.clients.handoffs", "trips");
  waits_mirror_ = registry->GetCounter("fleet.clients.handoff_waits",
                                       "requests");
}

}  // namespace ecocharge
