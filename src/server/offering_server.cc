#include "server/offering_server.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "ch/ch_customize.h"
#include "core/protocol.h"

namespace ecocharge {

OfferingServer::OfferingServer(Environment* env, const ScoreWeights& weights,
                               const EcoChargeOptions& eco_options,
                               const OfferingServerOptions& options)
    : env_(env), threads_(std::max(0, options.threads)), options_(options) {
  EisOptions eis_options;
  eis_options.cache_shards = options_.eis_cache_shards;
  if (options_.resilient_eis) {
    auto resilient = std::make_unique<resilience::ResilientInformationServer>(
        env_->energy.get(), env_->availability.get(), env_->congestion.get(),
        eis_options, options_.resilience);
    resilient_eis_ = resilient.get();
    shared_eis_ = std::move(resilient);
  } else {
    shared_eis_ = std::make_unique<InformationServer>(
        env_->energy.get(), env_->availability.get(), env_->congestion.get(),
        eis_options);
  }

  // All instrument registration happens here, before any worker thread
  // exists: the hot path only ever touches pre-resolved handles.
  accepted_ = metrics_.GetCounter("server.requests.accepted", "requests");
  rejected_ = metrics_.GetCounter("server.requests.rejected", "requests");
  served_ = metrics_.GetCounter("server.requests.served", "requests");
  malformed_ = metrics_.GetCounter("server.requests.malformed", "requests");
  cache_adaptations_ =
      metrics_.GetCounter("server.requests.cache_adaptations", "tables");
  degraded_tables_ =
      metrics_.GetCounter("server.requests.degraded", "tables");
  queue_depth_total_ = metrics_.GetGauge("server.queue.depth", "requests");
  request_latency_ =
      metrics_.GetHistogram("server.request_latency_ns", "ns");
  shared_eis_->AttachMetrics(&metrics_);
  if (env_->ch_cache != nullptr) {
    // The process-shared plane cache serves every worker; surface its
    // hit/miss/build counters on this server's registry (statsz) too.
    env_->ch_cache->AttachMetrics(&metrics_);
  }

  size_t num_workers = threads_ == 0 ? 1 : static_cast<size_t>(threads_);
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    // A full per-worker stack sharing only the synchronized EIS: every
    // estimator output is a pure function of (seed, query), so per-worker
    // instances are interchangeable with the environment's own estimator.
    worker->estimator = std::make_unique<EcEstimator>(
        env_->dataset.network, &env_->chargers, env_->energy.get(),
        env_->availability.get(), env_->congestion.get(),
        env_->estimator->options(), shared_eis_.get());
    worker->service = std::make_unique<OfferingService>(
        worker->estimator.get(), env_->charger_index.get(), weights,
        eco_options, options_.client_ttl_s);
    // Pre-size the batched-refinement scratch to the configured refine
    // limit so no worker allocates in the refinement phase, even on its
    // very first request.
    worker->service->ReserveBatchScratch(eco_options.refine_limit);
    // Likewise the SoA candidate lanes of the vectorized filter/score
    // phase: the fleet size bounds any query's candidate volume, so the
    // very first request already streams through pre-grown lanes.
    worker->service->ReserveScoreLanes(env_->chargers.size());
    worker->estimator->AttachMetrics(&metrics_);
    worker->service->AttachMetrics(&metrics_);
    worker->queue_depth = metrics_.GetGauge(
        "server.queue.depth.w" + std::to_string(i), "requests");
    workers_.push_back(std::move(worker));
  }
  if (threads_ > 0) {
    for (auto& worker : workers_) {
      worker->queue =
          std::make_unique<BoundedQueue<Request>>(options_.queue_depth);
      worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(*w); });
    }
  }
}

OfferingServer::~OfferingServer() { Shutdown(); }

size_t OfferingServer::WorkerIndexFor(uint64_t client_id) const {
  // Stable client -> worker routing: a client's requests are always served
  // by the same worker in FIFO order (the determinism and cache-affinity
  // invariant). Mix the id so sequential vehicle ids spread across workers.
  uint64_t h = client_id * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 32;
  return static_cast<size_t>(h % workers_.size());
}

Status OfferingServer::Submit(uint64_t client_id, const VehicleState& state,
                              size_t k, TableCallback on_table,
                              uint64_t client_seq) {
  Request request;
  request.client_id = client_id;
  request.state = state;
  request.k = k;
  request.on_table = std::move(on_table);
  request.client_seq = client_seq;
  return SubmitRequest(std::move(request));
}

Status OfferingServer::SubmitWire(uint64_t client_id, std::string wire,
                                  ReplyCallback on_reply,
                                  uint64_t client_seq) {
  Request request;
  request.client_id = client_id;
  request.is_wire = true;
  request.wire = std::move(wire);
  request.on_reply = std::move(on_reply);
  request.client_seq = client_seq;
  return SubmitRequest(std::move(request));
}

Status OfferingServer::SubmitRequest(Request request) {
  request.submitted_at = std::chrono::steady_clock::now();
  if (shutdown_.load(std::memory_order_acquire)) {
    rejected_->Add();
    return Status::FailedPrecondition("offering server is shut down");
  }
  Worker& worker = *workers_[WorkerIndexFor(request.client_id)];
  if (threads_ == 0) {
    accepted_->Add();
    Serve(worker, request);
    return Status::OK();
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (!worker.queue->TryPush(std::move(request))) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    rejected_->Add();
    return Status::Unavailable("worker queue full");
  }
  accepted_->Add();
  queue_depth_total_->Add(1);
  worker.queue_depth->Add(1);
  return Status::OK();
}

void OfferingServer::ServeTable(Worker& worker, const VehicleState& state,
                                size_t k, uint64_t client_id,
                                uint64_t client_seq,
                                const WorldRevisions* revisions) {
  if (options_.corridor != nullptr) {
    // Corridor mode: serve the canonical corridor table — the paper's
    // Dynamic Caching generalized across users. The stored value is a
    // pure function of (key, revisions), so a concurrent duplicate miss
    // regenerates the identical bytes and insertion order cannot matter.
    WorldRevisions zero;
    const WorldRevisions& revs = revisions ? *revisions : zero;
    uint64_t key = options_.corridor->KeyFor(state, k, revs);
    if (!options_.corridor->GetInto(key, state.time, &worker.table)) {
      VehicleState anchor = options_.corridor->CanonicalState(state);
      worker.service->RankFresh(anchor, k, &worker.table);
      options_.corridor->Put(key, worker.table, state.time);
      if (options_.corridor->options().prewarm_buckets > 0) {
        // Prewarm the corridor ahead of this vehicle. First price the ETA
        // window's customization planes in one profile pass (EtaWindow runs
        // a ChProfileQuery over the window's buckets, sourcing every plane
        // through the shared cache), so the per-bucket ranks below hit
        // already-priced planes instead of each re-customizing; then rank
        // each future bucket's canonical anchor into the prewarm scratch.
        const size_t window =
            options_.corridor->options().prewarm_buckets + 1;
        if (!worker.table.entries.empty()) {
          const ChargerId top = worker.table.entries.front().charger_id;
          if (top < env_->chargers.size()) {
            std::vector<double> etas;
            worker.estimator->derouting_service().EtaWindow(
                worker.estimator->MakeDeroutingQuery(anchor),
                env_->chargers[top], window, &etas);
          }
        }
        options_.corridor->Prewarm(
            state, k, revs, state.time,
            [&worker](const VehicleState& bucket_anchor, size_t bucket_k,
                      OfferingTable* out) {
              worker.service->RankFresh(bucket_anchor, bucket_k, out);
              return true;
            },
            &worker.prewarm_table);
      }
    }
    return;
  }
  if (options_.client_store != nullptr) {
    // Fleet handoff mode: the vehicle's Dynamic Cache state lives in the
    // central store and is leased around the rank, so it follows the
    // vehicle across shards; the ticket wait preserves per-client FIFO
    // even when the previous request is still draining on another shard.
    options_.client_store->CheckOut(client_id, client_seq, &worker.lease);
    worker.service->RankWithCache(state, k, &worker.lease, &worker.table);
    options_.client_store->CheckIn(client_id, client_seq, &worker.lease,
                                   state.time);
    return;
  }
  // worker.table is the worker's long-lived reply buffer (like the
  // QueryContext, it reaches its high-water capacity and stays there).
  worker.service->RankInto(client_id, state, k, &worker.table);
}

void OfferingServer::Serve(Worker& worker, Request& request) {
  if (options_.simulated_io_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.simulated_io_ms));
  }
  // The request's virtual deadline budget: every resilient EIS fetch under
  // this scope charges injected latency and retry backoff against it (one
  // worker serves one request at a time, so a thread-local scope is exact).
  std::optional<resilience::ScopedRequestDeadline> deadline;
  if (options_.resilient_eis && options_.request_deadline_ms > 0.0) {
    deadline.emplace(options_.request_deadline_ms);
  }
  // Pin the world version for the whole request: two atomic stores, no
  // mutex, no allocation. The pinned revisions re-key the EIS caches (via
  // the thread-local scope) so a concurrent refresh publish becomes
  // visible only at the next request boundary — never mid-rank.
  std::optional<WorldEpochs::ReaderPin> pin;
  std::optional<ScopedWorldRevisions> world;
  const WorldRevisions* revisions = nullptr;
  if (options_.epochs != nullptr) {
    pin.emplace(
        options_.epochs->Pin(options_.epoch_reader_base + worker.index));
    revisions = &pin->snapshot().revisions;
    world.emplace(*revisions);
  }
  bool fleet_mode =
      options_.corridor != nullptr || options_.client_store != nullptr;
  if (request.is_wire && !fleet_mode) {
    Result<std::string> reply =
        worker.service->Handle(request.client_id, request.wire);
    if (!reply.ok()) {
      malformed_->Add();
    } else {
      // The encoded reply hides the table's flags; read them off the
      // service's reply buffer so wire serving accounts like table serving.
      if (worker.service->reply_table().adapted_from_cache) {
        cache_adaptations_->Add();
      }
      if (worker.service->reply_table().degraded) degraded_tables_->Add();
    }
    if (request.on_reply) request.on_reply(reply);
  } else if (request.is_wire) {
    // Fleet wire path: decode here so the corridor / client-store table
    // core below serves both forms identically.
    Result<OfferingRequest> decoded = DecodeOfferingRequest(request.wire);
    if (!decoded.ok()) {
      malformed_->Add();
      if (request.on_reply) request.on_reply(decoded.status());
    } else {
      ServeTable(worker, decoded.value().state, decoded.value().k,
                 request.client_id, request.client_seq, revisions);
      if (worker.table.adapted_from_cache) cache_adaptations_->Add();
      if (worker.table.degraded) degraded_tables_->Add();
      if (request.on_reply) {
        request.on_reply(EncodeOfferingTable(worker.table));
      }
    }
  } else {
    ServeTable(worker, request.state, request.k, request.client_id,
               request.client_seq, revisions);
    if (worker.table.adapted_from_cache) cache_adaptations_->Add();
    if (worker.table.degraded) degraded_tables_->Add();
    if (request.on_table) request.on_table(worker.table);
  }
  served_->Add();
  auto elapsed = std::chrono::steady_clock::now() - request.submitted_at;
  uint64_t latency_ns = static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
             .count()));
  request_latency_->Record(latency_ns);
  if (options_.extra_latency != nullptr) {
    options_.extra_latency->Record(latency_ns);
  }
}

void OfferingServer::FinishOne() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void OfferingServer::WorkerLoop(Worker& worker) {
  while (std::optional<Request> request = worker.queue->Pop()) {
    queue_depth_total_->Sub(1);
    worker.queue_depth->Sub(1);
    Serve(worker, *request);
    FinishOne();
  }
}

void OfferingServer::Drain() {
  if (threads_ == 0) return;  // inline mode serves within Submit
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void OfferingServer::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  if (threads_ == 0) return;
  // Closing lets workers drain what was accepted, then exit their loops.
  for (auto& worker : workers_) worker->queue->Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

OfferingServerStats OfferingServer::Stats() const {
  OfferingServerStats stats;
  stats.accepted = accepted_->Value();
  stats.rejected = rejected_->Value();
  stats.served = served_->Value();
  stats.malformed = malformed_->Value();
  stats.cache_adaptations = cache_adaptations_->Value();
  stats.degraded_tables = degraded_tables_->Value();
  return stats;
}

}  // namespace ecocharge
