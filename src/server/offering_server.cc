#include "server/offering_server.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "core/protocol.h"

namespace ecocharge {

OfferingServer::OfferingServer(Environment* env, const ScoreWeights& weights,
                               const EcoChargeOptions& eco_options,
                               const OfferingServerOptions& options)
    : env_(env), threads_(std::max(0, options.threads)), options_(options) {
  EisOptions eis_options;
  eis_options.cache_shards = options_.eis_cache_shards;
  if (options_.resilient_eis) {
    auto resilient = std::make_unique<resilience::ResilientInformationServer>(
        env_->energy.get(), env_->availability.get(), env_->congestion.get(),
        eis_options, options_.resilience);
    resilient_eis_ = resilient.get();
    shared_eis_ = std::move(resilient);
  } else {
    shared_eis_ = std::make_unique<InformationServer>(
        env_->energy.get(), env_->availability.get(), env_->congestion.get(),
        eis_options);
  }

  // All instrument registration happens here, before any worker thread
  // exists: the hot path only ever touches pre-resolved handles.
  accepted_ = metrics_.GetCounter("server.requests.accepted", "requests");
  rejected_ = metrics_.GetCounter("server.requests.rejected", "requests");
  served_ = metrics_.GetCounter("server.requests.served", "requests");
  malformed_ = metrics_.GetCounter("server.requests.malformed", "requests");
  cache_adaptations_ =
      metrics_.GetCounter("server.requests.cache_adaptations", "tables");
  degraded_tables_ =
      metrics_.GetCounter("server.requests.degraded", "tables");
  queue_depth_total_ = metrics_.GetGauge("server.queue.depth", "requests");
  request_latency_ =
      metrics_.GetHistogram("server.request_latency_ns", "ns");
  shared_eis_->AttachMetrics(&metrics_);

  size_t num_workers = threads_ == 0 ? 1 : static_cast<size_t>(threads_);
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    // A full per-worker stack sharing only the synchronized EIS: every
    // estimator output is a pure function of (seed, query), so per-worker
    // instances are interchangeable with the environment's own estimator.
    worker->estimator = std::make_unique<EcEstimator>(
        env_->dataset.network, &env_->chargers, env_->energy.get(),
        env_->availability.get(), env_->congestion.get(),
        env_->estimator->options(), shared_eis_.get());
    worker->service = std::make_unique<OfferingService>(
        worker->estimator.get(), env_->charger_index.get(), weights,
        eco_options, options_.client_ttl_s);
    // Pre-size the batched-refinement scratch to the configured refine
    // limit so no worker allocates in the refinement phase, even on its
    // very first request.
    worker->service->ReserveBatchScratch(eco_options.refine_limit);
    // Likewise the SoA candidate lanes of the vectorized filter/score
    // phase: the fleet size bounds any query's candidate volume, so the
    // very first request already streams through pre-grown lanes.
    worker->service->ReserveScoreLanes(env_->chargers.size());
    worker->estimator->AttachMetrics(&metrics_);
    worker->service->AttachMetrics(&metrics_);
    worker->queue_depth = metrics_.GetGauge(
        "server.queue.depth.w" + std::to_string(i), "requests");
    workers_.push_back(std::move(worker));
  }
  if (threads_ > 0) {
    for (auto& worker : workers_) {
      worker->queue =
          std::make_unique<BoundedQueue<Request>>(options_.queue_depth);
      worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(*w); });
    }
  }
}

OfferingServer::~OfferingServer() { Shutdown(); }

size_t OfferingServer::WorkerIndexFor(uint64_t client_id) const {
  // Stable client -> worker routing: a client's requests are always served
  // by the same worker in FIFO order (the determinism and cache-affinity
  // invariant). Mix the id so sequential vehicle ids spread across workers.
  uint64_t h = client_id * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 32;
  return static_cast<size_t>(h % workers_.size());
}

Status OfferingServer::Submit(uint64_t client_id, const VehicleState& state,
                              size_t k, TableCallback on_table) {
  Request request;
  request.client_id = client_id;
  request.state = state;
  request.k = k;
  request.on_table = std::move(on_table);
  return SubmitRequest(std::move(request));
}

Status OfferingServer::SubmitWire(uint64_t client_id, std::string wire,
                                  ReplyCallback on_reply) {
  Request request;
  request.client_id = client_id;
  request.is_wire = true;
  request.wire = std::move(wire);
  request.on_reply = std::move(on_reply);
  return SubmitRequest(std::move(request));
}

Status OfferingServer::SubmitRequest(Request request) {
  request.submitted_at = std::chrono::steady_clock::now();
  if (shutdown_.load(std::memory_order_acquire)) {
    rejected_->Add();
    return Status::FailedPrecondition("offering server is shut down");
  }
  Worker& worker = *workers_[WorkerIndexFor(request.client_id)];
  if (threads_ == 0) {
    accepted_->Add();
    Serve(worker, request);
    return Status::OK();
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (!worker.queue->TryPush(std::move(request))) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    rejected_->Add();
    return Status::Unavailable("worker queue full");
  }
  accepted_->Add();
  queue_depth_total_->Add(1);
  worker.queue_depth->Add(1);
  return Status::OK();
}

void OfferingServer::Serve(Worker& worker, Request& request) {
  if (options_.simulated_io_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        options_.simulated_io_ms));
  }
  // The request's virtual deadline budget: every resilient EIS fetch under
  // this scope charges injected latency and retry backoff against it (one
  // worker serves one request at a time, so a thread-local scope is exact).
  std::optional<resilience::ScopedRequestDeadline> deadline;
  if (options_.resilient_eis && options_.request_deadline_ms > 0.0) {
    deadline.emplace(options_.request_deadline_ms);
  }
  if (request.is_wire) {
    Result<std::string> reply =
        worker.service->Handle(request.client_id, request.wire);
    if (!reply.ok()) {
      malformed_->Add();
    } else {
      // The encoded reply hides the table's flags; read them off the
      // service's reply buffer so wire serving accounts like table serving.
      if (worker.service->reply_table().adapted_from_cache) {
        cache_adaptations_->Add();
      }
      if (worker.service->reply_table().degraded) degraded_tables_->Add();
    }
    if (request.on_reply) request.on_reply(reply);
  } else {
    // worker.table is the worker's long-lived reply buffer (like the
    // QueryContext, it reaches its high-water capacity and stays there).
    worker.service->RankInto(request.client_id, request.state, request.k,
                             &worker.table);
    if (worker.table.adapted_from_cache) cache_adaptations_->Add();
    if (worker.table.degraded) degraded_tables_->Add();
    if (request.on_table) request.on_table(worker.table);
  }
  served_->Add();
  auto elapsed = std::chrono::steady_clock::now() - request.submitted_at;
  request_latency_->Record(static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
             .count())));
}

void OfferingServer::FinishOne() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void OfferingServer::WorkerLoop(Worker& worker) {
  while (std::optional<Request> request = worker.queue->Pop()) {
    queue_depth_total_->Sub(1);
    worker.queue_depth->Sub(1);
    Serve(worker, *request);
    FinishOne();
  }
}

void OfferingServer::Drain() {
  if (threads_ == 0) return;  // inline mode serves within Submit
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

void OfferingServer::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  if (threads_ == 0) return;
  // Closing lets workers drain what was accepted, then exit their loops.
  for (auto& worker : workers_) worker->queue->Close();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

OfferingServerStats OfferingServer::Stats() const {
  OfferingServerStats stats;
  stats.accepted = accepted_->Value();
  stats.rejected = rejected_->Value();
  stats.served = served_->Value();
  stats.malformed = malformed_->Value();
  stats.cache_adaptations = cache_adaptations_->Value();
  stats.degraded_tables = degraded_tables_->Value();
  return stats;
}

}  // namespace ecocharge
