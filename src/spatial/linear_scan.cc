#include "spatial/linear_scan.h"

#include <algorithm>

namespace ecocharge {

void LinearScanIndex::Build(std::vector<Point> points) {
  points_ = std::move(points);
}

void LinearScanIndex::KnnInto(const Point& query, size_t k,
                              IndexScratch* scratch,
                              std::vector<Neighbor>* out) const {
  out->clear();
  if (points_.empty() || k == 0) return;
  auto& best = scratch->best;
  best.clear();
  for (size_t i = 0; i < points_.size(); ++i) {
    spatial_internal::OfferNeighbor(
        &best, k, {static_cast<uint32_t>(i), Distance(points_[i], query)});
  }
  spatial_internal::FinishKnn(best, out);
}

void LinearScanIndex::RangeSearchInto(const Point& query, double radius,
                                      IndexScratch* /*scratch*/,
                                      std::vector<Neighbor>* out) const {
  out->clear();
  for (size_t i = 0; i < points_.size(); ++i) {
    double d = Distance(points_[i], query);
    if (d <= radius) out->push_back({static_cast<uint32_t>(i), d});
  }
  std::sort(out->begin(), out->end(), spatial_internal::NeighborLess);
}

void LinearScanIndex::BoxSearchInto(const BoundingBox& box,
                                    IndexScratch* /*scratch*/,
                                    std::vector<uint32_t>* out) const {
  out->clear();
  for (size_t i = 0; i < points_.size(); ++i) {
    if (box.Contains(points_[i])) out->push_back(static_cast<uint32_t>(i));
  }
}

}  // namespace ecocharge
