#include "spatial/linear_scan.h"

#include <algorithm>

namespace ecocharge {

void LinearScanIndex::Build(std::vector<Point> points) {
  points_ = std::move(points);
}

std::vector<Neighbor> LinearScanIndex::Knn(const Point& query,
                                           size_t k) const {
  std::vector<Neighbor> all;
  all.reserve(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    all.push_back({static_cast<uint32_t>(i), Distance(points_[i], query)});
  }
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    spatial_internal::NeighborLess);
  all.resize(take);
  return all;
}

std::vector<Neighbor> LinearScanIndex::RangeSearch(const Point& query,
                                                   double radius) const {
  std::vector<Neighbor> out;
  for (size_t i = 0; i < points_.size(); ++i) {
    double d = Distance(points_[i], query);
    if (d <= radius) out.push_back({static_cast<uint32_t>(i), d});
  }
  std::sort(out.begin(), out.end(), spatial_internal::NeighborLess);
  return out;
}

std::vector<uint32_t> LinearScanIndex::BoxSearch(
    const BoundingBox& box) const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (box.Contains(points_[i])) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

}  // namespace ecocharge
