#ifndef ECOCHARGE_SPATIAL_RTREE_H_
#define ECOCHARGE_SPATIAL_RTREE_H_

#include <cstdint>
#include <vector>

#include "spatial/spatial_index.h"

namespace ecocharge {

/// \brief Static R-tree bulk-loaded with Sort-Tile-Recursive packing.
///
/// Rounds out the index family next to the quadtree (the paper's baseline),
/// kd-tree, and grid: STR produces near-optimally packed leaves for static
/// point sets like a charger directory, trading build-time sorting for
/// tight bounding boxes and shallow trees.
class RTree : public SpatialIndex {
 public:
  /// \param leaf_capacity entries per leaf (and fanout of inner nodes)
  explicit RTree(size_t leaf_capacity = 16);

  void Build(std::vector<Point> points) override;
  size_t size() const override { return points_.size(); }
  void KnnInto(const Point& query, size_t k, IndexScratch* scratch,
               std::vector<Neighbor>* out) const override;
  void RangeSearchInto(const Point& query, double radius,
                       IndexScratch* scratch,
                       std::vector<Neighbor>* out) const override;
  void BoxSearchInto(const BoundingBox& box, IndexScratch* scratch,
                     std::vector<uint32_t>* out) const override;

  size_t num_tree_nodes() const { return nodes_.size(); }
  int height() const { return height_; }

 private:
  struct Node {
    BoundingBox bounds;
    // Leaves hold point ids; inner nodes hold child node indices.
    std::vector<uint32_t> entries;
    bool is_leaf = true;
  };

  /// Packs one level of nodes (returns the indices of the parent level).
  std::vector<uint32_t> PackLevel(const std::vector<uint32_t>& child_nodes);

  size_t leaf_capacity_;
  std::vector<Point> points_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  int height_ = 0;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_RTREE_H_
