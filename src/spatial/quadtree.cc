#include "spatial/quadtree.h"

#include <algorithm>

namespace ecocharge {

QuadTree::QuadTree(size_t bucket_capacity, int max_depth)
    : bucket_capacity_(std::max<size_t>(1, bucket_capacity)),
      max_depth_(max_depth) {}

void QuadTree::Build(std::vector<Point> points) {
  points_ = std::move(points);
  nodes_.clear();
  if (points_.empty()) return;

  BoundingBox bounds;
  for (const Point& p : points_) bounds.Extend(p);
  // Expand slightly so boundary points are strictly inside and a degenerate
  // (all-identical) cloud still yields a valid box.
  double margin = std::max(1.0, std::max(bounds.Width(), bounds.Height())) *
                  1e-9;
  bounds = bounds.Expanded(margin);

  Node root;
  root.bounds = bounds;
  nodes_.push_back(std::move(root));
  for (uint32_t id = 0; id < points_.size(); ++id) Insert(0, id);
}

int QuadTree::QuadrantOf(const Node& node, const Point& p) const {
  Point c = node.bounds.Center();
  int q = 0;
  if (p.x >= c.x) q |= 1;
  if (p.y >= c.y) q |= 2;
  return q;
}

void QuadTree::Split(uint32_t node_index) {
  // Note: creates the four children and redistributes items; the vector of
  // nodes may reallocate, so re-fetch the node after each push_back.
  Point c = nodes_[node_index].bounds.Center();
  BoundingBox b = nodes_[node_index].bounds;
  int child_depth = nodes_[node_index].depth + 1;
  BoundingBox quads[4] = {
      {{b.min.x, b.min.y}, {c.x, c.y}},
      {{c.x, b.min.y}, {b.max.x, c.y}},
      {{b.min.x, c.y}, {c.x, b.max.y}},
      {{c.x, c.y}, {b.max.x, b.max.y}},
  };
  uint32_t first_child = static_cast<uint32_t>(nodes_.size());
  for (int q = 0; q < 4; ++q) {
    Node child;
    child.bounds = quads[q];
    child.depth = child_depth;
    nodes_.push_back(std::move(child));
  }
  Node& node = nodes_[node_index];
  for (int q = 0; q < 4; ++q) node.children[q] = first_child + q;
  node.is_leaf = false;
  std::vector<uint32_t> items = std::move(node.items);
  node.items.clear();
  for (uint32_t id : items) {
    int q = QuadrantOf(nodes_[node_index], points_[id]);
    nodes_[nodes_[node_index].children[q]].items.push_back(id);
  }
  // A child may now itself exceed capacity (all items in one quadrant);
  // Insert() handles further splits lazily on the next insertion, so force
  // the invariant here.
  for (int q = 0; q < 4; ++q) {
    uint32_t ci = nodes_[node_index].children[q];
    if (nodes_[ci].items.size() > bucket_capacity_ &&
        nodes_[ci].depth < max_depth_) {
      Split(ci);
    }
  }
}

void QuadTree::Insert(uint32_t node_index, uint32_t point_id) {
  uint32_t current = node_index;
  while (!nodes_[current].is_leaf) {
    int q = QuadrantOf(nodes_[current], points_[point_id]);
    current = nodes_[current].children[q];
  }
  nodes_[current].items.push_back(point_id);
  if (nodes_[current].items.size() > bucket_capacity_ &&
      nodes_[current].depth < max_depth_) {
    Split(current);
  }
}

int QuadTree::depth() const {
  int d = 0;
  for (const Node& n : nodes_) d = std::max(d, n.depth);
  return d;
}

void QuadTree::KnnInto(const Point& query, size_t k, IndexScratch* scratch,
                       std::vector<Neighbor>* out) const {
  using spatial_internal::FrontierGreater;
  out->clear();
  if (nodes_.empty() || k == 0) return;

  // Best-first search: a min-heap over (distance-to-box, node) frontier and
  // a max-heap of the k best points found so far.
  auto& open = scratch->frontier;
  auto& best = scratch->best;
  open.clear();
  best.clear();
  open.push_back({nodes_[0].bounds.DistanceTo(query), 0});

  while (!open.empty()) {
    IndexScratch::FrontierEntry f = open.front();
    std::pop_heap(open.begin(), open.end(), FrontierGreater);
    open.pop_back();
    if (best.size() == k && f.distance > best.front().distance) break;
    const Node& node = nodes_[f.node];
    if (node.is_leaf) {
      for (uint32_t id : node.items) {
        double d = Distance(points_[id], query);
        spatial_internal::OfferNeighbor(&best, k, {id, d});
      }
    } else {
      for (uint32_t child : node.children) {
        double d = nodes_[child].bounds.DistanceTo(query);
        if (best.size() < k || d <= best.front().distance) {
          open.push_back({d, child});
          std::push_heap(open.begin(), open.end(), FrontierGreater);
        }
      }
    }
  }
  spatial_internal::FinishKnn(best, out);
}

void QuadTree::RangeSearchInto(const Point& query, double radius,
                               IndexScratch* scratch,
                               std::vector<Neighbor>* out) const {
  out->clear();
  if (nodes_.empty()) return;
  auto& stack = scratch->stack;
  stack.assign(1, 0);
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (node.bounds.DistanceTo(query) > radius) continue;
    if (node.is_leaf) {
      for (uint32_t id : node.items) {
        double d = Distance(points_[id], query);
        if (d <= radius) out->push_back({id, d});
      }
    } else {
      for (uint32_t child : node.children) stack.push_back(child);
    }
  }
  std::sort(out->begin(), out->end(), spatial_internal::NeighborLess);
}

void QuadTree::BoxSearchInto(const BoundingBox& box, IndexScratch* scratch,
                             std::vector<uint32_t>* out) const {
  out->clear();
  if (nodes_.empty()) return;
  auto& stack = scratch->stack;
  stack.assign(1, 0);
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (!node.bounds.Intersects(box)) continue;
    if (node.is_leaf) {
      for (uint32_t id : node.items) {
        if (box.Contains(points_[id])) out->push_back(id);
      }
    } else {
      for (uint32_t child : node.children) stack.push_back(child);
    }
  }
}

}  // namespace ecocharge
