#include "spatial/quadtree.h"

#include <algorithm>
#include <queue>

namespace ecocharge {

QuadTree::QuadTree(size_t bucket_capacity, int max_depth)
    : bucket_capacity_(std::max<size_t>(1, bucket_capacity)),
      max_depth_(max_depth) {}

void QuadTree::Build(std::vector<Point> points) {
  points_ = std::move(points);
  nodes_.clear();
  if (points_.empty()) return;

  BoundingBox bounds;
  for (const Point& p : points_) bounds.Extend(p);
  // Expand slightly so boundary points are strictly inside and a degenerate
  // (all-identical) cloud still yields a valid box.
  double margin = std::max(1.0, std::max(bounds.Width(), bounds.Height())) *
                  1e-9;
  bounds = bounds.Expanded(margin);

  Node root;
  root.bounds = bounds;
  nodes_.push_back(std::move(root));
  for (uint32_t id = 0; id < points_.size(); ++id) Insert(0, id);
}

int QuadTree::QuadrantOf(const Node& node, const Point& p) const {
  Point c = node.bounds.Center();
  int q = 0;
  if (p.x >= c.x) q |= 1;
  if (p.y >= c.y) q |= 2;
  return q;
}

void QuadTree::Split(uint32_t node_index) {
  // Note: creates the four children and redistributes items; the vector of
  // nodes may reallocate, so re-fetch the node after each push_back.
  Point c = nodes_[node_index].bounds.Center();
  BoundingBox b = nodes_[node_index].bounds;
  int child_depth = nodes_[node_index].depth + 1;
  BoundingBox quads[4] = {
      {{b.min.x, b.min.y}, {c.x, c.y}},
      {{c.x, b.min.y}, {b.max.x, c.y}},
      {{b.min.x, c.y}, {c.x, b.max.y}},
      {{c.x, c.y}, {b.max.x, b.max.y}},
  };
  uint32_t first_child = static_cast<uint32_t>(nodes_.size());
  for (int q = 0; q < 4; ++q) {
    Node child;
    child.bounds = quads[q];
    child.depth = child_depth;
    nodes_.push_back(std::move(child));
  }
  Node& node = nodes_[node_index];
  for (int q = 0; q < 4; ++q) node.children[q] = first_child + q;
  node.is_leaf = false;
  std::vector<uint32_t> items = std::move(node.items);
  node.items.clear();
  for (uint32_t id : items) {
    int q = QuadrantOf(nodes_[node_index], points_[id]);
    nodes_[nodes_[node_index].children[q]].items.push_back(id);
  }
  // A child may now itself exceed capacity (all items in one quadrant);
  // Insert() handles further splits lazily on the next insertion, so force
  // the invariant here.
  for (int q = 0; q < 4; ++q) {
    uint32_t ci = nodes_[node_index].children[q];
    if (nodes_[ci].items.size() > bucket_capacity_ &&
        nodes_[ci].depth < max_depth_) {
      Split(ci);
    }
  }
}

void QuadTree::Insert(uint32_t node_index, uint32_t point_id) {
  uint32_t current = node_index;
  while (!nodes_[current].is_leaf) {
    int q = QuadrantOf(nodes_[current], points_[point_id]);
    current = nodes_[current].children[q];
  }
  nodes_[current].items.push_back(point_id);
  if (nodes_[current].items.size() > bucket_capacity_ &&
      nodes_[current].depth < max_depth_) {
    Split(current);
  }
}

int QuadTree::depth() const {
  int d = 0;
  for (const Node& n : nodes_) d = std::max(d, n.depth);
  return d;
}

std::vector<Neighbor> QuadTree::Knn(const Point& query, size_t k) const {
  std::vector<Neighbor> result;
  if (nodes_.empty() || k == 0) return result;

  // Best-first search: a min-heap over (distance-to-box, node) frontier and
  // a max-heap of the k best points found so far.
  struct Frontier {
    double dist;
    uint32_t node;
    bool operator>(const Frontier& o) const { return dist > o.dist; }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> open;
  open.push({nodes_[0].bounds.DistanceTo(query), 0});

  auto worse = [](const Neighbor& a, const Neighbor& b) {
    return spatial_internal::NeighborLess(a, b);
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(worse)> best(
      worse);

  while (!open.empty()) {
    Frontier f = open.top();
    open.pop();
    if (best.size() == k && f.dist > best.top().distance) break;
    const Node& node = nodes_[f.node];
    if (node.is_leaf) {
      for (uint32_t id : node.items) {
        double d = Distance(points_[id], query);
        Neighbor cand{id, d};
        if (best.size() < k) {
          best.push(cand);
        } else if (worse(cand, best.top())) {
          best.pop();
          best.push(cand);
        }
      }
    } else {
      for (uint32_t child : node.children) {
        double d = nodes_[child].bounds.DistanceTo(query);
        if (best.size() < k || d <= best.top().distance) {
          open.push({d, child});
        }
      }
    }
  }

  result.resize(best.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = best.top();
    best.pop();
  }
  return result;
}

std::vector<Neighbor> QuadTree::RangeSearch(const Point& query,
                                            double radius) const {
  std::vector<Neighbor> out;
  if (nodes_.empty()) return out;
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (node.bounds.DistanceTo(query) > radius) continue;
    if (node.is_leaf) {
      for (uint32_t id : node.items) {
        double d = Distance(points_[id], query);
        if (d <= radius) out.push_back({id, d});
      }
    } else {
      for (uint32_t child : node.children) stack.push_back(child);
    }
  }
  std::sort(out.begin(), out.end(), spatial_internal::NeighborLess);
  return out;
}

std::vector<uint32_t> QuadTree::BoxSearch(const BoundingBox& box) const {
  std::vector<uint32_t> out;
  if (nodes_.empty()) return out;
  std::vector<uint32_t> stack = {0};
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (!node.bounds.Intersects(box)) continue;
    if (node.is_leaf) {
      for (uint32_t id : node.items) {
        if (box.Contains(points_[id])) out.push_back(id);
      }
    } else {
      for (uint32_t child : node.children) stack.push_back(child);
    }
  }
  return out;
}

}  // namespace ecocharge
