#include "spatial/index_factory.h"

#include <cctype>
#include <string>

#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "spatial/linear_scan.h"
#include "spatial/quadtree.h"
#include "spatial/rtree.h"

namespace ecocharge {

std::string_view SpatialIndexKindName(SpatialIndexKind kind) {
  switch (kind) {
    case SpatialIndexKind::kQuadTree:
      return "quadtree";
    case SpatialIndexKind::kRTree:
      return "rtree";
    case SpatialIndexKind::kGrid:
      return "grid";
    case SpatialIndexKind::kKdTree:
      return "kdtree";
    case SpatialIndexKind::kLinear:
      return "linear";
  }
  return "unknown";
}

Result<SpatialIndexKind> ParseSpatialIndexKind(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_') continue;  // accept "kd-tree", "r_tree", ...
    lower.push_back(static_cast<char>(std::tolower(c)));
  }
  for (SpatialIndexKind kind : kAllSpatialIndexKinds) {
    if (lower == SpatialIndexKindName(kind)) return kind;
  }
  return Status::InvalidArgument(
      "unknown spatial index '" + std::string(name) +
      "' (quadtree|rtree|grid|kdtree|linear)");
}

std::unique_ptr<SpatialIndex> MakeSpatialIndex(SpatialIndexKind kind) {
  switch (kind) {
    case SpatialIndexKind::kQuadTree:
      return std::make_unique<QuadTree>();
    case SpatialIndexKind::kRTree:
      return std::make_unique<RTree>();
    case SpatialIndexKind::kGrid:
      return std::make_unique<GridIndex>();
    case SpatialIndexKind::kKdTree:
      return std::make_unique<KdTree>();
    case SpatialIndexKind::kLinear:
      return std::make_unique<LinearScanIndex>();
  }
  return nullptr;
}

}  // namespace ecocharge
