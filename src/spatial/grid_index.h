#ifndef ECOCHARGE_SPATIAL_GRID_INDEX_H_
#define ECOCHARGE_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "spatial/spatial_index.h"

namespace ecocharge {

/// \brief Uniform-grid index, the main-memory structure the CkNN monitoring
/// literature (Mouratidis/Hu/Yu, Section VI-B of the paper) builds on.
///
/// kNN expands rings of cells outward from the query cell until the k-th
/// best distance is covered — the "iterative deepening of a range search"
/// those systems use. Best when points are roughly uniform; the quadtree is
/// preferred for heavily skewed charger layouts.
class GridIndex : public SpatialIndex {
 public:
  /// \param target_points_per_cell controls the automatic cell size:
  ///   cell_size = sqrt(area * target / n) when Build() is called.
  explicit GridIndex(double target_points_per_cell = 4.0);

  void Build(std::vector<Point> points) override;
  size_t size() const override { return points_.size(); }
  void KnnInto(const Point& query, size_t k, IndexScratch* scratch,
               std::vector<Neighbor>* out) const override;
  void RangeSearchInto(const Point& query, double radius,
                       IndexScratch* scratch,
                       std::vector<Neighbor>* out) const override;
  void BoxSearchInto(const BoundingBox& box, IndexScratch* scratch,
                     std::vector<uint32_t>* out) const override;

  double cell_size() const { return cell_size_; }
  size_t num_cells() const { return cells_.size(); }

 private:
  int64_t CellIndex(int cx, int cy) const {
    return static_cast<int64_t>(cy) * nx_ + cx;
  }
  void CellOf(const Point& p, int* cx, int* cy) const;

  double target_points_per_cell_;
  BoundingBox bounds_;
  double cell_size_ = 1.0;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<Point> points_;
  std::vector<std::vector<uint32_t>> cells_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_GRID_INDEX_H_
