#ifndef ECOCHARGE_SPATIAL_KDTREE_H_
#define ECOCHARGE_SPATIAL_KDTREE_H_

#include <cstdint>
#include <vector>

#include "spatial/spatial_index.h"

namespace ecocharge {

/// \brief Static balanced kd-tree built by median splits.
///
/// Included alongside the quadtree so the micro-benchmarks can compare
/// index families; the EcoCharge pipeline itself uses the quadtree (to match
/// the paper's baseline) and the grid (for CkNN monitoring experiments).
class KdTree : public SpatialIndex {
 public:
  KdTree() = default;

  void Build(std::vector<Point> points) override;
  size_t size() const override { return points_.size(); }
  void KnnInto(const Point& query, size_t k, IndexScratch* scratch,
               std::vector<Neighbor>* out) const override;
  void RangeSearchInto(const Point& query, double radius,
                       IndexScratch* scratch,
                       std::vector<Neighbor>* out) const override;
  void BoxSearchInto(const BoundingBox& box, IndexScratch* scratch,
                     std::vector<uint32_t>* out) const override;

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    uint32_t point_id = 0;
    uint32_t left = kNil;
    uint32_t right = kNil;
    uint8_t axis = 0;
  };

  uint32_t BuildRecursive(std::vector<uint32_t>& ids, size_t lo, size_t hi,
                          int depth);

  std::vector<Point> points_;
  std::vector<Node> nodes_;
  uint32_t root_ = kNil;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_KDTREE_H_
