#include "spatial/kdtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace ecocharge {

void KdTree::Build(std::vector<Point> points) {
  points_ = std::move(points);
  nodes_.clear();
  root_ = kNil;
  if (points_.empty()) return;
  nodes_.reserve(points_.size());
  std::vector<uint32_t> ids(points_.size());
  for (uint32_t i = 0; i < points_.size(); ++i) ids[i] = i;
  root_ = BuildRecursive(ids, 0, ids.size(), 0);
}

uint32_t KdTree::BuildRecursive(std::vector<uint32_t>& ids, size_t lo,
                                size_t hi, int depth) {
  if (lo >= hi) return kNil;
  uint8_t axis = static_cast<uint8_t>(depth & 1);
  size_t mid = lo + (hi - lo) / 2;
  std::nth_element(ids.begin() + lo, ids.begin() + mid, ids.begin() + hi,
                   [&](uint32_t a, uint32_t b) {
                     double va = axis == 0 ? points_[a].x : points_[a].y;
                     double vb = axis == 0 ? points_[b].x : points_[b].y;
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  uint32_t node_index = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{ids[mid], kNil, kNil, axis});
  uint32_t left = BuildRecursive(ids, lo, mid, depth + 1);
  uint32_t right = BuildRecursive(ids, mid + 1, hi, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

std::vector<Neighbor> KdTree::Knn(const Point& query, size_t k) const {
  std::vector<Neighbor> result;
  if (root_ == kNil || k == 0) return result;

  auto worse = [](const Neighbor& a, const Neighbor& b) {
    return spatial_internal::NeighborLess(a, b);
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, decltype(worse)> best(
      worse);

  // Iterative DFS with pruning on the splitting-plane distance.
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    if (ni == kNil) continue;
    const Node& node = nodes_[ni];
    const Point& p = points_[node.point_id];
    Neighbor cand{node.point_id, Distance(p, query)};
    if (best.size() < k) {
      best.push(cand);
    } else if (worse(cand, best.top())) {
      best.pop();
      best.push(cand);
    }
    double qv = node.axis == 0 ? query.x : query.y;
    double pv = node.axis == 0 ? p.x : p.y;
    uint32_t near = qv < pv ? node.left : node.right;
    uint32_t far = qv < pv ? node.right : node.left;
    double plane = std::abs(qv - pv);
    if (far != kNil && (best.size() < k || plane <= best.top().distance)) {
      stack.push_back(far);
    }
    if (near != kNil) stack.push_back(near);
  }

  result.resize(best.size());
  for (size_t i = result.size(); i-- > 0;) {
    result[i] = best.top();
    best.pop();
  }
  return result;
}

std::vector<Neighbor> KdTree::RangeSearch(const Point& query,
                                          double radius) const {
  std::vector<Neighbor> out;
  if (root_ == kNil) return out;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    if (ni == kNil) continue;
    const Node& node = nodes_[ni];
    const Point& p = points_[node.point_id];
    double d = Distance(p, query);
    if (d <= radius) out.push_back({node.point_id, d});
    double qv = node.axis == 0 ? query.x : query.y;
    double pv = node.axis == 0 ? p.x : p.y;
    if (qv - radius <= pv && node.left != kNil) stack.push_back(node.left);
    if (qv + radius >= pv && node.right != kNil) stack.push_back(node.right);
  }
  std::sort(out.begin(), out.end(), spatial_internal::NeighborLess);
  return out;
}

std::vector<uint32_t> KdTree::BoxSearch(const BoundingBox& box) const {
  std::vector<uint32_t> out;
  if (root_ == kNil) return out;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    if (ni == kNil) continue;
    const Node& node = nodes_[ni];
    const Point& p = points_[node.point_id];
    if (box.Contains(p)) out.push_back(node.point_id);
    double pv = node.axis == 0 ? p.x : p.y;
    double lo = node.axis == 0 ? box.min.x : box.min.y;
    double hi = node.axis == 0 ? box.max.x : box.max.y;
    if (lo <= pv && node.left != kNil) stack.push_back(node.left);
    if (hi >= pv && node.right != kNil) stack.push_back(node.right);
  }
  return out;
}

}  // namespace ecocharge
