#include "spatial/kdtree.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

void KdTree::Build(std::vector<Point> points) {
  points_ = std::move(points);
  nodes_.clear();
  root_ = kNil;
  if (points_.empty()) return;
  nodes_.reserve(points_.size());
  std::vector<uint32_t> ids(points_.size());
  for (uint32_t i = 0; i < points_.size(); ++i) ids[i] = i;
  root_ = BuildRecursive(ids, 0, ids.size(), 0);
}

uint32_t KdTree::BuildRecursive(std::vector<uint32_t>& ids, size_t lo,
                                size_t hi, int depth) {
  if (lo >= hi) return kNil;
  uint8_t axis = static_cast<uint8_t>(depth & 1);
  size_t mid = lo + (hi - lo) / 2;
  std::nth_element(ids.begin() + lo, ids.begin() + mid, ids.begin() + hi,
                   [&](uint32_t a, uint32_t b) {
                     double va = axis == 0 ? points_[a].x : points_[a].y;
                     double vb = axis == 0 ? points_[b].x : points_[b].y;
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  uint32_t node_index = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{ids[mid], kNil, kNil, axis});
  uint32_t left = BuildRecursive(ids, lo, mid, depth + 1);
  uint32_t right = BuildRecursive(ids, mid + 1, hi, depth + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

void KdTree::KnnInto(const Point& query, size_t k, IndexScratch* scratch,
                     std::vector<Neighbor>* out) const {
  out->clear();
  if (root_ == kNil || k == 0) return;

  auto& best = scratch->best;
  best.clear();

  // Iterative DFS with pruning on the splitting-plane distance.
  auto& stack = scratch->stack;
  stack.assign(1, root_);
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    if (ni == kNil) continue;
    const Node& node = nodes_[ni];
    const Point& p = points_[node.point_id];
    spatial_internal::OfferNeighbor(&best, k,
                                    {node.point_id, Distance(p, query)});
    double qv = node.axis == 0 ? query.x : query.y;
    double pv = node.axis == 0 ? p.x : p.y;
    uint32_t near = qv < pv ? node.left : node.right;
    uint32_t far = qv < pv ? node.right : node.left;
    double plane = std::abs(qv - pv);
    if (far != kNil && (best.size() < k || plane <= best.front().distance)) {
      stack.push_back(far);
    }
    if (near != kNil) stack.push_back(near);
  }
  spatial_internal::FinishKnn(best, out);
}

void KdTree::RangeSearchInto(const Point& query, double radius,
                             IndexScratch* scratch,
                             std::vector<Neighbor>* out) const {
  out->clear();
  if (root_ == kNil) return;
  auto& stack = scratch->stack;
  stack.assign(1, root_);
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    if (ni == kNil) continue;
    const Node& node = nodes_[ni];
    const Point& p = points_[node.point_id];
    double d = Distance(p, query);
    if (d <= radius) out->push_back({node.point_id, d});
    double qv = node.axis == 0 ? query.x : query.y;
    double pv = node.axis == 0 ? p.x : p.y;
    if (qv - radius <= pv && node.left != kNil) stack.push_back(node.left);
    if (qv + radius >= pv && node.right != kNil) stack.push_back(node.right);
  }
  std::sort(out->begin(), out->end(), spatial_internal::NeighborLess);
}

void KdTree::BoxSearchInto(const BoundingBox& box, IndexScratch* scratch,
                           std::vector<uint32_t>* out) const {
  out->clear();
  if (root_ == kNil) return;
  auto& stack = scratch->stack;
  stack.assign(1, root_);
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    if (ni == kNil) continue;
    const Node& node = nodes_[ni];
    const Point& p = points_[node.point_id];
    if (box.Contains(p)) out->push_back(node.point_id);
    double pv = node.axis == 0 ? p.x : p.y;
    double lo = node.axis == 0 ? box.min.x : box.min.y;
    double hi = node.axis == 0 ? box.max.x : box.max.y;
    if (lo <= pv && node.left != kNil) stack.push_back(node.left);
    if (hi >= pv && node.right != kNil) stack.push_back(node.right);
  }
}

}  // namespace ecocharge
