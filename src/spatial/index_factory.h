#ifndef ECOCHARGE_SPATIAL_INDEX_FACTORY_H_
#define ECOCHARGE_SPATIAL_INDEX_FACTORY_H_

#include <array>
#include <memory>
#include <string_view>

#include "common/result.h"
#include "spatial/spatial_index.h"

namespace ecocharge {

/// \brief The candidate-retrieval backends the query pipeline can run on.
///
/// The CkNN-EC pipeline programs against SpatialIndex, so any backend can
/// drive any ranker; the kind only selects which concrete structure holds
/// the charger positions.
enum class SpatialIndexKind {
  kQuadTree,  ///< point-region quadtree (the paper's baseline index)
  kRTree,     ///< STR-packed R-tree
  kGrid,      ///< uniform grid
  kKdTree,    ///< median-split kd-tree
  kLinear,    ///< O(n) scan (reference backend)
};

/// All selectable kinds, in the canonical (CLI/bench) order.
inline constexpr std::array<SpatialIndexKind, 5> kAllSpatialIndexKinds = {
    SpatialIndexKind::kQuadTree, SpatialIndexKind::kRTree,
    SpatialIndexKind::kGrid, SpatialIndexKind::kKdTree,
    SpatialIndexKind::kLinear};

/// Canonical flag spelling: "quadtree", "rtree", "grid", "kdtree", "linear".
std::string_view SpatialIndexKindName(SpatialIndexKind kind);

/// Parses a flag value (case-insensitive, canonical spellings above).
Result<SpatialIndexKind> ParseSpatialIndexKind(std::string_view name);

/// Constructs an empty index of `kind` with its default tuning; call
/// Build() to populate it.
std::unique_ptr<SpatialIndex> MakeSpatialIndex(SpatialIndexKind kind);

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_INDEX_FACTORY_H_
