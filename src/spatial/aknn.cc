#include "spatial/aknn.h"

#include <algorithm>

#include "spatial/grid_index.h"

namespace ecocharge {

std::vector<std::vector<Neighbor>> ComputeAllKnnNaive(
    const std::vector<Point>& points, size_t k) {
  std::vector<std::vector<Neighbor>> result(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) {
    std::vector<Neighbor> all;
    all.reserve(points.size() - 1);
    for (uint32_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      all.push_back({j, Distance(points[i], points[j])});
    }
    size_t take = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + take, all.end(),
                      spatial_internal::NeighborLess);
    all.resize(take);
    result[i] = std::move(all);
  }
  return result;
}

std::vector<std::vector<Neighbor>> ComputeAllKnn(
    const std::vector<Point>& points, size_t k) {
  std::vector<std::vector<Neighbor>> result(points.size());
  if (points.empty() || k == 0) return result;

  // One shared grid; per point, Knn(k+1) and drop the self hit. The grid's
  // ring expansion makes each query O(k) expected on uniform data.
  GridIndex grid;
  grid.Build(points);
  for (uint32_t i = 0; i < points.size(); ++i) {
    std::vector<Neighbor> with_self = grid.Knn(points[i], k + 1);
    std::vector<Neighbor>& row = result[i];
    row.reserve(k);
    for (const Neighbor& n : with_self) {
      if (n.id == i) continue;
      if (row.size() == k) break;
      row.push_back(n);
    }
  }
  return result;
}

}  // namespace ecocharge
