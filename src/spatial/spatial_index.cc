#include "spatial/spatial_index.h"

namespace ecocharge {

std::vector<Neighbor> SpatialIndex::Knn(const Point& query, size_t k) const {
  IndexScratch scratch;
  std::vector<Neighbor> out;
  KnnInto(query, k, &scratch, &out);
  return out;
}

std::vector<Neighbor> SpatialIndex::RangeSearch(const Point& query,
                                                double radius) const {
  IndexScratch scratch;
  std::vector<Neighbor> out;
  RangeSearchInto(query, radius, &scratch, &out);
  return out;
}

std::vector<uint32_t> SpatialIndex::BoxSearch(const BoundingBox& box) const {
  IndexScratch scratch;
  std::vector<uint32_t> out;
  BoxSearchInto(box, &scratch, &out);
  return out;
}

}  // namespace ecocharge
