#ifndef ECOCHARGE_SPATIAL_SPATIAL_INDEX_H_
#define ECOCHARGE_SPATIAL_SPATIAL_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"

namespace ecocharge {

/// \brief One kNN answer: the item's id and its distance to the query.
struct Neighbor {
  uint32_t id = 0;
  double distance = 0.0;

  bool operator==(const Neighbor& o) const {
    return id == o.id && distance == o.distance;
  }
};

/// \brief Reusable traversal scratch for index queries.
///
/// Every backend keeps its per-query working state (DFS stacks, best-first
/// frontiers, k-best heaps) in one of these instead of local vectors, so a
/// caller that reuses the scratch across queries reaches a steady state
/// with zero heap allocations per query. A default-constructed scratch is
/// always valid; the buffers grow to the high-water mark and stay.
struct IndexScratch {
  /// One best-first frontier entry: distance lower bound to a tree node.
  struct FrontierEntry {
    double distance = 0.0;
    uint32_t node = 0;
  };

  std::vector<uint32_t> stack;          ///< DFS node stack (range/box)
  std::vector<FrontierEntry> frontier;  ///< best-first min-heap (kNN)
  std::vector<Neighbor> best;           ///< k-best max-heap (kNN)
};

/// \brief Read-only kNN/range interface over a static set of points.
///
/// Items are identified by their index in the point vector handed to
/// Build(); payloads (chargers, graph nodes, ...) live outside the index.
/// All implementations return kNN results sorted ascending by distance with
/// ties broken by id, so results are comparable across index types in tests
/// — and, downstream, so the query pipeline produces bit-identical Offering
/// Tables no matter which backend retrieved the candidates.
///
/// Each query comes in two forms:
///  - an allocating convenience form returning a fresh vector, and
///  - a `...Into` form writing into a caller-owned output vector using a
///    caller-owned IndexScratch — the zero-allocation path the QueryContext
///    layer in src/core threads through the ranking pipeline.
///
/// Thread safety: after Build() the index is immutable; the const query
/// methods keep all per-query mutable state in the caller-owned scratch
/// and output vectors (no backend has `mutable` members), so any number of
/// threads may query one index concurrently as long as each brings its own
/// IndexScratch — exactly what the per-worker QueryContext provides.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// (Re)builds the index over `points`; ids are the vector positions.
  virtual void Build(std::vector<Point> points) = 0;

  /// Number of indexed points.
  virtual size_t size() const = 0;

  /// The k nearest items to `query` (fewer if the index holds fewer),
  /// written into `*out` (cleared first) sorted ascending by distance.
  virtual void KnnInto(const Point& query, size_t k, IndexScratch* scratch,
                       std::vector<Neighbor>* out) const = 0;

  /// All items within `radius` of `query`, written into `*out` (cleared
  /// first) sorted ascending by distance.
  virtual void RangeSearchInto(const Point& query, double radius,
                               IndexScratch* scratch,
                               std::vector<Neighbor>* out) const = 0;

  /// All item ids inside `box` (unordered), written into `*out`.
  virtual void BoxSearchInto(const BoundingBox& box, IndexScratch* scratch,
                             std::vector<uint32_t>* out) const = 0;

  /// Allocating convenience wrappers around the `...Into` forms.
  std::vector<Neighbor> Knn(const Point& query, size_t k) const;
  std::vector<Neighbor> RangeSearch(const Point& query, double radius) const;
  std::vector<uint32_t> BoxSearch(const BoundingBox& box) const;
};

/// \brief Splits AoS range/kNN results into id and distance lanes.
///
/// The SoA gather step of the vectorized filter phase (DESIGN.md §15): the
/// backends answer in the canonical AoS `Neighbor` order, and the pipeline
/// transposes once into caller-owned lanes the pruning kernels stream over.
/// Both output vectors are resized to `neighbors.size()`; capacity persists
/// across calls, so a warm caller allocates nothing.
inline void SplitNeighborLanes(const std::vector<Neighbor>& neighbors,
                               std::vector<uint32_t>* ids,
                               std::vector<double>* distances) {
  const size_t n = neighbors.size();
  ids->resize(n);
  distances->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*ids)[i] = neighbors[i].id;
    (*distances)[i] = neighbors[i].distance;
  }
}

namespace spatial_internal {

/// Canonical ordering shared by implementations: ascending distance, then id.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

/// Min-heap comparator for best-first frontiers (std heaps are max-heaps
/// w.r.t. the comparator, so "greater" puts the nearest node on top).
inline bool FrontierGreater(const IndexScratch::FrontierEntry& a,
                            const IndexScratch::FrontierEntry& b) {
  return a.distance > b.distance;
}

/// Offers `cand` to the k-best max-heap in `best` (worst element on top),
/// keeping at most k entries.
inline void OfferNeighbor(std::vector<Neighbor>* best, size_t k,
                          const Neighbor& cand) {
  if (best->size() < k) {
    best->push_back(cand);
    std::push_heap(best->begin(), best->end(), NeighborLess);
  } else if (NeighborLess(cand, best->front())) {
    std::pop_heap(best->begin(), best->end(), NeighborLess);
    best->back() = cand;
    std::push_heap(best->begin(), best->end(), NeighborLess);
  }
}

/// Moves the k-best heap into `out` in canonical ascending order.
inline void FinishKnn(const std::vector<Neighbor>& best,
                      std::vector<Neighbor>* out) {
  out->assign(best.begin(), best.end());
  std::sort(out->begin(), out->end(), NeighborLess);
}

}  // namespace spatial_internal

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_SPATIAL_INDEX_H_
