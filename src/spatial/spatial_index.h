#ifndef ECOCHARGE_SPATIAL_SPATIAL_INDEX_H_
#define ECOCHARGE_SPATIAL_SPATIAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"

namespace ecocharge {

/// \brief One kNN answer: the item's id and its distance to the query.
struct Neighbor {
  uint32_t id = 0;
  double distance = 0.0;

  bool operator==(const Neighbor& o) const {
    return id == o.id && distance == o.distance;
  }
};

/// \brief Read-only kNN/range interface over a static set of points.
///
/// Items are identified by their index in the point vector handed to
/// Build(); payloads (chargers, graph nodes, ...) live outside the index.
/// All implementations return kNN results sorted ascending by distance with
/// ties broken by id, so results are comparable across index types in tests.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// (Re)builds the index over `points`; ids are the vector positions.
  virtual void Build(std::vector<Point> points) = 0;

  /// Number of indexed points.
  virtual size_t size() const = 0;

  /// The k nearest items to `query` (fewer if the index holds fewer).
  virtual std::vector<Neighbor> Knn(const Point& query, size_t k) const = 0;

  /// All items within `radius` of `query`, sorted ascending by distance.
  virtual std::vector<Neighbor> RangeSearch(const Point& query,
                                            double radius) const = 0;

  /// All item ids inside `box` (unordered).
  virtual std::vector<uint32_t> BoxSearch(const BoundingBox& box) const = 0;
};

namespace spatial_internal {

/// Canonical ordering shared by implementations: ascending distance, then id.
inline bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.id < b.id;
}

}  // namespace spatial_internal

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_SPATIAL_INDEX_H_
