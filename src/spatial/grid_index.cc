#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

GridIndex::GridIndex(double target_points_per_cell)
    : target_points_per_cell_(std::max(0.5, target_points_per_cell)) {}

void GridIndex::CellOf(const Point& p, int* cx, int* cy) const {
  *cx = std::clamp(
      static_cast<int>((p.x - bounds_.min.x) / cell_size_), 0, nx_ - 1);
  *cy = std::clamp(
      static_cast<int>((p.y - bounds_.min.y) / cell_size_), 0, ny_ - 1);
}

void GridIndex::Build(std::vector<Point> points) {
  points_ = std::move(points);
  cells_.clear();
  nx_ = ny_ = 0;
  if (points_.empty()) return;

  bounds_ = BoundingBox();
  for (const Point& p : points_) bounds_.Extend(p);
  double w = std::max(bounds_.Width(), 1.0);
  double h = std::max(bounds_.Height(), 1.0);
  double area = w * h;
  cell_size_ = std::sqrt(area * target_points_per_cell_ /
                         static_cast<double>(points_.size()));
  cell_size_ = std::max(cell_size_, 1e-6);
  nx_ = std::max(1, static_cast<int>(std::ceil(w / cell_size_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(h / cell_size_)));
  // Cap the table size for pathological inputs (huge extent, few points).
  const int64_t kMaxCells = 1 << 22;
  while (static_cast<int64_t>(nx_) * ny_ > kMaxCells) {
    cell_size_ *= 2.0;
    nx_ = std::max(1, static_cast<int>(std::ceil(w / cell_size_)));
    ny_ = std::max(1, static_cast<int>(std::ceil(h / cell_size_)));
  }
  cells_.assign(static_cast<size_t>(nx_) * ny_, {});
  for (uint32_t id = 0; id < points_.size(); ++id) {
    int cx, cy;
    CellOf(points_[id], &cx, &cy);
    cells_[CellIndex(cx, cy)].push_back(id);
  }
}

void GridIndex::KnnInto(const Point& query, size_t k, IndexScratch* scratch,
                        std::vector<Neighbor>* out) const {
  out->clear();
  if (points_.empty() || k == 0) return;

  auto& best = scratch->best;
  best.clear();

  int qcx, qcy;
  CellOf(query, &qcx, &qcy);

  // Ring-by-ring expansion: ring r covers every cell whose Chebyshev
  // distance from the query cell is exactly r. Points closer than
  // (r-1)*cell_size are guaranteed found once ring r-1 is scanned, so we
  // stop when the k-th distance is below that bound.
  int max_ring = std::max(nx_, ny_);
  for (int r = 0; r <= max_ring; ++r) {
    if (best.size() == static_cast<size_t>(k)) {
      double safe = static_cast<double>(r - 1) * cell_size_;
      if (safe >= 0.0 && best.front().distance <= safe) break;
    }
    bool any_cell = false;
    auto scan_cell = [&](int cx, int cy) {
      if (cx < 0 || cy < 0 || cx >= nx_ || cy >= ny_) return;
      any_cell = true;
      for (uint32_t id : cells_[CellIndex(cx, cy)]) {
        spatial_internal::OfferNeighbor(&best, k,
                                        {id, Distance(points_[id], query)});
      }
    };
    if (r == 0) {
      scan_cell(qcx, qcy);
    } else {
      for (int dx = -r; dx <= r; ++dx) {
        scan_cell(qcx + dx, qcy - r);
        scan_cell(qcx + dx, qcy + r);
      }
      for (int dy = -r + 1; dy <= r - 1; ++dy) {
        scan_cell(qcx - r, qcy + dy);
        scan_cell(qcx + r, qcy + dy);
      }
    }
    if (!any_cell && best.size() == k) break;
  }

  spatial_internal::FinishKnn(best, out);
}

void GridIndex::RangeSearchInto(const Point& query, double radius,
                                IndexScratch* /*scratch*/,
                                std::vector<Neighbor>* out) const {
  out->clear();
  if (points_.empty()) return;
  int cx0, cy0, cx1, cy1;
  CellOf({query.x - radius, query.y - radius}, &cx0, &cy0);
  CellOf({query.x + radius, query.y + radius}, &cx1, &cy1);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      for (uint32_t id : cells_[CellIndex(cx, cy)]) {
        double d = Distance(points_[id], query);
        if (d <= radius) out->push_back({id, d});
      }
    }
  }
  std::sort(out->begin(), out->end(), spatial_internal::NeighborLess);
}

void GridIndex::BoxSearchInto(const BoundingBox& box,
                              IndexScratch* /*scratch*/,
                              std::vector<uint32_t>* out) const {
  out->clear();
  if (points_.empty()) return;
  int cx0, cy0, cx1, cy1;
  CellOf(box.min, &cx0, &cy0);
  CellOf(box.max, &cx1, &cy1);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      for (uint32_t id : cells_[CellIndex(cx, cy)]) {
        if (box.Contains(points_[id])) out->push_back(id);
      }
    }
  }
}

}  // namespace ecocharge
