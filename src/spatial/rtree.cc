#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

RTree::RTree(size_t leaf_capacity)
    : leaf_capacity_(std::max<size_t>(2, leaf_capacity)) {}

void RTree::Build(std::vector<Point> points) {
  points_ = std::move(points);
  nodes_.clear();
  root_ = 0;
  height_ = 0;
  if (points_.empty()) return;

  // STR leaf packing: sort ids by x, cut into vertical slabs of
  // ~sqrt(n/capacity) leaves each, sort each slab by y, chop into leaves.
  std::vector<uint32_t> ids(points_.size());
  for (uint32_t i = 0; i < points_.size(); ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    if (points_[a].x != points_[b].x) return points_[a].x < points_[b].x;
    return a < b;
  });

  size_t num_leaves =
      (points_.size() + leaf_capacity_ - 1) / leaf_capacity_;
  size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(std::sqrt(
             static_cast<double>(num_leaves)))));
  size_t per_slab =
      (points_.size() + slabs - 1) / slabs;

  std::vector<uint32_t> leaf_nodes;
  for (size_t s = 0; s < slabs; ++s) {
    size_t begin = s * per_slab;
    if (begin >= ids.size()) break;
    size_t end = std::min(ids.size(), begin + per_slab);
    std::sort(ids.begin() + begin, ids.begin() + end,
              [&](uint32_t a, uint32_t b) {
                if (points_[a].y != points_[b].y) {
                  return points_[a].y < points_[b].y;
                }
                return a < b;
              });
    for (size_t i = begin; i < end; i += leaf_capacity_) {
      Node leaf;
      leaf.is_leaf = true;
      size_t stop = std::min(end, i + leaf_capacity_);
      for (size_t j = i; j < stop; ++j) {
        leaf.entries.push_back(ids[j]);
        leaf.bounds.Extend(points_[ids[j]]);
      }
      leaf_nodes.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(leaf));
    }
  }

  std::vector<uint32_t> level = leaf_nodes;
  height_ = 1;
  while (level.size() > 1) {
    level = PackLevel(level);
    ++height_;
  }
  root_ = level.front();
}

std::vector<uint32_t> RTree::PackLevel(
    const std::vector<uint32_t>& child_nodes) {
  // Same STR recipe one level up, using child centers as sort keys.
  std::vector<uint32_t> order = child_nodes;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    double ax = nodes_[a].bounds.Center().x;
    double bx = nodes_[b].bounds.Center().x;
    if (ax != bx) return ax < bx;
    return a < b;
  });
  size_t num_parents =
      (order.size() + leaf_capacity_ - 1) / leaf_capacity_;
  size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::sqrt(static_cast<double>(num_parents)))));
  size_t per_slab = (order.size() + slabs - 1) / slabs;

  std::vector<uint32_t> parents;
  for (size_t s = 0; s < slabs; ++s) {
    size_t begin = s * per_slab;
    if (begin >= order.size()) break;
    size_t end = std::min(order.size(), begin + per_slab);
    std::sort(order.begin() + begin, order.begin() + end,
              [&](uint32_t a, uint32_t b) {
                double ay = nodes_[a].bounds.Center().y;
                double by = nodes_[b].bounds.Center().y;
                if (ay != by) return ay < by;
                return a < b;
              });
    for (size_t i = begin; i < end; i += leaf_capacity_) {
      Node parent;
      parent.is_leaf = false;
      size_t stop = std::min(end, i + leaf_capacity_);
      for (size_t j = i; j < stop; ++j) {
        parent.entries.push_back(order[j]);
        parent.bounds.Extend(nodes_[order[j]].bounds);
      }
      parents.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(parent));
    }
  }
  return parents;
}

void RTree::KnnInto(const Point& query, size_t k, IndexScratch* scratch,
                    std::vector<Neighbor>* out) const {
  using spatial_internal::FrontierGreater;
  out->clear();
  if (nodes_.empty() || k == 0) return;

  auto& open = scratch->frontier;
  auto& best = scratch->best;
  open.clear();
  best.clear();
  open.push_back({nodes_[root_].bounds.DistanceTo(query), root_});

  while (!open.empty()) {
    IndexScratch::FrontierEntry f = open.front();
    std::pop_heap(open.begin(), open.end(), FrontierGreater);
    open.pop_back();
    if (best.size() == k && f.distance > best.front().distance) break;
    const Node& node = nodes_[f.node];
    if (node.is_leaf) {
      for (uint32_t id : node.entries) {
        spatial_internal::OfferNeighbor(&best, k,
                                        {id, Distance(points_[id], query)});
      }
    } else {
      for (uint32_t child : node.entries) {
        double d = nodes_[child].bounds.DistanceTo(query);
        if (best.size() < k || d <= best.front().distance) {
          open.push_back({d, child});
          std::push_heap(open.begin(), open.end(), FrontierGreater);
        }
      }
    }
  }
  spatial_internal::FinishKnn(best, out);
}

void RTree::RangeSearchInto(const Point& query, double radius,
                            IndexScratch* scratch,
                            std::vector<Neighbor>* out) const {
  out->clear();
  if (nodes_.empty()) return;
  auto& stack = scratch->stack;
  stack.assign(1, root_);
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (node.bounds.DistanceTo(query) > radius) continue;
    if (node.is_leaf) {
      for (uint32_t id : node.entries) {
        double d = Distance(points_[id], query);
        if (d <= radius) out->push_back({id, d});
      }
    } else {
      for (uint32_t child : node.entries) stack.push_back(child);
    }
  }
  std::sort(out->begin(), out->end(), spatial_internal::NeighborLess);
}

void RTree::BoxSearchInto(const BoundingBox& box, IndexScratch* scratch,
                          std::vector<uint32_t>* out) const {
  out->clear();
  if (nodes_.empty()) return;
  auto& stack = scratch->stack;
  stack.assign(1, root_);
  while (!stack.empty()) {
    uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (!node.bounds.Intersects(box)) continue;
    if (node.is_leaf) {
      for (uint32_t id : node.entries) {
        if (box.Contains(points_[id])) out->push_back(id);
      }
    } else {
      for (uint32_t child : node.entries) stack.push_back(child);
    }
  }
}

}  // namespace ecocharge
