#ifndef ECOCHARGE_SPATIAL_LINEAR_SCAN_H_
#define ECOCHARGE_SPATIAL_LINEAR_SCAN_H_

#include <vector>

#include "spatial/spatial_index.h"

namespace ecocharge {

/// \brief O(n) reference implementation; the ground truth the tree indexes
/// are tested against, and the core of the paper's Brute-Force baseline.
class LinearScanIndex : public SpatialIndex {
 public:
  LinearScanIndex() = default;

  void Build(std::vector<Point> points) override;
  size_t size() const override { return points_.size(); }
  void KnnInto(const Point& query, size_t k, IndexScratch* scratch,
               std::vector<Neighbor>* out) const override;
  void RangeSearchInto(const Point& query, double radius,
                       IndexScratch* scratch,
                       std::vector<Neighbor>* out) const override;
  void BoxSearchInto(const BoundingBox& box, IndexScratch* scratch,
                     std::vector<uint32_t>* out) const override;

 private:
  std::vector<Point> points_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_LINEAR_SCAN_H_
