#ifndef ECOCHARGE_SPATIAL_LINEAR_SCAN_H_
#define ECOCHARGE_SPATIAL_LINEAR_SCAN_H_

#include <vector>

#include "spatial/spatial_index.h"

namespace ecocharge {

/// \brief O(n) reference implementation; the ground truth the tree indexes
/// are tested against, and the core of the paper's Brute-Force baseline.
class LinearScanIndex : public SpatialIndex {
 public:
  LinearScanIndex() = default;

  void Build(std::vector<Point> points) override;
  size_t size() const override { return points_.size(); }
  std::vector<Neighbor> Knn(const Point& query, size_t k) const override;
  std::vector<Neighbor> RangeSearch(const Point& query,
                                    double radius) const override;
  std::vector<uint32_t> BoxSearch(const BoundingBox& box) const override;

 private:
  std::vector<Point> points_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_LINEAR_SCAN_H_
