#ifndef ECOCHARGE_SPATIAL_AKNN_H_
#define ECOCHARGE_SPATIAL_AKNN_H_

#include <cstdint>
#include <vector>

#include "spatial/spatial_index.h"

namespace ecocharge {

/// \brief All-kNN (kNN self-join): for every point, its k nearest other
/// points.
///
/// Section VI-B of the paper points at its authors' Spitfire operator as
/// the building block for running EcoCharge centrally (Mode 2): the EIS
/// can precompute the kNN graph over the charger directory and answer
/// many vehicles from it. This is a single-node, main-memory version:
/// a batched sweep over a uniform grid with ring expansion per point —
/// O(n k) expected on uniform data versus the quadratic naive join.
///
/// Results exclude the point itself; ids with identical coordinates are
/// each other's neighbors at distance 0. Every row is sorted ascending by
/// (distance, id), matching the SpatialIndex convention.
std::vector<std::vector<Neighbor>> ComputeAllKnn(
    const std::vector<Point>& points, size_t k);

/// Reference O(n^2) implementation for testing and small inputs.
std::vector<std::vector<Neighbor>> ComputeAllKnnNaive(
    const std::vector<Point>& points, size_t k);

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_AKNN_H_
