#ifndef ECOCHARGE_SPATIAL_QUADTREE_H_
#define ECOCHARGE_SPATIAL_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "spatial/spatial_index.h"

namespace ecocharge {

/// \brief Point-region quadtree; the paper's "Index-Quadtree" baseline.
///
/// Space is recursively split into four quadrants once a leaf exceeds its
/// bucket capacity. kNN runs best-first over quadrants ordered by minimum
/// distance; range and box queries prune whole quadrants. Nodes live in a
/// flat arena (indices, not pointers) for locality.
class QuadTree : public SpatialIndex {
 public:
  /// \param bucket_capacity maximum points per leaf before it splits
  /// \param max_depth hard split limit (guards degenerate duplicates)
  explicit QuadTree(size_t bucket_capacity = 16, int max_depth = 32);

  void Build(std::vector<Point> points) override;
  size_t size() const override { return points_.size(); }
  void KnnInto(const Point& query, size_t k, IndexScratch* scratch,
               std::vector<Neighbor>* out) const override;
  void RangeSearchInto(const Point& query, double radius,
                       IndexScratch* scratch,
                       std::vector<Neighbor>* out) const override;
  void BoxSearchInto(const BoundingBox& box, IndexScratch* scratch,
                     std::vector<uint32_t>* out) const override;

  /// Number of tree nodes (internal + leaves); exposed for tests/benches.
  size_t num_tree_nodes() const { return nodes_.size(); }

  /// Depth of the deepest leaf.
  int depth() const;

 private:
  static constexpr uint32_t kNoChild = 0xFFFFFFFFu;

  struct Node {
    BoundingBox bounds;
    uint32_t children[4] = {kNoChild, kNoChild, kNoChild, kNoChild};
    std::vector<uint32_t> items;  // point ids; only leaves hold items
    bool is_leaf = true;
    int depth = 0;
  };

  void Insert(uint32_t node_index, uint32_t point_id);
  void Split(uint32_t node_index);
  int QuadrantOf(const Node& node, const Point& p) const;

  size_t bucket_capacity_;
  int max_depth_;
  std::vector<Point> points_;
  std::vector<Node> nodes_;  // nodes_[0] is the root when non-empty
};

}  // namespace ecocharge

#endif  // ECOCHARGE_SPATIAL_QUADTREE_H_
