#include "resilience/deadline.h"

#include <algorithm>

namespace ecocharge {
namespace resilience {

namespace {

/// Innermost active deadline of the calling thread (null = none).
thread_local ScopedRequestDeadline* t_active = nullptr;

}  // namespace

ScopedRequestDeadline::ScopedRequestDeadline(double budget_ms)
    : budget_ms_(std::max(0.0, budget_ms)), outer_(t_active) {
  t_active = this;
}

ScopedRequestDeadline::~ScopedRequestDeadline() {
  t_active = outer_;
  // Inner charges count against the outer budget too (nested deadlines
  // share the same wall clock).
  if (outer_ != nullptr) outer_->spent_ms_ += spent_ms_;
}

double ScopedRequestDeadline::RemainingMs() {
  const ScopedRequestDeadline* active = t_active;
  if (active == nullptr) return std::numeric_limits<double>::infinity();
  return std::max(0.0, active->budget_ms_ - active->spent_ms_);
}

void ScopedRequestDeadline::Charge(double ms) {
  if (ms <= 0.0) return;
  if (ScopedRequestDeadline* active = t_active) active->spent_ms_ += ms;
}

}  // namespace resilience
}  // namespace ecocharge
