#ifndef ECOCHARGE_RESILIENCE_RESILIENT_INFORMATION_SERVER_H_
#define ECOCHARGE_RESILIENCE_RESILIENT_INFORMATION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/rng.h"
#include "eis/information_server.h"
#include "resilience/circuit_breaker.h"
#include "resilience/deadline.h"
#include "resilience/eis_source.h"
#include "resilience/fault_injector.h"
#include "resilience/retry_policy.h"

namespace ecocharge {
namespace resilience {

/// \brief Full resilience configuration for the EIS fetch path.
struct ResilienceOptions {
  /// Injected failure modes per upstream (all inactive by default, which
  /// makes the decorated server behave bit-identically to the plain one).
  FaultInjectorOptions faults;

  /// Retry/backoff applied between failed attempts of one request.
  RetryPolicyOptions retry;

  /// Per-upstream circuit breaker configuration.
  CircuitBreakerOptions breaker;

  /// Seed of the backoff-jitter RNG streams (mixed per upstream, separate
  /// from the fault schedule so retries never perturb the fault draws).
  uint64_t retry_seed = 0xB0FFULL;
};

/// \brief Point-in-time resilience accounting for one upstream.
struct UpstreamResilienceStats {
  uint64_t retries = 0;              ///< retry attempts issued
  double backoff_ms = 0.0;           ///< virtual backoff charged, total
  uint64_t stale_serves = 0;         ///< responses served past their TTL
  uint64_t climatological_serves = 0;  ///< widened-default responses
  uint64_t breaker_rejections = 0;   ///< requests short-circuited by breaker
  uint64_t breaker_opens = 0;        ///< breaker open transitions
  BreakerState breaker_state = BreakerState::kClosed;
};

/// \brief InformationServer decorated with the resilience ladder.
///
/// Same caches, same keys, same upstream accounting as the base class —
/// but the cache-miss path goes through an EisSource that can fail
/// (normally the owned FaultInjector), guarded by a retry policy with
/// capped decorrelated-jitter backoff and a per-upstream circuit breaker.
/// When the upstream cannot be reached the server degrades instead of
/// failing, walking down the ladder (DESIGN.md §11):
///
///   1. fresh   — cache hit within TTL, or a successful (possibly
///                retried) upstream fetch;
///   2. stale   — the expired cache entry, served as-is
///                (stale-while-revalidate: the failed refresh already
///                happened, the old answer is still the best available);
///   3. climatological — no cache entry at all: a conservative default
///                whose interval is *widened* to certainly contain the
///                truth, so rankings lose sharpness, never correctness.
///
/// The rung that produced each response is reported through the EisFetch
/// out-parameter so estimates can carry a degradation flag end to end.
/// Backoff and injected latency are charged to the caller's
/// ScopedRequestDeadline, never slept, so everything stays deterministic.
///
/// Thread safety: same contract as the base class. Breakers and jitter
/// RNGs are mutex-guarded per upstream; degradation counters are relaxed
/// atomics.
class ResilientInformationServer : public InformationServer {
 public:
  /// Decorates the three simulated services behind an owned
  /// DirectEisSource + FaultInjector chain configured by `options.faults`.
  ResilientInformationServer(SolarEnergyService* energy,
                             const AvailabilityService* availability,
                             const CongestionModel* congestion,
                             const EisOptions& eis_options = {},
                             const ResilienceOptions& options = {});

  /// Test seam: decorates an externally owned source (e.g. a scripted
  /// failure sequence) instead of building the injector chain. The
  /// services are still wired for the base class; `source` must outlive
  /// the server.
  ResilientInformationServer(EisSource* source, SolarEnergyService* energy,
                             const AvailabilityService* availability,
                             const CongestionModel* congestion,
                             const EisOptions& eis_options = {},
                             const ResilienceOptions& options = {});

  EnergyForecast GetEnergyForecast(const EvCharger& charger, SimTime now,
                                   SimTime target, double window_s,
                                   EisFetch* fetch = nullptr) override;
  AvailabilityForecast GetAvailability(const EvCharger& charger, SimTime now,
                                       SimTime target,
                                       EisFetch* fetch = nullptr) override;
  CongestionModel::Band GetTraffic(RoadClass road_class, SimTime now,
                                   SimTime target,
                                   EisFetch* fetch = nullptr) override;

  /// Wires the base EIS instruments plus, per upstream,
  /// `resilience.<kind>.{retries,backoff_ms,stale_serves,
  /// climatological_serves,breaker_rejected,breaker_state,breaker_opens}`
  /// and the injector's `fault.<kind>.*` counters. Null detaches.
  void AttachMetrics(obs::MetricsRegistry* registry) override;

  /// Resilience accounting for one upstream; safe under traffic.
  UpstreamResilienceStats ResilienceSnapshot(UpstreamKind kind,
                                             SimTime now) const;

  /// The owned injector, or null when the test-seam constructor was used.
  FaultInjector* fault_injector() { return injector_.get(); }

  const RetryPolicy& retry_policy() const { return retry_policy_; }

 private:
  struct UpstreamState {
    std::unique_ptr<CircuitBreaker> breaker;
    mutable std::mutex mu;  ///< guards the jitter RNG + backoff total
    Rng rng{1};
    double backoff_ms = 0.0;
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> stale_serves{0};
    std::atomic<uint64_t> climatological_serves{0};
    std::atomic<uint64_t> breaker_rejections{0};
    obs::Counter* retries_mirror = nullptr;
    obs::Counter* backoff_ms_mirror = nullptr;
    obs::Counter* stale_mirror = nullptr;
    obs::Counter* climatological_mirror = nullptr;
    obs::Counter* rejected_mirror = nullptr;
  };

  void InitUpstreams();

  UpstreamState& StateFor(UpstreamKind kind) {
    return upstreams_[static_cast<size_t>(kind)];
  }

  void CountStaleServe(UpstreamKind kind);
  void CountClimatologicalServe(UpstreamKind kind);

  /// One guarded upstream request: breaker admission, then attempt /
  /// backoff / retry until success, retry exhaustion, deadline-budget
  /// exhaustion, or the breaker tripping mid-request. `attempt` performs
  /// exactly one upstream call (including its call accounting).
  template <typename T, typename Fn>
  Result<T> FetchWithResilience(UpstreamKind kind, SimTime now, Fn&& attempt) {
    UpstreamState& st = StateFor(kind);
    if (!st.breaker->Allow(now)) {
      st.breaker_rejections.fetch_add(1, std::memory_order_relaxed);
      if (st.rejected_mirror) st.rejected_mirror->Add();
      return Status::Unavailable(std::string(UpstreamKindName(kind)) +
                                 " circuit open");
    }
    RetryPolicy::Attempt tries;
    for (;;) {
      Result<T> result = attempt();
      if (result.ok()) {
        st.breaker->RecordSuccess(now);
        return result;
      }
      st.breaker->RecordFailure(now);
      double backoff;
      {
        std::lock_guard<std::mutex> lock(st.mu);
        backoff = retry_policy_.NextBackoffMs(
            &tries, &st.rng, ScopedRequestDeadline::RemainingMs());
        if (backoff >= 0.0) st.backoff_ms += backoff;
      }
      if (backoff < 0.0) return result;
      ScopedRequestDeadline::Charge(backoff);
      st.retries.fetch_add(1, std::memory_order_relaxed);
      if (st.retries_mirror) st.retries_mirror->Add();
      if (st.backoff_ms_mirror) {
        st.backoff_ms_mirror->Add(static_cast<uint64_t>(backoff + 0.5));
      }
      if (!st.breaker->Allow(now)) {
        st.breaker_rejections.fetch_add(1, std::memory_order_relaxed);
        if (st.rejected_mirror) st.rejected_mirror->Add();
        return result;
      }
    }
  }

  ResilienceOptions options_;
  RetryPolicy retry_policy_;
  std::unique_ptr<DirectEisSource> direct_;
  std::unique_ptr<FaultInjector> injector_;
  EisSource* source_;  ///< top of the decoration chain (not owned if external)
  UpstreamState upstreams_[kNumUpstreamKinds];
};

}  // namespace resilience
}  // namespace ecocharge

#endif  // ECOCHARGE_RESILIENCE_RESILIENT_INFORMATION_SERVER_H_
