#include "resilience/circuit_breaker.h"

#include <algorithm>

namespace ecocharge {
namespace resilience {

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half-open";
    case BreakerState::kOpen:
      return "open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  options_.failure_threshold = std::max(1, options_.failure_threshold);
  options_.open_duration_s = std::max(0.0, options_.open_duration_s);
  options_.half_open_probes = std::max(1, options_.half_open_probes);
}

void CircuitBreaker::SetStateLocked(BreakerState next) {
  state_ = next;
  if (state_gauge_) state_gauge_->Set(static_cast<int64_t>(next));
}

void CircuitBreaker::OpenLocked(SimTime now) {
  SetStateLocked(BreakerState::kOpen);
  opened_at_ = now;
  probes_granted_ = 0;
  ++opens_;
  if (opens_counter_) opens_counter_->Add();
}

bool CircuitBreaker::Allow(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_ < options_.open_duration_s) return false;
      SetStateLocked(BreakerState::kHalfOpen);
      probes_granted_ = 0;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (probes_granted_ >= options_.half_open_probes) return false;
      ++probes_granted_;
      return true;
  }
  return true;  // unreachable
}

void CircuitBreaker::RecordSuccess(SimTime /*now*/) {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probes_granted_ = 0;
  if (state_ != BreakerState::kClosed) SetStateLocked(BreakerState::kClosed);
}

void CircuitBreaker::RecordFailure(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        OpenLocked(now);
      }
      return;
    case BreakerState::kHalfOpen:
      // The probe failed: the upstream is still down.
      OpenLocked(now);
      return;
    case BreakerState::kOpen:
      // A straggler admitted before the trip; already open.
      return;
  }
}

BreakerState CircuitBreaker::state(SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kOpen &&
      now - opened_at_ >= options_.open_duration_s) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

void CircuitBreaker::AttachMetrics(obs::Gauge* state_gauge,
                                   obs::Counter* opens_counter) {
  std::lock_guard<std::mutex> lock(mu_);
  state_gauge_ = state_gauge;
  opens_counter_ = opens_counter;
  if (state_gauge_) state_gauge_->Set(static_cast<int64_t>(state_));
}

}  // namespace resilience
}  // namespace ecocharge
