#ifndef ECOCHARGE_RESILIENCE_EIS_SOURCE_H_
#define ECOCHARGE_RESILIENCE_EIS_SOURCE_H_

#include <cstddef>
#include <string_view>

#include "availability/availability_service.h"
#include "common/result.h"
#include "energy/production.h"
#include "traffic/congestion.h"

namespace ecocharge {
namespace resilience {

/// \brief The three upstream "APIs" behind the EcoCharge Information
/// Server, as failure domains: weather forecasts (L), popular-times
/// histograms (A), live traffic (D). Each gets its own fault profile,
/// circuit breaker, and metric family.
enum class UpstreamKind : uint8_t {
  kWeather = 0,
  kAvailability = 1,
  kTraffic = 2,
};

inline constexpr size_t kNumUpstreamKinds = 3;

inline constexpr UpstreamKind kAllUpstreamKinds[kNumUpstreamKinds] = {
    UpstreamKind::kWeather,
    UpstreamKind::kAvailability,
    UpstreamKind::kTraffic,
};

std::string_view UpstreamKindName(UpstreamKind kind);

/// \brief The upstream boundary of the Information Server: one virtual
/// fetch per external API, each of which may fail.
///
/// The paper's deployment reaches weather, popular-times, and traffic
/// providers over HTTP; in this reproduction the providers are pure
/// simulated services that cannot fail — so the fallible seam is
/// introduced here, where a production system would hold its RPC stubs.
/// DirectEisSource adapts the simulated services (always succeeds);
/// FaultInjector decorates any source with deterministic failures; the
/// ResilientInformationServer consumes the composed chain.
///
/// Implementations must be safe for concurrent calls from all serving
/// workers (the simulated services are const and pure; decorators guard
/// their own state).
class EisSource {
 public:
  virtual ~EisSource() = default;

  /// L upstream: clean-energy forecast for an arrival window.
  virtual Result<EnergyForecast> FetchEnergyForecast(const EvCharger& charger,
                                                     SimTime now,
                                                     SimTime target,
                                                     double window_s) = 0;

  /// A upstream: availability band at the ETA.
  virtual Result<AvailabilityForecast> FetchAvailability(
      const EvCharger& charger, SimTime now, SimTime target) = 0;

  /// D upstream: congestion band for a road class.
  virtual Result<CongestionModel::Band> FetchTraffic(RoadClass road_class,
                                                     SimTime now,
                                                     SimTime target) = 0;
};

/// \brief Adapter from the simulated forecast services to EisSource: the
/// infallible upstream every fault-free configuration bottoms out in.
/// Callers pass times already snapped to the forecast bucket (the
/// InformationServer's job), so responses stay pure in the cache key.
class DirectEisSource : public EisSource {
 public:
  DirectEisSource(SolarEnergyService* energy,
                  const AvailabilityService* availability,
                  const CongestionModel* congestion);

  Result<EnergyForecast> FetchEnergyForecast(const EvCharger& charger,
                                             SimTime now, SimTime target,
                                             double window_s) override;
  Result<AvailabilityForecast> FetchAvailability(const EvCharger& charger,
                                                 SimTime now,
                                                 SimTime target) override;
  Result<CongestionModel::Band> FetchTraffic(RoadClass road_class, SimTime now,
                                             SimTime target) override;

 private:
  SolarEnergyService* energy_;
  const AvailabilityService* availability_;
  const CongestionModel* congestion_;
};

}  // namespace resilience
}  // namespace ecocharge

#endif  // ECOCHARGE_RESILIENCE_EIS_SOURCE_H_
