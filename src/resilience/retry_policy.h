#ifndef ECOCHARGE_RESILIENCE_RETRY_POLICY_H_
#define ECOCHARGE_RESILIENCE_RETRY_POLICY_H_

#include "common/rng.h"

namespace ecocharge {
namespace resilience {

/// \brief Knobs of the capped exponential backoff with decorrelated
/// jitter (the AWS Architecture Blog scheme: each sleep is drawn from
/// uniform(base, prev * 3) and capped, which decorrelates retry storms
/// better than multiplying a jittered base).
struct RetryPolicyOptions {
  /// Total tries, including the first. 1 = no retries.
  int max_attempts = 4;

  /// Lower bound of every backoff draw (virtual milliseconds).
  double base_backoff_ms = 5.0;

  /// Upper cap on any single backoff draw.
  double max_backoff_ms = 100.0;
};

/// \brief Decides whether (and how long) to back off between attempts of
/// one upstream request, honoring the per-request deadline budget.
///
/// The policy itself is immutable and shared; the mutable per-request
/// state lives in a caller-owned Attempt value, so one policy instance
/// serves all workers without synchronization. Backoff durations are
/// virtual milliseconds (see ScopedRequestDeadline) — callers charge them
/// to the request budget instead of sleeping.
class RetryPolicy {
 public:
  /// Per-request retry state; value-initialize before the first attempt.
  struct Attempt {
    int tries = 0;               ///< attempts completed so far
    double prev_backoff_ms = 0;  ///< last drawn backoff (jitter memory)
  };

  explicit RetryPolicy(const RetryPolicyOptions& options = {});

  /// Called after a failed attempt. Returns the backoff to charge before
  /// the next try, or a negative value when the request must give up:
  /// attempts exhausted, or the drawn backoff does not fit in
  /// `remaining_budget_ms` (retrying past the deadline only burns
  /// upstream quota for an answer nobody is waiting for).
  ///
  /// `rng` supplies the jitter; passing the same seeded stream reproduces
  /// the same backoff sequence bit-for-bit.
  double NextBackoffMs(Attempt* attempt, Rng* rng,
                       double remaining_budget_ms) const;

  const RetryPolicyOptions& options() const { return options_; }

 private:
  RetryPolicyOptions options_;
};

}  // namespace resilience
}  // namespace ecocharge

#endif  // ECOCHARGE_RESILIENCE_RETRY_POLICY_H_
