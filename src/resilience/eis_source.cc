#include "resilience/eis_source.h"

namespace ecocharge {
namespace resilience {

std::string_view UpstreamKindName(UpstreamKind kind) {
  switch (kind) {
    case UpstreamKind::kWeather:
      return "weather";
    case UpstreamKind::kAvailability:
      return "availability";
    case UpstreamKind::kTraffic:
      return "traffic";
  }
  return "unknown";
}

DirectEisSource::DirectEisSource(SolarEnergyService* energy,
                                 const AvailabilityService* availability,
                                 const CongestionModel* congestion)
    : energy_(energy),
      availability_(availability),
      congestion_(congestion) {}

Result<EnergyForecast> DirectEisSource::FetchEnergyForecast(
    const EvCharger& charger, SimTime now, SimTime target, double window_s) {
  return energy_->ForecastEnergyKwh(charger, now, target, window_s);
}

Result<AvailabilityForecast> DirectEisSource::FetchAvailability(
    const EvCharger& charger, SimTime now, SimTime target) {
  return availability_->Forecast(charger, now, target);
}

Result<CongestionModel::Band> DirectEisSource::FetchTraffic(
    RoadClass road_class, SimTime now, SimTime target) {
  return congestion_->ForecastSpeedFactor(road_class, now, target);
}

}  // namespace resilience
}  // namespace ecocharge
