#include "resilience/resilient_information_server.h"

#include <algorithm>
#include <optional>

namespace ecocharge {
namespace resilience {

namespace {

/// Derives a per-upstream jitter stream from the retry seed (SplitMix64
/// finalizer), offset so it never collides with the fault-schedule
/// streams derived from the same master seed value.
uint64_t MixRetrySeed(uint64_t seed, uint64_t kind) {
  uint64_t z = seed + (kind + 17) * 0xD1B54A32D192ED03ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Climatological defaults: the bottom rung of the degradation ladder.
/// Each default *widens* the interval to bounds that hold for any
/// weather/occupancy/traffic, so an EC estimate built from them still
/// contains the truth — the ranking loses sharpness, not correctness.

EnergyForecast ClimatologicalEnergy(const EvCharger& charger,
                                    double window_s) {
  // Zero clean energy up to the site's physical ceiling: delivery capped
  // by both the charger rate and the attached PV capacity over the window.
  EnergyForecast f;
  f.min_kwh = 0.0;
  f.max_kwh = std::min(charger.RateKw(), charger.pv_capacity_kw) * window_s /
              kSecondsPerHour;
  return f;
}

AvailabilityForecast ClimatologicalAvailability() {
  return AvailabilityForecast{0.0, 1.0};  // anything from full to empty
}

CongestionModel::Band ClimatologicalTraffic() {
  return CongestionModel::Band{};  // the model's full {0.15, 1.0} range
}

}  // namespace

ResilientInformationServer::ResilientInformationServer(
    SolarEnergyService* energy, const AvailabilityService* availability,
    const CongestionModel* congestion, const EisOptions& eis_options,
    const ResilienceOptions& options)
    : InformationServer(energy, availability, congestion, eis_options),
      options_(options),
      retry_policy_(options.retry),
      direct_(std::make_unique<DirectEisSource>(energy, availability,
                                                congestion)),
      injector_(std::make_unique<FaultInjector>(direct_.get(),
                                                options.faults)),
      source_(injector_.get()) {
  InitUpstreams();
}

ResilientInformationServer::ResilientInformationServer(
    EisSource* source, SolarEnergyService* energy,
    const AvailabilityService* availability, const CongestionModel* congestion,
    const EisOptions& eis_options, const ResilienceOptions& options)
    : InformationServer(energy, availability, congestion, eis_options),
      options_(options),
      retry_policy_(options.retry),
      source_(source) {
  InitUpstreams();
}

void ResilientInformationServer::InitUpstreams() {
  for (UpstreamKind kind : kAllUpstreamKinds) {
    UpstreamState& st = StateFor(kind);
    st.breaker = std::make_unique<CircuitBreaker>(options_.breaker);
    st.rng = Rng(MixRetrySeed(options_.retry_seed,
                              static_cast<uint64_t>(kind)));
  }
}

void ResilientInformationServer::CountStaleServe(UpstreamKind kind) {
  UpstreamState& st = StateFor(kind);
  st.stale_serves.fetch_add(1, std::memory_order_relaxed);
  if (st.stale_mirror) st.stale_mirror->Add();
}

void ResilientInformationServer::CountClimatologicalServe(UpstreamKind kind) {
  UpstreamState& st = StateFor(kind);
  st.climatological_serves.fetch_add(1, std::memory_order_relaxed);
  if (st.climatological_mirror) st.climatological_mirror->Add();
}

EnergyForecast ResilientInformationServer::GetEnergyForecast(
    const EvCharger& charger, SimTime now, SimTime target, double window_s,
    EisFetch* fetch) {
  uint64_t key = WeatherKey(charger, now, target);
  bool fresh = false;
  std::optional<EnergyForecast> cached =
      weather_cache_.GetAllowStale(key, now, &fresh);
  if (cached && fresh) {
    if (fetch) *fetch = EisFetch::kFresh;
    return *cached;
  }
  Result<EnergyForecast> fetched = FetchWithResilience<EnergyForecast>(
      UpstreamKind::kWeather, now, [&]() -> Result<EnergyForecast> {
        CountWeatherCall();
        return source_->FetchEnergyForecast(charger, SnapToBucket(now),
                                            SnapToBucket(target), window_s);
      });
  if (fetched.ok()) {
    weather_cache_.Put(key, *fetched, now);
    if (fetch) *fetch = EisFetch::kFresh;
    return *fetched;
  }
  if (cached) {
    CountStaleServe(UpstreamKind::kWeather);
    if (fetch) *fetch = EisFetch::kStale;
    return *cached;
  }
  CountClimatologicalServe(UpstreamKind::kWeather);
  if (fetch) *fetch = EisFetch::kClimatological;
  return ClimatologicalEnergy(charger, window_s);
}

AvailabilityForecast ResilientInformationServer::GetAvailability(
    const EvCharger& charger, SimTime now, SimTime target, EisFetch* fetch) {
  uint64_t key = AvailabilityKey(charger, now, target);
  bool fresh = false;
  std::optional<AvailabilityForecast> cached =
      availability_cache_.GetAllowStale(key, now, &fresh);
  if (cached && fresh) {
    if (fetch) *fetch = EisFetch::kFresh;
    return *cached;
  }
  Result<AvailabilityForecast> fetched =
      FetchWithResilience<AvailabilityForecast>(
          UpstreamKind::kAvailability, now,
          [&]() -> Result<AvailabilityForecast> {
            CountAvailabilityCall();
            return source_->FetchAvailability(charger, SnapToBucket(now),
                                              SnapToBucket(target));
          });
  if (fetched.ok()) {
    availability_cache_.Put(key, *fetched, now);
    if (fetch) *fetch = EisFetch::kFresh;
    return *fetched;
  }
  if (cached) {
    CountStaleServe(UpstreamKind::kAvailability);
    if (fetch) *fetch = EisFetch::kStale;
    return *cached;
  }
  CountClimatologicalServe(UpstreamKind::kAvailability);
  if (fetch) *fetch = EisFetch::kClimatological;
  return ClimatologicalAvailability();
}

CongestionModel::Band ResilientInformationServer::GetTraffic(
    RoadClass road_class, SimTime now, SimTime target, EisFetch* fetch) {
  uint64_t key = TrafficKey(road_class, now, target);
  bool fresh = false;
  std::optional<CongestionModel::Band> cached =
      traffic_cache_.GetAllowStale(key, now, &fresh);
  if (cached && fresh) {
    if (fetch) *fetch = EisFetch::kFresh;
    return *cached;
  }
  Result<CongestionModel::Band> fetched =
      FetchWithResilience<CongestionModel::Band>(
          UpstreamKind::kTraffic, now,
          [&]() -> Result<CongestionModel::Band> {
            CountTrafficCall();
            return source_->FetchTraffic(road_class, SnapToBucket(now),
                                         SnapToBucket(target));
          });
  if (fetched.ok()) {
    traffic_cache_.Put(key, *fetched, now);
    if (fetch) *fetch = EisFetch::kFresh;
    return *fetched;
  }
  if (cached) {
    CountStaleServe(UpstreamKind::kTraffic);
    if (fetch) *fetch = EisFetch::kStale;
    return *cached;
  }
  CountClimatologicalServe(UpstreamKind::kTraffic);
  if (fetch) *fetch = EisFetch::kClimatological;
  return ClimatologicalTraffic();
}

void ResilientInformationServer::AttachMetrics(obs::MetricsRegistry* registry) {
  InformationServer::AttachMetrics(registry);
  if (injector_) injector_->AttachMetrics(registry);
  for (UpstreamKind kind : kAllUpstreamKinds) {
    UpstreamState& st = StateFor(kind);
    if (!registry) {
      st.retries_mirror = nullptr;
      st.backoff_ms_mirror = nullptr;
      st.stale_mirror = nullptr;
      st.climatological_mirror = nullptr;
      st.rejected_mirror = nullptr;
      st.breaker->AttachMetrics(nullptr, nullptr);
      continue;
    }
    std::string prefix = "resilience." + std::string(UpstreamKindName(kind));
    st.retries_mirror = registry->GetCounter(prefix + ".retries", "retries");
    st.backoff_ms_mirror = registry->GetCounter(prefix + ".backoff_ms", "ms");
    st.stale_mirror =
        registry->GetCounter(prefix + ".stale_serves", "responses");
    st.climatological_mirror =
        registry->GetCounter(prefix + ".climatological_serves", "responses");
    st.rejected_mirror =
        registry->GetCounter(prefix + ".breaker_rejected", "requests");
    st.breaker->AttachMetrics(
        registry->GetGauge(prefix + ".breaker_state", "state"),
        registry->GetCounter(prefix + ".breaker_opens", "transitions"));
  }
}

UpstreamResilienceStats ResilientInformationServer::ResilienceSnapshot(
    UpstreamKind kind, SimTime now) const {
  const UpstreamState& st = upstreams_[static_cast<size_t>(kind)];
  UpstreamResilienceStats s;
  s.retries = st.retries.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(st.mu);
    s.backoff_ms = st.backoff_ms;
  }
  s.stale_serves = st.stale_serves.load(std::memory_order_relaxed);
  s.climatological_serves =
      st.climatological_serves.load(std::memory_order_relaxed);
  s.breaker_rejections =
      st.breaker_rejections.load(std::memory_order_relaxed);
  s.breaker_opens = st.breaker->opens();
  s.breaker_state = st.breaker->state(now);
  return s;
}

}  // namespace resilience
}  // namespace ecocharge
