#include "resilience/retry_policy.h"

#include <algorithm>

namespace ecocharge {
namespace resilience {

RetryPolicy::RetryPolicy(const RetryPolicyOptions& options)
    : options_(options) {
  options_.max_attempts = std::max(1, options_.max_attempts);
  options_.base_backoff_ms = std::max(0.0, options_.base_backoff_ms);
  options_.max_backoff_ms =
      std::max(options_.base_backoff_ms, options_.max_backoff_ms);
}

double RetryPolicy::NextBackoffMs(Attempt* attempt, Rng* rng,
                                  double remaining_budget_ms) const {
  ++attempt->tries;
  if (attempt->tries >= options_.max_attempts) return -1.0;
  // Decorrelated jitter: uniform(base, max(base, prev * 3)), capped. The
  // first retry draws from the degenerate [base, base] interval so the
  // sequence starts at the base and decorrelates from there.
  double lo = options_.base_backoff_ms;
  double hi = std::max(lo, attempt->prev_backoff_ms * 3.0);
  double backoff = hi > lo ? rng->NextDouble(lo, hi) : lo;
  backoff = std::min(backoff, options_.max_backoff_ms);
  attempt->prev_backoff_ms = backoff;
  if (backoff > remaining_budget_ms) return -1.0;
  return backoff;
}

}  // namespace resilience
}  // namespace ecocharge
