#include "resilience/fault_injector.h"

#include <algorithm>
#include <string>

#include "resilience/deadline.h"

namespace ecocharge {
namespace resilience {

namespace {

/// Derives statistically independent per-upstream seeds from one master
/// seed (SplitMix64 finalizer, same mixer the Rng seeds itself with).
uint64_t MixSeed(uint64_t seed, uint64_t kind) {
  uint64_t z = seed + (kind + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector::FaultInjector(EisSource* inner,
                             const FaultInjectorOptions& options)
    : inner_(inner), options_(options) {
  for (UpstreamKind kind : kAllUpstreamKinds) {
    kinds_[static_cast<size_t>(kind)].rng =
        Rng(MixSeed(options_.seed, static_cast<uint64_t>(kind)));
  }
}

Status FaultInjector::Decide(UpstreamKind kind, SimTime now) {
  const FaultProfile& profile = options_.ProfileFor(kind);
  KindState& state = kinds_[static_cast<size_t>(kind)];
  std::lock_guard<std::mutex> lock(state.mu);
  ++state.stats.calls;
  if (state.calls_mirror) state.calls_mirror->Add();
  if (!profile.Active()) return Status::OK();

  // Rate limit first: a limiter rejects before the provider does any work
  // (and without charging the provider's latency).
  if (profile.rate_limit > 0 && profile.rate_window_s > 0.0) {
    uint64_t window =
        static_cast<uint64_t>(std::max(0.0, now) / profile.rate_window_s);
    if (window != state.window_index) {
      state.window_index = window;
      state.window_calls = 0;
    }
    if (++state.window_calls > profile.rate_limit) {
      ++state.stats.rate_limited;
      if (state.rate_limited_mirror) state.rate_limited_mirror->Add();
      return Status::Unavailable(std::string(UpstreamKindName(kind)) +
                                 " upstream rate limited");
    }
  }

  ScopedRequestDeadline::Charge(profile.base_latency_ms);

  // Sustained stall burst: once entered, this and the following calls all
  // time out — the failure mode retries alone cannot ride out, which is
  // what the circuit breaker is for.
  bool stalled = false;
  if (state.stall_remaining > 0) {
    --state.stall_remaining;
    stalled = true;
  } else if (profile.stall_probability > 0.0 &&
             state.rng.NextBool(profile.stall_probability)) {
    state.stall_remaining = std::max(0, profile.stall_calls - 1);
    stalled = true;
  }
  if (stalled) {
    // A stalled call burns the full spike latency before failing.
    ScopedRequestDeadline::Charge(profile.spike_latency_ms);
    ++state.stats.stall_failures;
    if (state.stalls_mirror) state.stalls_mirror->Add();
    return Status::Unavailable(std::string(UpstreamKindName(kind)) +
                               " upstream stalled");
  }

  if (profile.spike_probability > 0.0 &&
      state.rng.NextBool(profile.spike_probability)) {
    ScopedRequestDeadline::Charge(
        state.rng.NextExponential(1.0 / std::max(1e-9,
                                                 profile.spike_latency_ms)));
    ++state.stats.spikes;
    if (state.spikes_mirror) state.spikes_mirror->Add();
  }

  if (profile.error_probability > 0.0 &&
      state.rng.NextBool(profile.error_probability)) {
    ++state.stats.errors;
    if (state.errors_mirror) state.errors_mirror->Add();
    return Status::Unavailable(std::string(UpstreamKindName(kind)) +
                               " upstream transient error");
  }
  return Status::OK();
}

Result<EnergyForecast> FaultInjector::FetchEnergyForecast(
    const EvCharger& charger, SimTime now, SimTime target, double window_s) {
  Status st = Decide(UpstreamKind::kWeather, now);
  if (!st.ok()) return st;
  return inner_->FetchEnergyForecast(charger, now, target, window_s);
}

Result<AvailabilityForecast> FaultInjector::FetchAvailability(
    const EvCharger& charger, SimTime now, SimTime target) {
  Status st = Decide(UpstreamKind::kAvailability, now);
  if (!st.ok()) return st;
  return inner_->FetchAvailability(charger, now, target);
}

Result<CongestionModel::Band> FaultInjector::FetchTraffic(RoadClass road_class,
                                                          SimTime now,
                                                          SimTime target) {
  Status st = Decide(UpstreamKind::kTraffic, now);
  if (!st.ok()) return st;
  return inner_->FetchTraffic(road_class, now, target);
}

FaultStats FaultInjector::Snapshot(UpstreamKind kind) const {
  const KindState& state = kinds_[static_cast<size_t>(kind)];
  std::lock_guard<std::mutex> lock(state.mu);
  return state.stats;
}

void FaultInjector::AttachMetrics(obs::MetricsRegistry* registry) {
  for (UpstreamKind kind : kAllUpstreamKinds) {
    KindState& state = kinds_[static_cast<size_t>(kind)];
    std::lock_guard<std::mutex> lock(state.mu);
    if (!registry) {
      state.calls_mirror = nullptr;
      state.errors_mirror = nullptr;
      state.stalls_mirror = nullptr;
      state.rate_limited_mirror = nullptr;
      state.spikes_mirror = nullptr;
      continue;
    }
    std::string prefix = "fault." + std::string(UpstreamKindName(kind));
    state.calls_mirror = registry->GetCounter(prefix + ".calls", "calls");
    state.errors_mirror = registry->GetCounter(prefix + ".errors", "calls");
    state.stalls_mirror = registry->GetCounter(prefix + ".stalls", "calls");
    state.rate_limited_mirror =
        registry->GetCounter(prefix + ".rate_limited", "calls");
    state.spikes_mirror = registry->GetCounter(prefix + ".spikes", "calls");
  }
}

}  // namespace resilience
}  // namespace ecocharge
