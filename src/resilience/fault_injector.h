#ifndef ECOCHARGE_RESILIENCE_FAULT_INJECTOR_H_
#define ECOCHARGE_RESILIENCE_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>

#include "common/rng.h"
#include "obs/metrics.h"
#include "resilience/eis_source.h"

namespace ecocharge {
namespace resilience {

/// \brief Failure modes of one upstream API. All probabilities are per
/// call; everything is driven by one seeded RNG stream per upstream, so a
/// whole fault schedule is reproducible bit-for-bit from the seed.
struct FaultProfile {
  /// Probability that a call fails with a transient kUnavailable.
  double error_probability = 0.0;

  /// Virtual latency charged to the request budget on every call (the
  /// provider's normal round trip).
  double base_latency_ms = 0.0;

  /// Probability of a latency spike; the spike adds an exponential draw
  /// with mean `spike_latency_ms` on top of the base latency.
  double spike_probability = 0.0;
  double spike_latency_ms = 250.0;

  /// Probability that a call starts a sustained stall burst: this call
  /// and the next `stall_calls - 1` calls all fail (after charging the
  /// spike latency — a stalled upstream burns the deadline, then dies).
  double stall_probability = 0.0;
  int stall_calls = 8;

  /// Token-bucket-style rate limit: at most `rate_limit` calls per
  /// `rate_window_s` of sim time; excess calls fail with kUnavailable.
  /// 0 disables the limit.
  uint32_t rate_limit = 0;
  double rate_window_s = 60.0;

  bool Active() const {
    return error_probability > 0.0 || base_latency_ms > 0.0 ||
           spike_probability > 0.0 || stall_probability > 0.0 ||
           rate_limit > 0;
  }
};

/// \brief Injector configuration: one profile per upstream plus the seed
/// that makes every schedule deterministic.
struct FaultInjectorOptions {
  uint64_t seed = 0x0FA117ULL;
  FaultProfile weather;
  FaultProfile availability;
  FaultProfile traffic;

  const FaultProfile& ProfileFor(UpstreamKind kind) const {
    switch (kind) {
      case UpstreamKind::kWeather:
        return weather;
      case UpstreamKind::kAvailability:
        return availability;
      case UpstreamKind::kTraffic:
        return traffic;
    }
    return weather;  // unreachable
  }

  /// Convenience: the same profile on all three upstreams.
  static FaultInjectorOptions Uniform(const FaultProfile& profile,
                                      uint64_t seed = 0x0FA117ULL) {
    FaultInjectorOptions o;
    o.seed = seed;
    o.weather = o.availability = o.traffic = profile;
    return o;
  }
};

/// \brief Aggregate injection accounting for one upstream (plain values).
struct FaultStats {
  uint64_t calls = 0;         ///< Fetch* invocations seen
  uint64_t errors = 0;        ///< transient kUnavailable injections
  uint64_t stall_failures = 0;  ///< failures served during stall bursts
  uint64_t rate_limited = 0;  ///< rejections from the rate-limit window
  uint64_t spikes = 0;        ///< latency spikes charged

  uint64_t Failures() const { return errors + stall_failures + rate_limited; }
};

/// \brief Deterministic fault-injecting decorator over any EisSource.
///
/// Sits where a flaky network would: between the Information Server and
/// its providers. Each upstream kind draws faults from its own
/// SplitMix-derived RNG stream, so (a) one seed reproduces the full fault
/// schedule and (b) enabling faults on one upstream does not perturb the
/// schedule of another. Latency is virtual — charged to the active
/// ScopedRequestDeadline instead of slept — so fault tests are bit-stable
/// and sleep-free.
///
/// Thread safety: per-upstream state (RNG, stall/rate-limit windows,
/// counters) is guarded by a per-upstream mutex; concurrent calls to
/// different upstreams never contend.
class FaultInjector : public EisSource {
 public:
  /// `inner` is not owned and must outlive the injector.
  FaultInjector(EisSource* inner, const FaultInjectorOptions& options);

  Result<EnergyForecast> FetchEnergyForecast(const EvCharger& charger,
                                             SimTime now, SimTime target,
                                             double window_s) override;
  Result<AvailabilityForecast> FetchAvailability(const EvCharger& charger,
                                                 SimTime now,
                                                 SimTime target) override;
  Result<CongestionModel::Band> FetchTraffic(RoadClass road_class, SimTime now,
                                             SimTime target) override;

  /// Injection accounting for one upstream; safe under traffic.
  FaultStats Snapshot(UpstreamKind kind) const;

  /// Wires `fault.<kind>.{calls,errors,stalls,rate_limited,spikes}`
  /// counters onto `registry`; null detaches. Wire before traffic.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct KindState {
    mutable std::mutex mu;
    Rng rng{1};
    int stall_remaining = 0;      ///< calls left in the active stall burst
    uint64_t window_index = 0;    ///< rate-limit window currently counted
    uint32_t window_calls = 0;    ///< calls admitted in that window
    FaultStats stats;
    obs::Counter* calls_mirror = nullptr;
    obs::Counter* errors_mirror = nullptr;
    obs::Counter* stalls_mirror = nullptr;
    obs::Counter* rate_limited_mirror = nullptr;
    obs::Counter* spikes_mirror = nullptr;
  };

  /// Rolls the dice for one call: charges latency and returns OK (forward
  /// to the inner source) or the injected failure.
  Status Decide(UpstreamKind kind, SimTime now);

  EisSource* inner_;
  FaultInjectorOptions options_;
  KindState kinds_[kNumUpstreamKinds];
};

}  // namespace resilience
}  // namespace ecocharge

#endif  // ECOCHARGE_RESILIENCE_FAULT_INJECTOR_H_
