#ifndef ECOCHARGE_RESILIENCE_DEADLINE_H_
#define ECOCHARGE_RESILIENCE_DEADLINE_H_

#include <limits>

namespace ecocharge {
namespace resilience {

/// \brief Per-request virtual time budget, in milliseconds.
///
/// The resilience layer never sleeps: injected upstream latency and retry
/// backoff are *charged* against this budget arithmetically, so tests and
/// benches are sleep-free and bit-stable while still exercising deadline
/// semantics. The budget is the serving runtime's request deadline — the
/// OfferingServer opens a ScopedRequestDeadline before handling a request
/// and every EIS fetch underneath it draws from the same pot, which is
/// exactly how a production deadline propagates through an RPC stack.
///
/// The active budget is a thread-local slot: one serving worker handles
/// one request at a time, so scoping the deadline to the worker thread
/// propagates it through the estimator and the EIS without threading a
/// parameter through every signature on the hot path. When no deadline is
/// active, RemainingMs() is +infinity and Charge() is a no-op — library
/// code can charge unconditionally.
class ScopedRequestDeadline {
 public:
  /// Activates a budget of `budget_ms` on this thread. Nests: the previous
  /// scope (if any) is restored on destruction; charges inside the inner
  /// scope also count against the outer one, like nested RPC deadlines.
  explicit ScopedRequestDeadline(double budget_ms);
  ~ScopedRequestDeadline();

  ScopedRequestDeadline(const ScopedRequestDeadline&) = delete;
  ScopedRequestDeadline& operator=(const ScopedRequestDeadline&) = delete;

  /// Budget left on this thread's innermost active deadline; +infinity
  /// when none is active.
  static double RemainingMs();

  /// Consumes `ms` of the active budget (saturating at zero remaining);
  /// no-op when no deadline is active or `ms` <= 0.
  static void Charge(double ms);

  /// Virtual milliseconds consumed so far in this scope (latency spikes,
  /// backoff); what a latency histogram of the virtual clock would see.
  double spent_ms() const { return spent_ms_; }

 private:
  double budget_ms_;
  double spent_ms_ = 0.0;
  ScopedRequestDeadline* outer_;  ///< restored on destruction
};

}  // namespace resilience
}  // namespace ecocharge

#endif  // ECOCHARGE_RESILIENCE_DEADLINE_H_
