#ifndef ECOCHARGE_RESILIENCE_CIRCUIT_BREAKER_H_
#define ECOCHARGE_RESILIENCE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <string_view>

#include "common/simtime.h"
#include "obs/metrics.h"

namespace ecocharge {
namespace resilience {

/// \brief Circuit breaker state, exported as a gauge (the numeric values
/// are the statsz encoding: 0 healthy, rising with severity).
enum class BreakerState : uint8_t {
  kClosed = 0,    ///< healthy: every request passes
  kHalfOpen = 1,  ///< probing: a bounded number of trial requests pass
  kOpen = 2,      ///< tripped: requests short-circuit without an upstream call
};

std::string_view BreakerStateName(BreakerState state);

/// \brief Knobs of one per-upstream circuit breaker.
struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;

  /// Sim-time the breaker stays open before admitting probe requests.
  double open_duration_s = 5.0 * kSecondsPerMinute;

  /// Probe requests admitted per half-open episode. A success closes the
  /// breaker; a failure re-opens it for another open_duration_s.
  int half_open_probes = 1;
};

/// \brief Classic closed / open / half-open circuit breaker over sim time.
///
/// Protects a failing upstream from retry storms: after
/// `failure_threshold` consecutive failures the breaker opens and callers
/// short-circuit to the degradation ladder (stale cache, climatological
/// defaults) without paying the upstream's failure latency. After
/// `open_duration_s` the breaker admits a bounded number of probes; one
/// probe success closes it, a probe failure re-opens it.
///
/// The clock is simulation time passed by the caller, so breaker episodes
/// are deterministic and tests never sleep. Thread safety: all state sits
/// behind one mutex — the breaker is only consulted on the cache-miss
/// path, where an upstream round-trip (or its injected failure) dwarfs an
/// uncontended lock.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerOptions& options = {});

  /// True when a request may go upstream at `now`. May transition
  /// open -> half-open (and consumes one probe slot when half-open).
  bool Allow(SimTime now);

  /// Reports the outcome of an admitted request. A success closes the
  /// breaker from any state; a failure counts toward the threshold
  /// (closed) or re-opens immediately (half-open).
  void RecordSuccess(SimTime now);
  void RecordFailure(SimTime now);

  /// Current state as of `now` (open reports half-open once the cooldown
  /// has elapsed, matching what Allow would do).
  BreakerState state(SimTime now) const;

  /// Times the breaker tripped open (including half-open re-opens).
  uint64_t opens() const;

  /// Mirrors state transitions onto a registry-owned gauge (numeric
  /// BreakerState) and open-transitions onto a counter; null detaches.
  /// Wire before traffic starts; instruments must outlive their use.
  void AttachMetrics(obs::Gauge* state_gauge, obs::Counter* opens_counter);

 private:
  void OpenLocked(SimTime now);
  void SetStateLocked(BreakerState next);

  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probes_granted_ = 0;     ///< probes admitted this half-open episode
  SimTime opened_at_ = 0.0;    ///< when the breaker last tripped
  uint64_t opens_ = 0;
  obs::Gauge* state_gauge_ = nullptr;
  obs::Counter* opens_counter_ = nullptr;
};

}  // namespace resilience
}  // namespace ecocharge

#endif  // ECOCHARGE_RESILIENCE_CIRCUIT_BREAKER_H_
