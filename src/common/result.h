#ifndef ECOCHARGE_COMMON_RESULT_H_
#define ECOCHARGE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace ecocharge {

/// \brief Either a value of type T or an error Status (Arrow-style).
///
/// A Result is never empty: it holds exactly one of a T or a non-OK Status.
/// Constructing a Result from an OK status is a programming error and is
/// converted to an Internal error so misuse is observable rather than UB.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status: OK when a value is present, the stored error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Accesses the value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  /// Moves the value out. Precondition: ok().
  T MoveValueUnsafe() { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// \brief Assigns the value of a Result expression to `lhs`, or returns its
/// error from the calling function.
#define ECOCHARGE_ASSIGN_OR_RETURN(lhs, rexpr)               \
  ECOCHARGE_ASSIGN_OR_RETURN_IMPL_(                          \
      ECOCHARGE_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define ECOCHARGE_CONCAT_INNER_(a, b) a##b
#define ECOCHARGE_CONCAT_(a, b) ECOCHARGE_CONCAT_INNER_(a, b)
#define ECOCHARGE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                     \
  if (!tmp.ok()) return tmp.status();                     \
  lhs = std::move(tmp).value()

}  // namespace ecocharge

#endif  // ECOCHARGE_COMMON_RESULT_H_
