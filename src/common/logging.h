#ifndef ECOCHARGE_COMMON_LOGGING_H_
#define ECOCHARGE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ecocharge {

/// \brief Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// \brief Minimal leveled logger writing to stderr.
///
/// The global threshold defaults to kInfo; benchmarks raise it to kWarning
/// so that timing loops are not perturbed by I/O.
class Logger {
 public:
  /// Returns the process-wide minimum level that is emitted.
  static LogLevel threshold();

  /// Sets the process-wide minimum level.
  static void set_threshold(LogLevel level);

  /// Emits one log line (used by the ECOCHARGE_LOG macro).
  static void Emit(LogLevel level, const char* file, int line,
                   const std::string& message);
};

/// \brief Internal stream collector for one log statement.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    Logger::Emit(level_, file_, line_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

#define ECOCHARGE_LOG(level)                                                 \
  ::ecocharge::LogMessage(::ecocharge::LogLevel::k##level, __FILE__,         \
                          __LINE__)                                          \
      .stream()

/// \brief Checks an invariant; logs and aborts on failure (all builds).
#define ECOCHARGE_CHECK(cond)                                 \
  if (!(cond))                                                \
  ECOCHARGE_LOG(Fatal) << "Check failed: " #cond " "

}  // namespace ecocharge

#endif  // ECOCHARGE_COMMON_LOGGING_H_
