#include "common/table_writer.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace ecocharge {

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Status TableWriter::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    return Status::InvalidArgument("row has " + std::to_string(cells.size()) +
                                   " cells, expected " +
                                   std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

std::string TableWriter::Fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void TableWriter::RenderText(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void TableWriter::RenderCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << CsvEscape(row[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

Status TableWriter::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  RenderCsv(out);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace ecocharge
