#ifndef ECOCHARGE_COMMON_SIMTIME_H_
#define ECOCHARGE_COMMON_SIMTIME_H_

#include <cmath>

namespace ecocharge {

/// \brief Simulation time, in seconds since the simulation epoch.
///
/// The epoch is Monday 00:00 local time on day-of-year `kEpochDayOfYear`
/// (mid-June, so solar curves are summer-like by default; dataset
/// synthesizers override the season where relevant).
using SimTime = double;

inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;
inline constexpr int kEpochDayOfYear = 167;  // June 16

/// Hour of day in [0, 24).
inline double HourOfDay(SimTime t) {
  double day_seconds = std::fmod(t, kSecondsPerDay);
  if (day_seconds < 0.0) day_seconds += kSecondsPerDay;
  return day_seconds / kSecondsPerHour;
}

/// Day of week in [0, 7): 0 = Monday.
inline int DayOfWeek(SimTime t) {
  double week_seconds = std::fmod(t, kSecondsPerWeek);
  if (week_seconds < 0.0) week_seconds += kSecondsPerWeek;
  return static_cast<int>(week_seconds / kSecondsPerDay);
}

/// Day of year in [1, 365], advancing from the epoch day.
inline int DayOfYear(SimTime t) {
  int days = static_cast<int>(std::floor(t / kSecondsPerDay));
  int doy = (kEpochDayOfYear - 1 + days) % 365;
  if (doy < 0) doy += 365;
  return doy + 1;
}

/// Hour-of-week bucket in [0, 168); the granularity of popular-times
/// histograms.
inline int HourOfWeek(SimTime t) {
  return DayOfWeek(t) * 24 + static_cast<int>(HourOfDay(t));
}

}  // namespace ecocharge

#endif  // ECOCHARGE_COMMON_SIMTIME_H_
