#ifndef ECOCHARGE_COMMON_STATUS_H_
#define ECOCHARGE_COMMON_STATUS_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ecocharge {

/// \brief Error categories used across the library.
///
/// Mirrors the RocksDB/Arrow convention: library functions that can fail
/// return a Status (or Result<T>) instead of throwing, so errors can cross
/// the public API boundary without exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kIOError,
  kInternal,
  kUnavailable,  ///< transient overload: retry later (admission control)
};

/// \brief Every StatusCode value, in declaration order — the source of
/// truth for exhaustive iteration. A new enumerator MUST be added here
/// (and given a name in StatusCodeToString): status_test round-trips
/// every listed code and asserts none resolves to the "Unknown"
/// fallback, so forgetting either site fails the build's tests instead
/// of silently shipping an unnamed code.
inline constexpr StatusCode kAllStatusCodes[] = {
    StatusCode::kOk,
    StatusCode::kInvalidArgument,
    StatusCode::kNotFound,
    StatusCode::kOutOfRange,
    StatusCode::kAlreadyExists,
    StatusCode::kFailedPrecondition,
    StatusCode::kUnimplemented,
    StatusCode::kIOError,
    StatusCode::kInternal,
    StatusCode::kUnavailable,
};
inline constexpr size_t kNumStatusCodes =
    sizeof(kAllStatusCodes) / sizeof(kAllStatusCodes[0]);

/// \brief Returns a short human-readable name for a status code, or
/// "Unknown" for a value outside the enum (never for a listed code).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Inverse of StatusCodeToString: resolves a name back to its
/// code. Returns false (leaving `*code` untouched) for unknown names,
/// including "Unknown" itself.
bool StatusCodeFromString(std::string_view name, StatusCode* code);

/// \brief Outcome of an operation: a code plus an optional message.
///
/// The OK status carries no allocation; error statuses carry a message.
/// Statuses are cheap to copy and move and are totally ordered only on
/// ok()/!ok() — callers should branch on ok() and propagate otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Propagates a non-OK status out of the calling function.
#define ECOCHARGE_RETURN_NOT_OK(expr)              \
  do {                                             \
    ::ecocharge::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace ecocharge

#endif  // ECOCHARGE_COMMON_STATUS_H_
