#ifndef ECOCHARGE_COMMON_STOPWATCH_H_
#define ECOCHARGE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace ecocharge {

/// \brief Monotonic wall-clock stopwatch used for the F_t metric.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_COMMON_STOPWATCH_H_
