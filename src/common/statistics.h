#ifndef ECOCHARGE_COMMON_STATISTICS_H_
#define ECOCHARGE_COMMON_STATISTICS_H_

#include <cmath>
#include <cstddef>

namespace ecocharge {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used for the paper's "mean and standard deviation ... based on
/// approximately ten repetitions" reporting convention.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Sample (Bessel-corrected, n - 1) variance; 0 for fewer than two
  /// samples. Matches stddev(): stddev() == sqrt(variance()) always.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  /// Population (divide-by-n) variance, for callers treating the data as
  /// the full population rather than a sample.
  double population_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  /// Sample (Bessel-corrected) standard deviation, sqrt(variance()).
  double stddev() const { return std::sqrt(variance()); }

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    double delta = other.mean_ - mean_;
    size_t total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    n_ = total;
  }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_COMMON_STATISTICS_H_
