#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace ecocharge {

namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

LogLevel Logger::threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void Logger::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::Emit(LogLevel level, const char* file, int line,
                  const std::string& message) {
  if (level < threshold() && level != LogLevel::kFatal) return;
  std::cerr << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] " << message << "\n";
}

}  // namespace ecocharge
