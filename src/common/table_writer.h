#ifndef ECOCHARGE_COMMON_TABLE_WRITER_H_
#define ECOCHARGE_COMMON_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace ecocharge {

/// \brief Collects rows and renders them as an aligned ASCII table and/or
/// CSV. Used by the benchmark harness to print paper-style result tables.
class TableWriter {
 public:
  /// Creates a writer with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  Status AddRow(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` decimals.
  static std::string Fmt(double value, int precision = 2);

  /// Renders an aligned, pipe-separated table.
  void RenderText(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void RenderCsv(std::ostream& os) const;

  /// Writes CSV to a file path; parent directory must exist.
  Status WriteCsvFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_COMMON_TABLE_WRITER_H_
