#include "common/status.h"

namespace ecocharge {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool StatusCodeFromString(std::string_view name, StatusCode* code) {
  for (StatusCode candidate : kAllStatusCodes) {
    if (StatusCodeToString(candidate) == name) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ecocharge
