#ifndef ECOCHARGE_COMMON_RNG_H_
#define ECOCHARGE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ecocharge {

/// \brief Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Every stochastic component in the library takes an explicit seed so that
/// the full benchmark suite is reproducible bit-for-bit. The standard
/// <random> engines are avoided because their distributions are not
/// guaranteed to produce identical streams across standard libraries.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p = 0.5);

  /// Exponential variate with the given rate (lambda > 0).
  double NextExponential(double rate);

  /// Returns an index in [0, weights.size()) drawn proportionally to
  /// `weights` (all weights must be >= 0 and at least one > 0).
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// entity (charger, vehicle, ...) its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_COMMON_RNG_H_
