#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace ecocharge {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless rejection method keeps the distribution
  // exactly uniform without modulo bias.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (~bound + 1) % bound;
    while (lo < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double rate) {
  assert(rate > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / rate;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // numeric edge: fall back to last bucket
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace ecocharge
