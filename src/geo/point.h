#ifndef ECOCHARGE_GEO_POINT_H_
#define ECOCHARGE_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace ecocharge {

/// \brief A point in the library's planar working frame, in meters.
///
/// All spatial computation (indexes, shortest paths, derouting) happens in a
/// locally projected Cartesian frame; geo::Projection converts to and from
/// WGS-84 latitude/longitude at the boundary.
struct Point {
  double x = 0.0;  ///< easting, meters
  double y = 0.0;  ///< northing, meters

  constexpr Point() = default;
  constexpr Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  constexpr Point operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Point& o) const {
    return x == o.x && y == o.y;
  }

  /// Dot product with another point treated as a vector.
  constexpr double Dot(const Point& o) const { return x * o.x + y * o.y; }

  /// Z-component of the 2D cross product.
  constexpr double Cross(const Point& o) const { return x * o.y - y * o.x; }

  /// Euclidean norm.
  double Norm() const { return std::hypot(x, y); }

  /// Squared Euclidean norm (avoids the sqrt for comparisons).
  constexpr double NormSquared() const { return x * x + y * y; }
};

/// Euclidean distance between two points, meters.
inline double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Squared Euclidean distance; cheaper, preserves ordering.
inline constexpr double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

}  // namespace ecocharge

#endif  // ECOCHARGE_GEO_POINT_H_
