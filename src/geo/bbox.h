#ifndef ECOCHARGE_GEO_BBOX_H_
#define ECOCHARGE_GEO_BBOX_H_

#include <algorithm>
#include <limits>

#include "geo/point.h"

namespace ecocharge {

/// \brief Axis-aligned rectangle; the unit of space partitioning for the
/// quadtree and grid indexes.
struct BoundingBox {
  Point min{std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  Point max{-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};

  BoundingBox() = default;
  BoundingBox(const Point& min_in, const Point& max_in)
      : min(min_in), max(max_in) {}

  /// An empty box contains nothing and has negative extent.
  bool IsEmpty() const { return min.x > max.x || min.y > max.y; }

  double Width() const { return IsEmpty() ? 0.0 : max.x - min.x; }
  double Height() const { return IsEmpty() ? 0.0 : max.y - min.y; }
  Point Center() const { return (min + max) / 2.0; }

  /// True iff `p` lies inside or on the boundary.
  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// True iff the two boxes share any point.
  bool Intersects(const BoundingBox& o) const {
    return !IsEmpty() && !o.IsEmpty() && min.x <= o.max.x &&
           o.min.x <= max.x && min.y <= o.max.y && o.min.y <= max.y;
  }

  /// Grows the box (in place) to cover `p`.
  void Extend(const Point& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  /// Grows the box (in place) to cover another box.
  void Extend(const BoundingBox& o) {
    if (o.IsEmpty()) return;
    Extend(o.min);
    Extend(o.max);
  }

  /// Box expanded by `margin` on every side.
  BoundingBox Expanded(double margin) const {
    return BoundingBox{{min.x - margin, min.y - margin},
                       {max.x + margin, max.y + margin}};
  }

  /// Minimum distance from `p` to any point of the box (0 if inside).
  double DistanceTo(const Point& p) const {
    double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    return std::hypot(dx, dy);
  }

  /// Squared form of DistanceTo, for pruning without sqrt.
  double DistanceSquaredTo(const Point& p) const {
    double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    return dx * dx + dy * dy;
  }
};

}  // namespace ecocharge

#endif  // ECOCHARGE_GEO_BBOX_H_
