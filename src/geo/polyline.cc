#include "geo/polyline.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

Point ClosestPointOnSegment(const Point& a, const Point& b, const Point& p) {
  Point ab = b - a;
  double len2 = ab.NormSquared();
  if (len2 == 0.0) return a;
  double t = (p - a).Dot(ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return a + ab * t;
}

double DistanceToSegment(const Point& a, const Point& b, const Point& p) {
  return Distance(p, ClosestPointOnSegment(a, b, p));
}

Polyline::Polyline(std::vector<Point> points) : points_(std::move(points)) {
  cumulative_.reserve(points_.size());
  double acc = 0.0;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) acc += Distance(points_[i - 1], points_[i]);
    cumulative_.push_back(acc);
  }
}

void Polyline::Append(const Point& p) {
  double acc = cumulative_.empty()
                   ? 0.0
                   : cumulative_.back() + Distance(points_.back(), p);
  points_.push_back(p);
  cumulative_.push_back(acc);
}

double Polyline::Length() const {
  return cumulative_.empty() ? 0.0 : cumulative_.back();
}

double Polyline::LengthUpTo(size_t i) const {
  return cumulative_.empty() ? 0.0 : cumulative_[std::min(i, size() - 1)];
}

Point Polyline::At(double s) const {
  if (points_.empty()) return Point{};
  if (points_.size() == 1 || s <= 0.0) return points_.front();
  if (s >= Length()) return points_.back();
  // Binary search for the segment containing arc length s.
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  size_t i = static_cast<size_t>(it - cumulative_.begin());
  // i >= 1 because cumulative_[0] == 0 <= s.
  double seg_start = cumulative_[i - 1];
  double seg_len = cumulative_[i] - seg_start;
  double t = seg_len > 0.0 ? (s - seg_start) / seg_len : 0.0;
  return points_[i - 1] + (points_[i] - points_[i - 1]) * t;
}

double Polyline::DistanceTo(const Point& p) const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  if (points_.size() == 1) return Distance(points_[0], p);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < points_.size(); ++i) {
    best = std::min(best, DistanceToSegment(points_[i - 1], points_[i], p));
  }
  return best;
}

double Polyline::Project(const Point& p) const {
  if (points_.size() < 2) return 0.0;
  double best_dist = std::numeric_limits<double>::infinity();
  double best_s = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    Point c = ClosestPointOnSegment(points_[i - 1], points_[i], p);
    double d = Distance(p, c);
    if (d < best_dist) {
      best_dist = d;
      best_s = cumulative_[i - 1] + Distance(points_[i - 1], c);
    }
  }
  return best_s;
}

Polyline Polyline::Slice(double s0, double s1) const {
  Polyline out;
  if (points_.empty()) return out;
  s0 = std::clamp(s0, 0.0, Length());
  s1 = std::clamp(s1, s0, Length());
  out.Append(At(s0));
  for (size_t i = 0; i < points_.size(); ++i) {
    if (cumulative_[i] > s0 && cumulative_[i] < s1) out.Append(points_[i]);
  }
  Point end = At(s1);
  if (out.points_.back() != end || out.size() == 1) out.Append(end);
  return out;
}

BoundingBox Polyline::Bounds() const {
  BoundingBox box;
  for (const Point& p : points_) box.Extend(p);
  return box;
}

}  // namespace ecocharge
