#ifndef ECOCHARGE_GEO_POLYLINE_H_
#define ECOCHARGE_GEO_POLYLINE_H_

#include <cstddef>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"

namespace ecocharge {

/// Closest point on segment [a, b] to `p`.
Point ClosestPointOnSegment(const Point& a, const Point& b, const Point& p);

/// Distance from `p` to segment [a, b].
double DistanceToSegment(const Point& a, const Point& b, const Point& p);

/// \brief An ordered sequence of planar points with arc-length queries.
///
/// Scheduled trips P and their segments p_i are polylines; the CkNN-EC
/// processor walks them by arc length.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Point> points);

  /// Appends a vertex; updates cached cumulative lengths.
  void Append(const Point& p);

  const std::vector<Point>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Point& front() const { return points_.front(); }
  const Point& back() const { return points_.back(); }
  const Point& operator[](size_t i) const { return points_[i]; }

  /// Total arc length, meters.
  double Length() const;

  /// Cumulative arc length up to vertex `i` (0 for i == 0).
  double LengthUpTo(size_t i) const;

  /// Point at arc-length position `s` (clamped to [0, Length()]).
  Point At(double s) const;

  /// Minimum distance from `p` to the polyline.
  double DistanceTo(const Point& p) const;

  /// Arc-length position of the point on the polyline closest to `p`.
  double Project(const Point& p) const;

  /// Sub-polyline covering arc lengths [s0, s1] (clamped, s0 <= s1).
  Polyline Slice(double s0, double s1) const;

  /// Bounding box of all vertices.
  BoundingBox Bounds() const;

 private:
  std::vector<Point> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = length up to vertex i
};

}  // namespace ecocharge

#endif  // ECOCHARGE_GEO_POLYLINE_H_
