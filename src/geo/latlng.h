#ifndef ECOCHARGE_GEO_LATLNG_H_
#define ECOCHARGE_GEO_LATLNG_H_

#include <ostream>

#include "geo/point.h"

namespace ecocharge {

/// \brief WGS-84 geographic coordinate, degrees.
struct LatLng {
  double lat = 0.0;  ///< latitude, degrees, [-90, 90]
  double lng = 0.0;  ///< longitude, degrees, [-180, 180]

  constexpr LatLng() = default;
  constexpr LatLng(double lat_in, double lng_in) : lat(lat_in), lng(lng_in) {}
  constexpr bool operator==(const LatLng& o) const {
    return lat == o.lat && lng == o.lng;
  }
};

/// Mean Earth radius, meters (IUGG).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// Great-circle (haversine) distance between two coordinates, meters.
double HaversineMeters(const LatLng& a, const LatLng& b);

/// \brief Equirectangular projection anchored at a reference coordinate.
///
/// Accurate to well under 1% for the urban/regional extents the paper's
/// datasets cover; chosen over UTM for simplicity and invertibility.
class Projection {
 public:
  /// Creates a projection centered at `origin` (maps to Point{0,0}).
  explicit Projection(const LatLng& origin);

  /// Projects a geographic coordinate into the planar frame (meters).
  Point Forward(const LatLng& ll) const;

  /// Inverse projection back to geographic coordinates.
  LatLng Inverse(const Point& p) const;

  const LatLng& origin() const { return origin_; }

 private:
  LatLng origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lng_;
};

inline std::ostream& operator<<(std::ostream& os, const LatLng& ll) {
  return os << "(" << ll.lat << ", " << ll.lng << ")";
}

}  // namespace ecocharge

#endif  // ECOCHARGE_GEO_LATLNG_H_
