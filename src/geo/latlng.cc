#include "geo/latlng.h"

#include <cmath>

namespace ecocharge {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineMeters(const LatLng& a, const LatLng& b) {
  double phi1 = a.lat * kDegToRad;
  double phi2 = b.lat * kDegToRad;
  double dphi = (b.lat - a.lat) * kDegToRad;
  double dlmb = (b.lng - a.lng) * kDegToRad;
  double s = std::sin(dphi / 2);
  double t = std::sin(dlmb / 2);
  double h = s * s + std::cos(phi1) * std::cos(phi2) * t * t;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

Projection::Projection(const LatLng& origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kDegToRad;
  meters_per_deg_lng_ =
      kEarthRadiusMeters * kDegToRad * std::cos(origin.lat * kDegToRad);
}

Point Projection::Forward(const LatLng& ll) const {
  return Point{(ll.lng - origin_.lng) * meters_per_deg_lng_,
               (ll.lat - origin_.lat) * meters_per_deg_lat_};
}

LatLng Projection::Inverse(const Point& p) const {
  return LatLng{origin_.lat + p.y / meters_per_deg_lat_,
                origin_.lng + p.x / meters_per_deg_lng_};
}

}  // namespace ecocharge
