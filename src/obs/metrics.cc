#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace ecocharge {
namespace obs {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return std::max<size_t>(1, p);
}

size_t DefaultShards() {
  unsigned hw = std::thread::hardware_concurrency();
  return RoundUpPow2(std::min<size_t>(16, std::max<size_t>(1, hw)));
}

}  // namespace

Counter::Counter(size_t shards)
    : mask_(RoundUpPow2(shards) - 1),
      cells_(std::make_unique<Cell[]>(mask_ + 1)) {}

Histogram::Histogram(size_t shards)
    : mask_(RoundUpPow2(shards) - 1),
      shards_(std::make_unique<Shard[]>(mask_ + 1)) {}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  uint64_t min = std::numeric_limits<uint64_t>::max();
  for (size_t s = 0; s <= mask_; ++s) {
    const Shard& shard = shards_[s];
    for (size_t b = 0; b < kNumBuckets; ++b) {
      uint64_t n = shard.buckets[b].load(std::memory_order_relaxed);
      snap.buckets[b] += n;
      snap.count += n;
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
  }
  snap.min = snap.count ? min : 0;
  return snap;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  // Rank of the q-th sample, 1-based: the same convention as a sorted
  // vector's sorted[ceil(q*n) - 1] (clamped), so the bucket found here is
  // exactly the bucket that sample falls in.
  double scaled = q * static_cast<double>(count);
  uint64_t rank = static_cast<uint64_t>(std::ceil(scaled));
  rank = std::max<uint64_t>(1, std::min<uint64_t>(rank, count));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return Histogram::BucketLowerBound(b);
  }
  return Histogram::BucketLowerBound(buckets.size() - 1);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (buckets.empty()) buckets.assign(Histogram::kNumBuckets, 0);
  for (size_t b = 0; b < buckets.size() && b < other.buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  min = count ? std::min(min, other.min) : other.min;
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

MetricsRegistry::MetricsRegistry(size_t shards)
    : shards_(shards ? RoundUpPow2(shards) : DefaultShards()) {}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return counters_[it->second].metric.get();
  counter_index_[name] = counters_.size();
  counters_.push_back({name, unit, std::make_unique<Counter>(shards_)});
  return counters_.back().metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return gauges_[it->second].metric.get();
  gauge_index_[name] = gauges_.size();
  gauges_.push_back({name, unit, std::make_unique<Gauge>()});
  return gauges_.back().metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& unit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) {
    return histograms_[it->second].metric.get();
  }
  histogram_index_[name] = histograms_.size();
  histograms_.push_back({name, unit, std::make_unique<Histogram>(shards_)});
  return histograms_.back().metric.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_index_.find(name);
  return it == counter_index_.end() ? nullptr
                                    : counters_[it->second].metric.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? nullptr
                                  : gauges_[it->second].metric.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? nullptr
                                      : histograms_[it->second].metric.get();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& named : counters_) {
    out.emplace_back(named.name, named.metric->Value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& named : gauges_) {
    out.emplace_back(named.name, named.metric->Value());
  }
  return out;
}

std::vector<MetricsRegistry::NamedHistogram>
MetricsRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NamedHistogram> out;
  out.reserve(histograms_.size());
  for (const auto& named : histograms_) {
    out.push_back({named.name, named.unit, named.metric->Snapshot()});
  }
  return out;
}

}  // namespace obs
}  // namespace ecocharge
