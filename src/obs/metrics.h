#ifndef ECOCHARGE_OBS_METRICS_H_
#define ECOCHARGE_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ecocharge {
namespace obs {

/// \brief Stable per-thread slot used to spread hot-path metric updates
/// over per-worker shards (the same idea as the EIS cache sharding: two
/// threads contend only when their slots collapse onto the same shard).
/// Slots are assigned on a thread's first metric touch and never change.
inline size_t ThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// \brief Monotonically increasing event count, sharded per worker.
///
/// Add() is lock-free and allocation-free: one relaxed fetch_add on a
/// cache-line-padded cell chosen by the calling thread's slot, so
/// concurrent workers never ping-pong the same line. Value() sums the
/// shards (exact — increments are never lost, the triple-read is only
/// approximately simultaneous under traffic, like AtomicCacheStats).
class Counter {
 public:
  explicit Counter(size_t shards);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    cells_[ThreadSlot() & mask_].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (size_t i = 0; i <= mask_; ++i) {
      total += cells_[i].v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  size_t mask_;
  std::unique_ptr<Cell[]> cells_;
};

/// \brief An instantaneous signed level (queue depth, active clients).
///
/// Unlike counters, gauges go up and down; a single relaxed atomic cell
/// suffices because each reported level is written by few producers and
/// the value is advisory accounting, not synchronization.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Point-in-time view of one histogram (plain values; safe to keep
/// after the source registry is gone).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< 0 when count == 0
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  ///< one count per fixed bucket

  double Mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
  }

  /// Lower bound of the bucket holding the rank-ceil(q*count) sample
  /// (q in [0, 1]); 0 for an empty histogram. Matches a sorted-vector
  /// oracle up to the bucket's relative width (< 1/16 above 16).
  uint64_t ValueAtQuantile(double q) const;

  /// Accumulates `other` bucket-wise; addition, so merging any number of
  /// per-worker snapshots in any order yields the same result as
  /// recording every sample into a single shard.
  void Merge(const HistogramSnapshot& other);
};

/// \brief Fixed-bucket log-scale histogram for latency-style values.
///
/// Buckets are log-linear (HDR-style): values 0..15 get exact unit
/// buckets, then every power-of-two octave is split into 16 linear
/// sub-buckets, covering the full uint64 range in 976 buckets with a
/// worst-case relative bucket width of 1/16 (6.25%). Record() is
/// lock-free and allocation-free: a bucket fetch_add on the calling
/// thread's shard plus sum/min/max upkeep, all relaxed atomics.
class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 4;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 16
  static constexpr size_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;  // 976

  explicit Histogram(size_t shards);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    Shard& shard = shards_[ThreadSlot() & mask_];
    shard.buckets[BucketIndex(value)].fetch_add(1,
                                                std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = shard.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !shard.max.compare_exchange_weak(seen, value,
                                            std::memory_order_relaxed)) {
    }
    seen = shard.min.load(std::memory_order_relaxed);
    while (value < seen &&
           !shard.min.compare_exchange_weak(seen, value,
                                            std::memory_order_relaxed)) {
    }
  }

  /// Sums the per-worker shards into one value snapshot.
  HistogramSnapshot Snapshot() const;

  /// Bucket of `value`: identity below 16, then
  /// 16 + (octave - 4) * 16 + sub with sub the top-4-bits-after-leading.
  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    int octave = std::bit_width(value) - 1;  // >= kSubBucketBits
    size_t sub = static_cast<size_t>(
        (value >> (octave - static_cast<int>(kSubBucketBits))) - kSubBuckets);
    return kSubBuckets +
           (static_cast<size_t>(octave) - kSubBucketBits) * kSubBuckets + sub;
  }

  /// Smallest value mapping to `index` (the inverse of BucketIndex).
  static uint64_t BucketLowerBound(size_t index) {
    if (index < kSubBuckets) return index;
    size_t octave = kSubBucketBits + (index - kSubBuckets) / kSubBuckets;
    size_t sub = (index - kSubBuckets) % kSubBuckets;
    return static_cast<uint64_t>(kSubBuckets + sub)
           << (octave - kSubBucketBits);
  }

 private:
  struct Shard {
    Shard() {
      for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    }
    std::atomic<uint64_t> buckets[kNumBuckets];
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{std::numeric_limits<uint64_t>::max()};
    std::atomic<uint64_t> max{0};
  };
  size_t mask_;
  std::unique_ptr<Shard[]> shards_;
};

/// \brief Named metric store: counters, gauges, and latency histograms.
///
/// Registration (Get*) takes a mutex and may allocate — it is the cold
/// path, done once at wiring time; components keep the returned handle
/// and the hot path touches only the handle's relaxed atomics, with zero
/// heap allocations. Handles stay valid for the registry's lifetime
/// (metrics are never removed). Get* with an already-registered name
/// returns the same handle, so independent components naturally share a
/// metric by naming it identically.
class MetricsRegistry {
 public:
  /// \param shards per-metric worker shards (rounded up to a power of
  ///        two); 0 picks a default from the hardware concurrency.
  explicit MetricsRegistry(size_t shards = 0);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `unit` is a free-form tag exported with the metric (e.g. "ns",
  /// "requests"); the first registration of a name wins the unit.
  Counter* GetCounter(const std::string& name, const std::string& unit = "");
  Gauge* GetGauge(const std::string& name, const std::string& unit = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& unit = "");

  /// Lookup without registration; null when the name is unknown. The
  /// const forms let exporters and benches read a registry they do not
  /// own.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Value snapshots in registration order (the statsz export surface).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  struct NamedHistogram {
    std::string name;
    std::string unit;
    HistogramSnapshot snapshot;
  };
  std::vector<NamedHistogram> HistogramValues() const;

  size_t shards() const { return shards_; }

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::string unit;
    std::unique_ptr<T> metric;
  };

  size_t shards_;
  mutable std::mutex mu_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
  std::unordered_map<std::string, size_t> counter_index_;
  std::unordered_map<std::string, size_t> gauge_index_;
  std::unordered_map<std::string, size_t> histogram_index_;
};

/// \brief Records the wall-clock nanoseconds of a scope into a histogram.
///
/// A null histogram makes the timer a complete no-op (no clock reads), so
/// un-instrumented components pay one branch. Allocation-free.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (!histogram_) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    histogram_->Record(ns > 0 ? static_cast<uint64_t>(ns) : 0);
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace ecocharge

#endif  // ECOCHARGE_OBS_METRICS_H_
