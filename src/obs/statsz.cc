#include "obs/statsz.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <utility>
#include <vector>

namespace ecocharge {
namespace obs {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string FmtDouble(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  std::ostringstream os;
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os.precision(10);
    os << v;
  }
  return os.str();
}

/// Derived hit rates: every "X.hits" counter with a sibling "X.misses"
/// yields ("X.hit_rate", hits / (hits + misses)).
std::vector<std::pair<std::string, double>> DerivedRates(
    const std::vector<std::pair<std::string, uint64_t>>& counters) {
  std::vector<std::pair<std::string, double>> rates;
  for (const auto& [name, hits] : counters) {
    constexpr std::string_view kHits = ".hits";
    if (name.size() <= kHits.size() ||
        name.compare(name.size() - kHits.size(), kHits.size(), kHits) != 0) {
      continue;
    }
    std::string base = name.substr(0, name.size() - kHits.size());
    auto misses = std::find_if(counters.begin(), counters.end(),
                               [&](const auto& c) {
                                 return c.first == base + ".misses";
                               });
    if (misses == counters.end()) continue;
    uint64_t total = hits + misses->second;
    rates.emplace_back(base + ".hit_rate",
                       total ? static_cast<double>(hits) /
                                   static_cast<double>(total)
                             : 0.0);
  }
  return rates;
}

}  // namespace

std::string StatszText(const MetricsRegistry& registry) {
  std::ostringstream os;
  auto counters = registry.CounterValues();
  auto gauges = registry.GaugeValues();
  auto histograms = registry.HistogramValues();
  size_t width = 0;
  for (const auto& [name, v] : counters) width = std::max(width, name.size());
  for (const auto& [name, v] : gauges) width = std::max(width, name.size());
  for (const auto& h : histograms) width = std::max(width, h.name.size());

  for (const auto& [name, value] : counters) {
    os << "counter   " << std::left << std::setw(static_cast<int>(width))
       << name << "  " << value << "\n";
  }
  for (const auto& [name, rate] : DerivedRates(counters)) {
    os << "rate      " << std::left << std::setw(static_cast<int>(width))
       << name << "  " << FmtDouble(rate) << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "gauge     " << std::left << std::setw(static_cast<int>(width))
       << name << "  " << value << "\n";
  }
  for (const auto& h : histograms) {
    os << "histogram " << std::left << std::setw(static_cast<int>(width))
       << h.name << "  count=" << h.snapshot.count
       << " mean=" << FmtDouble(h.snapshot.Mean())
       << " p50=" << h.snapshot.ValueAtQuantile(0.50)
       << " p95=" << h.snapshot.ValueAtQuantile(0.95)
       << " p99=" << h.snapshot.ValueAtQuantile(0.99)
       << " max=" << h.snapshot.max;
    if (!h.unit.empty()) os << " unit=" << h.unit;
    os << "\n";
  }
  return os.str();
}

std::string StatszJson(const MetricsRegistry& registry) {
  std::ostringstream os;
  auto counters = registry.CounterValues();
  auto gauges = registry.GaugeValues();
  auto histograms = registry.HistogramValues();

  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ", " : "") << "\n    \"" << EscapeJson(counters[i].first)
       << "\": " << counters[i].second;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ", " : "") << "\n    \"" << EscapeJson(gauges[i].first)
       << "\": " << gauges[i].second;
  }
  auto rates = DerivedRates(counters);
  os << (gauges.empty() ? "" : "\n  ") << "},\n  \"rates\": {";
  for (size_t i = 0; i < rates.size(); ++i) {
    os << (i ? ", " : "") << "\n    \"" << EscapeJson(rates[i].first)
       << "\": " << FmtDouble(rates[i].second);
  }
  os << (rates.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    os << (i ? ", " : "") << "\n    \"" << EscapeJson(h.name) << "\": {"
       << "\"unit\": \"" << EscapeJson(h.unit) << "\""
       << ", \"count\": " << h.snapshot.count
       << ", \"mean\": " << FmtDouble(h.snapshot.Mean())
       << ", \"min\": " << h.snapshot.min
       << ", \"p50\": " << h.snapshot.ValueAtQuantile(0.50)
       << ", \"p95\": " << h.snapshot.ValueAtQuantile(0.95)
       << ", \"p99\": " << h.snapshot.ValueAtQuantile(0.99)
       << ", \"max\": " << h.snapshot.max << "}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace obs
}  // namespace ecocharge
