#ifndef ECOCHARGE_OBS_STATSZ_H_
#define ECOCHARGE_OBS_STATSZ_H_

#include <string>

#include "obs/metrics.h"

namespace ecocharge {
namespace obs {

/// \brief Human-readable statsz report: one aligned line per metric,
/// histograms expanded to count/mean/p50/p95/p99/max. Safe to call
/// concurrently with serving traffic (values are relaxed snapshots).
std::string StatszText(const MetricsRegistry& registry);

/// \brief Machine-readable statsz report:
///
/// ```json
/// {
///   "counters":   { "server.requests.served": 480, ... },
///   "gauges":     { "server.queue.depth": 0, ... },
///   "rates":      { "eis.weather.cache.hit_rate": 0.93, ... },
///   "histograms": { "server.request_latency_ns":
///                     {"unit": "ns", "count": 480, "mean": ...,
///                      "min": ..., "p50": ..., "p95": ..., "p99": ...,
///                      "max": ...}, ... }
/// }
/// ```
///
/// `rates` is derived: for every counter pair `X.hits` / `X.misses` a
/// `X.hit_rate` in [0, 1] is emitted (0 when there was no traffic).
std::string StatszJson(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace ecocharge

#endif  // ECOCHARGE_OBS_STATSZ_H_
