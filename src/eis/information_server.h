#ifndef ECOCHARGE_EIS_INFORMATION_SERVER_H_
#define ECOCHARGE_EIS_INFORMATION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "availability/availability_service.h"
#include "eis/ttl_cache.h"
#include "eis/world_revisions.h"
#include "energy/production.h"
#include "traffic/congestion.h"

namespace ecocharge {

/// \brief TTLs for the three upstream "APIs" (weather, busy timetables,
/// traffic), mirroring how often the real services refresh, plus the lock
/// granularity of the response caches.
struct EisOptions {
  double weather_ttl_s = 30.0 * kSecondsPerMinute;
  double availability_ttl_s = 15.0 * kSecondsPerMinute;
  double traffic_ttl_s = 5.0 * kSecondsPerMinute;

  /// Shards per TTL cache (rounded up to a power of two). One shard keeps
  /// the original single-lock behavior; the OfferingServer raises it so
  /// concurrent workers rarely contend on the same shard mutex.
  size_t cache_shards = 1;
};

/// \brief How a Get* response was produced — the rungs of the resilience
/// degradation ladder (DESIGN.md §11). The plain InformationServer always
/// reports kFresh; the ResilientInformationServer walks down the ladder
/// when upstreams fail.
enum class EisFetch : uint8_t {
  kFresh = 0,  ///< fresh cache hit or successful upstream fetch
  kStale = 1,  ///< upstream failed; cache entry served past its TTL
  kClimatological = 2,  ///< no cache entry; conservative widened default
};

/// \brief Aggregate upstream-call accounting (a plain value snapshot).
struct EisCallStats {
  uint64_t weather_api_calls = 0;
  uint64_t availability_api_calls = 0;
  uint64_t traffic_api_calls = 0;
  CacheStats weather_cache;
  CacheStats availability_cache;
  CacheStats traffic_cache;
};

/// \brief The EcoCharge Information Server (EIS).
///
/// Consolidates the external data sources behind per-source TTL caches so
/// clients (vehicles) never trigger redundant upstream requests — the
/// server half of the paper's architecture (Fig. 4). The underlying
/// simulated services are the ground-truth/forecast models; the EIS only
/// adds caching and accounting, exactly like the Laravel/Nginx deployment
/// it stands in for.
///
/// Thread safety: one InformationServer may be shared by all serving
/// workers. The caches are sharded with per-shard mutexes, call counters
/// are relaxed atomics, and the upstream services are either const and
/// pure in their inputs (AvailabilityService, CongestionModel) or
/// internally synchronized (SolarEnergyService via WeatherProcess). A
/// concurrent cache miss may issue a duplicate upstream call for the same
/// key — both calls return the identical pure-function response, so the
/// cache still changes cost, never answers.
class InformationServer {
 public:
  InformationServer(SolarEnergyService* energy,
                    const AvailabilityService* availability,
                    const CongestionModel* congestion,
                    const EisOptions& options = {});
  virtual ~InformationServer() = default;

  /// The Get* methods are the decoration seam of the resilience layer:
  /// ResilientInformationServer overrides them with a fetch path that can
  /// fail, retry, trip breakers, and degrade. When `fetch` is non-null it
  /// reports which rung of the degradation ladder produced the response —
  /// this base implementation cannot degrade and always reports kFresh.

  /// L source: forecast clean-energy band for a charger's arrival window.
  virtual EnergyForecast GetEnergyForecast(const EvCharger& charger,
                                           SimTime now, SimTime target,
                                           double window_s,
                                           EisFetch* fetch = nullptr);

  /// A source: availability band at the ETA.
  virtual AvailabilityForecast GetAvailability(const EvCharger& charger,
                                               SimTime now, SimTime target,
                                               EisFetch* fetch = nullptr);

  /// D source: congestion band for a road class.
  virtual CongestionModel::Band GetTraffic(RoadClass road_class, SimTime now,
                                           SimTime target,
                                           EisFetch* fetch = nullptr);

  /// Upstream call and cache counters, materialized from the atomics.
  /// Safe to call concurrently with serving traffic.
  EisCallStats Snapshot() const;

  /// Legacy name for Snapshot().
  EisCallStats Stats() const { return Snapshot(); }

  /// Wires the upstream-call counters and the three response caches onto
  /// `registry` under the `eis.{weather,availability,traffic}.*` names,
  /// so a statsz export reports live call volumes and hit rates. Wire
  /// once, before serving traffic starts; the registry must outlive this
  /// server's use of it. (Virtual so the resilient decorator can add its
  /// retry/breaker/degradation instruments in the same call.)
  virtual void AttachMetrics(obs::MetricsRegistry* registry);

 protected:
  /// Key/quantization helpers shared with the resilient subclass: both
  /// paths must map a request to the identical cache key and snapped
  /// upstream arguments, or the fault-free decorated path would diverge
  /// from the undecorated one.
  static uint64_t TimeBucket(SimTime t);
  static SimTime SnapToBucket(SimTime t);
  static uint64_t MixKey(uint64_t a, uint64_t b, uint64_t c);

  /// Cache keys for the three upstreams. Fold in the thread's active
  /// world revision (ScopedWorldRevisions) when one is installed: a
  /// published refresh bumps the revision, which re-keys the affected
  /// upstream's cache so stale responses become unreachable without a
  /// sweep. With no scope active the key is the classic (identity,
  /// target bucket, issue bucket) key, bit-unchanged.
  static uint64_t WeatherKey(const EvCharger& charger, SimTime now,
                             SimTime target);
  static uint64_t AvailabilityKey(const EvCharger& charger, SimTime now,
                                  SimTime target);
  static uint64_t TrafficKey(RoadClass road_class, SimTime now,
                             SimTime target);

  /// Bumps the per-upstream call counter (atomic + registry mirror).
  void CountWeatherCall();
  void CountAvailabilityCall();
  void CountTrafficCall();

  SolarEnergyService* energy_;
  const AvailabilityService* availability_;
  const CongestionModel* congestion_;

  // Keys quantize both the issue time and the target to the hour (the
  // forecast granularity) and fold in the charger/road-class identity, so a
  // cached response equals what the upstream service would return — the
  // cache changes cost, never answers.
  TtlCache<uint64_t, EnergyForecast> weather_cache_;
  TtlCache<uint64_t, AvailabilityForecast> availability_cache_;
  TtlCache<uint64_t, CongestionModel::Band> traffic_cache_;

 private:
  std::atomic<uint64_t> weather_calls_{0};
  std::atomic<uint64_t> availability_calls_{0};
  std::atomic<uint64_t> traffic_calls_{0};

  // Registry mirrors (null until AttachMetrics): the internal atomics
  // stay authoritative for Snapshot(); these feed the statsz export.
  obs::Counter* weather_calls_mirror_ = nullptr;
  obs::Counter* availability_calls_mirror_ = nullptr;
  obs::Counter* traffic_calls_mirror_ = nullptr;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_EIS_INFORMATION_SERVER_H_
