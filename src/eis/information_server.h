#ifndef ECOCHARGE_EIS_INFORMATION_SERVER_H_
#define ECOCHARGE_EIS_INFORMATION_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "availability/availability_service.h"
#include "eis/ttl_cache.h"
#include "energy/production.h"
#include "traffic/congestion.h"

namespace ecocharge {

/// \brief TTLs for the three upstream "APIs" (weather, busy timetables,
/// traffic), mirroring how often the real services refresh.
struct EisOptions {
  double weather_ttl_s = 30.0 * kSecondsPerMinute;
  double availability_ttl_s = 15.0 * kSecondsPerMinute;
  double traffic_ttl_s = 5.0 * kSecondsPerMinute;
};

/// \brief Aggregate upstream-call accounting.
struct EisCallStats {
  uint64_t weather_api_calls = 0;
  uint64_t availability_api_calls = 0;
  uint64_t traffic_api_calls = 0;
  CacheStats weather_cache;
  CacheStats availability_cache;
  CacheStats traffic_cache;
};

/// \brief The EcoCharge Information Server (EIS).
///
/// Consolidates the external data sources behind per-source TTL caches so
/// clients (vehicles) never trigger redundant upstream requests — the
/// server half of the paper's architecture (Fig. 4). The underlying
/// simulated services are the ground-truth/forecast models; the EIS only
/// adds caching and accounting, exactly like the Laravel/Nginx deployment
/// it stands in for.
class InformationServer {
 public:
  InformationServer(SolarEnergyService* energy,
                    const AvailabilityService* availability,
                    const CongestionModel* congestion,
                    const EisOptions& options = {});

  /// L source: forecast clean-energy band for a charger's arrival window.
  EnergyForecast GetEnergyForecast(const EvCharger& charger, SimTime now,
                                   SimTime target, double window_s);

  /// A source: availability band at the ETA.
  AvailabilityForecast GetAvailability(const EvCharger& charger, SimTime now,
                                       SimTime target);

  /// D source: congestion band for a road class.
  CongestionModel::Band GetTraffic(RoadClass road_class, SimTime now,
                                   SimTime target);

  /// Upstream call and cache counters.
  EisCallStats Stats() const;

 private:
  SolarEnergyService* energy_;
  const AvailabilityService* availability_;
  const CongestionModel* congestion_;

  // Keys quantize both the issue time and the target to the hour (the
  // forecast granularity) and fold in the charger/road-class identity, so a
  // cached response equals what the upstream service would return — the
  // cache changes cost, never answers.
  TtlCache<uint64_t, EnergyForecast> weather_cache_;
  TtlCache<uint64_t, AvailabilityForecast> availability_cache_;
  TtlCache<uint64_t, CongestionModel::Band> traffic_cache_;
  uint64_t weather_calls_ = 0;
  uint64_t availability_calls_ = 0;
  uint64_t traffic_calls_ = 0;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_EIS_INFORMATION_SERVER_H_
