#ifndef ECOCHARGE_EIS_WORLD_REVISIONS_H_
#define ECOCHARGE_EIS_WORLD_REVISIONS_H_

#include <cstdint>

namespace ecocharge {

/// \brief Per-upstream world-version counters.
///
/// Each counter names the generation of one upstream data set (weather,
/// busy timetables, traffic). The serving runtime bumps a counter when the
/// corresponding upstream publishes a refresh; the EIS folds the active
/// revisions into its cache keys, so a refresh makes every previously
/// cached response for that upstream unreachable — precise, key-level
/// invalidation with no lock sweep over the caches and no stall of
/// concurrent readers still pinned to the previous world version.
struct WorldRevisions {
  uint64_t weather = 0;
  uint64_t availability = 0;
  uint64_t traffic = 0;

  bool operator==(const WorldRevisions& o) const {
    return weather == o.weather && availability == o.availability &&
           traffic == o.traffic;
  }
  bool operator!=(const WorldRevisions& o) const { return !(*this == o); }
};

/// \brief Installs a set of world revisions on the current thread for the
/// duration of a request.
///
/// Same propagation pattern as resilience::ScopedRequestDeadline: one
/// serving worker handles one request at a time, so a thread-local slot
/// carries the pinned epoch's revisions through the estimator into the
/// EIS without threading a parameter through every hot-path signature.
/// When no scope is active, Current() is null and the EIS keys are
/// exactly the pre-fleet keys — stand-alone callers are bit-unchanged.
class ScopedWorldRevisions {
 public:
  explicit ScopedWorldRevisions(const WorldRevisions& revisions);
  ~ScopedWorldRevisions();

  ScopedWorldRevisions(const ScopedWorldRevisions&) = delete;
  ScopedWorldRevisions& operator=(const ScopedWorldRevisions&) = delete;

  /// The innermost active revisions on this thread, or null when none.
  static const WorldRevisions* Current();

 private:
  WorldRevisions revisions_;
  const ScopedWorldRevisions* outer_;  ///< restored on destruction
};

}  // namespace ecocharge

#endif  // ECOCHARGE_EIS_WORLD_REVISIONS_H_
