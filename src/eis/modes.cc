#include "eis/modes.h"

namespace ecocharge {

std::string_view ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kEmbedded:
      return "Mode 1 (embedded)";
    case ExecutionMode::kServer:
      return "Mode 2 (server)";
    case ExecutionMode::kEdge:
      return "Mode 3 (edge)";
  }
  return "?";
}

double ModeLatencyModel::EndToEndMs(ExecutionMode mode, double compute_ms,
                                    uint64_t api_batches) const {
  double fetch = static_cast<double>(api_batches) * per_api_batch_ms;
  switch (mode) {
    case ExecutionMode::kEmbedded:
      // Compute locally on the slow SoC; EC data arrives in batched,
      // background-synced EIS responses, so only the marginal fetches for
      // cache misses are on the critical path.
      return compute_ms * embedded_cpu_factor + fetch;
    case ExecutionMode::kServer:
      // One request/response carrying the Offering Table; upstream data is
      // already resident on the server.
      return compute_ms + server_rtt_ms;
    case ExecutionMode::kEdge:
      return compute_ms * edge_cpu_factor + fetch;
  }
  return compute_ms;
}

}  // namespace ecocharge
