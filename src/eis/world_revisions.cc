#include "eis/world_revisions.h"

namespace ecocharge {

namespace {

thread_local const ScopedWorldRevisions* g_active = nullptr;

}  // namespace

ScopedWorldRevisions::ScopedWorldRevisions(const WorldRevisions& revisions)
    : revisions_(revisions), outer_(g_active) {
  g_active = this;
}

ScopedWorldRevisions::~ScopedWorldRevisions() { g_active = outer_; }

const WorldRevisions* ScopedWorldRevisions::Current() {
  return g_active ? &g_active->revisions_ : nullptr;
}

}  // namespace ecocharge
