#include "eis/information_server.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace ecocharge {

namespace {

// Upstream APIs serve 15-minute buckets; requests are snapped to the
// bucket start so a response is a pure function of its cache key.
constexpr double kBucketSeconds = 15.0 * kSecondsPerMinute;

}  // namespace

uint64_t InformationServer::TimeBucket(SimTime t) {
  return static_cast<uint64_t>(std::max(0.0, t) / kBucketSeconds);
}

SimTime InformationServer::SnapToBucket(SimTime t) {
  return static_cast<double>(TimeBucket(t)) * kBucketSeconds;
}

uint64_t InformationServer::MixKey(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t h = a * 0x9E3779B97F4A7C15ULL ^ (b + 0xC2B2AE3D27D4EB4FULL);
  return (h ^ (h >> 29)) * 0xBF58476D1CE4E5B9ULL + c * 0x94D049BB133111EBULL;
}

namespace {

// Re-keys `key` under revision `rev` of its upstream data set. rev + 1
// keeps revision 0 distinct from the no-op fold of a missing scope only
// through the branch below — when no scope is installed the key passes
// through untouched, preserving the pre-fleet key space bit for bit.
uint64_t FoldRevision(uint64_t key, uint64_t rev) {
  uint64_t h = key ^ (rev + 1) * 0xD6E8FEB86659FD93ULL;
  h ^= h >> 32;
  return h * 0x2545F4914F6CDD1DULL;
}

}  // namespace

uint64_t InformationServer::WeatherKey(const EvCharger& charger, SimTime now,
                                       SimTime target) {
  uint64_t key = MixKey(charger.id + 1, TimeBucket(target), TimeBucket(now));
  if (const WorldRevisions* revs = ScopedWorldRevisions::Current()) {
    key = FoldRevision(key, revs->weather);
  }
  return key;
}

uint64_t InformationServer::AvailabilityKey(const EvCharger& charger,
                                            SimTime now, SimTime target) {
  uint64_t key = MixKey(charger.id + 1, TimeBucket(target), TimeBucket(now));
  if (const WorldRevisions* revs = ScopedWorldRevisions::Current()) {
    key = FoldRevision(key, revs->availability);
  }
  return key;
}

uint64_t InformationServer::TrafficKey(RoadClass road_class, SimTime now,
                                       SimTime target) {
  uint64_t key = MixKey(static_cast<uint64_t>(road_class) + 1,
                        TimeBucket(target), TimeBucket(now));
  if (const WorldRevisions* revs = ScopedWorldRevisions::Current()) {
    key = FoldRevision(key, revs->traffic);
  }
  return key;
}

void InformationServer::CountWeatherCall() {
  weather_calls_.fetch_add(1, std::memory_order_relaxed);
  if (weather_calls_mirror_) weather_calls_mirror_->Add();
}

void InformationServer::CountAvailabilityCall() {
  availability_calls_.fetch_add(1, std::memory_order_relaxed);
  if (availability_calls_mirror_) availability_calls_mirror_->Add();
}

void InformationServer::CountTrafficCall() {
  traffic_calls_.fetch_add(1, std::memory_order_relaxed);
  if (traffic_calls_mirror_) traffic_calls_mirror_->Add();
}

InformationServer::InformationServer(SolarEnergyService* energy,
                                     const AvailabilityService* availability,
                                     const CongestionModel* congestion,
                                     const EisOptions& options)
    : energy_(energy),
      availability_(availability),
      congestion_(congestion),
      weather_cache_(options.weather_ttl_s, 1 << 16, options.cache_shards),
      availability_cache_(options.availability_ttl_s, 1 << 16,
                          options.cache_shards),
      traffic_cache_(options.traffic_ttl_s, 1 << 16, options.cache_shards) {}

EnergyForecast InformationServer::GetEnergyForecast(const EvCharger& charger,
                                                    SimTime now,
                                                    SimTime target,
                                                    double window_s,
                                                    EisFetch* fetch) {
  if (fetch) *fetch = EisFetch::kFresh;
  uint64_t key = WeatherKey(charger, now, target);
  if (auto cached = weather_cache_.Get(key, now)) return *cached;
  CountWeatherCall();
  EnergyForecast f = energy_->ForecastEnergyKwh(charger, SnapToBucket(now),
                                                SnapToBucket(target),
                                                window_s);
  weather_cache_.Put(key, f, now);
  return f;
}

AvailabilityForecast InformationServer::GetAvailability(
    const EvCharger& charger, SimTime now, SimTime target, EisFetch* fetch) {
  if (fetch) *fetch = EisFetch::kFresh;
  uint64_t key = AvailabilityKey(charger, now, target);
  if (auto cached = availability_cache_.Get(key, now)) return *cached;
  CountAvailabilityCall();
  AvailabilityForecast f = availability_->Forecast(
      charger, SnapToBucket(now), SnapToBucket(target));
  availability_cache_.Put(key, f, now);
  return f;
}

CongestionModel::Band InformationServer::GetTraffic(RoadClass road_class,
                                                    SimTime now,
                                                    SimTime target,
                                                    EisFetch* fetch) {
  if (fetch) *fetch = EisFetch::kFresh;
  uint64_t key = TrafficKey(road_class, now, target);
  if (auto cached = traffic_cache_.Get(key, now)) return *cached;
  CountTrafficCall();
  CongestionModel::Band band = congestion_->ForecastSpeedFactor(
      road_class, SnapToBucket(now), SnapToBucket(target));
  traffic_cache_.Put(key, band, now);
  return band;
}

void InformationServer::AttachMetrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    weather_calls_mirror_ = nullptr;
    availability_calls_mirror_ = nullptr;
    traffic_calls_mirror_ = nullptr;
    weather_cache_.AttachCounters(nullptr, nullptr, nullptr);
    availability_cache_.AttachCounters(nullptr, nullptr, nullptr);
    traffic_cache_.AttachCounters(nullptr, nullptr, nullptr);
    return;
  }
  auto wire = [registry](const std::string& source, auto& cache,
                         obs::Counter** calls) {
    *calls = registry->GetCounter("eis." + source + ".calls", "calls");
    cache.AttachCounters(
        registry->GetCounter("eis." + source + ".cache.hits", "lookups"),
        registry->GetCounter("eis." + source + ".cache.misses", "lookups"),
        registry->GetCounter("eis." + source + ".cache.expirations",
                             "entries"));
  };
  wire("weather", weather_cache_, &weather_calls_mirror_);
  wire("availability", availability_cache_, &availability_calls_mirror_);
  wire("traffic", traffic_cache_, &traffic_calls_mirror_);
}

EisCallStats InformationServer::Snapshot() const {
  EisCallStats stats;
  stats.weather_api_calls = weather_calls_.load(std::memory_order_relaxed);
  stats.availability_api_calls =
      availability_calls_.load(std::memory_order_relaxed);
  stats.traffic_api_calls = traffic_calls_.load(std::memory_order_relaxed);
  stats.weather_cache = weather_cache_.stats();
  stats.availability_cache = availability_cache_.stats();
  stats.traffic_cache = traffic_cache_.stats();
  return stats;
}

}  // namespace ecocharge
