#ifndef ECOCHARGE_EIS_MODES_H_
#define ECOCHARGE_EIS_MODES_H_

#include <cstdint>
#include <string_view>

namespace ecocharge {

/// \brief Where EcoCharge executes (Section IV of the paper).
enum class ExecutionMode : uint8_t {
  kEmbedded = 1,  ///< Mode 1: vehicle's embedded OS (Android Automotive)
  kServer = 2,    ///< Mode 2: centralized on the EIS
  kEdge = 3,      ///< Mode 3: driver's phone (Android Auto / CarPlay)
};

std::string_view ExecutionModeName(ExecutionMode mode);

/// \brief End-to-end latency model for the three modes.
///
/// The computation itself is identical across modes; what differs is the
/// hardware speed and what must cross the network: Mode 2 ships one request
/// and one Offering Table per query (one RTT); Modes 1/3 compute locally on
/// slower CPUs against background-synced EIS data and only pay for the
/// batched fetches that miss their local caches. Defaults are drawn from
/// typical automotive SoC / phone / server performance ratios and cellular
/// RTTs. Small compute favors local execution; past the crossover
/// compute_ms > (rtt - fetch) / (cpu_factor - 1) the server mode wins.
struct ModeLatencyModel {
  double server_rtt_ms = 60.0;       ///< vehicle <-> EIS round trip
  double embedded_cpu_factor = 2.6;  ///< automotive SoC vs server CPU
  double edge_cpu_factor = 1.7;      ///< phone vs server CPU
  double per_api_batch_ms = 8.0;     ///< marginal cost of one batched fetch

  /// Total perceived latency for one Offering Table generation.
  /// \param compute_ms measured algorithm time on the reference (server) CPU
  /// \param api_batches upstream data fetches that missed local caches
  double EndToEndMs(ExecutionMode mode, double compute_ms,
                    uint64_t api_batches) const;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_EIS_MODES_H_
