#ifndef ECOCHARGE_EIS_TTL_CACHE_H_
#define ECOCHARGE_EIS_TTL_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/simtime.h"

namespace ecocharge {

/// \brief Hit/miss counters for one cache instance.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t expirations = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// \brief TTL cache over simulation time — the building block of the
/// EcoCharge Information Server's "Dynamic Caching" of API responses.
///
/// Entries expire `ttl_seconds` after insertion (the paper's caching
/// hypothesis: L, A, D responses naturally invalidate after a time point t).
/// A simple size cap evicts by sweeping expired entries first, then
/// clearing; the workloads here are small enough that LRU bookkeeping would
/// be overhead without benefit.
template <typename Key, typename Value>
class TtlCache {
 public:
  explicit TtlCache(double ttl_seconds, size_t max_entries = 1 << 16)
      : ttl_seconds_(ttl_seconds), max_entries_(max_entries) {}

  /// Returns the cached value if present and fresh at `now`.
  std::optional<Value> Get(const Key& key, SimTime now) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    if (now - it->second.inserted_at > ttl_seconds_) {
      ++stats_.expirations;
      ++stats_.misses;
      map_.erase(it);
      return std::nullopt;
    }
    ++stats_.hits;
    return it->second.value;
  }

  /// Inserts or refreshes an entry stamped at `now`.
  void Put(const Key& key, const Value& value, SimTime now) {
    if (map_.size() >= max_entries_) {
      SweepExpired(now);
      if (map_.size() >= max_entries_) map_.clear();
    }
    map_[key] = Entry{value, now};
  }

  /// Drops entries older than the TTL relative to `now`.
  void SweepExpired(SimTime now) {
    for (auto it = map_.begin(); it != map_.end();) {
      if (now - it->second.inserted_at > ttl_seconds_) {
        it = map_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void Clear() { map_.clear(); }
  size_t size() const { return map_.size(); }
  double ttl_seconds() const { return ttl_seconds_; }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    Value value;
    SimTime inserted_at;
  };
  double ttl_seconds_;
  size_t max_entries_;
  std::unordered_map<Key, Entry> map_;
  CacheStats stats_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_EIS_TTL_CACHE_H_
