#ifndef ECOCHARGE_EIS_TTL_CACHE_H_
#define ECOCHARGE_EIS_TTL_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/simtime.h"
#include "obs/metrics.h"

namespace ecocharge {

/// \brief Hit/miss counters for one cache instance (a plain value; see
/// AtomicCacheStats for the concurrent accumulator behind it).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t expirations = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// \brief Lock-free counter cell shared by all shards of one cache.
///
/// Counters are advisory accounting, not synchronization: relaxed atomics
/// are sufficient, and Snapshot() materializes a consistent-enough
/// CacheStats value for reporting (individual counters are exact; the
/// triple is only approximately simultaneous under concurrency, which is
/// all hit-rate reporting needs).
class AtomicCacheStats {
 public:
  void AddHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void AddMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void AddExpiration() {
    expirations_.fetch_add(1, std::memory_order_relaxed);
  }

  CacheStats Snapshot() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.expirations = expirations_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> expirations_{0};
};

/// \brief TTL cache over simulation time — the building block of the
/// EcoCharge Information Server's "Dynamic Caching" of API responses.
///
/// Entries expire `ttl_seconds` after insertion (the paper's caching
/// hypothesis: L, A, D responses naturally invalidate after a time point t).
///
/// Expiry boundary (pinned, uniform across every path): an entry inserted
/// at time t is fresh for any lookup with `now <= t + ttl` — the exact
/// deadline instant is a HIT — and expired strictly after. Get's freshness
/// check, Put's capacity sweep, and SweepExpired all use the same strict
/// `age > ttl` comparison, so which shard a key hashes to can never change
/// whether a boundary lookup hits (ttl_cache_test locks this in).
///
/// A simple size cap evicts by sweeping expired entries first, then
/// clearing; the workloads here are small enough that LRU bookkeeping would
/// be overhead without benefit.
///
/// Thread safety: the key space is split across `num_shards` shards (by
/// key hash), each guarded by its own mutex, so concurrent Get/Put traffic
/// from the serving workers only contends when two requests land on the
/// same shard. Freshness is checked under the shard lock — a Get can never
/// return an entry that was stale-beyond-TTL at its `now`, no matter how
/// Put/SweepExpired calls interleave. Counters are relaxed atomics. The
/// single-shard default keeps the single-threaded figure pipeline exactly
/// as before (sharding changes lock granularity, never answers).
template <typename Key, typename Value>
class TtlCache {
 public:
  explicit TtlCache(double ttl_seconds, size_t max_entries = 1 << 16,
                    size_t num_shards = 1)
      : ttl_seconds_(ttl_seconds),
        shards_(RoundUpPow2(num_shards)),
        shard_mask_(shards_.size() - 1),
        max_entries_per_shard_(
            std::max<size_t>(1, max_entries / shards_.size())) {}

  /// Returns the cached value if present and fresh at `now` (fresh means
  /// `now - inserted_at <= ttl`; the exact deadline is a hit).
  std::optional<Value> Get(const Key& key, SimTime now) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      stats_.AddMiss();
      if (misses_mirror_) misses_mirror_->Add();
      return std::nullopt;
    }
    if (now - it->second.inserted_at > ttl_seconds_) {
      stats_.AddExpiration();
      stats_.AddMiss();
      if (expirations_mirror_) expirations_mirror_->Add();
      if (misses_mirror_) misses_mirror_->Add();
      shard.map.erase(it);
      return std::nullopt;
    }
    stats_.AddHit();
    if (hits_mirror_) hits_mirror_->Add();
    return it->second.value;
  }

  /// Stale-tolerant lookup for the resilience layer's stale-while-
  /// revalidate rung: returns the entry even past its TTL (never erasing
  /// it), with `*fresh` reporting whether it was within TTL at `now`.
  /// Counter accounting matches Get exactly — fresh → hit; stale →
  /// expiration + miss; absent → miss — so a fault-free decorated path
  /// (which only takes the fresh branch) leaves stats() bit-identical to
  /// the undecorated one.
  std::optional<Value> GetAllowStale(const Key& key, SimTime now,
                                     bool* fresh) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      *fresh = false;
      stats_.AddMiss();
      if (misses_mirror_) misses_mirror_->Add();
      return std::nullopt;
    }
    *fresh = now - it->second.inserted_at <= ttl_seconds_;
    if (*fresh) {
      stats_.AddHit();
      if (hits_mirror_) hits_mirror_->Add();
    } else {
      stats_.AddExpiration();
      stats_.AddMiss();
      if (expirations_mirror_) expirations_mirror_->Add();
      if (misses_mirror_) misses_mirror_->Add();
    }
    return it->second.value;
  }

  /// Inserts or refreshes an entry stamped at `now`.
  void Put(const Key& key, const Value& value, SimTime now) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() >= max_entries_per_shard_) {
      SweepShardLocked(shard, now);
      if (shard.map.size() >= max_entries_per_shard_) shard.map.clear();
    }
    shard.map[key] = Entry{value, now};
  }

  /// Drops entries older than the TTL relative to `now`.
  void SweepExpired(SimTime now) {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      SweepShardLocked(shard, now);
    }
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  double ttl_seconds() const { return ttl_seconds_; }
  size_t num_shards() const { return shards_.size(); }

  /// Counter snapshot (by value; safe to call concurrently with traffic).
  CacheStats stats() const { return stats_.Snapshot(); }

  /// Mirrors every hit/miss/expiry onto registry-owned counters (in
  /// addition to the internal stats() accounting) so a statsz exporter
  /// sees live cache rates. Null pointers detach. Wire before serving
  /// traffic starts; the counters are not owned and must outlive the
  /// cache's use of them.
  void AttachCounters(obs::Counter* hits, obs::Counter* misses,
                      obs::Counter* expirations) {
    hits_mirror_ = hits;
    misses_mirror_ = misses;
    expirations_mirror_ = expirations;
  }

 private:
  struct Entry {
    Value value;
    SimTime inserted_at;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry> map;
  };

  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return std::max<size_t>(1, p);
  }

  Shard& ShardFor(const Key& key) {
    // Re-mix std::hash (identity for integers) so sequential keys spread.
    uint64_t h = static_cast<uint64_t>(std::hash<Key>{}(key));
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return shards_[h & shard_mask_];
  }

  void SweepShardLocked(Shard& shard, SimTime now) {
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (now - it->second.inserted_at > ttl_seconds_) {
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }

  double ttl_seconds_;
  std::vector<Shard> shards_;
  size_t shard_mask_;
  size_t max_entries_per_shard_;
  AtomicCacheStats stats_;
  obs::Counter* hits_mirror_ = nullptr;
  obs::Counter* misses_mirror_ = nullptr;
  obs::Counter* expirations_mirror_ = nullptr;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_EIS_TTL_CACHE_H_
