#ifndef ECOCHARGE_ENERGY_PRODUCTION_H_
#define ECOCHARGE_ENERGY_PRODUCTION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "energy/charger.h"
#include "energy/solar.h"
#include "energy/weather.h"

namespace ecocharge {

/// \brief A CDGS-style 15-minute PV production trace for one site.
///
/// "California Distributed Generation Statistics" publishes solar output in
/// 15-minute intervals; this reproduces that artifact from the clear-sky
/// model and a realized weather sequence.
class ProductionTrace {
 public:
  /// Slot duration matching CDGS.
  static constexpr double kSlotSeconds = 15.0 * kSecondsPerMinute;

  /// Generates the trace for [start, end) at 15-minute resolution.
  static Result<ProductionTrace> Generate(double pv_capacity_kw,
                                          const SolarModel& solar,
                                          WeatherProcess* weather,
                                          SimTime start, SimTime end);

  SimTime start() const { return start_; }
  size_t num_slots() const { return kwh_per_slot_.size(); }
  const std::vector<double>& kwh_per_slot() const { return kwh_per_slot_; }

  /// Produced energy in [t0, t1), kWh, with partial-slot proration.
  /// Times outside the trace contribute zero.
  double EnergyBetween(SimTime t0, SimTime t1) const;

 private:
  SimTime start_ = 0.0;
  std::vector<double> kwh_per_slot_;
};

/// \brief Min/max forecast band for energy over a window, kWh.
struct EnergyForecast {
  double min_kwh = 0.0;
  double max_kwh = 0.0;
};

/// \brief Answers "how much clean energy will charger b offer in my arrival
/// window?" — both the realized truth and the forecast interval that forms
/// the L estimated component.
///
/// All chargers share one regional weather process (the paper's forecast is
/// per-city); per-site variation comes from PV capacity and charger rate.
///
/// Thread safety: safe for concurrent calls. The solar model is const, the
/// forecaster is a pure function of (seed, now, target), and the weather
/// process — the only mutating state on this path — synchronizes its lazy
/// hour-sequence extension internally (see WeatherProcess).
class SolarEnergyService {
 public:
  SolarEnergyService(const SolarModel& solar, const ClimateParams& climate,
                     uint64_t seed);

  /// Realized deliverable energy for `charger` over [t0, t0 + window_s]:
  /// PV production capped by the charger's delivery rate.
  double ActualEnergyKwh(const EvCharger& charger, SimTime t0,
                         double window_s);

  /// Forecast interval issued at `now` for [target, target + window_s].
  EnergyForecast ForecastEnergyKwh(const EvCharger& charger, SimTime now,
                                   SimTime target, double window_s);

  /// Upper bound on deliverable energy for any charger in `fleet` over a
  /// window of `window_s` — the normalization constant for the L score
  /// ("environment's maximum charging level", eq. 1 context).
  double MaxDeliverableKwh(const std::vector<EvCharger>& fleet,
                           double window_s) const;

  WeatherProcess& weather() { return weather_; }
  const SolarModel& solar() const { return solar_; }

 private:
  double IntegrateKwh(const EvCharger& charger, SimTime t0, double window_s,
                      double transmission_override, bool use_realized);

  SolarModel solar_;
  WeatherProcess weather_;
  WeatherForecaster forecaster_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_ENERGY_PRODUCTION_H_
