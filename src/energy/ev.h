#ifndef ECOCHARGE_ENERGY_EV_H_
#define ECOCHARGE_ENERGY_EV_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "energy/charger.h"

namespace ecocharge {

/// \brief EV powertrain classes with typical pack sizes and consumption.
enum class EvClass : uint8_t {
  kCompact = 0,  ///< ~40 kWh pack, 15 kWh/100km
  kSedan = 1,    ///< ~70 kWh pack, 17 kWh/100km
  kSuv = 2,      ///< ~90 kWh pack, 21 kWh/100km
};

std::string_view EvClassName(EvClass c);

/// \brief Battery and consumption model of one vehicle m.
///
/// Charging power follows a simple CC/CV-style taper: full rate up to 80%
/// state of charge, then a linear ramp down to 15% of the rate at 100% —
/// the shape that makes hoarding-to-80% time-efficient in practice.
class EvModel {
 public:
  /// Canonical parameters for a vehicle class.
  static EvModel ForClass(EvClass ev_class);

  /// \param battery_kwh usable pack capacity (> 0)
  /// \param consumption_kwh_per_km driving consumption (> 0)
  /// \param max_charge_kw the vehicle-side AC/DC intake limit (> 0)
  EvModel(double battery_kwh, double consumption_kwh_per_km,
          double max_charge_kw);

  double battery_kwh() const { return battery_kwh_; }
  double consumption_kwh_per_km() const { return consumption_kwh_per_km_; }
  double max_charge_kw() const { return max_charge_kw_; }

  /// Energy to drive `meters`, kWh.
  double DriveEnergyKwh(double meters) const;

  /// Range available from `soc` (state of charge in [0, 1]), meters.
  double RangeMeters(double soc) const;

  /// Accepted charging power at `soc` when the charger offers
  /// `offered_kw`: min(offered, vehicle limit) x taper(soc).
  double AcceptedPowerKw(double soc, double offered_kw) const;

  /// \brief Result of simulating one charging session.
  struct ChargeResult {
    double end_soc = 0.0;       ///< state of charge when the session ends
    double energy_kwh = 0.0;    ///< energy delivered
    double duration_s = 0.0;    ///< time actually spent charging
  };

  /// Simulates charging from `start_soc` for up to `max_duration_s` at a
  /// constant offered power, integrating the taper in 1-minute steps.
  /// Stops early at 100% state of charge.
  ChargeResult SimulateCharge(double start_soc, double offered_kw,
                              double max_duration_s) const;

 private:
  double battery_kwh_;
  double consumption_kwh_per_km_;
  double max_charge_kw_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_ENERGY_EV_H_
