#ifndef ECOCHARGE_ENERGY_CHARGER_H_
#define ECOCHARGE_ENERGY_CHARGER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/road_network.h"

namespace ecocharge {

using ChargerId = uint32_t;

/// \brief Charger hardware tiers (PlugShare-style mix).
enum class ChargerType : uint8_t {
  kAc11 = 0,   ///< 11 kW AC
  kAc22 = 1,   ///< 22 kW AC
  kDc50 = 2,   ///< 50 kW DC
  kDc150 = 3,  ///< 150 kW DC fast
};

std::string_view ChargerTypeName(ChargerType type);

/// Maximum delivery rate of a charger type, kW.
double ChargerRateKw(ChargerType type);

/// \brief One public charging site linked to a renewable source.
struct EvCharger {
  ChargerId id = 0;
  NodeId node = 0;            ///< network node the site sits on
  Point position;             ///< cached node coordinate
  ChargerType type = ChargerType::kAc11;
  int num_ports = 2;          ///< simultaneous vehicles served
  double pv_capacity_kw = 30.0;  ///< attached solar capacity (carport/farm)
  uint32_t timetable_id = 0;  ///< index into the availability archetypes

  double RateKw() const { return ChargerRateKw(type); }
};

/// \brief Generation knobs for a charger fleet.
struct ChargerFleetOptions {
  size_t num_chargers = 1000;  ///< paper: >1,000 sites (PlugShare/CDGS)
  double dc_fraction = 0.30;   ///< share of DC sites
  double min_pv_kw = 5.0;
  double max_pv_kw = 150.0;
  uint64_t seed = 11;
};

/// Places chargers on distinct random network nodes with type/PV mixes per
/// `options`. Fails if the network has fewer nodes than chargers requested
/// (then chargers share nodes instead, which is allowed — real sites do).
Result<std::vector<EvCharger>> GenerateChargerFleet(
    const RoadNetwork& network, const ChargerFleetOptions& options);

}  // namespace ecocharge

#endif  // ECOCHARGE_ENERGY_CHARGER_H_
