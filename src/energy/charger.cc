#include "energy/charger.h"

#include <algorithm>

#include "common/rng.h"

namespace ecocharge {

std::string_view ChargerTypeName(ChargerType type) {
  switch (type) {
    case ChargerType::kAc11:
      return "AC-11kW";
    case ChargerType::kAc22:
      return "AC-22kW";
    case ChargerType::kDc50:
      return "DC-50kW";
    case ChargerType::kDc150:
      return "DC-150kW";
  }
  return "?";
}

double ChargerRateKw(ChargerType type) {
  switch (type) {
    case ChargerType::kAc11:
      return 11.0;
    case ChargerType::kAc22:
      return 22.0;
    case ChargerType::kDc50:
      return 50.0;
    case ChargerType::kDc150:
      return 150.0;
  }
  return 11.0;
}

Result<std::vector<EvCharger>> GenerateChargerFleet(
    const RoadNetwork& network, const ChargerFleetOptions& options) {
  if (options.num_chargers == 0) {
    return Status::InvalidArgument("num_chargers must be positive");
  }
  if (options.dc_fraction < 0.0 || options.dc_fraction > 1.0) {
    return Status::InvalidArgument("dc_fraction must be in [0, 1]");
  }
  Rng rng(options.seed);
  std::vector<EvCharger> fleet;
  fleet.reserve(options.num_chargers);

  // Draw nodes without replacement while possible, then with replacement
  // (multiple sites on a node are legal).
  std::vector<NodeId> nodes(network.NumNodes());
  for (NodeId v = 0; v < network.NumNodes(); ++v) nodes[v] = v;
  rng.Shuffle(nodes);

  for (size_t i = 0; i < options.num_chargers; ++i) {
    EvCharger c;
    c.id = static_cast<ChargerId>(i);
    c.node = i < nodes.size()
                 ? nodes[i]
                 : static_cast<NodeId>(rng.NextBounded(network.NumNodes()));
    c.position = network.NodePosition(c.node);
    if (rng.NextBool(options.dc_fraction)) {
      c.type = rng.NextBool(0.35) ? ChargerType::kDc150 : ChargerType::kDc50;
      c.num_ports = static_cast<int>(rng.NextInt(2, 8));
    } else {
      c.type = rng.NextBool(0.5) ? ChargerType::kAc22 : ChargerType::kAc11;
      c.num_ports = static_cast<int>(rng.NextInt(1, 4));
    }
    // Heavy-tailed PV sizing: most sites carry modest carport arrays, a
    // few are backed by large farms — so the truly great chargers are
    // rare and the search radius R genuinely matters.
    double u = rng.NextDouble();
    c.pv_capacity_kw =
        options.min_pv_kw +
        (options.max_pv_kw - options.min_pv_kw) * u * u * u;
    // Availability archetype assigned round-robin-with-noise; the
    // availability module defines what each id means.
    c.timetable_id = static_cast<uint32_t>(rng.NextBounded(4));
    fleet.push_back(c);
  }
  return fleet;
}

}  // namespace ecocharge
