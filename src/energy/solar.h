#ifndef ECOCHARGE_ENERGY_SOLAR_H_
#define ECOCHARGE_ENERGY_SOLAR_H_

#include "common/simtime.h"

namespace ecocharge {

/// \brief Clear-sky solar model.
///
/// Computes global horizontal irradiance from the solar elevation angle
/// (declination + hour angle), with a simple air-mass attenuation. This is
/// the deterministic "ceiling" of PV production; the weather process
/// multiplies it by a cloud transmission factor.
struct SolarModel {
  double latitude_deg = 38.0;  ///< site latitude (California-like default)

  /// Solar elevation above the horizon in degrees (negative at night).
  double ElevationDeg(int day_of_year, double hour_of_day) const;

  /// Clear-sky global horizontal irradiance, W/m^2 (0 at night).
  double ClearSkyIrradiance(int day_of_year, double hour_of_day) const;

  /// Convenience overload on simulation time.
  double ClearSkyIrradiance(SimTime t) const {
    return ClearSkyIrradiance(DayOfYear(t), HourOfDay(t));
  }
};

/// Solar constant at the top of the atmosphere, W/m^2.
inline constexpr double kSolarConstant = 1361.0;

}  // namespace ecocharge

#endif  // ECOCHARGE_ENERGY_SOLAR_H_
