#ifndef ECOCHARGE_ENERGY_GRID_H_
#define ECOCHARGE_ENERGY_GRID_H_

#include "common/simtime.h"

namespace ecocharge {

/// \brief Time-varying grid carbon intensity.
///
/// The point of renewable hoarding is that a kWh charged from solar excess
/// displaces a kWh that would otherwise come from the grid — and the
/// grid's marginal intensity varies over the day: low around solar noon
/// (PV-heavy mix), high on the evening ramp when gas peakers cover the
/// post-sunset demand. Accounting avoided CO2 with this curve (instead of
/// a flat average) credits evening hoarding correctly.
struct GridCarbonModel {
  /// Annual average intensity, kg CO2e per kWh (EU-like default).
  double average_kg_per_kwh = 0.25;

  /// Peak-to-average swing of the diurnal curve (0 = flat).
  double diurnal_swing = 0.4;

  /// Marginal intensity at time `t`, kg CO2e per kWh (>= 0).
  double IntensityAt(SimTime t) const;

  /// CO2 displaced by `kwh` of clean charging during
  /// [t0, t0 + duration_s], integrating the curve in 15-minute steps.
  double AvoidedKg(double kwh, SimTime t0, double duration_s) const;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_ENERGY_GRID_H_
