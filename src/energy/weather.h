#ifndef ECOCHARGE_ENERGY_WEATHER_H_
#define ECOCHARGE_ENERGY_WEATHER_H_

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/simtime.h"

namespace ecocharge {

/// \brief Sky condition; the hidden state behind the L estimated component.
enum class WeatherCondition : uint8_t {
  kSunny = 0,
  kPartlyCloudy = 1,
  kCloudy = 2,
  kRain = 3,
};

std::string_view WeatherConditionName(WeatherCondition c);

/// Fraction of clear-sky irradiance that reaches the panels under `c`.
double CloudTransmission(WeatherCondition c);

/// \brief Climate parameterization: the stationary tendency of the Markov
/// weather process (sunnier for California-like sites, greyer for
/// Oldenburg-like ones).
struct ClimateParams {
  double sunny_bias = 0.5;     ///< [0,1]; higher = sunnier climate
  double persistence = 0.85;   ///< [0,1); probability of staying in state
};

/// \brief Hour-stepped Markov chain over WeatherCondition.
///
/// The realized sequence is the "ground truth" the forecaster estimates and
/// the production traces consume. Deterministic in (params, seed, horizon).
///
/// Thread safety: ConditionAt/TransmissionAt may be called concurrently.
/// The lazily extended hour sequence is the one mutating state on the
/// otherwise-const energy read path, so it is guarded by an internal
/// mutex; extension appends strictly in hour order from the seeded RNG, so
/// hours_[i] is the same value no matter which thread forces it.
class WeatherProcess {
 public:
  WeatherProcess(const ClimateParams& params, uint64_t seed);

  /// The realized condition for the hour containing `t` (t >= 0; the
  /// sequence is extended lazily and cached).
  WeatherCondition ConditionAt(SimTime t);

  /// Realized cloud transmission factor at `t`.
  double TransmissionAt(SimTime t) { return CloudTransmission(ConditionAt(t)); }

  const ClimateParams& params() const { return params_; }

 private:
  void ExtendTo(size_t hour_index);  // caller holds mu_
  WeatherCondition NextState(WeatherCondition current);

  ClimateParams params_;
  std::mutex mu_;
  Rng rng_;                              // guarded by mu_
  std::vector<WeatherCondition> hours_;  // guarded by mu_
};

/// \brief Interval forecast of the cloud transmission factor.
///
/// Mimics GFS/ECMWF accuracy decay (the paper cites 95-96% for <=12 h and
/// 85-95% for 3 days): the returned interval is centered on the true
/// realized transmission with a half-width that grows with lead time, so
/// the truth is contained with the corresponding probability.
class WeatherForecaster {
 public:
  /// \param process ground-truth weather (not owned; must outlive this)
  /// \param seed randomizes the small center-offset errors
  WeatherForecaster(WeatherProcess* process, uint64_t seed);

  struct Forecast {
    double transmission_min = 0.0;
    double transmission_max = 1.0;
  };

  /// Forecast for target time `target`, issued at time `now`
  /// (lead = target - now >= 0; negative leads are treated as nowcasts).
  ///
  /// Deterministic in (seed, now, target): repeated calls — and calls from
  /// different rankers — see the identical forecast, which keeps the
  /// baseline comparisons fair.
  Forecast ForecastTransmission(SimTime now, SimTime target);

  /// Interval half-width used at the given lead time, exposed for tests.
  static double HalfWidthAtLead(double lead_seconds);

 private:
  WeatherProcess* process_;
  uint64_t seed_;
};

}  // namespace ecocharge

#endif  // ECOCHARGE_ENERGY_WEATHER_H_
