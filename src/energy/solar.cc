#include "energy/solar.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kRadToDeg = 180.0 / M_PI;
}  // namespace

double SolarModel::ElevationDeg(int day_of_year, double hour_of_day) const {
  // Cooper's declination formula.
  double declination =
      23.45 * std::sin(2.0 * M_PI * (284.0 + day_of_year) / 365.0);
  double hour_angle = 15.0 * (hour_of_day - 12.0);  // degrees, solar noon = 0
  double lat = latitude_deg * kDegToRad;
  double dec = declination * kDegToRad;
  double ha = hour_angle * kDegToRad;
  double sin_elev = std::sin(lat) * std::sin(dec) +
                    std::cos(lat) * std::cos(dec) * std::cos(ha);
  return std::asin(std::clamp(sin_elev, -1.0, 1.0)) * kRadToDeg;
}

double SolarModel::ClearSkyIrradiance(int day_of_year,
                                      double hour_of_day) const {
  double elev = ElevationDeg(day_of_year, hour_of_day);
  if (elev <= 0.0) return 0.0;
  double sin_elev = std::sin(elev * kDegToRad);
  // Kasten-Young style air-mass attenuation collapsed to a simple
  // transmittance power law: tau^(1/sin(h)) with tau = 0.75.
  double air_mass = 1.0 / std::max(sin_elev, 1e-3);
  double transmittance = std::pow(0.75, std::min(air_mass, 38.0));
  return kSolarConstant * sin_elev * transmittance;
}

}  // namespace ecocharge
