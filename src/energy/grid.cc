#include "energy/grid.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

double GridCarbonModel::IntensityAt(SimTime t) const {
  double hour = HourOfDay(t);
  // Two-lobe diurnal shape: a dip centered on solar noon (PV floods the
  // mix) and a hump on the evening ramp (~19:00) when peakers run.
  auto bump = [](double h, double center, double sigma) {
    double d = h - center;
    // Wrap around midnight so the 19:00 hump also shades early hours.
    if (d > 12.0) d -= 24.0;
    if (d < -12.0) d += 24.0;
    return std::exp(-d * d / (2.0 * sigma * sigma));
  };
  double shape = 1.0 - diurnal_swing * bump(hour, 13.0, 3.0) +
                 diurnal_swing * 0.8 * bump(hour, 19.5, 2.0);
  return std::max(0.0, average_kg_per_kwh * shape);
}

double GridCarbonModel::AvoidedKg(double kwh, SimTime t0,
                                  double duration_s) const {
  if (kwh <= 0.0) return 0.0;
  if (duration_s <= 0.0) return kwh * IntensityAt(t0);
  const double step = 15.0 * kSecondsPerMinute;
  double weighted = 0.0;
  double covered = 0.0;
  for (double offset = 0.0; offset < duration_s; offset += step) {
    double dt = std::min(step, duration_s - offset);
    weighted += IntensityAt(t0 + offset + dt / 2.0) * dt;
    covered += dt;
  }
  double mean_intensity = weighted / covered;
  return kwh * mean_intensity;
}

}  // namespace ecocharge
