#include "energy/directory.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "graph/road_network.h"

namespace ecocharge {

LatLng DatasetAnchor(int dataset_kind_index) {
  switch (dataset_kind_index) {
    case 0:
      return LatLng{53.14, 8.21};     // Oldenburg
    case 1:
      return LatLng{36.50, -120.50};  // central California
    case 2:
      return LatLng{39.90, 116.40};   // Beijing (T-drive)
    case 3:
      return LatLng{39.98, 116.30};   // Beijing (Geolife)
  }
  return LatLng{0.0, 0.0};
}

Status ExportChargerDirectoryCsv(const std::vector<EvCharger>& fleet,
                                 const Projection& projection,
                                 std::ostream& os) {
  os << "id,lat,lng,type,ports,pv_kw,timetable\n";
  os << std::setprecision(12);
  for (const EvCharger& c : fleet) {
    LatLng ll = projection.Inverse(c.position);
    os << c.id << "," << ll.lat << "," << ll.lng << ","
       << static_cast<int>(c.type) << "," << c.num_ports << ","
       << c.pv_capacity_kw << "," << c.timetable_id << "\n";
  }
  if (!os) return Status::IOError("stream write failed");
  return Status::OK();
}

Status ExportChargerDirectoryCsvFile(const std::vector<EvCharger>& fleet,
                                     const Projection& projection,
                                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return ExportChargerDirectoryCsv(fleet, projection, out);
}

Result<std::vector<EvCharger>> ImportChargerDirectoryCsv(
    std::istream& is, const Projection& projection,
    const RoadNetwork& network) {
  std::string line;
  if (!std::getline(is, line) ||
      line.rfind("id,lat,lng", 0) != 0) {
    return Status::IOError("missing directory CSV header");
  }
  std::vector<EvCharger> fleet;
  size_t row = 1;
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) continue;
    std::istringstream cells(line);
    std::string cell;
    std::vector<std::string> fields;
    while (std::getline(cells, cell, ',')) fields.push_back(cell);
    if (fields.size() != 7) {
      return Status::IOError("row " + std::to_string(row) + ": expected 7 "
                             "fields, got " + std::to_string(fields.size()));
    }
    try {
      EvCharger c;
      c.id = static_cast<ChargerId>(std::stoul(fields[0]));
      LatLng ll{std::stod(fields[1]), std::stod(fields[2])};
      int type = std::stoi(fields[3]);
      if (type < 0 || type > 3) {
        return Status::IOError("row " + std::to_string(row) +
                               ": invalid charger type");
      }
      c.type = static_cast<ChargerType>(type);
      c.num_ports = std::stoi(fields[4]);
      c.pv_capacity_kw = std::stod(fields[5]);
      c.timetable_id = static_cast<uint32_t>(std::stoul(fields[6]));
      if (c.num_ports < 1 || c.pv_capacity_kw < 0.0) {
        return Status::IOError("row " + std::to_string(row) +
                               ": implausible site parameters");
      }
      c.node = network.NearestNode(projection.Forward(ll));
      c.position = network.NodePosition(c.node);
      fleet.push_back(c);
    } catch (const std::exception&) {
      return Status::IOError("row " + std::to_string(row) +
                             ": unparsable field");
    }
  }
  return fleet;
}

Result<std::vector<EvCharger>> ImportChargerDirectoryCsvFile(
    const std::string& path, const Projection& projection,
    const RoadNetwork& network) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ImportChargerDirectoryCsv(in, projection, network);
}

}  // namespace ecocharge
