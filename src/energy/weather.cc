#include "energy/weather.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

std::string_view WeatherConditionName(WeatherCondition c) {
  switch (c) {
    case WeatherCondition::kSunny:
      return "sunny";
    case WeatherCondition::kPartlyCloudy:
      return "partly-cloudy";
    case WeatherCondition::kCloudy:
      return "cloudy";
    case WeatherCondition::kRain:
      return "rain";
  }
  return "?";
}

double CloudTransmission(WeatherCondition c) {
  switch (c) {
    case WeatherCondition::kSunny:
      return 1.0;
    case WeatherCondition::kPartlyCloudy:
      return 0.65;
    case WeatherCondition::kCloudy:
      return 0.30;
    case WeatherCondition::kRain:
      return 0.12;
  }
  return 0.0;
}

WeatherProcess::WeatherProcess(const ClimateParams& params, uint64_t seed)
    : params_(params), rng_(seed) {
  hours_.push_back(rng_.NextBool(params_.sunny_bias)
                       ? WeatherCondition::kSunny
                       : WeatherCondition::kPartlyCloudy);
}

WeatherCondition WeatherProcess::NextState(WeatherCondition current) {
  if (rng_.NextBool(params_.persistence)) return current;
  // Transition: biased random walk over the four states. A sunny climate
  // pulls toward kSunny, a grey one toward kCloudy/kRain.
  double b = params_.sunny_bias;
  std::vector<double> weights = {b * b, 2.0 * b * (1.0 - b),
                                 (1.0 - b) * (1.0 - b) * 0.7,
                                 (1.0 - b) * (1.0 - b) * 0.3};
  // Adjacent-state moves are more likely than jumps.
  int cur = static_cast<int>(current);
  for (int s = 0; s < 4; ++s) {
    int gap = std::abs(s - cur);
    weights[s] *= gap == 0 ? 0.5 : (gap == 1 ? 1.5 : 0.6);
  }
  return static_cast<WeatherCondition>(rng_.NextWeighted(weights));
}

void WeatherProcess::ExtendTo(size_t hour_index) {
  while (hours_.size() <= hour_index) {
    hours_.push_back(NextState(hours_.back()));
  }
}

WeatherCondition WeatherProcess::ConditionAt(SimTime t) {
  size_t hour_index =
      static_cast<size_t>(std::max(0.0, t) / kSecondsPerHour);
  std::lock_guard<std::mutex> lock(mu_);
  ExtendTo(hour_index);
  return hours_[hour_index];
}

WeatherForecaster::WeatherForecaster(WeatherProcess* process, uint64_t seed)
    : process_(process), seed_(seed) {}

double WeatherForecaster::HalfWidthAtLead(double lead_seconds) {
  // Calibration: containment ~95% at <=12 h and ~90% at 3 days maps to a
  // half-width ramp from 0.05 (nowcast) through 0.10 (12 h) to 0.30 (72 h),
  // saturating at 0.40.
  double lead_hours = std::max(0.0, lead_seconds) / kSecondsPerHour;
  double width = 0.05 + 0.0042 * std::min(lead_hours, 12.0);
  if (lead_hours > 12.0) width += 0.0033 * (std::min(lead_hours, 72.0) - 12.0);
  return std::min(width, 0.40);
}

WeatherForecaster::Forecast WeatherForecaster::ForecastTransmission(
    SimTime now, SimTime target) {
  double truth = process_->TransmissionAt(std::max(now, target));
  double lead = std::max(0.0, target - now);
  double half = HalfWidthAtLead(lead);
  // The forecast center drifts off the truth by a fraction of the interval
  // half-width; the truth stays inside the band with high probability. The
  // drift is drawn from an Rng seeded by (seed, now-hour, target-hour) so
  // the forecast is a pure function of its inputs.
  uint64_t now_h = static_cast<uint64_t>(std::max(0.0, now) / kSecondsPerHour);
  uint64_t tgt_h =
      static_cast<uint64_t>(std::max(0.0, target) / kSecondsPerHour);
  Rng noise(seed_ ^ (now_h * 0x9E3779B97F4A7C15ULL) ^
            (tgt_h * 0xC2B2AE3D27D4EB4FULL));
  double center = truth + noise.NextGaussian(0.0, half * 0.35);
  Forecast f;
  f.transmission_min = std::clamp(center - half, 0.0, 1.0);
  f.transmission_max = std::clamp(center + half, 0.0, 1.0);
  if (f.transmission_min > f.transmission_max) {
    std::swap(f.transmission_min, f.transmission_max);
  }
  return f;
}

}  // namespace ecocharge
