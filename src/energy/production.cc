#include "energy/production.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

Result<ProductionTrace> ProductionTrace::Generate(double pv_capacity_kw,
                                                  const SolarModel& solar,
                                                  WeatherProcess* weather,
                                                  SimTime start, SimTime end) {
  if (pv_capacity_kw < 0.0) {
    return Status::InvalidArgument("pv capacity must be non-negative");
  }
  if (end < start) {
    return Status::InvalidArgument("end precedes start");
  }
  ProductionTrace trace;
  trace.start_ = start;
  size_t slots = static_cast<size_t>(std::ceil((end - start) / kSlotSeconds));
  trace.kwh_per_slot_.reserve(slots);
  for (size_t i = 0; i < slots; ++i) {
    SimTime mid = start + (static_cast<double>(i) + 0.5) * kSlotSeconds;
    double irradiance = solar.ClearSkyIrradiance(mid);
    double power_kw =
        pv_capacity_kw * (irradiance / 1000.0) * weather->TransmissionAt(mid);
    trace.kwh_per_slot_.push_back(power_kw * kSlotSeconds /
                                  kSecondsPerHour);
  }
  return trace;
}

double ProductionTrace::EnergyBetween(SimTime t0, SimTime t1) const {
  if (t1 <= t0 || kwh_per_slot_.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < kwh_per_slot_.size(); ++i) {
    SimTime slot_start = start_ + static_cast<double>(i) * kSlotSeconds;
    SimTime slot_end = slot_start + kSlotSeconds;
    double overlap =
        std::min(t1, slot_end) - std::max(t0, slot_start);
    if (overlap > 0.0) {
      total += kwh_per_slot_[i] * (overlap / kSlotSeconds);
    }
  }
  return total;
}

SolarEnergyService::SolarEnergyService(const SolarModel& solar,
                                       const ClimateParams& climate,
                                       uint64_t seed)
    : solar_(solar),
      weather_(climate, seed),
      forecaster_(&weather_, seed ^ 0xF0F0F0F0ULL) {}

double SolarEnergyService::IntegrateKwh(const EvCharger& charger, SimTime t0,
                                        double window_s,
                                        double transmission_override,
                                        bool use_realized) {
  if (window_s <= 0.0) return 0.0;
  const double step = ProductionTrace::kSlotSeconds;
  double produced_kwh = 0.0;
  for (double offset = 0.0; offset < window_s; offset += step) {
    double dt = std::min(step, window_s - offset);
    SimTime mid = t0 + offset + dt / 2.0;
    double transmission = use_realized ? weather_.TransmissionAt(mid)
                                       : transmission_override;
    double power_kw = charger.pv_capacity_kw *
                      (solar_.ClearSkyIrradiance(mid) / 1000.0) *
                      transmission;
    produced_kwh += power_kw * dt / kSecondsPerHour;
  }
  // Delivery is capped by the charger's rate over the window.
  double cap_kwh = charger.RateKw() * window_s / kSecondsPerHour;
  return std::min(produced_kwh, cap_kwh);
}

double SolarEnergyService::ActualEnergyKwh(const EvCharger& charger,
                                           SimTime t0, double window_s) {
  return IntegrateKwh(charger, t0, window_s, /*transmission_override=*/0.0,
                      /*use_realized=*/true);
}

EnergyForecast SolarEnergyService::ForecastEnergyKwh(const EvCharger& charger,
                                                     SimTime now,
                                                     SimTime target,
                                                     double window_s) {
  WeatherForecaster::Forecast f =
      forecaster_.ForecastTransmission(now, target);
  EnergyForecast out;
  out.min_kwh = IntegrateKwh(charger, target, window_s, f.transmission_min,
                             /*use_realized=*/false);
  out.max_kwh = IntegrateKwh(charger, target, window_s, f.transmission_max,
                             /*use_realized=*/false);
  return out;
}

double SolarEnergyService::MaxDeliverableKwh(
    const std::vector<EvCharger>& fleet, double window_s) const {
  double best = 0.0;
  for (const EvCharger& c : fleet) {
    double cap = std::min(c.RateKw(), c.pv_capacity_kw);
    best = std::max(best, cap);
  }
  return best * window_s / kSecondsPerHour;
}

}  // namespace ecocharge
