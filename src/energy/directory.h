#ifndef ECOCHARGE_ENERGY_DIRECTORY_H_
#define ECOCHARGE_ENERGY_DIRECTORY_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "energy/charger.h"
#include "geo/latlng.h"

namespace ecocharge {

/// \brief Geographic anchor of each synthetic dataset: the real-world
/// coordinate the planar frame's origin corresponds to.
LatLng DatasetAnchor(int dataset_kind_index);

/// \brief PlugShare-style charger directory exchange.
///
/// Real charger directories speak latitude/longitude; the library works in
/// a projected planar frame. These helpers export a fleet as a geographic
/// CSV (`id,lat,lng,type,ports,pv_kw,timetable`) and import one back,
/// snapping each site to the nearest network node — the shape of the
/// PlugShare ingestion path the paper's EIS implements.
Status ExportChargerDirectoryCsv(const std::vector<EvCharger>& fleet,
                                 const Projection& projection,
                                 std::ostream& os);

Status ExportChargerDirectoryCsvFile(const std::vector<EvCharger>& fleet,
                                     const Projection& projection,
                                     const std::string& path);

/// Parses a directory CSV and places every site on its nearest node of
/// `network`. Malformed rows fail the whole import (directories are
/// curated data; silent row-dropping hides corruption).
Result<std::vector<EvCharger>> ImportChargerDirectoryCsv(
    std::istream& is, const Projection& projection,
    const RoadNetwork& network);

Result<std::vector<EvCharger>> ImportChargerDirectoryCsvFile(
    const std::string& path, const Projection& projection,
    const RoadNetwork& network);

}  // namespace ecocharge

#endif  // ECOCHARGE_ENERGY_DIRECTORY_H_
