#include "energy/ev.h"

#include <algorithm>
#include <cassert>

namespace ecocharge {

std::string_view EvClassName(EvClass c) {
  switch (c) {
    case EvClass::kCompact:
      return "compact";
    case EvClass::kSedan:
      return "sedan";
    case EvClass::kSuv:
      return "suv";
  }
  return "?";
}

EvModel EvModel::ForClass(EvClass ev_class) {
  switch (ev_class) {
    case EvClass::kCompact:
      return EvModel(40.0, 0.15, 50.0);
    case EvClass::kSedan:
      return EvModel(70.0, 0.17, 150.0);
    case EvClass::kSuv:
      return EvModel(90.0, 0.21, 150.0);
  }
  return EvModel(40.0, 0.15, 50.0);
}

EvModel::EvModel(double battery_kwh, double consumption_kwh_per_km,
                 double max_charge_kw)
    : battery_kwh_(battery_kwh),
      consumption_kwh_per_km_(consumption_kwh_per_km),
      max_charge_kw_(max_charge_kw) {
  assert(battery_kwh > 0.0);
  assert(consumption_kwh_per_km > 0.0);
  assert(max_charge_kw > 0.0);
}

double EvModel::DriveEnergyKwh(double meters) const {
  return std::max(0.0, meters) / 1000.0 * consumption_kwh_per_km_;
}

double EvModel::RangeMeters(double soc) const {
  soc = std::clamp(soc, 0.0, 1.0);
  return soc * battery_kwh_ / consumption_kwh_per_km_ * 1000.0;
}

double EvModel::AcceptedPowerKw(double soc, double offered_kw) const {
  soc = std::clamp(soc, 0.0, 1.0);
  double base = std::min(std::max(0.0, offered_kw), max_charge_kw_);
  if (soc <= 0.8) return base;
  // Linear taper from 100% of rate at 80% SoC down to 15% at full.
  double taper = 1.0 - (soc - 0.8) / 0.2 * 0.85;
  return base * taper;
}

EvModel::ChargeResult EvModel::SimulateCharge(double start_soc,
                                              double offered_kw,
                                              double max_duration_s) const {
  ChargeResult result;
  double soc = std::clamp(start_soc, 0.0, 1.0);
  double elapsed = 0.0;
  double delivered = 0.0;
  const double step_s = 60.0;
  while (elapsed < max_duration_s && soc < 1.0) {
    double dt = std::min(step_s, max_duration_s - elapsed);
    double power = AcceptedPowerKw(soc, offered_kw);
    if (power <= 0.0) break;
    double kwh = power * dt / 3600.0;
    double headroom = (1.0 - soc) * battery_kwh_;
    if (kwh >= headroom) {
      // Fill exactly to 100% and account the time proportionally.
      double fraction = headroom / kwh;
      delivered += headroom;
      elapsed += dt * fraction;
      soc = 1.0;
      break;
    }
    delivered += kwh;
    soc += kwh / battery_kwh_;
    elapsed += dt;
  }
  result.end_soc = soc;
  result.energy_kwh = delivered;
  result.duration_s = elapsed;
  return result;
}

}  // namespace ecocharge
