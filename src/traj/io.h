#ifndef ECOCHARGE_TRAJ_IO_H_
#define ECOCHARGE_TRAJ_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "traj/trajectory.h"

namespace ecocharge {

/// \brief Text serialization for trajectory sets.
///
/// Format (whitespace separated, loosely modeled on the Geolife .plt
/// convention of one sample per line):
///   ect 1                     -- magic + version
///   <num_trajectories>
///   <object_id> <num_points>  -- per trajectory
///   x y t                     -- one line per sample
Status SaveTrajectories(const std::vector<Trajectory>& trajectories,
                        std::ostream& os);
Status SaveTrajectoriesFile(const std::vector<Trajectory>& trajectories,
                            const std::string& path);

Result<std::vector<Trajectory>> LoadTrajectories(std::istream& is);
Result<std::vector<Trajectory>> LoadTrajectoriesFile(const std::string& path);

}  // namespace ecocharge

#endif  // ECOCHARGE_TRAJ_IO_H_
