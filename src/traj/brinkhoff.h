#ifndef ECOCHARGE_TRAJ_BRINKHOFF_H_
#define ECOCHARGE_TRAJ_BRINKHOFF_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/road_network.h"
#include "traj/trajectory.h"

namespace ecocharge {

/// \brief Network-constrained moving-object generator in the spirit of
/// Brinkhoff's spatio-temporal generator (the tool the paper used for the
/// Oldenburg dataset).
///
/// Each object starts at a random node, picks a random destination, drives
/// the fastest path at a speed-class-dependent pace (modulated per edge by
/// the road class's free-flow speed), then immediately picks the next
/// destination until `trip_count` trips are done. Positions are sampled at
/// a fixed interval.
struct BrinkhoffOptions {
  size_t num_objects = 100;
  int trip_count = 1;                 ///< trips per object
  double sample_interval_s = 30.0;    ///< position sampling period
  int num_speed_classes = 3;          ///< slow / medium / fast drivers
  double min_trip_length_m = 2000.0;  ///< reject shorter random trips
  SimTime start_time = 8.0 * kSecondsPerHour;  ///< Monday 08:00
  double start_time_spread_s = 2.0 * kSecondsPerHour;
  uint64_t seed = 1;
};

/// Generates `options.num_objects` trajectories over `network`.
Result<std::vector<Trajectory>> GenerateBrinkhoffTrajectories(
    const RoadNetwork& network, const BrinkhoffOptions& options);

}  // namespace ecocharge

#endif  // ECOCHARGE_TRAJ_BRINKHOFF_H_
