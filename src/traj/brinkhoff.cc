#include "traj/brinkhoff.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "graph/shortest_path.h"

namespace ecocharge {

namespace {

/// Walks `path` (node ids) at per-edge speeds scaled by `speed_factor`,
/// appending samples every `sample_interval_s` to `out`.
SimTime WalkPath(const RoadNetwork& network, const std::vector<NodeId>& path,
                 double speed_factor, double sample_interval_s, SimTime start,
                 Trajectory* out) {
  SimTime now = start;
  SimTime next_sample = start;
  if (out->empty()) {
    out->Append({network.NodePosition(path.front()), now});
    next_sample = now + sample_interval_s;
  }
  for (size_t i = 1; i < path.size(); ++i) {
    const Point& a = network.NodePosition(path[i - 1]);
    const Point& b = network.NodePosition(path[i]);
    double length = Distance(a, b);
    // Speed along this hop: free-flow for the best class connecting the two
    // nodes would require an edge lookup; the dominant factor is the driver
    // class, so use arterial free-flow as the base pace.
    double speed = FreeFlowSpeed(RoadClass::kArterial) * speed_factor;
    double hop_time = length / speed;
    SimTime hop_end = now + hop_time;
    while (next_sample <= hop_end && hop_time > 0.0) {
      double u = (next_sample - now) / hop_time;
      out->Append({a + (b - a) * u, next_sample});
      next_sample += sample_interval_s;
    }
    now = hop_end;
  }
  out->Append({network.NodePosition(path.back()), now});
  return now;
}

}  // namespace

Result<std::vector<Trajectory>> GenerateBrinkhoffTrajectories(
    const RoadNetwork& network, const BrinkhoffOptions& options) {
  if (options.num_objects == 0) {
    return Status::InvalidArgument("num_objects must be positive");
  }
  if (network.NumNodes() < 2) {
    return Status::InvalidArgument("network too small for trajectories");
  }
  Rng rng(options.seed);
  DijkstraSearch search(network);
  std::vector<Trajectory> trajectories;
  trajectories.reserve(options.num_objects);

  for (size_t obj = 0; obj < options.num_objects; ++obj) {
    // Speed classes 0.8x / 1.0x / 1.25x of free flow, like Brinkhoff's
    // object classes.
    int cls = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(options.num_speed_classes)));
    double speed_factor =
        0.8 * std::pow(1.25, cls * 2.0 /
                                 std::max(1, options.num_speed_classes - 1));
    Trajectory traj(obj, {});
    SimTime t =
        options.start_time + rng.NextDouble(0.0, options.start_time_spread_s);
    NodeId current =
        static_cast<NodeId>(rng.NextBounded(network.NumNodes()));
    int trips_done = 0;
    int attempts = 0;
    while (trips_done < options.trip_count && attempts < 64) {
      NodeId dest = static_cast<NodeId>(rng.NextBounded(network.NumNodes()));
      ++attempts;
      if (dest == current) continue;
      if (Distance(network.NodePosition(current),
                   network.NodePosition(dest)) < options.min_trip_length_m) {
        continue;
      }
      PathResult path = search.AStar(current, dest, LengthCost);
      if (!path.Reachable() || path.nodes.size() < 2) continue;
      t = WalkPath(network, path.nodes, speed_factor,
                   options.sample_interval_s, t, &traj);
      current = dest;
      ++trips_done;
    }
    if (traj.size() >= 2) trajectories.push_back(std::move(traj));
  }
  if (trajectories.empty()) {
    return Status::Internal("failed to generate any trajectory");
  }
  return trajectories;
}

}  // namespace ecocharge
