#include "traj/io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>

namespace ecocharge {

Status SaveTrajectories(const std::vector<Trajectory>& trajectories,
                        std::ostream& os) {
  os << "ect 1\n" << trajectories.size() << "\n";
  os << std::setprecision(17);
  for (const Trajectory& t : trajectories) {
    os << t.object_id() << " " << t.size() << "\n";
    for (const TrajectoryPoint& p : t.points()) {
      os << p.position.x << " " << p.position.y << " " << p.time << "\n";
    }
  }
  if (!os) return Status::IOError("stream write failed");
  return Status::OK();
}

Status SaveTrajectoriesFile(const std::vector<Trajectory>& trajectories,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return SaveTrajectories(trajectories, out);
}

Result<std::vector<Trajectory>> LoadTrajectories(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "ect" || version != 1) {
    return Status::IOError("bad header: expected 'ect 1'");
  }
  size_t count = 0;
  if (!(is >> count)) return Status::IOError("bad trajectory count");
  std::vector<Trajectory> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t object_id = 0;
    size_t num_points = 0;
    if (!(is >> object_id >> num_points)) {
      return Status::IOError("truncated header for trajectory " +
                             std::to_string(i));
    }
    std::vector<TrajectoryPoint> points;
    points.reserve(num_points);
    double last_time = -std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < num_points; ++j) {
      double x, y, t;
      if (!(is >> x >> y >> t)) {
        return Status::IOError("truncated samples in trajectory " +
                               std::to_string(i));
      }
      if (t < last_time) {
        return Status::IOError("timestamps not monotone in trajectory " +
                               std::to_string(i));
      }
      last_time = t;
      points.push_back({Point{x, y}, t});
    }
    out.emplace_back(object_id, std::move(points));
  }
  return out;
}

Result<std::vector<Trajectory>> LoadTrajectoriesFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadTrajectories(in);
}

}  // namespace ecocharge
