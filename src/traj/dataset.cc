#include "traj/dataset.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "graph/io.h"
#include "traj/brinkhoff.h"

namespace ecocharge {

std::vector<DatasetKind> AllDatasetKinds() {
  return {DatasetKind::kOldenburg, DatasetKind::kCalifornia,
          DatasetKind::kTDrive, DatasetKind::kGeolife};
}

std::string_view DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kOldenburg:
      return "Oldenburg";
    case DatasetKind::kCalifornia:
      return "California";
    case DatasetKind::kTDrive:
      return "T-drive";
    case DatasetKind::kGeolife:
      return "Geolife";
  }
  return "Unknown";
}

namespace {

size_t ScaledCount(size_t full_count, double scale) {
  return std::max<size_t>(
      10, static_cast<size_t>(std::llround(full_count * scale)));
}

/// Workload shape of each kind — shared by the synthesized and the
/// snapshot-loaded paths so that swapping the network source cannot drift
/// the trajectory generation.
BrinkhoffOptions TrajOptionsFor(DatasetKind kind,
                                const DatasetOptions& options) {
  BrinkhoffOptions traj_opts;
  traj_opts.seed = options.seed ^ 0xD5A7u;
  switch (kind) {
    case DatasetKind::kOldenburg:
      traj_opts.num_objects = ScaledCount(4000, options.scale);
      traj_opts.sample_interval_s = 30.0;
      traj_opts.min_trip_length_m = 5000.0;
      break;
    case DatasetKind::kCalifornia:
      traj_opts.num_objects = ScaledCount(7000, options.scale);
      traj_opts.sample_interval_s = 60.0;
      traj_opts.min_trip_length_m = 15000.0;
      break;
    case DatasetKind::kTDrive:
      traj_opts.num_objects = ScaledCount(10357, options.scale);
      traj_opts.trip_count = 3;
      traj_opts.sample_interval_s = 180.0;
      traj_opts.min_trip_length_m = 4000.0;
      break;
    case DatasetKind::kGeolife:
      traj_opts.num_objects = ScaledCount(17621, options.scale);
      traj_opts.sample_interval_s = 5.0;
      traj_opts.min_trip_length_m = 3000.0;
      break;
  }
  return traj_opts;
}

Result<std::shared_ptr<RoadNetwork>> SynthesizeNetwork(DatasetKind kind,
                                                       uint64_t seed) {
  switch (kind) {
    case DatasetKind::kOldenburg: {
      // 45 x 35 km urban area; ~1.3 km blocks.
      GridNetworkOptions g;
      g.nx = 35;
      g.ny = 27;
      g.spacing_m = 1300.0;
      g.seed = seed;
      return MakeGridNetwork(g);
    }
    case DatasetKind::kCalifornia: {
      // 1,220 x 400 km corridor region: cities joined by highways. The
      // region is scaled to 400 x 150 km so that the network stays
      // laptop-sized while keeping the long-haul / urban-pocket structure.
      CorridorRegionOptions c;
      c.num_cities = 5;
      c.city_nx = 13;
      c.city_ny = 13;
      c.city_spacing_m = 700.0;
      c.region_width_m = 400000.0;
      c.region_height_m = 150000.0;
      c.seed = seed;
      return MakeCorridorRegion(c);
    }
    case DatasetKind::kTDrive: {
      // Beijing: dense ring-radial metropolis, taxi fleet with several
      // consecutive trips and sparse sampling (~5 min in the real data).
      RadialCityOptions r;
      r.rings = 24;
      r.spokes = 48;
      r.ring_spacing_m = 800.0;
      r.seed = seed;
      return MakeRadialCity(r);
    }
    case DatasetKind::kGeolife: {
      // Multi-modal dense traces over a large mixed network; 1-5 s
      // sampling in the real data — we sample at 5 s.
      RandomGeometricOptions rg;
      rg.num_nodes = 1400;
      rg.width_m = 50000.0;
      rg.height_m = 45000.0;
      rg.k_nearest = 4;
      rg.seed = seed;
      return MakeRandomGeometric(rg);
    }
  }
  return Status::InvalidArgument("unknown dataset kind");
}

Result<Dataset> FinishDataset(DatasetKind kind, const DatasetOptions& options,
                              std::shared_ptr<RoadNetwork> network) {
  Dataset ds;
  ds.kind = kind;
  ds.name = std::string(DatasetName(kind));
  ds.network = std::move(network);
  ECOCHARGE_ASSIGN_OR_RETURN(
      ds.trajectories, GenerateBrinkhoffTrajectories(
                           *ds.network, TrajOptionsFor(kind, options)));
  return ds;
}

}  // namespace

Result<Dataset> MakeDataset(DatasetKind kind, const DatasetOptions& options) {
  if (options.scale <= 0.0 || options.scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  ECOCHARGE_ASSIGN_OR_RETURN(auto network,
                             SynthesizeNetwork(kind, options.seed));
  return FinishDataset(kind, options, std::move(network));
}

Result<Dataset> MakeSnapshotDataset(const std::string& snapshot_path,
                                    DatasetKind kind,
                                    const DatasetOptions& options) {
  if (options.scale <= 0.0 || options.scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  ECOCHARGE_ASSIGN_OR_RETURN(auto network, LoadSnapshot(snapshot_path));
  return FinishDataset(kind, options, std::move(network));
}

}  // namespace ecocharge
