#include "traj/trajectory.h"

#include <algorithm>
#include <cassert>

namespace ecocharge {

void Trajectory::Append(const TrajectoryPoint& p) {
  assert(points_.empty() || p.time >= points_.back().time);
  points_.push_back(p);
}

double Trajectory::LengthMeters() const {
  double total = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    total += Distance(points_[i - 1].position, points_[i].position);
  }
  return total;
}

Point Trajectory::PositionAt(SimTime t) const {
  if (points_.empty()) return Point{};
  if (t <= points_.front().time) return points_.front().position;
  if (t >= points_.back().time) return points_.back().position;
  // Binary search the first sample at or after t.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const TrajectoryPoint& p, SimTime value) { return p.time < value; });
  const TrajectoryPoint& hi = *it;
  const TrajectoryPoint& lo = *(it - 1);
  double span = hi.time - lo.time;
  if (span <= 0.0) return lo.position;
  double u = (t - lo.time) / span;
  return lo.position + (hi.position - lo.position) * u;
}

Polyline Trajectory::AsPolyline() const {
  Polyline line;
  for (const TrajectoryPoint& p : points_) line.Append(p.position);
  return line;
}

std::vector<TripSegment> SegmentTrip(const Polyline& trip,
                                     double segment_length_m) {
  std::vector<TripSegment> segments;
  double total = trip.Length();
  if (trip.size() < 2 || total <= 0.0 || segment_length_m <= 0.0) {
    if (trip.size() >= 1) {
      TripSegment s;
      s.index = 0;
      s.start_s = 0.0;
      s.end_s = total;
      s.start_point = trip.front();
      s.end_point = trip.back();
      segments.push_back(s);
    }
    return segments;
  }
  size_t count = std::max<size_t>(1, static_cast<size_t>(total /
                                                         segment_length_m));
  double step = total / static_cast<double>(count);
  for (size_t i = 0; i < count; ++i) {
    TripSegment s;
    s.index = i;
    s.start_s = step * static_cast<double>(i);
    s.end_s = (i + 1 == count) ? total : step * static_cast<double>(i + 1);
    s.start_point = trip.At(s.start_s);
    s.end_point = trip.At(s.end_s);
    segments.push_back(s);
  }
  return segments;
}

}  // namespace ecocharge
