#ifndef ECOCHARGE_TRAJ_DATASET_H_
#define ECOCHARGE_TRAJ_DATASET_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/road_network.h"
#include "traj/trajectory.h"

namespace ecocharge {

/// \brief The four evaluation workloads of the paper (Section V-A).
///
/// Each synthesizer reproduces the shape of its namesake: spatial extent,
/// network style, object count, and sampling rate. The absolute trajectory
/// counts are scaled by DatasetOptions::scale so tests can run on tiny
/// instances while benchmarks use larger ones.
enum class DatasetKind {
  kOldenburg,   ///< synthetic Brinkhoff traces, 45 x 35 km urban grid
  kCalifornia,  ///< 1,220 x 400 km corridor region, trip dataset
  kTDrive,      ///< Beijing taxi fleet, dense urban grid, sparse sampling
  kGeolife,     ///< multi-modal dense traces (1-5 s sampling)
};

/// All four kinds, in the paper's order.
std::vector<DatasetKind> AllDatasetKinds();

/// Human-readable name ("Oldenburg", ...).
std::string_view DatasetName(DatasetKind kind);

/// \brief Scaling knobs for dataset synthesis.
struct DatasetOptions {
  /// Fraction of the paper's trajectory count to generate (1.0 = full:
  /// 4,000 / 7,000 / 10,357 / 17,621 objects). Benchmarks use ~0.01-0.05;
  /// the count only multiplies evaluation queries, not per-query cost.
  double scale = 0.01;
  uint64_t seed = 7;
};

/// \brief A generated workload: road network plus vehicle trajectories.
struct Dataset {
  std::string name;
  DatasetKind kind = DatasetKind::kOldenburg;
  std::shared_ptr<RoadNetwork> network;
  std::vector<Trajectory> trajectories;
};

/// Synthesizes the requested dataset. Deterministic in (kind, options).
Result<Dataset> MakeDataset(DatasetKind kind, const DatasetOptions& options);

/// \brief Like MakeDataset, but mmap-loads the road network from a binary
/// snapshot (see graph/io.h) instead of synthesizing it; trajectories are
/// still generated with `kind`'s workload shape. Since snapshots round-trip
/// the network exactly, a dataset built from a snapshot of kind K's network
/// is bit-identical to MakeDataset(K, options).
Result<Dataset> MakeSnapshotDataset(const std::string& snapshot_path,
                                    DatasetKind kind,
                                    const DatasetOptions& options);

}  // namespace ecocharge

#endif  // ECOCHARGE_TRAJ_DATASET_H_
