#ifndef ECOCHARGE_TRAJ_TRAJECTORY_H_
#define ECOCHARGE_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "common/simtime.h"
#include "geo/polyline.h"

namespace ecocharge {

/// \brief One timestamped sample of a moving object.
struct TrajectoryPoint {
  Point position;
  SimTime time = 0.0;
};

/// \brief A time-ordered sequence of position samples for one vehicle.
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(uint64_t object_id, std::vector<TrajectoryPoint> points)
      : object_id_(object_id), points_(std::move(points)) {}

  uint64_t object_id() const { return object_id_; }
  const std::vector<TrajectoryPoint>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TrajectoryPoint& operator[](size_t i) const { return points_[i]; }

  /// Appends a sample; timestamps must be non-decreasing (checked in debug).
  void Append(const TrajectoryPoint& p);

  SimTime StartTime() const { return empty() ? 0.0 : points_.front().time; }
  SimTime EndTime() const { return empty() ? 0.0 : points_.back().time; }
  double DurationSeconds() const { return EndTime() - StartTime(); }

  /// Total traveled distance, meters.
  double LengthMeters() const;

  /// Linearly interpolated position at time `t` (clamped to the range).
  Point PositionAt(SimTime t) const;

  /// The spatial footprint as a polyline (timestamps dropped).
  Polyline AsPolyline() const;

 private:
  uint64_t object_id_ = 0;
  std::vector<TrajectoryPoint> points_;
};

/// \brief One ~3-5 km piece p_i of a scheduled trip P (Step 1 of the
/// EcoCharge algorithm).
struct TripSegment {
  size_t index = 0;        ///< position within the trip
  double start_s = 0.0;    ///< arc-length where the segment starts
  double end_s = 0.0;      ///< arc-length where it ends
  Point start_point;
  Point end_point;

  double LengthMeters() const { return end_s - start_s; }
};

/// Splits `trip` into consecutive segments of roughly `segment_length_m`
/// (the final segment absorbs the remainder; a trip shorter than one
/// segment yields a single segment). Precondition: trip has >= 2 points.
std::vector<TripSegment> SegmentTrip(const Polyline& trip,
                                     double segment_length_m);

}  // namespace ecocharge

#endif  // ECOCHARGE_TRAJ_TRAJECTORY_H_
