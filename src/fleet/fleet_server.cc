#include "fleet/fleet_server.h"

#include <algorithm>
#include <utility>

#include "core/protocol.h"
#include "obs/statsz.h"

namespace ecocharge {
namespace fleet {

Result<std::unique_ptr<FleetServer>> FleetServer::Create(
    Environment* env, const ScoreWeights& weights,
    const EcoChargeOptions& eco_options, const FleetServerOptions& options) {
  if (options.corridor_cache && options.corridor.eta_bucket_s <= 0.0) {
    return Status::InvalidArgument("corridor ETA bucket must be positive");
  }
  if (options.corridor_cache && options.corridor.ttl_s <= 0.0) {
    return Status::InvalidArgument("corridor TTL must be positive");
  }
  Result<GeoPartition> partition =
      GeoPartition::Build(env->chargers, options.partition);
  if (!partition.ok()) return partition.status();
  return std::unique_ptr<FleetServer>(new FleetServer(
      env, weights, eco_options, options, std::move(partition.value())));
}

FleetServer::FleetServer(Environment* env, const ScoreWeights& weights,
                         const EcoChargeOptions& eco_options,
                         const FleetServerOptions& options,
                         GeoPartition partition)
    : options_(options),
      partition_(std::move(partition)),
      epochs_(partition_.num_shards() *
              static_cast<size_t>(std::max(1, options.threads_per_shard))),
      client_store_(options.client_store_shards) {
  size_t shards = partition_.num_shards();
  size_t readers_per_shard =
      static_cast<size_t>(std::max(1, options_.threads_per_shard));

  // All fleet-level instruments resolve here, before any shard worker
  // thread exists.
  routed_ = metrics_.GetCounter("fleet.requests.routed", "requests");
  malformed_ = metrics_.GetCounter("fleet.requests.malformed", "requests");
  epoch_gauge_ = metrics_.GetGauge("fleet.epoch", "epoch");
  fleet_latency_ = metrics_.GetHistogram("fleet.request_latency_ns", "ns");
  shard_routed_.reserve(shards);
  shard_handoffs_.reserve(shards);
  shard_epoch_lag_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    std::string prefix = "fleet.shard.s" + std::to_string(i);
    shard_routed_.push_back(metrics_.GetCounter(prefix + ".routed",
                                                "requests"));
    shard_handoffs_.push_back(metrics_.GetCounter(prefix + ".handoffs_in",
                                                  "trips"));
    shard_epoch_lag_.push_back(metrics_.GetGauge(prefix + ".epoch_lag",
                                                 "epochs"));
  }
  epoch_gauge_->Set(static_cast<int64_t>(epochs_.current_epoch()));
  client_store_.AttachMetrics(&metrics_);
  if (options_.corridor_cache) {
    corridor_cache_ = std::make_unique<CorridorCache>(
        env->dataset.network.get(), options_.corridor);
    corridor_cache_->AttachMetrics(&metrics_);
  }

  shards_.reserve(shards);
  shard_reader_base_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    OfferingServerOptions server_options = options_.server;
    server_options.threads = options_.threads_per_shard;
    server_options.epochs = &epochs_;
    server_options.epoch_reader_base = i * readers_per_shard;
    server_options.corridor = corridor_cache_.get();
    server_options.client_store =
        options_.corridor_cache ? nullptr : &client_store_;
    server_options.extra_latency = fleet_latency_;
    shard_reader_base_.push_back(server_options.epoch_reader_base);
    shards_.push_back(std::make_unique<OfferingServer>(
        env, weights, eco_options, server_options));
  }
}

FleetServer::~FleetServer() { Shutdown(); }

Status FleetServer::Submit(uint64_t client_id, const VehicleState& state,
                           size_t k, TableCallback on_table) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("fleet server is shut down");
  }
  uint32_t shard = partition_.ShardFor(state.position);
  uint64_t ticket = 0;
  bool ticketed = !options_.corridor_cache;
  if (ticketed) {
    bool handoff = false;
    ticket = client_store_.Enqueue(client_id, shard, state.time, &handoff);
    if (handoff) shard_handoffs_[shard]->Add();
  }
  Status status =
      shards_[shard]->Submit(client_id, state, k, std::move(on_table),
                             ticket);
  if (!status.ok()) {
    if (ticketed) client_store_.Abandon(client_id, ticket);
    return status;
  }
  routed_->Add();
  shard_routed_[shard]->Add();
  return status;
}

Status FleetServer::SubmitWire(uint64_t client_id, const std::string& wire,
                               ReplyCallback on_reply) {
  // The router must decode anyway — shard affinity is by position — so
  // the fleet wire path decodes once here and replies with the encoded
  // table from the serving worker.
  Result<OfferingRequest> request = DecodeOfferingRequest(wire);
  if (!request.ok()) {
    malformed_->Add();
    if (on_reply) on_reply(request.status());
    return Status::OK();
  }
  return Submit(client_id, request.value().state, request.value().k,
                [reply = std::move(on_reply)](const OfferingTable& table) {
                  if (reply) reply(EncodeOfferingTable(table));
                });
}

void FleetServer::PublishRefresh(RefreshKind kind, SimTime now) {
  epochs_.Publish(now, [kind](WorldSnapshot* snapshot) {
    switch (kind) {
      case RefreshKind::kWeather:
        ++snapshot->revisions.weather;
        break;
      case RefreshKind::kAvailability:
        ++snapshot->revisions.availability;
        break;
      case RefreshKind::kTraffic:
        ++snapshot->revisions.traffic;
        break;
    }
  });
  epoch_gauge_->Set(static_cast<int64_t>(epochs_.current_epoch()));
}

void FleetServer::Drain() {
  for (auto& shard : shards_) shard->Drain();
}

void FleetServer::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  // Sequential per-shard shutdown is handoff-safe: while shard i joins,
  // shards > i are still live and draining, so any ticket a shard-i
  // worker waits on (its predecessor queued elsewhere) resolves; ticket
  // order is strictly increasing per client, so waits cannot cycle.
  for (auto& shard : shards_) shard->Shutdown();
}

FleetStats FleetServer::Stats() const {
  FleetStats stats;
  stats.per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    OfferingServerStats s = shard->Stats();
    stats.per_shard.push_back(s);
    stats.totals.accepted += s.accepted;
    stats.totals.rejected += s.rejected;
    stats.totals.served += s.served;
    stats.totals.malformed += s.malformed;
    stats.totals.cache_adaptations += s.cache_adaptations;
    stats.totals.degraded_tables += s.degraded_tables;
  }
  stats.clients = client_store_.Stats();
  if (corridor_cache_) {
    stats.corridor = corridor_cache_->stats();
    stats.corridor_inserts = corridor_cache_->inserts();
    stats.corridor_prewarmed = corridor_cache_->prewarmed();
  }
  stats.epoch = epochs_.current_epoch();
  return stats;
}

void FleetServer::UpdateEpochGauges() {
  uint64_t current = epochs_.current_epoch();
  epoch_gauge_->Set(static_cast<int64_t>(current));
  size_t readers_per_shard =
      static_cast<size_t>(std::max(1, options_.threads_per_shard));
  for (size_t i = 0; i < shards_.size(); ++i) {
    uint64_t pinned = epochs_.MinPinnedEpoch(
        shard_reader_base_[i], shard_reader_base_[i] + readers_per_shard);
    uint64_t lag = pinned == 0 ? 0 : current - pinned;
    shard_epoch_lag_[i]->Set(static_cast<int64_t>(lag));
  }
}

std::string FleetServer::StatszAllText() {
  UpdateEpochGauges();
  std::string out = "--- fleet ---\n";
  out += obs::StatszText(metrics_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    out += "--- shard " + std::to_string(i) + " ---\n";
    out += obs::StatszText(shards_[i]->metrics());
  }
  return out;
}

std::string FleetServer::StatszAllJson() {
  UpdateEpochGauges();
  std::string out = "{\"fleet\":";
  out += obs::StatszJson(metrics_);
  out += ",\"shards\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i) out += ",";
    out += obs::StatszJson(shards_[i]->metrics());
  }
  out += "]}";
  return out;
}

}  // namespace fleet
}  // namespace ecocharge
