#ifndef ECOCHARGE_FLEET_PARTITION_H_
#define ECOCHARGE_FLEET_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "energy/charger.h"
#include "geo/point.h"

namespace ecocharge {
namespace fleet {

/// \brief How the service region is split into shards.
enum class PartitionStrategy : uint8_t {
  /// Near-square grid over the region bounding box: cell = shard. Cheap,
  /// oblivious to charger density.
  kGrid = 0,
  /// Recursive median bisection of the charger positions (a KD split on
  /// the wider axis), so every shard holds a near-equal charger share —
  /// the load balancer for skewed metropolitan fleets.
  kBisection = 1,
};

/// \brief Partition configuration; the partition is a deterministic pure
/// function of (chargers, region, spec).
struct PartitionSpec {
  size_t num_shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kBisection;
};

/// \brief A deterministic geographic partition of the service region.
///
/// Routes *responsibility*, not *visibility*: a shard is the worker pool
/// that serves trips currently inside its region, but every shard ranks
/// against the full global charger index. A vehicle near a partition
/// boundary must be offered chargers on the far side — shard-local
/// candidate sets would break recall exactly where handoffs happen. That
/// choice is also what keeps sharded serving bit-identical to
/// single-shard serving: the shard id influences *where* a request runs,
/// never *what* it computes. A shard with zero chargers (possible under
/// bisection of a sparse region) therefore still serves correctly.
///
/// ShardFor() descends the bisection tree (or indexes the grid) in O(log
/// S) with no allocation and no synchronization — it runs on the submit
/// path of every request.
class GeoPartition {
 public:
  /// Builds the partition. Deterministic: median splits order chargers by
  /// (coordinate, id), so rebuilding from identical inputs yields an
  /// identical tree. Fails with kInvalidArgument for num_shards == 0.
  static Result<GeoPartition> Build(const std::vector<EvCharger>& chargers,
                                    const PartitionSpec& spec);

  /// The shard responsible for a vehicle at `position`. Total: every
  /// point maps to exactly one shard, including points outside the
  /// charger bounding box (clamped into the boundary regions).
  uint32_t ShardFor(const Point& position) const;

  size_t num_shards() const { return num_shards_; }
  PartitionStrategy strategy() const { return spec_.strategy; }

  /// chargers[i] -> owning shard (by the charger's own position).
  const std::vector<uint32_t>& charger_shards() const {
    return charger_shards_;
  }

  /// Chargers whose position falls in `shard` — capacity observability
  /// and the zero-charger-shard test hook.
  size_t chargers_in(uint32_t shard) const {
    return shard_charger_counts_[shard];
  }

 private:
  /// Bisection tree node; leaves carry the shard id. Stored as a flat
  /// array (children by index) so lookups walk contiguous memory.
  struct Node {
    uint8_t axis = 0;        ///< 0 = x, 1 = y
    double split = 0.0;      ///< left: coord <= split
    int32_t left = -1;       ///< node index, or -1 when leaf
    int32_t right = -1;
    uint32_t shard = 0;      ///< valid when leaf
  };

  GeoPartition() = default;

  void BuildGrid(const std::vector<EvCharger>& chargers);
  void BuildBisection(const std::vector<EvCharger>& chargers);
  int32_t Bisect(std::vector<uint32_t>* ids,
                 const std::vector<EvCharger>& chargers, size_t begin,
                 size_t end, size_t shards, uint32_t first_shard);
  void AssignChargers(const std::vector<EvCharger>& chargers);

  PartitionSpec spec_;
  size_t num_shards_ = 1;

  // Grid strategy.
  size_t grid_cols_ = 1;
  size_t grid_rows_ = 1;
  double min_x_ = 0.0, min_y_ = 0.0;
  double cell_w_ = 1.0, cell_h_ = 1.0;

  // Bisection strategy.
  std::vector<Node> nodes_;
  int32_t root_ = -1;

  std::vector<uint32_t> charger_shards_;
  std::vector<size_t> shard_charger_counts_;
};

}  // namespace fleet
}  // namespace ecocharge

#endif  // ECOCHARGE_FLEET_PARTITION_H_
