#ifndef ECOCHARGE_FLEET_FLEET_SERVER_H_
#define ECOCHARGE_FLEET_FLEET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fleet/partition.h"
#include "server/offering_server.h"

namespace ecocharge {
namespace fleet {

/// \brief Which upstream data set a refresh publish regenerates.
enum class RefreshKind : uint8_t { kWeather = 0, kAvailability = 1,
                                   kTraffic = 2 };

/// \brief Fleet-runtime configuration on top of the per-shard
/// OfferingServerOptions.
struct FleetServerOptions {
  /// Geographic shards (each an independent OfferingServer worker pool).
  PartitionSpec partition;

  /// Worker threads per shard; 0 = synchronous inline serving (the
  /// deterministic mode every parity test compares against).
  int threads_per_shard = 0;

  /// When true, trips on the same corridor with overlapping ETA buckets
  /// share Offering Table construction through the corridor cache
  /// (replaces per-client Dynamic Caching; see CorridorCache).
  bool corridor_cache = false;
  CorridorCacheOptions corridor;

  /// Lock shards of the central client store (contention sizing).
  size_t client_store_shards = 16;

  /// Per-shard serving options (queue depth, EIS cache shards, simulated
  /// I/O, resilience). `threads`, `epochs`, `corridor`, `client_store`,
  /// and `extra_latency` are overwritten by the fleet runtime.
  OfferingServerOptions server;
};

/// \brief Aggregated fleet counters plus the per-shard breakdown.
struct FleetStats {
  OfferingServerStats totals;
  std::vector<OfferingServerStats> per_shard;
  ClientStoreStats clients;
  CacheStats corridor;
  uint64_t corridor_inserts = 0;
  uint64_t corridor_prewarmed = 0;
  uint64_t epoch = 0;
};

/// \brief The fleet-scale serving runtime: geographic shards, corridor-
/// shared caching, cross-shard handoff, and RCU world-version publishes.
///
/// Routing is shard-affine by *position*: Submit maps the vehicle's
/// current location through the GeoPartition and hands the request to
/// that shard's OfferingServer (which then applies its own client ->
/// worker hashing). When a trip crosses a partition boundary the next
/// request lands on a different shard — the handoff. Two mechanisms keep
/// sharded serving bit-identical to single-shard serving across that
/// boundary (the repo's parity discipline):
///
///  - every shard ranks against the full global charger index (shards
///    split responsibility, never visibility), and
///  - the vehicle's Dynamic Cache state lives in the central ClientStore
///    and is leased per request under router-assigned FIFO tickets, so
///    the warm solution follows the trip and its requests serve in
///    submission order even while an old request drains on the old shard.
///
/// With the corridor cache on, per-client caching is replaced by
/// canonical per-corridor tables shared across vehicles (and shards).
///
/// Refreshes publish through WorldEpochs: PublishRefresh bumps one
/// upstream revision in a new snapshot; workers pin a snapshot per
/// request with two atomic stores and never take a mutex on the read
/// path. The pinned revisions re-key the EIS caches, so the old world's
/// entries become unreachable and age out — no sweep, no reader stall.
class FleetServer {
 public:
  using TableCallback = OfferingServer::TableCallback;
  using ReplyCallback = OfferingServer::ReplyCallback;

  /// Builds the partition and one OfferingServer per shard. Fails with
  /// kInvalidArgument for an invalid partition spec or corridor options.
  static Result<std::unique_ptr<FleetServer>> Create(
      Environment* env, const ScoreWeights& weights,
      const EcoChargeOptions& eco_options, const FleetServerOptions& options);

  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Routes a ranking request to the shard owning `state.position`.
  /// Returns kUnavailable when that shard's queue is full (the ticket is
  /// abandoned so successors don't wait), kFailedPrecondition after
  /// Shutdown().
  Status Submit(uint64_t client_id, const VehicleState& state, size_t k,
                TableCallback on_table);

  /// Wire form: decodes (the router needs the position anyway), routes,
  /// and replies with the encoded table. Decode failures invoke
  /// `on_reply` with the error and count `fleet.malformed`.
  Status SubmitWire(uint64_t client_id, const std::string& wire,
                    ReplyCallback on_reply);

  /// Publishes a new world epoch in which `kind`'s data set has a new
  /// revision. Never blocks readers; serialized among publishers.
  void PublishRefresh(RefreshKind kind, SimTime now);

  /// Blocks until every accepted request on every shard has been served.
  void Drain();

  /// Shuts the shards down in order. Safe while handoff tickets are in
  /// flight: queues on later shards keep draining while earlier shards
  /// join, and ticket waits are acyclic (strictly increasing per client),
  /// so shutdown never deadlocks on a cross-shard predecessor.
  void Shutdown();

  FleetStats Stats() const;

  size_t num_shards() const { return shards_.size(); }
  const GeoPartition& partition() const { return partition_; }
  OfferingServer& shard(size_t i) { return *shards_[i]; }
  const OfferingServer& shard(size_t i) const { return *shards_[i]; }
  WorldEpochs& epochs() { return epochs_; }
  ClientStore& client_store() { return client_store_; }
  CorridorCache* corridor_cache() { return corridor_cache_.get(); }

  /// Fleet-level registry: `fleet.*` counters (handoffs, corridor hits,
  /// epoch gauges, the fleet-wide latency histogram). Per-shard metrics
  /// live on each shard's own registry (see StatszAllText).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Refreshes the epoch/lag gauges, then renders the fleet section plus
  /// one `--- shard N ---` statsz section per shard.
  std::string StatszAllText();

  /// Same, as one JSON object: {"fleet": {...}, "shards": [{...}, ...]}.
  std::string StatszAllJson();

 private:
  FleetServer(Environment* env, const ScoreWeights& weights,
              const EcoChargeOptions& eco_options,
              const FleetServerOptions& options, GeoPartition partition);

  void UpdateEpochGauges();

  FleetServerOptions options_;
  GeoPartition partition_;

  // Declared before the shards: they record into fleet-owned instruments
  // (corridor mirrors, latency histogram) until their workers join.
  obs::MetricsRegistry metrics_;
  WorldEpochs epochs_;
  ClientStore client_store_;
  std::unique_ptr<CorridorCache> corridor_cache_;

  std::vector<std::unique_ptr<OfferingServer>> shards_;
  std::vector<size_t> shard_reader_base_;

  std::atomic<bool> shutdown_{false};

  obs::Counter* routed_ = nullptr;          ///< fleet.requests.routed
  obs::Counter* malformed_ = nullptr;       ///< fleet.requests.malformed
  obs::Gauge* epoch_gauge_ = nullptr;       ///< fleet.epoch
  obs::Histogram* fleet_latency_ = nullptr; ///< fleet.request_latency_ns
  std::vector<obs::Counter*> shard_routed_;   ///< fleet.shard.s{i}.routed
  std::vector<obs::Counter*> shard_handoffs_; ///< fleet.shard.s{i}.handoffs_in
  std::vector<obs::Gauge*> shard_epoch_lag_;  ///< fleet.shard.s{i}.epoch_lag
};

}  // namespace fleet
}  // namespace ecocharge

#endif  // ECOCHARGE_FLEET_FLEET_SERVER_H_
