#include "fleet/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ecocharge {
namespace fleet {

Result<GeoPartition> GeoPartition::Build(
    const std::vector<EvCharger>& chargers, const PartitionSpec& spec) {
  if (spec.num_shards == 0) {
    return Status::InvalidArgument("partition needs at least one shard");
  }
  if (spec.num_shards > 4096) {
    return Status::InvalidArgument("partition shard count exceeds 4096");
  }
  GeoPartition partition;
  partition.spec_ = spec;
  partition.num_shards_ = spec.num_shards;
  switch (spec.strategy) {
    case PartitionStrategy::kGrid:
      partition.BuildGrid(chargers);
      break;
    case PartitionStrategy::kBisection:
      partition.BuildBisection(chargers);
      break;
    default:
      return Status::InvalidArgument("unknown partition strategy");
  }
  partition.AssignChargers(chargers);
  return partition;
}

void GeoPartition::BuildGrid(const std::vector<EvCharger>& chargers) {
  double min_x = 0.0, min_y = 0.0, max_x = 1.0, max_y = 1.0;
  if (!chargers.empty()) {
    min_x = min_y = std::numeric_limits<double>::infinity();
    max_x = max_y = -std::numeric_limits<double>::infinity();
    for (const EvCharger& c : chargers) {
      min_x = std::min(min_x, c.position.x);
      max_x = std::max(max_x, c.position.x);
      min_y = std::min(min_y, c.position.y);
      max_y = std::max(max_y, c.position.y);
    }
  }
  // Near-square factorization: the most-square cols x rows with
  // cols * rows >= num_shards; overflow cells clamp to the last shard.
  size_t cols = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_shards_))));
  size_t rows = (num_shards_ + cols - 1) / cols;
  grid_cols_ = std::max<size_t>(1, cols);
  grid_rows_ = std::max<size_t>(1, rows);
  min_x_ = min_x;
  min_y_ = min_y;
  cell_w_ = std::max((max_x - min_x) / static_cast<double>(grid_cols_),
                     1e-9);
  cell_h_ = std::max((max_y - min_y) / static_cast<double>(grid_rows_),
                     1e-9);
}

int32_t GeoPartition::Bisect(std::vector<uint32_t>* ids,
                             const std::vector<EvCharger>& chargers,
                             size_t begin, size_t end, size_t shards,
                             uint32_t first_shard) {
  Node node;
  if (shards == 1) {
    node.shard = first_shard;
    nodes_.push_back(node);
    return static_cast<int32_t>(nodes_.size() - 1);
  }
  size_t left_shards = (shards + 1) / 2;
  size_t count = end - begin;
  // Split the charger range proportionally to the shard split so every
  // leaf ends up with a near-equal charger share.
  size_t left_count = count * left_shards / shards;

  // Choose the wider axis; break ties toward x so the tree is a pure
  // function of the input set.
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (size_t i = begin; i < end; ++i) {
    const Point& p = chargers[(*ids)[i]].position;
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  bool empty = count == 0;
  node.axis = (!empty && (max_y - min_y) > (max_x - min_x)) ? 1 : 0;

  if (empty) {
    // Degenerate region (fewer chargers than shards): split at 0 so the
    // tree stays total; the resulting shards own territory but no sites.
    node.split = 0.0;
  } else {
    auto coord = [&](uint32_t id) {
      const Point& p = chargers[id].position;
      return node.axis == 0 ? p.x : p.y;
    };
    auto less = [&](uint32_t a, uint32_t b) {
      double ca = coord(a), cb = coord(b);
      if (ca != cb) return ca < cb;
      return a < b;  // id tie-break keeps the order deterministic
    };
    size_t pivot = begin + (left_count == 0 ? 0 : left_count - 1);
    std::nth_element(ids->begin() + static_cast<ptrdiff_t>(begin),
                     ids->begin() + static_cast<ptrdiff_t>(pivot),
                     ids->begin() + static_cast<ptrdiff_t>(end), less);
    node.split = coord((*ids)[pivot]);
  }

  size_t mid = begin + left_count;
  int32_t self = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(node);
  int32_t left = Bisect(ids, chargers, begin, mid, left_shards, first_shard);
  int32_t right =
      Bisect(ids, chargers, mid, end, shards - left_shards,
             first_shard + static_cast<uint32_t>(left_shards));
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

void GeoPartition::BuildBisection(const std::vector<EvCharger>& chargers) {
  std::vector<uint32_t> ids(chargers.size());
  std::iota(ids.begin(), ids.end(), 0u);
  nodes_.reserve(2 * num_shards_);
  root_ = Bisect(&ids, chargers, 0, ids.size(), num_shards_, 0);
}

void GeoPartition::AssignChargers(const std::vector<EvCharger>& chargers) {
  charger_shards_.resize(chargers.size());
  shard_charger_counts_.assign(num_shards_, 0);
  for (size_t i = 0; i < chargers.size(); ++i) {
    uint32_t shard = ShardFor(chargers[i].position);
    charger_shards_[i] = shard;
    ++shard_charger_counts_[shard];
  }
}

uint32_t GeoPartition::ShardFor(const Point& position) const {
  if (num_shards_ == 1) return 0;
  if (spec_.strategy == PartitionStrategy::kGrid) {
    auto cell = [](double v, double origin, double width, size_t cells) {
      double f = std::floor((v - origin) / width);
      if (f < 0.0) return static_cast<size_t>(0);
      size_t c = static_cast<size_t>(f);
      return std::min(c, cells - 1);
    };
    size_t col = cell(position.x, min_x_, cell_w_, grid_cols_);
    size_t row = cell(position.y, min_y_, cell_h_, grid_rows_);
    size_t idx = row * grid_cols_ + col;
    return static_cast<uint32_t>(std::min(idx, num_shards_ - 1));
  }
  int32_t node_index = root_;
  while (nodes_[node_index].left >= 0) {
    const Node& node = nodes_[node_index];
    double coord = node.axis == 0 ? position.x : position.y;
    node_index = coord <= node.split ? node.left : node.right;
  }
  return nodes_[node_index].shard;
}

}  // namespace fleet
}  // namespace ecocharge
