#include "traffic/derouting.h"

#include <algorithm>
#include <cmath>

namespace ecocharge {

DeroutingService::DeroutingService(
    std::shared_ptr<const RoadNetwork> network,
    const CongestionModel* congestion, double detour_factor)
    : network_(std::move(network)),
      congestion_(congestion),
      detour_factor_(detour_factor),
      search_(*network_) {}

double DeroutingService::CruiseSpeed(SimTime t) const {
  return FreeFlowSpeed(RoadClass::kArterial) *
         congestion_->ActualSpeedFactor(RoadClass::kArterial, t);
}

DeroutingEstimate DeroutingService::Estimate(const DeroutingQuery& query,
                                             const EvCharger& charger) const {
  return Estimate(query, charger,
                  congestion_->ForecastSpeedFactor(RoadClass::kArterial,
                                                   query.now, query.now));
}

DeroutingEstimate DeroutingService::Estimate(
    const DeroutingQuery& query, const EvCharger& charger,
    const CongestionModel::Band& band) const {
  double to_charger = Distance(query.vehicle_position, charger.position);
  double back = std::min(Distance(charger.position, query.return_point_a),
                         Distance(charger.position, query.return_point_b));
  double on_route =
      std::min(Distance(query.vehicle_position, query.return_point_a),
               Distance(query.vehicle_position, query.return_point_b));
  // Euclidean distances are admissible lower bounds on network distance;
  // the detour factor gives the typical upper estimate. The congestion
  // band converts "distance" into "effective cost distance" (congested
  // roads cost proportionally more time/energy).
  double optimistic = std::max(0.0, to_charger + back - on_route);
  double pessimistic =
      std::max(0.0, (to_charger + back) * detour_factor_ - on_route);
  DeroutingEstimate est;
  est.extra_distance_min_m = optimistic;
  // Slow traffic (band.min) inflates the effective pessimistic cost.
  est.extra_distance_max_m = pessimistic / std::max(band.min, 0.10);
  if (est.extra_distance_max_m < est.extra_distance_min_m) {
    est.extra_distance_max_m = est.extra_distance_min_m;
  }
  double speed = FreeFlowSpeed(RoadClass::kArterial) *
                 (band.min + band.max) * 0.5;
  est.eta_s = to_charger * detour_factor_ / std::max(speed, 1.0);
  return est;
}

double DeroutingService::DirectCost(NodeId m, NodeId ra, NodeId rb,
                                    SimTime now, const EdgeCostFn& cost) {
  DirectKey key{m, ra, rb, now};
  if (key == direct_key_) return direct_cost_;
  PathResult direct_a = search_.AStar(m, ra, cost);
  PathResult direct_b = search_.AStar(m, rb, cost);
  direct_key_ = key;
  direct_cost_ = std::min(direct_a.cost, direct_b.cost);
  return direct_cost_;
}

DeroutingEstimate DeroutingService::Exact(const DeroutingQuery& query,
                                          const EvCharger& charger) {
  DeroutingEstimate est;
  NodeId m = query.vehicle_node != kInvalidNode
                 ? query.vehicle_node
                 : network_->NearestNode(query.vehicle_position);
  NodeId ra = query.return_node_a != kInvalidNode
                  ? query.return_node_a
                  : network_->NearestNode(query.return_point_a);
  NodeId rb = query.return_node_b != kInvalidNode
                  ? query.return_node_b
                  : network_->NearestNode(query.return_point_b);

  // Cost = congested travel distance: length / speed_factor(class, now),
  // i.e. congested roads count longer, matching Eq. 3's weighted edges.
  SimTime now = query.now;
  auto cost = [this, now](const Edge& e) {
    return e.length_m /
           congestion_->ActualSpeedFactor(e.road_class, now);
  };

  PathResult to_b = search_.AStar(m, charger.node, cost);
  if (!to_b.Reachable()) {
    est.extra_distance_min_m = est.extra_distance_max_m = kInfiniteCost;
    est.eta_s = kInfiniteCost;
    return est;
  }
  PathResult back_a = search_.AStar(charger.node, ra, cost);
  PathResult back_b = search_.AStar(charger.node, rb, cost);
  double back = std::min(back_a.cost, back_b.cost);
  double direct = DirectCost(m, ra, rb, now, cost);
  double extra = to_b.cost + (std::isfinite(back) ? back : 0.0) -
                 (std::isfinite(direct) ? direct : 0.0);
  extra = std::max(0.0, extra);
  est.extra_distance_min_m = est.extra_distance_max_m = extra;
  est.eta_s = to_b.cost / std::max(CruiseSpeed(now), 1.0);
  return est;
}

}  // namespace ecocharge
